package p2prm_test

// Fleet-observability acceptance tests: the collector's trace merge must
// be deterministic (equal-seed sim runs produce byte-identical merged
// streams) and must stitch a session that crosses two real TCP runtimes
// — allocated on one, consumed on the other, with an RM failover forced
// mid-run by the fault injector — into one causally-linked track.

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// jsonl serializes a merged event stream the way the fleet collector
// would persist it, so byte comparison covers field ordering too.
func jsonl(t *testing.T, events []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatalf("encode event: %v", err)
		}
	}
	return buf.Bytes()
}

// TestObsMergedTraceDeterminism runs the traced standard scenario twice
// with equal seeds and demands that the collector's merged stream — not
// just the raw tracer output — is byte-identical, and that it stitches
// sessions spanning several node TIDs.
func TestObsMergedTraceDeterminism(t *testing.T) {
	run := func() []trace.Event {
		tr := p2prm.NewTracer()
		sim := p2prm.NewSimulation(p2prm.DefaultConfig(),
			p2prm.SimOptions{Seed: 424242, JitterFrac: 0.3, LossRate: 0.01, Tracer: tr})
		sim.GrowStandard(12, 4, 8, 2, 0.5)
		sim.RunFor(10 * p2prm.Second)
		start := sim.Now()
		sim.StandardWorkload(start, start+20*p2prm.Second, 1.5, 8)
		sim.RunFor(60 * p2prm.Second)
		return tr.Snapshot()
	}
	a, b := run(), run()
	mergedA := jsonl(t, obs.MergeTraces(a))
	mergedB := jsonl(t, obs.MergeTraces(b))
	if len(mergedA) == 0 {
		t.Fatal("merged trace is empty")
	}
	if !bytes.Equal(mergedA, mergedB) {
		t.Fatalf("equal-seed merged traces differ (%d vs %d bytes)",
			len(mergedA), len(mergedB))
	}
	// Merging both runs' streams together must be the same as one run's
	// stream: every event deduplicates against its twin.
	both := obs.MergeTraces(a, b)
	if !bytes.Equal(jsonl(t, both), mergedA) {
		t.Fatalf("merging twin runs did not deduplicate: %d events vs %d",
			len(both), len(obs.MergeTraces(a)))
	}
	tracks := obs.SessionTracks(both)
	if len(tracks) == 0 {
		t.Fatal("no session tracks in merged trace")
	}
	cross := 0
	for _, tr := range tracks {
		if len(tr.Nodes) >= 2 {
			cross++
		}
	}
	if cross == 0 {
		t.Fatalf("no cross-node session track among %d tracks", len(tracks))
	}
}

// obsChaosConfig mirrors the replay e2e chaos tuning: fast heartbeats so
// a severed RM fails over within milliseconds, background gossip off.
func obsChaosConfig() p2prm.Config {
	cfg := p2prm.DefaultConfig()
	cfg.HeartbeatPeriod = 30 * p2prm.Millisecond
	cfg.HeartbeatMisses = 3
	cfg.ProfilePeriod = 50 * p2prm.Millisecond
	cfg.BackupSyncPeriod = 60 * p2prm.Millisecond
	cfg.GossipPeriod = 0
	cfg.AdaptPeriod = 0
	return cfg
}

func obsFastTransport() p2prm.TransportConfig {
	return p2prm.TransportConfig{
		DialTimeout:      500 * time.Millisecond,
		WriteTimeout:     500 * time.Millisecond,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       20 * time.Millisecond,
		CircuitThreshold: 3,
		CircuitCooldown:  20 * time.Millisecond,
	}
}

func obsWaitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLiveTCPTraceStitching is the cross-process acceptance test: two
// Live runtimes joined over real TCP, started with the SAME seed so
// span IDs derive identically on both sides; a session whose object
// lives on runtime A is consumed on runtime B; then the fault injector
// severs the RM and a failover decision lands on B. Merging the two
// tracers' streams must yield one causally-linked track per session
// with events from both runtimes, identically in either merge order.
func TestLiveTCPTraceStitching(t *testing.T) {
	cfg := obsChaosConfig()
	const seed = 77 // shared by both runtimes — the p2pnode -seed contract

	trA, trB := p2prm.NewTracer(), p2prm.NewTracer()
	lA, err := p2prm.NewLive(cfg, p2prm.LiveOptions{
		Seed: seed, Listen: "127.0.0.1:0", Transport: obsFastTransport(), Tracer: trA,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lA.Close()
	lB, err := p2prm.NewLive(cfg, p2prm.LiveOptions{
		Seed: seed, Listen: "127.0.0.1:0", Transport: obsFastTransport(), Tracer: trB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lB.Close()

	// Founder (RM) and the object live on A; the consumer and both
	// failover candidates live on B.
	founder := strongPeer()
	founder.Objects = []p2prm.Object{{
		Name:   "clip",
		Format: p2prm.Format{Codec: p2prm.MPEG2, Width: 640, Height: 480, BitrateKbps: 256},
		Bytes:  256 * 1000 / 8 / 2, // 0.5s
	}}
	lA.Register(1, lB.ListenAddr())
	lA.Register(2, lB.ListenAddr())
	lB.Register(0, lA.ListenAddr())
	lA.StartPeerWithID(0, founder, p2prm.NoNode)
	lB.StartPeerWithID(1, strongPeer(), 0)
	lB.StartPeerWithID(2, strongPeer(), 0)
	obsWaitFor(t, 10*time.Second, "overlay join", func() bool {
		return lA.Joined(0) && lB.Joined(1) && lB.Joined(2)
	})

	// Cross-node session: submitted on B, allocated and streamed from A.
	task := lB.Submit(1, p2prm.TaskSpec{
		ObjectName:     "clip",
		Constraint:     p2prm.Constraint{}, // direct streaming
		DeadlineMicros: 500_000,
		DurationSec:    0.5,
		ChunkSec:       0.1,
	})
	if task == "" {
		t.Fatal("submit failed")
	}
	obsWaitFor(t, 10*time.Second, "session report", func() bool {
		return len(lB.Events().Reports) == 1
	})

	// Let the backup sync, then cut every link touching the RM and wait
	// for a candidate on B to take over.
	time.Sleep(250 * time.Millisecond)
	lA.Sever(0, p2prm.NoNode)
	lB.Sever(0, p2prm.NoNode)
	obsWaitFor(t, 10*time.Second, "RM failover", func() bool {
		return lB.IsRM(1) || lB.IsRM(2)
	})
	lA.Close()
	lB.Close()

	// The merge is order-independent and stitches the session into one
	// track carrying both runtimes' node IDs.
	a, b := trA.Snapshot(), trB.Snapshot()
	merged := obs.MergeTraces(a, b)
	if !bytes.Equal(jsonl(t, merged), jsonl(t, obs.MergeTraces(b, a))) {
		t.Fatal("merge output depends on input order")
	}
	var stitched *obs.SessionTrack
	for _, tr := range obs.SessionTracks(merged) {
		if tr.Task == task {
			stitched = &tr
			break
		}
	}
	if stitched == nil {
		t.Fatalf("task %s has no track in the merged trace", task)
	}
	if len(stitched.Nodes) < 2 {
		t.Fatalf("track for %s spans nodes %v; want both runtimes", task, stitched.Nodes)
	}
	seen := map[int]bool{}
	for _, n := range stitched.Nodes {
		seen[n] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("track nodes = %v; want the A-side RM (0) and B-side origin (1)", stitched.Nodes)
	}

	// The failover shows up in the merged stream as a decision instant
	// recorded by a B-side candidate, and in B's decision log.
	foundFailover := false
	for _, e := range merged {
		if e.Name == trace.EventDecision {
			if act, _ := e.Args["action"].(string); act == core.DecisionFailover {
				foundFailover = true
				break
			}
		}
	}
	if !foundFailover {
		t.Fatal("no failover decision instant in the merged trace")
	}
	hasFailoverDecision := false
	for _, d := range lB.Decisions().Snapshot() {
		if d.Action == core.DecisionFailover {
			hasFailoverDecision = true
			break
		}
	}
	if !hasFailoverDecision {
		t.Fatalf("no failover entry in B's decision log (%d entries)", lB.Decisions().Total())
	}

	// The RM side costed the allocation into its latency sketch.
	if q := lA.Sketches().Quantile(stats.SketchAllocLatency, lA.NowMicros(), 0.99); q <= 0 {
		t.Fatalf("A-side allocation latency p99 = %v; sketch not fed", q)
	}
}
