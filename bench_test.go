// Benchmarks: one per reproduced table/figure (see DESIGN.md §2 and
// EXPERIMENTS.md). Each benchmark executes the corresponding experiment
// end-to-end in Quick mode, so ns/op is the cost of regenerating that
// artifact; run `go test -bench . -benchmem` at the repo root.
package p2prm_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/trace"
)

var benchOpt = experiments.Options{Seed: 42, Quick: true}

// BenchmarkE1Figure1Paths regenerates Figure 1: graph construction, path
// enumeration and the Figure-3 allocation over it.
func BenchmarkE1Figure1Paths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E1Figure1(benchOpt)
		if len(res.Table.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkE2TaskAssignment regenerates the Figure 2 walkthrough: one
// complete session (query, allocation, composition, streaming) on a
// simulated domain.
func BenchmarkE2TaskAssignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E2TaskAssignment(benchOpt)
		if len(res.Table.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkE3AllocatorComparison regenerates the allocator-comparison
// table (paper-BFS vs first-fit vs greedy vs random under load).
func BenchmarkE3AllocatorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E3AllocatorComparison(benchOpt)
	}
}

// BenchmarkE4Scalability regenerates the overlay-size scaling table.
func BenchmarkE4Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E4Scalability(benchOpt)
	}
}

// BenchmarkE5SchedulerComparison regenerates the LLS/EDF/FIFO/SJF/PRIO
// miss-ratio table.
func BenchmarkE5SchedulerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E5SchedulerComparison(benchOpt)
	}
}

// BenchmarkE6Churn regenerates the churn-tolerance table (repairs,
// failovers, session survival).
func BenchmarkE6Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E6Churn(benchOpt)
	}
}

// BenchmarkE7AdmissionRedirect regenerates the admission/redirection
// comparison.
func BenchmarkE7AdmissionRedirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E7AdmissionRedirect(benchOpt)
	}
}

// BenchmarkE8GossipBloom regenerates gossip convergence + Bloom accuracy.
func BenchmarkE8GossipBloom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E8GossipBloom(benchOpt)
	}
}

// BenchmarkE9Adaptation regenerates the load-spike adaptation table.
func BenchmarkE9Adaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E9Adaptation(benchOpt)
	}
}

// BenchmarkE10UpdatePeriod regenerates the profiler-period trade-off.
func BenchmarkE10UpdatePeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E10UpdatePeriod(benchOpt)
	}
}

// BenchmarkA1ObjectiveAblation regenerates the allocation-objective
// ablation.
func BenchmarkA1ObjectiveAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.A1ObjectiveAblation(benchOpt)
	}
}

// BenchmarkA2BackupSync regenerates the backup-sync ablation.
func BenchmarkA2BackupSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.A2BackupSync(benchOpt)
	}
}

// BenchmarkAllocationFigure3 micro-benchmarks one Figure-3 allocation on
// the paper's graph — the hot path of every admission decision.
func BenchmarkAllocationFigure3(b *testing.B) {
	f := graph.Figure1Example(10_000)
	pv := f.IdlePeers(10)
	req := graph.Request{Init: f.VInit, Goal: f.VSol, ChunkSeconds: 1, DeadlineMicros: 60_000_000}
	// Steady-state admissions must stay near-zero-alloc: the pooled search
	// scratch leaves only the returned path itself on the heap. The ceiling
	// is a hard regression gate, not a report.
	const allocCeiling = 2
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := (graph.FairnessBFS{}).Allocate(f.G, req, pv); err != nil {
			b.Fatal(err)
		}
	}); allocs > allocCeiling {
		b.Fatalf("FairnessBFS.Allocate: %.1f allocs/op, ceiling %d", allocs, allocCeiling)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (graph.FairnessBFS{}).Allocate(f.G, req, pv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedSession measures simulating one complete 10-chunk
// session end-to-end through the public API.
func BenchmarkSimulatedSession(b *testing.B) {
	benchSession(b, p2prm.SimOptions{})
}

// benchSession runs the session-simulation loop with the given options
// (the seed is overridden per iteration), shared by the trace-overhead
// benchmarks below.
func benchSession(b *testing.B, opts p2prm.SimOptions) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i)
		sim := p2prm.NewSimulation(p2prm.DefaultConfig(), opts)
		founder := strongPeer()
		founder.Objects = []p2prm.Object{{
			Name:   "movie",
			Format: p2prm.Format{Codec: p2prm.MPEG2, Width: 800, Height: 600, BitrateKbps: 512},
			Bytes:  512 * 1000 / 8 * 10,
		}}
		id0 := sim.AddFounder(founder)
		for j := 0; j < 5; j++ {
			sim.AddPeer(strongPeer(), id0)
		}
		sim.RunFor(5 * p2prm.Second)
		sim.Submit(sim.Now(), 3, p2prm.TaskSpec{
			ObjectName:     "movie",
			Constraint:     p2prm.Constraint{Codecs: []p2prm.Codec{p2prm.MPEG4}, MaxBitrateKbps: 64, MaxWidth: 640, MaxHeight: 480},
			DeadlineMicros: 2_000_000,
			DurationSec:    10,
			ChunkSec:       1,
		})
		sim.RunFor(60 * p2prm.Second)
		if len(sim.Events().Reports) != 1 {
			b.Fatal("session did not complete")
		}
	}
}

// BenchmarkTraceDisabled is BenchmarkSimulatedSession with tracing
// explicitly off (nil tracer) — the guard at every call site must make
// this indistinguishable from the un-instrumented seed (<5% overhead).
func BenchmarkTraceDisabled(b *testing.B) {
	benchSession(b, p2prm.SimOptions{Tracer: nil})
}

// BenchmarkTraceEnabled is the same run with a live tracer and metrics
// registry attached, measuring the full observability cost. The tracer
// accumulates spans across iterations; its bounded buffer absorbs them.
func BenchmarkTraceEnabled(b *testing.B) {
	tr := p2prm.NewTracer()
	reg := p2prm.NewMetricsRegistry()
	benchSession(b, p2prm.SimOptions{Tracer: tr, Metrics: reg})
	if tr.SessionsBegun() != b.N {
		b.Fatalf("sessions begun = %d, want %d", tr.SessionsBegun(), b.N)
	}
}

// BenchmarkTracePropagation measures the per-envelope cost of the
// trace-context machinery itself: deriving a task's span ID from the
// run seed and adopting the incoming context on the receiving tracer —
// the steady-state path every traced proto message pays on arrival.
// (First-binding adoption and span creation are amortized over the
// pre-begun task set, as in a live overlay.)
func BenchmarkTracePropagation(b *testing.B) {
	tr := trace.New()
	tr.SetSeed(42)
	const tasks = 64
	ids := make([]string, tasks)
	for i := range ids {
		ids[i] = fmt.Sprintf("t1.%d", i)
		tr.BeginSession(int64(i), ids[i], 1, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := ids[i%tasks]
		span := trace.DeriveSpanID(42, task)
		tr.Adopt(int64(i), task, span, 0, 2, 0)
	}
}

// BenchmarkA3Preemption regenerates the preemptive-admission ablation.
func BenchmarkA3Preemption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.A3Preemption(benchOpt)
	}
}

// BenchmarkE11Decentralization regenerates the topology ablation.
func BenchmarkE11Decentralization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E11Decentralization(benchOpt)
	}
}
