// Importance: value-based preemptive admission in action.
//
// The paper attaches an Importance_t metric to every task (§3.3) and cites
// value-based schedulers in its related work (§5). This example enables
// the library's preemptive-admission extension on a deliberately tiny
// domain: background viewers saturate it with low-importance streams, then
// an emergency high-importance stream arrives. Watch the Resource Manager
// sacrifice a cheap session — after verifying, against a hypothetical load
// view, that the sacrifice actually frees enough capacity.
//
// Run: go run ./examples/importance
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := p2prm.DefaultConfig()
	cfg.PreemptLowImportance = true
	cfg.AdaptPeriod = 0 // isolate admission behavior

	sim := p2prm.NewSimulation(cfg, p2prm.SimOptions{Seed: 99})

	src := p2prm.Format{Codec: p2prm.MPEG2, Width: 800, Height: 600, BitrateKbps: 512}
	tgt := p2prm.Format{Codec: p2prm.MPEG4, Width: 640, Height: 480, BitrateKbps: 64}
	peer := func(objects ...p2prm.Object) p2prm.PeerInfo {
		return p2prm.PeerInfo{
			SpeedWU:       4, // room for ~1 transcode each
			BandwidthKbps: 5000,
			UptimeSec:     7200,
			Objects:       objects,
			Services:      []p2prm.Transcoder{{From: src, To: tgt}},
		}
	}
	movie := p2prm.Object{Name: "broadcast", Format: src, Bytes: 512 * 1000 / 8 * 120}
	rm := sim.AddFounder(peer(movie))
	sim.AddPeer(peer(), rm)
	sim.AddPeer(peer(), rm)
	sim.RunFor(5 * p2prm.Second)
	fmt.Printf("tiny domain: %d peers, capacity ≈ 2 concurrent transcodes\n", sim.JoinedCount())

	spec := func(id string, importance int) p2prm.TaskSpec {
		return p2prm.TaskSpec{
			ID:         id,
			ObjectName: "broadcast",
			Constraint: p2prm.Constraint{
				Codecs: []p2prm.Codec{p2prm.MPEG4}, MaxWidth: 640, MaxHeight: 480, MaxBitrateKbps: 64,
			},
			DeadlineMicros: 3_000_000,
			Importance:     importance,
			DurationSec:    90,
			ChunkSec:       1,
		}
	}

	fmt.Println("\nphase 1: four low-importance viewers request 90s streams")
	for i := 0; i < 4; i++ {
		sim.Submit(sim.Now()+p2prm.Time(i)*p2prm.Second, 2, spec(fmt.Sprintf("viewer-%d", i), 1))
	}
	sim.RunFor(10 * p2prm.Second)
	ev := sim.Events()
	fmt.Printf("  admitted %d, rejected %d — every drop of capacity is now in use\n", ev.Admitted, ev.Rejected)

	fmt.Println("\nphase 2: an importance-9 emergency stream arrives")
	sim.Submit(sim.Now(), 1, spec("emergency", 9))
	sim.RunFor(150 * p2prm.Second)

	ev = sim.Events()
	fmt.Printf("  preemptions performed: %d\n", ev.Preemptions)
	for _, r := range ev.Reports {
		tag := "completed"
		if r.Received < r.Chunks {
			tag = fmt.Sprintf("preempted after %d/%d chunks", r.Received, r.Chunks)
		}
		fmt.Printf("  %-10s %s\n", r.TaskID+":", tag)
	}
	fmt.Println("\nthe emergency stream ran at the cost of one low-importance viewer;")
	fmt.Println("disable cfg.PreemptLowImportance and it would simply be rejected.")
}
