// Transcoding: a multi-domain media-distribution scenario under churn —
// the workload that motivates the paper (§1).
//
// Forty heterogeneous peers self-organize into domains; users stream
// Zipf-popular objects through transcoding pipelines while peers crash
// and leave; Resource Managers repair interrupted service graphs, back up
// their state, and fail over when killed.
//
// Run: go run ./examples/transcoding
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := p2prm.DefaultConfig()
	cfg.MaxDomainPeers = 12

	sim := p2prm.NewSimulation(cfg, p2prm.SimOptions{Seed: 2026, JitterFrac: 0.2})

	fmt.Println("growing a 40-peer overlay (heterogeneous capacities, 24 objects, 3 replicas each)...")
	sim.GrowStandard(40, 4, 24, 3, 0.5)
	sim.RunFor(15 * p2prm.Second)
	fmt.Printf("  %d peers joined across %d domains\n",
		sim.JoinedCount(), len(sim.ResourceManagers()))

	start := sim.Now()
	loaded := 180 * p2prm.Second
	fmt.Println("driving 3 minutes of streaming workload (1.5 queries/s) with churn (4 events/min)...")
	sim.StandardWorkload(start, start+loaded, 1.5, 24)
	sim.StandardChurn(start+30*p2prm.Second, start+loaded, 4)
	sim.RunFor(loaded + 120*p2prm.Second)

	ev := sim.Events()
	fmt.Println("\noutcome:")
	fmt.Printf("  queries submitted:        %d\n", ev.Submitted)
	fmt.Printf("  sessions admitted:        %d\n", ev.Admitted)
	fmt.Printf("  rejected (admission):     %d\n", ev.Rejected)
	fmt.Printf("  redirected across domains:%d\n", ev.Redirected)
	fmt.Printf("  sessions completed:       %d\n", len(ev.Reports))
	fmt.Printf("  peers declared dead:      %d\n", ev.PeersDeclaredDead)
	fmt.Printf("  service-graph repairs:    %d\n", ev.Repairs)
	fmt.Printf("  RM failovers:             %d\n", ev.Failovers)
	fmt.Printf("  chunk deadline miss rate: %.2f%%\n", 100*sim.MissRate())

	var repaired, clean int
	for _, r := range ev.Reports {
		if r.Repaired > 0 {
			repaired++
		}
		if r.Missed == 0 {
			clean++
		}
	}
	fmt.Printf("  sessions streamed through a repair: %d\n", repaired)
	fmt.Printf("  sessions with zero missed chunks:   %d/%d\n", clean, len(ev.Reports))
	fmt.Printf("\nsurviving overlay: %d peers in %d domains\n",
		sim.JoinedCount(), len(sim.ResourceManagers()))
}
