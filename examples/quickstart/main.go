// Quickstart: the paper's Figure-2 walkthrough on a simulated domain.
//
// (A) a peer submits a query to its Resource Manager, (B) the RM searches
// the resource graph and assigns the task to peers, (C) transcoded media
// streaming runs to completion — all in a deterministic simulation.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := p2prm.DefaultConfig()
	sim := p2prm.NewSimulation(cfg, p2prm.SimOptions{Seed: 1})

	// Media formats: the exact example of §4.3 — a source serving
	// 800x600 MPEG-2 at 512 Kbps, a user who wants 640x480 MPEG-4 at
	// 64 Kbps.
	src := p2prm.Format{Codec: p2prm.MPEG2, Width: 800, Height: 600, BitrateKbps: 512}
	mid := p2prm.Format{Codec: p2prm.MPEG2, Width: 640, Height: 480, BitrateKbps: 256}
	tgt := p2prm.Format{Codec: p2prm.MPEG4, Width: 640, Height: 480, BitrateKbps: 64}

	peer := func(objects ...p2prm.Object) p2prm.PeerInfo {
		return p2prm.PeerInfo{
			SpeedWU:       10,
			BandwidthKbps: 5000,
			UptimeSec:     7200,
			Objects:       objects,
			Services: []p2prm.Transcoder{
				{From: src, To: mid},
				{From: mid, To: tgt},
			},
		}
	}

	// Build a six-peer domain; the founder becomes the Resource Manager
	// and also stores the media object.
	movie := p2prm.Object{Name: "movie", Format: src, Bytes: 512 * 1000 / 8 * 20} // 20s clip
	rm := sim.AddFounder(peer(movie))
	for i := 0; i < 5; i++ {
		sim.AddPeer(peer(), rm)
	}
	sim.RunFor(5 * p2prm.Second)
	fmt.Printf("overlay: %d peers joined, Resource Manager = node %d\n",
		sim.JoinedCount(), sim.ResourceManagers()[0])

	// (A) Submit the user query from peer 3.
	fmt.Println("\n(A) peer 3 submits a query: movie as MPEG-4 640x480 <=64Kbps, startup deadline 2s")
	sim.Submit(sim.Now(), 3, p2prm.TaskSpec{
		ObjectName: "movie",
		Constraint: p2prm.Constraint{
			Codecs:         []p2prm.Codec{p2prm.MPEG4},
			MaxWidth:       640,
			MaxHeight:      480,
			MaxBitrateKbps: 64,
		},
		DeadlineMicros: 2_000_000,
		DurationSec:    20,
		ChunkSec:       1,
	})

	// (B) Let the allocation and composition happen.
	sim.RunFor(2 * p2prm.Second)
	ev := sim.Events()
	if ev.Admitted != 1 {
		log.Fatalf("task was not admitted: %+v", ev)
	}
	fmt.Println("(B) the Resource Manager searched its resource graph and composed the service graph")

	// (C) Stream to completion.
	sim.RunFor(60 * p2prm.Second)
	ev = sim.Events()
	if len(ev.Reports) != 1 {
		log.Fatalf("no session report: %+v", ev)
	}
	r := ev.Reports[0]
	fmt.Printf("(C) transcoded streaming finished: %d/%d chunks delivered, %d missed deadlines\n",
		r.Received, r.Chunks, r.Missed)
	fmt.Printf("    startup latency %.1f ms (budget 2000 ms), mean pipeline latency %.1f ms\n",
		float64(r.StartupMicros)/1000, r.MeanLatencyMicros/1000)
	fmt.Printf("\ntotal protocol+data messages exchanged: %d\n", sim.MessagesSent())
}
