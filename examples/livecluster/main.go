// Livecluster: the same middleware running in real time.
//
// Five peers run as goroutines with serialized mailboxes (the live
// runtime; swap in the TCP transport and this spans machines — see
// cmd/p2pnode). They form a domain, a user peer requests a transcode,
// and the pipeline streams 50ms chunks under wall-clock deadlines.
//
// Run: go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	cfg := p2prm.DefaultConfig()
	// Real-time run: tighten the control periods so the demo is snappy.
	cfg.HeartbeatPeriod = 100 * p2prm.Millisecond
	cfg.ProfilePeriod = 100 * p2prm.Millisecond
	cfg.BackupSyncPeriod = 250 * p2prm.Millisecond
	cfg.GossipPeriod = 0
	cfg.AdaptPeriod = 0

	l, err := p2prm.NewLive(cfg, p2prm.LiveOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()

	src := p2prm.Format{Codec: p2prm.MPEG2, Width: 800, Height: 600, BitrateKbps: 512}
	mid := p2prm.Format{Codec: p2prm.MPEG2, Width: 640, Height: 480, BitrateKbps: 256}
	tgt := p2prm.Format{Codec: p2prm.MPEG4, Width: 640, Height: 480, BitrateKbps: 64}
	peer := func(objects ...p2prm.Object) p2prm.PeerInfo {
		return p2prm.PeerInfo{
			SpeedWU:       50,
			BandwidthKbps: 10000,
			UptimeSec:     7200,
			Objects:       objects,
			Services: []p2prm.Transcoder{
				{From: src, To: mid},
				{From: mid, To: tgt},
			},
		}
	}

	clip := p2prm.Object{Name: "clip", Format: src, Bytes: 512 * 1000 / 8 * 3} // 3s
	fmt.Println("starting 5 live peers (goroutines with serialized mailboxes)...")
	rm := l.StartFounder(peer(clip))
	var others []p2prm.NodeID
	for i := 0; i < 4; i++ {
		others = append(others, l.StartPeer(peer(), rm))
	}

	waitUntil(5*time.Second, func() bool {
		if !l.Joined(rm) {
			return false
		}
		for _, id := range others {
			if !l.Joined(id) {
				return false
			}
		}
		return true
	})
	fmt.Printf("overlay formed: node %d is the Resource Manager\n", rm)

	user := others[len(others)-1]
	fmt.Printf("node %d requests 'clip' as MPEG-4 640x480 (3s of media, 50ms chunks)...\n", user)
	start := time.Now()
	taskID := l.Submit(user, p2prm.TaskSpec{
		ObjectName: "clip",
		Constraint: p2prm.Constraint{
			Codecs:         []p2prm.Codec{p2prm.MPEG4},
			MaxWidth:       640,
			MaxHeight:      480,
			MaxBitrateKbps: 64,
		},
		DeadlineMicros: 500_000, // 500ms startup budget
		DurationSec:    3,
		ChunkSec:       0.05,
	})
	fmt.Printf("task %s submitted; streaming in real time...\n", taskID)

	waitUntil(15*time.Second, func() bool { return len(l.Events().Reports) > 0 })
	r := l.Events().Reports[0]
	fmt.Printf("\nsession finished after %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  chunks delivered:   %d/%d\n", r.Received, r.Chunks)
	fmt.Printf("  deadline misses:    %d\n", r.Missed)
	fmt.Printf("  startup latency:    %.1f ms (budget 500 ms)\n", float64(r.StartupMicros)/1000)
	fmt.Printf("  mean chunk latency: %.2f ms\n", r.MeanLatencyMicros/1000)
	fmt.Printf("  pipeline repaired:  %d times\n", r.Repaired)
}

func waitUntil(timeout time.Duration, cond func() bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("timed out waiting for the live cluster")
}
