// Figure 1: the paper's worked resource-graph example, executable.
//
// Rebuilds G_r for the 800x600 MPEG-2 @512Kbps -> 640x480 MPEG-4 @64Kbps
// scenario, enumerates the three feasible edge sequences the paper names,
// runs the Figure-3 allocation algorithm under several load conditions,
// and prints the resulting service graph G_s.
//
// Run: go run ./examples/figure1
package main

import (
	"fmt"

	"repro/internal/graph"
)

func main() {
	f := graph.Figure1Example(10_000)

	fmt.Println("Resource graph G_r (paper Figure 1A):")
	fmt.Print(f.G)

	fmt.Printf("\nsource state  v1 = %s\n", f.Source)
	fmt.Printf("target state  v3 = %s\n", f.Target)

	fmt.Println("\nAll simple v1->v3 paths (the paper names exactly these):")
	for _, p := range f.AllPathNames() {
		fmt.Println("  " + p)
	}

	req := graph.Request{Init: f.VInit, Goal: f.VSol, ChunkSeconds: 1, DeadlineMicros: 60_000_000}
	show := func(label string, pv *graph.PeerView) {
		alloc, err := (graph.FairnessBFS{}).Allocate(f.G, req, pv)
		if err != nil {
			fmt.Printf("%-28s -> no allocation satisfies the QoS (reported, §4.3)\n", label)
			return
		}
		sg := graph.BuildServiceGraph(f.G, "fig1-demo", alloc.Path, 0, 5)
		fmt.Printf("%-28s -> %s  (fairness %.3f, est. latency %.0f ms)\n",
			label, f.G.PathNames(alloc.Path), alloc.Fairness, float64(alloc.LatencyMicros)/1000)
		fmt.Printf("%-28s    G_s: %s\n", "", sg)
	}

	fmt.Println("\nFigure-3 allocation under different load conditions:")
	show("all peers idle", f.IdlePeers(10))

	pv := f.IdlePeers(10)
	pv.Load[1] = 9 // peer offering e2 and e8
	show("peer of e2/e8 loaded", pv)

	pv = f.IdlePeers(10)
	pv.Load[2] = 9 // peer offering e3
	show("peer of e3 loaded", pv)

	pv = f.IdlePeers(10)
	pv.Load[1], pv.Load[2] = 9, 9
	show("both 2-hop peers saturated", pv)
}
