// Command p2plint is the project's static-analysis gate: a
// go/analysis unitchecker bundling the five repo-specific analyzers
// (clockcheck, eventguard, lockfield, metriclabel, replaysafe). It is
// built to be driven by the go command:
//
//	go build -o bin/p2plint ./cmd/p2plint
//	go vet -vettool=$(pwd)/bin/p2plint ./...
//
// which is what `make lint` (and therefore `make check` and CI) runs.
// Each analyzer documents its invariant and its //lint:allow escape
// hatch; see internal/lint and the "Static analysis" section of
// README.md.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint/clockcheck"
	"repro/internal/lint/eventguard"
	"repro/internal/lint/lockfield"
	"repro/internal/lint/metriclabel"
	"repro/internal/lint/replaysafe"
)

func main() {
	unitchecker.Main(
		clockcheck.Analyzer,
		eventguard.Analyzer,
		lockfield.Analyzer,
		metriclabel.Analyzer,
		replaysafe.Analyzer,
	)
}
