// Command p2plint is the project's static-analysis gate: a
// go/analysis unitchecker bundling the six repo-specific analyzers
// (clockcheck, eventguard, lockfield, maporder, metriclabel,
// replaysafe). It is built to be driven by the go command:
//
//	go build -o bin/p2plint ./cmd/p2plint
//	go vet -vettool=$(pwd)/bin/p2plint ./...
//
// which is what `make lint` (and therefore CI) runs. Each analyzer
// documents its invariant and its escape hatch (//lint:allow or
// //lint:ignore with a mandatory reason); see internal/lint and the
// "Static analysis" section of README.md.
//
// Beyond the vet protocol, p2plint has two standalone modes that need
// the whole module at once rather than one package per invocation:
//
//	p2plint -lockorder [-write] [root]
//
// builds the whole-program lock-acquisition graph (internal/lint/
// lockorder), fails on cycles, and checks the ranked order against the
// committed internal/lint/lockorder/ORDER.golden; -write regenerates
// the golden after a reviewed change (`make lockorder-golden`).
//
//	p2plint -json [root]
//
// runs every analyzer plus the lock-order check over the module and
// emits the findings as a sorted JSON array on stdout — one object per
// diagnostic with file/line/col/analyzer/message/suggested_fix — for
// CI artifacts and tooling. Exit status 1 when there are findings.
package main

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/unitchecker"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/clockcheck"
	"repro/internal/lint/eventguard"
	"repro/internal/lint/lintutil"
	"repro/internal/lint/lockfield"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/maporder"
	"repro/internal/lint/metriclabel"
	"repro/internal/lint/replaysafe"
	"repro/internal/lint/srcload"
)

// analyzers is the vet-mode bundle; -json runs the same set.
var analyzers = []*analysis.Analyzer{
	clockcheck.Analyzer,
	eventguard.Analyzer,
	lockfield.Analyzer,
	maporder.Analyzer,
	metriclabel.Analyzer,
	replaysafe.Analyzer,
}

// goldenRel locates the committed lock order inside the module.
const goldenRel = "internal/lint/lockorder/ORDER.golden"

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "-lockorder":
			os.Exit(lockorderMode(os.Args[2:]))
		case "-json":
			os.Exit(jsonMode(os.Args[2:]))
		}
	}
	unitchecker.Main(analyzers...)
}

// parseRoot splits a standalone mode's arguments into flags and the
// optional module root (default ".").
func parseRoot(args []string) (root string, write bool) {
	root = "."
	for _, a := range args {
		if a == "-write" {
			write = true
			continue
		}
		root = a
	}
	return root, write
}

// lockorderMode checks (or with -write, regenerates) ORDER.golden.
func lockorderMode(args []string) int {
	root, write := parseRoot(args)
	res, err := lockorder.Run(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2plint -lockorder: %v\n", err)
		return 2
	}
	if len(res.Cycles) > 0 {
		fmt.Fprint(os.Stderr, res.CycleReport())
		return 1
	}
	golden := filepath.Join(root, filepath.FromSlash(goldenRel))
	if write {
		if err := os.WriteFile(golden, []byte(res.Golden()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "p2plint -lockorder: %v\n", err)
			return 2
		}
		fmt.Printf("wrote %s (%d locks, %d edges)\n", golden, len(res.Locks), len(res.Edges))
		return 0
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2plint -lockorder: %v (regenerate with `make lockorder-golden`)\n", err)
		return 2
	}
	if diff := lockorder.Diff(string(want), res.Golden()); diff != "" {
		fmt.Fprintf(os.Stderr, "lock acquisition order changed; review and run `make lockorder-golden`:\n%s", diff)
		return 1
	}
	fmt.Printf("lock order OK (%d locks, %d edges, 0 cycles)\n", len(res.Locks), len(res.Edges))
	return 0
}

// jsonMode runs every analyzer over the source-loaded module and emits
// machine-readable findings.
func jsonMode(args []string) int {
	root, _ := parseRoot(args)
	fset := token.NewFileSet()
	pkgs, err := srcload.Load(&srcload.Config{Fset: fset, Root: root, Module: "repro"})
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2plint -json: %v\n", err)
		return 2
	}
	var findings []lintutil.Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if err := runAnalyzer(a, fset, pkg, &findings); err != nil {
				fmt.Fprintf(os.Stderr, "p2plint -json: %s on %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
		}
	}
	findings = append(findings, lockorderFindings(root)...)
	abs, err := filepath.Abs(root)
	if err == nil {
		lintutil.TrimRoot(findings, abs)
	}
	lintutil.TrimRoot(findings, root)
	if err := lintutil.WriteFindings(os.Stdout, findings); err != nil {
		fmt.Fprintf(os.Stderr, "p2plint -json: %v\n", err)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// runAnalyzer drives one analyzer over one loaded package, collecting
// its diagnostics as findings (the linttest pass-construction idiom).
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, pkg *srcload.Package, findings *[]lintutil.Finding) error {
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      pkg.Files,
		Pkg:        pkg.Pkg,
		TypesInfo:  pkg.Info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]any{},
		Report: func(d analysis.Diagnostic) {
			*findings = append(*findings, lintutil.NewFinding(fset, a.Name, d))
		},
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
	}
	for _, req := range a.Requires {
		if req != inspect.Analyzer {
			return fmt.Errorf("unsupported analyzer dependency %s", req.Name)
		}
		pass.ResultOf[req] = inspector.New(pkg.Files)
	}
	_, err := a.Run(pass)
	return err
}

// lockorderFindings folds the whole-program lock-order check into the
// findings stream: each cycle edge is a finding at its first witness,
// and a stale ORDER.golden is a finding on the golden itself.
func lockorderFindings(root string) []lintutil.Finding {
	fail := func(msg string) []lintutil.Finding {
		return []lintutil.Finding{{File: goldenRel, Line: 1, Col: 1, Analyzer: "lockorder", Message: msg}}
	}
	res, err := lockorder.Run(root)
	if err != nil {
		return fail(fmt.Sprintf("analysis failed: %v", err))
	}
	var out []lintutil.Finding
	for _, cyc := range res.Cycles {
		for _, e := range cyc.Edges {
			f := lintutil.Finding{File: goldenRel, Line: 1, Col: 1, Analyzer: "lockorder"}
			if len(e.Witness) > 0 {
				if file, line, ok := splitWitness(e.Witness[0]); ok {
					f.File, f.Line = file, line
				}
			}
			f.Message = fmt.Sprintf("lock-order cycle: %s acquired while %s held, and the reverse elsewhere (run p2plint -lockorder for the full paths)", e.To, e.From)
			out = append(out, f)
		}
	}
	if len(out) > 0 {
		return out
	}
	want, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(goldenRel)))
	if err != nil {
		return fail(fmt.Sprintf("reading golden: %v (regenerate with `make lockorder-golden`)", err))
	}
	if lockorder.Diff(string(want), res.Golden()) != "" {
		return fail("lock acquisition order changed; review and run `make lockorder-golden`")
	}
	return nil
}

// splitWitness recovers file and line from a "file:line: what" step.
func splitWitness(w string) (string, int, bool) {
	var file string
	var line int
	// The file part may itself contain colons on exotic paths; scan for
	// the ":<digits>:" separator from the left.
	for i := 0; i < len(w); i++ {
		if w[i] != ':' {
			continue
		}
		j := i + 1
		n := 0
		for j < len(w) && w[j] >= '0' && w[j] <= '9' {
			n = n*10 + int(w[j]-'0')
			j++
		}
		if j > i+1 && j < len(w) && w[j] == ':' {
			file, line = w[:i], n
			return file, line, true
		}
	}
	return "", 0, false
}
