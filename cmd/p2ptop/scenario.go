package main

import (
	"fmt"
	"os"

	"repro/internal/scenario"
)

// runScenarioReports renders one or more scenario assertion reports
// (the JSON documents `p2psim -scenario-report` / `p2pnode
// -scenario-report` write) as the human pass/fail table — the dashboard
// view of a chaos-suite run. Exit 1 when any report failed or could not
// be read, so CI can gate on the aggregated artifacts.
func runScenarioReports(paths []string) int {
	code := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2ptop: %v\n", err)
			code = 1
			continue
		}
		rep, err := scenario.ReadReport(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2ptop: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s:\n", path)
		rep.Render(os.Stdout)
		if !rep.Pass {
			code = 1
		}
	}
	return code
}
