// Command p2ptop is the fleet dashboard: it scrapes the diagnostics
// endpoints of N live nodes (or loads a p2psim -obs directory), merges
// their quantile sketches, traces, decisions and metrics into one fleet
// view, and renders it as a refreshing text dashboard.
//
// Against a TCP cluster (each p2pnode started with -http):
//
//	p2ptop -nodes http://localhost:9090,http://localhost:9091
//
// Against simulator output:
//
//	p2psim -obs out/ && p2ptop -dir out/
//
// Flags:
//
//	-once    render a single frame and exit (default refreshes forever)
//	-check   with -once: exit 1 unless the merged view contains at least
//	         one stitched cross-node session and a non-zero allocation
//	         latency p99 — the smoke-test gate `make obs` runs
//	-json    emit the merged fleet view as JSON instead of the dashboard
//
// Scenario-report mode renders chaos-suite verdicts instead of scraping:
//
//	p2ptop -scenario reports/*.json     # exit 1 if any report failed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	var (
		nodesFlag = flag.String("nodes", "", "comma-separated diagnostics base URLs, e.g. http://host:9090,...")
		dir       = flag.String("dir", "", "load a p2psim -obs output directory instead of scraping")
		interval  = flag.Duration("interval", 2*time.Second, "refresh period")
		once      = flag.Bool("once", false, "render one frame and exit")
		check     = flag.Bool("check", false, "with -once: exit 1 unless the view shows a stitched cross-node session and a non-zero alloc p99")
		asJSON    = flag.Bool("json", false, "emit the merged fleet view as JSON")
		scenario  = flag.Bool("scenario", false, "treat the positional arguments as scenario assertion reports (JSON): render each and exit 1 if any failed")
	)
	flag.Parse()

	if *scenario {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "p2ptop: -scenario needs report paths as arguments")
			os.Exit(2)
		}
		os.Exit(runScenarioReports(flag.Args()))
	}

	if (*nodesFlag == "") == (*dir == "") {
		fmt.Fprintln(os.Stderr, "p2ptop: need exactly one of -nodes or -dir")
		os.Exit(2)
	}

	var urls []string
	for _, u := range strings.Split(*nodesFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	client := &http.Client{Timeout: obs.DefaultScrapeTimeout}

	gather := func() (*obs.Fleet, error) {
		if *dir != "" {
			n, err := obs.LoadDir(*dir)
			if err != nil {
				return nil, err
			}
			return obs.Collect([]obs.NodeData{n}), nil
		}
		nodes := make([]obs.NodeData, 0, len(urls))
		for i, u := range urls {
			nodes = append(nodes, obs.Scrape(client, fmt.Sprintf("node%d@%s", i, u), u))
		}
		return obs.Collect(nodes), nil
	}

	render := func(f *obs.Fleet) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Sketches  []stats.SketchJSON  `json:"sketches"`
				Domains   []obs.DomainSummary `json:"domains"`
				Sessions  []obs.SessionTrack  `json:"sessions"`
				CrossNode int                 `json:"cross_node_sessions"`
				Drops     map[string]uint64   `json:"drops"`
			}{f.Sketches, f.Domains, f.Sessions, len(f.CrossNode()), f.Drops})
			return
		}
		obs.Render(os.Stdout, f)
	}

	if *once {
		f, err := gather()
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2ptop: %v\n", err)
			os.Exit(1)
		}
		render(f)
		if *check {
			os.Exit(runCheck(f))
		}
		return
	}

	for {
		f, err := gather()
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2ptop: %v\n", err)
		} else {
			fmt.Print("\033[H\033[2J") // clear; plain text otherwise
			render(f)
		}
		time.Sleep(*interval)
	}
}

// runCheck is the smoke-test assertion: the fleet view must contain at
// least one stitched session and a usable allocation-latency p99. In
// file mode (one sim process hosts every node) the stitching bar is the
// same — sessions spanning two node TIDs — since sim peers share a
// tracer but emit spans under their own TIDs.
func runCheck(f *obs.Fleet) int {
	ok := true
	cross := len(f.CrossNode())
	if cross == 0 {
		fmt.Fprintln(os.Stderr, "CHECK FAIL: no stitched cross-node session in the merged trace")
		ok = false
	} else {
		fmt.Printf("CHECK ok: %d stitched cross-node session(s)\n", cross)
	}
	p99 := f.Quantile(stats.SketchAllocLatency, 0.99)
	if p99 <= 0 {
		fmt.Fprintln(os.Stderr, "CHECK FAIL: allocation latency p99 is empty")
		ok = false
	} else {
		fmt.Printf("CHECK ok: allocation latency p99 = %.6fs\n", p99)
	}
	if !ok {
		return 1
	}
	return 0
}
