// Command p2pnode runs one live middleware peer over TCP — the
// deployable daemon form of the system. Several p2pnode processes with a
// shared address book form a real overlay; the first one (-founder)
// becomes the Resource Manager of domain 0.
//
// Example (three shells):
//
//	p2pnode -id 0 -listen :7000 -book "1=localhost:7001,2=localhost:7002" \
//	        -founder -object "movie:30" -speed 10
//	p2pnode -id 1 -listen :7001 -book "0=localhost:7000,2=localhost:7002" \
//	        -bootstrap 0 -speed 10
//	p2pnode -id 2 -listen :7002 -book "0=localhost:7000,1=localhost:7001" \
//	        -bootstrap 0 -speed 10 -submit movie -after 3s
//
// The -submit node issues a transcoding query once joined and prints the
// session report.
//
// Scenario mode replaces daemon mode and drives a whole fleet from one
// declarative file (the same format p2psim -scenario runs on the
// virtual clock):
//
//	p2pnode -scenario f.yaml [-scenario-pace 2] [-scenario-report out.json]
//	p2pnode -scenario f.yaml -scenario-part 0/2 -scenario-peers ":7461,:7462"
//	p2pnode -scenario f.yaml -scenario-part 1/2 -scenario-peers ":7461,:7462"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		id          = flag.Int("id", 0, "this node's global ID")
		listen      = flag.String("listen", ":7000", "TCP listen address")
		book        = flag.String("book", "", "address book: 'id=host:port,id=host:port,...'")
		founder     = flag.Bool("founder", false, "found domain 0 (first node of the overlay)")
		bootstrap   = flag.Int("bootstrap", -1, "node ID to join through (ignored with -founder)")
		speed       = flag.Float64("speed", 10, "processing power (work units/s)")
		bandwidth   = flag.Float64("bw", 5000, "access bandwidth (Kbps)")
		uptime      = flag.Float64("uptime", 7200, "historical uptime (s), used for RM qualification")
		object      = flag.String("object", "", "host an object: 'name:durationSeconds'")
		submit      = flag.String("submit", "", "submit a query for this object name once joined")
		after       = flag.Duration("after", 3*time.Second, "delay before -submit")
		linger      = flag.Duration("linger", 0, "keep running this long after the -submit report, so -http stays scrapable (e.g. by p2ptop)")
		disc        = flag.String("discovery", "", "discovery backend: gossip or dht (default: gossip; with -scenario, the file's choice)")
		verbose     = flag.Bool("v", false, "log node diagnostics (structured key=value lines)")
		httpAddr    = flag.String("http", "", "HTTP diagnostics address, e.g. :9090 (/metrics, /sketches, /decisions, /trace, /healthz, /debug/pprof)")
		record      = flag.String("record", "", "flight-recorder directory: log all nondeterministic inputs for 'p2psim -replay'")
		seed        = flag.Uint64("seed", 0, "run seed; give every node of the overlay the same value so span IDs agree across processes and p2ptop stitches their traces (0 derives a per-node seed from -id)")
		scenFile    = flag.String("scenario", "", "run a declarative scenario file on the live runtime instead of daemon mode (same file format as p2psim -scenario)")
		scenPart    = flag.String("scenario-part", "", "with -scenario: host the fleet slice 'k/n' (node indexes with index%n == k); requires -scenario-peers for n > 1")
		scenPeers   = flag.String("scenario-peers", "", "with -scenario-part k/n: comma-separated TCP listen addresses of all n parts, index-aligned")
		scenPace    = flag.Float64("scenario-pace", 1, "with -scenario: divide scripted times (2 = run the timeline twice as fast)")
		scenOut     = flag.String("scenario-report", "", "with -scenario: write the machine-readable assertion report (JSON) here")
		flushBudget = flag.Duration("flush-budget", time.Millisecond,
			"max time one coalesced transport write may keep draining a busy send queue (negative disables coalescing)")
		wireVersion = flag.Int("wire-version", 2,
			"wire dialect to speak when sending: 2 = compact binary codec with credit flow, 1 = legacy per-frame gob (receivers always accept both)")
	)
	var faults faultFlag
	flag.Var(&faults, "fault",
		"fault-injection rule 'FROM->TO:drop=0.2,dup=0.1,delay=50ms,sever' ('*' = any node); repeatable")
	flag.Parse()

	if *scenFile != "" {
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		os.Exit(runScenario(*scenFile, *scenPart, *scenPeers, *scenPace, *seed, seedSet, *scenOut, *disc))
	}

	cfg := p2prm.DefaultConfig()
	if *disc != "" {
		if *disc != "gossip" && *disc != "dht" {
			log.Fatalf("-discovery must be gossip or dht, got %q", *disc)
		}
		cfg.Discovery = *disc
	}
	info := p2prm.PeerInfo{
		SpeedWU:       *speed,
		BandwidthKbps: *bandwidth,
		UptimeSec:     *uptime,
		Services:      standardLadder(),
	}
	if *object != "" {
		name, dur := parseObject(*object)
		src := p2prm.Format{Codec: p2prm.MPEG2, Width: 800, Height: 600, BitrateKbps: 512}
		info.Objects = append(info.Objects, p2prm.Object{
			Name:   name,
			Format: src,
			Bytes:  int64(dur * float64(src.BitrateKbps) * 1000 / 8),
		})
	}

	runSeed := *seed
	if runSeed == 0 {
		runSeed = uint64(*id) + 1
	}
	// Always trace: the /trace endpoint is what the fleet collector
	// stitches, and the buffer is bounded (trace.DefaultMaxEvents).
	opts := p2prm.LiveOptions{Seed: runSeed, Listen: *listen, RecordDir: *record,
		Tracer: p2prm.NewTracer()}
	opts.Transport.FlushBudget = *flushBudget
	opts.Transport.WireVersion = *wireVersion
	if *verbose {
		opts.LogTo = os.Stderr
	}
	l, err := p2prm.NewLive(cfg, opts)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}

	// All exits funnel through shutdown so the flight recorder, trace and
	// metrics sinks are flushed exactly once — a SIGINT mid-run must not
	// leave a truncated final frame in the event log.
	var closeOnce sync.Once
	shutdown := func() { closeOnce.Do(l.Close) }
	defer shutdown()
	fail := func(format string, args ...any) {
		log.Printf(format, args...)
		shutdown()
		os.Exit(1)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("node %d shutting down (%v)", *id, s)
		shutdown()
		os.Exit(0)
	}()

	log.Printf("node %d listening on %s", *id, l.ListenAddr())
	if *record != "" {
		log.Printf("node %d recording to %s", *id, *record)
	}
	if *httpAddr != "" {
		addr, err := l.ServeDiagnostics(*httpAddr)
		if err != nil {
			fail("http: %v", err)
		}
		log.Printf("node %d diagnostics on http://%s/metrics", *id, addr)
	}

	for _, entry := range strings.Split(*book, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kv := strings.SplitN(entry, "=", 2)
		if len(kv) != 2 {
			fail("bad -book entry %q", entry)
		}
		rid, err := strconv.Atoi(kv[0])
		if err != nil {
			fail("bad -book id %q", kv[0])
		}
		l.Register(p2prm.NodeID(rid), kv[1])
	}

	for _, f := range faults {
		l.Fault(f.from, f.to, f.rule)
		log.Printf("node %d fault rule installed: %s", *id, f)
	}

	self := p2prm.NodeID(*id)
	if *founder {
		l.StartPeerWithID(self, info, p2prm.NoNode)
		log.Printf("node %d founded domain 0 as Resource Manager", *id)
	} else {
		if *bootstrap < 0 {
			fail("need -bootstrap or -founder")
		}
		l.StartPeerWithID(self, info, p2prm.NodeID(*bootstrap))
	}

	// Wait for membership.
	for !l.Joined(self) {
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("node %d joined the overlay (RM role: %v)", *id, l.IsRM(self))

	if *submit != "" {
		time.Sleep(*after)
		taskID := l.Submit(self, p2prm.TaskSpec{
			ObjectName: *submit,
			Constraint: p2prm.Constraint{
				Codecs:         []p2prm.Codec{p2prm.MPEG4},
				MaxWidth:       640,
				MaxHeight:      480,
				MaxBitrateKbps: 64,
			},
			DeadlineMicros: 2_000_000,
			DurationSec:    10,
			ChunkSec:       1,
		})
		log.Printf("submitted task %s for object %q", taskID, *submit)
		for {
			time.Sleep(250 * time.Millisecond)
			ev := l.Events()
			if len(ev.Reports) > 0 {
				r := ev.Reports[0]
				fmt.Printf("session %s: %d/%d chunks, %d missed, startup %.1fms, mean latency %.1fms\n",
					r.TaskID, r.Received, r.Chunks, r.Missed,
					float64(r.StartupMicros)/1000, r.MeanLatencyMicros/1000)
				time.Sleep(*linger)
				return
			}
			if ev.Rejected > 0 {
				fmt.Println("task rejected: no allocation satisfies the QoS requirements")
				time.Sleep(*linger)
				return
			}
		}
	}

	// Daemon mode: run until the signal handler exits the process.
	select {}
}

// faultSpec is one parsed -fault rule.
type faultSpec struct {
	from, to p2prm.NodeID
	rule     p2prm.FaultRule
}

// String renders the spec back in flag syntax (for logs).
func (f faultSpec) String() string {
	node := func(id p2prm.NodeID) string {
		if id == p2prm.NoNode {
			return "*"
		}
		return strconv.Itoa(int(id))
	}
	parts := []string{}
	if f.rule.Sever {
		parts = append(parts, "sever")
	}
	if f.rule.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", f.rule.Drop))
	}
	if f.rule.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", f.rule.Dup))
	}
	if f.rule.Delay > 0 {
		parts = append(parts, "delay="+f.rule.Delay.String())
	}
	return node(f.from) + "->" + node(f.to) + ":" + strings.Join(parts, ",")
}

// faultFlag collects repeated -fault values.
type faultFlag []faultSpec

func (f *faultFlag) String() string {
	specs := make([]string, len(*f))
	for i, s := range *f {
		specs[i] = s.String()
	}
	return strings.Join(specs, " ")
}

func (f *faultFlag) Set(v string) error {
	spec, err := parseFaultSpec(v)
	if err != nil {
		return err
	}
	*f = append(*f, spec)
	return nil
}

// parseFaultSpec parses 'FROM->TO:drop=0.2,dup=0.1,delay=50ms,sever'
// where FROM/TO are node IDs or '*' for any node.
func parseFaultSpec(s string) (faultSpec, error) {
	var spec faultSpec
	pair, opts, ok := strings.Cut(s, ":")
	if !ok {
		return spec, fmt.Errorf("fault %q: want 'FROM->TO:opts'", s)
	}
	from, to, ok := strings.Cut(pair, "->")
	if !ok {
		return spec, fmt.Errorf("fault %q: want 'FROM->TO' before ':'", s)
	}
	node := func(v string) (p2prm.NodeID, error) {
		v = strings.TrimSpace(v)
		if v == "*" || v == "" {
			return p2prm.NoNode, nil
		}
		id, err := strconv.Atoi(v)
		if err != nil || id < 0 {
			return p2prm.NoNode, fmt.Errorf("fault %q: bad node %q", s, v)
		}
		return p2prm.NodeID(id), nil
	}
	var err error
	if spec.from, err = node(from); err != nil {
		return spec, err
	}
	if spec.to, err = node(to); err != nil {
		return spec, err
	}
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		key, val, _ := strings.Cut(opt, "=")
		switch key {
		case "sever":
			spec.rule.Sever = true
		case "drop", "dup":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return spec, fmt.Errorf("fault %q: %s wants a probability in [0,1], got %q", s, key, val)
			}
			if key == "drop" {
				spec.rule.Drop = p
			} else {
				spec.rule.Dup = p
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return spec, fmt.Errorf("fault %q: delay wants a duration, got %q", s, val)
			}
			spec.rule.Delay = d
		default:
			return spec, fmt.Errorf("fault %q: unknown option %q (want drop, dup, delay, sever)", s, key)
		}
	}
	if spec.rule == (p2prm.FaultRule{}) {
		return spec, fmt.Errorf("fault %q: no effect; set drop, dup, delay, or sever", s)
	}
	return spec, nil
}

// standardLadder returns the default transcoder set every node offers.
func standardLadder() []p2prm.Transcoder {
	src := p2prm.Format{Codec: p2prm.MPEG2, Width: 800, Height: 600, BitrateKbps: 512}
	mid := p2prm.Format{Codec: p2prm.MPEG2, Width: 640, Height: 480, BitrateKbps: 256}
	tgt1 := p2prm.Format{Codec: p2prm.MPEG4, Width: 640, Height: 480, BitrateKbps: 64}
	tgt2 := p2prm.Format{Codec: p2prm.H263, Width: 320, Height: 240, BitrateKbps: 32}
	return []p2prm.Transcoder{
		{From: src, To: mid},
		{From: mid, To: tgt1},
		{From: mid, To: tgt2},
		{From: src, To: tgt1},
	}
}

func parseObject(s string) (string, float64) {
	parts := strings.SplitN(s, ":", 2)
	name := parts[0]
	dur := 30.0
	if len(parts) == 2 {
		if v, err := strconv.ParseFloat(parts[1], 64); err == nil {
			dur = v
		}
	}
	return name, dur
}
