package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/live"
	"repro/internal/scenario"
)

// runScenario executes a declarative scenario file on the live runtime
// (`p2pnode -scenario f.yaml`): the same file p2psim runs on the
// virtual clock maps here onto real goroutine nodes, the FaultInjector,
// and supervisor lifecycle. partSpec ("k/n") splits the fleet across n
// cooperating processes; peers lists every part's TCP listen address
// (comma-separated, index-aligned). pace > 1 compresses the scripted
// timeline. Exit 0 only when every assertion passed.
func runScenario(path, partSpec, peers string, pace float64, seed uint64, seedSet bool, reportPath, discovery string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		return 1
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario %s: %v\n", path, err)
		return 1
	}
	if discovery != "" {
		spec.Discovery = discovery
	}
	if !seedSet || seed == 0 {
		seed = spec.Seed
	}
	plan, err := scenario.Expand(spec, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario %s: %v\n", path, err)
		return 1
	}

	opts := scenario.LiveOptions{Pace: pace, Hooks: wallClockHooks()}
	if partSpec != "" {
		part, parts, err := parsePart(partSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			return 1
		}
		opts.Part, opts.Parts = part, parts
		if parts > 1 {
			for _, a := range strings.Split(peers, ",") {
				if a = strings.TrimSpace(a); a != "" {
					opts.PartAddrs = append(opts.PartAddrs, a)
				}
			}
			if len(opts.PartAddrs) != parts {
				fmt.Fprintf(os.Stderr, "scenario: -scenario-part %s needs %d -scenario-peers addresses, got %d\n",
					partSpec, parts, len(opts.PartAddrs))
				return 1
			}
		}
	}

	rep, err := scenario.RunLive(plan, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario %s: %v\n", path, err)
		return 1
	}
	rep.Render(os.Stdout)
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario report: %v\n", err)
			return 1
		}
		err = rep.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario report: %v\n", err)
			return 1
		}
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

// parsePart splits "k/n" into (part k, parts n) with 0 <= k < n.
func parsePart(s string) (part, parts int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if ok {
		part, err = strconv.Atoi(a)
		if err == nil {
			parts, err = strconv.Atoi(b)
		}
	}
	if !ok || err != nil || parts < 1 || part < 0 || part >= parts {
		return 0, 0, fmt.Errorf("bad -scenario-part %q (want k/n with 0 <= k < n)", s)
	}
	return part, parts, nil
}

// wallClockHooks supplies the real process clocks the scenario engine
// refuses to read itself (internal/scenario is on the determinism lint
// list; the daemon is where wall time legitimately enters).
func wallClockHooks() scenario.LiveHooks {
	start := time.Now()
	return scenario.LiveHooks{
		NowMicros:   func() int64 { return time.Since(start).Microseconds() },
		SleepMicros: func(us int64) { time.Sleep(time.Duration(us) * time.Microsecond) },
		Nanotime:    live.Nanotime,
	}
}
