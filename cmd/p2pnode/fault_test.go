package main

import (
	"testing"
	"time"

	"repro"
)

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in   string
		want faultSpec
	}{
		{"1->2:drop=0.2", faultSpec{from: 1, to: 2, rule: p2prm.FaultRule{Drop: 0.2}}},
		{"*->2:sever", faultSpec{from: p2prm.NoNode, to: 2, rule: p2prm.FaultRule{Sever: true}}},
		{"0->*:drop=0.1,dup=0.5,delay=50ms", faultSpec{
			from: 0, to: p2prm.NoNode,
			rule: p2prm.FaultRule{Drop: 0.1, Dup: 0.5, Delay: 50 * time.Millisecond},
		}},
		{"3->4:delay=1s,sever", faultSpec{
			from: 3, to: 4,
			rule: p2prm.FaultRule{Delay: time.Second, Sever: true},
		}},
		{" 1 -> 2 :drop=1", faultSpec{from: 1, to: 2, rule: p2prm.FaultRule{Drop: 1}}},
	}
	for _, c := range cases {
		got, err := parseFaultSpec(c.in)
		if err != nil {
			t.Errorf("parseFaultSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseFaultSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseFaultSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",                  // no pair
		"1->2",              // no options
		"1=2:drop=0.2",      // bad separator
		"1->2:drop=1.5",     // probability out of range
		"1->2:drop=x",       // unparsable probability
		"1->2:dup=-0.1",     // negative probability
		"1->2:delay=fast",   // bad duration
		"1->2:delay=-50ms",  // negative duration
		"1->2:jitter=50ms",  // unknown option
		"a->2:sever",        // bad node
		"-1->2:sever",       // negative node
		"1->2:",             // rule with no effect
		"1->2:drop=0,dup=0", // still no effect
	} {
		if _, err := parseFaultSpec(in); err == nil {
			t.Errorf("parseFaultSpec(%q) accepted", in)
		}
	}
}

func TestFaultFlagAccumulates(t *testing.T) {
	var f faultFlag
	if err := f.Set("1->2:drop=0.5"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("*->1:sever"); err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Fatalf("len = %d", len(f))
	}
	if s := f.String(); s != "1->2:drop=0.5 *->1:sever" {
		t.Fatalf("String() = %q", s)
	}
}
