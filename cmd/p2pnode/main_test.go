package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestThreeProcessOverlay builds the daemon and runs a real three-process
// overlay over TCP on loopback: a founder hosting an object, a worker,
// and a consumer that submits a transcode query and prints the session
// report.
func TestThreeProcessOverlay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := filepath.Join(t.TempDir(), "p2pnode")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build: %v", err)
	}

	ports := make([]int, 3)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().(*net.TCPAddr).Port
		ln.Close()
	}
	addr := func(i int) string { return fmt.Sprintf("127.0.0.1:%d", ports[i]) }
	book := func(self int) string {
		var parts []string
		for i := range ports {
			if i != self {
				parts = append(parts, fmt.Sprintf("%d=%s", i, addr(i)))
			}
		}
		return strings.Join(parts, ",")
	}

	founder := exec.Command(bin,
		"-id", "0", "-listen", addr(0), "-book", book(0),
		"-founder", "-object", "movie:10", "-speed", "20")
	worker := exec.Command(bin,
		"-id", "1", "-listen", addr(1), "-book", book(1),
		"-bootstrap", "0", "-speed", "20")
	var out bytes.Buffer
	consumer := exec.Command(bin,
		"-id", "2", "-listen", addr(2), "-book", book(2),
		"-bootstrap", "0", "-speed", "20",
		"-submit", "movie", "-after", "2s")
	consumer.Stdout = &out
	consumer.Stderr = &out

	if err := founder.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		founder.Process.Kill()
		founder.Wait()
	}()
	time.Sleep(300 * time.Millisecond)
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		worker.Process.Kill()
		worker.Wait()
	}()
	time.Sleep(300 * time.Millisecond)
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- consumer.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("consumer exited with %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		consumer.Process.Kill()
		t.Fatalf("consumer timed out\noutput:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "session") || !strings.Contains(s, "chunks") {
		t.Fatalf("no session report in output:\n%s", s)
	}
	if strings.Contains(s, "rejected") {
		t.Fatalf("task rejected:\n%s", s)
	}
}
