package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/scenario"
)

// runScenarioBench is p2pbench's scenario timing mode: execute one
// declarative scenario file on the deterministic simulator `runs` times
// (seed, seed+1, ...) and emit one CSV row per run — wall-clock cost
// plus the outcome counters, for tracking how the chaos suite's
// heaviest files trend over time. Assertion results are reported per
// row; a failing run fails the sweep. Table content is deterministic
// given the seeds; only wall_ms varies.
func runScenarioBench(path string, seed uint64, seedSet bool, runs int) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		return 2
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario %s: %v\n", path, err)
		return 2
	}
	if !seedSet {
		seed = spec.Seed
	}
	if runs < 1 {
		runs = 1
	}

	fmt.Println("run,seed,pass,wall_ms,submitted,admitted,rejected,failovers,repairs,fault_drops,net_drops")
	code := 0
	for i := 0; i < runs; i++ {
		s := seed + uint64(i)
		plan, err := scenario.Expand(spec, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario %s seed %d: %v\n", path, s, err)
			return 2
		}
		start := time.Now()
		rep := scenario.RunSim(plan)
		wall := time.Since(start)
		sum := rep.Summary
		fmt.Printf("%d,%d,%t,%.1f,%d,%d,%d,%d,%d,%d,%d\n",
			i, s, rep.Pass, float64(wall.Microseconds())/1000,
			sum.Submitted, sum.Admitted, sum.Rejected,
			sum.Failovers, sum.Repairs, sum.FaultDrops, sum.NetDrops)
		if !rep.Pass {
			code = 1
		}
	}
	return code
}
