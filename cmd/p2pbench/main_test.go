package main

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/benchcmp"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts(" 1, 2,3 ")
	if err != nil || len(ints) != 3 || ints[2] != 3 {
		t.Fatalf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad int accepted")
	}
	floats, err := parseFloats("0.5, 1.5")
	if err != nil || len(floats) != 2 || floats[1] != 1.5 {
		t.Fatalf("parseFloats = %v, %v", floats, err)
	}
	if _, err := parseFloats("a"); err == nil {
		t.Fatal("bad float accepted")
	}
}

// TestRunCellIndependentUnderConcurrency backs the -parallel flag: cells
// derive all state from their own (seed, params) rng, so concurrent
// execution must yield the same CSV rows as sequential.
func TestRunCellIndependentUnderConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four simulated cells")
	}
	type cell struct {
		n    int
		rate float64
	}
	grid := []cell{{12, 0.5}, {16, 1.0}}
	seq := make([]string, len(grid))
	for i, g := range grid {
		seq[i] = runCell(7, g.n, g.rate, 0, 16, 15*sim.Second, nil)
	}
	par := make([]string, len(grid))
	var wg sync.WaitGroup
	for i, g := range grid {
		wg.Add(1)
		go func(i int, g cell) {
			defer wg.Done()
			par[i] = runCell(7, g.n, g.rate, 0, 16, 15*sim.Second, nil)
		}(i, g)
	}
	wg.Wait()
	for i := range grid {
		if par[i] != seq[i] {
			t.Errorf("cell %d diverged under concurrency:\npar %s\nseq %s", i, par[i], seq[i])
		}
	}
}

func TestSortedNames(t *testing.T) {
	names := sortedNames(map[string]benchcmp.Metrics{"B": {}, "A": {}, "C": {}})
	if len(names) != 3 || names[0] != "A" || names[2] != "C" {
		t.Fatalf("sortedNames = %v", names)
	}
}

func TestRunCellProducesCSVRow(t *testing.T) {
	reg := metrics.NewRegistry()
	row := runCell(1, 12, 0.5, 0, 16, 20*sim.Second, reg)
	fields := strings.Split(row, ",")
	if len(fields) != 13 {
		t.Fatalf("fields = %d: %q", len(fields), row)
	}
	if fields[0] != "12" || fields[1] != "0.5" {
		t.Fatalf("row prefix: %q", row)
	}
	if len(reg.Snapshot()) == 0 {
		t.Fatal("attached registry stayed empty over a loaded run")
	}
}
