package main

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts(" 1, 2,3 ")
	if err != nil || len(ints) != 3 || ints[2] != 3 {
		t.Fatalf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad int accepted")
	}
	floats, err := parseFloats("0.5, 1.5")
	if err != nil || len(floats) != 2 || floats[1] != 1.5 {
		t.Fatalf("parseFloats = %v, %v", floats, err)
	}
	if _, err := parseFloats("a"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestRunCellProducesCSVRow(t *testing.T) {
	reg := metrics.NewRegistry()
	row := runCell(1, 12, 0.5, 0, 16, 20*sim.Second, reg)
	fields := strings.Split(row, ",")
	if len(fields) != 13 {
		t.Fatalf("fields = %d: %q", len(fields), row)
	}
	if fields[0] != "12" || fields[1] != "0.5" {
		t.Fatalf("row prefix: %q", row)
	}
	if len(reg.Snapshot()) == 0 {
		t.Fatal("attached registry stayed empty over a loaded run")
	}
}
