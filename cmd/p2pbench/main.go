// Command p2pbench sweeps a simulated overlay across a parameter grid and
// emits CSV, for plotting or regression tracking beyond the fixed
// experiment suite. With -regress it instead runs the repo's root
// benchmarks, snapshots the results as bench/BENCH_<date>.json, and fails
// when they regress past a tolerance versus the previous snapshot.
//
// Usage:
//
//	p2pbench [-peers 16,64,256] [-rates 0.5,1,2] [-churn 0,6]
//	         [-domain 32] [-seed 42] [-horizon 120] [-parallel N]
//	p2pbench -regress [-regress-bench '.'] [-regress-count 5]
//	         [-regress-benchtime 1s] [-regress-dir bench]
//	         [-regress-tolerance 0.20]
//	p2pbench -scenario f.yaml [-scenario-runs 3] [-seed N]
//
// Output columns (sweep mode):
//
//	peers,rate,churn_per_min,domains,submitted,admitted,rejected,
//	redirected,repairs,failovers,sessions_done,chunk_miss,msgs_total
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/benchcmp"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/profutil"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		peersFlag  = flag.String("peers", "16,64", "overlay sizes to sweep")
		ratesFlag  = flag.String("rates", "0.5,1.5", "task arrival rates (tasks/s)")
		churnFlag  = flag.String("churn", "0", "churn rates (events/min)")
		domainCap  = flag.Int("domain", 32, "max peers per domain")
		seed       = flag.Uint64("seed", 42, "run seed")
		horizonSec = flag.Int("horizon", 120, "loaded-phase length (sim seconds)")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep cells to run concurrently (CSV order is preserved)")
		metricsOut = flag.String("metrics", "", "write the last cell's labeled metrics registry as JSON here")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile here")
		memProfile = flag.String("memprofile", "", "write a heap profile here on exit")

		regress    = flag.Bool("regress", false, "benchmark regression mode: run root benchmarks, compare vs the last snapshot, record a new one")
		regBench   = flag.String("regress-bench", ".", "benchmark pattern passed to go test -bench")
		regCount   = flag.Int("regress-count", 5, "repetitions per benchmark (-count); minimum is taken")
		regTime    = flag.String("regress-benchtime", "", "per-benchmark time or iteration budget (-benchtime)")
		regDir     = flag.String("regress-dir", "bench", "directory holding BENCH_<date>.json snapshots")
		regTol     = flag.Float64("regress-tolerance", 0.20, "allowed fractional ns/op increase before failing")
		regPkg     = flag.String("regress-pkg", ".", "package whose benchmarks are run")
		regDate    = flag.String("regress-date", "", "snapshot date stamp (default: today, YYYY-MM-DD)")
		regDry     = flag.Bool("regress-dry", false, "compare only; do not write a new snapshot")
		regVerbose = flag.Bool("regress-v", false, "echo raw go test -bench output")

		scenFile = flag.String("scenario", "", "scenario timing mode: run this declarative scenario file on the simulator and emit per-run timing CSV (skips the sweep)")
		scenRuns = flag.Int("scenario-runs", 3, "with -scenario: number of runs (seeds seed, seed+1, ...)")
	)
	flag.Parse()

	stopCPU, err := profutil.StartCPU(*cpuProfile)
	die(err)
	exit := func(code int) {
		die(stopCPU())
		die(profutil.WriteHeap(*memProfile))
		os.Exit(code)
	}

	if *scenFile != "" {
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		exit(runScenarioBench(*scenFile, *seed, seedSet, *scenRuns))
	}

	if *regress {
		date := *regDate
		if date == "" {
			date = time.Now().UTC().Format("2006-01-02")
		}
		code := runRegress(regressConfig{
			bench: *regBench, count: *regCount, benchtime: *regTime,
			dir: *regDir, tolerance: *regTol, pkg: *regPkg,
			date: date, dry: *regDry, verbose: *regVerbose,
		}, os.Stdout)
		exit(code)
	}

	peers, err := parseInts(*peersFlag)
	die(err)
	rates, err := parseFloats(*ratesFlag)
	die(err)
	churns, err := parseFloats(*churnFlag)
	die(err)

	type cell struct {
		n     int
		rate  float64
		churn float64
	}
	var grid []cell
	for _, n := range peers {
		for _, rate := range rates {
			for _, churn := range churns {
				grid = append(grid, cell{n, rate, churn})
			}
		}
	}

	fmt.Println("peers,rate,churn_per_min,domains,submitted,admitted,rejected,redirected,repairs,failovers,sessions_done,chunk_miss,msgs_total")
	rows := make([]string, len(grid))
	var reg *metrics.Registry // last cell's registry, for -metrics
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(grid) {
		workers = len(grid)
	}
	// Each cell builds its own cluster and rng from (seed, cell params), so
	// cells are independent and the CSV is identical at any worker count.
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				g := grid[i]
				var cellReg *metrics.Registry
				if *metricsOut != "" {
					cellReg = metrics.NewRegistry()
				}
				rows[i] = runCell(*seed, g.n, g.rate, g.churn, *domainCap, sim.Time(*horizonSec)*sim.Second, cellReg)
				if *metricsOut != "" && i == len(grid)-1 {
					reg = cellReg
				}
			}
		}()
	}
	for i := range grid {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, row := range rows {
		fmt.Println(row)
	}

	if *metricsOut != "" && reg != nil {
		f, err := os.Create(*metricsOut)
		die(err)
		die(reg.WriteJSON(f))
		die(f.Close())
	}
	exit(0)
}

type regressConfig struct {
	bench     string
	count     int
	benchtime string
	dir       string
	tolerance float64
	pkg       string
	date      string
	dry       bool
	verbose   bool
}

// runRegress runs the benchmarks, compares against the previous snapshot,
// and writes a fresh BENCH_<date>.json when nothing regressed. On
// regression it reports the violations and exits nonzero WITHOUT writing a
// snapshot, so a bad run can never become the new baseline.
func runRegress(cfg regressConfig, out io.Writer) int {
	args := []string{"test", "-run", "^$", "-bench", cfg.bench, "-benchmem",
		"-count", strconv.Itoa(cfg.count)}
	if cfg.benchtime != "" {
		args = append(args, "-benchtime", cfg.benchtime)
	}
	args = append(args, cfg.pkg)
	fmt.Fprintf(out, "regress: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if cfg.verbose {
		os.Stdout.Write(raw)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "regress: benchmark run failed: %v\n", err)
		return 2
	}

	samples, snap, err := benchcmp.Parse(strings.NewReader(string(raw)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "regress: parse: %v\n", err)
		return 2
	}
	if len(samples) == 0 {
		fmt.Fprintf(os.Stderr, "regress: no benchmarks matched %q\n", cfg.bench)
		return 2
	}
	snap.Date = cfg.date
	snap.Benchmarks = benchcmp.Aggregate(samples)

	for _, name := range sortedNames(snap.Benchmarks) {
		m := snap.Benchmarks[name]
		fmt.Fprintf(out, "  %-40s %12.1f ns/op %10.0f B/op %8.1f allocs/op  (min of %d)\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.Runs)
	}

	prevPath, prev, ok, err := benchcmp.Latest(cfg.dir)
	die(err)
	if ok {
		regs := benchcmp.Compare(prev.Benchmarks, snap.Benchmarks, cfg.tolerance, cfg.tolerance)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "regress: %d regression(s) vs %s:\n", len(regs), prevPath)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			return 1
		}
		fmt.Fprintf(out, "regress: no regressions vs %s (tolerance %.0f%%)\n", prevPath, cfg.tolerance*100)
	} else {
		fmt.Fprintf(out, "regress: no previous snapshot in %s; seeding the trajectory\n", cfg.dir)
	}

	if cfg.dry {
		fmt.Fprintln(out, "regress: dry run; snapshot not written")
		return 0
	}
	// A partial run (e.g. the Quick gate's single benchmark) must not
	// shrink the baseline: carry benchmarks it did not re-measure forward
	// from the previous snapshot.
	if ok {
		for name, m := range prev.Benchmarks {
			if _, measured := snap.Benchmarks[name]; !measured {
				snap.Benchmarks[name] = m
			}
		}
	}
	path := benchcmp.SnapshotPath(cfg.dir, cfg.date)
	die(snap.WriteFile(path))
	fmt.Fprintf(out, "regress: wrote %s\n", path)
	return 0
}

func sortedNames(m map[string]benchcmp.Metrics) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func runCell(seed uint64, n int, rate, churnPerMin float64, domainCap int, horizon sim.Time, reg *metrics.Registry) string {
	cfg := core.DefaultConfig()
	cfg.Nanotime = live.Nanotime // benchmark cells report real allocator CPU cost
	cfg.MaxDomainPeers = domainCap
	r := rng.New(seed ^ uint64(n)<<20 ^ uint64(rate*1000) ^ uint64(churnPerMin*7))
	infos := cluster.PeerSpecs(r, n, cfg.Qualify, 0.4)
	cat := cluster.StandardCatalog()
	cat.Populate(r, infos, 3, n, 3, 15)
	netCfg := netsim.Config{Latency: netsim.UniformLatency(10 * sim.Millisecond), JitterFrac: 0.2}
	c := cluster.Build(cfg, netCfg, seed, infos, 50*sim.Millisecond)
	c.Events.AttachMetrics(reg) // nil-safe; covers the loaded phase below
	c.RunUntil(c.Eng.Now() + 20*sim.Second)

	mix := workload.DefaultMix()
	mix.Objects = n
	mix.RatePerSec = rate
	d := workload.NewDriver(c, cat, mix, r.Split())
	start := c.Eng.Now()
	d.Run(start, start+horizon)
	if churnPerMin > 0 {
		workload.Churn(c, r.Split(), start, start+horizon, churnPerMin/60, 0.7, nil)
	}
	c.RunUntil(start + horizon + 90*sim.Second)

	ev := c.Events.Snapshot()
	return fmt.Sprintf("%d,%g,%g,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d",
		n, rate, churnPerMin, len(c.RMs()),
		ev.Submitted, ev.Admitted, ev.Rejected, ev.Redirected,
		ev.Repairs, ev.Failovers, len(ev.Reports),
		c.Events.MissRate(), c.Net.Stats().Sent)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
