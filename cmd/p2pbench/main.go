// Command p2pbench sweeps a simulated overlay across a parameter grid and
// emits CSV, for plotting or regression tracking beyond the fixed
// experiment suite.
//
// Usage:
//
//	p2pbench [-peers 16,64,256] [-rates 0.5,1,2] [-churn 0,6]
//	         [-domain 32] [-seed 42] [-horizon 120]
//
// Output columns:
//
//	peers,rate,churn_per_min,domains,submitted,admitted,rejected,
//	redirected,repairs,failovers,sessions_done,chunk_miss,msgs_total
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		peersFlag  = flag.String("peers", "16,64", "overlay sizes to sweep")
		ratesFlag  = flag.String("rates", "0.5,1.5", "task arrival rates (tasks/s)")
		churnFlag  = flag.String("churn", "0", "churn rates (events/min)")
		domainCap  = flag.Int("domain", 32, "max peers per domain")
		seed       = flag.Uint64("seed", 42, "run seed")
		horizonSec = flag.Int("horizon", 120, "loaded-phase length (sim seconds)")
		metricsOut = flag.String("metrics", "", "write the last cell's labeled metrics registry as JSON here")
	)
	flag.Parse()

	peers, err := parseInts(*peersFlag)
	die(err)
	rates, err := parseFloats(*ratesFlag)
	die(err)
	churns, err := parseFloats(*churnFlag)
	die(err)

	fmt.Println("peers,rate,churn_per_min,domains,submitted,admitted,rejected,redirected,repairs,failovers,sessions_done,chunk_miss,msgs_total")
	var reg *metrics.Registry
	for _, n := range peers {
		for _, rate := range rates {
			for _, churn := range churns {
				if *metricsOut != "" {
					reg = metrics.NewRegistry()
				}
				row := runCell(*seed, n, rate, churn, *domainCap, sim.Time(*horizonSec)*sim.Second, reg)
				fmt.Println(row)
			}
		}
	}
	if *metricsOut != "" && reg != nil {
		f, err := os.Create(*metricsOut)
		die(err)
		die(reg.WriteJSON(f))
		die(f.Close())
	}
}

func runCell(seed uint64, n int, rate, churnPerMin float64, domainCap int, horizon sim.Time, reg *metrics.Registry) string {
	cfg := core.DefaultConfig()
	cfg.Nanotime = live.Nanotime // benchmark cells report real allocator CPU cost
	cfg.MaxDomainPeers = domainCap
	r := rng.New(seed ^ uint64(n)<<20 ^ uint64(rate*1000) ^ uint64(churnPerMin*7))
	infos := cluster.PeerSpecs(r, n, cfg.Qualify, 0.4)
	cat := cluster.StandardCatalog()
	cat.Populate(r, infos, 3, n, 3, 15)
	netCfg := netsim.Config{Latency: netsim.UniformLatency(10 * sim.Millisecond), JitterFrac: 0.2}
	c := cluster.Build(cfg, netCfg, seed, infos, 50*sim.Millisecond)
	c.Events.AttachMetrics(reg) // nil-safe; covers the loaded phase below
	c.RunUntil(c.Eng.Now() + 20*sim.Second)

	mix := workload.DefaultMix()
	mix.Objects = n
	mix.RatePerSec = rate
	d := workload.NewDriver(c, cat, mix, r.Split())
	start := c.Eng.Now()
	d.Run(start, start+horizon)
	if churnPerMin > 0 {
		workload.Churn(c, r.Split(), start, start+horizon, churnPerMin/60, 0.7, nil)
	}
	c.RunUntil(start + horizon + 90*sim.Second)

	ev := c.Events.Snapshot()
	return fmt.Sprintf("%d,%g,%g,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d",
		n, rate, churnPerMin, len(c.RMs()),
		ev.Submitted, ev.Admitted, ev.Rejected, ev.Redirected,
		ev.Repairs, ev.Failovers, len(ev.Reports),
		c.Events.MissRate(), c.Net.Stats().Sent)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
