// Command p2psim runs the paper-reproduction experiment suite (see
// DESIGN.md and EXPERIMENTS.md) and prints the result tables.
//
// Usage:
//
//	p2psim [-exp all|E1,...|A2] [-seed N] [-quick] [-md]
//	p2psim -trace out.jsonl [-seed N] [-quick]
//
// Examples:
//
//	p2psim -exp all                # full suite (minutes)
//	p2psim -exp E3,E5 -quick       # two experiments, small sweeps
//	p2psim -exp E1 -md             # markdown output for EXPERIMENTS.md
//	p2psim -trace out.jsonl        # traced standard run, Chrome trace JSONL
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (E1..E10, A1, A2) or 'all'")
		seed     = flag.Uint64("seed", 42, "deterministic run seed")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		markdown = flag.Bool("md", false, "emit tables as markdown")
		traceOut = flag.String("trace", "", "run a traced standard scenario and write Chrome trace-event JSONL here (skips -exp)")
	)
	flag.Parse()

	if *traceOut != "" {
		if err := runTraced(*traceOut, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	runners := map[string]func(experiments.Options) experiments.Result{
		"E1":  experiments.E1Figure1,
		"E2":  experiments.E2TaskAssignment,
		"E3":  experiments.E3AllocatorComparison,
		"E4":  experiments.E4Scalability,
		"E5":  experiments.E5SchedulerComparison,
		"E6":  experiments.E6Churn,
		"E7":  experiments.E7AdmissionRedirect,
		"E8":  experiments.E8GossipBloom,
		"E9":  experiments.E9Adaptation,
		"E10": experiments.E10UpdatePeriod,
		"E11": experiments.E11Decentralization,
		"A1":  experiments.A1ObjectiveAblation,
		"A2":  experiments.A2BackupSync,
		"A3":  experiments.A3Preemption,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "A1", "A2", "A3"}

	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", id, strings.Join(order, " "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}

	for _, id := range selected {
		start := time.Now()
		res := runners[id](opt)
		elapsed := time.Since(start).Round(time.Millisecond)
		if *markdown {
			fmt.Printf("### %s: %s\n\n*Claim:* %s\n\n%s\n", res.ID, res.Title, res.Claim, res.Table.Markdown())
			for _, n := range res.Notes {
				fmt.Printf("*Note:* %s\n\n", n)
			}
			fmt.Printf("_(generated in %v, seed %d%s)_\n\n", elapsed, *seed, quickTag(*quick))
		} else {
			fmt.Print(res.String())
			fmt.Printf("(%v, seed %d%s)\n\n", elapsed, *seed, quickTag(*quick))
		}
	}
}

func quickTag(q bool) string {
	if q {
		return ", quick"
	}
	return ""
}

// runTraced drives the standard overlay + workload with a session tracer
// attached and writes the spans as Chrome trace-event JSONL (load it via
// chrome://tracing after `jq -s . out.jsonl`, or directly in Perfetto).
func runTraced(path string, seed uint64, quick bool) error {
	peers, rate, mins := 24, 2.0, 2
	if quick {
		peers, rate, mins = 12, 1.0, 1
	}
	tr := p2prm.NewTracer()
	s := p2prm.NewSimulation(p2prm.DefaultConfig(), p2prm.SimOptions{Seed: seed, Tracer: tr})
	s.GrowStandard(peers, 2, 8, 3, 0.5)
	warm := s.Now() + 5*p2prm.Second
	end := warm + p2prm.Time(mins)*p2prm.Minute
	s.StandardWorkload(warm, end, rate, 8)
	s.RunUntil(end + 30*p2prm.Second)

	if err := tr.WriteFile(path); err != nil {
		return err
	}
	ev := s.Events()
	fmt.Printf("traced run: %d submitted, %d admitted, %d rejected\n",
		ev.Submitted, ev.Admitted, ev.Rejected)
	fmt.Printf("wrote %s: %d events, %d session spans (begun), %d still open, %d dropped\n",
		path, tr.Len(), tr.SessionsBegun(), tr.OpenSessions(), tr.Dropped())
	if tr.SessionsBegun() != ev.Submitted {
		return fmt.Errorf("span count %d != submitted %d", tr.SessionsBegun(), ev.Submitted)
	}
	return nil
}
