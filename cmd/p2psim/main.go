// Command p2psim runs the paper-reproduction experiment suite (see
// DESIGN.md and EXPERIMENTS.md) and prints the result tables.
//
// Usage:
//
//	p2psim [-exp all|E1,...|A2] [-seed N] [-quick] [-md]
//
// Examples:
//
//	p2psim -exp all                # full suite (minutes)
//	p2psim -exp E3,E5 -quick       # two experiments, small sweeps
//	p2psim -exp E1 -md             # markdown output for EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (E1..E10, A1, A2) or 'all'")
		seed     = flag.Uint64("seed", 42, "deterministic run seed")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		markdown = flag.Bool("md", false, "emit tables as markdown")
	)
	flag.Parse()

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	runners := map[string]func(experiments.Options) experiments.Result{
		"E1":  experiments.E1Figure1,
		"E2":  experiments.E2TaskAssignment,
		"E3":  experiments.E3AllocatorComparison,
		"E4":  experiments.E4Scalability,
		"E5":  experiments.E5SchedulerComparison,
		"E6":  experiments.E6Churn,
		"E7":  experiments.E7AdmissionRedirect,
		"E8":  experiments.E8GossipBloom,
		"E9":  experiments.E9Adaptation,
		"E10": experiments.E10UpdatePeriod,
		"E11": experiments.E11Decentralization,
		"A1":  experiments.A1ObjectiveAblation,
		"A2":  experiments.A2BackupSync,
		"A3":  experiments.A3Preemption,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "A1", "A2", "A3"}

	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", id, strings.Join(order, " "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}

	for _, id := range selected {
		start := time.Now()
		res := runners[id](opt)
		elapsed := time.Since(start).Round(time.Millisecond)
		if *markdown {
			fmt.Printf("### %s: %s\n\n*Claim:* %s\n\n%s\n", res.ID, res.Title, res.Claim, res.Table.Markdown())
			for _, n := range res.Notes {
				fmt.Printf("*Note:* %s\n\n", n)
			}
			fmt.Printf("_(generated in %v, seed %d%s)_\n\n", elapsed, *seed, quickTag(*quick))
		} else {
			fmt.Print(res.String())
			fmt.Printf("(%v, seed %d%s)\n\n", elapsed, *seed, quickTag(*quick))
		}
	}
}

func quickTag(q bool) string {
	if q {
		return ", quick"
	}
	return ""
}
