// Command p2psim runs the paper-reproduction experiment suite (see
// DESIGN.md and EXPERIMENTS.md) and prints the result tables.
//
// Usage:
//
//	p2psim [-exp all|E1,...|A2] [-seed N] [-quick] [-md] [-parallel N]
//	p2psim -trace out.jsonl [-seed N] [-quick]
//	p2psim -scenario f.yaml [-scenario-report out.json] [-seed N]
//
// Examples:
//
//	p2psim -exp all                # full suite, parallel across cores
//	p2psim -exp all -parallel 1    # sequential (identical output)
//	p2psim -exp E3,E5 -quick       # two experiments, small sweeps
//	p2psim -exp E1 -md             # markdown output for EXPERIMENTS.md
//	p2psim -trace out.jsonl        # traced standard run, Chrome trace JSONL
//	p2psim -exp all -cpuprofile cpu.pb.gz   # profile the suite
//
// Experiments are deterministic given (seed, quick): -parallel changes
// wall-clock time, never table content or order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/live"
	"repro/internal/profutil"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (E1..E11, A1..A3) or 'all'")
		seed     = flag.Uint64("seed", 42, "deterministic run seed")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		markdown = flag.Bool("md", false, "emit tables as markdown")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment worker pool size (1 = sequential)")
		traceOut = flag.String("trace", "", "run a traced standard scenario and write Chrome trace-event JSONL here (skips -exp)")
		obsOut   = flag.String("obs", "", "run a traced standard scenario and write the observability documents (trace.jsonl, sketches.json, decisions.json, metrics.json) into this directory for p2ptop -dir (skips -exp)")
		replayIn = flag.String("replay", "", "replay a flight-recorder directory (p2pnode -record) and verify determinism (skips -exp)")
		scenFile = flag.String("scenario", "", "run a declarative scenario file on the deterministic simulator and evaluate its assertions (skips -exp)")
		scenOut  = flag.String("scenario-report", "", "with -scenario: write the machine-readable assertion report (JSON) here")
		disc     = flag.String("discovery", "", "discovery backend for -scenario/-trace/-obs runs: gossip or dht (default: scenario file's choice, else gossip)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *disc != "" && *disc != "gossip" && *disc != "dht" {
		fmt.Fprintf(os.Stderr, "-discovery must be gossip or dht, got %q\n", *disc)
		os.Exit(2)
	}

	stopCPU, err := profutil.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
		if err := profutil.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
		os.Exit(code)
	}

	if *traceOut != "" {
		if err := runTraced(*traceOut, *seed, *quick, *disc); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *obsOut != "" {
		if err := runObs(*obsOut, *seed, *quick, *disc); err != nil {
			fmt.Fprintf(os.Stderr, "obs: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *replayIn != "" {
		exit(runReplay(*replayIn))
	}

	if *scenFile != "" {
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		exit(runScenario(*scenFile, *seed, seedSet, *scenOut, *disc))
	}

	suite := experiments.Suite()
	byID := make(map[string]experiments.NamedRunner, len(suite))
	var order []string
	for _, nr := range suite {
		byID[nr.ID] = nr
		order = append(order, nr.ID)
	}

	var selected []experiments.NamedRunner
	if *expFlag == "all" {
		selected = suite
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			nr, ok := byID[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", id, strings.Join(order, " "))
				exit(2)
			}
			selected = append(selected, nr)
		}
	}

	// Wrap each runner to record its own elapsed wall time, then run the
	// set across the worker pool. Results come back in selection order.
	elapsed := make([]time.Duration, len(selected))
	timed := make([]experiments.NamedRunner, len(selected))
	for i, nr := range selected {
		i, run := i, nr.Run
		timed[i] = experiments.NamedRunner{ID: nr.ID, Run: func(opt experiments.Options) experiments.Result {
			start := time.Now()
			res := run(opt)
			elapsed[i] = time.Since(start).Round(time.Millisecond)
			return res
		}}
	}
	opt := experiments.Options{Seed: *seed, Quick: *quick}
	results := experiments.RunParallel(timed, opt, *parallel)

	failed := false
	for i, res := range results {
		if res.Err != "" {
			failed = true
		}
		if *markdown {
			fmt.Printf("### %s: %s\n\n*Claim:* %s\n\n%s\n", res.ID, res.Title, res.Claim, res.Table.Markdown())
			if res.Err != "" {
				fmt.Printf("*Error:* %s\n\n", res.Err)
			}
			for _, n := range res.Notes {
				fmt.Printf("*Note:* %s\n\n", n)
			}
			fmt.Printf("_(generated in %v, seed %d%s)_\n\n", elapsed[i], *seed, quickTag(*quick))
		} else {
			fmt.Print(res.String())
			fmt.Printf("(%v, seed %d%s)\n\n", elapsed[i], *seed, quickTag(*quick))
		}
	}
	if failed {
		exit(1)
	}
	exit(0)
}

func quickTag(q bool) string {
	if q {
		return ", quick"
	}
	return ""
}

// runTraced drives the standard overlay + workload with a session tracer
// attached and writes the spans as Chrome trace-event JSONL (load it via
// chrome://tracing after `jq -s . out.jsonl`, or directly in Perfetto).
func runTraced(path string, seed uint64, quick bool, discovery string) error {
	peers, rate, mins := 24, 2.0, 2
	if quick {
		peers, rate, mins = 12, 1.0, 1
	}
	tr := p2prm.NewTracer()
	cfg := p2prm.DefaultConfig()
	if discovery != "" {
		cfg.Discovery = discovery
	}
	s := p2prm.NewSimulation(cfg, p2prm.SimOptions{Seed: seed, Tracer: tr})
	s.GrowStandard(peers, 2, 8, 3, 0.5)
	warm := s.Now() + 5*p2prm.Second
	end := warm + p2prm.Time(mins)*p2prm.Minute
	s.StandardWorkload(warm, end, rate, 8)
	s.RunUntil(end + 30*p2prm.Second)

	if err := tr.WriteFile(path); err != nil {
		return err
	}
	ev := s.Events()
	fmt.Printf("traced run: %d submitted, %d admitted, %d rejected\n",
		ev.Submitted, ev.Admitted, ev.Rejected)
	fmt.Printf("wrote %s: %d events, %d session spans (begun), %d still open, %d dropped\n",
		path, tr.Len(), tr.SessionsBegun(), tr.OpenSessions(), tr.Dropped())
	if tr.SessionsBegun() != ev.Submitted {
		return fmt.Errorf("span count %d != submitted %d", tr.SessionsBegun(), ev.Submitted)
	}
	return nil
}

// runObs drives the traced standard scenario with every observability
// sink attached and writes the four fleet documents — trace.jsonl,
// sketches.json, decisions.json, metrics.json — into dir, the file-mode
// input of `p2ptop -dir`.
func runObs(dir string, seed uint64, quick bool, discovery string) error {
	peers, rate, mins := 24, 2.0, 2
	if quick {
		peers, rate, mins = 12, 1.0, 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tr := p2prm.NewTracer()
	reg := p2prm.NewMetricsRegistry()
	cfg := p2prm.DefaultConfig()
	if discovery != "" {
		cfg.Discovery = discovery
	}
	cfg.Nanotime = live.Nanotime // alloc latency is a real CPU-cost sketch, not simulated time
	s := p2prm.NewSimulation(cfg,
		p2prm.SimOptions{Seed: seed, Tracer: tr, Metrics: reg})
	s.GrowStandard(peers, 2, 8, 3, 0.5)
	warm := s.Now() + 5*p2prm.Second
	end := warm + p2prm.Time(mins)*p2prm.Minute
	s.StandardWorkload(warm, end, rate, 8)
	s.RunUntil(end + 30*p2prm.Second)

	if err := tr.WriteFile(filepath.Join(dir, "trace.jsonl")); err != nil {
		return err
	}
	writeDoc := func(name string, write func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	now := int64(s.Now())
	if err := writeDoc("sketches.json", func(w io.Writer) error {
		return s.Sketches().WriteJSON(w, now)
	}); err != nil {
		return err
	}
	if err := writeDoc("decisions.json", s.Decisions().WriteJSON); err != nil {
		return err
	}
	if err := writeDoc("metrics.json", reg.WriteJSON); err != nil {
		return err
	}
	ev := s.Events()
	fmt.Printf("obs run: %d submitted, %d admitted, %d rejected; %d trace events, %d decisions\n",
		ev.Submitted, ev.Admitted, ev.Rejected, tr.Len(), s.Decisions().Total())
	fmt.Printf("wrote %s/{trace.jsonl,sketches.json,decisions.json,metrics.json}\n", dir)
	return nil
}

// runReplay re-executes a flight-recorder directory under the
// deterministic scheduler and reports whether the run reproduced. Exit
// code 1 means the replay diverged from the recording (or the log was
// unreadable) — the signal the CI replay job gates on.
func runReplay(dir string) int {
	res, diff, err := p2prm.ReplayRecording(p2prm.DefaultConfig(), dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		return 1
	}
	fmt.Printf("replayed %d events across %d nodes (%d sends, %d digests, %d faults)\n",
		res.Events, res.Nodes, res.Sends, res.Digests, res.Faults)
	if res.Truncated {
		fmt.Println("log tail truncated (writer died mid-frame); replayed the complete prefix")
	}
	if res.Diverged != nil {
		fmt.Fprintf(os.Stderr, "DIVERGENCE: %s\n", res.Diverged)
		return 1
	}
	if diff != nil {
		fmt.Fprintf(os.Stderr, "TRACE MISMATCH: %s\n", diff)
		return 1
	}
	fmt.Println("replay matches recording")
	return 0
}
