package main

import (
	"fmt"
	"os"

	"repro/internal/scenario"
)

// runScenario executes a declarative scenario file on the deterministic
// simulator (`p2psim -scenario f.yaml`): parse, expand under the seed,
// run, evaluate the file's assertions, and render the verdict. The
// machine-readable report lands at reportPath when given. Exit 0 only
// when every assertion passed.
//
// seedSet says whether -seed was passed explicitly; otherwise the
// file's own seed drives the run so committed scenarios reproduce their
// committed reports.
func runScenario(path string, seed uint64, seedSet bool, reportPath, discovery string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		return 1
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario %s: %v\n", path, err)
		return 1
	}
	if discovery != "" {
		spec.Discovery = discovery
	}
	if !seedSet {
		seed = spec.Seed
	}
	plan, err := scenario.Expand(spec, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario %s: %v\n", path, err)
		return 1
	}
	rep := scenario.RunSim(plan)
	rep.Render(os.Stdout)
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario report: %v\n", err)
			return 1
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "scenario report: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "scenario report: %v\n", err)
			return 1
		}
	}
	if !rep.Pass {
		return 1
	}
	return 0
}
