package main

import (
	"testing"

	"repro/internal/experiments"
)

// TestSuiteRegistryComplete keeps the shared suite registry honest:
// everything All() runs must be individually invocable through Suite(),
// with matching IDs in matching order.
func TestSuiteRegistryComplete(t *testing.T) {
	suite := experiments.Suite()
	all := experiments.All(experiments.Options{Seed: 1, Quick: true})
	if len(all) != len(suite) {
		t.Fatalf("All() returns %d results, Suite() has %d", len(all), len(suite))
	}
	for i, res := range all {
		if suite[i].ID != res.ID {
			t.Fatalf("suite entry %d is %q, All() produced %q", i, suite[i].ID, res.ID)
		}
		single := suite[i].Run(experiments.Options{Seed: 1, Quick: true})
		if single.ID != res.ID {
			t.Fatalf("runner for %q returns ID %q", res.ID, single.ID)
		}
	}
}

func TestQuickTag(t *testing.T) {
	if quickTag(true) != ", quick" || quickTag(false) != "" {
		t.Fatal("quickTag wrong")
	}
}
