package main

import (
	"testing"

	"repro/internal/experiments"
)

// TestRunnerRegistryComplete keeps the CLI's experiment registry in sync
// with the suite: everything All() runs must be individually invocable,
// with matching IDs, and the order list must cover the registry exactly.
func TestRunnerRegistryComplete(t *testing.T) {
	runners := map[string]func(experiments.Options) experiments.Result{
		"E1":  experiments.E1Figure1,
		"E2":  experiments.E2TaskAssignment,
		"E3":  experiments.E3AllocatorComparison,
		"E4":  experiments.E4Scalability,
		"E5":  experiments.E5SchedulerComparison,
		"E6":  experiments.E6Churn,
		"E7":  experiments.E7AdmissionRedirect,
		"E8":  experiments.E8GossipBloom,
		"E9":  experiments.E9Adaptation,
		"E10": experiments.E10UpdatePeriod,
		"E11": experiments.E11Decentralization,
		"A1":  experiments.A1ObjectiveAblation,
		"A2":  experiments.A2BackupSync,
		"A3":  experiments.A3Preemption,
	}
	all := experiments.All(experiments.Options{Seed: 1, Quick: true})
	if len(all) != len(runners) {
		t.Fatalf("All() returns %d results, registry has %d", len(all), len(runners))
	}
	for _, res := range all {
		fn, ok := runners[res.ID]
		if !ok {
			t.Fatalf("suite result %q missing from CLI registry", res.ID)
		}
		single := fn(experiments.Options{Seed: 1, Quick: true})
		if single.ID != res.ID {
			t.Fatalf("runner for %q returns ID %q", res.ID, single.ID)
		}
	}
}

func TestQuickTag(t *testing.T) {
	if quickTag(true) != ", quick" || quickTag(false) != "" {
		t.Fatal("quickTag wrong")
	}
}
