GO ?= go

.PHONY: check vet fmt build test race bench-trace

# check is the pre-commit gate referenced from README: static checks,
# full build, race-enabled tests, and the disabled-tracing overhead
# benchmark (EXPERIMENTS.md "Tracing overhead microbenchmark").
check: vet fmt build race bench-trace

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-trace:
	$(GO) test -run '^$$' -bench 'SimulatedSession|TraceDisabled' \
		-benchmem -benchtime 50x .
