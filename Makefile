GO ?= go

.PHONY: check vet fmt build lint test race chaos fuzz-wire replay bench-trace bench bench-all

# check is the pre-commit gate referenced from README: static checks,
# project lint, full build, race-enabled tests, the record/replay gate,
# and the disabled-tracing overhead benchmark (EXPERIMENTS.md "Tracing
# overhead microbenchmark").
check: vet fmt build lint race replay bench-trace

vet:
	$(GO) vet ./...

fmt:
	@diff=$$(gofmt -d .); if [ -n "$$diff" ]; then \
		echo "gofmt needed:"; echo "$$diff"; exit 1; fi

build:
	$(GO) build ./...

# lint runs the project-specific go/analysis suite (clockcheck,
# eventguard, lockfield, metriclabel) over the whole module via the
# go vet -vettool driver. See README "Static analysis".
lint: bin/p2plint
	$(GO) vet -vettool=$(CURDIR)/bin/p2plint ./...

bin/p2plint: FORCE
	$(GO) build -o bin/p2plint ./cmd/p2plint

.PHONY: FORCE
FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection tests: severed RM links across real TCP
# transports, blackholed dial targets, circuit-breaker recovery. Always
# race-enabled; these tests exist to catch cross-goroutine bugs.
chaos:
	$(GO) test -race -run 'Chaos|Failover' -count=1 ./internal/live/...

# fuzz-wire exercises the live transport's inbound framing with random
# byte streams (CI runs the seed corpus via plain go test).
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzWireFrame -fuzztime 30s ./internal/live/

# replay is the flight-recorder gate: the record/replay round-trip
# property tests under the race detector (a chaos recording replays to
# an identical trace; corrupted logs report the divergence point, never
# panic), then a CLI smoke — a founder p2pnode records two seconds of
# live heartbeats, is SIGTERM-flushed, and the log replays cleanly
# through p2psim's deterministic scheduler.
replay: bin/p2pnode bin/p2psim
	$(GO) test -race -count=1 ./internal/replay/
	rm -rf bin/replay-smoke
	./bin/p2pnode -id 0 -founder -listen 127.0.0.1:0 -record bin/replay-smoke & \
	pid=$$!; sleep 2; kill -TERM $$pid; \
	while kill -0 $$pid 2>/dev/null; do sleep 0.1; done; \
	./bin/p2psim -replay bin/replay-smoke

bin/p2pnode: FORCE
	$(GO) build -o bin/p2pnode ./cmd/p2pnode

bin/p2psim: FORCE
	$(GO) build -o bin/p2psim ./cmd/p2psim

bench-trace:
	$(GO) test -run '^$$' -bench 'SimulatedSession|TraceDisabled' \
		-benchmem -benchtime 50x .

# bench is the Quick regression gate (CI smoke job): the Figure-3
# allocation hot path, min of 3 runs, compared against the latest
# committed snapshot in bench/. Fails on >20% ns/op or allocs/op
# regression; writes bench/BENCH_<today>.json on success.
bench: bin/p2pbench
	./bin/p2pbench -regress -regress-bench AllocationFigure3 -regress-count 3

# bench-all snapshots every root benchmark (min of 5 runs); use this to
# refresh the committed baseline after intentional performance changes.
bench-all: bin/p2pbench
	./bin/p2pbench -regress -regress-count 5 -regress-benchtime 1s

bin/p2pbench: FORCE
	$(GO) build -o bin/p2pbench ./cmd/p2pbench
