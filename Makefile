GO ?= go

.PHONY: check vet fmt build lint lint-json lockorder-golden test race chaos fuzz-wire replay obs dht scenario bench-trace bench bench-all

# check is the pre-commit gate referenced from README: static checks,
# full build, race-enabled tests, the record/replay gate, and the
# disabled-tracing overhead benchmark (EXPERIMENTS.md "Tracing overhead
# microbenchmark"). Project lint runs as its own CI job (make lint /
# make lint-json) so analyzer findings are visible at a glance.
check: vet fmt build race replay bench-trace

vet:
	$(GO) vet ./...

fmt:
	@diff=$$(gofmt -d .); if [ -n "$$diff" ]; then \
		echo "gofmt needed:"; echo "$$diff"; exit 1; fi

build:
	$(GO) build ./...

# lint runs the project-specific go/analysis suite (clockcheck,
# eventguard, lockfield, maporder, metriclabel, replaysafe) over the
# whole module via the go vet -vettool driver, then the whole-program
# lock-acquisition-order check against the committed ORDER.golden. See
# README "Static analysis".
lint: bin/p2plint
	$(GO) vet -vettool=$(CURDIR)/bin/p2plint ./...
	./bin/p2plint -lockorder

# lint-json emits every analyzer finding (plus the lock-order check) as
# a sorted JSON array for CI artifacts and tooling; exit 1 on findings.
lint-json: bin/p2plint
	./bin/p2plint -json

# lockorder-golden regenerates internal/lint/lockorder/ORDER.golden
# after a reviewed locking change (a new mutex, a new nesting, a
# re-ranked order). CI fails until the refreshed golden is committed.
lockorder-golden: bin/p2plint
	./bin/p2plint -lockorder -write

bin/p2plint: FORCE
	$(GO) build -o bin/p2plint ./cmd/p2plint

.PHONY: FORCE
FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection tests: severed RM links across real TCP
# transports, blackholed dial targets, circuit-breaker recovery. Always
# race-enabled; these tests exist to catch cross-goroutine bugs.
chaos:
	$(GO) test -race -run 'Chaos|Failover' -count=1 ./internal/live/...

# fuzz-wire exercises the live transport's inbound framing with random
# byte streams (CI runs the seed corpus via plain go test): first the
# legacy v1 length-prefix/gob path, then the v2 compact dialect
# (varint frames, codec payloads, credit grants, gob fallback), then
# the DHT RPC messages through the compact codec round-trip.
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzWireFrame -fuzztime 30s ./internal/live/
	$(GO) test -run '^$$' -fuzz FuzzWireCodec -fuzztime 30s ./internal/live/
	$(GO) test -run '^$$' -fuzz FuzzDHTMessages -fuzztime 30s ./internal/proto/

# replay is the flight-recorder gate: the record/replay round-trip
# property tests under the race detector (a chaos recording replays to
# an identical trace; corrupted logs report the divergence point, never
# panic), then a CLI smoke — a founder p2pnode records two seconds of
# live heartbeats, is SIGTERM-flushed, and the log replays cleanly
# through p2psim's deterministic scheduler.
replay: bin/p2pnode bin/p2psim
	$(GO) test -race -count=1 ./internal/replay/
	rm -rf bin/replay-smoke
	./bin/p2pnode -id 0 -founder -listen 127.0.0.1:0 -record bin/replay-smoke & \
	pid=$$!; sleep 2; kill -TERM $$pid; \
	while kill -0 $$pid 2>/dev/null; do sleep 0.1; done; \
	./bin/p2psim -replay bin/replay-smoke

# obs is the fleet-observability smoke: two p2pnode daemons joined over
# real TCP with a shared -seed, a cross-node session (the object lives
# on the founder, the joiner consumes it), then one p2ptop scrape of
# both diagnostics endpoints. The -check gate fails unless the merged
# view contains at least one stitched cross-node session span and a
# non-empty fleet allocation-latency p99.
obs: bin/p2pnode bin/p2ptop
	./bin/p2pnode -id 0 -founder -listen 127.0.0.1:7461 -http 127.0.0.1:9461 \
		-book "1=127.0.0.1:7462" -object movie:30 -seed 7 & pa=$$!; \
	./bin/p2pnode -id 1 -listen 127.0.0.1:7462 -http 127.0.0.1:9462 \
		-book "0=127.0.0.1:7461" -bootstrap 0 -seed 7 \
		-submit movie -after 2s -linger 60s & pb=$$!; \
	sleep 8; \
	./bin/p2ptop -nodes http://127.0.0.1:9461,http://127.0.0.1:9462 -once -check; \
	rc=$$?; kill $$pa $$pb 2>/dev/null; wait $$pa $$pb 2>/dev/null; exit $$rc

# dht is the structured-discovery smoke: two p2pnode daemons on the DHT
# backend joined over real TCP, then a scrape of both /dht endpoints.
# The gate fails unless both report Backend "dht" and the founder's
# routing table has learned at least one contact.
dht: bin/p2pnode
	./bin/p2pnode -id 0 -founder -discovery dht -listen 127.0.0.1:7463 -http 127.0.0.1:9463 \
		-book "1=127.0.0.1:7464" -object movie:30 -seed 7 & pa=$$!; \
	./bin/p2pnode -id 1 -discovery dht -listen 127.0.0.1:7464 -http 127.0.0.1:9464 \
		-book "0=127.0.0.1:7463" -bootstrap 0 -seed 7 & pb=$$!; \
	sleep 6; rc=0; \
	curl -sf http://127.0.0.1:9463/dht | grep -q '"Backend": *"dht"' || rc=1; \
	curl -sf http://127.0.0.1:9463/dht | grep -q '"TableSize": *[1-9]' || rc=1; \
	curl -sf http://127.0.0.1:9464/dht | grep -q '"Backend": *"dht"' || rc=1; \
	kill $$pa $$pb 2>/dev/null; wait $$pa $$pb 2>/dev/null; \
	[ $$rc -eq 0 ] && echo "dht smoke: ok"; exit $$rc

# scenario runs the committed chaos suite: every file in scenarios/ on
# the deterministic simulator (JSON reports land in
# bin/scenario-reports/), then the two-daemon TCP smoke — the same
# tcp-smoke.yaml split across two real p2pnode processes
# (-scenario-part 0/2 and 1/2). p2ptop -scenario re-checks the
# collected reports and fails if any verdict is FAIL.
scenario: bin/p2psim bin/p2pnode bin/p2ptop
	rm -rf bin/scenario-reports && mkdir -p bin/scenario-reports
	@set -e; for f in scenarios/*.yaml; do \
		name=$$(basename $$f .yaml); \
		echo "== $$f (sim)"; \
		./bin/p2psim -scenario $$f -scenario-report bin/scenario-reports/$$name.sim.json; \
	done
	@echo "== scenarios/tcp-smoke.yaml (live, 2 daemons)"; \
	./bin/p2pnode -scenario scenarios/tcp-smoke.yaml -scenario-part 0/2 \
		-scenario-peers "127.0.0.1:7471,127.0.0.1:7472" -scenario-pace 2 \
		-scenario-report bin/scenario-reports/tcp-smoke.live0.json & pa=$$!; \
	./bin/p2pnode -scenario scenarios/tcp-smoke.yaml -scenario-part 1/2 \
		-scenario-peers "127.0.0.1:7471,127.0.0.1:7472" -scenario-pace 2 \
		-scenario-report bin/scenario-reports/tcp-smoke.live1.json; \
	rb=$$?; wait $$pa; ra=$$?; [ $$ra -eq 0 ] && [ $$rb -eq 0 ]
	./bin/p2ptop -scenario bin/scenario-reports/*.json

bin/p2ptop: FORCE
	$(GO) build -o bin/p2ptop ./cmd/p2ptop

bin/p2pnode: FORCE
	$(GO) build -o bin/p2pnode ./cmd/p2pnode

bin/p2psim: FORCE
	$(GO) build -o bin/p2psim ./cmd/p2psim

bench-trace:
	$(GO) test -run '^$$' -bench 'SimulatedSession|TraceDisabled' \
		-benchmem -benchtime 50x .

# bench is the Quick regression gate (CI smoke job): the Figure-3
# allocation hot path, the wire-codec encode/decode benchmarks, and the
# TCP delivery benchmark (the wire-protocol-v2 ratchet: msgs/sec/core
# and allocs/msg), each min of 3 runs, compared against the latest
# committed snapshot in bench/. Fails on >20% ns/op or allocs/op
# regression; writes bench/BENCH_<today>.json on success (snapshots
# merge by benchmark name, so the three invocations share one file).
# All three ratchets run with a 50% tolerance: they time micro-scale
# operations where shared-runner timer noise exceeds the default 20%
# (observed min-of-N spread on a 1-core runner), and the regression
# class they guard against — the compact codec silently degrading to
# the gob fallback, an allocation landing on the per-message hot path —
# shows up as 2-100x, not 1.2x.
bench: bin/p2pbench
	./bin/p2pbench -regress -regress-bench AllocationFigure3 -regress-count 3 \
		-regress-tolerance 0.5
	./bin/p2pbench -regress -regress-pkg ./internal/proto -regress-bench WireCodec \
		-regress-count 5 -regress-tolerance 0.5
	./bin/p2pbench -regress -regress-pkg ./internal/replay -regress-bench 'Deliver/tcp' \
		-regress-count 5 -regress-tolerance 0.5
	./bin/p2pbench -regress -regress-pkg ./internal/dht -regress-bench DHTLookup \
		-regress-count 5 -regress-tolerance 0.5

# bench-all snapshots every root benchmark (min of 5 runs) plus the
# codec and delivery ratchets; use this to refresh the committed
# baseline after intentional performance changes.
bench-all: bin/p2pbench
	./bin/p2pbench -regress -regress-count 5 -regress-benchtime 1s
	./bin/p2pbench -regress -regress-pkg ./internal/proto -regress-bench WireCodec \
		-regress-count 5 -regress-tolerance 0.5
	./bin/p2pbench -regress -regress-pkg ./internal/replay -regress-bench 'Deliver/tcp' \
		-regress-count 5 -regress-tolerance 0.5
	./bin/p2pbench -regress -regress-pkg ./internal/dht -regress-bench DHTLookup \
		-regress-count 5 -regress-tolerance 0.5

bin/p2pbench: FORCE
	$(GO) build -o bin/p2pbench ./cmd/p2pbench
