// Package sched implements the peer-local real-time scheduling layer
// (§2): every peer's Local Scheduler "determines the execution sequence
// of the applications at the peer". The paper's system uses Least Laxity
// Scheduling (LLS); this package provides LLS plus the comparison
// policies the E5 experiment sweeps (EDF, FIFO, SJF, static
// importance-priority).
//
// A Processor simulates one peer's CPU on the discrete-event engine:
// preemptive, event-driven (re-evaluation at arrivals and completions,
// plus exact laxity-crossing preemption points for LLS), with per-task
// deadline accounting.
package sched

import (
	"fmt"
	"math"

	"repro/internal/env"
	"repro/internal/sim"
)

// TaskID identifies a schedulable unit of work on one processor.
type TaskID int64

// Task is one unit of processor work with soft real-time requirements.
// Work is expressed in abstract work units; a Processor with speed s
// executes w units in w/s seconds.
type Task struct {
	ID         TaskID
	Release    sim.Time // arrival at this processor
	Deadline   sim.Time // absolute completion deadline
	Work       float64  // total work units
	Importance int      // higher = more important (§3.3 Importance_t)

	remaining float64
}

// Remaining returns the work units left.
func (t *Task) Remaining() float64 { return t.remaining }

// Laxity returns deadline - now - remaining/speed: the slack before the
// task can no longer finish on time. Negative laxity means the deadline
// will be missed even with immediate exclusive service.
func (t *Task) Laxity(now sim.Time, speed float64) sim.Time {
	execLeft := sim.Time(t.remaining / speed * 1e6)
	return t.Deadline - now - execLeft
}

// Policy orders ready tasks. Implementations must be deterministic: ties
// are broken by the caller using arrival order.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Less reports whether a should run before b.
	Less(a, b *Task, now sim.Time, speed float64) bool
	// PreemptAt returns the earliest future instant at which the relative
	// order of running vs. a queued task can invert without any new
	// arrival or completion, or 0 if it cannot. Only LLS needs this: a
	// queued task's laxity shrinks while the running task's is constant.
	PreemptAt(running *Task, queued []*Task, now sim.Time, speed float64) sim.Time
}

// LLS is Least Laxity Scheduling (§2): the task with the smallest laxity
// runs first, preempting when a queued task's laxity falls below the
// running task's.
type LLS struct{}

// Name implements Policy.
func (LLS) Name() string { return "LLS" }

// Less implements Policy.
func (LLS) Less(a, b *Task, now sim.Time, speed float64) bool {
	return a.Laxity(now, speed) < b.Laxity(now, speed)
}

// PreemptAt implements Policy: while a task runs its laxity is constant,
// but every queued task's laxity decreases at rate 1, so a queued task
// with currently larger laxity crosses at a computable instant.
func (LLS) PreemptAt(running *Task, queued []*Task, now sim.Time, speed float64) sim.Time {
	lr := running.Laxity(now, speed)
	var earliest sim.Time
	for _, q := range queued {
		lq := q.Laxity(now, speed)
		if lq <= lr {
			continue // would already have preempted; caller re-picks at events
		}
		// One tick past the equal-laxity instant, so the queued task is
		// strictly smaller and wins the re-pick.
		cross := now + (lq - lr) + 1
		if earliest == 0 || cross < earliest {
			earliest = cross
		}
	}
	return earliest
}

// EDF is Earliest Deadline First. The relative order of tasks never
// changes between events, so no timed preemption points are needed.
type EDF struct{}

// Name implements Policy.
func (EDF) Name() string { return "EDF" }

// Less implements Policy.
func (EDF) Less(a, b *Task, now sim.Time, speed float64) bool {
	return a.Deadline < b.Deadline
}

// PreemptAt implements Policy.
func (EDF) PreemptAt(*Task, []*Task, sim.Time, float64) sim.Time { return 0 }

// FIFO runs tasks in arrival order without preemption by later arrivals.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// Less implements Policy.
func (FIFO) Less(a, b *Task, now sim.Time, speed float64) bool {
	return a.Release < b.Release
}

// PreemptAt implements Policy.
func (FIFO) PreemptAt(*Task, []*Task, sim.Time, float64) sim.Time { return 0 }

// SJF is Shortest Remaining Work First. The running task only gets
// shorter, so its priority only improves between events.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "SJF" }

// Less implements Policy.
func (SJF) Less(a, b *Task, now sim.Time, speed float64) bool {
	return a.remaining < b.remaining
}

// PreemptAt implements Policy.
func (SJF) PreemptAt(*Task, []*Task, sim.Time, float64) sim.Time { return 0 }

// Priority is static importance-based scheduling (highest Importance
// first), the value-based comparator from the related work (§5).
type Priority struct{}

// Name implements Policy.
func (Priority) Name() string { return "PRIO" }

// Less implements Policy.
func (Priority) Less(a, b *Task, now sim.Time, speed float64) bool {
	return a.Importance > b.Importance
}

// PreemptAt implements Policy.
func (Priority) PreemptAt(*Task, []*Task, sim.Time, float64) sim.Time { return 0 }

// Completion reports one finished task.
type Completion struct {
	Task     *Task
	Finished sim.Time
	Missed   bool // finished after its deadline
}

// Stats aggregates a processor's history.
type Stats struct {
	Completed     int
	Missed        int
	BusyMicros    sim.Time
	TotalLateness sim.Time // sum of max(0, finish-deadline)
}

// MissRatio returns missed/completed, or 0 with no completions.
func (s Stats) MissRatio() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.Missed) / float64(s.Completed)
}

// Processor simulates one peer CPU under a scheduling policy. All methods
// must be called from engine events (single-threaded simulation).
type Processor struct {
	clk    env.Clock
	speed  float64
	policy Policy

	ready      []*Task // all admitted incomplete tasks, including running
	running    *Task
	runStart   sim.Time
	completion env.Cancel
	preempt    env.Cancel

	stats      Stats
	OnComplete func(Completion)

	// Quantum is the minimum interval between timed laxity-crossing
	// preemptions. Pure LLS degenerates into per-tick thrashing when two
	// tasks' laxities are nearly equal (a well-known property of the
	// algorithm); the quantum turns that case into bounded round-robin.
	// Arrival- and completion-driven rescheduling is unaffected.
	Quantum sim.Time
}

// DefaultQuantum bounds LLS laxity-crossing preemption frequency.
const DefaultQuantum = 10 * sim.Millisecond

// NewProcessor creates a processor with the given speed (work units per
// second) and policy, driven by clock clk. All methods must be called
// from the clock's event loop (engine events under simulation, the node
// mailbox under the live runtime).
func NewProcessor(clk env.Clock, speed float64, policy Policy) *Processor {
	if speed <= 0 {
		panic("sched: non-positive processor speed")
	}
	return &Processor{clk: clk, speed: speed, policy: policy, Quantum: DefaultQuantum}
}

// cancelTimer fires a Cancel if set and clears it.
func cancelTimer(c *env.Cancel) {
	if *c != nil {
		(*c)()
		*c = nil
	}
}

// Speed returns the processor speed in work units per second.
func (p *Processor) Speed() float64 { return p.speed }

// Policy returns the active scheduling policy.
func (p *Processor) Policy() Policy { return p.policy }

// Stats returns a copy of the accumulated statistics.
func (p *Processor) Stats() Stats { return p.stats }

// QueueLength returns the number of admitted incomplete tasks.
func (p *Processor) QueueLength() int { return len(p.ready) }

// Utilization returns busy time / elapsed time since the start of the
// simulation (including current in-progress execution).
func (p *Processor) Utilization() float64 {
	now := p.clk.Now()
	if now == 0 {
		return 0
	}
	busy := p.stats.BusyMicros
	if p.running != nil {
		busy += now - p.runStart
	}
	return float64(busy) / float64(now)
}

// Add admits a task. Work must be positive.
func (p *Processor) Add(t *Task) {
	if t.Work <= 0 {
		panic("sched: task with non-positive work")
	}
	t.remaining = t.Work
	if t.Release == 0 {
		t.Release = p.clk.Now()
	}
	p.ready = append(p.ready, t)
	p.reschedule()
}

// Remove aborts an incomplete task (e.g. its session was torn down or
// reassigned to another peer, §4.5). It reports whether the task was
// found, and returns the work units still remaining.
func (p *Processor) Remove(id TaskID) (float64, bool) {
	for i, t := range p.ready {
		if t.ID == id {
			if p.running == t {
				p.chargeProgress()
				p.running = nil
				cancelTimer(&p.completion)
				cancelTimer(&p.preempt)
			}
			rem := t.remaining
			p.ready = append(p.ready[:i], p.ready[i+1:]...)
			p.reschedule()
			return rem, true
		}
	}
	return 0, false
}

// chargeProgress folds the running task's progress since runStart into
// its remaining work and the busy-time statistic.
func (p *Processor) chargeProgress() {
	if p.running == nil {
		return
	}
	elapsed := p.clk.Now() - p.runStart
	p.running.remaining -= float64(elapsed) / 1e6 * p.speed
	if p.running.remaining < 0 {
		p.running.remaining = 0
	}
	p.stats.BusyMicros += elapsed
	p.runStart = p.clk.Now()
}

// pick returns the policy's choice among ready tasks, breaking ties by
// arrival order then ID for determinism.
func (p *Processor) pick() *Task {
	best := p.ready[0]
	for _, t := range p.ready[1:] {
		if p.policy.Less(t, best, p.clk.Now(), p.speed) {
			best = t
		} else if !p.policy.Less(best, t, p.clk.Now(), p.speed) {
			// Tie under the policy: earlier release, then smaller ID.
			if t.Release < best.Release || (t.Release == best.Release && t.ID < best.ID) {
				best = t
			}
		}
	}
	return best
}

// reschedule re-evaluates the running choice after any state change.
func (p *Processor) reschedule() {
	p.chargeProgress()
	cancelTimer(&p.completion)
	cancelTimer(&p.preempt)
	p.running = nil
	if len(p.ready) == 0 {
		return
	}
	next := p.pick()
	p.running = next
	p.runStart = p.clk.Now()
	// Round up so the completion event never fires with work left over.
	execLeft := sim.Time(math.Ceil(next.remaining / p.speed * 1e6))
	if execLeft < 1 {
		execLeft = 1 // sub-microsecond remainder still takes one tick
	}
	p.completion = p.clk.After(execLeft, p.complete)

	// Timed preemption point (LLS only): the earliest instant a queued
	// task's priority overtakes the running task's.
	queued := make([]*Task, 0, len(p.ready)-1)
	for _, t := range p.ready {
		if t != next {
			queued = append(queued, t)
		}
	}
	if len(queued) > 0 {
		now := p.clk.Now()
		if at := p.policy.PreemptAt(next, queued, now, p.speed); at > now {
			if min := now + p.Quantum; at < min {
				at = min
			}
			p.preempt = p.clk.After(at-now, p.reschedule)
		}
	}
}

// complete fires when the running task's remaining work reaches zero.
func (p *Processor) complete() {
	t := p.running
	p.chargeProgress()
	p.running = nil
	p.completion = nil
	cancelTimer(&p.preempt)
	for i, rt := range p.ready {
		if rt == t {
			p.ready = append(p.ready[:i], p.ready[i+1:]...)
			break
		}
	}
	now := p.clk.Now()
	missed := now > t.Deadline
	p.stats.Completed++
	if missed {
		p.stats.Missed++
		p.stats.TotalLateness += now - t.Deadline
	}
	if p.OnComplete != nil {
		p.OnComplete(Completion{Task: t, Finished: now, Missed: missed})
	}
	p.reschedule()
}

// String summarizes the processor state.
func (p *Processor) String() string {
	return fmt.Sprintf("proc(speed=%.1f policy=%s queue=%d completed=%d missed=%d)",
		p.speed, p.policy.Name(), len(p.ready), p.stats.Completed, p.stats.Missed)
}
