package sched

import (
	"testing"

	"repro/internal/env"
	"repro/internal/rng"
	"repro/internal/sim"
)

// run builds a processor, feeds it tasks at their Release times, runs the
// engine to completion, and returns completions in finish order.
func run(t *testing.T, speed float64, policy Policy, tasks []*Task) []Completion {
	t.Helper()
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, speed, policy)
	var out []Completion
	p.OnComplete = func(c Completion) { out = append(out, c) }
	for _, task := range tasks {
		task := task
		eng.At(task.Release, func() { p.Add(task) })
	}
	eng.Run()
	return out
}

func TestSingleTaskCompletesOnTime(t *testing.T) {
	tasks := []*Task{{ID: 1, Release: 0, Deadline: 2 * sim.Second, Work: 1}}
	out := run(t, 1, LLS{}, tasks) // 1 work unit at speed 1 = 1s
	if len(out) != 1 {
		t.Fatalf("completions = %d", len(out))
	}
	if out[0].Finished != sim.Second {
		t.Fatalf("finished at %v, want 1s", out[0].Finished)
	}
	if out[0].Missed {
		t.Fatal("on-time task marked missed")
	}
}

func TestSpeedScalesExecution(t *testing.T) {
	tasks := []*Task{{ID: 1, Deadline: 10 * sim.Second, Work: 4}}
	out := run(t, 2, FIFO{}, tasks)
	if out[0].Finished != 2*sim.Second {
		t.Fatalf("finished at %v, want 2s (4 units at speed 2)", out[0].Finished)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	tasks := []*Task{{ID: 1, Deadline: sim.Second / 2, Work: 1}}
	out := run(t, 1, LLS{}, tasks)
	if !out[0].Missed {
		t.Fatal("late task not marked missed")
	}
}

func TestFIFOOrder(t *testing.T) {
	tasks := []*Task{
		{ID: 1, Release: 0, Deadline: 10 * sim.Second, Work: 1},
		{ID: 2, Release: 1, Deadline: 5 * sim.Second, Work: 1}, // earlier deadline, later arrival
	}
	out := run(t, 1, FIFO{}, tasks)
	if out[0].Task.ID != 1 || out[1].Task.ID != 2 {
		t.Fatalf("FIFO order = %d,%d", out[0].Task.ID, out[1].Task.ID)
	}
}

func TestEDFPreemptsOnArrival(t *testing.T) {
	tasks := []*Task{
		{ID: 1, Release: 0, Deadline: 10 * sim.Second, Work: 2},
		{ID: 2, Release: sim.Second / 2, Deadline: 2 * sim.Second, Work: 1},
	}
	out := run(t, 1, EDF{}, tasks)
	if out[0].Task.ID != 2 {
		t.Fatalf("EDF did not preempt: first completion = task %d", out[0].Task.ID)
	}
	// Task 2: arrives 0.5s, runs 1s -> done 1.5s. Task 1: 0.5s done before
	// preemption, 1.5s remaining after resume at 1.5s -> done 3.0s.
	if out[0].Finished != 1500*sim.Millisecond {
		t.Fatalf("task 2 finished %v", out[0].Finished)
	}
	if out[1].Finished != 3000*sim.Millisecond {
		t.Fatalf("task 1 finished %v", out[1].Finished)
	}
}

func TestSJFPicksShortest(t *testing.T) {
	tasks := []*Task{
		{ID: 1, Release: 0, Deadline: 20 * sim.Second, Work: 5},
		{ID: 2, Release: 0, Deadline: 20 * sim.Second, Work: 1},
		{ID: 3, Release: 0, Deadline: 20 * sim.Second, Work: 3},
	}
	out := run(t, 1, SJF{}, tasks)
	want := []TaskID{2, 3, 1}
	for i, c := range out {
		if c.Task.ID != want[i] {
			t.Fatalf("SJF order %v", []TaskID{out[0].Task.ID, out[1].Task.ID, out[2].Task.ID})
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	tasks := []*Task{
		{ID: 1, Release: 0, Deadline: 20 * sim.Second, Work: 1, Importance: 1},
		{ID: 2, Release: 0, Deadline: 20 * sim.Second, Work: 1, Importance: 9},
		{ID: 3, Release: 0, Deadline: 20 * sim.Second, Work: 1, Importance: 5},
	}
	out := run(t, 1, Priority{}, tasks)
	want := []TaskID{2, 3, 1}
	for i, c := range out {
		if c.Task.ID != want[i] {
			t.Fatalf("priority order wrong at %d: got %d want %d", i, c.Task.ID, want[i])
		}
	}
}

func TestLLSPicksLeastLaxity(t *testing.T) {
	// Task 1: deadline 10s, work 1 -> laxity 9s.
	// Task 2: deadline 5s, work 4 -> laxity 1s. LLS runs 2 first.
	tasks := []*Task{
		{ID: 1, Release: 0, Deadline: 10 * sim.Second, Work: 1},
		{ID: 2, Release: 0, Deadline: 5 * sim.Second, Work: 4},
	}
	out := run(t, 1, LLS{}, tasks)
	if out[0].Task.ID != 2 {
		t.Fatalf("LLS ran task %d first", out[0].Task.ID)
	}
}

func TestLLSTimedPreemption(t *testing.T) {
	// Running task has large laxity; queued task's laxity shrinks and
	// crosses mid-execution, forcing a preemption with no new arrivals.
	// Task 1: work 8, deadline 100s -> laxity 92s.
	// Task 2: work 1, deadline 10s  -> laxity 9s: runs first (1s).
	// After task 2 completes at 1s, task 1 laxity = 100-1-8=91s. No queue.
	// Use three tasks to create a crossing instead:
	// A: work 10, deadline 200s -> laxity 190 (runs only after others).
	// B: work 2, deadline 30s -> laxity 28. C arrives later.
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, LLS{})
	var order []TaskID
	p.OnComplete = func(c Completion) { order = append(order, c.Task.ID) }
	// B runs first (laxity 28 < 190). While B runs its laxity is constant
	// at 28; A's laxity decreases from 190 — no crossing during B's 2s.
	// Then A runs (laxity 188 at t=2). Add C at t=3 with laxity slightly
	// above A's so it queues, then crosses while A runs.
	eng.At(0, func() {
		p.Add(&Task{ID: 1, Deadline: 200 * sim.Second, Work: 10})
		p.Add(&Task{ID: 2, Deadline: 30 * sim.Second, Work: 2})
	})
	// At t=3, A (task 1) is running with laxity 200-3-10+1 = laxity is
	// 200-3-9 = 188s. C: deadline 3+190s, work 1 -> laxity 189s > 188s,
	// queues; crossing occurs 1s later at t=4.
	eng.At(3*sim.Second, func() {
		p.Add(&Task{ID: 3, Release: 3 * sim.Second, Deadline: 193*sim.Second + 3*sim.Second, Work: 1})
	})
	eng.Run()
	// C must have preempted A and completed before it.
	if len(order) != 3 {
		t.Fatalf("completions = %v", order)
	}
	if order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Fatalf("order = %v, want [2 3 1]", order)
	}
}

func TestRemoveRunningTask(t *testing.T) {
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, FIFO{})
	var done []TaskID
	p.OnComplete = func(c Completion) { done = append(done, c.Task.ID) }
	eng.At(0, func() {
		p.Add(&Task{ID: 1, Deadline: 10 * sim.Second, Work: 5})
		p.Add(&Task{ID: 2, Deadline: 10 * sim.Second, Work: 1})
	})
	eng.At(2*sim.Second, func() {
		rem, ok := p.Remove(1)
		if !ok {
			t.Error("Remove failed")
		}
		if rem < 2.9 || rem > 3.1 { // 5 work - 2s at speed 1
			t.Errorf("remaining = %v, want ~3", rem)
		}
	})
	eng.Run()
	if len(done) != 1 || done[0] != 2 {
		t.Fatalf("completions = %v, want just task 2", done)
	}
	// Task 2 should have started at removal time and run 1s.
	if eng.Now() != 3*sim.Second {
		t.Fatalf("final time %v, want 3s", eng.Now())
	}
}

func TestRemoveQueuedTask(t *testing.T) {
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, FIFO{})
	count := 0
	p.OnComplete = func(Completion) { count++ }
	eng.At(0, func() {
		p.Add(&Task{ID: 1, Deadline: 10 * sim.Second, Work: 2})
		p.Add(&Task{ID: 2, Deadline: 10 * sim.Second, Work: 2})
	})
	eng.At(sim.Second, func() {
		if rem, ok := p.Remove(2); !ok || rem != 2 {
			t.Errorf("Remove(2) = %v,%v", rem, ok)
		}
	})
	eng.Run()
	if count != 1 {
		t.Fatalf("completions = %d", count)
	}
}

func TestRemoveUnknownTask(t *testing.T) {
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, FIFO{})
	if _, ok := p.Remove(99); ok {
		t.Fatal("Remove of unknown task succeeded")
	}
}

func TestStatsAndUtilization(t *testing.T) {
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, LLS{})
	eng.At(0, func() {
		p.Add(&Task{ID: 1, Deadline: sim.Second / 2, Work: 1}) // will miss
		p.Add(&Task{ID: 2, Deadline: 10 * sim.Second, Work: 1})
	})
	eng.Run()
	st := p.Stats()
	if st.Completed != 2 || st.Missed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MissRatio() != 0.5 {
		t.Fatalf("MissRatio = %v", st.MissRatio())
	}
	if st.TotalLateness <= 0 {
		t.Fatal("lateness not recorded")
	}
	// Processor was busy 2s of the 2s elapsed.
	if u := p.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("Utilization = %v", u)
	}
}

func TestUtilizationIdleGaps(t *testing.T) {
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, LLS{})
	eng.At(0, func() { p.Add(&Task{ID: 1, Deadline: 10 * sim.Second, Work: 1}) })
	eng.RunUntil(4 * sim.Second) // 1s busy in 4s
	if u := p.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
}

func TestAddValidation(t *testing.T) {
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, LLS{})
	defer func() {
		if recover() == nil {
			t.Fatal("zero-work task accepted")
		}
	}()
	p.Add(&Task{ID: 1, Deadline: sim.Second})
}

func TestNewProcessorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero speed accepted")
		}
	}()
	NewProcessor(env.SimClock{Eng: sim.New()}, 0, LLS{})
}

func TestLaxity(t *testing.T) {
	task := &Task{Deadline: 10 * sim.Second, Work: 2, remaining: 2}
	// At t=0, speed 1: laxity = 10s - 2s = 8s.
	if got := task.Laxity(0, 1); got != 8*sim.Second {
		t.Fatalf("laxity = %v", got)
	}
	// Speed 2 halves execution time.
	if got := task.Laxity(0, 2); got != 9*sim.Second {
		t.Fatalf("laxity at speed 2 = %v", got)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Identical tasks: completion order must be by ID (released together).
	for trial := 0; trial < 3; trial++ {
		tasks := []*Task{
			{ID: 3, Deadline: 10 * sim.Second, Work: 1},
			{ID: 1, Deadline: 10 * sim.Second, Work: 1},
			{ID: 2, Deadline: 10 * sim.Second, Work: 1},
		}
		out := run(t, 1, EDF{}, tasks)
		if out[0].Task.ID != 1 || out[1].Task.ID != 2 || out[2].Task.ID != 3 {
			t.Fatalf("tie-break order = %d,%d,%d", out[0].Task.ID, out[1].Task.ID, out[2].Task.ID)
		}
	}
}

// Conservation property: under any policy, total busy time equals total
// work / speed and every admitted task completes exactly once when the
// system is given enough time.
func TestPropertyWorkConservation(t *testing.T) {
	r := rng.New(77)
	policies := []Policy{LLS{}, EDF{}, FIFO{}, SJF{}, Priority{}}
	for trial := 0; trial < 40; trial++ {
		policy := policies[trial%len(policies)]
		eng := sim.New()
		speed := r.Uniform(0.5, 4)
		p := NewProcessor(env.SimClock{Eng: eng}, speed, policy)
		seen := map[TaskID]int{}
		p.OnComplete = func(c Completion) { seen[c.Task.ID]++ }
		n := 1 + r.Intn(20)
		totalWork := 0.0
		for i := 0; i < n; i++ {
			w := r.Uniform(0.1, 3)
			totalWork += w
			task := &Task{
				ID:       TaskID(i),
				Release:  sim.Time(r.Intn(5_000_000)),
				Deadline: sim.Time(r.Intn(20_000_000)),
				Work:     w,
			}
			eng.At(task.Release, func() { p.Add(task) })
		}
		eng.Run()
		if len(seen) != n {
			t.Fatalf("trial %d (%s): %d/%d tasks completed", trial, policy.Name(), len(seen), n)
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("trial %d: task %d completed %d times", trial, id, c)
			}
		}
		busySec := p.Stats().BusyMicros.Seconds()
		wantSec := totalWork / speed
		if diff := busySec - wantSec; diff > 0.001 || diff < -0.001 {
			t.Fatalf("trial %d (%s): busy %vs, want %vs", trial, policy.Name(), busySec, wantSec)
		}
	}
}

// At moderate load, LLS and EDF (both deadline-aware) should miss no more
// deadlines than FIFO on deadline-diverse workloads.
func TestDeadlineAwareBeatsFIFO(t *testing.T) {
	r := rng.New(123)
	type result struct{ lls, edf, fifo int }
	var totals result
	for trial := 0; trial < 20; trial++ {
		var tasks []*Task
		release := sim.Time(0)
		for i := 0; i < 60; i++ {
			release += sim.Time(r.Exp(0.11) * 1e6) // ~0.9 utilization at speed 1
			work := r.Uniform(0.02, 0.18)
			// Tight or loose deadline, mixed.
			var dl sim.Time
			if r.Bool(0.5) {
				dl = release + sim.Time(work*1e6*r.Uniform(1.1, 2))
			} else {
				dl = release + sim.Time(work*1e6*r.Uniform(4, 10))
			}
			tasks = append(tasks, &Task{ID: TaskID(i), Release: release, Deadline: dl, Work: work})
		}
		copyTasks := func() []*Task {
			out := make([]*Task, len(tasks))
			for i, task := range tasks {
				c := *task
				out[i] = &c
			}
			return out
		}
		miss := func(p Policy) int {
			missed := 0
			for _, c := range run(t, 1, p, copyTasks()) {
				if c.Missed {
					missed++
				}
			}
			return missed
		}
		totals.lls += miss(LLS{})
		totals.edf += miss(EDF{})
		totals.fifo += miss(FIFO{})
	}
	if totals.lls > totals.fifo {
		t.Fatalf("LLS missed %d > FIFO %d", totals.lls, totals.fifo)
	}
	if totals.edf > totals.fifo {
		t.Fatalf("EDF missed %d > FIFO %d", totals.edf, totals.fifo)
	}
}

func TestProcessorString(t *testing.T) {
	p := NewProcessor(env.SimClock{Eng: sim.New()}, 2, LLS{})
	s := p.String()
	if s == "" || s[0] != 'p' {
		t.Fatalf("String = %q", s)
	}
}

func BenchmarkProcessorThroughput(b *testing.B) {
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 100, LLS{})
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(&Task{
			ID:       TaskID(i),
			Deadline: eng.Now() + sim.Time(r.Intn(1_000_000)),
			Work:     r.Uniform(0.01, 0.1),
		})
		if p.QueueLength() > 64 {
			eng.Run()
		}
	}
	eng.Run()
}

func TestQuantumBoundsPreemptionRate(t *testing.T) {
	// Two tasks with near-equal laxity would thrash under pure LLS; the
	// quantum must bound the number of context switches.
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, LLS{})
	p.Quantum = 100 * sim.Millisecond
	eng.At(0, func() {
		p.Add(&Task{ID: 1, Deadline: 30 * sim.Second, Work: 5})
		p.Add(&Task{ID: 2, Deadline: 30*sim.Second + 1, Work: 5})
	})
	eng.Run()
	// Total work 10s; with a 100ms quantum the engine fires at most a few
	// hundred events — not millions.
	if eng.Fired() > 500 {
		t.Fatalf("event count %d suggests preemption thrash", eng.Fired())
	}
	st := p.Stats()
	if st.Completed != 2 {
		t.Fatalf("completed = %d", st.Completed)
	}
}

func TestRemoveDuringLLSPreemptionWindow(t *testing.T) {
	// Removing the queued task that a pending laxity-crossing preemption
	// points at must not panic or fire a stale switch.
	eng := sim.New()
	p := NewProcessor(env.SimClock{Eng: eng}, 1, LLS{})
	eng.At(0, func() {
		p.Add(&Task{ID: 1, Deadline: 100 * sim.Second, Work: 3})
		p.Add(&Task{ID: 2, Deadline: 101 * sim.Second, Work: 3})
	})
	eng.At(sim.Second, func() {
		if _, ok := p.Remove(2); !ok {
			t.Error("Remove(2) failed")
		}
	})
	eng.Run()
	if st := p.Stats(); st.Completed != 1 {
		t.Fatalf("completed = %d, want 1", st.Completed)
	}
}

func TestUtilizationAtTimeZero(t *testing.T) {
	p := NewProcessor(env.SimClock{Eng: sim.New()}, 1, LLS{})
	if u := p.Utilization(); u != 0 {
		t.Fatalf("Utilization at t=0 = %v", u)
	}
}
