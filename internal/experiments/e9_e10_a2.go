package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E9Adaptation injects a load spike and compares the adaptive system
// (overload-triggered reassignment, §4.5) against the same system with
// adaptation disabled, reporting per-phase chunk miss rates.
func E9Adaptation(opt Options) Result {
	res := Result{
		ID:    "E9",
		Title: "Adaptive reassignment under a load spike",
		Claim: "re-running the allocation for overloaded peers' tasks recovers QoS after load spikes",
	}
	res.Table.Header = []string{"adaptation", "migrations", "admit_frac", "miss_before", "miss_spike", "miss_after"}
	for _, adapt := range []bool{true, false} {
		res.Table.AddRow(runSpikeCell(opt.Seed, adapt, opt.Quick)...)
	}
	return res
}

func runSpikeCell(seed uint64, adapt bool, quick bool) []any {
	cfg := core.DefaultConfig()
	cfg.OverloadUtil = 0.80
	cfg.ReassignMargin = 0.25
	cfg.AdaptPeriod = sim.Second
	if !adapt {
		cfg.AdaptPeriod = 0
	}
	c, cat := uniformDomain(cfg, seed^0xE9, 12, 8, 3, 30)
	mix := workload.DefaultMix()
	mix.Objects = 8
	mix.RatePerSec = 1.0
	mix.DurationMeanSec = 30
	d := workload.NewDriver(c, cat, mix, rng.New(seed^0xABC))

	start := c.Eng.Now()
	phase := 60 * sim.Second
	if quick {
		phase = 40 * sim.Second
	}
	// Steady request load throughout; during the middle phase, half the
	// peers get hit by heavy extraneous workload (§4.5) that only profile
	// reports reveal.
	d.Run(start, start+3*phase)
	spiked := []env.NodeID{6, 7, 8, 9, 10, 11}
	workload.LoadSpike(c, spiked, start+phase, start+2*phase, 0.85)
	c.RunUntil(start + 3*phase + 90*sim.Second)

	ev := c.Events.Snapshot()
	// Bucket sessions into phases by their finish time.
	missOf := func(fromUs, toUs int64) float64 {
		var chunks, missed int
		for _, r := range ev.Reports {
			if r.FinishedMicros >= fromUs && r.FinishedMicros < toUs {
				chunks += r.Chunks
				missed += r.Missed
			}
		}
		if chunks == 0 {
			return 0
		}
		return float64(missed) / float64(chunks)
	}
	p0, p1, p2 := int64(start), int64(start+phase), int64(start+2*phase)
	end := int64(start + 3*phase + 90*sim.Second)
	before := missOf(p0, p1)
	spike := missOf(p1, p2+int64(30*sim.Second)) // sessions finishing shortly after carry spike damage
	after := missOf(p2+int64(30*sim.Second), end)
	admitFrac := 0.0
	if ev.Submitted > 0 {
		admitFrac = float64(ev.Admitted) / float64(ev.Submitted)
	}
	label := "off"
	if adapt {
		label = "on"
	}
	return []any{label, ev.Migrations, admitFrac, before, spike, after}
}

// E10UpdatePeriod sweeps the intra-domain profiler update period (§4.4:
// "too frequent updates would cause high network traffic ... too
// infrequent updates may not capture the application requirements"),
// measuring both sides of the trade-off.
func E10UpdatePeriod(opt Options) Result {
	res := Result{
		ID:    "E10",
		Title: "Profiler update period trade-off",
		Claim: "the update frequency trades control traffic against allocation quality (stale load views cause misses)",
	}
	res.Table.Header = []string{"period_s", "profile_msgs", "ctl_msgs/peer/s", "admit_frac", "chunk_miss"}
	periods := []sim.Time{250 * sim.Millisecond, sim.Second, 4 * sim.Second, 16 * sim.Second}
	if opt.Quick {
		periods = []sim.Time{500 * sim.Millisecond, 8 * sim.Second}
	}
	seeds := []uint64{opt.Seed, opt.Seed + 101, opt.Seed + 202, opt.Seed + 303, opt.Seed + 404}
	if opt.Quick {
		seeds = seeds[:1]
	}
	for _, p := range periods {
		res.Table.AddRow(runUpdateCellAveraged(seeds, p, opt.Quick)...)
	}
	res.Notes = append(res.Notes, "cells averaged over seeds to damp single-run variance")
	return res
}

// runUpdateCellAveraged averages the E10 cell across seeds.
func runUpdateCellAveraged(seeds []uint64, period sim.Time, quick bool) []any {
	var profMsgs, ctl, admit, miss float64
	for _, sd := range seeds {
		row := runUpdateCell(sd, period, quick)
		profMsgs += float64(row[1].(uint64))
		ctl += row[2].(float64)
		admit += row[3].(float64)
		miss += row[4].(float64)
	}
	n := float64(len(seeds))
	return []any{period.Seconds(), profMsgs / n, ctl / n, admit / n, miss / n}
}

func runUpdateCell(seed uint64, period sim.Time, quick bool) []any {
	cfg := core.DefaultConfig()
	cfg.ProfilePeriod = period
	cfg.AdaptPeriod = 0 // isolate the staleness effect
	c, cat := uniformDomain(cfg, seed^uint64(period), 16, 12, 2, 15)
	mix := workload.DefaultMix()
	mix.Objects = 12
	mix.RatePerSec = 2.0
	mix.DurationMeanSec = 15
	d := workload.NewDriver(c, cat, mix, rng.New(seed^0x10E))
	start := c.Eng.Now()
	horizon := 120 * sim.Second
	if quick {
		horizon = 60 * sim.Second
	}
	before := c.Net.Stats()
	d.Run(start, start+horizon)
	// Extraneous load flips every 15s on random peers: only profile
	// updates tell the RM, so a stale view misallocates (§4.4/§4.5).
	workload.BackgroundNoise(c, rng.New(seed^0xBEEF), start, start+horizon, 15*sim.Second, 0.5)
	c.RunUntil(start + horizon + 90*sim.Second)
	after := c.Net.Stats()

	ev := c.Events.Snapshot()
	profMsgs := after.PerType["ProfileUpdate"] - before.PerType["ProfileUpdate"]
	ctl := (after.Sent - before.Sent) - (after.PerType["Chunk"] - before.PerType["Chunk"])
	perPeerSec := float64(ctl) / 16 / (horizon + 90*sim.Second).Seconds()
	admitFrac := 0.0
	if ev.Submitted > 0 {
		admitFrac = float64(ev.Admitted) / float64(ev.Submitted)
	}
	return []any{period.Seconds(), profMsgs, perPeerSec, admitFrac, c.Events.MissRate()}
}

// A2BackupSync kills the RM mid-run under different backup-sync periods
// and measures failover latency and how many running sessions the new RM
// still knows about (§4.1's backup copy; DESIGN.md ablation A2).
func A2BackupSync(opt Options) Result {
	res := Result{
		ID:    "A2",
		Title: "Ablation: backup sync period vs state lost at failover",
		Claim: "a fresher backup copy preserves more session state across RM failure",
	}
	res.Table.Header = []string{"sync_period_s", "failover_ms", "at_kill", "orphaned", "ghosts", "done_frac"}
	periods := []sim.Time{sim.Second, 4 * sim.Second, 16 * sim.Second}
	if opt.Quick {
		periods = []sim.Time{sim.Second, 8 * sim.Second}
	}
	for _, p := range periods {
		res.Table.AddRow(runBackupCell(opt.Seed, p)...)
	}
	res.Notes = append(res.Notes,
		"sessions unknown to the new RM still stream (data plane is peer-to-peer) but lose repair/adaptation coverage")
	return res
}

func runBackupCell(seed uint64, syncPeriod sim.Time) []any {
	cfg := core.DefaultConfig()
	cfg.BackupSyncPeriod = syncPeriod
	cfg.AdaptPeriod = 0
	// Build the domain by hand: the founder (the RM we will kill) holds
	// no objects, so sessions need no source-loss repair at failover and
	// the session-table difference isolates the sync-period effect.
	cat := clusterCatalog()
	c := newCluster(cfg, seed^0xA2)
	r := rng.New(seed ^ 0xA2FF)
	infos := make([]proto.PeerInfo, 10)
	for i := range infos {
		infos[i] = strongInfo(cat)
	}
	for o := 0; o < 8; o++ {
		f := cat.Sources[r.Intn(len(cat.Sources))]
		obj := media.Object{
			Name:   fmt.Sprintf("obj-%d", o),
			Format: f,
			Bytes:  int64(60 * float64(f.BitrateKbps) * 1000 / 8),
		}
		for k := 0; k < 2; k++ {
			holder := 1 + r.Intn(9) // never the founder
			infos[holder].Objects = append(infos[holder].Objects, obj)
		}
	}
	c.AddFounder(infos[0])
	for i := 1; i < 10; i++ {
		c.AddPeer(infos[i], 0)
	}
	c.RunUntil(5 * sim.Second)
	mix := workload.DefaultMix()
	mix.Objects = 8
	mix.RatePerSec = 0.8
	mix.DurationMeanSec = 60
	d := workload.NewDriver(c, cat, mix, rng.New(seed^0xA2A2))
	start := c.Eng.Now()
	// All submissions land before the kill so the new RM cannot inflate
	// its table with post-failover admissions.
	d.Run(start, start+25*sim.Second)

	// Kill just after the submission window so the long sync periods are
	// mid-cycle (their last snapshot predates the newest sessions).
	killAt := start + 26*sim.Second
	var atKill, orphaned, ghosts int
	orphaned, ghosts = -1, -1
	c.Eng.At(killAt-sim.Millisecond, func() { atKill = c.Peer(0).RunningSessions() })
	c.Crash(killAt, 0)
	// Inspect the new RM's table right after takeover, before its
	// heartbeat machinery starts repairing: sessions actually streaming
	// but absent from the table are orphaned (no repair/adaptation
	// coverage); table entries with no live sink are ghosts (stale load
	// accounting). Both grow with the sync period.
	c.Eng.At(killAt+2*sim.Second, func() {
		known := map[string]bool{}
		for _, id := range c.RMs() {
			for _, tid := range c.Peer(id).SessionIDs() {
				known[tid] = true
			}
		}
		active := map[string]bool{}
		for _, id := range c.IDs() {
			if !c.Net.Alive(id) {
				continue
			}
			for _, tid := range c.Peer(id).ActiveSinkSessions() {
				active[tid] = true
			}
		}
		orphaned, ghosts = 0, 0
		for tid := range active {
			if !known[tid] {
				orphaned++
			}
		}
		for tid := range known {
			if !active[tid] {
				ghosts++
			}
		}
	})
	c.RunUntil(start + 60*sim.Second + 120*sim.Second)

	ev := c.Events.Snapshot()
	var failMs float64 = -1
	if len(ev.FailoverMicros) > 0 {
		failMs = float64(ev.FailoverMicros[0]) / 1000
	}
	doneFrac := 0.0
	if ev.Admitted > 0 {
		doneFrac = float64(len(ev.Reports)) / float64(ev.Admitted)
	}
	return []any{syncPeriod.Seconds(), failMs, atKill, orphaned, ghosts, doneFrac}
}
