package experiments

import (
	"fmt"
	"hash/fnv"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// E12DiscoveryBackends compares the two inter-domain discovery backends
// on the same fleet under churn: the paper's lazy Bloom-summary gossip
// (§4.4) against the Kademlia-style structured overlay (internal/dht).
// The fleet is ≥1000 peers (full mode) forming many domains; churn
// crashes individual peers and annihilates whole domains. Gossip never
// forgets a dead domain (its summary stays cached at the last version),
// so probes for objects that died with their domain get redirected into
// the void and resolve only when the submitter's 2·deadline+10s
// watchdog gives up; the DHT's provider records expire by TTL, so the
// same probes resolve to a prompt local rejection. The price is lookup
// latency (gossip answers from cache in zero time) and control traffic.
func E12DiscoveryBackends(opt Options) Result {
	res := Result{
		ID:    "E12",
		Title: "Discovery backends under churn: gossip vs DHT",
		Claim: "structured lookups trade per-query latency for exactness and bounded staleness",
	}
	res.Table.Header = []string{"backend", "peers", "domains", "hit_rate", "stale_timeout_rate", "stale_redirects", "lookup_p99_ms", "ctrl_msgs_per_peer"}

	n, kills, domKills, probes := 1024, 48, 3, 96
	if opt.Quick {
		n, kills, domKills, probes = 96, 6, 1, 12
	}
	for _, backend := range []string{core.DiscoveryGossip, core.DiscoveryDHT} {
		r := discoveryChurnRun(opt.Seed, backend, n, kills, domKills, probes)
		res.Table.AddRow(backend, r.peers, r.domains, r.hitRate, r.staleTimeout, r.staleRedirects, r.lookupP99ms, r.ctrlMsgsPerPeer)
	}
	res.Notes = append(res.Notes,
		"stale_timeout_rate: probes for whole-domain-dead objects still unresolved 12s after submission — redirected at a dead RM and waiting for the submitter's watchdog",
		"ctrl_msgs_per_peer: control-plane messages per peer over a 30s idle window (no workload, no churn)")
	return res
}

type discoveryChurnResult struct {
	peers, domains  int
	hitRate         float64
	staleTimeout    float64
	staleRedirects  int
	lookupP99ms     float64
	ctrlMsgsPerPeer float64
}

// discoveryChurnRun executes one backend's leg of E12. Phases: build the
// fleet, converge, measure idle control traffic, churn (individual
// crashes + whole-domain kills), let records age past the DHT TTL, then
// probe cross-domain objects that are still alive (hit rate) and objects
// that died with their whole domain (staleness).
func discoveryChurnRun(seed uint64, backend string, n, kills, domKills, probes int) discoveryChurnResult {
	h := fnv.New64a()
	h.Write([]byte(backend))
	cfg := core.DefaultConfig()
	cfg.Discovery = backend
	cfg.MaxDomainPeers = 16
	cat := cluster.StandardCatalog()
	infos := make([]proto.PeerInfo, n)
	for i := range infos {
		infos[i] = strongInfo(cat)
		f := cat.Sources[i%len(cat.Sources)]
		infos[i].Objects = []media.Object{{
			Name:   fmt.Sprintf("e12-%d", i),
			Format: f,
			Bytes:  int64(20 * float64(f.BitrateKbps) * 1000 / 8),
		}}
	}
	c := cluster.Build(cfg, defaultNet(), rng.Derive(seed, h.Sum64()), infos, 20*sim.Millisecond)
	sk := stats.NewSet(0, 0, 0)
	c.Events.AttachSketches(sk)
	c.RunUntil(c.Eng.Now() + 45*sim.Second)

	// Idle window: every message here is discovery/membership upkeep.
	pre := c.Net.Stats().Sent
	c.RunUntil(c.Eng.Now() + 30*sim.Second)
	ctrlMsgs := float64(c.Net.Stats().Sent-pre) / float64(n)

	// Churn: domKills whole domains die at once (their RM included), and
	// kills individual peers crash spread across a 30s window.
	r := rng.New(rng.Derive(seed, 0xe12))
	var deadObjects []string
	killed := make(map[env.NodeID]bool)
	rms := c.RMs()
	for i := 0; i < domKills && i < len(rms); i++ {
		rm := rms[len(rms)-1-i] // late domains: founder's domain survives
		dom := c.Peer(rm).Domain()
		for _, id := range c.IDs() {
			if c.Net.Alive(id) && c.Peer(id).Domain() == dom {
				c.Crash(c.Eng.Now(), id)
				killed[id] = true
				for _, o := range infos[int(id)].Objects {
					deadObjects = append(deadObjects, o.Name)
				}
			}
		}
	}
	for i := 0; i < kills; i++ {
		v := env.NodeID(r.Intn(n))
		if killed[v] || !c.Net.Alive(v) {
			continue
		}
		killed[v] = true
		c.Crash(c.Eng.Now()+sim.Time(r.Intn(30))*sim.Second, v)
	}
	// Age past the DHT record TTL (30s) and heartbeat-based member
	// removal, so both backends have had every chance to forget the dead.
	c.RunUntil(c.Eng.Now() + 70*sim.Second)

	// Phase A: probes for objects on live peers in other domains.
	alive := func(id env.NodeID) bool { return c.Net.Alive(id) }
	spec := func(id string, origin env.NodeID, object string) proto.TaskSpec {
		return proto.TaskSpec{
			ID:         id,
			Origin:     origin,
			ObjectName: object,
			Constraint: media.Constraint{
				Codecs:         []media.Codec{media.MPEG4},
				MaxWidth:       640,
				MaxHeight:      480,
				MaxBitrateKbps: 64,
			},
			DeadlineMicros: 5_000_000,
			DurationSec:    2,
			ChunkSec:       1,
		}
	}
	pick := func() (env.NodeID, env.NodeID) { // origin, holder in distinct domains
		for {
			o, t := env.NodeID(r.Intn(n)), env.NodeID(r.Intn(n))
			if !alive(o) || !alive(t) || c.Peer(o).Domain() == c.Peer(t).Domain() {
				continue
			}
			return o, t
		}
	}
	ev0 := c.Events.Snapshot()
	for i := 0; i < probes; i++ {
		origin, holder := pick()
		c.Submit(c.Eng.Now()+sim.Time(i)*200*sim.Millisecond, origin,
			spec(fmt.Sprintf("hit-%d", i), origin, fmt.Sprintf("e12-%d", holder)))
	}
	c.RunUntil(c.Eng.Now() + sim.Time(probes)*200*sim.Millisecond + 30*sim.Second)
	ev1 := c.Events.Snapshot()

	// Phase B: probes for objects that died with their whole domain. A
	// probe that resolves promptly (admit or direct rejection) shows up
	// in the 12s snapshot; one redirected at a dead RM hangs until the
	// submitter's watchdog (2·deadline+10s = 20s here) converts it to a
	// late local rejection, so "unresolved at 12s" isolates exactly the
	// probes lost to a stale redirect.
	for i := 0; i < probes; i++ {
		var origin env.NodeID
		for {
			origin = env.NodeID(r.Intn(n))
			if alive(origin) {
				break
			}
		}
		object := deadObjects[r.Intn(len(deadObjects))]
		c.Submit(c.Eng.Now()+sim.Time(i)*200*sim.Millisecond, origin,
			spec(fmt.Sprintf("stale-%d", i), origin, object))
	}
	c.RunUntil(c.Eng.Now() + sim.Time(probes)*200*sim.Millisecond + 12*sim.Second)
	evMid := c.Events.Snapshot()
	c.RunUntil(c.Eng.Now() + 28*sim.Second) // drain the watchdogs
	ev2 := c.Events.Snapshot()

	resolvedFast := (evMid.Admitted - ev1.Admitted) + (evMid.Rejected - ev1.Rejected)
	out := discoveryChurnResult{
		peers:           n,
		domains:         len(c.RMs()),
		hitRate:         float64(ev1.Admitted-ev0.Admitted) / float64(probes),
		staleTimeout:    float64(probes-resolvedFast) / float64(probes),
		staleRedirects:  ev2.Redirected - ev1.Redirected,
		lookupP99ms:     sk.Quantile(stats.SketchDHTLookup, int64(c.Eng.Now()), 0.99) * 1000,
		ctrlMsgsPerPeer: ctrlMsgs,
	}
	return out
}
