package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

// E1Figure1 reproduces the paper's Figure 1 worked example (§4.3): the
// resource graph for transcoding 800x600 MPEG-2 @512Kbps to 640x480
// MPEG-4 @64Kbps, the exact three feasible paths the paper names, and the
// allocation the Figure-3 algorithm picks under several load conditions.
func E1Figure1(opt Options) Result {
	f := graph.Figure1Example(10_000)
	res := Result{
		ID:    "E1",
		Title: "Figure 1 resource graph and path enumeration",
		Claim: "G_r admits exactly the paths {e1,e2}, {e1,e3}, {e1,e4,e5,e8} from v1 to v3",
	}
	res.Table.Header = []string{"scenario", "paths", "chosen", "fairness", "latency_ms"}

	req := graph.Request{Init: f.VInit, Goal: f.VSol, ChunkSeconds: 1, DeadlineMicros: 60_000_000}
	paths := f.AllPathNames()

	scenario := func(name string, load func(pv *graph.PeerView)) {
		pv := f.IdlePeers(10)
		if load != nil {
			load(pv)
		}
		alloc, err := (graph.FairnessBFS{}).Allocate(f.G, req, pv)
		if err != nil {
			// §4.3: "If no allocation that satisfies the given QoS exists,
			// the algorithm reports that."
			res.Table.AddRow(name, fmt.Sprintf("%d", len(paths)), "NONE (reported)", "-", "-")
			return
		}
		res.Table.AddRow(name, fmt.Sprintf("%d", len(paths)), f.G.PathNames(alloc.Path),
			alloc.Fairness, float64(alloc.LatencyMicros)/1000)
	}
	scenario("all peers idle", nil)
	scenario("peer1 (e2,e8) loaded", func(pv *graph.PeerView) { pv.Load[1] = 9 })
	scenario("peer2 (e3) loaded", func(pv *graph.PeerView) { pv.Load[2] = 9 })
	scenario("peers1+2 saturated", func(pv *graph.PeerView) { pv.Load[1], pv.Load[2] = 9, 9 })

	res.Notes = append(res.Notes, "enumerated paths: "+fmt.Sprint(paths))
	return res
}

// E2TaskAssignment reproduces Figure 2's three-step walkthrough on a live
// simulated domain: (A) query to the RM, (B) RM assigns the task, (C)
// transcoded streaming completes — and records the full control-plane
// message budget of one session.
func E2TaskAssignment(opt Options) Result {
	cfg := core.DefaultConfig()
	c, _ := uniformDomain(cfg, opt.Seed, 8, 1, 1, 20)
	before := c.Net.Stats()
	spec := proto.TaskSpec{
		Origin:     3,
		ObjectName: "obj-0",
		Constraint: media.Constraint{
			Codecs: []media.Codec{media.MPEG4}, MaxWidth: 640, MaxHeight: 480, MaxBitrateKbps: 64,
		},
		DeadlineMicros: 2_000_000,
		DurationSec:    20,
		ChunkSec:       1,
	}
	c.Submit(c.Eng.Now(), 3, spec)
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	after := c.Net.Stats()
	ev := c.Events.Snapshot()

	res := Result{
		ID:    "E2",
		Title: "Figure 2 task assignment walkthrough",
		Claim: "query -> RM allocation -> graph composition -> streaming completes within the startup deadline",
	}
	res.Table.Header = []string{"step", "outcome"}
	res.Table.AddRow("A: query submitted", fmt.Sprintf("%d", ev.Submitted))
	res.Table.AddRow("B: task assigned (sessions composed)", fmt.Sprintf("%d", ev.Admitted))
	okReports := 0
	var startupMs float64
	for _, r := range ev.Reports {
		if r.Received == r.Chunks && r.Missed == 0 {
			okReports++
		}
		startupMs = float64(r.StartupMicros) / 1000
	}
	res.Table.AddRow("C: streaming completed cleanly", fmt.Sprintf("%d", okReports))
	res.Table.AddRow("startup latency (ms, budget 2000)", startupMs)
	res.Table.AddRow("messages during run (session + 60s domain keepalives)", fmt.Sprintf("%d", after.Sent-before.Sent))
	res.Notes = append(res.Notes, "per-type: "+diffTypes(before, after))
	return res
}

// diffTypes renders the per-type message delta between two stats
// snapshots in stable order.
func diffTypes(before, after netsim.Stats) string {
	diff := netsim.Stats{PerType: map[string]uint64{}}
	for k, v := range after.PerType {
		if d := v - before.PerType[k]; d > 0 {
			diff.PerType[k] = d
		}
	}
	return diff.TypeCounts()
}
