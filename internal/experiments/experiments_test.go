package experiments

import (
	"strings"
	"testing"
)

var quick = Options{Seed: 42, Quick: true}

func TestE1Figure1(t *testing.T) {
	res := E1Figure1(quick)
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	// The enumerated paths note must list exactly the paper's three.
	note := res.Notes[0]
	for _, want := range []string{"{e1,e2}", "{e1,e3}", "{e1,e4,e5,e8}"} {
		if !strings.Contains(note, want) {
			t.Fatalf("paths note %q missing %s", note, want)
		}
	}
	// With peer 1 loaded, the chosen path must be {e1,e3}.
	if res.Table.Rows[1][2] != "{e1,e3}" {
		t.Fatalf("loaded-peer1 choice = %q", res.Table.Rows[1][2])
	}
	// With peer 2 loaded, must avoid e3.
	if res.Table.Rows[2][2] == "{e1,e3}" {
		t.Fatalf("loaded-peer2 still chose e3")
	}
}

func TestE2TaskAssignment(t *testing.T) {
	res := E2TaskAssignment(quick)
	rows := res.Table.Rows
	if rows[0][1] != "1" || rows[1][1] != "1" || rows[2][1] != "1" {
		t.Fatalf("walkthrough failed:\n%s", res.Table.String())
	}
}

func TestE3AllocatorComparison(t *testing.T) {
	res := E3AllocatorComparison(quick)
	if len(res.Table.Rows) != 8 { // 4 allocators x 2 rates
		t.Fatalf("rows = %d\n%s", len(res.Table.Rows), res.Table.String())
	}
	t.Logf("\n%s", res.String())
}

func TestE4Scalability(t *testing.T) {
	res := E4Scalability(quick)
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	t.Logf("\n%s", res.String())
}

func TestE5SchedulerComparison(t *testing.T) {
	res := E5SchedulerComparison(quick)
	if len(res.Table.Rows) != 10 { // 5 policies x 2 utils
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	t.Logf("\n%s", res.String())
}

func TestE6Churn(t *testing.T) {
	res := E6Churn(quick)
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	t.Logf("\n%s", res.String())
}

func TestE7AdmissionRedirect(t *testing.T) {
	res := E7AdmissionRedirect(quick)
	t.Logf("\n%s", res.String())
}

func TestE8GossipBloom(t *testing.T) {
	res := E8GossipBloom(quick)
	t.Logf("\n%s", res.String())
}

func TestE9Adaptation(t *testing.T) {
	res := E9Adaptation(quick)
	t.Logf("\n%s", res.String())
}

func TestE10UpdatePeriod(t *testing.T) {
	res := E10UpdatePeriod(quick)
	t.Logf("\n%s", res.String())
}

func TestA1ObjectiveAblation(t *testing.T) {
	res := A1ObjectiveAblation(quick)
	t.Logf("\n%s", res.String())
}

func TestA2BackupSync(t *testing.T) {
	res := A2BackupSync(quick)
	t.Logf("\n%s", res.String())
}

func TestFairnessHelper(t *testing.T) {
	if got := fairnessOfLoads([]float64{1, 1}); got != 1 {
		t.Fatalf("fairnessOfLoads = %v", got)
	}
}

func TestA3Preemption(t *testing.T) {
	res := A3Preemption(quick)
	t.Logf("\n%s", res.String())
	// With preemption on, at least one high-importance task must run and
	// at least one preemption must occur; off, none do.
	on, off := res.Table.Rows[0], res.Table.Rows[1]
	if on[0] != "on" || off[0] != "off" {
		t.Fatalf("row order: %v", res.Table.Rows)
	}
	if on[2] == "0" {
		t.Fatalf("preemption admitted no high-importance tasks:\n%s", res.Table.String())
	}
	if off[3] != "0" {
		t.Fatalf("preemptions happened while disabled:\n%s", res.Table.String())
	}
}

func TestE11Decentralization(t *testing.T) {
	res := E11Decentralization(quick)
	t.Logf("\n%s", res.String())
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	if res.Table.Rows[0][0] != "global-RM" || res.Table.Rows[1][0] != "domains(16)" {
		t.Fatalf("row labels: %v", res.Table.Rows)
	}
}
