package experiments

import (
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// e3Run drives one (allocator, rate) cell: a 16-peer domain under Poisson
// load for a fixed horizon, returning aggregate quality metrics.
type e3Cell struct {
	admitFrac  float64
	missRate   float64
	meanFair   float64
	p95Startup float64
	meanHops   float64
}

func runAllocCell(seed uint64, alloc graph.Allocator, rate float64, horizon sim.Time, adapt bool) e3Cell {
	cfg := core.DefaultConfig()
	cfg.Allocator = alloc
	if !adapt {
		cfg.AdaptPeriod = 0
	}
	c, cat := uniformDomain(cfg, seed, 16, 12, 2, 15)
	mix := workload.DefaultMix()
	mix.RatePerSec = rate
	mix.Objects = 12
	mix.DurationMeanSec = 15
	d := workload.NewDriver(c, cat, mix, rng.New(seed^0x5151))
	start := c.Eng.Now()
	d.Run(start, start+horizon)

	// Sample domain fairness each second during the loaded phase.
	var fairSamples metrics.Summary
	rmPeer := c.Peer(0)
	tick := c.Eng.Every(start, sim.Second, func() {
		if rmPeer.IsRM() {
			fairSamples.Observe(rmPeer.DomainFairness())
		}
	})
	c.RunUntil(start + horizon)
	tick.Stop()
	c.RunUntil(c.Eng.Now() + 120*sim.Second) // drain

	ev := c.Events.Snapshot()
	var startup, hops metrics.Summary
	var chunks, missed int
	for _, r := range ev.Reports {
		chunks += r.Chunks
		missed += r.Missed
		startup.Observe(float64(r.StartupMicros) / 1000)
		hops.Observe(float64(r.Hops))
	}
	cell := e3Cell{meanFair: fairSamples.Mean(), meanHops: hops.Mean()}
	if ev.Submitted > 0 {
		cell.admitFrac = float64(ev.Admitted) / float64(ev.Submitted)
	}
	if chunks > 0 {
		cell.missRate = float64(missed) / float64(chunks)
	}
	cell.p95Startup = startup.Quantile(0.95)
	return cell
}

// E3AllocatorComparison sweeps offered load across allocation strategies:
// the paper's fairness-maximizing BFS against first-fit, greedy
// least-loaded and random baselines (§4.2-4.3).
func E3AllocatorComparison(opt Options) Result {
	res := Result{
		ID:    "E3",
		Title: "Allocator comparison under load sweep",
		Claim: "fairness-maximizing allocation keeps load balanced and admits more tasks within QoS than fairness-blind baselines",
	}
	res.Table.Header = []string{"allocator", "rate/s", "admit_frac", "chunk_miss", "mean_fairness", "mean_hops", "p95_startup_ms"}
	rates := []float64{0.5, 1.5, 3.0}
	horizon := 120 * sim.Second
	if opt.Quick {
		rates = []float64{0.5, 2.0}
		horizon = 60 * sim.Second
	}
	allocators := []graph.Allocator{
		graph.FairnessBFS{},
		graph.FirstFit{},
		graph.GreedyLeastLoaded{},
		&graph.RandomFeasible{R: rng.New(opt.Seed ^ 0x99)},
	}
	for _, a := range allocators {
		for _, rate := range rates {
			cell := runAllocCell(opt.Seed, a, rate, horizon, false)
			res.Table.AddRow(a.Name(), rate, cell.admitFrac, cell.missRate, cell.meanFair, cell.meanHops, cell.p95Startup)
		}
	}
	return res
}

// E5SchedulerComparison sweeps processor utilization across local
// scheduling policies, isolating §2's choice of LLS. Single processor,
// Poisson arrivals, bimodal deadline tightness.
func E5SchedulerComparison(opt Options) Result {
	res := Result{
		ID:    "E5",
		Title: "Local scheduler comparison (LLS vs EDF/FIFO/SJF/PRIO)",
		Claim: "deadline-aware local scheduling (LLS) misses fewer deadlines than deadline-blind policies as utilization grows",
	}
	res.Table.Header = []string{"policy", "utilization", "miss_ratio", "mean_lateness_ms"}
	utils := []float64{0.5, 0.8, 1.0, 1.2}
	tasksN := 4000
	if opt.Quick {
		utils = []float64{0.6, 1.1}
		tasksN = 1000
	}
	policies := []sched.Policy{sched.LLS{}, sched.EDF{}, sched.SJF{}, sched.FIFO{}, sched.Priority{}}
	for _, pol := range policies {
		for _, u := range utils {
			missRatio, lateness := runSchedCell(opt.Seed, pol, u, tasksN)
			res.Table.AddRow(pol.Name(), u, missRatio, lateness)
		}
	}
	return res
}

// runSchedCell simulates one (policy, utilization) cell.
func runSchedCell(seed uint64, pol sched.Policy, util float64, n int) (missRatio, meanLatenessMs float64) {
	r := rng.New(seed ^ uint64(util*1000))
	eng := sim.New()
	p := sched.NewProcessor(env.SimClock{Eng: eng}, 1, pol)
	meanWork := 0.05 // 50ms at speed 1
	rate := util / meanWork
	release := sim.Time(0)
	for i := 0; i < n; i++ {
		release += sim.Time(r.Exp(1/rate) * 1e6)
		work := r.Exp(meanWork)
		if work < 0.001 {
			work = 0.001
		}
		// Bimodal deadlines: half tight (1.5-3x exec), half loose (5-10x).
		var factor float64
		if r.Bool(0.5) {
			factor = r.Uniform(1.5, 3)
		} else {
			factor = r.Uniform(5, 10)
		}
		task := &sched.Task{
			ID:         sched.TaskID(i),
			Release:    release,
			Deadline:   release + sim.Time(work*factor*1e6),
			Work:       work,
			Importance: 1 + r.Intn(5),
		}
		eng.At(release, func() { p.Add(task) })
	}
	eng.Run()
	st := p.Stats()
	missRatio = st.MissRatio()
	if st.Missed > 0 {
		meanLatenessMs = st.TotalLateness.Millis() / float64(st.Missed)
	}
	return missRatio, meanLatenessMs
}

// A1ObjectiveAblation compares the fairness objective against a makespan
// (min-latency) objective and the exhaustive-optimal yardstick on
// identical workloads — the design-choice ablation DESIGN.md calls out.
func A1ObjectiveAblation(opt Options) Result {
	res := Result{
		ID:    "A1",
		Title: "Ablation: allocation objective (fairness vs latency vs exhaustive)",
		Claim: "optimizing fairness sacrifices little latency while keeping the load distribution uniform",
	}
	res.Table.Header = []string{"objective", "admit_frac", "chunk_miss", "mean_fairness", "mean_hops", "p95_startup_ms"}
	horizon := 120 * sim.Second
	rate := 2.0
	if opt.Quick {
		horizon = 60 * sim.Second
	}
	for _, a := range []graph.Allocator{graph.FairnessBFS{}, graph.MinLatency{}, graph.Exhaustive{}} {
		cell := runAllocCell(opt.Seed, a, rate, horizon, false)
		res.Table.AddRow(a.Name(), cell.admitFrac, cell.missRate, cell.meanFair, cell.meanHops, cell.p95Startup)
	}
	return res
}

// fairnessOfLoads is re-exported for tests.
func fairnessOfLoads(loads []float64) float64 { return fairness.Index(loads) }
