// Package experiments implements the evaluation suite documented in
// DESIGN.md and EXPERIMENTS.md. The paper has no quantitative evaluation
// section, so each experiment operationalizes one of its testable claims
// (scalability, fairness, adaptivity, churn tolerance) or reproduces one
// of its figures as an executable artifact.
//
// Every experiment is deterministic given its options and returns a
// Result whose table is what cmd/p2psim prints and EXPERIMENTS.md
// records.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Options tunes an experiment run.
type Options struct {
	Seed uint64
	// Quick shrinks sweeps/populations for test-suite latency; the
	// benchmark harness and CLI run with Quick=false.
	Quick bool
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Claim string // the paper claim under test
	Table metrics.Table
	Notes []string
}

// String renders the result as the CLI prints it.
func (r Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\nClaim: %s\n%s", r.ID, r.Title, r.Claim, r.Table.String())
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// defaultNet is the standard experiment network: 10ms links with 20%
// jitter.
func defaultNet() netsim.Config {
	return netsim.Config{
		Latency:    netsim.UniformLatency(10 * sim.Millisecond),
		JitterFrac: 0.2,
	}
}

// strongInfo returns an RM-qualified peer with the full service ladder.
func strongInfo(cat cluster.Catalog) proto.PeerInfo {
	return proto.PeerInfo{
		SpeedWU:       10,
		BandwidthKbps: 5000,
		UptimeSec:     7200,
		Services:      append([]media.Transcoder(nil), cat.Ladder...),
	}
}

// uniformDomain builds a single domain of n identical strong peers with
// objCount objects (duration objDur seconds) spread replicas-wide.
func uniformDomain(cfg core.Config, seed uint64, n, objCount, replicas int, objDur float64) (*cluster.Cluster, cluster.Catalog) {
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, defaultNet(), seed)
	infos := make([]proto.PeerInfo, n)
	for i := range infos {
		infos[i] = strongInfo(cat)
	}
	r := rng.New(seed ^ 0xabcdef)
	for o := 0; o < objCount; o++ {
		f := cat.Sources[r.Intn(len(cat.Sources))]
		obj := media.Object{
			Name:   fmt.Sprintf("obj-%d", o),
			Format: f,
			Hash:   r.Uint64(),
			Bytes:  int64(objDur * float64(f.BitrateKbps) * 1000 / 8),
		}
		for k := 0; k < replicas; k++ {
			holder := r.Intn(n)
			infos[holder].Objects = append(infos[holder].Objects, obj)
		}
	}
	c.AddFounder(infos[0])
	for i := 1; i < n; i++ {
		c.AddPeer(infos[i], 0)
	}
	c.RunUntil(5 * sim.Second)
	return c, cat
}

// clusterCatalog returns the standard catalog (alias for readability in
// experiment files).
func clusterCatalog() cluster.Catalog { return cluster.StandardCatalog() }

// newCluster builds an empty cluster on the default experiment network.
func newCluster(cfg core.Config, seed uint64) *cluster.Cluster {
	return cluster.New(cfg, defaultNet(), seed)
}

// All runs the complete suite in order.
func All(opt Options) []Result {
	return []Result{
		E1Figure1(opt),
		E2TaskAssignment(opt),
		E3AllocatorComparison(opt),
		E4Scalability(opt),
		E5SchedulerComparison(opt),
		E6Churn(opt),
		E7AdmissionRedirect(opt),
		E8GossipBloom(opt),
		E9Adaptation(opt),
		E10UpdatePeriod(opt),
		E11Decentralization(opt),
		A1ObjectiveAblation(opt),
		A2BackupSync(opt),
		A3Preemption(opt),
	}
}
