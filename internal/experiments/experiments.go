// Package experiments implements the evaluation suite documented in
// DESIGN.md and EXPERIMENTS.md. The paper has no quantitative evaluation
// section, so each experiment operationalizes one of its testable claims
// (scalability, fairness, adaptivity, churn tolerance) or reproduces one
// of its figures as an executable artifact.
//
// Every experiment is deterministic given its options and returns a
// Result whose table is what cmd/p2psim prints and EXPERIMENTS.md
// records.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Options tunes an experiment run.
type Options struct {
	Seed uint64
	// Quick shrinks sweeps/populations for test-suite latency; the
	// benchmark harness and CLI run with Quick=false.
	Quick bool
	// Nanotime, when set, replaces live.Nanotime for the real-CPU-cost
	// columns of E4/E11 (alloc_p95_us). The CLI leaves it nil — those
	// columns deliberately measure the wall clock; tests inject a
	// deterministic reading to compare whole tables byte-for-byte.
	Nanotime func() int64
}

// nanotime returns the measurement clock for real-cost columns: the
// injected hook when present, else the supplied live reading.
func (o Options) nanotime(fallback func() int64) func() int64 {
	if o.Nanotime != nil {
		return o.Nanotime
	}
	return fallback
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Claim string // the paper claim under test
	Table metrics.Table
	Notes []string
	// Err is set when the experiment failed (e.g. panicked inside the
	// parallel runner) instead of producing a table.
	Err string
}

// String renders the result as the CLI prints it.
func (r Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\nClaim: %s\n%s", r.ID, r.Title, r.Claim, r.Table.String())
	if r.Err != "" {
		s += "error: " + r.Err + "\n"
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// defaultNet is the standard experiment network: 10ms links with 20%
// jitter.
func defaultNet() netsim.Config {
	return netsim.Config{
		Latency:    netsim.UniformLatency(10 * sim.Millisecond),
		JitterFrac: 0.2,
	}
}

// strongInfo returns an RM-qualified peer with the full service ladder.
func strongInfo(cat cluster.Catalog) proto.PeerInfo {
	return proto.PeerInfo{
		SpeedWU:       10,
		BandwidthKbps: 5000,
		UptimeSec:     7200,
		Services:      append([]media.Transcoder(nil), cat.Ladder...),
	}
}

// uniformDomain builds a single domain of n identical strong peers with
// objCount objects (duration objDur seconds) spread replicas-wide.
func uniformDomain(cfg core.Config, seed uint64, n, objCount, replicas int, objDur float64) (*cluster.Cluster, cluster.Catalog) {
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, defaultNet(), seed)
	infos := make([]proto.PeerInfo, n)
	for i := range infos {
		infos[i] = strongInfo(cat)
	}
	r := rng.New(seed ^ 0xabcdef)
	for o := 0; o < objCount; o++ {
		f := cat.Sources[r.Intn(len(cat.Sources))]
		obj := media.Object{
			Name:   fmt.Sprintf("obj-%d", o),
			Format: f,
			Hash:   r.Uint64(),
			Bytes:  int64(objDur * float64(f.BitrateKbps) * 1000 / 8),
		}
		for k := 0; k < replicas; k++ {
			holder := r.Intn(n)
			infos[holder].Objects = append(infos[holder].Objects, obj)
		}
	}
	c.AddFounder(infos[0])
	for i := 1; i < n; i++ {
		c.AddPeer(infos[i], 0)
	}
	c.RunUntil(5 * sim.Second)
	return c, cat
}

// clusterCatalog returns the standard catalog (alias for readability in
// experiment files).
func clusterCatalog() cluster.Catalog { return cluster.StandardCatalog() }

// newCluster builds an empty cluster on the default experiment network.
func newCluster(cfg core.Config, seed uint64) *cluster.Cluster {
	return cluster.New(cfg, defaultNet(), seed)
}

// Runner is one experiment entry point.
type Runner func(Options) Result

// NamedRunner pairs an experiment ID with its entry point, for callers
// (the CLI, the parallel runner) that select or schedule by ID.
type NamedRunner struct {
	ID  string
	Run Runner
}

// Suite returns the complete ordered suite. The slice is freshly
// allocated; callers may filter or reorder it.
func Suite() []NamedRunner {
	return []NamedRunner{
		{"E1", E1Figure1},
		{"E2", E2TaskAssignment},
		{"E3", E3AllocatorComparison},
		{"E4", E4Scalability},
		{"E5", E5SchedulerComparison},
		{"E6", E6Churn},
		{"E7", E7AdmissionRedirect},
		{"E8", E8GossipBloom},
		{"E9", E9Adaptation},
		{"E10", E10UpdatePeriod},
		{"E11", E11Decentralization},
		{"E12", E12DiscoveryBackends},
		{"A1", A1ObjectiveAblation},
		{"A2", A2BackupSync},
		{"A3", A3Preemption},
	}
}

// All runs the complete suite in order.
func All(opt Options) []Result {
	suite := Suite()
	out := make([]Result, len(suite))
	for i, nr := range suite {
		out[i] = nr.Run(opt)
	}
	return out
}

// AllParallel runs the complete suite across workers goroutines,
// preserving suite order in the returned slice. Experiments are
// deterministic given Options — each builds its own cluster and rng
// streams from opt.Seed — so the results are identical to All(opt)
// regardless of scheduling.
func AllParallel(opt Options, workers int) []Result {
	return RunParallel(Suite(), opt, workers)
}

// RunParallel executes the given runners across a bounded worker pool and
// returns their results in input order. A panicking experiment is
// surfaced as a Result with Err set (and the worker survives to drain the
// rest of the queue) rather than crashing the process or wedging the
// pool.
func RunParallel(runners []NamedRunner, opt Options, workers int) []Result {
	if workers < 1 {
		workers = 1
	}
	if workers > len(runners) {
		workers = len(runners)
	}
	results := make([]Result, len(runners))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runSafe(runners[i], opt)
			}
		}()
	}
	for i := range runners {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// runSafe invokes one runner, converting a panic into a failed Result.
func runSafe(nr NamedRunner, opt Options) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{
				ID:    nr.ID,
				Title: "experiment failed",
				Err:   fmt.Sprintf("panic: %v", r),
			}
		}
	}()
	return nr.Run(opt)
}
