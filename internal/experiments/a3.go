package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/proto"
	"repro/internal/sim"
)

// A3Preemption measures importance-based preemptive admission: a small
// domain is saturated with long low-importance sessions, then
// high-importance requests arrive. With preemption the RM sacrifices a
// cheap session to honor Importance_t (§3.3); without it the important
// requests are rejected.
func A3Preemption(opt Options) Result {
	res := Result{
		ID:    "A3",
		Title: "Extension: importance-based preemptive admission",
		Claim: "preempting low-importance sessions admits high-importance tasks a saturated domain would otherwise reject",
	}
	res.Table.Header = []string{"preemption", "hi_submitted", "hi_admitted", "preemptions", "lo_completed", "lo_aborted"}
	for _, enabled := range []bool{true, false} {
		res.Table.AddRow(runPreemptCell(opt.Seed, enabled)...)
	}
	return res
}

func runPreemptCell(seed uint64, enabled bool) []any {
	cfg := core.DefaultConfig()
	cfg.PreemptLowImportance = enabled
	cfg.AdaptPeriod = 0
	// Small domain: 4 peers at speed 4 — room for only a few concurrent
	// transcodes (each stage costs ~1.9 work units/s).
	cat := clusterCatalog()
	c := newCluster(cfg, seed^0xA3)
	obj := media.Object{
		Name:   "obj-0",
		Format: cat.Sources[0],
		Bytes:  int64(120 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8),
	}
	info := func() proto.PeerInfo {
		return proto.PeerInfo{
			SpeedWU:       4,
			BandwidthKbps: 5000,
			UptimeSec:     7200,
			Services:      append([]media.Transcoder(nil), cat.Ladder...),
		}
	}
	first := info()
	first.Objects = []media.Object{obj}
	c.AddFounder(first)
	for i := 1; i < 4; i++ {
		c.AddPeer(info(), 0)
	}
	c.RunUntil(3 * sim.Second)

	spec := func(id string, origin env.NodeID, importance int) proto.TaskSpec {
		return proto.TaskSpec{
			ID:         id,
			Origin:     origin,
			ObjectName: "obj-0",
			Constraint: media.Constraint{
				Codecs: []media.Codec{media.MPEG4}, MaxWidth: 640, MaxHeight: 480, MaxBitrateKbps: 64,
			},
			DeadlineMicros: 3_000_000,
			Importance:     importance,
			DurationSec:    120,
			ChunkSec:       1,
		}
	}
	// Saturate with low-importance sessions (importance 1).
	for i := 0; i < 8; i++ {
		c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second, 1, spec(fmt.Sprintf("lo-%d", i), 1, 1))
	}
	c.RunUntil(c.Eng.Now() + 20*sim.Second)
	// High-importance arrivals (importance 9).
	const hi = 3
	for i := 0; i < hi; i++ {
		c.Submit(c.Eng.Now()+sim.Time(i)*2*sim.Second, 2, spec(fmt.Sprintf("hi-%d", i), 2, 9))
	}
	c.RunUntil(c.Eng.Now() + 200*sim.Second)

	ev := c.Events.Snapshot()
	hiAdmitted, loCompleted, loAborted := 0, 0, 0
	for _, r := range ev.Reports {
		if len(r.TaskID) >= 2 && r.TaskID[:2] == "hi" {
			hiAdmitted++ // it ran to a report
		}
		if len(r.TaskID) >= 2 && r.TaskID[:2] == "lo" {
			if r.Received == r.Chunks {
				loCompleted++
			} else {
				loAborted++
			}
		}
	}
	label := "off"
	if enabled {
		label = "on"
	}
	return []any{label, hi, hiAdmitted, ev.Preemptions, loCompleted, loAborted}
}
