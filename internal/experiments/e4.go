package experiments

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E4Scalability grows the overlay and measures what each peer and each
// task costs as the system scales — the paper's central scalability claim
// (§1: "our proposed schemes scale well with respect to the number of
// peers"). Decentralization should keep per-peer message load and
// allocation cost flat while the population grows.
func E4Scalability(opt Options) Result {
	res := Result{
		ID:    "E4",
		Title: "Scalability with overlay size",
		Claim: "per-peer control overhead and allocation cost stay bounded as peers (and domains) grow",
	}
	res.Table.Header = []string{
		"peers", "domains", "joined",
		"ctl_msgs/peer/s", "msgs/task", "alloc_p95_us", "admit_frac", "chunk_miss",
	}
	sizes := []int{16, 64, 256, 512}
	if opt.Quick {
		sizes = []int{16, 64}
	}
	for _, n := range sizes {
		row := runScaleCell(opt, n)
		res.Table.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"ctl_msgs excludes Chunk data-plane traffic; msgs/task includes it")
	return res
}

func runScaleCell(opt Options, n int) []any {
	seed := opt.Seed
	cfg := core.DefaultConfig()
	cfg.Nanotime = opt.nanotime(live.Nanotime) // alloc_p95_us is a real CPU-cost column, not simulated time
	cfg.MaxDomainPeers = 32
	r := rng.New(seed ^ uint64(n)*2654435761)
	infos := cluster.PeerSpecs(r, n, cfg.Qualify, 0.4)
	cat := cluster.StandardCatalog()
	objCount := n // catalog scales with population
	cat.Populate(r, infos, 3, objCount, 3, 15)
	c := cluster.Build(cfg, defaultNet(), seed, infos, 50*sim.Millisecond)
	c.RunUntil(c.Eng.Now() + 20*sim.Second) // settle + gossip converge

	mix := workload.DefaultMix()
	mix.Objects = objCount
	mix.RatePerSec = float64(n) / 16.0 // offered load scales with capacity
	mix.DurationMeanSec = 15
	d := workload.NewDriver(c, cat, mix, r.Split())

	before := c.Net.Stats()
	start := c.Eng.Now()
	horizon := 60 * sim.Second
	d.Run(start, start+horizon)
	c.RunUntil(start + horizon)
	mid := c.Net.Stats()
	c.RunUntil(c.Eng.Now() + 90*sim.Second) // drain

	ev := c.Events.Snapshot()
	after := c.Net.Stats()

	chunkMsgs := after.PerType["Chunk"] - before.PerType["Chunk"]
	totalMsgs := after.Sent - before.Sent
	ctlDuringLoad := (mid.Sent - before.Sent) - (mid.PerType["Chunk"] - before.PerType["Chunk"])
	ctlPerPeerSec := float64(ctlDuringLoad) / float64(n) / horizon.Seconds()

	var msgsPerTask float64
	if ev.Admitted > 0 {
		msgsPerTask = float64(totalMsgs-chunkMsgs) / float64(ev.Admitted)
	}
	var alloc metrics.Summary
	for _, ns := range ev.AllocNanos {
		alloc.Observe(float64(ns) / 1000)
	}
	admitFrac := 0.0
	if ev.Submitted > 0 {
		admitFrac = float64(ev.Admitted) / float64(ev.Submitted)
	}
	return []any{
		n, len(c.RMs()), c.JoinedCount(),
		ctlPerPeerSec, msgsPerTask, alloc.Quantile(0.95), admitFrac, c.Events.MissRate(),
	}
}
