package experiments

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E6Churn subjects a loaded multi-domain overlay to increasing churn and
// measures how the failure machinery holds up: repairs, RM failovers,
// session survival and chunk misses (§4.1, §4.5).
func E6Churn(opt Options) Result {
	res := Result{
		ID:    "E6",
		Title: "Churn tolerance: session repair and RM failover",
		Claim: "the system works effectively in a dynamic environment: failed peers are substituted in running service graphs, backup RMs take over",
	}
	res.Table.Header = []string{
		"churn/min", "newcomers", "repairs", "failovers", "dead_declared",
		"sessions_done", "session_done_frac", "chunk_miss", "repair_p95_ms",
	}
	rates := []float64{0, 2, 6, 12}
	if opt.Quick {
		rates = []float64{0, 6}
	}
	for _, perMin := range rates {
		res.Table.AddRow(runChurnCell(opt.Seed, perMin)...)
	}
	res.Notes = append(res.Notes,
		"sessions lost to dead sinks/sources are expected; done_frac counts reports received")
	return res
}

func runChurnCell(seed uint64, churnPerMin float64) []any {
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 16
	r := rng.New(seed ^ uint64(churnPerMin*7919))
	n := 32
	infos := cluster.PeerSpecs(r, n, cfg.Qualify, 0.5)
	cat := cluster.StandardCatalog()
	cat.Populate(r, infos, 4, 16, 4, 15)
	c := cluster.Build(cfg, defaultNet(), seed^3, infos, 50*sim.Millisecond)
	c.RunUntil(c.Eng.Now() + 15*sim.Second)

	mix := workload.DefaultMix()
	mix.Objects = 16
	mix.RatePerSec = 1.5
	mix.DurationMeanSec = 20
	d := workload.NewDriver(c, cat, mix, r.Split())
	start := c.Eng.Now()
	horizon := 120 * sim.Second
	d.Run(start, start+horizon)
	if churnPerMin > 0 {
		// Full dynamic environment (§4.1): departures AND arrivals, at
		// matched rates so the population stays roughly stable.
		workload.Churn(c, r.Split(), start, start+horizon, churnPerMin/60, 0.7, nil)
		workload.Joins(c, cat, r.Split(), start, start+horizon, churnPerMin/60, cfg.Qualify, 0.5, 4)
	}
	c.RunUntil(start + horizon + 90*sim.Second)

	ev := c.Events.Snapshot()
	var repair metrics.Summary
	for _, m := range ev.RepairMicros {
		repair.Observe(float64(m) / 1000)
	}
	doneFrac := 0.0
	if ev.Admitted > 0 {
		doneFrac = float64(len(ev.Reports)) / float64(ev.Admitted)
	}
	newcomers := len(c.IDs()) - n
	return []any{
		churnPerMin, newcomers, ev.Repairs, ev.Failovers, ev.PeersDeclaredDead,
		len(ev.Reports), doneFrac, c.Events.MissRate(), repair.Quantile(0.95),
	}
}

// E7AdmissionRedirect overloads one domain while another has spare
// capacity and compares the full system against one with admission
// redirection disabled (§4.5: "the task query is redirected to a Resource
// Manager of another domain").
func E7AdmissionRedirect(opt Options) Result {
	res := Result{
		ID:    "E7",
		Title: "Admission control and inter-domain redirection",
		Claim: "redirecting queries to other domains admits tasks a single overloaded domain would reject",
	}
	res.Table.Header = []string{"redirection", "submitted", "admitted", "redirected", "rejected", "chunk_miss"}
	for _, enabled := range []bool{true, false} {
		row := runRedirectCell(opt.Seed, enabled, opt.Quick)
		res.Table.AddRow(row...)
	}
	return res
}

func runRedirectCell(seed uint64, redirect bool, quick bool) []any {
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 6
	if !redirect {
		cfg.MaxRedirects = 0
	}
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, defaultNet(), seed^17)
	// Domain A: weak peers (little transcode capacity). Domain B: strong.
	// The shared object catalog is replicated to both domains so B can
	// serve redirected queries.
	obj := media.Object{
		Name:   "obj-hot",
		Format: cat.Sources[0],
		Bytes:  int64(15 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8),
	}
	weak := speedyInfo(cat, 2.0)
	weak.Objects = []media.Object{obj}
	c.AddFounder(weak)
	for i := 1; i < 6; i++ {
		c.AddPeer(speedyInfo(cat, 2.0), 0)
	}
	c.RunUntil(3 * sim.Second)
	// Domain B forms when a strong, qualified peer hits the full domain.
	strongWithObj := speedyInfo(cat, 12)
	strongWithObj.Objects = []media.Object{obj}
	c.AddPeer(strongWithObj, 0)
	for i := 0; i < 5; i++ {
		c.AddPeer(speedyInfo(cat, 12), 0)
	}
	c.RunUntil(c.Eng.Now() + 20*sim.Second) // gossip convergence

	// Offered load beyond domain A's capacity, all submitted inside A.
	nTasks := 24
	if quick {
		nTasks = 16
	}
	r := rng.New(seed ^ 0x777)
	for i := 0; i < nTasks; i++ {
		origin := env.NodeID(r.Intn(6)) // domain A members
		c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second/2, origin, hotSpec(origin, "obj-hot"))
	}
	c.RunUntil(c.Eng.Now() + 150*sim.Second)
	ev := c.Events.Snapshot()
	label := "off"
	if redirect {
		label = "on"
	}
	return []any{label, ev.Submitted, ev.Admitted, ev.Redirected, ev.Rejected, c.Events.MissRate()}
}

// speedyInfo builds a peer info with the full ladder at a given speed.
func speedyInfo(cat cluster.Catalog, speed float64) proto.PeerInfo {
	return proto.PeerInfo{
		SpeedWU:       speed,
		BandwidthKbps: 5000,
		UptimeSec:     7200,
		Services:      append([]media.Transcoder(nil), cat.Ladder...),
	}
}

// hotSpec builds the E7 request.
func hotSpec(origin env.NodeID, object string) proto.TaskSpec {
	return proto.TaskSpec{
		Origin:     origin,
		ObjectName: object,
		Constraint: media.Constraint{
			Codecs: []media.Codec{media.MPEG4}, MaxWidth: 640, MaxHeight: 480, MaxBitrateKbps: 64,
		},
		DeadlineMicros: 3_000_000,
		DurationSec:    15,
		ChunkSec:       1,
	}
}
