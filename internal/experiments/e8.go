package experiments

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E8GossipBloom measures the two halves of the inter-domain information
// base (§3.1, §4.4): how fast lazy gossip converges as the domain count
// and gossip period vary, and what the Bloom-filter summaries cost in
// false positives as they fill.
func E8GossipBloom(opt Options) Result {
	res := Result{
		ID:    "E8",
		Title: "Gossip convergence and Bloom summary accuracy",
		Claim: "lazy gossip with Bloom summaries suffices for inter-domain object/service discovery",
	}
	res.Table.Header = []string{"metric", "setting", "value"}

	// Part 1: gossip convergence time — how long until every RM knows
	// every domain, from a cold start.
	domainCounts := []int{4, 8, 16}
	periods := []sim.Time{sim.Second, 3 * sim.Second, 6 * sim.Second}
	if opt.Quick {
		domainCounts = []int{4, 8}
		periods = []sim.Time{sim.Second, 4 * sim.Second}
	}
	for _, nd := range domainCounts {
		t := gossipConvergence(opt.Seed, nd, 3*sim.Second)
		res.Table.AddRow("convergence_s", fmt.Sprintf("%d domains, period 3s", nd), t.Seconds())
	}
	for _, p := range periods {
		t := gossipConvergence(opt.Seed, 8, p)
		res.Table.AddRow("convergence_s", fmt.Sprintf("8 domains, period %v", p), t.Seconds())
	}

	// Part 2: Bloom false-positive rate vs filter size for a fixed
	// 200-object domain.
	for _, m := range []uint64{1024, 4096, 16384} {
		fp := bloomFPRate(opt.Seed, m, 4, 200)
		res.Table.AddRow("bloom_fp_rate", fmt.Sprintf("m=%d k=4, 200 keys", m), fp)
	}
	return res
}

// gossipConvergence builds nd single-peer domains in a line of referrals
// and reports how long until every RM has a summary of every other
// domain.
func gossipConvergence(seed uint64, nd int, period sim.Time) sim.Time {
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 1 // every qualified joiner founds a domain
	cfg.GossipPeriod = period
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, defaultNet(), seed^uint64(nd)<<4^uint64(period))
	c.AddFounder(strongInfo(cat))
	for i := 1; i < nd; i++ {
		c.AddPeer(strongInfo(cat), 0)
	}
	// Let joins/promotions settle without counting that toward gossip
	// time: convergence clock starts once all domains exist.
	for c.Eng.Now() < 60*sim.Second {
		c.RunUntil(c.Eng.Now() + sim.Second)
		if len(c.RMs()) == nd {
			break
		}
	}
	start := c.Eng.Now()
	deadline := start + 10*sim.Minute
	for c.Eng.Now() < deadline {
		c.RunUntil(c.Eng.Now() + 500*sim.Millisecond)
		done := true
		for _, id := range c.RMs() {
			if c.Peer(id).KnownDomains() != nd-1 || len(c.Peer(id).SummaryVersions()) != nd-1 {
				done = false
				break
			}
		}
		if done {
			return c.Eng.Now() - start
		}
	}
	return -1
}

// bloomFPRate builds a filter of the node Config geometry and measures
// its false-positive rate against absent object names.
func bloomFPRate(seed uint64, m uint64, k uint32, keys int) float64 {
	f := bloom.New(m, k)
	for i := 0; i < keys; i++ {
		f.AddString(fmt.Sprintf("obj-%d", i))
	}
	r := rng.New(seed)
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.ContainsString(fmt.Sprintf("absent-%d-%d", i, r.Intn(1<<20))) {
			fp++
		}
	}
	return float64(fp) / probes
}
