package experiments

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E11Decentralization tests the paper's opening argument (§1(a): a
// central manager is inadequate for large-scale systems) by running the
// same population and workload under two topologies: one global Resource
// Manager with a system-wide view versus the paper's domain structure.
// The metric that separates them is control-plane concentration — the
// hottest node's message load — together with end-to-end quality.
func E11Decentralization(opt Options) Result {
	res := Result{
		ID:    "E11",
		Title: "Decentralization ablation: one global RM vs domains",
		Claim: "domain decomposition removes the central hotspot a single manager becomes, without hurting QoS",
	}
	res.Table.Header = []string{
		"topology", "peers", "domains", "hotspot_msgs/s", "mean_msgs/peer/s",
		"admit_frac", "chunk_miss", "alloc_p95_us",
	}
	sizes := []int{64, 128}
	if opt.Quick {
		sizes = []int{48}
	}
	for _, n := range sizes {
		res.Table.AddRow(runTopologyCell(opt, n, n+1)...) // cap > n: single domain
		res.Table.AddRow(runTopologyCell(opt, n, 16)...)  // paper's domains
	}
	res.Notes = append(res.Notes,
		"hotspot = the busiest single node's delivered control messages per second")
	return res
}

func runTopologyCell(opt Options, n, domainCap int) []any {
	seed := opt.Seed
	cfg := core.DefaultConfig()
	cfg.Nanotime = opt.nanotime(live.Nanotime) // alloc_p95_us is a real CPU-cost column, not simulated time
	cfg.MaxDomainPeers = domainCap
	r := rng.New(seed ^ uint64(n*domainCap)*977)
	infos := cluster.PeerSpecs(r, n, cfg.Qualify, 0.4)
	cat := cluster.StandardCatalog()
	cat.Populate(r, infos, 3, n, 3, 15)
	c := cluster.Build(cfg, defaultNet(), seed^11, infos, 50*sim.Millisecond)
	c.RunUntil(c.Eng.Now() + 20*sim.Second)

	mix := workload.DefaultMix()
	mix.Objects = n
	mix.RatePerSec = float64(n) / 16.0
	mix.DurationMeanSec = 15
	d := workload.NewDriver(c, cat, mix, r.Split())
	before := c.Net.Stats()
	start := c.Eng.Now()
	horizon := 60 * sim.Second
	d.Run(start, start+horizon)
	c.RunUntil(start + horizon + 90*sim.Second)
	after := c.Net.Stats()

	elapsed := (horizon + 90*sim.Second).Seconds()
	// Hotspot and mean, excluding data-plane chunks (delivered per node
	// includes chunks; subtracting per-node chunk counts is not tracked,
	// so compare totals including chunks for both topologies — the same
	// data plane flows either way, control concentration dominates the
	// difference at the RM).
	var hotspot uint64
	var sum uint64
	for id, v := range after.PerNode {
		dv := v - before.PerNode[id]
		sum += dv
		if dv > hotspot {
			hotspot = dv
		}
	}
	ev := c.Events.Snapshot()
	var alloc metrics.Summary
	for _, ns := range ev.AllocNanos {
		alloc.Observe(float64(ns) / 1000)
	}
	admit := 0.0
	if ev.Submitted > 0 {
		admit = float64(ev.Admitted) / float64(ev.Submitted)
	}
	label := "domains(16)"
	if domainCap > n {
		label = "global-RM"
	}
	return []any{
		label, n, len(c.RMs()),
		float64(hotspot) / elapsed, float64(sum) / float64(n) / elapsed,
		admit, c.Events.MissRate(), alloc.Quantile(0.95),
	}
}
