package experiments

import (
	"strings"
	"testing"
)

// TestAllParallelMatchesSequential is the determinism contract of the
// parallel runner: on seed 42 the tables produced by 8 workers must be
// byte-identical to the sequential suite (run under -race via make race /
// CI). Experiments share no mutable state — each derives every rng stream
// and cluster from its Options — so scheduling cannot perturb results.
func TestAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	// E4/E11's alloc_p95_us columns read the real monotonic clock by
	// design; pin them to a constant so the whole table is comparable
	// byte-for-byte. A pure function shares no state across workers.
	opt := Options{Seed: 42, Quick: true, Nanotime: func() int64 { return 0 }}
	seq := All(opt)
	par := AllParallel(opt, 8)
	if len(seq) != len(par) {
		t.Fatalf("parallel returned %d results, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i].ID != seq[i].ID {
			t.Fatalf("result %d: order not preserved: %s != %s", i, par[i].ID, seq[i].ID)
		}
		if got, want := par[i].String(), seq[i].String(); got != want {
			t.Errorf("%s: parallel output diverges from sequential:\n--- parallel\n%s\n--- sequential\n%s",
				seq[i].ID, got, want)
		}
	}
}

// TestRunParallelSurfacesPanics: a panicking experiment must come back as
// a failed Result (Err set, same ID, same slot) while the other runners
// complete normally — the pool must not wedge or crash.
func TestRunParallelSurfacesPanics(t *testing.T) {
	ok := func(opt Options) Result { return Result{ID: "ok", Title: "fine"} }
	runners := []NamedRunner{
		{"ok-1", ok},
		{"boom", func(opt Options) Result { panic("injected failure") }},
		{"ok-2", ok},
		{"ok-3", ok},
	}
	results := RunParallel(runners, Options{Seed: 42, Quick: true}, 2)
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	if results[1].ID != "boom" || results[1].Err == "" {
		t.Fatalf("panicking runner result = %+v, want Err set", results[1])
	}
	if !strings.Contains(results[1].Err, "injected failure") {
		t.Fatalf("Err = %q, want the panic message", results[1].Err)
	}
	if !strings.Contains(results[1].String(), "error: panic: injected failure") {
		t.Fatalf("String() must render the error, got:\n%s", results[1].String())
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != "" || !strings.HasPrefix(results[i].ID, "ok") {
			t.Fatalf("sibling result %d corrupted: %+v", i, results[i])
		}
	}
}

// TestRunParallelWorkerBounds covers degenerate worker counts.
func TestRunParallelWorkerBounds(t *testing.T) {
	calls := 0
	runners := []NamedRunner{
		{"a", func(Options) Result { calls++; return Result{ID: "a"} }},
	}
	for _, workers := range []int{-1, 0, 1, 99} {
		calls = 0
		res := RunParallel(runners, Options{}, workers)
		if len(res) != 1 || res[0].ID != "a" || calls != 1 {
			t.Fatalf("workers=%d: res=%v calls=%d", workers, res, calls)
		}
	}
}
