// Package netsim is the deterministic network runtime: it hosts actors
// (internal/env) on a discrete-event engine and delivers their messages
// with configurable latency, bandwidth serialization delay, jitter and
// loss. It is the substrate every experiment runs on.
//
// Substitution note (DESIGN.md): the paper deployed on a wide-area
// overlay; this model reproduces the properties the protocols are
// sensitive to — delay, asymmetric capacity, loss, churn — while keeping
// runs bit-reproducible.
package netsim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/env"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Config sets the network model. Zero values mean "ideal": zero latency,
// infinite bandwidth, no jitter, no loss.
type Config struct {
	// Latency returns the base one-way latency between two distinct
	// nodes. nil means zero.
	Latency func(from, to env.NodeID) sim.Time
	// BandwidthKbps returns the link capacity used to compute the
	// serialization delay of Sized messages. nil or <=0 means infinite.
	BandwidthKbps func(from, to env.NodeID) float64
	// JitterFrac adds a uniform random [0, JitterFrac) fraction of the
	// base latency to each delivery.
	JitterFrac float64
	// LossRate drops each message independently with this probability.
	LossRate float64
	// Trace, if non-nil, receives every log line from node Logf calls.
	Trace func(line string)
}

// UniformLatency returns a Latency function with a constant one-way delay.
func UniformLatency(d sim.Time) func(env.NodeID, env.NodeID) sim.Time {
	return func(from, to env.NodeID) sim.Time { return d }
}

// Stats counts network activity for the experiment harnesses (E4's
// message-overhead measurements). The Fault* counters attribute
// impairments injected through SetFault separately from the model's own
// loss, so chaos scenarios can assert on what the injector actually did.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64 // loss or dead receiver
	FaultDrops uint64 // dropped by an installed fault rule (incl. severs)
	FaultDups  uint64 // duplicated by an installed fault rule
	FaultDelay uint64 // delayed by an installed fault rule
	KBytes     float64
	PerType    map[string]uint64     // message type name -> sent count
	PerNode    map[env.NodeID]uint64 // receiver -> delivered count (hotspot metric)
}

// FaultRule describes injected impairments for one directed node pair —
// the sim mirror of live.FaultRule. Sever blackholes the pair entirely;
// otherwise Drop and Dup are independent probabilities and Delay is
// added to the modeled link delay.
type FaultRule struct {
	Drop  float64
	Dup   float64
	Delay sim.Time
	Sever bool
}

// zero reports whether the rule imposes nothing.
func (r FaultRule) zero() bool {
	return !r.Sever && r.Drop == 0 && r.Dup == 0 && r.Delay == 0
}

// faultKey is one directed pair; env.NoNode is the wildcard.
type faultKey struct {
	from, to env.NodeID
}

// Network hosts simulated nodes. Not safe for concurrent use: everything
// runs on the engine's single logical thread.
type Network struct {
	eng    *sim.Engine
	r      *rng.Rand
	cfg    Config
	nodes  map[env.NodeID]*node
	next   env.NodeID
	stats  Stats
	faults map[faultKey]FaultRule
	faultR *rng.Rand // rolls for installed rules; split lazily so fault-free runs draw identically
}

// node is the per-actor runtime state.
type node struct {
	net   *Network
	id    env.NodeID
	actor env.Actor
	r     *rng.Rand
	alive bool
}

// New creates a network on the given engine. r seeds per-node random
// streams; cfg tunes the link model.
func New(eng *sim.Engine, r *rng.Rand, cfg Config) *Network {
	return &Network{
		eng:   eng,
		r:     r,
		cfg:   cfg,
		nodes: make(map[env.NodeID]*node),
	}
}

// Engine exposes the underlying event engine (for workload drivers).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Stats returns a copy of the accumulated counters.
func (n *Network) Stats() Stats {
	cp := n.stats
	cp.PerType = make(map[string]uint64, len(n.stats.PerType))
	for k, v := range n.stats.PerType {
		cp.PerType[k] = v
	}
	cp.PerNode = make(map[env.NodeID]uint64, len(n.stats.PerNode))
	for k, v := range n.stats.PerNode {
		cp.PerNode[k] = v
	}
	return cp
}

// MaxPerNode returns the highest delivered-message count of any single
// node — the control-plane hotspot the paper's §1(a) centralization
// critique is about.
func (s Stats) MaxPerNode() uint64 {
	var max uint64
	for _, v := range s.PerNode { //lint:maporder commutative — max fold; the result is independent of visit order
		if v > max {
			max = v
		}
	}
	return max
}

// SetFault installs (or, with a zero rule, removes) a fault rule for
// the directed pair from→to. env.NoNode acts as a wildcard on either
// side; the most specific installed rule wins, in the same precedence
// order as the live injector: (from,to), then (from,*), then (*,to),
// then (*,*). Rolls draw from a dedicated stream split from the network
// generator on first installation, so runs that never install a rule
// see exactly the draws they always did.
func (n *Network) SetFault(from, to env.NodeID, rule FaultRule) {
	if n.faults == nil {
		if rule.zero() {
			return
		}
		n.faults = make(map[faultKey]FaultRule)
		n.faultR = n.r.Split()
	}
	k := faultKey{from, to}
	if rule.zero() {
		delete(n.faults, k)
		return
	}
	n.faults[k] = rule
}

// Sever blackholes both directions between a and b (use env.NoNode to
// cut a node off from everyone).
func (n *Network) Sever(a, b env.NodeID) {
	n.SetFault(a, b, FaultRule{Sever: true})
	n.SetFault(b, a, FaultRule{Sever: true})
}

// Heal removes the fault rules between a pair in both directions.
func (n *Network) Heal(a, b env.NodeID) {
	n.SetFault(a, b, FaultRule{})
	n.SetFault(b, a, FaultRule{})
}

// ClearFaults removes every installed fault rule atomically and reports
// how many were cleared — the "heal everything" call a finished chaos
// block uses to restore the fleet.
func (n *Network) ClearFaults() int {
	cleared := len(n.faults)
	n.faults = nil
	return cleared
}

// FaultRuleCount reports how many fault rules are installed.
func (n *Network) FaultRuleCount() int { return len(n.faults) }

// lookupFault resolves the most specific rule for from→to.
func (n *Network) lookupFault(from, to env.NodeID) (FaultRule, bool) {
	if n.faults == nil {
		return FaultRule{}, false
	}
	for _, k := range [...]faultKey{
		{from, to}, {from, env.NoNode}, {env.NoNode, to}, {env.NoNode, env.NoNode},
	} {
		if r, ok := n.faults[k]; ok {
			return r, true
		}
	}
	return FaultRule{}, false
}

// AddNode registers an actor, assigns it the next NodeID, and schedules
// its Init at the current time. It returns the assigned ID.
func (n *Network) AddNode(a env.Actor) env.NodeID {
	id := n.next
	n.next++
	nd := &node{net: n, id: id, actor: a, r: n.r.Split(), alive: true}
	n.nodes[id] = nd
	n.eng.After(0, func() {
		if nd.alive {
			a.Init(nd)
		}
	})
	return id
}

// Alive reports whether the node exists and has not crashed or stopped.
func (n *Network) Alive(id env.NodeID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.alive
}

// NumAlive counts live nodes.
func (n *Network) NumAlive() int {
	c := 0
	for _, nd := range n.nodes {
		if nd.alive {
			c++
		}
	}
	return c
}

// Crash kills a node silently: no Stop call, all its pending timers are
// suppressed, and in-flight messages to it are dropped on delivery —
// modeling §4.1's "peers may disconnect ... due to a failure".
func (n *Network) Crash(id env.NodeID) {
	if nd, ok := n.nodes[id]; ok {
		nd.alive = false
	}
}

// Stop shuts a node down gracefully: the actor's Stop hook runs first
// (letting it send departure notices), then the node goes silent.
func (n *Network) Stop(id env.NodeID) {
	nd, ok := n.nodes[id]
	if !ok || !nd.alive {
		return
	}
	nd.actor.Stop()
	nd.alive = false
}

// Actor returns the actor registered under id (for test assertions).
func (n *Network) Actor(id env.NodeID) env.Actor {
	if nd, ok := n.nodes[id]; ok {
		return nd.actor
	}
	return nil
}

// deliver routes m from src to dst: the installed fault rule (if any)
// is rolled first, then each surviving copy traverses the modeled link.
func (n *Network) deliver(src, dst env.NodeID, m env.Message) {
	var extra sim.Time
	dup := false
	if rule, ok := n.lookupFault(src, dst); ok {
		// Mirror live.FaultInjector.decide: sever and drop preempt the
		// other impairments; dup rolls only on surviving messages.
		if rule.Sever || (rule.Drop > 0 && n.faultR.Bool(rule.Drop)) {
			n.accountSend(m)
			n.stats.FaultDrops++
			return
		}
		dup = rule.Dup > 0 && n.faultR.Bool(rule.Dup)
		if rule.Delay > 0 {
			n.stats.FaultDelay++
			extra = rule.Delay
		}
	}
	n.transmit(src, dst, m, extra)
	if dup {
		// The duplicate is a real second transmission: it pays its own
		// loss roll, jitter and serialization delay.
		n.stats.FaultDups++
		n.transmit(src, dst, m, extra)
	}
}

// accountSend counts one transmission attempt.
func (n *Network) accountSend(m env.Message) float64 {
	n.stats.Sent++
	if n.stats.PerType == nil {
		n.stats.PerType = make(map[string]uint64)
	}
	n.stats.PerType[typeName(m)]++
	var kb float64
	if s, ok := m.(env.Sized); ok {
		kb = s.SizeKB()
	}
	n.stats.KBytes += kb
	return kb
}

// transmit sends one copy of m across the modeled link, extra being
// fault-injected delay added on top of the link model.
func (n *Network) transmit(src, dst env.NodeID, m env.Message, extra sim.Time) {
	kb := n.accountSend(m)

	if n.cfg.LossRate > 0 && n.r.Bool(n.cfg.LossRate) {
		n.stats.Dropped++
		return
	}
	delay := extra
	if n.cfg.Latency != nil && src != dst {
		d := n.cfg.Latency(src, dst)
		if n.cfg.JitterFrac > 0 {
			d += sim.Time(n.r.Uniform(0, n.cfg.JitterFrac) * float64(d))
		}
		delay += d
	}
	if kb > 0 && n.cfg.BandwidthKbps != nil {
		if bw := n.cfg.BandwidthKbps(src, dst); bw > 0 {
			delay += sim.Time(kb * 8 / bw * 1e6) // Kb over Kbps, in µs
		}
	}
	n.eng.After(delay, func() {
		rcv, ok := n.nodes[dst]
		if !ok || !rcv.alive {
			n.stats.Dropped++
			return
		}
		n.stats.Delivered++
		if n.stats.PerNode == nil {
			n.stats.PerNode = make(map[env.NodeID]uint64)
		}
		n.stats.PerNode[dst]++
		rcv.actor.Receive(src, m)
	})
}

// typeName renders a message's type without the package path.
func typeName(m env.Message) string {
	s := fmt.Sprintf("%T", m)
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// --- env.Context implementation (per node) ---

// Self implements env.Context.
func (nd *node) Self() env.NodeID { return nd.id }

// Now implements env.Clock.
func (nd *node) Now() sim.Time { return nd.net.eng.Now() }

// After implements env.Clock; callbacks are suppressed once the node is
// dead so crashes cancel all of a node's timers at once.
func (nd *node) After(d sim.Time, fn func()) env.Cancel {
	h := nd.net.eng.After(d, func() {
		if nd.alive {
			fn()
		}
	})
	return h.Cancel
}

// Send implements env.Context.
func (nd *node) Send(to env.NodeID, m env.Message) {
	if !nd.alive {
		return
	}
	nd.net.deliver(nd.id, to, m)
}

// Rand implements env.Context.
func (nd *node) Rand() *rng.Rand { return nd.r }

// Logf implements env.Context.
func (nd *node) Logf(format string, args ...any) {
	if nd.net.cfg.Trace == nil {
		return
	}
	nd.net.cfg.Trace(fmt.Sprintf("[%v n%d] %s", nd.net.eng.Now(), nd.id, fmt.Sprintf(format, args...)))
}

// TypeCounts renders the per-type counters sorted by name (stable output
// for experiment tables).
func (s Stats) TypeCounts() string {
	keys := make([]string, 0, len(s.PerType))
	for k := range s.PerType { //lint:maporder commutative — keys are sorted below before rendering
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, s.PerType[k])
	}
	return b.String()
}
