package netsim

import (
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/rng"
	"repro/internal/sim"
)

// echoActor replies "pong" to every "ping" and records receptions.
type echoActor struct {
	ctx      env.Context
	received []string
	froms    []env.NodeID
	stopped  bool
}

type ping struct{ Body string }
type pong struct{ Body string }

// bigMsg carries a declared payload size.
type bigMsg struct{ KB float64 }

func (b bigMsg) SizeKB() float64 { return b.KB }

func (a *echoActor) Init(ctx env.Context) { a.ctx = ctx }
func (a *echoActor) Stop()                { a.stopped = true }
func (a *echoActor) Receive(from env.NodeID, m env.Message) {
	switch msg := m.(type) {
	case ping:
		a.received = append(a.received, msg.Body)
		a.froms = append(a.froms, from)
		a.ctx.Send(from, pong{Body: msg.Body})
	case pong:
		a.received = append(a.received, "pong:"+msg.Body)
	case bigMsg:
		a.received = append(a.received, "big")
	}
}

func newNet(cfg Config) (*sim.Engine, *Network) {
	eng := sim.New()
	return eng, New(eng, rng.New(1), cfg)
}

func TestPingPong(t *testing.T) {
	eng, net := newNet(Config{Latency: UniformLatency(5 * sim.Millisecond)})
	a := &echoActor{}
	b := &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	eng.After(0, func() {
		net.nodes[ida].Send(idb, ping{Body: "hi"})
	})
	eng.Run()
	if len(b.received) != 1 || b.received[0] != "hi" {
		t.Fatalf("b received %v", b.received)
	}
	if b.froms[0] != ida {
		t.Fatalf("from = %v", b.froms[0])
	}
	if len(a.received) != 1 || a.received[0] != "pong:hi" {
		t.Fatalf("a received %v", a.received)
	}
	// Round trip = 2 * 5ms.
	if eng.Now() != 10*sim.Millisecond {
		t.Fatalf("final time %v", eng.Now())
	}
	st := net.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PerType["ping"] != 1 || st.PerType["pong"] != 1 {
		t.Fatalf("per-type = %v", st.PerType)
	}
}

func TestBandwidthDelay(t *testing.T) {
	eng, net := newNet(Config{
		Latency:       UniformLatency(sim.Millisecond),
		BandwidthKbps: func(from, to env.NodeID) float64 { return 800 }, // 100 KB/s
	})
	a := &echoActor{}
	b := &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	eng.After(0, func() {
		net.nodes[ida].Send(idb, bigMsg{KB: 100}) // 1s serialization
	})
	eng.Run()
	if len(b.received) != 1 {
		t.Fatalf("not delivered")
	}
	if eng.Now() != sim.Second+sim.Millisecond {
		t.Fatalf("arrival at %v, want 1.001s", eng.Now())
	}
	if kb := net.Stats().KBytes; kb != 100 {
		t.Fatalf("KBytes = %v", kb)
	}
}

func TestLossDropsMessages(t *testing.T) {
	eng, net := newNet(Config{LossRate: 1.0})
	a := &echoActor{}
	b := &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	eng.After(0, func() { net.nodes[ida].Send(idb, ping{}) })
	eng.Run()
	if len(b.received) != 0 {
		t.Fatal("lossy network delivered")
	}
	if st := net.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCrashSuppressesDeliveryAndTimers(t *testing.T) {
	eng, net := newNet(Config{Latency: UniformLatency(10 * sim.Millisecond)})
	a := &echoActor{}
	b := &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	timerFired := false
	eng.After(0, func() {
		// b arms a timer, then a sends to b, then b crashes before both.
		net.nodes[idb].After(20*sim.Millisecond, func() { timerFired = true })
		net.nodes[ida].Send(idb, ping{})
	})
	eng.At(5*sim.Millisecond, func() { net.Crash(idb) })
	eng.Run()
	if len(b.received) != 0 {
		t.Fatal("crashed node received a message")
	}
	if timerFired {
		t.Fatal("crashed node's timer fired")
	}
	if b.stopped {
		t.Fatal("Crash must not call Stop")
	}
	if net.Alive(idb) {
		t.Fatal("crashed node still alive")
	}
	if net.NumAlive() != 1 {
		t.Fatalf("NumAlive = %d", net.NumAlive())
	}
	if st := net.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStopCallsActorStop(t *testing.T) {
	eng, net := newNet(Config{})
	a := &echoActor{}
	id := net.AddNode(a)
	eng.After(0, func() { net.Stop(id) })
	eng.Run()
	if !a.stopped {
		t.Fatal("Stop hook not called")
	}
	// Second stop is a no-op.
	net.Stop(id)
}

func TestSendFromDeadNodeVanishes(t *testing.T) {
	eng, net := newNet(Config{})
	a := &echoActor{}
	b := &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	eng.After(0, func() {
		net.Crash(ida)
		net.nodes[ida].Send(idb, ping{})
	})
	eng.Run()
	if len(b.received) != 0 {
		t.Fatal("dead node's send was delivered")
	}
	if st := net.Stats(); st.Sent != 0 {
		t.Fatalf("dead send counted: %+v", st)
	}
}

func TestSendToUnknownNode(t *testing.T) {
	eng, net := newNet(Config{})
	a := &echoActor{}
	ida := net.AddNode(a)
	eng.After(0, func() { net.nodes[ida].Send(999, ping{}) })
	eng.Run() // must not panic
	if st := net.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJitterBounded(t *testing.T) {
	eng, net := newNet(Config{
		Latency:    UniformLatency(10 * sim.Millisecond),
		JitterFrac: 0.5,
	})
	a := &echoActor{}
	b := &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	var arrivals []sim.Time
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * sim.Second
		eng.At(at, func() { net.nodes[ida].Send(idb, ping{}) })
	}
	prevLen := 0
	for i := 0; i < 50; i++ {
		at := sim.Time(i)*sim.Second + 16*sim.Millisecond
		eng.At(at, func() {
			if len(b.received) > prevLen {
				arrivals = append(arrivals, eng.Now())
				prevLen = len(b.received)
			}
		})
	}
	eng.Run()
	if len(b.received) != 50 {
		t.Fatalf("delivered %d/50", len(b.received))
	}
}

func TestDeterministicDelivery(t *testing.T) {
	runOnce := func() []string {
		eng, net := newNet(Config{Latency: UniformLatency(sim.Millisecond), JitterFrac: 0.3})
		a := &echoActor{}
		b := &echoActor{}
		ida := net.AddNode(a)
		idb := net.AddNode(b)
		for i := 0; i < 20; i++ {
			body := string(rune('a' + i))
			eng.At(sim.Time(i*100), func() { net.nodes[ida].Send(idb, ping{Body: body}) })
		}
		eng.Run()
		return b.received
	}
	r1 := strings.Join(runOnce(), ",")
	r2 := strings.Join(runOnce(), ",")
	if r1 != r2 {
		t.Fatalf("non-deterministic delivery:\n%s\n%s", r1, r2)
	}
}

func TestTypeCountsStable(t *testing.T) {
	s := Stats{PerType: map[string]uint64{"b": 2, "a": 1}}
	if got := s.TypeCounts(); got != "a=1 b=2" {
		t.Fatalf("TypeCounts = %q", got)
	}
}

func TestLogfTrace(t *testing.T) {
	var lines []string
	eng, net := newNet(Config{Trace: func(l string) { lines = append(lines, l) }})
	a := &echoActor{}
	id := net.AddNode(a)
	eng.After(0, func() { net.nodes[id].Logf("hello %d", 42) })
	eng.Run()
	if len(lines) != 1 || !strings.Contains(lines[0], "hello 42") || !strings.Contains(lines[0], "n0") {
		t.Fatalf("trace = %v", lines)
	}
}

func TestActorAccessor(t *testing.T) {
	_, net := newNet(Config{})
	a := &echoActor{}
	id := net.AddNode(a)
	if net.Actor(id) != env.Actor(a) {
		t.Fatal("Actor returned wrong actor")
	}
	if net.Actor(12345) != nil {
		t.Fatal("Actor for unknown id should be nil")
	}
}

func BenchmarkDeliver(b *testing.B) {
	eng, net := newNet(Config{Latency: UniformLatency(sim.Millisecond)})
	a1 := &echoActor{}
	a2 := &echoActor{}
	id1 := net.AddNode(a1)
	id2 := net.AddNode(a2)
	eng.Run() // run Init
	src := net.nodes[id1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(id2, bigMsg{KB: 1})
		if i%1024 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}

func TestPerNodeStats(t *testing.T) {
	eng, net := newNet(Config{})
	a := &echoActor{}
	b := &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	eng.After(0, func() {
		net.nodes[ida].Send(idb, bigMsg{KB: 1})
		net.nodes[ida].Send(idb, bigMsg{KB: 1})
		net.nodes[idb].Send(ida, bigMsg{KB: 1})
	})
	eng.Run()
	st := net.Stats()
	if st.PerNode[idb] != 2 || st.PerNode[ida] != 1 {
		t.Fatalf("PerNode = %v", st.PerNode)
	}
	if st.MaxPerNode() != 2 {
		t.Fatalf("MaxPerNode = %d", st.MaxPerNode())
	}
	// The copy must not alias internal state.
	st.PerNode[idb] = 99
	if net.Stats().PerNode[idb] != 2 {
		t.Fatal("Stats aliased PerNode")
	}
}

func TestCrashBeforeInitSuppressesInit(t *testing.T) {
	eng, net := newNet(Config{})
	a := &echoActor{}
	id := net.AddNode(a)
	net.Crash(id) // before the engine ran Init
	eng.Run()
	if a.ctx != nil {
		t.Fatal("Init ran on a node crashed before start")
	}
}

func TestStopOnCrashedNodeIsNoop(t *testing.T) {
	eng, net := newNet(Config{})
	a := &echoActor{}
	id := net.AddNode(a)
	eng.Run()
	net.Crash(id)
	net.Stop(id) // must not call the actor's Stop hook
	if a.stopped {
		t.Fatal("Stop hook ran on crashed node")
	}
}

func TestFaultSeverBlackholesPair(t *testing.T) {
	eng, net := newNet(Config{})
	a, b := &echoActor{}, &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	net.Sever(ida, idb)
	eng.After(0, func() { net.nodes[ida].Send(idb, ping{Body: "x"}) })
	eng.After(0, func() { net.nodes[idb].Send(ida, ping{Body: "y"}) })
	eng.Run()
	if len(a.received) != 0 || len(b.received) != 0 {
		t.Fatalf("severed pair still delivered: a=%v b=%v", a.received, b.received)
	}
	if got := net.Stats().FaultDrops; got != 2 {
		t.Fatalf("FaultDrops = %d, want 2", got)
	}
	net.Heal(ida, idb)
	eng.After(0, func() { net.nodes[ida].Send(idb, ping{Body: "z"}) })
	eng.Run()
	if len(b.received) != 1 {
		t.Fatalf("healed pair did not deliver: b=%v", b.received)
	}
}

// TestFaultPrecedence pins the rule-specificity contract on the sim
// fault table: (from,to) beats (from,*) beats (*,to) beats (*,*).
func TestFaultPrecedence(t *testing.T) {
	eng, net := newNet(Config{})
	a, b, c := &echoActor{}, &echoActor{}, &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	idc := net.AddNode(c)

	// Wildcard-everything severs; the exact pair rule re-opens a→b.
	net.SetFault(env.NoNode, env.NoNode, FaultRule{Sever: true})
	net.SetFault(ida, idb, FaultRule{Delay: sim.Millisecond})
	eng.After(0, func() {
		net.nodes[ida].Send(idb, ping{Body: "exact"})
		net.nodes[ida].Send(idc, ping{Body: "wild"})
	})
	eng.Run()
	if len(b.received) != 1 || b.received[0] != "exact" {
		t.Fatalf("(from,to) rule did not override (*,*): b=%v", b.received)
	}
	// b's pong reply to a is severed by the (*,*) rule.
	if len(c.received) != 0 {
		t.Fatalf("(*,*) sever did not apply to a→c: c=%v", c.received)
	}

	// (from,*) beats (*,to): sever everything from a, but allow *→b.
	if n := net.ClearFaults(); n != 2 {
		t.Fatalf("ClearFaults = %d, want 2", n)
	}
	net.SetFault(ida, env.NoNode, FaultRule{Sever: true})
	net.SetFault(env.NoNode, idb, FaultRule{Delay: sim.Millisecond})
	before := len(b.received)
	eng.After(0, func() {
		net.nodes[ida].Send(idb, ping{Body: "fromwild"})
		net.nodes[idc].Send(idb, ping{Body: "towild"})
	})
	eng.Run()
	got := b.received[before:]
	if len(got) != 1 || got[0] != "towild" {
		t.Fatalf("(from,*) should beat (*,to) for a→b: got %v", got)
	}
}

func TestFaultDropAndDupProbabilities(t *testing.T) {
	eng, net := newNet(Config{})
	a, b := &echoActor{}, &echoActor{}
	ida := net.AddNode(a)
	idb := net.AddNode(b)
	// Drain the Init events so the send loop below starts clean.
	eng.Run()

	net.SetFault(ida, idb, FaultRule{Drop: 0.5})
	const sends = 2000
	for i := 0; i < sends; i++ {
		net.nodes[ida].Send(idb, bigMsg{})
	}
	eng.Run()
	st := net.Stats()
	if st.FaultDrops < sends/3 || st.FaultDrops > sends*2/3 {
		t.Fatalf("FaultDrops = %d of %d, want roughly half", st.FaultDrops, sends)
	}
	if got := len(b.received); got != sends-int(st.FaultDrops) {
		t.Fatalf("delivered %d, want %d", got, sends-int(st.FaultDrops))
	}

	net.ClearFaults()
	net.SetFault(ida, idb, FaultRule{Dup: 1.0})
	before := len(b.received)
	net.nodes[ida].Send(idb, bigMsg{})
	eng.Run()
	if got := len(b.received) - before; got != 2 {
		t.Fatalf("Dup=1 delivered %d copies, want 2", got)
	}
	if net.Stats().FaultDups != 1 {
		t.Fatalf("FaultDups = %d, want 1", net.Stats().FaultDups)
	}
}

// TestFaultFreeDrawsUnchanged guards the reproducibility contract: a
// run that never installs a fault rule must draw exactly the values it
// drew before the fault layer existed (i.e. installing the layer is
// free until used).
func TestFaultFreeDrawsUnchanged(t *testing.T) {
	run := func(withFaults bool) []string {
		eng, net := newNet(Config{Latency: UniformLatency(2 * sim.Millisecond), JitterFrac: 0.5, LossRate: 0.2})
		a, b := &echoActor{}, &echoActor{}
		ida := net.AddNode(a)
		idb := net.AddNode(b)
		if withFaults {
			// Install then fully remove before any traffic: the lazy
			// fault stream split advances the parent generator, which
			// is allowed to perturb later draws, so remove via zero
			// rules on a never-populated table instead.
			net.SetFault(ida, idb, FaultRule{})
		}
		eng.Run()
		for i := 0; i < 50; i++ {
			net.nodes[ida].Send(idb, ping{Body: "x"})
		}
		eng.Run()
		return b.received
	}
	x, y := run(false), run(true)
	if strings.Join(x, ",") != strings.Join(y, ",") {
		t.Fatalf("zero-rule SetFault perturbed deliveries: %d vs %d received", len(x), len(y))
	}
}
