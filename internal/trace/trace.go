// Package trace provides run-wide span tracing for the middleware: one
// Tracer is shared by every peer of a run (like core.Events) and records
// the end-to-end life of each task query — submit, allocation, session
// composition, streaming, repair, preemption, failover — as causally
// linked spans keyed by task ID.
//
// The tracer is clock-agnostic: callers stamp every record with their own
// environment clock (virtual sim.Time under simulation, wall micros under
// the live runtime), so traces from both substrates share one format.
//
// Cost model: every method on a nil *Tracer returns immediately, and hot
// call sites additionally guard with an explicit nil check so the
// disabled path costs one pointer comparison and allocates nothing (see
// BenchmarkTraceDisabled). All methods are safe for concurrent use; the
// live runtime's node goroutines share one tracer.
//
// Export is Chrome trace-event format
// (chrome://tracing, https://ui.perfetto.dev): one JSON event object per
// line (JSONL). Sessions are async spans (ph "b"/"e") whose id is the
// task's span ID, so spans emitted by different peers and domains for the
// same task link into one track; pid is the domain, tid the node.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/rng"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr; it keeps call sites compact.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event is one trace record in Chrome trace-event form.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`            // microseconds
	Dur   int64          `json:"dur,omitempty"` // complete events only
	PID   int            `json:"pid"`           // domain
	TID   int            `json:"tid"`           // node
	ID    string         `json:"id,omitempty"`  // async span id
	Scope string         `json:"s,omitempty"`   // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

// DefaultMaxEvents bounds the in-memory buffer of a Tracer; beyond it new
// records are counted as dropped rather than grown without limit (a live
// deployment can run indefinitely).
const DefaultMaxEvents = 1 << 20

// session tracks the open/closed state of one task's trace.
type session struct {
	id     uint64
	open   bool
	phases []string // stack of open child phases, e.g. compose, stream
}

// Tracer buffers trace events for one run. The zero value is not usable;
// call New. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	mu sync.Mutex

	// All fields below are guarded by mu.
	events    []Event             // guarded by mu
	sessions  map[string]*session // guarded by mu
	seed      uint64              // span-id derivation material; guarded by mu
	begun     int                 // sessions ever begun; guarded by mu
	dropped   int                 // guarded by mu
	maxEvents int                 // guarded by mu
}

// New creates an enabled tracer with the default buffer bound.
func New() *Tracer {
	return &Tracer{sessions: make(map[string]*session), maxEvents: DefaultMaxEvents}
}

// SetSeed fixes the span-id derivation material. Span IDs are a pure
// function of (seed, task ID), so runs — and distinct processes — that
// share a seed derive identical IDs for the same task and their spans
// stitch into one async track when traces are merged. Both runtime
// constructors call this with their run seed before any node starts.
func (t *Tracer) SetSeed(seed uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seed = seed
	t.mu.Unlock()
}

// SetMaxEvents adjusts the buffer bound (<= 0 means unlimited).
func (t *Tracer) SetMaxEvents(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.maxEvents = n
	t.mu.Unlock()
}

// recordLocked appends one event, honoring the buffer bound. Caller
// holds t.mu.
func (t *Tracer) recordLocked(e Event) {
	if t.maxEvents > 0 && len(t.events) >= t.maxEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// attrMap converts attrs to the Args map (nil when empty).
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func spanID(id uint64) string { return fmt.Sprintf("0x%x", id) }

// fnv64a is the 64-bit FNV-1a hash, used to fold task IDs and phase
// names into span-id derivation streams.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// DeriveSpanID returns the span id a tracer seeded with seed assigns to
// task: rng seed material mixed with the task-ID hash. It is the
// cross-process contract that makes equal-seed nodes agree on span IDs
// without coordination; exported so tests and the fleet collector can
// predict IDs.
func DeriveSpanID(seed uint64, task string) uint64 {
	id := rng.Derive(seed, fnv64a(task))
	if id == 0 { // keep 0 as the "untraced" sentinel in TraceContext
		id = fnv64a(task) | 1
	}
	return id
}

// PhaseRef derives the stable reference id of one named phase inside a
// session span. Propagated trace contexts carry it as the parent-span
// ref: the receiver learns not just which session a message belongs to
// but which phase of it caused the message.
func PhaseRef(span uint64, phase string) uint64 {
	return rng.Derive(span, fnv64a(phase))
}

// ensureLocked returns the session record for task, creating it
// (closed) on first sight. Caller holds t.mu.
func (t *Tracer) ensureLocked(task string) *session {
	s, ok := t.sessions[task]
	if !ok {
		s = &session{id: DeriveSpanID(t.seed, task)}
		t.sessions[task] = s
	}
	return s
}

// SpanFor returns the span id of a task's session, deriving (and
// remembering) it on first sight. Senders stamp outgoing messages with
// it; 0 is returned only from a nil tracer.
func (t *Tracer) SpanFor(task string) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ensureLocked(task).id
}

// Adopt binds a task to a span id propagated from another process. The
// first binding for a task wins — with equal seeds the propagated id
// equals the locally derived one, and with diverging seeds the earliest
// context observed keeps the trace self-consistent. A fresh adoption
// with a parent-span ref records a "ctx" instant documenting the
// causal handoff; re-adoptions are silent no-ops.
func (t *Tracer) Adopt(ts int64, task string, span, parent uint64, node, domain int) {
	if t == nil || span == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[task]; ok {
		return
	}
	t.sessions[task] = &session{id: span}
	if parent == 0 {
		return
	}
	t.recordLocked(Event{Name: "ctx", Cat: "session", Phase: "i", TS: ts,
		PID: domain, TID: node, ID: spanID(span), Scope: "t",
		Args: map[string]any{"task": task, "parent": spanID(parent)}})
}

// BeginSession opens the root span of one task query. Reopening an
// already-open session is a no-op, so retry paths stay idempotent.
func (t *Tracer) BeginSession(ts int64, task string, node, domain int, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.ensureLocked(task)
	if s.open {
		return
	}
	s.open = true
	t.begun++
	args := attrMap(attrs)
	if args == nil {
		args = map[string]any{}
	}
	args["task"] = task
	t.recordLocked(Event{Name: "session", Cat: "session", Phase: "b", TS: ts,
		PID: domain, TID: node, ID: spanID(s.id), Args: args})
}

// EndSession closes a task's root span with an outcome (completed,
// rejected, aborted, timeout). Any still-open child phases are closed
// first so the trace stays well-formed. Ending a closed or unknown
// session is a no-op: a task that is rejected by the RM, timed out at the
// submitter and later aborted still ends exactly once, with the first
// outcome observed.
func (t *Tracer) EndSession(ts int64, task string, node, domain int, outcome string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[task]
	if !ok || !s.open {
		return
	}
	for i := len(s.phases) - 1; i >= 0; i-- {
		t.recordLocked(Event{Name: s.phases[i], Cat: "session", Phase: "e", TS: ts,
			PID: domain, TID: node, ID: spanID(s.id)})
	}
	s.phases = nil
	s.open = false
	args := attrMap(attrs)
	if args == nil {
		args = map[string]any{}
	}
	args["task"] = task
	args["outcome"] = outcome
	t.recordLocked(Event{Name: "session", Cat: "session", Phase: "e", TS: ts,
		PID: domain, TID: node, ID: spanID(s.id), Args: args})
}

// BeginPhase opens a named child span (compose, stream, repair) nested
// under the task's session span. A phase already open for the task is not
// reopened (repairs re-compose while streaming continues).
func (t *Tracer) BeginPhase(ts int64, task, phase string, node, domain int, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.ensureLocked(task)
	for _, p := range s.phases {
		if p == phase {
			return
		}
	}
	s.phases = append(s.phases, phase)
	t.recordLocked(Event{Name: phase, Cat: "session", Phase: "b", TS: ts,
		PID: domain, TID: node, ID: spanID(s.id), Args: attrMap(attrs)})
}

// EndPhase closes a child span opened by BeginPhase; unknown or closed
// phases are ignored.
func (t *Tracer) EndPhase(ts int64, task, phase string, node, domain int, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[task]
	if !ok {
		return
	}
	for i, p := range s.phases {
		if p == phase {
			s.phases = append(s.phases[:i], s.phases[i+1:]...)
			t.recordLocked(Event{Name: phase, Cat: "session", Phase: "e", TS: ts,
				PID: domain, TID: node, ID: spanID(s.id), Args: attrMap(attrs)})
			return
		}
	}
}

// Transport instant names recorded by the live transport's connection
// supervisors (internal/live): connectivity changes that explain a
// failover when read next to the session spans.
const (
	TransportReconnect   = "transport.reconnect"
	TransportCircuitOpen = "transport.circuit_open"
	TransportFault       = "transport.fault"
)

// EventDecision is the instant name of RM decision-audit records
// (admit/reject/redirect/preempt/migrate/failover): the explainability
// layer for the adaptation loop. Call sites must pass the constant so
// trace consumers can filter on it.
const EventDecision = "decision"

// TransportInstant records a connectivity instant from the live
// transport (reconnects, circuit state changes, injected faults). addr
// is the remote address; transport events belong to no node or domain,
// so they land on pid/tid -1 and stay visually separate from session
// tracks.
func (t *Tracer) TransportInstant(ts int64, name, addr string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	args := attrMap(attrs)
	if args == nil {
		args = map[string]any{}
	}
	args["addr"] = addr
	t.recordLocked(Event{Name: name, Cat: "transport", Phase: "i", TS: ts,
		PID: -1, TID: -1, Scope: "t", Args: args})
}

// Instant records a point event (redirect, preemption, failover, late
// chunk). task may be "" for events not tied to one query.
func (t *Tracer) Instant(ts int64, task, name string, node, domain int, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Event{Name: name, Cat: "session", Phase: "i", TS: ts, PID: domain, TID: node,
		Scope: "t", Args: attrMap(attrs)}
	if task != "" {
		e.ID = spanID(t.ensureLocked(task).id)
		if e.Args == nil {
			e.Args = map[string]any{}
		}
		e.Args["task"] = task
	}
	t.recordLocked(e)
}

// Complete records a span with an explicit duration (e.g. one allocation
// computation), both stamped by the caller's clock.
func (t *Tracer) Complete(ts, dur int64, task, name string, node, domain int, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Event{Name: name, Cat: "session", Phase: "X", TS: ts, Dur: dur,
		PID: domain, TID: node, Args: attrMap(attrs)}
	if task != "" {
		e.ID = spanID(t.ensureLocked(task).id)
		if e.Args == nil {
			e.Args = map[string]any{}
		}
		e.Args["task"] = task
	}
	t.recordLocked(e)
}

// Len reports how many events are buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports events discarded by the buffer bound.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SessionsBegun reports how many root session spans were ever opened.
func (t *Tracer) SessionsBegun() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.begun
}

// OpenSessions reports sessions begun but not yet ended.
func (t *Tracer) OpenSessions() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.sessions {
		if s.open {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of the buffered events.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSONL writes the buffered events as Chrome trace-event JSONL: one
// JSON object per line. `jq -s . out.jsonl` turns it into the JSON-array
// form chrome://tracing loads directly; Perfetto reads the JSONL as is.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	t.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the trace to path via WriteJSONL.
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
