package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSessionLifecycle(t *testing.T) {
	tr := New()
	tr.BeginSession(100, "t1", 3, 0, A("object", "movie"))
	tr.BeginPhase(110, "t1", "compose", 0, 0)
	tr.EndPhase(120, "t1", "compose", 0, 0)
	tr.BeginPhase(120, "t1", "stream", 0, 0)
	tr.EndSession(500, "t1", 2, 0, "completed")

	if got := tr.SessionsBegun(); got != 1 {
		t.Fatalf("SessionsBegun = %d", got)
	}
	if got := tr.OpenSessions(); got != 0 {
		t.Fatalf("OpenSessions = %d", got)
	}
	evs := tr.Snapshot()
	// begin, compose b, compose e, stream b, stream e (auto-closed), end.
	if len(evs) != 6 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	last := evs[len(evs)-1]
	if last.Phase != "e" || last.Args["outcome"] != "completed" {
		t.Fatalf("last event = %+v", last)
	}
	// The auto-closed stream phase precedes the session end.
	if evs[4].Name != "stream" || evs[4].Phase != "e" {
		t.Fatalf("auto-close event = %+v", evs[4])
	}
	// All events of one task share the async span id.
	for _, e := range evs {
		if e.ID != evs[0].ID {
			t.Fatalf("span id mismatch: %+v vs %+v", e, evs[0])
		}
	}
}

func TestIdempotentEnds(t *testing.T) {
	tr := New()
	tr.BeginSession(1, "t1", 0, 0)
	tr.BeginSession(2, "t1", 0, 0) // reopen is a no-op
	tr.EndSession(3, "t1", 0, 0, "rejected")
	tr.EndSession(4, "t1", 0, 0, "timeout") // second end ignored
	tr.EndSession(5, "t2", 0, 0, "x")       // unknown task ignored
	if got := tr.SessionsBegun(); got != 1 {
		t.Fatalf("SessionsBegun = %d", got)
	}
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[1].Args["outcome"] != "rejected" {
		t.Fatalf("first outcome must win: %+v", evs[1])
	}
	// A session may begin again after ending (retried task ID).
	tr.BeginSession(6, "t1", 0, 0)
	if got := tr.SessionsBegun(); got != 2 {
		t.Fatalf("SessionsBegun after reopen = %d", got)
	}
}

func TestPhaseNotReopened(t *testing.T) {
	tr := New()
	tr.BeginSession(1, "t1", 0, 0)
	tr.BeginPhase(2, "t1", "stream", 0, 0)
	tr.BeginPhase(3, "t1", "stream", 0, 0) // already open: skipped
	tr.EndPhase(4, "t1", "stream", 0, 0)
	tr.EndPhase(5, "t1", "stream", 0, 0) // already closed: skipped
	if got := tr.Len(); got != 3 {
		t.Fatalf("events = %d", got)
	}
}

func TestWriteJSONLValidPerLine(t *testing.T) {
	tr := New()
	tr.BeginSession(1, "t1", 1, 0)
	tr.Complete(2, 10, "t1", "allocate", 0, 0, A("goals", 2))
	tr.Instant(3, "t1", "redirect", 0, 0, A("target_rm", 7))
	tr.Instant(4, "", "failover", 5, 1)
	tr.EndSession(9, "t1", 1, 0, "completed")

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", lines, err, sc.Text())
		}
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("line %d missing %q: %s", lines, k, sc.Text())
			}
		}
	}
	if lines != tr.Len() {
		t.Fatalf("lines = %d, events = %d", lines, tr.Len())
	}
	// The instant without a task carries no span id.
	if strings.Contains(tr.Snapshot()[3].ID, "0x") {
		t.Fatal("taskless instant must not get a span id")
	}
}

func TestBoundedBuffer(t *testing.T) {
	tr := New()
	tr.SetMaxEvents(3)
	for i := 0; i < 10; i++ {
		tr.Instant(int64(i), "", "tick", 0, 0)
	}
	if tr.Len() != 3 || tr.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestDeterministicSpanIDs(t *testing.T) {
	a, b := New(), New()
	a.SetSeed(42)
	b.SetSeed(42)
	if a.SpanFor("t3.1") != b.SpanFor("t3.1") {
		t.Fatal("equal seeds must derive equal span ids")
	}
	if a.SpanFor("t3.1") != DeriveSpanID(42, "t3.1") {
		t.Fatal("SpanFor must match the exported derivation")
	}
	if a.SpanFor("t3.1") == a.SpanFor("t3.2") {
		t.Fatal("distinct tasks must get distinct span ids")
	}
	c := New()
	c.SetSeed(43)
	if c.SpanFor("t3.1") == a.SpanFor("t3.1") {
		t.Fatal("distinct seeds must derive distinct span ids")
	}
	// The id is stable across the session lifecycle.
	a.BeginSession(1, "t3.1", 0, 0)
	if got := a.Snapshot()[0].ID; got != spanID(DeriveSpanID(42, "t3.1")) {
		t.Fatalf("session event id = %s", got)
	}
	if PhaseRef(a.SpanFor("t3.1"), "submit") == a.SpanFor("t3.1") {
		t.Fatal("phase ref must differ from the span id")
	}
}

func TestAdopt(t *testing.T) {
	tr := New()
	tr.SetSeed(7)
	parent := PhaseRef(12345, "submit")
	tr.Adopt(10, "tX", 12345, parent, 2, 1)
	if tr.SpanFor("tX") != 12345 {
		t.Fatalf("adopted span id = %d", tr.SpanFor("tX"))
	}
	evs := tr.Snapshot()
	if len(evs) != 1 || evs[0].Name != "ctx" || evs[0].Args["parent"] != spanID(parent) {
		t.Fatalf("adoption instant = %+v", evs)
	}
	// Re-adoption with a different id is a silent no-op: first wins.
	tr.Adopt(11, "tX", 999, parent, 2, 1)
	if tr.SpanFor("tX") != 12345 || tr.Len() != 1 {
		t.Fatal("re-adoption must not rebind or record")
	}
	// Adopting a task already seen locally keeps the local binding.
	local := tr.SpanFor("tY")
	tr.Adopt(12, "tY", 555, 0, 0, 0)
	if tr.SpanFor("tY") != local {
		t.Fatal("local binding must win over late adoption")
	}
	// Zero span is the untraced sentinel.
	tr.Adopt(13, "tZ", 0, parent, 0, 0)
	if _, ok := tr.sessions["tZ"]; ok {
		t.Fatal("zero span must not bind")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.BeginSession(1, "t", 0, 0)
	tr.EndSession(2, "t", 0, 0, "x")
	tr.BeginPhase(1, "t", "p", 0, 0)
	tr.EndPhase(2, "t", "p", 0, 0)
	tr.Instant(1, "t", "i", 0, 0)
	tr.Complete(1, 2, "t", "c", 0, 0)
	tr.SetMaxEvents(10)
	tr.SetSeed(1)
	tr.Adopt(1, "t", 2, 3, 0, 0)
	if tr.SpanFor("t") != 0 {
		t.Fatal("nil tracer SpanFor must return 0")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.SessionsBegun() != 0 || tr.OpenSessions() != 0 {
		t.Fatal("nil tracer reported state")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil tracer wrote output")
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			task := string(rune('a' + g))
			for i := 0; i < 100; i++ {
				tr.BeginSession(int64(i), task, g, 0)
				tr.Instant(int64(i), task, "tick", g, 0)
				tr.EndSession(int64(i), task, g, 0, "completed")
			}
		}(g)
	}
	wg.Wait()
	if tr.SessionsBegun() != 800 {
		t.Fatalf("SessionsBegun = %d", tr.SessionsBegun())
	}
}

// BenchmarkNilTracer measures the disabled-path cost of one guarded call
// site: a nil check plus an immediately-returning method.
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Instant(int64(i), "t", "tick", 0, 0)
		}
	}
}
