package dht

import (
	"testing"

	"repro/internal/env"
	"repro/internal/proto"
)

func TestNodeKeyDeterministicAndDistinct(t *testing.T) {
	seen := map[proto.DHTKey]env.NodeID{}
	for id := env.NodeID(0); id < 2000; id++ {
		k := NodeKey(id)
		if k2 := NodeKey(id); k2 != k {
			t.Fatalf("NodeKey(%d) unstable", id)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("NodeKey collision: nodes %d and %d", prev, id)
		}
		seen[k] = id
	}
}

func TestKeyNamespaces(t *testing.T) {
	if Key("obj", "movie-1") == Key("svc", "movie-1") {
		t.Fatal("kind does not partition the key space")
	}
	if Key("obj", "movie-1") == Key("obj", "movie-2") {
		t.Fatal("distinct names collide")
	}
	if Key("obj", "movie-1") != Key("obj", "movie-1") {
		t.Fatal("Key unstable")
	}
	// Separator property: the (kind, name) split must matter.
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("kind/name boundary ambiguous")
	}
}

func TestXORMetric(t *testing.T) {
	a, b := NodeKey(1), NodeKey(2)
	if Distance(a, b) != Distance(b, a) {
		t.Fatal("distance not symmetric")
	}
	if Distance(a, a) != (proto.DHTKey{}) {
		t.Fatal("self-distance not zero")
	}
	if BucketIndex(a, a) != -1 {
		t.Fatal("equal keys must have bucket index -1")
	}
	if i := BucketIndex(a, b); i < 0 || i >= KeyBits {
		t.Fatalf("bucket index %d out of range", i)
	}
	if CloserTo(a, a, b) != true || CloserTo(a, b, a) != false {
		t.Fatal("CloserTo broken at distance zero")
	}
}

func TestTableLRUAndFullBucket(t *testing.T) {
	tb := NewTable(0, 2)
	// Find three nodes sharing one bucket relative to node 0.
	var ids []env.NodeID
	want := -1
	for id := env.NodeID(1); len(ids) < 3 && id < 10000; id++ {
		i := BucketIndex(tb.SelfKey(), NodeKey(id))
		if want == -1 {
			want, ids = i, append(ids, id)
		} else if i == want {
			ids = append(ids, id)
		}
	}
	if len(ids) < 3 {
		t.Fatal("could not find three same-bucket nodes")
	}
	for _, id := range ids[:2] {
		if ev, full := tb.Update(id); full {
			t.Fatalf("bucket full early (evict %d)", ev)
		}
	}
	// Third insert: bucket full, LRU head (ids[0]) surfaces.
	ev, full := tb.Update(ids[2])
	if !full || ev != ids[0] {
		t.Fatalf("Update = (%d, %v), want (%d, true)", ev, full, ids[0])
	}
	if tb.Contains(ids[2]) {
		t.Fatal("newcomer inserted before arbitration")
	}
	// Refreshing ids[0] moves it to most-recently-seen: ids[1] becomes
	// the next eviction candidate.
	tb.Update(ids[0])
	if ev, full = tb.Update(ids[2]); !full || ev != ids[1] {
		t.Fatalf("after refresh Update = (%d, %v), want (%d, true)", ev, full, ids[1])
	}
	// Ping timeout path: Remove frees the slot.
	tb.Remove(ids[1])
	if ev, full = tb.Update(ids[2]); full {
		t.Fatalf("insert into freed slot reported full (evict %d)", ev)
	}
	if !tb.Contains(ids[2]) || tb.Contains(ids[1]) {
		t.Fatal("replacement not applied")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestTableClosestOrder(t *testing.T) {
	tb := NewTable(0, 4)
	for id := env.NodeID(1); id <= 64; id++ {
		tb.Update(id)
	}
	target := Key("obj", "x")
	got := tb.Closest(target, 8)
	if len(got) == 0 {
		t.Fatal("no contacts")
	}
	for i := 1; i < len(got); i++ {
		if CloserTo(target, NodeKey(got[i]), NodeKey(got[i-1])) {
			t.Fatalf("Closest not distance-ordered at %d", i)
		}
	}
	// Self never appears.
	for _, id := range got {
		if id == 0 {
			t.Fatal("self listed as contact")
		}
	}
}

func TestStoreTTL(t *testing.T) {
	s := NewStore()
	k := Key("obj", "movie-1")
	s.Put(k, proto.DHTProvider{Domain: 1, RM: 5}, 0, 100)
	s.Put(k, proto.DHTProvider{Domain: 2, RM: 9}, 50, 100)
	if got := s.Get(k, 99); len(got) != 2 {
		t.Fatalf("Get before expiry = %d records, want 2", len(got))
	} else if got[0].Domain != 1 || got[1].Domain != 2 {
		t.Fatalf("records not in domain order: %+v", got)
	}
	if got := s.Get(k, 120); len(got) != 1 || got[0].Domain != 2 {
		t.Fatalf("Get after partial expiry = %+v, want domain 2 only", got)
	}
	if n := s.Expire(120); n != 1 {
		t.Fatalf("Expire dropped %d, want 1", n)
	}
	if n := s.Expire(1000); n != 1 {
		t.Fatalf("final Expire dropped %d, want 1", n)
	}
	if s.Len() != 0 || s.Records() != 0 {
		t.Fatal("store not empty after full expiry")
	}
	// Republish (a fresh Put) extends the deadline in place.
	s.Put(k, proto.DHTProvider{Domain: 1, RM: 5}, 0, 100)
	s.Put(k, proto.DHTProvider{Domain: 1, RM: 5}, 90, 100)
	if got := s.Get(k, 150); len(got) != 1 {
		t.Fatal("republish did not extend the record")
	}
}
