package dht

import (
	"sort"

	"repro/internal/env"
	"repro/internal/proto"
)

// Table is a Kademlia routing table: one bucket per distance bit, each
// holding up to k contacts ordered least- to most-recently seen. The
// table itself never evicts a live contact — when a bucket is full,
// Update surfaces the least-recently-seen entry so the owning Node can
// liveness-ping it and decide (Kademlia's "old contacts stay unless
// proven dead" rule, which biases the table toward long-lived peers).
type Table struct {
	selfID  env.NodeID
	self    proto.DHTKey
	k       int
	buckets [KeyBits][]env.NodeID // index 0 = closest half-space; front = oldest
	keys    map[env.NodeID]proto.DHTKey
}

// NewTable creates a table for the given node with bucket capacity k.
func NewTable(self env.NodeID, k int) *Table {
	return &Table{
		selfID: self,
		self:   NodeKey(self),
		k:      k,
		keys:   make(map[env.NodeID]proto.DHTKey),
	}
}

// SelfKey returns the owner's key-space ID.
func (t *Table) SelfKey() proto.DHTKey { return t.self }

// Len returns the number of contacts held.
func (t *Table) Len() int { return len(t.keys) }

// Contains reports whether the node is in the table.
func (t *Table) Contains(node env.NodeID) bool {
	_, ok := t.keys[node]
	return ok
}

// Update records fresh evidence that node is alive. A known contact
// moves to most-recently-seen; an unknown contact is inserted when its
// bucket has room. When the bucket is full the unknown contact is NOT
// inserted: Update returns the least-recently-seen occupant and
// full=true, and the caller arbitrates by pinging it (Remove on
// timeout, Update on ack).
func (t *Table) Update(node env.NodeID) (evict env.NodeID, full bool) {
	if node == t.selfID || node == env.NoNode {
		return env.NoNode, false
	}
	key, known := t.keys[node]
	if !known {
		key = NodeKey(node)
	}
	i := BucketIndex(t.self, key)
	if i < 0 {
		return env.NoNode, false
	}
	b := t.buckets[i]
	if known {
		for j, id := range b {
			if id == node {
				t.buckets[i] = append(append(b[:j:j], b[j+1:]...), node)
				return env.NoNode, false
			}
		}
	}
	if len(b) < t.k {
		t.buckets[i] = append(b, node)
		t.keys[node] = key
		return env.NoNode, false
	}
	return b[0], true
}

// Remove drops a contact (liveness ping timed out, RPC failed).
func (t *Table) Remove(node env.NodeID) {
	key, ok := t.keys[node]
	if !ok {
		return
	}
	i := BucketIndex(t.self, key)
	b := t.buckets[i]
	for j, id := range b {
		if id == node {
			t.buckets[i] = append(b[:j:j], b[j+1:]...)
			break
		}
	}
	delete(t.keys, node)
}

// Closest returns up to n contacts ordered by XOR distance to target
// (NodeID breaks exact ties, which cannot occur between distinct nodes
// but keeps the sort total).
func (t *Table) Closest(target proto.DHTKey, n int) []env.NodeID {
	out := make([]env.NodeID, 0, len(t.keys))
	for i := range t.buckets {
		out = append(out, t.buckets[i]...)
	}
	sort.Slice(out, func(a, b int) bool {
		ka, kb := t.keys[out[a]], t.keys[out[b]]
		if ka == kb {
			return out[a] < out[b]
		}
		return CloserTo(target, ka, kb)
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// BucketSizes returns the occupancy of every non-empty bucket as
// (index, size) pairs in index order — the /dht diagnostics payload.
func (t *Table) BucketSizes() [][2]int {
	var out [][2]int
	for i := range t.buckets {
		if n := len(t.buckets[i]); n > 0 {
			out = append(out, [2]int{i, n})
		}
	}
	return out
}
