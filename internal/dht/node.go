package dht

import (
	"sort"

	"repro/internal/env"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Config tunes one DHT node. Zero values select the defaults.
type Config struct {
	// K is the bucket capacity and the result-set width of lookups.
	K int
	// Alpha is the lookup parallelism: probes kept in flight at once.
	Alpha int
	// ProviderTTL expires stored provider records; publishers must
	// republish faster than this or their records vanish under them.
	ProviderTTL sim.Time
	// RepublishPeriod re-stores every locally published record.
	RepublishPeriod sim.Time
	// RefreshPeriod walks a random key to keep the routing table fresh
	// and sweeps expired provider records.
	RefreshPeriod sim.Time
	// RPCTimeout bounds one request/response exchange; a contact that
	// misses it is removed from the routing table.
	RPCTimeout sim.Time
}

// Defaults mirror Kademlia's classic parameters scaled to the repo's
// protocol cadence (heartbeats at 500ms, gossip at 3s).
const (
	DefaultK               = 16
	DefaultAlpha           = 3
	DefaultProviderTTL     = 30 * sim.Second
	DefaultRepublishPeriod = 10 * sim.Second
	DefaultRefreshPeriod   = 15 * sim.Second
	DefaultRPCTimeout      = 2 * sim.Second
)

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.Alpha <= 0 {
		c.Alpha = DefaultAlpha
	}
	if c.ProviderTTL <= 0 {
		c.ProviderTTL = DefaultProviderTTL
	}
	if c.RepublishPeriod <= 0 {
		c.RepublishPeriod = DefaultRepublishPeriod
	}
	if c.RefreshPeriod <= 0 {
		c.RefreshPeriod = DefaultRefreshPeriod
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = DefaultRPCTimeout
	}
	return c
}

// Stats counts one node's DHT activity since start.
type Stats struct {
	Lookups     uint64
	LookupHits  uint64
	RPCsSent    uint64
	RPCTimeouts uint64
	StoresSent  uint64
	Expired     uint64
}

// Node is one DHT participant. It is actor-confined: every method must
// run on the owning peer's event loop (the env.Context's serialized
// executor), so there are no locks and no concurrent state.
type Node struct {
	ctx   env.Context
	cfg   Config
	table *Table
	store *Store

	published map[proto.DHTKey]proto.DHTProvider
	nextRPC   uint64
	calls     map[uint64]*pendingCall
	// pendingPing maps an eviction candidate under liveness probe to the
	// newcomer waiting for its slot; further newcomers for the same slot
	// are dropped (Kademlia keeps old contacts).
	pendingPing map[env.NodeID]env.NodeID
	cancels     []env.Cancel
	stopped     bool
	stats       Stats

	// OnLookupDone, when set, observes every finished provider lookup:
	// whether any record was found and the elapsed virtual/wall time.
	OnLookupDone func(hit bool, elapsed sim.Time)
}

// pendingCall is one outstanding RPC.
type pendingCall struct {
	to      env.NodeID
	timeout env.Cancel
	// done receives the response (ok=true) or the timeout (ok=false).
	done func(ids []env.NodeID, values []proto.DHTProvider, ok bool)
}

// NewNode creates a DHT node on the given actor context.
func NewNode(ctx env.Context, cfg Config) *Node {
	cfg = cfg.withDefaults()
	return &Node{
		ctx:         ctx,
		cfg:         cfg,
		table:       NewTable(ctx.Self(), cfg.K),
		store:       NewStore(),
		published:   make(map[proto.DHTKey]proto.DHTProvider),
		calls:       make(map[uint64]*pendingCall),
		pendingPing: make(map[env.NodeID]env.NodeID),
	}
}

// Table exposes the routing table (diagnostics, tests).
func (n *Node) Table() *Table { return n.table }

// StoreDiag exposes the provider store (diagnostics, tests).
func (n *Node) StoreDiag() *Store { return n.store }

// Stats returns a copy of the activity counters.
func (n *Node) Stats() Stats { return n.stats }

// Published returns how many records this node republishes.
func (n *Node) Published() int { return len(n.published) }

// Seed adds bootstrap contacts and, when any stick, walks toward the
// node's own ID to populate nearby buckets.
func (n *Node) Seed(ids ...env.NodeID) {
	added := false
	for _, id := range ids {
		if id == env.NoNode || id == n.ctx.Self() {
			continue
		}
		n.observe(id)
		added = true
	}
	if added {
		n.lookup(n.table.SelfKey(), false, proto.TraceContext{}, nil)
	}
}

// Start arms the periodic maintenance work: bucket refresh walks and
// provider-record expiry. Call once, on the owning actor's loop.
func (n *Node) Start() {
	n.cancels = append(n.cancels, env.Every(n.ctx, n.cfg.RefreshPeriod, n.cfg.RefreshPeriod, func() {
		n.stats.Expired += uint64(n.store.Expire(n.ctx.Now()))
		n.lookup(expand(n.ctx.Rand().Uint64()), false, proto.TraceContext{}, nil)
	}))
}

// StartPublisher arms the republish loop (RM role only).
func (n *Node) StartPublisher() {
	n.cancels = append(n.cancels, env.Every(n.ctx, n.cfg.RepublishPeriod, n.cfg.RepublishPeriod, func() {
		n.republish()
	}))
}

// Stop cancels timers and outstanding RPC timeouts. The node must not
// be used afterwards.
func (n *Node) Stop() {
	n.stopped = true
	for _, c := range n.cancels {
		c()
	}
	n.cancels = nil
	for _, rpc := range sortedRPCs(n.calls) {
		n.calls[rpc].timeout()
	}
	n.calls = make(map[uint64]*pendingCall)
}

// sortedRPCs returns the outstanding RPC ids in order.
func sortedRPCs(m map[uint64]*pendingCall) []uint64 {
	out := make([]uint64, 0, len(m))
	for rpc := range m { //lint:maporder commutative — collected ids are sorted below before anything observes them
		out = append(out, rpc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HandleMessage consumes DHT protocol traffic; false means the message
// is not a DHT message and belongs to another subsystem. It runs on
// the runtimes' delivery paths, so all time must come through the
// injected env.Context (replay:recorded).
func (n *Node) HandleMessage(from env.NodeID, m env.Message) bool {
	switch v := m.(type) {
	case proto.FindNode:
		n.observe(from)
		n.ctx.Send(from, proto.Nodes{RPC: v.RPC, IDs: n.table.Closest(v.Target, n.cfg.K)})
	case proto.FindValue:
		n.observe(from)
		n.ctx.Send(from, proto.Providers{
			RPC:    v.RPC,
			Values: n.store.Get(v.Key, n.ctx.Now()),
			IDs:    n.table.Closest(v.Key, n.cfg.K),
		})
	case proto.Store:
		n.observe(from)
		n.store.Put(v.Key, v.Provider, n.ctx.Now(), n.cfg.ProviderTTL)
	case proto.Nodes:
		n.observe(from)
		n.resolve(v.RPC, v.IDs, nil)
	case proto.Providers:
		n.observe(from)
		n.resolve(v.RPC, v.IDs, v.Values)
	default:
		return false
	}
	return true
}

// Publish records a provider under key and pushes it to the K closest
// nodes; the republish loop refreshes it until Unpublish.
func (n *Node) Publish(key proto.DHTKey, v proto.DHTProvider) {
	n.published[key] = v
	n.storeAt(key, v)
}

// Unpublish stops republishing key. Already-stored copies age out via
// the receivers' TTL — the staleness window the E-series experiment
// measures.
func (n *Node) Unpublish(key proto.DHTKey) {
	delete(n.published, key)
}

// LookupProviders runs an iterative lookup for provider records under
// key and calls done exactly once with the records found (nil on miss).
// tc propagates the causal trace of the task that triggered the lookup.
func (n *Node) LookupProviders(key proto.DHTKey, tc proto.TraceContext, done func([]proto.DHTProvider)) {
	n.stats.Lookups++
	started := n.ctx.Now()
	n.lookup(key, true, tc, func(_ []env.NodeID, values []proto.DHTProvider) {
		hit := len(values) > 0
		if hit {
			n.stats.LookupHits++
		}
		if n.OnLookupDone != nil {
			n.OnLookupDone(hit, n.ctx.Now()-started)
		}
		if done != nil {
			done(values)
		}
	})
}

// LookupNode finds the K closest live contacts to target.
func (n *Node) LookupNode(target proto.DHTKey, done func([]env.NodeID)) {
	n.lookup(target, false, proto.TraceContext{}, func(ids []env.NodeID, _ []proto.DHTProvider) {
		if done != nil {
			done(ids)
		}
	})
}

// republish re-stores every published record in key order.
func (n *Node) republish() {
	keys := make([]proto.DHTKey, 0, len(n.published))
	for k := range n.published { //lint:maporder commutative — collected keys are sorted below before anything observes them
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return Less(keys[i], keys[j]) })
	for _, k := range keys {
		n.storeAt(k, n.published[k])
	}
}

// storeAt walks to the K closest nodes and hands each a copy; the local
// store takes one too, so lookups terminating here still hit.
func (n *Node) storeAt(key proto.DHTKey, v proto.DHTProvider) {
	n.store.Put(key, v, n.ctx.Now(), n.cfg.ProviderTTL)
	n.lookup(key, false, proto.TraceContext{}, func(ids []env.NodeID, _ []proto.DHTProvider) {
		for _, id := range ids {
			n.stats.StoresSent++
			n.ctx.Send(id, proto.Store{Key: key, Provider: v})
		}
	})
}

// observe feeds routing-table evidence that node is alive, running the
// full-bucket arbitration: the least-recently-seen occupant gets a
// liveness probe, and the newcomer takes its slot only on timeout.
func (n *Node) observe(node env.NodeID) {
	if n.stopped {
		return
	}
	evict, full := n.table.Update(node)
	if !full {
		return
	}
	if _, probing := n.pendingPing[evict]; probing {
		return // slot already contested; drop this newcomer
	}
	n.pendingPing[evict] = node
	newcomer := node
	n.call(evict, func(rpc uint64) env.Message {
		return proto.FindNode{RPC: rpc, Target: n.table.SelfKey()}
	}, func(_ []env.NodeID, _ []proto.DHTProvider, ok bool) {
		delete(n.pendingPing, evict)
		if ok {
			// The occupant answered; the response's observe already
			// moved it to most-recently-seen. The newcomer is dropped.
			return
		}
		// Timeout removed the occupant from the table; the newcomer
		// takes the freed slot.
		n.table.Update(newcomer)
	})
}

// call issues one RPC with a timeout. build receives the assigned RPC
// id; done fires exactly once.
func (n *Node) call(to env.NodeID, build func(rpc uint64) env.Message, done func([]env.NodeID, []proto.DHTProvider, bool)) {
	n.nextRPC++
	rpc := n.nextRPC
	pc := &pendingCall{to: to, done: done}
	pc.timeout = n.ctx.After(n.cfg.RPCTimeout, func() {
		if _, live := n.calls[rpc]; !live {
			return
		}
		delete(n.calls, rpc)
		n.stats.RPCTimeouts++
		n.table.Remove(to)
		done(nil, nil, false)
	})
	n.calls[rpc] = pc
	n.stats.RPCsSent++
	n.ctx.Send(to, build(rpc))
}

// resolve matches a response to its outstanding call. Unknown RPC ids
// (late responses after timeout, replays) are dropped silently.
func (n *Node) resolve(rpc uint64, ids []env.NodeID, values []proto.DHTProvider) {
	pc, ok := n.calls[rpc]
	if !ok {
		return
	}
	delete(n.calls, rpc)
	pc.timeout()
	pc.done(ids, values, true)
}

// --- iterative lookup ---

// lookupState values for one candidate.
const (
	candNew = iota
	candInflight
	candResponded
	candFailed
)

// lookup is one iterative walk: keep the Alpha closest unqueried
// candidates in flight until the K closest known contacts have all
// responded (or everything reachable has been tried). Value lookups
// finish early on the first response carrying provider records —
// records live on the K closest nodes to the key, so the first hit
// already holds the full set.
type lookup struct {
	n         *Node
	target    proto.DHTKey
	wantValue bool
	tc        proto.TraceContext
	shortlist []env.NodeID // distance order, deduped
	state     map[env.NodeID]int
	inflight  int
	finished  bool
	done      func([]env.NodeID, []proto.DHTProvider)
}

func (n *Node) lookup(target proto.DHTKey, wantValue bool, tc proto.TraceContext, done func([]env.NodeID, []proto.DHTProvider)) {
	lk := &lookup{
		n:         n,
		target:    target,
		wantValue: wantValue,
		tc:        tc,
		state:     make(map[env.NodeID]int),
		done:      done,
	}
	for _, id := range n.table.Closest(target, n.cfg.K) {
		lk.add(id)
	}
	lk.step()
}

// add inserts a candidate in distance order (ignoring self and known
// duplicates).
func (lk *lookup) add(id env.NodeID) {
	if id == env.NoNode || id == lk.n.ctx.Self() {
		return
	}
	if _, ok := lk.state[id]; ok {
		return
	}
	lk.state[id] = candNew
	key := NodeKey(id)
	at := sort.Search(len(lk.shortlist), func(i int) bool {
		other := NodeKey(lk.shortlist[i])
		if other == key {
			return lk.shortlist[i] >= id
		}
		return !CloserTo(lk.target, other, key)
	})
	lk.shortlist = append(lk.shortlist, env.NoNode)
	copy(lk.shortlist[at+1:], lk.shortlist[at:])
	lk.shortlist[at] = id
}

// step tops the probe window back up to Alpha and detects termination.
func (lk *lookup) step() {
	if lk.finished {
		return
	}
	// Termination scan over the K closest: done when none are unqueried
	// and none are in flight (failed ones are written off).
	unqueried := []env.NodeID{}
	settled := 0
	for i := 0; i < len(lk.shortlist) && settled < lk.n.cfg.K; i++ {
		id := lk.shortlist[i]
		switch lk.state[id] {
		case candNew:
			unqueried = append(unqueried, id)
			settled++
		case candResponded, candInflight:
			settled++
		}
	}
	if len(unqueried) == 0 && lk.inflight == 0 {
		lk.finish(nil)
		return
	}
	for _, id := range unqueried {
		if lk.inflight >= lk.n.cfg.Alpha {
			break
		}
		lk.query(id)
	}
	// A failure can empty the window while unqueried candidates hide
	// beyond the K horizon; the scan above already widened through
	// failed entries, so nothing more to do here.
	if lk.inflight == 0 && !lk.finished {
		lk.finish(nil)
	}
}

func (lk *lookup) query(id env.NodeID) {
	lk.state[id] = candInflight
	lk.inflight++
	build := func(rpc uint64) env.Message {
		if lk.wantValue {
			return proto.FindValue{RPC: rpc, Key: lk.target, TC: lk.tc}
		}
		return proto.FindNode{RPC: rpc, Target: lk.target, TC: lk.tc}
	}
	lk.n.call(id, build, func(ids []env.NodeID, values []proto.DHTProvider, ok bool) {
		lk.inflight--
		if !ok {
			lk.state[id] = candFailed
			lk.step()
			return
		}
		lk.state[id] = candResponded
		if lk.wantValue && len(values) > 0 {
			lk.finish(values)
			return
		}
		for _, c := range ids {
			lk.add(c)
		}
		lk.step()
	})
}

// finish reports the K closest responded contacts (and any values) and
// seals the lookup; late responses still update the routing table but
// cannot re-fire done.
func (lk *lookup) finish(values []proto.DHTProvider) {
	if lk.finished {
		return
	}
	lk.finished = true
	var closest []env.NodeID
	for _, id := range lk.shortlist {
		if lk.state[id] == candResponded {
			closest = append(closest, id)
			if len(closest) == lk.n.cfg.K {
				break
			}
		}
	}
	if lk.done != nil {
		lk.done(closest, values)
	}
}
