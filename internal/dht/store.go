package dht

import (
	"sort"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Store holds TTL'd provider records keyed by DHT key. Each key maps
// domains to their latest record, so a republish refreshes in place and
// a domain's record expires independently of its neighbours'.
type Store struct {
	records map[proto.DHTKey]map[proto.DomainID]storedProvider
}

type storedProvider struct {
	val     proto.DHTProvider
	expires sim.Time
}

// NewStore creates an empty provider store.
func NewStore() *Store {
	return &Store{records: make(map[proto.DHTKey]map[proto.DomainID]storedProvider)}
}

// Put installs or refreshes a record, expiring ttl from now.
func (s *Store) Put(key proto.DHTKey, v proto.DHTProvider, now sim.Time, ttl sim.Time) {
	m, ok := s.records[key]
	if !ok {
		m = make(map[proto.DomainID]storedProvider)
		s.records[key] = m
	}
	m[v.Domain] = storedProvider{val: v, expires: now + ttl}
}

// Get returns the unexpired records under key in domain order.
func (s *Store) Get(key proto.DHTKey, now sim.Time) []proto.DHTProvider {
	m := s.records[key]
	if len(m) == 0 {
		return nil
	}
	doms := make([]int, 0, len(m))
	for d, rec := range m { //lint:maporder commutative — collected domains are sorted below before anything observes them
		if rec.expires > now {
			doms = append(doms, int(d))
		}
	}
	sort.Ints(doms)
	out := make([]proto.DHTProvider, 0, len(doms))
	for _, d := range doms {
		out = append(out, m[proto.DomainID(d)].val)
	}
	return out
}

// Expire drops every record past its deadline and empty keys, returning
// how many records were dropped.
func (s *Store) Expire(now sim.Time) int {
	dropped := 0
	for key, m := range s.records { //lint:maporder commutative — each iteration touches only its own key's entry map and a commutative counter
		for d, rec := range m {
			if rec.expires <= now {
				delete(m, d)
				dropped++
			}
		}
		if len(m) == 0 {
			delete(s.records, key)
		}
	}
	return dropped
}

// Len returns the number of live keys held (some records under them may
// be expired but not yet swept).
func (s *Store) Len() int { return len(s.records) }

// Records counts every stored record.
func (s *Store) Records() int {
	n := 0
	for _, m := range s.records {
		n += len(m)
	}
	return n
}
