package dht

import (
	"fmt"
	"testing"

	"repro/internal/env"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
)

// dhtActor hosts one Node on the simulated network — the minimal actor
// shell the core peer also wraps around the DHT.
type dhtActor struct {
	cfg       Config
	bootstrap []env.NodeID
	publisher bool
	node      *Node
}

func (a *dhtActor) Init(ctx env.Context) {
	a.node = NewNode(ctx, a.cfg)
	a.node.Start()
	if a.publisher {
		a.node.StartPublisher()
	}
	a.node.Seed(a.bootstrap...)
}

func (a *dhtActor) Receive(from env.NodeID, m env.Message) {
	if !a.node.HandleMessage(from, m) {
		panic(fmt.Sprintf("non-DHT message %T reached dhtActor", m))
	}
}

func (a *dhtActor) Stop() { a.node.Stop() }

// swarm spins up n DHT actors on one network, all bootstrapping off node
// 0, and runs the engine long enough for the overlay to converge.
type swarm struct {
	eng    *sim.Engine
	net    *netsim.Network
	actors []*dhtActor
}

func newSwarm(seed uint64, n int, netCfg netsim.Config, dhtCfg Config) *swarm {
	eng := sim.New()
	net := netsim.New(eng, rng.New(seed), netCfg)
	s := &swarm{eng: eng, net: net, actors: make([]*dhtActor, n)}
	for i := 0; i < n; i++ {
		a := &dhtActor{cfg: dhtCfg, publisher: true}
		if i > 0 {
			a.bootstrap = []env.NodeID{0}
		}
		s.actors[i] = a
		net.AddNode(a)
	}
	return s
}

func (s *swarm) run(d sim.Time) { s.eng.RunUntil(s.eng.Now() + d) }

func testNet() netsim.Config {
	return netsim.Config{Latency: netsim.UniformLatency(5 * sim.Millisecond), JitterFrac: 0.2}
}

func TestLookupConvergence(t *testing.T) {
	s := newSwarm(42, 64, testNet(), Config{})
	s.run(45 * sim.Second)

	for id, a := range s.actors {
		if a.node.Table().Len() == 0 {
			t.Fatalf("node %d has an empty routing table after convergence", id)
		}
	}

	key := Key("obj", "movie-7")
	want := proto.DHTProvider{Domain: 3, RM: 5, NumPeers: 4, AvgUtil: 0.25}
	s.actors[5].node.Publish(key, want)
	s.run(5 * sim.Second)

	var got []proto.DHTProvider
	fired := 0
	s.actors[60].node.LookupProviders(key, proto.TraceContext{}, func(vs []proto.DHTProvider) {
		fired++
		got = vs
	})
	s.run(10 * sim.Second)

	if fired != 1 {
		t.Fatalf("done fired %d times, want exactly once", fired)
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("lookup returned %+v, want [%+v]", got, want)
	}
	st := s.actors[60].node.Stats()
	if st.Lookups == 0 || st.LookupHits == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}

	// A lookup for a key nobody published must miss cleanly.
	fired = 0
	s.actors[7].node.LookupProviders(Key("obj", "nope"), proto.TraceContext{}, func(vs []proto.DHTProvider) {
		fired++
		got = vs
	})
	s.run(10 * sim.Second)
	if fired != 1 || len(got) != 0 {
		t.Fatalf("absent-key lookup: fired=%d values=%+v, want 1/none", fired, got)
	}
}

func TestRepublishAndUnpublishStaleness(t *testing.T) {
	s := newSwarm(7, 32, testNet(), Config{})
	s.run(20 * sim.Second)

	key := Key("svc", "transcode")
	s.actors[3].node.Publish(key, proto.DHTProvider{Domain: 1, RM: 3})

	// Far past the 30s TTL: the 10s republish keeps the record alive.
	s.run(90 * sim.Second)
	hit := false
	s.actors[30].node.LookupProviders(key, proto.TraceContext{}, func(vs []proto.DHTProvider) {
		hit = len(vs) > 0
	})
	s.run(10 * sim.Second)
	if !hit {
		t.Fatal("republished record expired under its publisher")
	}

	// After Unpublish the stored copies age out within one TTL.
	s.actors[3].node.Unpublish(key)
	s.run(DefaultProviderTTL + 10*sim.Second)
	hit = false
	s.actors[30].node.LookupProviders(key, proto.TraceContext{}, func(vs []proto.DHTProvider) {
		hit = len(vs) > 0
	})
	s.run(10 * sim.Second)
	if hit {
		t.Fatal("unpublished record never expired")
	}
}

// TestLookupUnderChurnAndLoss drives a large overlay through message
// loss and node crashes, and asserts (a) a published record survives the
// loss of some of its holders, and (b) equal seeds give byte-identical
// outcomes — the determinism contract the sim runtime depends on.
func TestLookupUnderChurnAndLoss(t *testing.T) {
	n := 512
	if testing.Short() {
		n = 96
	}
	run := func() string {
		cfg := testNet()
		cfg.LossRate = 0.05
		s := newSwarm(1234, n, cfg, Config{})
		s.run(45 * sim.Second)

		key := Key("obj", "survivor")
		s.actors[9].node.Publish(key, proto.DHTProvider{Domain: 2, RM: 9})
		s.run(5 * sim.Second)

		// Crash 10% of the overlay (but never the publisher or prober).
		r := rng.New(99)
		crashed := 0
		for crashed < n/10 {
			id := env.NodeID(r.Intn(n))
			if id == 9 || id == env.NodeID(n-1) || !s.net.Alive(id) {
				continue
			}
			s.net.Crash(id)
			crashed++
		}
		// Two republish periods: the record re-settles on live holders.
		s.run(25 * sim.Second)

		hits, misses := 0, 0
		for i := 0; i < 5; i++ {
			s.actors[n-1].node.LookupProviders(key, proto.TraceContext{}, func(vs []proto.DHTProvider) {
				if len(vs) > 0 {
					hits++
				} else {
					misses++
				}
			})
			s.run(10 * sim.Second)
		}
		if hits == 0 {
			return fmt.Sprintf("FAIL: 0/%d probes resolved after churn", hits+misses)
		}
		st := s.net.Stats()
		probe := s.actors[n-1].node.Stats()
		return fmt.Sprintf("hits=%d misses=%d sent=%d delivered=%d dropped=%d kb=%.3f rpcs=%d timeouts=%d fired=%d now=%d",
			hits, misses, st.Sent, st.Delivered, st.Dropped, st.KBytes,
			probe.RPCsSent, probe.RPCTimeouts, s.eng.Fired(), s.eng.Now())
	}

	a, b := run(), run()
	if a != b {
		t.Fatalf("equal-seed runs diverged:\n  %s\n  %s", a, b)
	}
	if len(a) > 4 && a[:4] == "FAIL" {
		t.Fatal(a)
	}
	t.Log(a)
}
