package dht

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/sim"
)

// BenchmarkDHTLookup measures one iterative provider lookup across a
// converged 256-node overlay, including the simulated message routing —
// the hot path the p2pbench ratchet guards.
func BenchmarkDHTLookup(b *testing.B) {
	s := newSwarm(1, 256, testNet(), Config{})
	s.run(45 * sim.Second)

	key := Key("obj", "bench")
	s.actors[3].node.Publish(key, proto.DHTProvider{Domain: 1, RM: 3})
	s.run(5 * sim.Second)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit := false
		s.actors[200].node.LookupProviders(key, proto.TraceContext{}, func(vs []proto.DHTProvider) {
			hit = len(vs) > 0
		})
		s.run(10 * sim.Second)
		if !hit {
			b.Fatal("lookup missed")
		}
	}
}
