// Package dht implements a Kademlia-style structured overlay for
// inter-domain discovery: 160-bit XOR-metric keys, k-bucket routing
// tables with least-recently-seen eviction gated on liveness pings,
// iterative parallel lookup (α concurrent probes), and TTL'd provider
// records with publisher-side republish.
//
// The package is determinism-critical: it runs under the discrete-event
// simulator and must keep equal-seed runs byte-identical. All time
// comes from the injected env.Clock, all randomness from the injected
// rng stream, and every map iteration that can escape is over sorted
// keys. Node IDs are derived from env.NodeID with internal/rng seed
// material, so both runtimes (and every process in a multi-daemon
// deployment) agree on the key space without exchanging IDs.
package dht

import (
	"encoding/binary"
	"math/bits"

	"repro/internal/env"
	"repro/internal/proto"
	"repro/internal/rng"
)

// KeyBits is the key-space width: 20-byte keys, one k-bucket per bit.
const KeyBits = 8 * len(proto.DHTKey{})

// Stream labels for rng.Derive: node-ID derivation and name hashing use
// distinct labeled substreams of the shared contract so the two key
// families cannot collide structurally.
const (
	nodeSalt = 0x64687464_6e6f6465 // "dhtdnode"
	nameSalt = 0x64687464_6e616d65 // "dhtdname"
)

// NodeKey derives a node's DHT ID from its runtime NodeID. The
// derivation is pure splitmix expansion of rng seed material — both
// runtimes and every process agree on it, and it never travels on the
// wire.
func NodeKey(id env.NodeID) proto.DHTKey {
	return expand(rng.Derive(nodeSalt, uint64(int64(id))))
}

// Key maps a discovery name (an object or service catalog entry) into
// the key space. kind partitions the namespaces ("obj", "svc", "dir").
func Key(kind, name string) proto.DHTKey {
	// FNV-1a over kind and name, with a separator byte so ("ab","c")
	// and ("a","bc") differ.
	h := uint64(0xcbf29ce484222325)
	step := func(b byte) { h ^= uint64(b); h *= 0x100000001b3 }
	for i := 0; i < len(kind); i++ {
		step(kind[i])
	}
	step(0)
	for i := 0; i < len(name); i++ {
		step(name[i])
	}
	return expand(rng.Derive(nameSalt, h))
}

// expand stretches one 64-bit seed into a full-width key by drawing
// successive splitmix words.
func expand(seed uint64) proto.DHTKey {
	r := rng.New(seed)
	var k proto.DHTKey
	binary.BigEndian.PutUint64(k[0:8], r.Uint64())
	binary.BigEndian.PutUint64(k[8:16], r.Uint64())
	binary.BigEndian.PutUint32(k[16:20], uint32(r.Uint64()>>32))
	return k
}

// Distance is the XOR metric.
func Distance(a, b proto.DHTKey) proto.DHTKey {
	var d proto.DHTKey
	for i := range d {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// Less orders keys as big-endian unsigned integers.
func Less(a, b proto.DHTKey) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// CloserTo reports whether x is strictly closer to target than y.
func CloserTo(target, x, y proto.DHTKey) bool {
	for i := range target {
		dx, dy := x[i]^target[i], y[i]^target[i]
		if dx != dy {
			return dx < dy
		}
	}
	return false
}

// BucketIndex returns the k-bucket index for a contact at the given XOR
// distance from self: the position of the highest set bit
// (0..KeyBits-1), or -1 when the keys are equal.
func BucketIndex(self, other proto.DHTKey) int {
	for i := 0; i < len(self); i++ {
		if x := self[i] ^ other[i]; x != 0 {
			return KeyBits - 1 - (8*i + bits.LeadingZeros8(x))
		}
	}
	return -1
}
