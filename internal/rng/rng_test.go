package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The split stream must not simply replay the parent stream.
	parent := New(7)
	parent.Uint64() // account for the draw consumed by Split
	match := 0
	for i := 0; i < 100; i++ {
		if s.Uint64() == parent.Uint64() {
			match++
		}
	}
	if match > 2 {
		t.Fatalf("split stream tracks parent: %d/100 matches", match)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const mean, draws = 42.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean) > 0.02*mean {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const mean, sd, draws = 5.0, 2.0, 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / draws
	variance := sumsq/draws - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("Normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1, 100, 1.5)
		if v < 1 || v > 100 {
			t.Fatalf("Pareto sample %v out of [1,100]", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(3, 8)
		if v < 3 || v >= 8 {
			t.Fatalf("Uniform(3,8) = %v out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	check := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(29)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestPick(t *testing.T) {
	r := New(31)
	xs := []string{"a", "b", "c"}
	got := map[string]int{}
	for i := 0; i < 3000; i++ {
		got[Pick(r, xs)]++
	}
	for _, s := range xs {
		if got[s] < 800 {
			t.Errorf("Pick(%q) drawn only %d/3000 times", s, got[s])
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf rank %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 should dominate rank 99 by roughly n (here 100x); allow slack.
	if counts[0] < 20*counts[99] {
		t.Errorf("Zipf not skewed: rank0=%d rank99=%d", counts[0], counts[99])
	}
	// And rank ordering should broadly hold near the head.
	if counts[0] < counts[10] {
		t.Errorf("Zipf head inverted: rank0=%d rank10=%d", counts[0], counts[10])
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	want := float64(draws) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("uniform-zipf bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(43)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", got)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 10000, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

func TestStateResumesStream(t *testing.T) {
	r := New(99)
	for i := 0; i < 5; i++ {
		r.Uint64()
	}
	clone := New(r.State())
	for i := 0; i < 32; i++ {
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("draw %d: resumed stream diverged: %d != %d", i, a, b)
		}
	}
}

func TestSplitSeedMatchesSplitChain(t *testing.T) {
	const root = 4242
	r := New(root)
	for k := 0; k < 16; k++ {
		child := r.Split()
		if got, want := child.State(), SplitSeed(root, k); got != want {
			t.Fatalf("child %d: Split chain seed %d, SplitSeed %d", k, got, want)
		}
	}
}

func TestDeriveIndependentOfRootStream(t *testing.T) {
	// Deriving a substream must not advance the root chain: node k's
	// SplitSeed stays the same whether or not infra streams were derived.
	const root = 7
	before := SplitSeed(root, 3)
	_ = Derive(root, 1)
	_ = Derive(root, 2)
	if after := SplitSeed(root, 3); after != before {
		t.Fatalf("Derive perturbed SplitSeed: %d != %d", after, before)
	}
	if Derive(root, 1) == Derive(root, 2) {
		t.Fatal("distinct stream labels derived the same seed")
	}
	if Derive(root, 1) == Derive(root+1, 1) {
		t.Fatal("distinct roots derived the same seed")
	}
	if Derive(root, 1) != Derive(root, 1) {
		t.Fatal("Derive is not a pure function")
	}
}
