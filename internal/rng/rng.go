// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator. Every source of randomness in a
// simulation run flows from a single seed so that runs are bit-reproducible.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014): tiny state, full
// 64-bit period per stream, and excellent statistical quality for
// simulation purposes. It is intentionally not cryptographic.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; derive independent streams with Split instead of
// sharing one generator across goroutines.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// golden is the splitmix64 increment (the 64-bit golden ratio), also
// used to decorrelate Split children from the parent stream.
const golden = 0x9e3779b97f4a7c15

// Split derives a new, statistically independent generator from r,
// advancing r. Use it to give each simulated component its own stream so
// that adding a consumer does not perturb the draws seen by others.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ golden)
}

// State returns the generator's current seed state. A generator built
// with New(r.State()) continues r's stream exactly; the flight recorder
// captures each node's stream this way so replay draws identical values.
func (r *Rand) State() uint64 { return r.state }

// SplitSeed returns the seed of the n-th (0-indexed) child a generator
// seeded with root would produce via successive Split calls, without
// materializing the intermediate children. Both runtimes hand the k-th
// added node the k-th split of their node-seed stream, so
// SplitSeed(root, k) is the cross-runtime contract for node k's stream.
func SplitSeed(root uint64, n int) uint64 {
	r := New(root)
	for i := 0; i < n; i++ {
		r.Uint64()
	}
	return r.Uint64() ^ golden
}

// Derive returns a seed for a labeled substream of root. Distinct stream
// labels yield statistically independent seeds, and draws from a derived
// stream never advance the root — infrastructure randomness (transport
// jitter, fault rolls) lives on Derive'd streams so it cannot perturb
// the node-seed Split chain that replay depends on.
func Derive(root, stream uint64) uint64 {
	return New(root).Uint64() ^ New(stream).Uint64() ^ golden
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded draws.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed sample with the given mean.
// It panics if mean <= 0.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with mean <= 0")
	}
	u := r.Float64()
	// Guard against log(0); Float64 can return exactly 0.
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed sample using the Box-Muller
// transform.
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto returns a bounded Pareto sample in [lo, hi] with shape alpha.
// Heavy-tailed draws model bursty service times and peer capacities.
func (r *Rand) Pareto(lo, hi, alpha float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("rng: Pareto requires 0 < lo < hi and alpha > 0")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent
// s, using precomputed cumulative weights for O(log n) sampling.
type Zipf struct {
	r   *Rand
	cum []float64 // cumulative unnormalized weights
}

// NewZipf builds a Zipf sampler over n ranks with exponent s (s >= 0;
// s == 0 degenerates to uniform).
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &Zipf{r: r, cum: cum}
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
