package obs

import (
	"sort"
	"strconv"

	"repro/internal/core"
)

// DomainSummary is the per-domain rollup of the fleet's metric
// families: distinct peers seen, the session-outcome counters, and the
// chunk-deadline miss rate. Counters sum across nodes, which is exact
// because every process counts only its own events.
type DomainSummary struct {
	Domain       int     `json:"domain"`
	Peers        int     `json:"peers"`
	Submitted    uint64  `json:"submitted"`
	Admitted     uint64  `json:"admitted"`
	Rejected     uint64  `json:"rejected"`
	Redirected   uint64  `json:"redirected"`
	Completed    uint64  `json:"completed"`
	Aborted      uint64  `json:"aborted"`
	Repairs      uint64  `json:"repairs"`
	Migrations   uint64  `json:"migrations"`
	Preemptions  uint64  `json:"preemptions"`
	Failovers    uint64  `json:"failovers"`
	Chunks       uint64  `json:"chunks"`
	ChunksMissed uint64  `json:"chunks_missed"`
	MissRate     float64 `json:"miss_rate"`
}

// Summarize rolls the nodes' metric families up by domain label.
func Summarize(nodes []NodeData) []DomainSummary {
	sums := make(map[int]*DomainSummary)
	peers := make(map[int]map[string]bool)
	get := func(domain int) *DomainSummary {
		s, ok := sums[domain]
		if !ok {
			s = &DomainSummary{Domain: domain}
			sums[domain] = s
			peers[domain] = make(map[string]bool)
		}
		return s
	}
	for _, n := range nodes {
		for _, fam := range n.Families {
			dst := counterField(fam.Name)
			for _, m := range fam.Metrics {
				d, err := strconv.Atoi(m.Labels["domain"])
				if err != nil {
					continue
				}
				s := get(d)
				if fam.Name == core.MetricPeerLoad {
					if p := m.Labels["peer"]; p != "" {
						peers[d][p] = true
					}
					continue
				}
				if dst != nil {
					*dst(s) += uint64(m.Value)
				}
			}
		}
	}
	out := make([]DomainSummary, 0, len(sums))
	for d, s := range sums {
		s.Peers = len(peers[d])
		if s.Chunks > 0 {
			s.MissRate = float64(s.ChunksMissed) / float64(s.Chunks)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// counterField maps a family name to the summary field it accumulates
// into (nil for families the rollup ignores).
func counterField(name string) func(*DomainSummary) *uint64 {
	switch name {
	case core.MetricSubmitted:
		return func(s *DomainSummary) *uint64 { return &s.Submitted }
	case core.MetricAdmitted:
		return func(s *DomainSummary) *uint64 { return &s.Admitted }
	case core.MetricRejected:
		return func(s *DomainSummary) *uint64 { return &s.Rejected }
	case core.MetricRedirected:
		return func(s *DomainSummary) *uint64 { return &s.Redirected }
	case core.MetricCompleted:
		return func(s *DomainSummary) *uint64 { return &s.Completed }
	case core.MetricAborted:
		return func(s *DomainSummary) *uint64 { return &s.Aborted }
	case core.MetricRepairs:
		return func(s *DomainSummary) *uint64 { return &s.Repairs }
	case core.MetricMigrations:
		return func(s *DomainSummary) *uint64 { return &s.Migrations }
	case core.MetricPreemptions:
		return func(s *DomainSummary) *uint64 { return &s.Preemptions }
	case core.MetricFailovers:
		return func(s *DomainSummary) *uint64 { return &s.Failovers }
	case core.MetricChunks:
		return func(s *DomainSummary) *uint64 { return &s.Chunks }
	case core.MetricChunksMiss:
		return func(s *DomainSummary) *uint64 { return &s.ChunksMissed }
	}
	return nil
}
