// Package obs is the fleet observability plane: it scrapes the
// diagnostics endpoints of N nodes (/metrics.json, /sketches, /trace,
// /decisions), merges the mergeable parts — quantile sketches fold
// bucket-wise (stats.MergeExports), trace events sort into one
// deterministic stream (MergeTraces) in which equal span IDs stitch
// cross-node sessions into single causal tracks — and summarizes the
// fleet per domain for the p2ptop dashboard.
//
// The collector is transport-agnostic below Scrape: everything operates
// on NodeData values, so the same merge/summarize path serves scraped
// TCP clusters and p2psim file output.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// NodeData is everything the collector gathered from one node. Partial
// data is normal: a node without a tracer serves an empty /trace, and a
// scrape error leaves the fields nil with Err set.
type NodeData struct {
	Name      string
	Families  []metrics.FamilySnapshot
	Sketches  []stats.SketchJSON
	Decisions []core.Decision
	Trace     []trace.Event
	Err       error
}

// metricsDoc and sketchesDoc mirror the endpoint envelope shapes.
type metricsDoc struct {
	Families []metrics.FamilySnapshot `json:"families"`
}
type sketchesDoc struct {
	Sketches []stats.SketchJSON `json:"sketches"`
}
type decisionsDoc struct {
	Total     uint64          `json:"total"`
	Decisions []core.Decision `json:"decisions"`
}

// DefaultScrapeTimeout bounds one node scrape end to end.
const DefaultScrapeTimeout = 5 * time.Second

// Scrape collects one node's observability documents from its
// diagnostics base URL ("http://host:port"). Endpoints are fetched
// independently; the first failure is recorded in Err but the fields
// that did arrive are kept, so a fleet view degrades per node rather
// than per scrape.
func Scrape(client *http.Client, name, baseURL string) NodeData {
	if client == nil {
		client = &http.Client{Timeout: DefaultScrapeTimeout}
	}
	n := NodeData{Name: name}
	keep := func(err error) {
		if err != nil && n.Err == nil {
			n.Err = err
		}
	}
	var md metricsDoc
	keep(getJSON(client, baseURL+"/metrics.json", &md))
	n.Families = md.Families
	var sd sketchesDoc
	keep(getJSON(client, baseURL+"/sketches", &sd))
	n.Sketches = sd.Sketches
	var dd decisionsDoc
	keep(getJSON(client, baseURL+"/decisions", &dd))
	n.Decisions = dd.Decisions
	ev, err := getTrace(client, baseURL+"/trace")
	keep(err)
	n.Trace = ev
	return n
}

// getJSON fetches url and decodes its JSON body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("obs: %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// getTrace fetches a /trace endpoint and parses its JSONL body.
func getTrace(client *http.Client, url string) ([]trace.Event, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: %s: %s", url, resp.Status)
	}
	return ReadTraceJSONL(resp.Body)
}

// ReadTraceJSONL parses Chrome trace-event JSONL (one event object per
// line, as written by trace.Tracer.WriteJSONL) from r.
func ReadTraceJSONL(r io.Reader) ([]trace.Event, error) {
	dec := json.NewDecoder(r)
	var events []trace.Event
	for i := 0; ; i++ {
		var e trace.Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return events, nil
			}
			return events, fmt.Errorf("obs: trace event %d: %w", i, err)
		}
		events = append(events, e)
	}
}

// Fleet is the merged, fleet-wide view the dashboard renders.
type Fleet struct {
	Nodes []NodeData
	// Sketches holds the bucket-wise merge of every node's sketch
	// export, keyed by sketch name in name order; SketchesSkipped counts
	// exports dropped for alpha mismatch or corruption.
	Sketches        []stats.SketchJSON
	SketchesSkipped int
	// Trace is the deterministic merge of every node's span events;
	// Sessions summarizes its async spans, cross-node ones first.
	Trace    []trace.Event
	Sessions []SessionTrack
	// Decisions is every node's RM audit ring concatenated in scrape
	// order (rings are already oldest-first per node).
	Decisions []core.Decision
	// Domains is the per-domain rollup of the metric families.
	Domains []DomainSummary
	// Drops aggregates live_transport_dropped_total by reason.
	Drops map[string]uint64
}

// Collect merges per-node data into the fleet view. It is pure — the
// network is only touched by Scrape — so file-mode (p2psim output) and
// scrape-mode dashboards share it.
func Collect(nodes []NodeData) *Fleet {
	f := &Fleet{Nodes: nodes, Drops: make(map[string]uint64)}
	exports := make([][]stats.SketchJSON, 0, len(nodes))
	traces := make([][]trace.Event, 0, len(nodes))
	for _, n := range nodes {
		if len(n.Sketches) > 0 {
			exports = append(exports, n.Sketches)
		}
		if len(n.Trace) > 0 {
			traces = append(traces, n.Trace)
		}
		f.Decisions = append(f.Decisions, n.Decisions...)
	}
	f.Sketches, f.SketchesSkipped = stats.MergeExports(exports)
	f.Trace = MergeTraces(traces...)
	f.Sessions = SessionTracks(f.Trace)
	f.Domains = Summarize(nodes)
	for _, n := range nodes {
		for _, fam := range n.Families {
			if fam.Name != "live_transport_dropped_total" {
				continue
			}
			for _, m := range fam.Metrics {
				if m.Value > 0 {
					f.Drops[m.Labels["reason"]] += uint64(m.Value)
				}
			}
		}
	}
	return f
}

// Quantile queries a merged fleet sketch by name (0 when absent).
func (f *Fleet) Quantile(name string, q float64) float64 {
	for _, j := range f.Sketches {
		if j.Name == name {
			s, err := stats.Import(j)
			if err != nil {
				return 0
			}
			return s.Quantile(q)
		}
	}
	return 0
}

// CrossNode returns the session tracks observed on two or more nodes —
// the causally stitched cross-node sessions.
func (f *Fleet) CrossNode() []SessionTrack {
	var out []SessionTrack
	for _, s := range f.Sessions {
		if len(s.Nodes) >= 2 {
			out = append(out, s)
		}
	}
	return out
}
