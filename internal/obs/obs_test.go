package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ev builds one trace event compactly.
func ev(ts int64, id string, tid, pid int, name, phase string, args map[string]any) trace.Event {
	return trace.Event{Name: name, Cat: "session", Phase: phase, TS: ts,
		PID: pid, TID: tid, ID: id, Args: args}
}

// TestMergeTracesDeterministic pins the merge's total order: any
// permutation of the same per-node streams merges to the same sequence,
// and merging a stream with itself collapses the duplicates.
func TestMergeTracesDeterministic(t *testing.T) {
	a := []trace.Event{
		ev(10, "0x1", 0, 0, "session", "b", map[string]any{"task": "t1"}),
		ev(30, "0x1", 0, 0, "session", "e", nil),
	}
	b := []trace.Event{
		ev(10, "0x2", 1, 0, "session", "b", map[string]any{"task": "t2"}),
		ev(20, "0x1", 1, 0, "ctx", "i", map[string]any{"task": "t1"}),
	}
	ab := MergeTraces(a, b)
	ba := MergeTraces(b, a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge order changed output:\n%v\nvs\n%v", ab, ba)
	}
	if len(ab) != 4 {
		t.Fatalf("merged %d events, want 4", len(ab))
	}
	for i := 1; i < len(ab); i++ {
		if ab[i].TS < ab[i-1].TS {
			t.Fatalf("timestamps out of order at %d: %v", i, ab)
		}
	}
	// Idempotent under duplication (the same node scraped twice).
	dup := MergeTraces(a, b, a)
	if !reflect.DeepEqual(dup, ab) {
		t.Fatalf("duplicate stream changed merge: %v vs %v", dup, ab)
	}
}

// TestSessionTracks checks span grouping, cross-node detection, task
// extraction, and the cross-node-first ordering.
func TestSessionTracks(t *testing.T) {
	merged := MergeTraces([]trace.Event{
		ev(5, "0xa", 0, 0, "session", "b", map[string]any{"task": "local"}),
		ev(9, "0xa", 0, 0, "session", "e", nil),
		ev(10, "0xb", 1, 0, "session", "b", map[string]any{"task": "crossed"}),
		ev(12, "0xb", 2, 0, "ctx", "i", map[string]any{"task": "crossed"}),
		ev(20, "0xb", 2, 0, "session", "e", nil),
		{Name: "reconnect", Cat: "transport", Phase: "i", TS: 7}, // no ID: ignored
	})
	tracks := SessionTracks(merged)
	if len(tracks) != 2 {
		t.Fatalf("tracks = %+v", tracks)
	}
	cross := tracks[0]
	if cross.ID != "0xb" || cross.Task != "crossed" {
		t.Fatalf("cross-node track not first: %+v", tracks)
	}
	if !reflect.DeepEqual(cross.Nodes, []int{1, 2}) {
		t.Fatalf("nodes = %v", cross.Nodes)
	}
	if cross.FirstTS != 10 || cross.LastTS != 20 || cross.Events != 3 {
		t.Fatalf("extent = %+v", cross)
	}
	if n := tracks[1].Nodes; len(n) != 1 {
		t.Fatalf("local track nodes = %v", n)
	}
}

// TestSummarize rolls two nodes' families into one per-domain view.
func TestSummarize(t *testing.T) {
	fam := func(name string, domain string, v float64) metrics.FamilySnapshot {
		return metrics.FamilySnapshot{Name: name, Metrics: []metrics.MetricSnapshot{
			{Labels: metrics.Labels{"domain": domain}, Value: v},
		}}
	}
	nodes := []NodeData{
		{Name: "a", Families: []metrics.FamilySnapshot{
			fam(core.MetricSubmitted, "0", 5),
			fam(core.MetricAdmitted, "0", 4),
			fam(core.MetricChunks, "0", 100),
			fam(core.MetricChunksMiss, "0", 10),
			{Name: core.MetricPeerLoad, Metrics: []metrics.MetricSnapshot{
				{Labels: metrics.Labels{"domain": "0", "peer": "1"}, Value: 0.5},
				{Labels: metrics.Labels{"domain": "0", "peer": "2"}, Value: 0.7},
			}},
		}},
		{Name: "b", Families: []metrics.FamilySnapshot{
			fam(core.MetricSubmitted, "0", 2),
			fam(core.MetricSubmitted, "1", 3),
		}},
	}
	sums := Summarize(nodes)
	if len(sums) != 2 || sums[0].Domain != 0 || sums[1].Domain != 1 {
		t.Fatalf("domains = %+v", sums)
	}
	d0 := sums[0]
	if d0.Submitted != 7 || d0.Admitted != 4 || d0.Peers != 2 {
		t.Fatalf("domain 0 = %+v", d0)
	}
	if d0.MissRate != 0.1 {
		t.Fatalf("miss rate = %v", d0.MissRate)
	}
	if sums[1].Submitted != 3 {
		t.Fatalf("domain 1 = %+v", sums[1])
	}
}

// TestCollectAndQuantile folds two nodes' sketch exports and reads the
// fleet percentile back out.
func TestCollectAndQuantile(t *testing.T) {
	mk := func(vals ...float64) []stats.SketchJSON {
		s := stats.NewSet(0, 0, 0)
		for _, v := range vals {
			s.Observe(stats.SketchAllocLatency, 0, v)
		}
		return s.Export(0)
	}
	f := Collect([]NodeData{
		{Name: "a", Sketches: mk(0.001, 0.002)},
		{Name: "b", Sketches: mk(0.003, 0.004)},
	})
	if len(f.Sketches) != 1 || f.SketchesSkipped != 0 {
		t.Fatalf("sketches = %+v skipped=%d", f.Sketches, f.SketchesSkipped)
	}
	s, err := stats.Import(f.Sketches[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 4 {
		t.Fatalf("merged count = %d", s.Count())
	}
	if q := f.Quantile(stats.SketchAllocLatency, 0.99); q < 0.003 {
		t.Fatalf("fleet p99 = %v", q)
	}
	if q := f.Quantile("absent", 0.99); q != 0 {
		t.Fatalf("absent sketch quantile = %v", q)
	}
}

// TestLoadDir round-trips the p2psim -obs documents through the
// file-mode loader.
func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	var traceBuf bytes.Buffer
	tr := trace.New()
	tr.BeginSession(1, "t1", 0, 0)
	tr.EndSession(5, "t1", 0, 0, "completed")
	if err := tr.WriteJSONL(&traceBuf); err != nil {
		t.Fatal(err)
	}
	writeFile := func(name string, b []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(FileTrace, traceBuf.Bytes())
	set := stats.NewSet(0, 0, 0)
	set.Observe(stats.SketchDeliveryRTT, 0, 0.25)
	var skBuf bytes.Buffer
	if err := set.WriteJSON(&skBuf, 0); err != nil {
		t.Fatal(err)
	}
	writeFile(FileSketches, skBuf.Bytes())
	dl := core.NewDecisionLog(0)
	dl.Add(core.Decision{Action: core.DecisionAdmit, Task: "t1"})
	var decBuf bytes.Buffer
	if err := dl.WriteJSON(&decBuf); err != nil {
		t.Fatal(err)
	}
	writeFile(FileDecisions, decBuf.Bytes())
	reg := metrics.NewRegistry()
	reg.Counter(core.MetricSubmitted, "sessions submitted",
		metrics.Labels{"domain": "0"}).Inc()
	var mBuf bytes.Buffer
	if err := reg.WriteJSON(&mBuf); err != nil {
		t.Fatal(err)
	}
	writeFile(FileMetrics, mBuf.Bytes())

	n, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Trace) != 2 || len(n.Sketches) != 1 || len(n.Decisions) != 1 {
		t.Fatalf("loaded %d trace / %d sketches / %d decisions",
			len(n.Trace), len(n.Sketches), len(n.Decisions))
	}
	f := Collect([]NodeData{n})
	if len(f.Sessions) != 1 || f.Sessions[0].Task != "t1" {
		t.Fatalf("sessions = %+v", f.Sessions)
	}
	if len(f.Domains) != 1 || f.Domains[0].Submitted != 1 {
		t.Fatalf("domains = %+v", f.Domains)
	}

	// A directory with no documents loads as an empty node.
	empty, err := LoadDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Trace) != 0 || len(empty.Sketches) != 0 {
		t.Fatalf("empty dir loaded data: %+v", empty)
	}
}

// TestRenderSmoke renders a populated fleet without panicking and with
// the headline sections present.
func TestRenderSmoke(t *testing.T) {
	set := stats.NewSet(0, 0, 0)
	set.Observe(stats.SketchAllocLatency, 0, 0.001)
	f := Collect([]NodeData{{
		Name:     "a",
		Sketches: set.Export(0),
		Trace: []trace.Event{
			ev(1, "0x9", 0, 0, "session", "b", map[string]any{"task": "t"}),
			ev(2, "0x9", 1, 0, "session", "e", nil),
		},
		Decisions: []core.Decision{{Action: core.DecisionAdmit, Task: "t"}},
	}})
	var buf bytes.Buffer
	Render(&buf, f)
	out := buf.String()
	for _, want := range []string{"SKETCH", "SESSIONS", "1 cross-node", "DECISIONS"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
