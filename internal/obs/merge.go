package obs

import (
	"encoding/json"
	"sort"

	"repro/internal/trace"
)

// MergeTraces folds per-node trace streams into one deterministically
// ordered stream. The order is a total order over the event fields —
// timestamp, span ID, domain, node, phase, name, category, scope, then
// canonical args JSON — so any permutation of the same inputs merges to
// byte-identical output, which is what the stitching determinism tests
// pin down. Events for the same span ID interleave by time across
// nodes: that interleaving is the stitched cross-node session.
func MergeTraces(traces ...[]trace.Event) []trace.Event {
	type keyed struct {
		e trace.Event
		k string
	}
	var all []keyed
	for _, t := range traces {
		for _, e := range t {
			all = append(all, keyed{e: e, k: orderKey(e)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].e.TS != all[j].e.TS {
			return all[i].e.TS < all[j].e.TS
		}
		return all[i].k < all[j].k
	})
	// A fleet view can see the same event twice (one node scraped under
	// two names, repeated scrapes merged); identical adjacent events
	// collapse so the merge is idempotent.
	out := make([]trace.Event, 0, len(all))
	for i, ke := range all {
		if i > 0 && ke.e.TS == all[i-1].e.TS && ke.k == all[i-1].k {
			continue
		}
		out = append(out, ke.e)
	}
	return out
}

// orderKey renders the non-timestamp fields of an event into one
// comparable string. encoding/json writes map keys sorted, so args
// serialize canonically.
func orderKey(e trace.Event) string {
	b, _ := json.Marshal(struct {
		ID    string         `json:"id"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Phase string         `json:"ph"`
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Scope string         `json:"s"`
		Dur   int64          `json:"dur"`
		Args  map[string]any `json:"args"`
	}{e.ID, e.PID, e.TID, e.Phase, e.Name, e.Cat, e.Scope, e.Dur, e.Args})
	return string(b)
}

// SessionTrack summarizes one async span (one task session) in a merged
// trace: which nodes and domains emitted events under its span ID, its
// time extent, and its task name when any event carried one. A track
// whose Nodes has two or more entries is a stitched cross-node session.
type SessionTrack struct {
	ID      string `json:"id"`
	Task    string `json:"task,omitempty"`
	Nodes   []int  `json:"nodes"`
	Domains []int  `json:"domains"`
	FirstTS int64  `json:"first_ts"`
	LastTS  int64  `json:"last_ts"`
	Events  int    `json:"events"`
}

// SessionTracks groups a merged trace's events by span ID, cross-node
// tracks first, then by first timestamp and ID. Events without a span
// ID (transport instants, counters) are ignored.
func SessionTracks(events []trace.Event) []SessionTrack {
	byID := make(map[string]*SessionTrack)
	nodesSeen := make(map[string]map[int]bool)
	domsSeen := make(map[string]map[int]bool)
	var order []string
	for _, e := range events {
		if e.ID == "" {
			continue
		}
		t, ok := byID[e.ID]
		if !ok {
			t = &SessionTrack{ID: e.ID, FirstTS: e.TS, LastTS: e.TS}
			byID[e.ID] = t
			nodesSeen[e.ID] = make(map[int]bool)
			domsSeen[e.ID] = make(map[int]bool)
			order = append(order, e.ID)
		}
		if e.TS < t.FirstTS {
			t.FirstTS = e.TS
		}
		if e.TS > t.LastTS {
			t.LastTS = e.TS
		}
		t.Events++
		nodesSeen[e.ID][e.TID] = true
		domsSeen[e.ID][e.PID] = true
		if t.Task == "" && e.Args != nil {
			if task, ok := e.Args["task"].(string); ok {
				t.Task = task
			}
		}
	}
	out := make([]SessionTrack, 0, len(order))
	for _, id := range order {
		t := byID[id]
		t.Nodes = sortedKeys(nodesSeen[id])
		t.Domains = sortedKeys(domsSeen[id])
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := len(out[i].Nodes) >= 2, len(out[j].Nodes) >= 2
		if ci != cj {
			return ci
		}
		if out[i].FirstTS != out[j].FirstTS {
			return out[i].FirstTS < out[j].FirstTS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// sortedKeys flattens an int set in ascending order.
func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
