package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// Well-known filenames inside an observability directory, as written by
// `p2psim -obs DIR` and read by `p2ptop -dir DIR`. Each file is the
// same document the matching diagnostics endpoint serves.
const (
	FileTrace     = "trace.jsonl"
	FileSketches  = "sketches.json"
	FileDecisions = "decisions.json"
	FileMetrics   = "metrics.json"
)

// LoadDir reads one node's observability documents from a directory.
// Missing files are fine — a sim run without a tracer writes no
// trace.jsonl — but unreadable or malformed present files error.
func LoadDir(dir string) (NodeData, error) {
	n := NodeData{Name: dir}
	var md metricsDoc
	if err := loadJSON(filepath.Join(dir, FileMetrics), &md); err != nil {
		return n, err
	}
	n.Families = md.Families
	var sd sketchesDoc
	if err := loadJSON(filepath.Join(dir, FileSketches), &sd); err != nil {
		return n, err
	}
	n.Sketches = sd.Sketches
	var dd decisionsDoc
	if err := loadJSON(filepath.Join(dir, FileDecisions), &dd); err != nil {
		return n, err
	}
	n.Decisions = dd.Decisions
	f, err := os.Open(filepath.Join(dir, FileTrace))
	if err != nil {
		if os.IsNotExist(err) {
			return n, nil
		}
		return n, err
	}
	defer f.Close()
	n.Trace, err = ReadTraceJSONL(f)
	return n, err
}

// loadJSON reads path into out; a missing file leaves out untouched.
func loadJSON(path string, out any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return json.Unmarshal(b, out)
}
