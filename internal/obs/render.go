package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Render writes the fleet view as the p2ptop text dashboard: a sketch
// percentile block, one row per domain, the transport drop reasons, the
// cross-node session tracks, and the tail of the decision audit.
func Render(w io.Writer, f *Fleet) {
	errs := 0
	for _, n := range f.Nodes {
		if n.Err != nil {
			errs++
		}
	}
	fmt.Fprintf(w, "p2ptop — %d node(s)", len(f.Nodes))
	if errs > 0 {
		fmt.Fprintf(w, ", %d scrape error(s)", errs)
	}
	if f.SketchesSkipped > 0 {
		fmt.Fprintf(w, ", %d sketch export(s) skipped", f.SketchesSkipped)
	}
	fmt.Fprintln(w)

	if len(f.Sketches) > 0 {
		fmt.Fprintf(w, "\n%-30s %10s %12s %12s %12s\n", "SKETCH", "COUNT", "P50", "P95", "P99")
		for _, j := range f.Sketches {
			s, err := stats.Import(j)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "%-30s %10d %12.6f %12.6f %12.6f\n",
				j.Name, s.Count(), s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99))
		}
	}

	if len(f.Domains) > 0 {
		fmt.Fprintf(w, "\n%6s %5s %6s %6s %6s %6s %6s %6s %6s %6s %6s %6s\n",
			"DOMAIN", "PEERS", "SUBMIT", "ADMIT", "REJECT", "REDIR",
			"DONE", "ABORT", "REPAIR", "MIGR", "FAILOV", "MISS%")
		for _, d := range f.Domains {
			fmt.Fprintf(w, "%6d %5d %6d %6d %6d %6d %6d %6d %6d %6d %6d %6.2f\n",
				d.Domain, d.Peers, d.Submitted, d.Admitted, d.Rejected, d.Redirected,
				d.Completed, d.Aborted, d.Repairs, d.Migrations, d.Failovers,
				100*d.MissRate)
		}
	}

	if len(f.Drops) > 0 {
		reasons := make([]string, 0, len(f.Drops))
		for r := range f.Drops {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Fprintf(w, "\nDROPS")
		for _, r := range reasons {
			fmt.Fprintf(w, "  %s=%d", r, f.Drops[r])
		}
		fmt.Fprintln(w)
	}

	cross := f.CrossNode()
	fmt.Fprintf(w, "\nSESSIONS  %d track(s), %d cross-node\n", len(f.Sessions), len(cross))
	const maxTracks = 10
	for i, s := range cross {
		if i == maxTracks {
			fmt.Fprintf(w, "  … %d more\n", len(cross)-maxTracks)
			break
		}
		fmt.Fprintf(w, "  %s %-10s nodes=%v domains=%v span=%.3fms events=%d\n",
			s.ID, s.Task, s.Nodes, s.Domains, float64(s.LastTS-s.FirstTS)/1000, s.Events)
	}

	if len(f.Decisions) > 0 {
		const tail = 8
		start := len(f.Decisions) - tail
		if start < 0 {
			start = 0
		}
		fmt.Fprintf(w, "\nDECISIONS  %d shown of %d\n", len(f.Decisions)-start, len(f.Decisions))
		for _, d := range f.Decisions[start:] {
			fmt.Fprintf(w, "  %10d d%d n%-3d %-9s %-8s", d.TSMicros, d.Domain, d.Node, d.Action, d.Task)
			if d.Reason != "" {
				fmt.Fprintf(w, " %s", d.Reason)
			}
			if d.UtilityDelta != 0 {
				fmt.Fprintf(w, " Δu=%+.4f", d.UtilityDelta)
			}
			if len(d.Candidates) > 0 {
				fmt.Fprintf(w, " considered=%v", d.Candidates)
			}
			fmt.Fprintln(w)
		}
	}
}
