package live

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/proto"
	"repro/internal/sim"
)

func TestWireV2FrameRoundTrip(t *testing.T) {
	var scratch []byte
	in := wireMsg{From: 3, To: 7, Payload: proto.HeartbeatReq{Seq: 42, Backup: 1}}
	frame, err := appendFrameV2(nil, in, DefaultMaxFrame, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	body, err := readFrameV2(bufio.NewReader(bytes.NewReader(frame)), DefaultMaxFrame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if body[0] != frameData {
		t.Fatalf("frame kind = %#x, want frameData", body[0])
	}
	out, err := decodeFrameV2Data(body)
	if err != nil {
		t.Fatal(err)
	}
	if out.From != 3 || out.To != 7 || out.Payload.(proto.HeartbeatReq).Seq != 42 {
		t.Fatalf("round trip mangled message: %#v", out)
	}
}

func TestWireV2GobFallbackRoundTrip(t *testing.T) {
	// note is not in the codec's core set, so the frame must degrade to
	// a self-contained gob body and still round-trip.
	var scratch []byte
	in := wireMsg{From: 1, To: 2, Payload: note{S: "fallback"}}
	frame, err := appendFrameV2(nil, in, DefaultMaxFrame, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	body, err := readFrameV2(bufio.NewReader(bytes.NewReader(frame)), DefaultMaxFrame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if body[0] != frameDataGob {
		t.Fatalf("frame kind = %#x, want frameDataGob", body[0])
	}
	out, err := decodeFrame(body[1:])
	if err != nil {
		t.Fatal(err)
	}
	if out.From != 1 || out.To != 2 || out.Payload.(note).S != "fallback" {
		t.Fatalf("round trip mangled message: %#v", out)
	}
}

func TestWireV2CreditFrameRoundTrip(t *testing.T) {
	frame := appendCreditFrame(nil, 8192, 4<<20)
	body, err := readFrameV2(bufio.NewReader(bytes.NewReader(frame)), maxCreditFrame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if body[0] != frameCredit {
		t.Fatalf("frame kind = %#x, want frameCredit", body[0])
	}
	msgs, bts, err := decodeCreditFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if msgs != 8192 || bts != 4<<20 {
		t.Fatalf("credit round trip = (%d, %d), want (8192, %d)", msgs, bts, 4<<20)
	}
}

func TestWireV2EncodeRejectsOversized(t *testing.T) {
	var scratch []byte
	_, err := appendFrameV2(nil, wireMsg{Payload: proto.TaskReject{Reason: string(make([]byte, 4096))}}, 64, &scratch)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("err = %v, want errFrameTooLarge", err)
	}
}

func TestWireV2ReadRejectsOversizedDeclaration(t *testing.T) {
	hdr := binary.AppendUvarint(nil, 1<<40)
	_, err := readFrameV2(bufio.NewReader(bytes.NewReader(hdr)), DefaultMaxFrame, nil)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("err = %v, want errFrameTooLarge", err)
	}
}

// FuzzWireCodec feeds arbitrary byte streams through the inbound v2
// framing path (readFrameV2 + per-kind decode in a loop, as readLoopV2
// does). No input may panic, allocate what a hostile length declares,
// or wedge the reader. Frames that decode to a core message must also
// satisfy the codec's round-trip stability property: re-encoding the
// decoded message and decoding it again yields byte-identical bytes.
func FuzzWireCodec(f *testing.F) {
	var scratch []byte
	seed := func(m env.Message) {
		frame, err := appendFrameV2(nil, wireMsg{From: 1, To: 2, Payload: m}, DefaultMaxFrame, &scratch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)/2]) // truncation
	}
	// Every kind in the core set, zero-valued, plus richer shapes for
	// the hot-path messages and the gob fallback.
	for _, m := range []env.Message{
		proto.Join{}, proto.JoinRedirect{}, proto.JoinAccept{}, proto.BecomeRM{},
		proto.Leave{}, proto.HeartbeatReq{}, proto.HeartbeatAck{}, proto.ProfileUpdate{},
		proto.BackupSync{}, proto.TakeoverAnnounce{}, proto.TaskSubmit{}, proto.TaskReject{},
		proto.GraphCompose{}, proto.ComposeAck{}, proto.SessionStart{}, proto.Chunk{},
		proto.SessionAbort{}, proto.SessionEnd{}, proto.GossipDigest{}, proto.GossipSummaries{},
		proto.HeartbeatReq{Seq: 1 << 40, Backup: 3},
		proto.Chunk{TaskID: "t", Generation: 1, Index: 9, SizeKBv: 96.5, Deadline: 1, Emitted: 2},
		proto.GossipDigest{From: proto.RMRef{Domain: 1, RM: 2}, Versions: map[proto.DomainID]uint64{1: 4, 9: 2}},
		note{S: "gob fallback"},
	} {
		seed(m)
	}
	f.Add(appendCreditFrame(nil, 8192, 4<<20))
	f.Add(binary.AppendUvarint(nil, 1<<40)) // hostile length declaration
	f.Add([]byte{3, frameData, 0x80, 0x80}) // truncated varint routing
	f.Add([]byte{2, frameCredit, 0xff})     // malformed credit body
	f.Add([]byte{0})                        // empty frame

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		const maxFrame = 1 << 16
		// Every iteration consumes at least the length uvarint's first
		// byte, so the loop is bounded by len(data); cap it as a guard.
		for i := 0; i <= len(data)+1; i++ {
			body, err := readFrameV2(br, maxFrame, buf)
			if err != nil {
				return // stream over or unrecoverable: readLoop closes
			}
			buf = body
			if len(body) == 0 {
				return // readLoopV2 closes on an empty frame
			}
			switch body[0] {
			case frameData:
				wm, err := decodeFrameV2Data(body)
				if err != nil {
					continue // errors here keep the connection
				}
				enc1, ok := proto.AppendMessage(nil, wm.Payload)
				if !ok {
					t.Fatalf("decoded %T but cannot re-encode it", wm.Payload)
				}
				m2, err := proto.DecodeMessage(enc1)
				if err != nil {
					t.Fatalf("re-encoded %T does not decode: %v", wm.Payload, err)
				}
				enc2, _ := proto.AppendMessage(nil, m2)
				if !bytes.Equal(enc1, enc2) {
					t.Fatalf("%T: re-encoding is not byte-stable", wm.Payload)
				}
			case frameDataGob:
				decodeFrame(body[1:])
			case frameCredit:
				decodeCreditFrame(body)
			}
		}
		t.Fatalf("reader failed to make progress on %d bytes", len(data))
	})
}

// TestWireInteropV1V2Session runs the real protocol stack across two
// runtimes speaking different wire dialects: the founder's transport is
// pinned to the legacy v1 gob framing while the joiners' transport
// speaks v2. Join, heartbeat and profile traffic must flow cleanly in
// both directions — the mixed-fleet upgrade scenario.
func TestWireInteropV1V2Session(t *testing.T) {
	proto.RegisterMessages()
	cfg := core.DefaultConfig()
	cfg.HeartbeatPeriod = 30 * sim.Millisecond
	cfg.HeartbeatMisses = 3
	cfg.ProfilePeriod = 50 * sim.Millisecond
	cfg.BackupSyncPeriod = 60 * sim.Millisecond
	cfg.GossipPeriod = 0
	cfg.AdaptPeriod = 0

	eventsA := &core.Events{}
	eventsB := &core.Events{}
	rtA := NewRuntime(70)
	rtB := NewRuntime(71)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	tcfgA := fastTransport()
	tcfgA.WireVersion = 1 // legacy node
	trA := NewTCPTransportOpts(rtA, tcfgA, nil, nil)
	trB := NewTCPTransportOpts(rtB, fastTransport(), nil, nil) // v2 node
	defer trA.Close()
	defer trB.Close()
	addrA, err := trA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trA.Register(1, addrB)
	trA.Register(2, addrB)
	trB.Register(0, addrA)

	mk := func() proto.PeerInfo {
		return proto.PeerInfo{SpeedWU: 50, BandwidthKbps: 10000, UptimeSec: 7200}
	}
	founder := core.New(cfg, mk(), env.NoNode, eventsA)
	p1 := core.New(cfg, mk(), 0, eventsB)
	p2 := core.New(cfg, mk(), 0, eventsB)
	rtA.AddNodeWithID(0, founder)
	rtB.AddNodeWithID(1, p1)
	rtB.AddNodeWithID(2, p2)

	peersB := []*core.Peer{p1, p2}
	waitFor(t, 10*time.Second, func() bool {
		joined := 0
		ok := false
		rtA.Call(0, func() { ok = founder.Joined() })
		if ok {
			joined++
		}
		for i, p := range peersB {
			p := p
			ok := false
			rtB.Call(env.NodeID(i+1), func() { ok = p.Joined() })
			if ok {
				joined++
			}
		}
		return joined == 3
	})

	// Let heartbeats and profile updates cross the version boundary for
	// a while, then require both directions decoded everything cleanly.
	time.Sleep(300 * time.Millisecond)
	stA, stB := trA.Stats(), trB.Stats()
	if stA.FramesRx == 0 || stB.FramesRx == 0 {
		t.Fatalf("no traffic in one direction: A rx %d, B rx %d", stA.FramesRx, stB.FramesRx)
	}
	if stA.DecodeErrors+stA.FrameErrors+stB.DecodeErrors+stB.FrameErrors != 0 {
		t.Fatalf("mixed-version session corrupted frames: A %+v, B %+v", stA, stB)
	}
	// The v1 sender must never have been credit-capped: a v1 receiver
	// grants nothing, and grants only restrict once received.
	if stA.Drops["no_credit"]+stB.Drops["no_credit"] != 0 {
		t.Fatalf("interop session shed on credits: A %+v, B %+v", stA, stB)
	}
}

// TestCreditExhaustionShedsAtSource scripts the receiving side of a v2
// connection by hand: it grants a tiny window, lets the sender exhaust
// it, and requires the overflow to shed at the source with reason
// no_credit. A later grant must reopen the window.
func TestCreditExhaustionShedsAtSource(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	grantMore := make(chan struct{})
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		if b, err := br.ReadByte(); err != nil || b != wireV2Preamble {
			return
		}
		c.Write(appendCreditFrame(nil, 2, 1<<20))
		go io.Copy(io.Discard, br) // drain data frames so writes never block
		<-grantMore
		c.Write(appendCreditFrame(nil, 100, 1<<20))
		<-grantMore // hold the connection open until the test ends
	}()
	defer close(grantMore)

	rt := NewRuntime(72)
	defer rt.Shutdown()
	tr := NewTCPTransportOpts(rt, fastTransport(), nil, nil)
	defer tr.Close()
	addr := ln.Addr().String()
	tr.Register(9, addr)

	// First send spawns the supervisor; before the grant lands the
	// window is unlimited, so it goes through.
	if err := tr.send(0, 9, proto.HeartbeatReq{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		tr.mu.Lock()
		s := tr.sups[addr]
		tr.mu.Unlock()
		return s != nil && s.creditOn.Load()
	})

	// The window holds 2 messages; the third must shed with no_credit.
	sent, shed := 0, 0
	for i := 1; i <= 8 && shed == 0; i++ {
		if err := tr.send(0, 9, proto.HeartbeatReq{Seq: uint64(i)}); err == nil {
			sent++
		} else if errors.Is(err, errNoCredit) {
			shed++
		} else {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if sent != 2 || shed != 1 {
		t.Fatalf("admitted %d and shed %d against a 2-message window, want 2 and 1", sent, shed)
	}
	if got := tr.Stats().Drops["no_credit"]; got != 1 {
		t.Fatalf("no_credit drops = %d, want 1", got)
	}

	// A replenishing grant reopens the window and sends flow again.
	grantMore <- struct{}{}
	waitFor(t, 2*time.Second, func() bool {
		return tr.send(0, 9, proto.HeartbeatReq{Seq: 99}) == nil
	})
}

// TestCoalescingBatchesBurst pushes a burst through one supervisor and
// requires the flush loop to pack multiple frames per write: the batch
// count must come in under the frame count, and every message must
// still arrive.
func TestCoalescingBatchesBurst(t *testing.T) {
	rtA := NewRuntime(73)
	rtB := NewRuntime(74)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	trA := NewTCPTransportOpts(rtA, fastTransport(), nil, nil)
	trB := NewTCPTransportOpts(rtB, fastTransport(), nil, nil)
	defer trA.Close()
	defer trB.Close()
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trA.Register(1, addrB)

	b := &collector{}
	rtB.AddNodeWithID(1, b)
	a := &collector{}
	rtA.AddNodeWithID(0, a)

	const burst = 300
	rtA.Call(0, func() {
		for i := 0; i < burst; i++ {
			a.ctx.Send(1, proto.HeartbeatReq{Seq: uint64(i)})
		}
	})
	waitFor(t, 5*time.Second, func() bool { return b.count() == burst })

	st := trA.Stats()
	if st.Sent != burst {
		t.Fatalf("sent %d frames, want %d", st.Sent, burst)
	}
	if st.Batches == 0 || st.Batches >= st.Sent {
		t.Fatalf("batches = %d for %d frames; a burst must coalesce", st.Batches, st.Sent)
	}
	t.Logf("%d frames in %d writes (%.1f frames/write)",
		st.Sent, st.Batches, float64(st.Sent)/float64(st.Batches))
}
