package live

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/env"
	"repro/internal/metrics"
)

// DiagnosticsServer is the live runtime's HTTP side channel: Prometheus
// and JSON metrics, a health probe, and net/http/pprof. It runs on its
// own listener goroutine and never touches node state — everything it
// reads is lock-free snapshots.
type DiagnosticsServer struct {
	srv  *http.Server
	ln   net.Listener
	addr string
}

// DiagSources supplies the optional observability payloads served by the
// diagnostics endpoint. Each writer renders one document; nil writers
// fall back to an empty-but-valid payload. The funcs come from the
// facade so this package needs no view of the sketch, decision, or trace
// types behind them.
type DiagSources struct {
	// BeforeScrape, when non-nil, runs at the top of every /metrics and
	// /metrics.json request — the hook where scrape-time gauges (tracer
	// drop counts, open sessions) are refreshed.
	BeforeScrape func()
	// Sketches writes the /sketches JSON document (the node's windowed
	// quantile sketches, see internal/stats).
	Sketches func(io.Writer) error
	// Decisions writes the /decisions JSON document (the RM audit ring).
	Decisions func(io.Writer) error
	// Trace writes the /trace JSONL document (the node's span events).
	Trace func(io.Writer) error
	// DHT writes the /dht JSON document (per-hosted-peer discovery
	// backend snapshots: routing table, store, directory cache).
	DHT func(io.Writer) error
}

// ServeDiagnostics starts the diagnostics endpoint on addr ("host:port",
// ":0" picks a free port). The registry may be nil, in which case
// /metrics serves an empty (but valid) exposition. Routes:
//
//	/metrics         Prometheus text format
//	/metrics.json    the same registry as JSON
//	/healthz         {"status":"ok","nodes":N,...}
//	/sketches        windowed quantile sketches as JSON (mergeable)
//	/decisions       the RM decision audit ring as JSON
//	/trace           span events as Chrome trace-event JSONL
//	/dht             discovery backend snapshots per hosted peer
//	/faults          live fault injection: GET lists rules+stats,
//	                 POST sets a rule (?from=&to=&drop=&dup=&delay=&sever=),
//	                 DELETE heals one pair or, without params, all
//	/record          flight recorder: GET reports status, POST ?dir=
//	                 starts recording, DELETE stops and flushes
//	/debug/pprof/*   standard Go profiling endpoints
func (rt *Runtime) ServeDiagnostics(addr string, reg *metrics.Registry) (*DiagnosticsServer, error) {
	return rt.ServeDiagnosticsOpts(addr, reg, DiagSources{})
}

// ServeDiagnosticsOpts is ServeDiagnostics with explicit observability
// sources backing the /sketches, /decisions, and /trace routes.
func (rt *Runtime) ServeDiagnosticsOpts(addr string, reg *metrics.Registry, src DiagSources) (*DiagnosticsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if src.BeforeScrape != nil {
			src.BeforeScrape()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if src.BeforeScrape != nil {
			src.BeforeScrape()
		}
		w.Header().Set("Content-Type", "application/json")
		if reg != nil {
			reg.WriteJSON(w)
		} else {
			w.Write([]byte("{\"families\":[]}\n"))
		}
	})
	mux.HandleFunc("/sketches", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if src.Sketches != nil {
			src.Sketches(w)
		} else {
			w.Write([]byte("{\"sketches\":[]}\n"))
		}
	})
	mux.HandleFunc("/decisions", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if src.Decisions != nil {
			src.Decisions(w)
		} else {
			w.Write([]byte("{\"total\":0,\"decisions\":[]}\n"))
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if src.Trace != nil {
			src.Trace(w)
		}
	})
	mux.HandleFunc("/dht", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if src.DHT != nil {
			src.DHT(w)
		} else {
			w.Write([]byte("{\"nodes\":[]}\n"))
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"nodes":          rt.NodeCount(),
			"uptime_seconds": rt.Uptime().Seconds(),
			"dropped":        rt.Dropped(),
		})
	})
	mux.HandleFunc("/faults", rt.handleFaults)
	mux.HandleFunc("/record", rt.handleRecord)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds := &DiagnosticsServer{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		addr: ln.Addr().String(),
	}
	go ds.srv.Serve(ln)
	return ds, nil
}

// handleFaults is the live fault-injection control surface. GET returns
// the installed rules and impairment stats; POST installs one rule from
// query parameters (from/to default to the AnyNode wildcard, delay is a
// Go duration string); DELETE heals one pair, or every rule when no
// parameters are given.
func (rt *Runtime) handleFaults(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch r.Method {
	case http.MethodGet:
		fi := rt.FaultInjector()
		rules := fi.Rules()
		if rules == nil {
			rules = []FaultRuleEntry{}
		}
		json.NewEncoder(w).Encode(map[string]any{
			"rules": rules,
			"stats": fi.Stats(),
		})
	case http.MethodPost, http.MethodPut:
		q := r.URL.Query()
		from, err1 := faultQueryNode(q.Get("from"))
		to, err2 := faultQueryNode(q.Get("to"))
		drop, err3 := faultQueryFloat(q.Get("drop"))
		dup, err4 := faultQueryFloat(q.Get("dup"))
		var delay time.Duration
		var err5 error
		if s := q.Get("delay"); s != "" {
			delay, err5 = time.ParseDuration(s)
		}
		sever := q.Get("sever") == "true" || q.Get("sever") == "1"
		if err := errors.Join(err1, err2, err3, err4, err5); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		rt.EnsureFaultInjector().Set(from, to,
			FaultRule{Drop: drop, Dup: dup, Delay: delay, Sever: sever})
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	case http.MethodDelete:
		fi := rt.FaultInjector()
		if fi == nil {
			json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
			return
		}
		q := r.URL.Query()
		if q.Get("from") == "" && q.Get("to") == "" {
			// Heal everything atomically and report how many rules went.
			cleared := fi.Clear()
			json.NewEncoder(w).Encode(map[string]any{"status": "ok", "cleared": cleared})
			return
		}
		from, err1 := faultQueryNode(q.Get("from"))
		to, err2 := faultQueryNode(q.Get("to"))
		if err := errors.Join(err1, err2); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		fi.Heal(from, to)
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// handleRecord is the flight-recorder control surface, backed by the
// facade's RecordControl hook. GET reports status; POST starts a
// recording into ?dir=; DELETE stops it and flushes the log. Without an
// installed hook (runtime built outside the facade) every method reports
// the recorder as unavailable.
func (rt *Runtime) handleRecord(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	ctl := rt.recordControl()
	if ctl == nil {
		w.WriteHeader(http.StatusNotImplemented)
		json.NewEncoder(w).Encode(map[string]string{"error": "no record control installed"})
		return
	}
	switch r.Method {
	case http.MethodGet:
		json.NewEncoder(w).Encode(ctl.RecordStatus())
	case http.MethodPost, http.MethodPut:
		dir := r.URL.Query().Get("dir")
		if dir == "" {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "missing ?dir="})
			return
		}
		if err := ctl.StartRecording(dir); err != nil {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		json.NewEncoder(w).Encode(ctl.RecordStatus())
	case http.MethodDelete:
		if err := ctl.StopRecording(); err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		json.NewEncoder(w).Encode(ctl.RecordStatus())
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// faultQueryNode parses a node ID query value; empty or "*" is the
// AnyNode wildcard.
func faultQueryNode(s string) (env.NodeID, error) {
	if s == "" || s == "*" {
		return AnyNode, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return AnyNode, fmt.Errorf("bad node id %q", s)
	}
	return env.NodeID(n), nil
}

// faultQueryFloat parses a probability query value; empty means zero.
func faultQueryFloat(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 || v > 1 {
		return 0, fmt.Errorf("bad probability %q", s)
	}
	return v, nil
}

// Addr returns the bound address (useful with ":0").
func (ds *DiagnosticsServer) Addr() string { return ds.addr }

// Close stops the HTTP server and its listener.
func (ds *DiagnosticsServer) Close() error { return ds.srv.Close() }
