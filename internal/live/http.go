package live

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// DiagnosticsServer is the live runtime's HTTP side channel: Prometheus
// and JSON metrics, a health probe, and net/http/pprof. It runs on its
// own listener goroutine and never touches node state — everything it
// reads is lock-free snapshots.
type DiagnosticsServer struct {
	srv  *http.Server
	ln   net.Listener
	addr string
}

// ServeDiagnostics starts the diagnostics endpoint on addr ("host:port",
// ":0" picks a free port). The registry may be nil, in which case
// /metrics serves an empty (but valid) exposition. Routes:
//
//	/metrics         Prometheus text format
//	/metrics.json    the same registry as JSON
//	/healthz         {"status":"ok","nodes":N,...}
//	/debug/pprof/*   standard Go profiling endpoints
func (rt *Runtime) ServeDiagnostics(addr string, reg *metrics.Registry) (*DiagnosticsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg != nil {
			reg.WriteJSON(w)
		} else {
			w.Write([]byte("{\"families\":[]}\n"))
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"nodes":          rt.NodeCount(),
			"uptime_seconds": rt.Uptime().Seconds(),
			"dropped":        rt.Dropped(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds := &DiagnosticsServer{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		addr: ln.Addr().String(),
	}
	go ds.srv.Serve(ln)
	return ds, nil
}

// Addr returns the bound address (useful with ":0").
func (ds *DiagnosticsServer) Addr() string { return ds.addr }

// Close stops the HTTP server and its listener.
func (ds *DiagnosticsServer) Close() error { return ds.srv.Close() }
