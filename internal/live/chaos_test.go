package live

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/sim"
)

// TestChaosFailoverAcrossTransports runs the real protocol stack across
// two live runtimes joined by TCP, then severs the RM's link mid-session
// with the fault injectors on both sides. The backup on the surviving
// runtime must detect the missed heartbeats and take over within the
// deadline — the live analogue of the simulated RM-crash experiments.
func TestChaosFailoverAcrossTransports(t *testing.T) {
	proto.RegisterMessages()
	cfg := core.DefaultConfig()
	cfg.HeartbeatPeriod = 30 * sim.Millisecond
	cfg.HeartbeatMisses = 3
	cfg.ProfilePeriod = 50 * sim.Millisecond
	cfg.BackupSyncPeriod = 60 * sim.Millisecond
	cfg.GossipPeriod = 0
	cfg.AdaptPeriod = 0

	eventsA := &core.Events{}
	eventsB := &core.Events{}
	rtA := NewRuntime(60)
	rtB := NewRuntime(61)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	tcfg := fastTransport()
	trA := NewTCPTransportOpts(rtA, tcfg, nil, nil)
	trB := NewTCPTransportOpts(rtB, tcfg, nil, nil)
	defer trA.Close()
	defer trB.Close()
	addrA, err := trA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trA.Register(1, addrB)
	trA.Register(2, addrB)
	trB.Register(0, addrA)

	mk := func() proto.PeerInfo {
		return proto.PeerInfo{SpeedWU: 50, BandwidthKbps: 10000, UptimeSec: 7200}
	}
	// The founder (and so the RM) lives on runtime A; both candidate
	// backups live on runtime B and bootstrap through TCP.
	founder := core.New(cfg, mk(), env.NoNode, eventsA)
	p1 := core.New(cfg, mk(), 0, eventsB)
	p2 := core.New(cfg, mk(), 0, eventsB)
	rtA.AddNodeWithID(0, founder)
	rtB.AddNodeWithID(1, p1)
	rtB.AddNodeWithID(2, p2)

	peersB := []*core.Peer{p1, p2}
	waitFor(t, 10*time.Second, func() bool {
		joined := 0
		ok := false
		rtA.Call(0, func() { ok = founder.Joined() })
		if ok {
			joined++
		}
		for i, p := range peersB {
			p := p
			ok := false
			rtB.Call(env.NodeID(i+1), func() { ok = p.Joined() })
			if ok {
				joined++
			}
		}
		return joined == 3
	})

	// Let the backup get at least one state sync, then cut every link
	// touching the RM — on both runtimes, so neither direction survives.
	time.Sleep(250 * time.Millisecond)
	rtA.EnsureFaultInjector().Sever(0, AnyNode)
	rtB.EnsureFaultInjector().Sever(0, AnyNode)

	start := time.Now()
	waitFor(t, 10*time.Second, func() bool {
		for i, p := range peersB {
			p := p
			is := false
			rtB.Call(env.NodeID(i+1), func() { is = p.IsRM() })
			if is {
				return true
			}
		}
		return false
	})
	t.Logf("takeover after %v", time.Since(start).Truncate(time.Millisecond))
	if got := eventsB.Snapshot().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if drops := trA.Stats().Drops["fault"] + trB.Stats().Drops["fault"]; drops == 0 {
		t.Fatal("severing dropped no transport traffic; the link was not exercised")
	}
}

// TestChaosBlackholedPeerSendNonBlocking pins the tentpole guarantee:
// with a dial target that never completes, an actor's Send must return
// immediately (messages shed as queue_full once the supervisor queue
// fills) and the drop-reason counters must be visible in /metrics.
func TestChaosBlackholedPeerSendNonBlocking(t *testing.T) {
	rt := NewRuntime(62)
	defer rt.Shutdown()
	reg := metrics.NewRegistry()
	unblock := make(chan struct{})
	cfg := fastTransport()
	cfg.QueueDepth = 8
	cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		<-unblock // a blackhole: the dial never completes while the test runs
		return nil, errors.New("blackholed")
	}
	tr := NewTCPTransportOpts(rt, cfg, reg, nil)
	defer tr.Close()
	defer close(unblock)           // runs before tr.Close: frees the parked dialer
	tr.Register(99, "192.0.2.1:9") // TEST-NET; the dial hook intercepts anyway

	a := &collector{}
	id := rt.AddNode(a)
	const sends = 200
	start := time.Now()
	rt.Call(id, func() {
		for i := 0; i < sends; i++ {
			a.ctx.Send(99, note{S: "into the void"})
		}
	})
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("%d sends to a blackholed peer took %v; Send must not block on the socket", sends, elapsed)
	}
	st := tr.Stats()
	if st.Drops["queue_full"] == 0 {
		t.Fatalf("no queue_full drops after %d sends into a %d-deep queue: %+v", sends, cfg.QueueDepth, st)
	}

	ds, err := rt.ServeDiagnostics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `live_transport_dropped_total{reason="queue_full"}`) {
		t.Fatalf("/metrics missing drop-reason counter:\n%s", body)
	}
}

// TestChaosSeveredLinkHeals severs a TCP pair via the injector, confirms
// loss, heals it, and confirms delivery resumes on the same connection.
func TestChaosSeveredLinkHeals(t *testing.T) {
	rtA := NewRuntime(63)
	rtB := NewRuntime(64)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	trA := NewTCPTransportOpts(rtA, fastTransport(), nil, nil)
	trB := NewTCPTransport(rtB)
	defer trA.Close()
	defer trB.Close()
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := &collector{}
	b := &collector{}
	rtA.AddNodeWithID(0, a)
	rtB.AddNodeWithID(1, b)
	trA.Register(1, addrB)

	rtA.Call(0, func() { a.ctx.Send(1, note{S: "up"}) })
	waitFor(t, 2*time.Second, func() bool { return b.count() == 1 })

	rtA.EnsureFaultInjector().Sever(0, 1)
	rtA.Call(0, func() { a.ctx.Send(1, note{S: "cut"}) })
	waitFor(t, 2*time.Second, func() bool { return trA.Stats().Drops["fault"] >= 1 })
	if b.count() != 1 {
		t.Fatal("severed link delivered")
	}

	rtA.FaultInjector().Heal(0, 1)
	rtA.FaultInjector().Heal(1, 0)
	waitFor(t, 2*time.Second, func() bool {
		rtA.Call(0, func() { a.ctx.Send(1, note{S: "healed"}) })
		return b.count() >= 2
	})
}
