package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/proto"
	"repro/internal/sim"
)

// collector is a trivial actor recording everything it receives.
type collector struct {
	mu      sync.Mutex
	ctx     env.Context
	msgs    []env.Message
	stopped atomic.Bool
}

func (c *collector) Init(ctx env.Context) { c.ctx = ctx }
func (c *collector) Stop()                { c.stopped.Store(true) }
func (c *collector) Receive(from env.NodeID, m env.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}
func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

type note struct{ S string }

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestInProcessDelivery(t *testing.T) {
	rt := NewRuntime(1)
	defer rt.Shutdown()
	a := &collector{}
	b := &collector{}
	ida := rt.AddNode(a)
	idb := rt.AddNode(b)
	rt.Call(ida, func() { a.ctx.Send(idb, note{S: "hello"}) })
	waitFor(t, time.Second, func() bool { return b.count() == 1 })
	b.mu.Lock()
	got := b.msgs[0].(note).S
	b.mu.Unlock()
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestTimers(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()
	a := &collector{}
	id := rt.AddNode(a)
	var fired atomic.Int32
	rt.Call(id, func() {
		a.ctx.After(5*sim.Millisecond, func() { fired.Add(1) })
		cancel := a.ctx.After(5*sim.Millisecond, func() { fired.Add(100) })
		cancel()
	})
	waitFor(t, time.Second, func() bool { return fired.Load() > 0 })
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatalf("fired = %d, want 1 (cancelled timer must not fire)", fired.Load())
	}
}

func TestStopCallsActorStop(t *testing.T) {
	rt := NewRuntime(3)
	a := &collector{}
	id := rt.AddNode(a)
	rt.Stop(id)
	if !a.stopped.Load() {
		t.Fatal("Stop hook did not run")
	}
	// Idempotent.
	rt.Stop(id)
}

func TestSendToUnknownDrops(t *testing.T) {
	rt := NewRuntime(4)
	defer rt.Shutdown()
	a := &collector{}
	id := rt.AddNode(a)
	rt.Call(id, func() { a.ctx.Send(99, note{}) })
	waitFor(t, time.Second, func() bool { return rt.Dropped() == 1 })
}

func TestDuplicateIDPanics(t *testing.T) {
	rt := NewRuntime(5)
	defer rt.Shutdown()
	rt.AddNodeWithID(7, &collector{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ID accepted")
		}
	}()
	rt.AddNodeWithID(7, &collector{})
}

func TestTCPTransportRoundTrip(t *testing.T) {
	proto.RegisterMessages()
	// Two runtimes in one process connected by real TCP.
	rtA := NewRuntime(6)
	rtB := NewRuntime(7)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	trA := NewTCPTransport(rtA)
	trB := NewTCPTransport(rtB)
	defer trA.Close()
	defer trB.Close()
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, err := trA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := &collector{}
	b := &collector{}
	rtA.AddNodeWithID(0, a)
	rtB.AddNodeWithID(1, b)
	trA.Register(1, addrB)
	trB.Register(0, addrA)

	rtA.Call(0, func() { a.ctx.Send(1, proto.HeartbeatReq{Seq: 9, Backup: 3}) })
	waitFor(t, 2*time.Second, func() bool { return b.count() == 1 })
	b.mu.Lock()
	hb, ok := b.msgs[0].(proto.HeartbeatReq)
	b.mu.Unlock()
	if !ok || hb.Seq != 9 || hb.Backup != 3 {
		t.Fatalf("got %#v", b.msgs)
	}
	// And back.
	rtB.Call(1, func() { b.ctx.Send(0, proto.HeartbeatAck{Seq: 9}) })
	waitFor(t, 2*time.Second, func() bool { return a.count() == 1 })
}

// TestLivePeersFormDomainAndStream runs the real protocol stack on the
// live runtime: three peers over in-process mailboxes form a domain and
// complete a short transcoding session in real time.
func TestLivePeersFormDomainAndStream(t *testing.T) {
	src := media.Format{Codec: media.MPEG2, Width: 640, Height: 480, BitrateKbps: 256}
	tgt := media.Format{Codec: media.MPEG4, Width: 640, Height: 480, BitrateKbps: 64}
	tr := media.Transcoder{From: src, To: tgt}

	cfg := core.DefaultConfig()
	// Real time: keep periods short so the test is fast.
	cfg.HeartbeatPeriod = 50 * sim.Millisecond
	cfg.ProfilePeriod = 50 * sim.Millisecond
	cfg.BackupSyncPeriod = 100 * sim.Millisecond
	cfg.GossipPeriod = 0
	cfg.AdaptPeriod = 0
	cfg.DefaultChunkSec = 0.05 // 50ms chunks

	events := &core.Events{}
	rt := NewRuntime(8)
	defer rt.Shutdown()

	info := func(objects []media.Object) proto.PeerInfo {
		return proto.PeerInfo{
			SpeedWU:       50,
			BandwidthKbps: 10000,
			UptimeSec:     7200,
			Objects:       objects,
			Services:      []media.Transcoder{tr},
		}
	}
	obj := media.Object{Name: "clip", Format: src, Bytes: int64(0.5 * 256 * 1000 / 8)} // 0.5s
	founder := core.New(cfg, info([]media.Object{obj}), env.NoNode, events)
	p1 := core.New(cfg, info(nil), 0, events)
	p2 := core.New(cfg, info(nil), 0, events)
	ids := []env.NodeID{rt.AddNode(founder), rt.AddNode(p1), rt.AddNode(p2)}
	peers := []*core.Peer{founder, p1, p2}

	waitFor(t, 5*time.Second, func() bool {
		joined := 0
		for i, p := range peers {
			ok := false
			// Peer state is only safe to touch on its loop.
			p := p
			rt.Call(ids[i], func() { ok = p.Joined() })
			if ok {
				joined++
			}
		}
		return joined == 3
	})

	var taskID string
	rt.Call(2, func() {
		taskID = p2.SubmitTask(proto.TaskSpec{
			ObjectName: "clip",
			Constraint: media.Constraint{
				Codecs:         []media.Codec{media.MPEG4},
				MaxBitrateKbps: 64,
				MaxWidth:       640,
				MaxHeight:      480,
			},
			DeadlineMicros: 500_000,
			DurationSec:    0.5,
			ChunkSec:       0.05,
		})
	})
	if taskID == "" {
		t.Fatal("no task ID")
	}
	waitFor(t, 10*time.Second, func() bool { return len(events.Snapshot().Reports) == 1 })
	rep := events.Snapshot().Reports[0]
	if rep.Chunks != 10 || rep.Received != 10 {
		t.Fatalf("live session report %+v", rep)
	}
}

func TestKillSkipsStopHook(t *testing.T) {
	rt := NewRuntime(9)
	a := &collector{}
	id := rt.AddNode(a)
	rt.Kill(id)
	if a.stopped.Load() {
		t.Fatal("Kill ran the Stop hook")
	}
	// Idempotent; and Stop after Kill is a no-op.
	rt.Kill(id)
	rt.Stop(id)
}

func TestLiveRMFailover(t *testing.T) {
	// Kill the live RM; the backup must take over in real time.
	cfg := core.DefaultConfig()
	cfg.HeartbeatPeriod = 30 * sim.Millisecond
	cfg.HeartbeatMisses = 3
	cfg.ProfilePeriod = 50 * sim.Millisecond
	cfg.BackupSyncPeriod = 60 * sim.Millisecond
	cfg.GossipPeriod = 0
	cfg.AdaptPeriod = 0

	events := &core.Events{}
	rt := NewRuntime(10)
	defer rt.Shutdown()
	mk := func() proto.PeerInfo {
		return proto.PeerInfo{SpeedWU: 50, BandwidthKbps: 10000, UptimeSec: 7200}
	}
	peers := []*core.Peer{
		core.New(cfg, mk(), env.NoNode, events),
		core.New(cfg, mk(), 0, events),
		core.New(cfg, mk(), 0, events),
	}
	var ids []env.NodeID
	for _, p := range peers {
		ids = append(ids, rt.AddNode(p))
	}
	waitFor(t, 5*time.Second, func() bool {
		joined := 0
		for i, p := range peers {
			ok := false
			p := p
			rt.Call(ids[i], func() { ok = p.Joined() })
			if ok {
				joined++
			}
		}
		return joined == 3
	})
	// Give the backup a sync, then kill the RM hard.
	time.Sleep(200 * time.Millisecond)
	rt.Kill(ids[0])
	waitFor(t, 10*time.Second, func() bool {
		for i := 1; i < 3; i++ {
			is := false
			p := peers[i]
			rt.Call(ids[i], func() { is = p.IsRM() })
			if is {
				return true
			}
		}
		return false
	})
	if got := events.Snapshot().Failovers; got != 1 {
		t.Fatalf("failovers = %d", got)
	}
}
