// Package live is the real-time runtime: the same node.Peer actors that
// run under simulation execute here as goroutines with serialized
// mailboxes, real timers, and a pluggable transport — in-process channels
// within one process, TCP+gob across processes (see tcp.go). This is the
// deployable middleware, not a second implementation: protocol logic
// lives only in internal/core.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/env"
	"repro/internal/rng"
	"repro/internal/sim"
)

// MailboxDepth bounds each node's queue; sends to a full mailbox are
// dropped (the transport is best-effort, like the simulated one).
const MailboxDepth = 4096

// envelope is one unit of mailbox work: either a message or a timer
// callback.
type envelope struct {
	from env.NodeID
	msg  env.Message
	fn   func()
}

// Runtime hosts live nodes within one process.
type Runtime struct {
	start time.Time

	mu     sync.Mutex
	nodes  map[env.NodeID]*liveNode // guarded by mu
	nextID env.NodeID               // guarded by mu
	seed   *rng.Rand                // guarded by mu

	// remote, when set, carries messages addressed to nodes not hosted
	// here (the TCP transport).
	remote func(from, to env.NodeID, m env.Message) error // guarded by mu

	// Logger receives node Logf output as structured logfmt lines
	// (see logger.go); nil silences it.
	Logger *Logger

	// faults, when set, impairs in-process deliveries (drop, delay,
	// duplicate, sever) — the live mirror of netsim's loss knobs. The
	// TCP transport consults the same injector for outbound traffic.
	faults atomic.Pointer[FaultInjector]

	dropped atomic.Uint64
}

// NewRuntime creates an empty live runtime.
func NewRuntime(seed uint64) *Runtime {
	return &Runtime{
		start: time.Now(),
		nodes: make(map[env.NodeID]*liveNode),
		seed:  rng.New(seed),
	}
}

// liveNode is one hosted actor.
type liveNode struct {
	rt      *Runtime
	id      env.NodeID
	actor   env.Actor
	mailbox chan envelope
	quit    chan struct{}
	done    chan struct{}
	r       *rng.Rand
	stopped atomic.Bool
	killed  atomic.Bool
}

// AddNode hosts an actor under the next free ID and starts its loop.
func (rt *Runtime) AddNode(a env.Actor) env.NodeID {
	rt.mu.Lock()
	id := rt.nextID
	rt.nextID++
	rt.mu.Unlock()
	rt.AddNodeWithID(id, a)
	return id
}

// AddNodeWithID hosts an actor under a caller-chosen ID (distributed
// deployments assign global IDs in their address book). It panics if the
// ID is taken.
func (rt *Runtime) AddNodeWithID(id env.NodeID, a env.Actor) {
	rt.mu.Lock()
	if _, dup := rt.nodes[id]; dup {
		rt.mu.Unlock()
		panic(fmt.Sprintf("live: node ID %d already hosted", id))
	}
	n := &liveNode{
		rt:      rt,
		id:      id,
		actor:   a,
		mailbox: make(chan envelope, MailboxDepth),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		r:       rt.seed.Split(),
	}
	rt.nodes[id] = n
	if id >= rt.nextID {
		rt.nextID = id + 1
	}
	rt.mu.Unlock()
	go n.loop()
}

// node returns a hosted node.
func (rt *Runtime) node(id env.NodeID) *liveNode {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.nodes[id]
}

// Stop shuts one node down gracefully and waits for its loop to exit.
func (rt *Runtime) Stop(id env.NodeID) {
	n := rt.node(id)
	if n == nil || !n.stopped.CompareAndSwap(false, true) {
		return
	}
	close(n.quit)
	<-n.done
	rt.mu.Lock()
	delete(rt.nodes, id)
	rt.mu.Unlock()
}

// Kill terminates a node abruptly: no Stop hook runs, mirroring
// netsim.Crash. Pending mailbox work is discarded.
func (rt *Runtime) Kill(id env.NodeID) {
	n := rt.node(id)
	if n == nil {
		return
	}
	n.killed.Store(true)
	if !n.stopped.CompareAndSwap(false, true) {
		return
	}
	close(n.quit)
	<-n.done
	rt.mu.Lock()
	delete(rt.nodes, id)
	rt.mu.Unlock()
}

// Shutdown stops every hosted node.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	ids := make([]env.NodeID, 0, len(rt.nodes))
	for id := range rt.nodes {
		ids = append(ids, id)
	}
	rt.mu.Unlock()
	for _, id := range ids {
		rt.Stop(id)
	}
}

// Dropped reports messages discarded by the runtime: full mailboxes,
// sends without a route, and injections for un-hosted node IDs.
func (rt *Runtime) Dropped() uint64 { return rt.dropped.Load() }

// SetFaultInjector installs (or, with nil, removes) the fault-injection
// layer for in-process deliveries and the attached transport.
func (rt *Runtime) SetFaultInjector(fi *FaultInjector) { rt.faults.Store(fi) }

// FaultInjector returns the installed fault injector, nil when none.
func (rt *Runtime) FaultInjector() *FaultInjector { return rt.faults.Load() }

// EnsureFaultInjector returns the installed fault injector, creating
// one (seeded from the runtime's rng stream) on first use — the /faults
// diagnostics endpoint activates injection this way.
func (rt *Runtime) EnsureFaultInjector() *FaultInjector {
	if fi := rt.faults.Load(); fi != nil {
		return fi
	}
	fi := NewFaultInjector(rt.splitRand())
	if rt.faults.CompareAndSwap(nil, fi) {
		return fi
	}
	return rt.faults.Load()
}

// splitRand derives an independent rng stream from the runtime's seed
// (transport supervisors and the fault injector draw jitter from it).
func (rt *Runtime) splitRand() *rng.Rand {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.seed.Split()
}

// nowMicros is elapsed wall time since the runtime started, in the
// microsecond unit trace events use.
func (rt *Runtime) nowMicros() int64 {
	return time.Since(rt.start).Microseconds()
}

// NodeCount reports how many nodes are currently hosted.
func (rt *Runtime) NodeCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.nodes)
}

// Uptime reports how long the runtime has been running.
func (rt *Runtime) Uptime() time.Duration { return time.Since(rt.start) }

// epoch anchors Nanotime; only differences are meaningful.
var epoch = time.Now()

// Nanotime returns the real monotonic clock in nanoseconds. Live
// deployments inject it as core.Config.Nanotime so allocator costing
// (Events.AllocNanos) reflects actual CPU time; the simulation leaves
// the hook nil and stays on the virtual clock.
func Nanotime() int64 { return time.Since(epoch).Nanoseconds() }

// Inject delivers a message to a hosted node from the outside world (the
// TCP listener and tests use this). Messages addressed to node IDs not
// hosted here are counted as dropped, not silently discarded: a stale
// address-book entry or a just-stopped node shows up in Dropped and
// /healthz instead of vanishing.
func (rt *Runtime) Inject(from, to env.NodeID, m env.Message) {
	n := rt.node(to)
	if n == nil {
		rt.dropped.Add(1)
		return
	}
	n.enqueue(envelope{from: from, msg: m})
}

// Call runs fn on the node's event loop and waits for it to finish —
// the safe way for external code (CLIs, tests) to touch actor state.
func (rt *Runtime) Call(id env.NodeID, fn func()) bool {
	n := rt.node(id)
	if n == nil {
		return false
	}
	doneCh := make(chan struct{})
	n.enqueue(envelope{fn: func() {
		fn()
		close(doneCh)
	}})
	select {
	case <-doneCh:
		return true
	case <-n.done:
		return false
	}
}

// enqueue adds work, dropping when the mailbox is full.
func (n *liveNode) enqueue(e envelope) {
	select {
	case n.mailbox <- e:
	default:
		n.rt.dropped.Add(1)
	}
}

// loop is the node's serialized executor.
func (n *liveNode) loop() {
	defer close(n.done)
	n.actor.Init(n)
	for {
		select {
		case <-n.quit:
			if !n.killed.Load() {
				n.actor.Stop()
			}
			return
		case e := <-n.mailbox:
			if e.fn != nil {
				e.fn()
			} else {
				n.actor.Receive(e.from, e.msg)
			}
		}
	}
}

// --- env.Context implementation ---

// Self implements env.Context.
func (n *liveNode) Self() env.NodeID { return n.id }

// Now implements env.Clock: elapsed wall time since the runtime started,
// in the same sim.Time microsecond unit the protocol logic uses.
func (n *liveNode) Now() sim.Time {
	return sim.Time(time.Since(n.rt.start).Microseconds())
}

// After implements env.Clock: real timer whose callback is serialized
// through the mailbox.
func (n *liveNode) After(d sim.Time, fn func()) env.Cancel {
	var cancelled atomic.Bool
	t := time.AfterFunc(time.Duration(d)*time.Microsecond, func() {
		if cancelled.Load() || n.stopped.Load() {
			return
		}
		n.enqueue(envelope{fn: func() {
			if !cancelled.Load() {
				fn()
			}
		}})
	})
	return func() bool {
		first := cancelled.CompareAndSwap(false, true)
		t.Stop()
		return first
	}
}

// Send implements env.Context: local nodes get direct mailbox delivery,
// unknown IDs go to the remote transport if one is attached.
func (n *liveNode) Send(to env.NodeID, m env.Message) {
	if n.stopped.Load() {
		return
	}
	if dst := n.rt.node(to); dst != nil {
		n.rt.deliverLocal(n.id, to, dst, m)
		return
	}
	n.rt.mu.Lock()
	remote := n.rt.remote
	n.rt.mu.Unlock()
	if remote != nil {
		if err := remote(n.id, to, m); err != nil {
			n.rt.dropped.Add(1)
		}
	} else {
		n.rt.dropped.Add(1)
	}
}

// Rand implements env.Context.
func (n *liveNode) Rand() *rng.Rand { return n.r }

// deliverLocal enqueues m onto dst's mailbox, applying the in-process
// fault-injection hook (the Runtime-level mirror of the transport's):
// severed or dropped pairs lose the message, delayed ones re-enter
// through a timer, duplicated ones enqueue twice.
func (rt *Runtime) deliverLocal(from, to env.NodeID, dst *liveNode, m env.Message) {
	fi := rt.FaultInjector()
	if fi == nil {
		dst.enqueue(envelope{from: from, msg: m})
		return
	}
	d := fi.decide(from, to)
	if d.drop {
		return
	}
	copies := 1
	if d.dup {
		copies = 2
	}
	if d.delay <= 0 {
		for i := 0; i < copies; i++ {
			dst.enqueue(envelope{from: from, msg: m})
		}
		return
	}
	time.AfterFunc(d.delay, func() {
		// Re-resolve: the destination may have stopped while the
		// message was in flight (delayed delivery mirrors a real link).
		cur := rt.node(to)
		if cur == nil {
			rt.dropped.Add(1)
			return
		}
		for i := 0; i < copies; i++ {
			cur.enqueue(envelope{from: from, msg: m})
		}
	})
}
