// Package live is the real-time runtime: the same node.Peer actors that
// run under simulation execute here as goroutines with serialized
// mailboxes, real timers, and a pluggable transport — in-process channels
// within one process, TCP+gob across processes (see tcp.go). This is the
// deployable middleware, not a second implementation: protocol logic
// lives only in internal/core.
//
// # Flight recording
//
// A Recorder (see record.go and internal/replay) can be attached to the
// runtime to log every nondeterministic input a node observes — message
// deliveries, timer firings, named calls, start/stop/kill, RNG seeds —
// so a live run can be re-executed bit-for-bit on the deterministic sim
// scheduler. The hooks live at the points where nondeterminism is
// resolved: the mailbox dequeue in loop (delivery order), After (timer
// identity), and AddNodeWithID (seed assignment). Each envelope latches
// the node clock once at dispatch, so every read of Now within one
// handler returns the same value — the value the recorder logs.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/env"
	"repro/internal/rng"
	"repro/internal/sim"
)

// MailboxDepth bounds each node's queue; sends to a full mailbox are
// dropped (the transport is best-effort, like the simulated one).
const MailboxDepth = 4096

// infraStream labels the rng substream feeding infrastructure randomness
// (transport supervisor jitter, fault-injector rolls). Deriving it with
// rng.Derive keeps those draws off the node-seed Split chain, so node k's
// seed is rng.SplitSeed(runtimeSeed, k) regardless of transport activity
// — the invariant recorded logs rely on.
const infraStream = 0x696e667261 // "infra"

// envelope is one unit of mailbox work: a message, a timer firing, or a
// (possibly named) closure.
type envelope struct {
	from env.NodeID
	msg  env.Message
	fn   func()
	t    *timerRec
	call *callRec
}

// timerRec identifies one pending timer. IDs are per-node and monotone
// in creation order, which is deterministic under replay; the recorder
// logs the ID and logical deadline of every firing.
type timerRec struct {
	id        uint64
	deadline  int64 // latched micros the timer was aimed at
	fn        func()
	cancelled atomic.Bool
}

// callRec names an externally injected closure so the recorder can log
// it and a replay harness can re-invoke the equivalent operation.
type callRec struct {
	name string
	arg  []byte
}

// Runtime hosts live nodes within one process.
type Runtime struct {
	start     time.Time
	startNano int64 // Nanotime at creation; nowMicros is relative to it

	mu     sync.Mutex
	nodes  map[env.NodeID]*liveNode // guarded by mu
	nextID env.NodeID               // guarded by mu
	seed   *rng.Rand                // node-seed stream; guarded by mu
	infra  *rng.Rand                // infrastructure stream; guarded by mu

	// remote, when set, carries messages addressed to nodes not hosted
	// here (the TCP transport).
	remote func(from, to env.NodeID, m env.Message) error // guarded by mu

	// Logger receives node Logf output as structured logfmt lines
	// (see logger.go); nil silences it.
	Logger *Logger

	// faults, when set, impairs in-process deliveries (drop, delay,
	// duplicate, sever) — the live mirror of netsim's loss knobs. The
	// TCP transport consults the same injector for outbound traffic.
	faults atomic.Pointer[FaultInjector]

	// rec, when set, receives every nondeterministic input (see
	// SetRecorder).
	rec atomic.Pointer[recState]

	// recCtl, when set, lets the /record diagnostics endpoint start and
	// stop recording (the facade that owns recorder lifecycle installs
	// itself here).
	recCtl atomic.Pointer[RecordControl]

	dropped atomic.Uint64
}

// NewRuntime creates an empty live runtime.
func NewRuntime(seed uint64) *Runtime {
	return &Runtime{
		start:     time.Now(),
		startNano: Nanotime(),
		nodes:     make(map[env.NodeID]*liveNode),
		seed:      rng.New(seed),
		infra:     rng.New(rng.Derive(seed, infraStream)),
	}
}

// liveNode is one hosted actor.
type liveNode struct {
	rt      *Runtime
	id      env.NodeID
	actor   env.Actor
	seed    uint64 // initial rng state, logged by the recorder
	mailbox chan envelope
	quit    chan struct{}
	done    chan struct{}
	r       *rng.Rand
	stopped atomic.Bool
	killed  atomic.Bool

	// Loop-confined state: written and read only on the node's own
	// event-loop goroutine (no lock needed, like actor state).
	now      int64 // latched clock for the envelope being dispatched
	timerSeq uint64
	recN     int // envelopes dispatched since the last digest record
}

// AddNode hosts an actor under the next free ID and starts its loop.
func (rt *Runtime) AddNode(a env.Actor) env.NodeID {
	rt.mu.Lock()
	id := rt.nextID
	rt.nextID++
	rt.mu.Unlock()
	rt.AddNodeWithID(id, a)
	return id
}

// AddNodeWithID hosts an actor under a caller-chosen ID (distributed
// deployments assign global IDs in their address book). It panics if the
// ID is taken.
func (rt *Runtime) AddNodeWithID(id env.NodeID, a env.Actor) {
	rt.mu.Lock()
	if _, dup := rt.nodes[id]; dup {
		rt.mu.Unlock()
		panic(fmt.Sprintf("live: node ID %d already hosted", id))
	}
	r := rt.seed.Split()
	n := &liveNode{
		rt:      rt,
		id:      id,
		actor:   a,
		seed:    r.State(),
		mailbox: make(chan envelope, MailboxDepth),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		r:       r,
	}
	rt.nodes[id] = n
	if id >= rt.nextID {
		rt.nextID = id + 1
	}
	rt.mu.Unlock()
	go n.loop()
}

// node returns a hosted node.
func (rt *Runtime) node(id env.NodeID) *liveNode {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.nodes[id]
}

// Stop shuts one node down gracefully and waits for its loop to exit.
func (rt *Runtime) Stop(id env.NodeID) {
	n := rt.node(id)
	if n == nil || !n.stopped.CompareAndSwap(false, true) {
		return
	}
	close(n.quit)
	<-n.done
	if rs := rt.recState(); rs != nil {
		d, ok := digestOf(n.actor)
		rs.rec.RecordStop(id, rt.nowMicros(), d, ok)
	}
	rt.mu.Lock()
	delete(rt.nodes, id)
	rt.mu.Unlock()
}

// Kill terminates a node abruptly: no Stop hook runs, mirroring
// netsim.Crash. Pending mailbox work is discarded.
func (rt *Runtime) Kill(id env.NodeID) {
	n := rt.node(id)
	if n == nil {
		return
	}
	n.killed.Store(true)
	if !n.stopped.CompareAndSwap(false, true) {
		return
	}
	close(n.quit)
	<-n.done
	if rs := rt.recState(); rs != nil {
		d, ok := digestOf(n.actor)
		rs.rec.RecordKill(id, rt.nowMicros(), d, ok)
	}
	rt.mu.Lock()
	delete(rt.nodes, id)
	rt.mu.Unlock()
}

// Shutdown stops every hosted node.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	ids := make([]env.NodeID, 0, len(rt.nodes))
	for id := range rt.nodes {
		ids = append(ids, id)
	}
	rt.mu.Unlock()
	for _, id := range ids {
		rt.Stop(id)
	}
}

// Dropped reports messages discarded by the runtime: full mailboxes,
// sends without a route, and injections for un-hosted node IDs.
func (rt *Runtime) Dropped() uint64 { return rt.dropped.Load() }

// SetFaultInjector installs (or, with nil, removes) the fault-injection
// layer for in-process deliveries and the attached transport.
func (rt *Runtime) SetFaultInjector(fi *FaultInjector) { rt.faults.Store(fi) }

// FaultInjector returns the installed fault injector, nil when none.
func (rt *Runtime) FaultInjector() *FaultInjector { return rt.faults.Load() }

// EnsureFaultInjector returns the installed fault injector, creating
// one (seeded from the runtime's rng stream) on first use — the /faults
// diagnostics endpoint activates injection this way.
func (rt *Runtime) EnsureFaultInjector() *FaultInjector {
	if fi := rt.faults.Load(); fi != nil {
		return fi
	}
	fi := NewFaultInjector(rt.splitRand())
	if rt.faults.CompareAndSwap(nil, fi) {
		return fi
	}
	return rt.faults.Load()
}

// splitRand derives an independent rng stream from the runtime's
// infrastructure seed (transport supervisors and the fault injector draw
// jitter from it). Infrastructure draws never touch the node-seed
// stream, so recorded node seeds are independent of transport activity.
func (rt *Runtime) splitRand() *rng.Rand {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.infra.Split()
}

// nowMicros is elapsed monotonic time since the runtime started, in the
// microsecond unit trace events use. It reads the injectable Nanotime
// accessor, never the wall clock directly (replay:recorded).
func (rt *Runtime) nowMicros() int64 {
	return (Nanotime() - rt.startNano) / 1000
}

// NowMicros exposes the runtime clock to the facade, which must query
// windowed sketches on the same clock their samples are stamped with.
func (rt *Runtime) NowMicros() int64 { return rt.nowMicros() }

// NodeCount reports how many nodes are currently hosted.
func (rt *Runtime) NodeCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.nodes)
}

// Uptime reports how long the runtime has been running.
func (rt *Runtime) Uptime() time.Duration { return time.Since(rt.start) }

// epoch anchors Nanotime; only differences are meaningful.
var epoch = time.Now()

// Nanotime returns the real monotonic clock in nanoseconds. Live
// deployments inject it as core.Config.Nanotime so allocator costing
// (Events.AllocNanos) reflects actual CPU time; the simulation leaves
// the hook nil and stays on the virtual clock. It is the sanctioned
// clock accessor on recorded delivery paths (see the replaysafe
// analyzer in cmd/p2plint).
func Nanotime() int64 { return time.Since(epoch).Nanoseconds() }

// Inject delivers a message to a hosted node from the outside world (the
// TCP listener and tests use this). Messages addressed to node IDs not
// hosted here are counted as dropped, not silently discarded: a stale
// address-book entry or a just-stopped node shows up in Dropped and
// /healthz instead of vanishing (replay:recorded).
func (rt *Runtime) Inject(from, to env.NodeID, m env.Message) {
	n := rt.node(to)
	if n == nil {
		rt.dropped.Add(1)
		return
	}
	n.enqueue(envelope{from: from, msg: m})
}

// Call runs fn on the node's event loop and waits for it to finish —
// the safe way for external code (CLIs, tests) to touch actor state.
// The closure is invisible to the flight recorder: on recorded runs,
// operations that mutate actor state must come through CallNamed so a
// replay harness can re-invoke them; read-only Calls are fine.
func (rt *Runtime) Call(id env.NodeID, fn func()) bool {
	n := rt.node(id)
	if n == nil {
		return false
	}
	doneCh := make(chan struct{})
	n.enqueue(envelope{fn: func() {
		fn()
		close(doneCh)
	}})
	select {
	case <-doneCh:
		return true
	case <-n.done:
		return false
	}
}

// CallNamed runs fn on the node's event loop like Call, additionally
// logging the operation under name with an opaque argument blob when a
// recorder is attached. A replay harness maps the name back to the
// equivalent operation (e.g. "submit" -> Peer.SubmitTask with the
// gob-decoded spec) and re-invokes it at the recorded point.
func (rt *Runtime) CallNamed(id env.NodeID, name string, arg []byte, fn func()) bool {
	n := rt.node(id)
	if n == nil {
		return false
	}
	doneCh := make(chan struct{})
	n.enqueue(envelope{call: &callRec{name: name, arg: arg}, fn: func() {
		fn()
		close(doneCh)
	}})
	select {
	case <-doneCh:
		return true
	case <-n.done:
		return false
	}
}

// enqueue adds work, dropping when the mailbox is full.
func (n *liveNode) enqueue(e envelope) {
	select {
	case n.mailbox <- e:
	default:
		n.rt.dropped.Add(1)
	}
}

// latch pins the node clock for the envelope about to be dispatched.
// Every Now read within one handler returns this value — the value the
// recorder logs, and the virtual time the replayer re-executes at.
func (n *liveNode) latch() { n.now = n.rt.nowMicros() }

// loop is the node's serialized executor and the recorder's main hook
// point: nondeterministic arrival order becomes deterministic dispatch
// order here, so this is where deliveries, timer firings and named calls
// are logged (replay:recorded).
func (n *liveNode) loop() {
	defer close(n.done)
	n.latch()
	if rs := n.rt.recState(); rs != nil {
		rs.rec.RecordStart(n.id, n.now, n.seed, replayInitOf(n.actor))
	}
	n.actor.Init(n)
	for {
		select {
		case <-n.quit:
			if !n.killed.Load() {
				n.actor.Stop()
			}
			return
		case e := <-n.mailbox:
			n.latch()
			rs := n.rt.recState()
			switch {
			case e.t != nil:
				// The cancelled check must precede the record: a timer
				// cancelled after its envelope was enqueued fires
				// nothing, and the log must reflect that.
				if e.t.cancelled.Load() {
					continue
				}
				if rs != nil {
					rs.rec.RecordTimer(n.id, n.now, e.t.id, e.t.deadline)
				}
				e.t.fn()
			case e.call != nil:
				if rs != nil {
					rs.rec.RecordCall(n.id, n.now, e.call.name, e.call.arg)
				}
				e.fn()
			case e.fn != nil:
				e.fn() // plain Call: read-only by contract, not recorded
			default:
				if rs != nil {
					rs.rec.RecordDeliver(n.id, e.from, n.now, e.msg)
				}
				n.actor.Receive(e.from, e.msg)
			}
			if rs != nil && (e.fn == nil || e.call != nil) {
				n.maybeDigest(rs)
			}
		}
	}
}

// maybeDigest logs a state digest every digestEvery recorded envelopes,
// giving the replayer periodic divergence checkpoints.
func (n *liveNode) maybeDigest(rs *recState) {
	n.recN++
	if rs.digestEvery <= 0 || n.recN%rs.digestEvery != 0 {
		return
	}
	if d, ok := digestOf(n.actor); ok {
		rs.rec.RecordDigest(n.id, n.now, d)
	}
}

// --- env.Context implementation ---

// Self implements env.Context.
func (n *liveNode) Self() env.NodeID { return n.id }

// Now implements env.Clock: the clock latched when the current envelope
// was dispatched, in the same sim.Time microsecond unit the protocol
// logic uses. Latching makes a handler's view of time a recorded input:
// replay re-executes the handler at exactly this virtual instant
// (replay:recorded).
func (n *liveNode) Now() sim.Time {
	return sim.Time(n.now)
}

// After implements env.Clock: real timer whose callback is serialized
// through the mailbox. Timers get per-node IDs, monotone in creation
// order; the recorder logs the ID and logical deadline of each firing so
// replay fires exactly the timers that fired live (replay:recorded).
func (n *liveNode) After(d sim.Time, fn func()) env.Cancel {
	n.timerSeq++
	rec := &timerRec{id: n.timerSeq, deadline: n.now + int64(d), fn: fn}
	t := time.AfterFunc(time.Duration(d)*time.Microsecond, func() {
		if rec.cancelled.Load() || n.stopped.Load() {
			return
		}
		n.enqueue(envelope{t: rec})
	})
	return func() bool {
		first := rec.cancelled.CompareAndSwap(false, true)
		t.Stop()
		return first
	}
}

// Send implements env.Context: local nodes get direct mailbox delivery,
// unknown IDs go to the remote transport if one is attached. Sends are
// a node's observable output: the recorder logs (to, type) so the
// replayer can compare the replayed send sequence against the live one
// (replay:recorded).
func (n *liveNode) Send(to env.NodeID, m env.Message) {
	if n.stopped.Load() {
		return
	}
	if rs := n.rt.recState(); rs != nil {
		rs.rec.RecordSend(n.id, to, n.now, m)
	}
	if dst := n.rt.node(to); dst != nil {
		n.rt.deliverLocal(n.id, to, dst, m)
		return
	}
	n.rt.mu.Lock()
	remote := n.rt.remote
	n.rt.mu.Unlock()
	if remote != nil {
		if err := remote(n.id, to, m); err != nil {
			n.rt.dropped.Add(1)
		}
	} else {
		n.rt.dropped.Add(1)
	}
}

// Rand implements env.Context.
func (n *liveNode) Rand() *rng.Rand { return n.r }

// deliverLocal enqueues m onto dst's mailbox, applying the in-process
// fault-injection hook (the Runtime-level mirror of the transport's):
// severed or dropped pairs lose the message, delayed ones re-enter
// through a timer, duplicated ones enqueue twice (replay:recorded).
func (rt *Runtime) deliverLocal(from, to env.NodeID, dst *liveNode, m env.Message) {
	fi := rt.FaultInjector()
	if fi == nil {
		dst.enqueue(envelope{from: from, msg: m})
		return
	}
	d := fi.decide(from, to)
	rt.recordFault(from, to, d)
	if d.drop {
		return
	}
	copies := 1
	if d.dup {
		copies = 2
	}
	if d.delay <= 0 {
		for i := 0; i < copies; i++ {
			dst.enqueue(envelope{from: from, msg: m})
		}
		return
	}
	time.AfterFunc(d.delay, func() {
		// Re-resolve: the destination may have stopped while the
		// message was in flight (delayed delivery mirrors a real link).
		cur := rt.node(to)
		if cur == nil {
			rt.dropped.Add(1)
			return
		}
		for i := 0; i < copies; i++ {
			cur.enqueue(envelope{from: from, msg: m})
		}
	})
}

// recordFault logs a non-trivial fault-injector decision. Informational
// for replay correctness — deliveries are recorded after impairment, at
// dispatch — but it pins down *why* a message is missing from a log.
func (rt *Runtime) recordFault(from, to env.NodeID, d faultDecision) {
	if !d.drop && !d.dup && d.delay <= 0 {
		return
	}
	if rs := rt.recState(); rs != nil {
		rs.rec.RecordFault(from, to, rt.nowMicros(), d.drop, d.dup,
			int64(d.delay/time.Microsecond))
	}
}
