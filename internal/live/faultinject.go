package live

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/env"
	"repro/internal/rng"
)

// FaultInjector impairs live traffic per directed peer pair — the live
// mirror of netsim's loss/churn knobs. Rules apply at two hooks: the
// Runtime's in-process delivery path and the TCP transport's outbound
// path (inbound traffic is never re-impaired; the sender's side already
// decided). Install one with Runtime.SetFaultInjector, or let the
// /faults diagnostics endpoint create it on demand.
//
// AnyNode (env.NoNode) acts as a wildcard on either side; the most
// specific rule wins: (from,to), then (from,*), then (*,to), then (*,*).
type FaultInjector struct {
	mu    sync.Mutex
	rules map[faultKey]FaultRule // guarded by mu
	r     *rng.Rand              // guarded by mu

	dropped    atomic.Uint64
	delayed    atomic.Uint64
	duplicated atomic.Uint64
}

// AnyNode is the wildcard for either side of a fault rule.
const AnyNode = env.NoNode

// FaultRule describes the impairments for one directed peer pair.
// Sever blackholes the pair entirely; otherwise Drop and Dup are
// independent probabilities and Delay is added before delivery.
type FaultRule struct {
	Drop  float64       `json:"drop,omitempty"`
	Dup   float64       `json:"dup,omitempty"`
	Delay time.Duration `json:"delay,omitempty"`
	Sever bool          `json:"sever,omitempty"`
}

// zero reports whether the rule imposes nothing.
func (r FaultRule) zero() bool {
	return !r.Sever && r.Drop == 0 && r.Dup == 0 && r.Delay == 0
}

type faultKey struct {
	from, to env.NodeID
}

// NewFaultInjector creates an injector drawing its probability rolls
// from r (callers derive it from the runtime's rng stream, keeping all
// live randomness on injected streams).
func NewFaultInjector(r *rng.Rand) *FaultInjector {
	return &FaultInjector{rules: make(map[faultKey]FaultRule), r: r}
}

// Set installs the rule for from→to (either side may be AnyNode). A
// zero rule removes the entry.
func (f *FaultInjector) Set(from, to env.NodeID, rule FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := faultKey{from, to}
	if rule.zero() {
		delete(f.rules, k)
		return
	}
	f.rules[k] = rule
}

// Sever blackholes both directions between a and b (use AnyNode to cut
// a peer off from everyone).
func (f *FaultInjector) Sever(a, b env.NodeID) {
	f.Set(a, b, FaultRule{Sever: true})
	f.Set(b, a, FaultRule{Sever: true})
}

// Heal removes the rule for from→to.
func (f *FaultInjector) Heal(from, to env.NodeID) {
	f.Set(from, to, FaultRule{})
}

// Reset removes every rule.
func (f *FaultInjector) Reset() {
	f.Clear()
}

// Clear atomically removes every rule and returns how many it healed,
// so a finished chaos block can restore the fleet in one call and
// report what it undid.
func (f *FaultInjector) Clear() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.rules)
	f.rules = make(map[faultKey]FaultRule)
	return n
}

// FaultRuleEntry is one installed rule, as listed by Rules and the
// /faults endpoint.
type FaultRuleEntry struct {
	From env.NodeID `json:"from"`
	To   env.NodeID `json:"to"`
	Rule FaultRule  `json:"rule"`
}

// Rules returns the installed rules sorted by (from, to).
func (f *FaultInjector) Rules() []FaultRuleEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]FaultRuleEntry, 0, len(f.rules))
	for k, r := range f.rules {
		out = append(out, FaultRuleEntry{From: k.from, To: k.to, Rule: r})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// FaultStats counts impairments the injector has applied.
type FaultStats struct {
	Dropped    uint64 `json:"dropped"`
	Delayed    uint64 `json:"delayed"`
	Duplicated uint64 `json:"duplicated"`
}

// Stats snapshots the impairment counters.
func (f *FaultInjector) Stats() FaultStats {
	if f == nil {
		return FaultStats{}
	}
	return FaultStats{
		Dropped:    f.dropped.Load(),
		Delayed:    f.delayed.Load(),
		Duplicated: f.duplicated.Load(),
	}
}

// faultDecision is the outcome for one message.
type faultDecision struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// decide rolls the installed rule for one from→to message. A nil
// injector imposes nothing.
func (f *FaultInjector) decide(from, to env.NodeID) faultDecision {
	if f == nil {
		return faultDecision{}
	}
	f.mu.Lock()
	rule, ok := f.lookupLocked(from, to)
	if !ok {
		f.mu.Unlock()
		return faultDecision{}
	}
	var d faultDecision
	if rule.Sever || (rule.Drop > 0 && f.r.Bool(rule.Drop)) {
		d.drop = true
	} else {
		d.dup = rule.Dup > 0 && f.r.Bool(rule.Dup)
		d.delay = rule.Delay
	}
	f.mu.Unlock()
	if d.drop {
		f.dropped.Add(1)
	}
	if d.dup {
		f.duplicated.Add(1)
	}
	if d.delay > 0 {
		f.delayed.Add(1)
	}
	return d
}

// lookupLocked resolves the most specific rule for from→to. Caller
// holds f.mu.
func (f *FaultInjector) lookupLocked(from, to env.NodeID) (FaultRule, bool) {
	for _, k := range [...]faultKey{
		{from, to}, {from, AnyNode}, {AnyNode, to}, {AnyNode, AnyNode},
	} {
		if r, ok := f.rules[k]; ok {
			return r, true
		}
	}
	return FaultRule{}, false
}
