package live

// Cross-runtime seed equivalence: the flight recorder logs each live
// node's initial rng state, and the replayer (and anyone comparing a
// live run against a netsim run of the same seed) reconstructs the
// stream with rng.New on that state. These tests pin the shared
// contract: the k-th node added to either runtime draws from the stream
// seeded rng.SplitSeed(runtimeSeed, k), and infrastructure randomness
// (transport jitter, fault rolls) lives on a Derive'd substream that
// never advances the node-seed Split chain.

import (
	"testing"

	"repro/internal/env"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
)

// drawActor records the first value its node stream produces.
type drawActor struct {
	first uint64
}

func (a *drawActor) Init(ctx env.Context)                   { a.first = ctx.Rand().Uint64() }
func (a *drawActor) Receive(from env.NodeID, m env.Message) {}
func (a *drawActor) Stop()                                  {}

func TestNodeSeedEquivalenceAcrossRuntimes(t *testing.T) {
	const seed = 12345
	const nodes = 5

	want := make([]uint64, nodes)
	for k := range want {
		want[k] = rng.New(rng.SplitSeed(seed, k)).Uint64()
	}

	// Live runtime: add nodes, then Shutdown to join the loops so the
	// actors' Init draws are safely visible.
	rt := NewRuntime(seed)
	liveActors := make([]*drawActor, nodes)
	for k := range liveActors {
		liveActors[k] = &drawActor{}
		rt.AddNode(liveActors[k])
	}
	for k := 0; k < nodes; k++ {
		if got, want := rt.node(env.NodeID(k)).seed, rng.SplitSeed(seed, k); got != want {
			t.Errorf("live node %d recorded seed = %#x, want SplitSeed = %#x", k, got, want)
		}
	}
	rt.Shutdown()

	// Sim runtime: same seed, same AddNode order; Init fires at t=0.
	eng := sim.New()
	net := netsim.New(eng, rng.New(seed), netsim.Config{})
	simActors := make([]*drawActor, nodes)
	for k := range simActors {
		simActors[k] = &drawActor{}
		net.AddNode(simActors[k])
	}
	eng.Run()

	for k := 0; k < nodes; k++ {
		if liveActors[k].first != want[k] {
			t.Errorf("live node %d first draw = %#x, want %#x", k, liveActors[k].first, want[k])
		}
		if simActors[k].first != want[k] {
			t.Errorf("sim node %d first draw = %#x, want %#x", k, simActors[k].first, want[k])
		}
	}
}

// TestInfraStreamDoesNotPerturbNodeSeeds pins the property replay
// depends on: however much infrastructure randomness a run consumes
// (reconnect jitter, fault-injector rolls), node seeds stay a pure
// function of (runtime seed, add order).
func TestInfraStreamDoesNotPerturbNodeSeeds(t *testing.T) {
	const seed = 99

	rt := NewRuntime(seed)
	for i := 0; i < 10; i++ {
		rt.splitRand() // what the transport and fault injector consume
	}
	a := &drawActor{}
	rt.AddNode(a)
	if got, want := rt.node(0).seed, rng.SplitSeed(seed, 0); got != want {
		t.Fatalf("node 0 seed after infra draws = %#x, want %#x", got, want)
	}
	rt.Shutdown()

	if want := rng.New(rng.SplitSeed(seed, 0)).Uint64(); a.first != want {
		t.Fatalf("node 0 first draw after infra activity = %#x, want %#x", a.first, want)
	}
}
