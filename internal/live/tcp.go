package live

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/env"
)

// wireMsg is the gob frame carried over TCP. Payload types must be
// registered via proto.RegisterMessages.
type wireMsg struct {
	From    env.NodeID
	To      env.NodeID
	Payload any
}

// TCPTransport connects live runtimes across processes. Each process
// hosts some node IDs locally and routes the rest through the address
// book. Connections are dialed lazily and kept open.
type TCPTransport struct {
	rt *Runtime

	mu       sync.Mutex
	book     map[env.NodeID]string // remote node -> "host:port"; guarded by mu
	conns    map[string]*gobConn   // addr -> outbound connection; guarded by mu
	accepted map[net.Conn]bool     // inbound connections being read; guarded by mu
	ln       net.Listener
	wg       sync.WaitGroup
	closed   bool // guarded by mu
}

type gobConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// NewTCPTransport attaches a TCP transport to rt: messages to IDs not
// hosted locally are routed through the address book.
func NewTCPTransport(rt *Runtime) *TCPTransport {
	t := &TCPTransport{
		rt:       rt,
		book:     make(map[env.NodeID]string),
		conns:    make(map[string]*gobConn),
		accepted: make(map[net.Conn]bool),
	}
	rt.mu.Lock()
	rt.remote = t.send
	rt.mu.Unlock()
	return t
}

// Register maps a remote node ID to its listener address.
func (t *TCPTransport) Register(id env.NodeID, addr string) {
	t.mu.Lock()
	t.book[id] = addr
	t.mu.Unlock()
}

// Listen starts accepting inbound frames on addr and returns the bound
// address (useful with ":0").
func (t *TCPTransport) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *TCPTransport) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted[c] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	for {
		var wm wireMsg
		if err := dec.Decode(&wm); err != nil {
			return
		}
		t.rt.Inject(wm.From, wm.To, wm.Payload)
	}
}

// send routes one outbound message; it is installed as Runtime.remote.
func (t *TCPTransport) send(from, to env.NodeID, m env.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("live: transport closed")
	}
	addr, ok := t.book[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("live: no address for node %d", to)
	}
	conn, err := t.conn(addr)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := conn.enc.Encode(wireMsg{From: from, To: to, Payload: m}); err != nil {
		// Connection went bad: drop it so the next send redials.
		t.mu.Lock()
		if t.conns[addr] == conn {
			delete(t.conns, addr)
		}
		t.mu.Unlock()
		conn.c.Close()
		return err
	}
	return nil
}

// conn returns (dialing if needed) the pooled connection to addr.
func (t *TCPTransport) conn(addr string) (*gobConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &gobConn{c: raw, enc: gob.NewEncoder(raw)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.conns[addr]; ok {
		raw.Close()
		return existing, nil
	}
	t.conns[addr] = c
	return c, nil
}

// Close shuts the listener and every connection (outbound and inbound)
// down, then waits for the reader goroutines to drain.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	t.closed = true
	if t.ln != nil {
		t.ln.Close()
	}
	for _, c := range t.conns {
		c.c.Close()
	}
	for c := range t.accepted {
		c.Close()
	}
	t.conns = make(map[string]*gobConn)
	t.mu.Unlock()
	t.wg.Wait()
}
