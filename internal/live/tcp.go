package live

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// wireMsg is the unit carried over TCP (see wire.go for the framing).
// Payload types must be registered via proto.RegisterMessages.
type wireMsg struct {
	From    env.NodeID
	To      env.NodeID
	Payload any
}

// DropReason classifies outbound messages the transport discarded; each
// reason is a labeled series of live_transport_dropped_total.
type DropReason int

// Drop reasons.
const (
	DropQueueFull   DropReason = iota // supervisor queue at capacity
	DropCircuitOpen                   // peer circuit-broken after repeated dial failures
	DropEncodeError                   // message would not gob-encode or exceeded MaxFrame
	DropWriteError                    // connection broke mid-write, retry failed
	DropNoRoute                       // destination not in the address book
	DropFault                         // discarded by the fault-injection layer
	DropNoCredit                      // receiver's credit window exhausted; shed at the source
	numDropReasons
)

// String returns the metric label value for the reason.
func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue_full"
	case DropCircuitOpen:
		return "circuit_open"
	case DropEncodeError:
		return "encode_error"
	case DropWriteError:
		return "write_error"
	case DropNoRoute:
		return "no_route"
	case DropFault:
		return "fault"
	case DropNoCredit:
		return "no_credit"
	}
	return "unknown"
}

// Transport metric families (registered when a Registry is attached).
const (
	MetricTransportSent         = "live_transport_sent_total"
	MetricTransportDropped      = "live_transport_dropped_total"
	MetricTransportConnects     = "live_transport_connects_total"
	MetricTransportReconnects   = "live_transport_reconnects_total"
	MetricTransportCircuitOpens = "live_transport_circuit_opens_total"
	MetricTransportFramesRx     = "live_transport_frames_rx_total"
	MetricTransportDecodeErrors = "live_transport_decode_errors_total"
	MetricTransportFrameErrors  = "live_transport_frame_errors_total"
	MetricTransportConnsOut     = "live_transport_conns_out"
	MetricTransportConnsIn      = "live_transport_conns_in"
	MetricTransportBatches      = "live_transport_batches_total"
)

// TransportConfig tunes the supervised transport. The zero value maps
// every field to a production default (see withDefaults).
type TransportConfig struct {
	// DialTimeout bounds one connection attempt. Default 3s.
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline. Default 5s.
	WriteTimeout time.Duration
	// ReadIdleTimeout closes an inbound connection with no traffic for
	// this long (the sender's supervisor redials on demand). Heartbeats
	// keep healthy links well under it. Default 2m; negative disables.
	ReadIdleTimeout time.Duration
	// MaxFrame bounds one frame's payload in bytes, on both the encode
	// and decode side. Default DefaultMaxFrame; negative disables.
	MaxFrame int
	// QueueDepth bounds each peer supervisor's send queue; sends beyond
	// it drop with reason queue_full. Default 512.
	QueueDepth int
	// BackoffBase and BackoffMax bound the exponential reconnect
	// backoff (jittered). Defaults 25ms and 3s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CircuitThreshold is the number of consecutive dial failures after
	// which a peer's circuit opens (sends fail fast with reason
	// circuit_open). Default 5.
	CircuitThreshold int
	// CircuitCooldown is the probe cadence while a circuit is open.
	// Default 2s.
	CircuitCooldown time.Duration
	// FlushBudget caps how long one coalesced write may keep draining a
	// busy queue before its bytes hit the wire. An empty queue always
	// flushes immediately, so the budget bounds worst-case batching
	// latency without adding any. Default 1ms; negative disables
	// coalescing (one write per message).
	FlushBudget time.Duration
	// WireVersion selects the dialect this transport speaks when
	// sending: 2 (default) is the compact binary framing with credit
	// flow, 1 is the legacy per-frame gob. Receivers always accept
	// both.
	WireVersion int
	// CreditWindowMsgs and CreditWindowBytes size the credit window this
	// transport grants each inbound v2 connection. Senders shed with
	// reason no_credit once they exhaust the window, pushing overload
	// back to the source. Defaults 8192 messages and 4 MiB; negative
	// disables granting (remote senders then run uncapped, as with a v1
	// receiver).
	CreditWindowMsgs  int
	CreditWindowBytes int
	// Dial overrides the dialer (tests inject blackholed or failing
	// dialers). Default net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

// withDefaults fills unset fields.
func (c TransportConfig) withDefaults() TransportConfig {
	if c.DialTimeout == 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.ReadIdleTimeout == 0 {
		c.ReadIdleTimeout = 2 * time.Minute
	} else if c.ReadIdleTimeout < 0 {
		c.ReadIdleTimeout = 0
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	} else if c.MaxFrame < 0 {
		c.MaxFrame = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 512
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 3 * time.Second
	}
	if c.CircuitThreshold <= 0 {
		c.CircuitThreshold = 5
	}
	if c.CircuitCooldown <= 0 {
		c.CircuitCooldown = 2 * time.Second
	}
	if c.FlushBudget == 0 {
		c.FlushBudget = time.Millisecond
	} else if c.FlushBudget < 0 {
		c.FlushBudget = 0
	}
	if c.WireVersion == 0 {
		c.WireVersion = 2
	}
	if c.CreditWindowMsgs == 0 {
		c.CreditWindowMsgs = 8192
	} else if c.CreditWindowMsgs < 0 {
		c.CreditWindowMsgs = 0
	}
	if c.CreditWindowBytes == 0 {
		c.CreditWindowBytes = 4 << 20
	} else if c.CreditWindowBytes < 0 {
		c.CreditWindowBytes = 0
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return c
}

// Transport send errors (sent back to liveNode.Send, which folds them
// into the runtime's dropped counter).
var (
	errTransportClosed = errors.New("live: transport closed")
	errCircuitOpen     = errors.New("live: peer circuit open")
	errQueueFull       = errors.New("live: send queue full")
	errNoCredit        = errors.New("live: peer credit window exhausted")
)

// TCPTransport connects live runtimes across processes. Each process
// hosts some node IDs locally and routes the rest through the address
// book. Every remote address is owned by a connection supervisor
// (supervisor.go); inbound connections are read through the
// length-prefixed framing in wire.go.
type TCPTransport struct {
	rt  *Runtime
	cfg TransportConfig

	mu       sync.Mutex
	book     map[env.NodeID]string  // remote node -> "host:port"; guarded by mu
	sups     map[string]*supervisor // addr -> owning supervisor; guarded by mu
	accepted map[net.Conn]bool      // inbound connections being read; guarded by mu
	ln       net.Listener           // guarded by mu
	closed   bool                   // guarded by mu
	wg       sync.WaitGroup

	// Always-on atomic stats (Stats); mirrored into m when attached.
	sent         atomic.Uint64
	batches      atomic.Uint64
	framesRx     atomic.Uint64
	decodeErrors atomic.Uint64
	frameErrors  atomic.Uint64
	connects     atomic.Uint64
	reconnects   atomic.Uint64
	circuitOpens atomic.Uint64
	drops        [numDropReasons]atomic.Uint64

	m      *transportMetrics
	tracer *trace.Tracer
	sk     *stats.Set // nil-safe; fed supervisor queue occupancy per enqueue
}

// transportMetrics holds the pre-registered registry instruments; nil
// when no registry is attached.
type transportMetrics struct {
	sent, connects, reconnects, circuitOpens *metrics.Counter
	framesRx, decodeErrors, frameErrors      *metrics.Counter
	batches                                  *metrics.Counter
	drops                                    [numDropReasons]*metrics.Counter
	connsOut, connsIn                        *metrics.Gauge
}

// newTransportMetrics registers the transport families into reg.
func newTransportMetrics(reg *metrics.Registry) *transportMetrics {
	if reg == nil {
		return nil
	}
	m := &transportMetrics{
		sent:         reg.Counter(MetricTransportSent, "Frames written to remote peers.", nil),
		connects:     reg.Counter(MetricTransportConnects, "Outbound connections established.", nil),
		reconnects:   reg.Counter(MetricTransportReconnects, "Outbound connections re-established after a failure or loss.", nil),
		circuitOpens: reg.Counter(MetricTransportCircuitOpens, "Peer circuits opened after repeated dial failures.", nil),
		framesRx:     reg.Counter(MetricTransportFramesRx, "Frames received and injected into the runtime.", nil),
		decodeErrors: reg.Counter(MetricTransportDecodeErrors, "Inbound frames whose payload failed to decode (connection kept).", nil),
		frameErrors:  reg.Counter(MetricTransportFrameErrors, "Inbound framing violations (oversized or truncated; connection closed).", nil),
		batches:      reg.Counter(MetricTransportBatches, "Coalesced writes to remote peers (each carries one or more frames).", nil),
		connsOut:     reg.Gauge(MetricTransportConnsOut, "Open outbound connections.", nil),
		connsIn:      reg.Gauge(MetricTransportConnsIn, "Open inbound connections.", nil),
	}
	for r := DropReason(0); r < numDropReasons; r++ {
		m.drops[r] = reg.Counter(MetricTransportDropped,
			"Outbound messages dropped by the transport, by reason.",
			metrics.Labels{"reason": r.String()})
	}
	return m
}

// NewTCPTransport attaches a TCP transport with default configuration
// and no metrics to rt: messages to IDs not hosted locally are routed
// through the address book.
func NewTCPTransport(rt *Runtime) *TCPTransport {
	return NewTCPTransportOpts(rt, TransportConfig{}, nil, nil)
}

// NewTCPTransportOpts attaches a TCP transport to rt with explicit
// configuration. reg (may be nil) receives the live_transport_* metric
// families; tracer (may be nil) receives reconnect/circuit instants.
func NewTCPTransportOpts(rt *Runtime, cfg TransportConfig, reg *metrics.Registry, tracer *trace.Tracer) *TCPTransport {
	t := &TCPTransport{
		rt:       rt,
		cfg:      cfg.withDefaults(),
		book:     make(map[env.NodeID]string),
		sups:     make(map[string]*supervisor),
		accepted: make(map[net.Conn]bool),
		tracer:   tracer,
	}
	if reg != nil {
		t.m = newTransportMetrics(reg)
	}
	rt.mu.Lock()
	rt.remote = t.send
	rt.mu.Unlock()
	return t
}

// AttachSketches installs the windowed sketch set that receives the
// supervisor queue occupancy (0..1 of QueueDepth) on every enqueue. Must
// be called before traffic flows; a nil set keeps the transport silent.
func (t *TCPTransport) AttachSketches(sk *stats.Set) { t.sk = sk }

// Register maps a remote node ID to its listener address.
func (t *TCPTransport) Register(id env.NodeID, addr string) {
	t.mu.Lock()
	t.book[id] = addr
	t.mu.Unlock()
}

// Listen starts accepting inbound frames on addr and returns the bound
// address (useful with ":0").
func (t *TCPTransport) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return "", errTransportClosed
	}
	t.ln = ln
	t.wg.Add(1)
	t.mu.Unlock()
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *TCPTransport) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		// Bookkeeping and wg.Add happen under one lock hold with the
		// closed check, so Close cannot begin its wg.Wait between the
		// check and the reader being accounted for.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted[c] = true
		t.wg.Add(1)
		t.mu.Unlock()
		if t.m != nil {
			t.m.connsIn.Inc()
		}
		go t.readLoop(c)
	}
}

// readLoop reads frames from one inbound connection. The sender's
// first byte selects the dialect: wireV2Preamble starts a v2 stream,
// anything else (a v1 length prefix always begins 0x00) replays the
// legacy framing. Payload decode errors are counted and skipped — the
// framing keeps the stream in sync — while framing violations and
// read-deadline expiry close the connection (the sender's supervisor
// redials on demand).
func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
		if t.m != nil {
			t.m.connsIn.Dec()
		}
	}()
	br := bufio.NewReader(c)
	if t.cfg.ReadIdleTimeout > 0 {
		c.SetReadDeadline(time.Now().Add(t.cfg.ReadIdleTimeout))
	}
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wireV2Preamble {
		br.ReadByte()
		t.readLoopV2(c, br)
		return
	}
	t.readLoopV1(c, br)
}

// readLoopV1 is the legacy framing: 4-byte length prefix, gob payload.
func (t *TCPTransport) readLoopV1(c net.Conn, br *bufio.Reader) {
	var buf []byte
	for {
		if t.cfg.ReadIdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(t.cfg.ReadIdleTimeout))
		}
		payload, err := readFrameBuf(br, t.cfg.MaxFrame, buf)
		if err != nil {
			t.noteFrameError(c, err)
			return
		}
		buf = payload
		wm, err := decodeFrame(payload)
		if err != nil {
			t.noteDecodeError(c, err)
			continue
		}
		t.noteFrameRx()
		t.rt.Inject(wm.From, wm.To, wm.Payload)
	}
}

// readLoopV2 is the compact framing (wire.go). The reader is also the
// credit grantor: it issues an initial window as soon as the stream
// opens and tops the sender back up once half the window has been
// consumed, so a healthy connection always has credit in flight.
func (t *TCPTransport) readLoopV2(c net.Conn, br *bufio.Reader) {
	grantMsgs, grantBytes := t.cfg.CreditWindowMsgs, t.cfg.CreditWindowBytes
	granting := grantMsgs > 0 && grantBytes > 0
	var gbuf []byte
	writeGrant := func(msgs, bytes int) bool {
		if !granting {
			return true
		}
		gbuf = appendCreditFrame(gbuf[:0], uint64(msgs), uint64(bytes))
		c.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		_, err := c.Write(gbuf)
		return err == nil
	}
	if !writeGrant(grantMsgs, grantBytes) {
		return
	}
	var buf []byte
	usedMsgs, usedBytes := 0, 0
	for {
		if t.cfg.ReadIdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(t.cfg.ReadIdleTimeout))
		}
		body, err := readFrameV2(br, t.cfg.MaxFrame, buf)
		if err != nil {
			t.noteFrameError(c, err)
			return
		}
		buf = body
		if len(body) == 0 {
			t.noteFrameError(c, errors.New("live: empty v2 frame"))
			return
		}
		switch body[0] {
		case frameData:
			wm, err := decodeFrameV2Data(body)
			if err != nil {
				t.noteDecodeError(c, err)
				break
			}
			t.noteFrameRx()
			t.rt.Inject(wm.From, wm.To, wm.Payload)
		case frameDataGob:
			wm, err := decodeFrame(body[1:])
			if err != nil {
				t.noteDecodeError(c, err)
				break
			}
			t.noteFrameRx()
			t.rt.Inject(wm.From, wm.To, wm.Payload)
		default:
			// Unknown (or misdirected credit) frame kind: the framing is
			// still in sync, so count it and keep the connection.
			t.noteDecodeError(c, fmt.Errorf("live: unexpected v2 frame kind 0x%02x", body[0]))
		}
		// Credit accounting counts every frame read, decodable or not —
		// the sender spent window for each.
		usedMsgs++
		usedBytes += len(body)
		if granting && (usedMsgs*2 >= grantMsgs || usedBytes*2 >= grantBytes) {
			if !writeGrant(usedMsgs, usedBytes) {
				return
			}
			usedMsgs, usedBytes = 0, 0
		}
	}
}

// noteFrameRx counts one inbound frame injected into the runtime.
func (t *TCPTransport) noteFrameRx() {
	t.framesRx.Add(1)
	if t.m != nil {
		t.m.framesRx.Inc()
	}
}

// noteFrameError counts one inbound framing violation (quietly ignoring
// orderly shutdown errors).
func (t *TCPTransport) noteFrameError(c net.Conn, err error) {
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return
	}
	t.frameErrors.Add(1)
	if t.m != nil {
		t.m.frameErrors.Inc()
	}
	t.logTransport(c.RemoteAddr().String(), "framing error: "+err.Error())
}

// noteDecodeError counts one inbound payload that failed to decode.
func (t *TCPTransport) noteDecodeError(c net.Conn, err error) {
	t.decodeErrors.Add(1)
	if t.m != nil {
		t.m.decodeErrors.Inc()
	}
	t.logTransport(c.RemoteAddr().String(), "decode error: "+err.Error())
}

// send routes one outbound message; it is installed as Runtime.remote.
// It never dials and never blocks on a socket: the message is enqueued
// onto the destination supervisor's bounded queue (or dropped, with the
// reason counted).
func (t *TCPTransport) send(from, to env.NodeID, m env.Message) error {
	if fi := t.rt.FaultInjector(); fi != nil {
		d := fi.decide(from, to)
		t.rt.recordFault(from, to, d)
		if d.drop {
			t.countDrop(DropFault)
			return nil // impaired on purpose; not a routing failure
		}
		if d.delay > 0 {
			time.AfterFunc(d.delay, func() {
				t.enqueue(from, to, m)
				if d.dup {
					t.enqueue(from, to, m)
				}
			})
			return nil
		}
		if d.dup {
			t.enqueue(from, to, m)
		}
	}
	return t.enqueue(from, to, m)
}

// enqueue hands one message to the destination's supervisor, creating
// it on first use.
func (t *TCPTransport) enqueue(from, to env.NodeID, m env.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errTransportClosed
	}
	addr, ok := t.book[to]
	if !ok {
		t.mu.Unlock()
		t.countDrop(DropNoRoute)
		return fmt.Errorf("live: no address for node %d", to)
	}
	s := t.sups[addr]
	if s == nil {
		s = newSupervisor(t, addr, t.rt.splitRand())
		t.sups[addr] = s
		t.wg.Add(1)
		go s.run()
	}
	t.mu.Unlock()
	if s.circuitOpen() {
		t.countDrop(DropCircuitOpen)
		return errCircuitOpen
	}
	if !s.spendCredit() {
		t.countDrop(DropNoCredit)
		return errNoCredit
	}
	select {
	case s.queue <- wireMsg{From: from, To: to, Payload: m}:
		// Guarded so the disabled path never pays the clock read: the
		// Observe arguments are evaluated before its own nil check.
		if t.sk != nil {
			t.sk.Observe(stats.SketchQueueOcc, t.rt.nowMicros(),
				float64(len(s.queue))/float64(t.cfg.QueueDepth))
		}
		return nil
	default:
		s.refundCredit()
		t.countDrop(DropQueueFull)
		return errQueueFull
	}
}

// countSent records one frame written.
func (t *TCPTransport) countSent() { t.countSentN(1) }

// countSentN records n frames written (one coalesced batch).
func (t *TCPTransport) countSentN(n int) {
	t.sent.Add(uint64(n))
	if t.m != nil {
		t.m.sent.Add(n)
	}
}

// countDrop records one outbound drop under its reason.
func (t *TCPTransport) countDrop(r DropReason) { t.countDropN(r, 1) }

// countDropN records n outbound drops under one reason (a batch whose
// write failed past retry).
func (t *TCPTransport) countDropN(r DropReason, n int) {
	t.drops[r].Add(uint64(n))
	if t.m != nil {
		t.m.drops[r].Add(n)
	}
}

// noteBatch records one coalesced write carrying frames messages and
// feeds the batch-size sketch.
func (t *TCPTransport) noteBatch(frames int) {
	t.batches.Add(1)
	if t.m != nil {
		t.m.batches.Inc()
	}
	if t.sk != nil {
		t.sk.Observe(stats.SketchBatchFrames, t.rt.nowMicros(), float64(frames))
	}
}

// noteConnected records a successful outbound dial.
func (t *TCPTransport) noteConnected(addr string, reconnect, wasOpen bool) {
	t.connects.Add(1)
	if reconnect {
		t.reconnects.Add(1)
	}
	if t.m != nil {
		t.m.connects.Inc()
		t.m.connsOut.Inc()
		if reconnect {
			t.m.reconnects.Inc()
		}
	}
	if reconnect || wasOpen {
		if tr := t.tracer; tr != nil {
			tr.TransportInstant(t.rt.nowMicros(), trace.TransportReconnect, addr,
				trace.A("circuit_was_open", wasOpen))
		}
		t.logTransport(addr, "reconnected")
	}
}

// noteDisconnected records an outbound connection loss.
func (t *TCPTransport) noteDisconnected() {
	if t.m != nil {
		t.m.connsOut.Dec()
	}
}

// noteCircuitOpen records a peer's circuit opening.
func (t *TCPTransport) noteCircuitOpen(addr string, cause error) {
	t.circuitOpens.Add(1)
	if t.m != nil {
		t.m.circuitOpens.Inc()
	}
	if tr := t.tracer; tr != nil {
		tr.TransportInstant(t.rt.nowMicros(), trace.TransportCircuitOpen, addr,
			trace.A("cause", cause.Error()))
	}
	t.logTransport(addr, "circuit open: "+cause.Error())
}

// logTransport emits one transport diagnostic line (nil-safe).
func (t *TCPTransport) logTransport(addr, msg string) {
	t.rt.Logger.Log(
		"t", time.Since(t.rt.start).Truncate(time.Millisecond),
		"transport", addr,
		"msg", msg,
	)
}

// TransportStats is a point-in-time snapshot of the transport counters.
type TransportStats struct {
	Sent         uint64
	Batches      uint64
	FramesRx     uint64
	DecodeErrors uint64
	FrameErrors  uint64
	Connects     uint64
	Reconnects   uint64
	CircuitOpens uint64
	Drops        map[string]uint64 // reason -> count; zero reasons omitted
}

// Stats snapshots the transport counters (available with or without an
// attached metrics registry).
func (t *TCPTransport) Stats() TransportStats {
	st := TransportStats{
		Sent:         t.sent.Load(),
		Batches:      t.batches.Load(),
		FramesRx:     t.framesRx.Load(),
		DecodeErrors: t.decodeErrors.Load(),
		FrameErrors:  t.frameErrors.Load(),
		Connects:     t.connects.Load(),
		Reconnects:   t.reconnects.Load(),
		CircuitOpens: t.circuitOpens.Load(),
		Drops:        make(map[string]uint64),
	}
	for r := DropReason(0); r < numDropReasons; r++ {
		if n := t.drops[r].Load(); n > 0 {
			st.Drops[r.String()] = n
		}
	}
	return st
}

// Close shuts the listener, every supervisor, and every inbound
// connection down, then waits for all transport goroutines to drain.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	t.closed = true
	ln := t.ln
	sups := make([]*supervisor, 0, len(t.sups))
	for _, s := range t.sups {
		sups = append(sups, s)
	}
	for c := range t.accepted {
		c.Close()
	}
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range sups {
		close(s.quit)
	}
	t.wg.Wait()
}
