package live

// This file is the runtime side of the flight recorder: the Recorder
// interface the runtime logs nondeterministic inputs to, and the small
// control surface the /record diagnostics endpoint drives. The actual
// log format and the replayer live in internal/replay, which implements
// Recorder without this package importing it (no cycle: replay depends
// only on env/rng/sim/trace).

import "repro/internal/env"

// Recorder receives every nondeterministic input the runtime resolves.
// Methods are called from node event-loop goroutines (and Stop/Kill from
// whichever goroutine stops the node, strictly after the loop exited);
// implementations must be safe for concurrent use and must never block —
// a recorder that cannot keep up drops events and counts them instead.
//
// nowMicros is the node clock latched for the event (see liveNode.latch);
// replay re-executes the event at exactly that virtual time.
type Recorder interface {
	// RecordStart logs a node coming up: its rng seed (the initial
	// stream state) and an opaque actor-reconstruction blob from
	// ReplayIniter, nil if the actor does not implement it.
	RecordStart(node env.NodeID, nowMicros int64, seed uint64, init []byte)
	// RecordDeliver logs one message dispatched to the node's actor,
	// in dispatch order — after fault impairment, mailbox loss and
	// transport reordering have all been resolved.
	RecordDeliver(node, from env.NodeID, nowMicros int64, m env.Message)
	// RecordTimer logs one timer callback actually firing, with the
	// per-node timer ID and the logical deadline it was aimed at.
	RecordTimer(node env.NodeID, nowMicros int64, timerID uint64, deadlineMicros int64)
	// RecordCall logs one named external operation (see CallNamed).
	RecordCall(node env.NodeID, nowMicros int64, name string, arg []byte)
	// RecordSend logs a node's outbound message — an observable output
	// the replayer compares, not an input it re-injects.
	RecordSend(node, to env.NodeID, nowMicros int64, m env.Message)
	// RecordStop/RecordKill log a node going down, with a final state
	// digest when the actor provides one.
	RecordStop(node env.NodeID, nowMicros int64, digest uint64, hasDigest bool)
	RecordKill(node env.NodeID, nowMicros int64, digest uint64, hasDigest bool)
	// RecordFault logs a non-trivial fault-injector decision
	// (informational: deliveries are recorded post-impairment).
	RecordFault(from, to env.NodeID, nowMicros int64, drop, dup bool, delayMicros int64)
	// RecordDigest logs a periodic state-digest checkpoint.
	RecordDigest(node env.NodeID, nowMicros int64, digest uint64)
}

// Digester is implemented by actors that can hash their protocol state
// deterministically (core.Peer does); the recorder logs these digests as
// divergence checkpoints.
type Digester interface {
	StateDigest() uint64
}

// ReplayIniter is implemented by actors that can serialize their
// construction parameters, letting a replay harness rebuild an
// equivalent actor from the log alone (core.Peer encodes its PeerInfo
// and bootstrap target).
type ReplayIniter interface {
	ReplayInit() []byte
}

// digestOf returns the actor's state digest when it implements Digester.
func digestOf(a env.Actor) (uint64, bool) {
	if d, ok := a.(Digester); ok {
		return d.StateDigest(), true
	}
	return 0, false
}

// replayInitOf returns the actor's reconstruction blob, nil when the
// actor does not implement ReplayIniter.
func replayInitOf(a env.Actor) []byte {
	if ri, ok := a.(ReplayIniter); ok {
		return ri.ReplayInit()
	}
	return nil
}

// recState pairs the attached recorder with its digest cadence.
type recState struct {
	rec         Recorder
	digestEvery int
}

// DefaultDigestEvery is the digest-checkpoint cadence SetRecorder uses
// when the caller passes a non-positive interval.
const DefaultDigestEvery = 8

// SetRecorder attaches rec to the runtime (nil detaches). digestEvery is
// the per-node envelope interval between state-digest checkpoints
// (<= 0 selects DefaultDigestEvery). Attach before adding nodes: nodes
// hosted earlier have no RecordStart event, and a replay of such a log
// reports them as unknown instead of reconstructing them.
func (rt *Runtime) SetRecorder(rec Recorder, digestEvery int) {
	if rec == nil {
		rt.rec.Store(nil)
		return
	}
	if digestEvery <= 0 {
		digestEvery = DefaultDigestEvery
	}
	rt.rec.Store(&recState{rec: rec, digestEvery: digestEvery})
}

// recState returns the attached recorder state, nil when not recording.
func (rt *Runtime) recState() *recState { return rt.rec.Load() }

// Recording reports whether a recorder is attached.
func (rt *Runtime) Recording() bool { return rt.rec.Load() != nil }

// RecordStatus describes the recording state for diagnostics.
type RecordStatus struct {
	Recording bool   `json:"recording"`
	Dir       string `json:"dir,omitempty"`
	Events    uint64 `json:"events"`
	Bytes     uint64 `json:"bytes"`
	Dropped   uint64 `json:"dropped"`
}

// RecordControl is the facade-level recorder lifecycle the /record
// endpoint drives: the facade (which owns recorder construction and the
// trace sink) implements it and installs itself with SetRecordControl.
type RecordControl interface {
	RecordStatus() RecordStatus
	StartRecording(dir string) error
	StopRecording() error
}

// SetRecordControl installs the recorder lifecycle hook used by the
// /record diagnostics endpoint; nil removes it.
func (rt *Runtime) SetRecordControl(ctl RecordControl) {
	if ctl == nil {
		rt.recCtl.Store(nil)
		return
	}
	rt.recCtl.Store(&ctl)
}

// recordControl returns the installed lifecycle hook, nil when none.
func (rt *Runtime) recordControl() RecordControl {
	if p := rt.recCtl.Load(); p != nil {
		return *p
	}
	return nil
}
