package live

import (
	"net"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// supervisor owns all outbound traffic to one remote address. Senders
// only ever enqueue onto its bounded queue (TCPTransport.send), so an
// actor's Send never dials, never touches a socket, and never blocks on
// a slow peer. The supervisor goroutine dials with a timeout, writes
// frames under a write deadline, and on failure reconnects with
// exponential backoff + jitter; after CircuitThreshold consecutive dial
// failures it opens the circuit — sends drop immediately with reason
// circuit_open — and keeps probing at the cooldown cadence (half-open)
// until the peer answers again.
type supervisor struct {
	tr   *TCPTransport
	addr string

	queue chan wireMsg
	quit  chan struct{}
	done  chan struct{}

	// state is supHealthy or supOpen; senders read it lock-free to fail
	// fast while the circuit is broken.
	state atomic.Int32

	// The fields below are owned by the run goroutine.
	r             *rng.Rand // jitter stream, split from the runtime's seed
	conn          net.Conn
	everConnected bool
}

// Supervisor circuit states.
const (
	supHealthy int32 = iota
	supOpen
)

func newSupervisor(t *TCPTransport, addr string, r *rng.Rand) *supervisor {
	return &supervisor{
		tr:    t,
		addr:  addr,
		queue: make(chan wireMsg, t.cfg.QueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		r:     r,
	}
}

// run is the supervisor's event loop: drain the queue, keeping the
// connection alive across failures.
func (s *supervisor) run() {
	defer s.tr.wg.Done()
	defer close(s.done)
	defer s.dropConn()
	for {
		select {
		case <-s.quit:
			return
		case wm := <-s.queue:
			if !s.deliver(wm) {
				return
			}
		}
	}
}

// deliver writes one message, (re)establishing the connection as
// needed. It reports false when the supervisor was told to quit.
func (s *supervisor) deliver(wm wireMsg) bool {
	frame, err := encodeFrame(wm, s.tr.cfg.MaxFrame)
	if err != nil {
		s.tr.countDrop(DropEncodeError)
		s.tr.logTransport(s.addr, "encode failed: "+err.Error())
		return true
	}
	for attempt := 0; ; attempt++ {
		if s.conn == nil {
			if !s.connect() {
				return false
			}
		}
		s.conn.SetWriteDeadline(time.Now().Add(s.tr.cfg.WriteTimeout))
		if _, err := s.conn.Write(frame); err == nil {
			s.tr.countSent()
			return true
		}
		// The connection went bad mid-write; retry once on a fresh
		// connection, then give the message up (best-effort transport).
		s.dropConn()
		if attempt >= 1 {
			s.tr.countDrop(DropWriteError)
			return true
		}
	}
}

// connect dials until a connection is up, backing off exponentially
// with jitter from the supervisor's rng stream. It returns false when
// the supervisor was told to quit. Once the circuit opens, retries slow
// to the cooldown cadence; each retry is the half-open probe.
func (s *supervisor) connect() bool {
	cfg := s.tr.cfg
	backoff := cfg.BackoffBase
	fails := 0
	for {
		conn, err := cfg.Dial(s.addr, cfg.DialTimeout)
		if err == nil {
			s.conn = conn
			reconnect := s.everConnected || fails > 0
			s.everConnected = true
			wasOpen := s.state.Swap(supHealthy) == supOpen
			s.tr.noteConnected(s.addr, reconnect, wasOpen)
			return true
		}
		fails++
		if fails >= cfg.CircuitThreshold && s.state.CompareAndSwap(supHealthy, supOpen) {
			s.tr.noteCircuitOpen(s.addr, err)
		}
		// Full jitter over the upper half keeps a fleet of supervisors
		// from thundering back in lock-step after a peer restart.
		wait := backoff/2 + time.Duration(s.r.Float64()*float64(backoff/2))
		if backoff < cfg.BackoffMax {
			backoff *= 2
			if backoff > cfg.BackoffMax {
				backoff = cfg.BackoffMax
			}
		}
		if s.state.Load() == supOpen && wait < cfg.CircuitCooldown {
			wait = cfg.CircuitCooldown
		}
		timer := time.NewTimer(wait)
		select {
		case <-s.quit:
			timer.Stop()
			return false
		case <-timer.C:
		}
	}
}

// dropConn closes and forgets the current connection.
func (s *supervisor) dropConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.tr.noteDisconnected()
	}
}

// circuitOpen reports whether sends to this peer should fail fast.
func (s *supervisor) circuitOpen() bool { return s.state.Load() == supOpen }
