package live

import (
	"bufio"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// supervisor owns all outbound traffic to one remote address. Senders
// only ever enqueue onto its bounded queue (TCPTransport.send), so an
// actor's Send never dials, never touches a socket, and never blocks on
// a slow peer. The supervisor goroutine dials with a timeout, writes
// frames under a write deadline, and on failure reconnects with
// exponential backoff + jitter; after CircuitThreshold consecutive dial
// failures it opens the circuit — sends drop immediately with reason
// circuit_open — and keeps probing at the cooldown cadence (half-open)
// until the peer answers again.
//
// Two mechanisms ride on the same loop:
//
// Coalescing — each wakeup drains whatever is already queued (bounded
// by FlushBudget and maxBatchBytes) into one buffer and writes it with
// a single syscall. An empty queue flushes immediately, so batching
// never adds latency; it only amortizes write cost when messages are
// already waiting.
//
// Credits — on a v2 connection the remote reader grants message/byte
// credits back over the same socket (readGrants). Senders spend one
// message credit per enqueue and batch-size byte credits per flush;
// when either runs out, new sends shed at the source with reason
// no_credit instead of overwhelming a slow receiver. Until the first
// grant arrives the window is unlimited, which keeps v1 receivers
// (which never grant) interoperable.
type supervisor struct {
	tr   *TCPTransport
	addr string

	queue chan wireMsg
	quit  chan struct{}
	done  chan struct{}

	// state is supHealthy or supOpen; senders read it lock-free to fail
	// fast while the circuit is broken.
	state atomic.Int32

	// Credit window granted by the remote reader. creditOn flips true at
	// the first grant; senders (enqueue) and the flush path spend the
	// window lock-free.
	creditOn    atomic.Bool
	creditMsgs  atomic.Int64
	creditBytes atomic.Int64

	// The fields below are owned by the run goroutine.
	r             *rng.Rand // jitter stream, split from the runtime's seed
	conn          net.Conn
	everConnected bool
	batch         []byte // coalesced frames, capacity reused across flushes
	scratch       []byte // v2 body scratch, capacity reused across frames
}

// Supervisor circuit states.
const (
	supHealthy int32 = iota
	supOpen
)

// maxBatchBytes caps one coalesced write; past it the batch is flushed
// even if more messages are queued.
const maxBatchBytes = 256 << 10

func newSupervisor(t *TCPTransport, addr string, r *rng.Rand) *supervisor {
	return &supervisor{
		tr:    t,
		addr:  addr,
		queue: make(chan wireMsg, t.cfg.QueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		r:     r,
	}
}

// run is the supervisor's event loop: drain the queue, keeping the
// connection alive across failures.
func (s *supervisor) run() {
	defer s.tr.wg.Done()
	defer close(s.done)
	defer s.dropConn()
	for {
		select {
		case <-s.quit:
			return
		case wm := <-s.queue:
			if !s.flush(wm) {
				return
			}
		}
	}
}

// appendMsg encodes one message onto the batch in the configured wire
// dialect. Encode failures drop the message (counted) without
// disturbing the batch.
func (s *supervisor) appendMsg(wm wireMsg) bool {
	var err error
	if s.tr.cfg.WireVersion == 1 {
		s.batch, err = appendFrameV1(s.batch, wm, s.tr.cfg.MaxFrame)
	} else {
		s.batch, err = appendFrameV2(s.batch, wm, s.tr.cfg.MaxFrame, &s.scratch)
	}
	if err != nil {
		s.tr.countDrop(DropEncodeError)
		s.tr.logTransport(s.addr, "encode failed: "+err.Error())
		return false
	}
	return true
}

// flush coalesces first plus whatever else is already queued into one
// buffer and writes it with a single syscall, (re)establishing the
// connection as needed. It reports false when the supervisor was told
// to quit.
func (s *supervisor) flush(first wireMsg) bool {
	cfg := s.tr.cfg
	s.batch = s.batch[:0]
	frames := 0
	if s.appendMsg(first) {
		frames++
	}
	if cfg.FlushBudget > 0 {
		// Drain without blocking: an empty queue flushes immediately, so
		// the budget only caps how long a sustained burst can keep the
		// batch open before bytes hit the wire.
		var deadline time.Time
	drain:
		for len(s.batch) < maxBatchBytes {
			select {
			case wm := <-s.queue:
				if s.appendMsg(wm) {
					frames++
				}
				if deadline.IsZero() {
					deadline = time.Now().Add(cfg.FlushBudget)
				} else if !time.Now().Before(deadline) {
					break drain
				}
			default:
				break drain
			}
		}
	}
	if frames == 0 {
		return true
	}
	if s.creditOn.Load() {
		// Byte credits are spent per flush; enqueue stops admitting new
		// messages once the window is exhausted (briefly negative is
		// fine — the next grant absorbs it).
		s.creditBytes.Add(-int64(len(s.batch)))
	}
	for attempt := 0; ; attempt++ {
		if s.conn == nil {
			if !s.connect() {
				return false
			}
		}
		s.conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
		if _, err := s.conn.Write(s.batch); err == nil {
			s.tr.countSentN(frames)
			s.tr.noteBatch(frames)
			return true
		}
		// The connection went bad mid-write; retry once on a fresh
		// connection, then give the batch up (best-effort transport).
		s.dropConn()
		if attempt >= 1 {
			s.tr.countDropN(DropWriteError, frames)
			return true
		}
	}
}

// connect dials until a connection is up, backing off exponentially
// with jitter from the supervisor's rng stream. It returns false when
// the supervisor was told to quit. Once the circuit opens, retries slow
// to the cooldown cadence; each retry is the half-open probe. On a v2
// connection the preamble byte is written here and a grant reader is
// attached before any frame flows.
func (s *supervisor) connect() bool {
	cfg := s.tr.cfg
	backoff := cfg.BackoffBase
	fails := 0
	for {
		conn, err := cfg.Dial(s.addr, cfg.DialTimeout)
		if err == nil && cfg.WireVersion != 1 {
			conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
			if _, werr := conn.Write([]byte{wireV2Preamble}); werr != nil {
				conn.Close()
				err = werr
			}
		}
		if err == nil {
			s.conn = conn
			if cfg.WireVersion != 1 {
				// Fresh connection, fresh window: the receiver re-issues
				// its initial grant for this socket.
				s.resetCredits()
				s.tr.wg.Add(1)
				go s.readGrants(conn)
			}
			reconnect := s.everConnected || fails > 0
			s.everConnected = true
			wasOpen := s.state.Swap(supHealthy) == supOpen
			s.tr.noteConnected(s.addr, reconnect, wasOpen)
			return true
		}
		fails++
		if fails >= cfg.CircuitThreshold && s.state.CompareAndSwap(supHealthy, supOpen) {
			s.tr.noteCircuitOpen(s.addr, err)
		}
		// Full jitter over the upper half keeps a fleet of supervisors
		// from thundering back in lock-step after a peer restart.
		wait := backoff/2 + time.Duration(s.r.Float64()*float64(backoff/2))
		if backoff < cfg.BackoffMax {
			backoff *= 2
			if backoff > cfg.BackoffMax {
				backoff = cfg.BackoffMax
			}
		}
		if s.state.Load() == supOpen && wait < cfg.CircuitCooldown {
			wait = cfg.CircuitCooldown
		}
		timer := time.NewTimer(wait)
		select {
		case <-s.quit:
			timer.Stop()
			return false
		case <-timer.C:
		}
	}
}

// readGrants consumes credit frames the remote reader sends back on the
// outbound connection, widening the send window. It exits when the
// connection dies (any read error); a replacement is attached by the
// next connect.
func (s *supervisor) readGrants(conn net.Conn) {
	defer s.tr.wg.Done()
	br := bufio.NewReaderSize(conn, 64)
	var buf []byte
	for {
		body, err := readFrameV2(br, maxCreditFrame, buf)
		if err != nil {
			return
		}
		buf = body
		if len(body) == 0 || body[0] != frameCredit {
			return
		}
		msgs, bytes, err := decodeCreditFrame(body)
		if err != nil {
			return
		}
		s.creditMsgs.Add(int64(msgs))
		s.creditBytes.Add(int64(bytes))
		s.creditOn.Store(true)
	}
}

// resetCredits returns the window to "unlimited until first grant".
func (s *supervisor) resetCredits() {
	s.creditOn.Store(false)
	s.creditMsgs.Store(0)
	s.creditBytes.Store(0)
}

// spendCredit admits or sheds one message against the granted window.
// Message credits are spent here at enqueue; byte credits are only
// checked (they are spent per flush, where the batch size is known).
func (s *supervisor) spendCredit() bool {
	if !s.creditOn.Load() {
		return true
	}
	if s.creditMsgs.Load() <= 0 || s.creditBytes.Load() <= 0 {
		return false
	}
	s.creditMsgs.Add(-1)
	return true
}

// refundCredit returns one message credit (enqueue admitted the message
// but the queue turned out to be full).
func (s *supervisor) refundCredit() {
	if s.creditOn.Load() {
		s.creditMsgs.Add(1)
	}
}

// dropConn closes and forgets the current connection. Credits die with
// the socket: the grant reader exits on the close and the next
// connection starts a fresh window.
func (s *supervisor) dropConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.resetCredits()
		s.tr.noteDisconnected()
	}
}

// circuitOpen reports whether sends to this peer should fail fast.
func (s *supervisor) circuitOpen() bool { return s.state.Load() == supOpen }
