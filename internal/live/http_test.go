package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestServeDiagnostics(t *testing.T) {
	rt := NewRuntime(1)
	defer rt.Shutdown()
	reg := metrics.NewRegistry()
	reg.Counter("p2p_sessions_submitted_total", "help", metrics.Labels{"domain": "0"}).Add(5)
	reg.Gauge("p2p_peer_load", "help", metrics.Labels{"domain": "0", "peer": "1"}).Set(2.5)

	ds, err := rt.ServeDiagnostics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	prom, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(prom, `p2p_sessions_submitted_total{domain="0"} 5`) {
		t.Fatalf("/metrics missing counter:\n%s", prom)
	}
	if !strings.Contains(prom, `p2p_peer_load{domain="0",peer="1"} 2.5`) {
		t.Fatalf("/metrics missing gauge:\n%s", prom)
	}

	js, _ := get("/metrics.json")
	var doc struct {
		Families []metrics.FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if len(doc.Families) != 2 {
		t.Fatalf("/metrics.json families = %d", len(doc.Families))
	}

	health, _ := get("/healthz")
	var h map[string]any
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatalf("/healthz invalid: %v", err)
	}
	if h["status"] != "ok" {
		t.Fatalf("/healthz = %v", h)
	}

	if idx, _ := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
}

func TestServeDiagnosticsNilRegistry(t *testing.T) {
	rt := NewRuntime(1)
	defer rt.Shutdown()
	ds, err := rt.ServeDiagnostics("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
