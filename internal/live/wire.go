package live

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/env"
	"repro/internal/proto"
)

// This file is the live transport's wire format, two dialects of it:
//
// v1 — a 4-byte big-endian length prefix followed by a self-contained
// gob encoding of one wireMsg. The prefix lets the reader bound every
// allocation before touching the gob decoder, and making each frame a
// fresh gob stream keeps frames independently decodable: a corrupt
// payload costs one message, not the decoder state of the connection.
//
// v2 — a connection opens with one preamble byte (wireV2Preamble),
// then carries uvarint-length-prefixed frames: [uvarint len][u8 frame
// kind][body]. Data frames encode the routing pair as varints and the
// payload with the zero-alloc proto codec (frameData) or, for types
// outside the core set, a self-contained gob stream (frameDataGob).
// Credit frames (frameCredit) flow the other way on the same
// connection: the receiver grants message/byte credits the sender's
// supervisor spends (supervisor.go).
//
// Negotiation is the preamble byte: a v1 frame always begins 0x00 (a
// big-endian length below 16 MiB), so the receiver peeks one byte and
// speaks whichever dialect the sender declared. Receivers accept both;
// TransportConfig.WireVersion selects what a sender speaks.

// DefaultMaxFrame bounds one frame's payload; frames larger than the
// limit are refused on both the encode and decode side. The largest
// legitimate messages (backup-sync snapshots) are a few hundred KB at
// paper scale, so 8 MiB leaves generous headroom.
const DefaultMaxFrame = 8 << 20

// frameHeaderLen is the v1 length-prefix size.
const frameHeaderLen = 4

// wireV2Preamble is the first byte of a v2 connection. Any value that a
// v1 frame cannot start with works; v1 length prefixes start 0x00 for
// every frame under 16 MiB.
const wireV2Preamble = 0xB2

// v2 frame kinds (first byte of every v2 frame body).
const (
	// frameData: varint from, varint to, one proto-codec message.
	frameData = 0x01
	// frameDataGob: a self-contained gob wireMsg, for payload types
	// outside the core codec set.
	frameDataGob = 0x02
	// frameCredit: uvarint message credits, uvarint byte credits;
	// written by the receiving side of a connection back to the sender.
	frameCredit = 0x03
)

// maxCreditFrame bounds a credit frame read by the sender-side grant
// reader: kind byte plus two maximal uvarints, rounded up.
const maxCreditFrame = 32

// errFrameTooLarge marks a frame whose declared payload exceeds the
// transport's limit. The connection cannot be resynchronized past it.
var errFrameTooLarge = errors.New("live: frame exceeds size limit")

// sliceWriter adapts an append-grown []byte to io.Writer so gob can
// encode into pooled buffers without a bytes.Buffer allocation.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// appendFrameV1 appends wm to dst as one v1 length-prefixed gob frame.
// dst's spare capacity is reused across calls — the steady-state v1
// path allocates only what gob itself allocates.
func appendFrameV1(dst []byte, wm wireMsg, maxFrame int) ([]byte, error) {
	start := len(dst)
	sw := sliceWriter{b: append(dst, make([]byte, frameHeaderLen)...)}
	if err := gob.NewEncoder(&sw).Encode(wm); err != nil {
		return dst, err
	}
	n := len(sw.b) - start - frameHeaderLen
	if maxFrame > 0 && n > maxFrame {
		return dst, fmt.Errorf("%w: %d > %d bytes", errFrameTooLarge, n, maxFrame)
	}
	binary.BigEndian.PutUint32(sw.b[start:], uint32(n))
	return sw.b, nil
}

// encodeFrame renders wm as one v1 frame ready to write.
func encodeFrame(wm wireMsg, maxFrame int) ([]byte, error) {
	return appendFrameV1(nil, wm, maxFrame)
}

// readFrameBuf reads one v1 length-prefixed payload from r into buf
// (grown as needed, reused across calls). Frame-level errors (short
// reads, oversized declarations) are unrecoverable for the stream;
// payload corruption is left for decodeFrame to report so the caller
// can keep the connection.
func readFrameBuf(r io.Reader, maxFrame int, buf []byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if maxFrame > 0 && n > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: declared %d > %d bytes", errFrameTooLarge, n, maxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readFrame reads one v1 length-prefixed payload from r.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	return readFrameBuf(r, maxFrame, nil)
}

// decodeFrame decodes one frame payload produced by encodeFrame (or a
// v2 gob-fallback body).
func decodeFrame(payload []byte) (wireMsg, error) {
	var wm wireMsg
	err := gob.NewDecoder(newByteReader(payload)).Decode(&wm)
	return wm, err
}

// byteReader is a pooled-friendly replacement for bytes.NewReader on
// the decode path: decodeFrame is called once per inbound frame and a
// bytes.Reader would be one allocation per message.
type byteReader struct {
	b   []byte
	pos int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	c := r.b[r.pos]
	r.pos++
	return c, nil
}

// appendFrameV2 appends wm to dst as one v2 frame: core-set payloads
// through the proto codec, everything else as a gob fallback body.
// scratch holds the frame body between calls so the length prefix can
// be sized exactly; both buffers' capacity is reused across calls and
// the core-set path allocates nothing.
func appendFrameV2(dst []byte, wm wireMsg, maxFrame int, scratch *[]byte) ([]byte, error) {
	body := append((*scratch)[:0], frameData)
	body = binary.AppendVarint(body, int64(wm.From))
	body = binary.AppendVarint(body, int64(wm.To))
	body, ok := proto.AppendMessage(body, wm.Payload)
	if !ok {
		// Not in the core set: self-contained gob wireMsg, one tag byte
		// of v2 framing around the v1 encoding idiom.
		sw := sliceWriter{b: append((*scratch)[:0], frameDataGob)}
		if err := gob.NewEncoder(&sw).Encode(wm); err != nil {
			*scratch = sw.b
			return dst, err
		}
		body = sw.b
	}
	*scratch = body
	if maxFrame > 0 && len(body) > maxFrame {
		return dst, fmt.Errorf("%w: %d > %d bytes", errFrameTooLarge, len(body), maxFrame)
	}
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...), nil
}

// appendCreditFrame appends one v2 credit grant to dst.
func appendCreditFrame(dst []byte, msgs, bytes uint64) []byte {
	var body [1 + 2*binary.MaxVarintLen64]byte
	b := append(body[:0], frameCredit)
	b = binary.AppendUvarint(b, msgs)
	b = binary.AppendUvarint(b, bytes)
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// readFrameV2 reads one uvarint-length-prefixed v2 frame body from r
// into buf (grown as needed, reused across calls).
func readFrameV2(r *bufio.Reader, maxFrame int, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if (maxFrame > 0 && n > uint64(maxFrame)) || n > DefaultMaxFrame*4 {
		return nil, fmt.Errorf("%w: declared %d > %d bytes", errFrameTooLarge, n, maxFrame)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// decodeFrameV2Data decodes a frameData body (kind byte already
// inspected, still present at body[0]).
func decodeFrameV2Data(body []byte) (wireMsg, error) {
	var wm wireMsg
	b := body[1:]
	from, n := binary.Varint(b)
	if n <= 0 {
		return wm, errors.New("live: v2 frame: bad from")
	}
	b = b[n:]
	to, n := binary.Varint(b)
	if n <= 0 {
		return wm, errors.New("live: v2 frame: bad to")
	}
	b = b[n:]
	m, err := proto.DecodeMessage(b)
	if err != nil {
		return wm, err
	}
	wm.From, wm.To, wm.Payload = env.NodeID(from), env.NodeID(to), m
	return wm, nil
}

// decodeCreditFrame parses a frameCredit body (kind byte at body[0]).
func decodeCreditFrame(body []byte) (msgs, bytes uint64, err error) {
	b := body[1:]
	msgs, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, errors.New("live: credit frame: bad message count")
	}
	b = b[n:]
	bytes, n = binary.Uvarint(b)
	if n <= 0 || len(b) != n {
		return 0, 0, errors.New("live: credit frame: bad byte count")
	}
	return msgs, bytes, nil
}
