package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// This file is the live transport's wire format: a 4-byte big-endian
// length prefix followed by a self-contained gob encoding of one wireMsg.
// The prefix lets the reader bound every allocation before touching the
// gob decoder (a bare gob stream happily allocates whatever a hostile or
// corrupt peer declares), and making each frame a fresh gob stream keeps
// frames independently decodable: a corrupt payload costs one message,
// not the decoder state of the whole connection.

// DefaultMaxFrame bounds one frame's payload; frames larger than the
// limit are refused on both the encode and decode side. The largest
// legitimate messages (backup-sync snapshots) are a few hundred KB at
// paper scale, so 8 MiB leaves generous headroom.
const DefaultMaxFrame = 8 << 20

// frameHeaderLen is the length-prefix size.
const frameHeaderLen = 4

// errFrameTooLarge marks a frame whose declared payload exceeds the
// transport's limit. The connection cannot be resynchronized past it.
var errFrameTooLarge = errors.New("live: frame exceeds size limit")

// encodeFrame renders wm as one length-prefixed frame ready to write.
func encodeFrame(wm wireMsg, maxFrame int) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderLen)) // reserve the prefix
	if err := gob.NewEncoder(&buf).Encode(wm); err != nil {
		return nil, err
	}
	b := buf.Bytes()
	n := len(b) - frameHeaderLen
	if maxFrame > 0 && n > maxFrame {
		return nil, fmt.Errorf("%w: %d > %d bytes", errFrameTooLarge, n, maxFrame)
	}
	binary.BigEndian.PutUint32(b[:frameHeaderLen], uint32(n))
	return b, nil
}

// readFrame reads one length-prefixed payload from r. Frame-level errors
// (short reads, oversized declarations) are unrecoverable for the
// stream; payload corruption is left for decodeFrame to report so the
// caller can keep the connection.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if maxFrame > 0 && n > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: declared %d > %d bytes", errFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// decodeFrame decodes one frame payload produced by encodeFrame.
func decodeFrame(payload []byte) (wireMsg, error) {
	var wm wireMsg
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wm)
	return wm, err
}
