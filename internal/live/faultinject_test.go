package live

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestFaultRulePrecedence(t *testing.T) {
	fi := NewFaultInjector(rng.New(1))
	// Wildcard severs everything; a specific rule must still win.
	fi.Set(AnyNode, AnyNode, FaultRule{Sever: true})
	fi.Set(1, 2, FaultRule{Delay: 5 * time.Millisecond})
	fi.Set(1, AnyNode, FaultRule{Sever: true})
	fi.Set(AnyNode, 4, FaultRule{Delay: time.Millisecond})

	if d := fi.decide(1, 2); d.drop || d.delay != 5*time.Millisecond {
		t.Fatalf("(1,2) should hit the exact rule, got %+v", d)
	}
	if d := fi.decide(1, 9); !d.drop {
		t.Fatalf("(1,9) should hit (1,*) sever, got %+v", d)
	}
	if d := fi.decide(3, 4); d.drop || d.delay != time.Millisecond {
		t.Fatalf("(3,4) should hit (*,4) delay, got %+v", d)
	}
	if d := fi.decide(8, 9); !d.drop {
		t.Fatalf("(8,9) should hit the (*,*) sever, got %+v", d)
	}

	fi.Heal(1, 2)
	if d := fi.decide(1, 2); !d.drop {
		t.Fatalf("(1,2) after heal should fall through to (1,*) sever, got %+v", d)
	}
	fi.Reset()
	if d := fi.decide(8, 9); d.drop || d.dup || d.delay != 0 {
		t.Fatalf("after Reset nothing should be impaired, got %+v", d)
	}
}

func TestFaultInjectorDropDupDelayStats(t *testing.T) {
	fi := NewFaultInjector(rng.New(2))
	fi.Set(1, 2, FaultRule{Drop: 1})
	fi.Set(3, 4, FaultRule{Dup: 1, Delay: time.Millisecond})
	for i := 0; i < 10; i++ {
		if d := fi.decide(1, 2); !d.drop {
			t.Fatal("Drop=1 must always drop")
		}
		d := fi.decide(3, 4)
		if d.drop || !d.dup || d.delay != time.Millisecond {
			t.Fatalf("Dup=1+Delay rule gave %+v", d)
		}
	}
	st := fi.Stats()
	if st.Dropped != 10 || st.Duplicated != 10 || st.Delayed != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultInjectorNilSafe(t *testing.T) {
	var fi *FaultInjector
	if d := fi.decide(1, 2); d.drop || d.dup || d.delay != 0 {
		t.Fatalf("nil injector impaired traffic: %+v", d)
	}
	if fi.Rules() != nil {
		t.Fatal("nil injector has rules")
	}
	if fi.Stats() != (FaultStats{}) {
		t.Fatal("nil injector has stats")
	}
}

func TestRuntimeFaultInjectorLocalDelivery(t *testing.T) {
	rt := NewRuntime(31)
	defer rt.Shutdown()
	a := &collector{}
	b := &collector{}
	ida := rt.AddNode(a)
	idb := rt.AddNode(b)

	rt.EnsureFaultInjector().Sever(ida, idb)
	rt.Call(ida, func() { a.ctx.Send(idb, note{S: "lost"}) })
	time.Sleep(50 * time.Millisecond)
	if b.count() != 0 {
		t.Fatal("severed in-process delivery got through")
	}

	rt.FaultInjector().Heal(ida, idb)
	rt.FaultInjector().Heal(idb, ida)
	rt.Call(ida, func() { a.ctx.Send(idb, note{S: "ok"}) })
	waitFor(t, time.Second, func() bool { return b.count() == 1 })

	// Duplication: exactly two copies per send.
	rt.FaultInjector().Set(ida, idb, FaultRule{Dup: 1})
	rt.Call(ida, func() { a.ctx.Send(idb, note{S: "twice"}) })
	waitFor(t, time.Second, func() bool { return b.count() == 3 })

	// Delay: delivery happens, later.
	rt.FaultInjector().Set(ida, idb, FaultRule{Delay: 30 * time.Millisecond})
	rt.Call(ida, func() { a.ctx.Send(idb, note{S: "late"}) })
	if b.count() != 3 {
		t.Fatal("delayed message arrived immediately")
	}
	waitFor(t, time.Second, func() bool { return b.count() == 4 })
}

func TestFaultsEndpoint(t *testing.T) {
	rt := NewRuntime(32)
	defer rt.Shutdown()
	ds, err := rt.ServeDiagnostics("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr() + "/faults"

	do := func(method, query string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, base+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Empty to start.
	if code, body := do(http.MethodGet, ""); code != 200 {
		t.Fatalf("GET = %d %s", code, body)
	}

	// Install a rule, read it back.
	if code, body := do(http.MethodPost, "?from=1&to=2&drop=0.5&delay=10ms"); code != 200 {
		t.Fatalf("POST = %d %s", code, body)
	}
	_, body := do(http.MethodGet, "")
	var doc struct {
		Rules []FaultRuleEntry `json:"rules"`
		Stats FaultStats       `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("GET body %q: %v", body, err)
	}
	if len(doc.Rules) != 1 || doc.Rules[0].From != 1 || doc.Rules[0].To != 2 ||
		doc.Rules[0].Rule.Drop != 0.5 || doc.Rules[0].Rule.Delay != 10*time.Millisecond {
		t.Fatalf("rules = %+v", doc.Rules)
	}

	// Wildcard sever, then heal one pair, then reset everything.
	if code, _ := do(http.MethodPost, "?from=*&to=3&sever=true"); code != 200 {
		t.Fatal("POST wildcard failed")
	}
	if code, _ := do(http.MethodDelete, "?from=1&to=2"); code != 200 {
		t.Fatal("DELETE pair failed")
	}
	_, body = do(http.MethodGet, "")
	doc.Rules = nil
	json.Unmarshal([]byte(body), &doc)
	if len(doc.Rules) != 1 || doc.Rules[0].To != 3 {
		t.Fatalf("after heal rules = %+v", doc.Rules)
	}
	code, body := do(http.MethodDelete, "")
	if code != 200 {
		t.Fatal("DELETE all failed")
	}
	var clearRes struct {
		Status  string `json:"status"`
		Cleared int    `json:"cleared"`
	}
	if err := json.Unmarshal([]byte(body), &clearRes); err != nil {
		t.Fatalf("DELETE all body %q: %v", body, err)
	}
	if clearRes.Status != "ok" || clearRes.Cleared != 1 {
		t.Fatalf("DELETE all = %+v, want status ok cleared 1", clearRes)
	}
	_, body = do(http.MethodGet, "")
	doc.Rules = nil
	json.Unmarshal([]byte(body), &doc)
	if len(doc.Rules) != 0 {
		t.Fatalf("after reset rules = %+v", doc.Rules)
	}

	// Malformed requests are rejected.
	if code, _ := do(http.MethodPost, "?drop=1.5"); code != http.StatusBadRequest {
		t.Fatal("out-of-range probability accepted")
	}
	if code, _ := do(http.MethodPost, "?from=xyz"); code != http.StatusBadRequest {
		t.Fatal("bad node id accepted")
	}
	if code, _ := do(http.MethodPost, "?delay=fast"); code != http.StatusBadRequest {
		t.Fatal("bad delay accepted")
	}
}

func TestFaultInjectorClear(t *testing.T) {
	var nilFI *FaultInjector
	if n := nilFI.Clear(); n != 0 {
		t.Fatalf("nil Clear = %d", n)
	}
	fi := NewFaultInjector(rng.New(5))
	if n := fi.Clear(); n != 0 {
		t.Fatalf("empty Clear = %d", n)
	}
	fi.Set(1, 2, FaultRule{Drop: 1})
	fi.Set(AnyNode, 3, FaultRule{Sever: true})
	fi.Sever(4, 5) // installs both directions
	if n := fi.Clear(); n != 4 {
		t.Fatalf("Clear = %d, want 4", n)
	}
	if rules := fi.Rules(); len(rules) != 0 {
		t.Fatalf("rules after Clear = %+v", rules)
	}
	if d := fi.decide(1, 2); d.drop || d.dup || d.delay != 0 {
		t.Fatalf("decide after Clear impaired traffic: %+v", d)
	}
	// The injector stays usable: new rules after Clear take effect.
	fi.Set(1, 2, FaultRule{Drop: 1})
	if d := fi.decide(1, 2); !d.drop {
		t.Fatal("rule installed after Clear was ignored")
	}
}

// TestFaultRulePrecedenceInProcessDelivery pins the specificity order
// (from,to) > (from,*) > (*,to) > (*,*) on the Runtime's in-process
// delivery hook: a blanket sever must not shadow a more specific
// delay-only rule, and healing the specific rule falls back to the
// blanket one.
func TestFaultRulePrecedenceInProcessDelivery(t *testing.T) {
	rt := NewRuntime(33)
	defer rt.Shutdown()
	a := &collector{}
	b := &collector{}
	ida := rt.AddNode(a)
	idb := rt.AddNode(b)
	fi := rt.EnsureFaultInjector()

	send := func() { rt.Call(ida, func() { a.ctx.Send(idb, note{S: "x"}) }) }

	fi.Set(AnyNode, AnyNode, FaultRule{Sever: true})
	send()
	waitFor(t, time.Second, func() bool { return fi.Stats().Dropped == 1 })
	if b.count() != 0 {
		t.Fatal("(*,*) sever let an in-process message through")
	}

	// (*,to) delay beats the blanket sever.
	fi.Set(AnyNode, idb, FaultRule{Delay: time.Millisecond})
	send()
	waitFor(t, time.Second, func() bool { return b.count() == 1 })

	// (from,*) sever beats (*,to).
	fi.Set(ida, AnyNode, FaultRule{Sever: true})
	send()
	waitFor(t, time.Second, func() bool { return fi.Stats().Dropped == 2 })
	if b.count() != 1 {
		t.Fatal("(from,*) sever did not shadow (*,to)")
	}

	// (from,to) beats everything.
	fi.Set(ida, idb, FaultRule{Delay: time.Millisecond})
	send()
	waitFor(t, time.Second, func() bool { return b.count() == 2 })

	// Healing the exact pair falls back to (from,*) sever.
	fi.Heal(ida, idb)
	send()
	waitFor(t, time.Second, func() bool { return fi.Stats().Dropped == 3 })
	if b.count() != 2 {
		t.Fatal("heal of the exact rule did not fall back to (from,*)")
	}
}

// TestFaultRulePrecedenceTCPOutbound pins the same specificity order on
// the TCP transport's outbound hook (sender-side impairment of real
// socket traffic between two runtimes).
func TestFaultRulePrecedenceTCPOutbound(t *testing.T) {
	rtA := NewRuntime(34)
	rtB := NewRuntime(35)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	trA := NewTCPTransport(rtA)
	defer trA.Close()
	trB := NewTCPTransport(rtB)
	defer trB.Close()
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := &collector{}
	b := &collector{}
	rtA.AddNodeWithID(0, a)
	rtB.AddNodeWithID(1, b)
	trA.Register(1, addrB)
	fi := rtA.EnsureFaultInjector()

	send := func() { rtA.Call(0, func() { a.ctx.Send(1, note{S: "x"}) }) }

	// Warm the path unimpaired first so drops below are unambiguous.
	send()
	waitFor(t, 2*time.Second, func() bool { return b.count() == 1 })

	fi.Set(AnyNode, AnyNode, FaultRule{Sever: true})
	send()
	waitFor(t, time.Second, func() bool { return fi.Stats().Dropped == 1 })

	// (*,to) delay beats the blanket sever.
	fi.Set(AnyNode, 1, FaultRule{Delay: time.Millisecond})
	send()
	waitFor(t, 2*time.Second, func() bool { return b.count() == 2 })

	// (from,*) sever beats (*,to).
	fi.Set(0, AnyNode, FaultRule{Sever: true})
	send()
	waitFor(t, time.Second, func() bool { return fi.Stats().Dropped == 2 })

	// (from,to) beats everything.
	fi.Set(0, 1, FaultRule{Delay: time.Millisecond})
	send()
	waitFor(t, 2*time.Second, func() bool { return b.count() == 3 })

	// Clear heals the whole matrix in one call.
	if n := fi.Clear(); n != 4 {
		t.Fatalf("Clear = %d, want 4", n)
	}
	send()
	waitFor(t, 2*time.Second, func() bool { return b.count() == 4 })
	if st := trA.Stats(); st.Drops[DropFault.String()] != 2 {
		t.Fatalf("transport fault-drop count = %d, want 2", st.Drops[DropFault.String()])
	}
}
