package live

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastTransport returns a config with short timeouts for tests that
// exercise reconnect and circuit-breaker paths.
func fastTransport() TransportConfig {
	return TransportConfig{
		DialTimeout:      500 * time.Millisecond,
		WriteTimeout:     500 * time.Millisecond,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       20 * time.Millisecond,
		CircuitThreshold: 3,
		CircuitCooldown:  20 * time.Millisecond,
	}
}

func TestSupervisorReconnectsAfterPeerRestart(t *testing.T) {
	rtA := NewRuntime(40)
	rtB := NewRuntime(41)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	cfg := fastTransport()
	cfg.CircuitThreshold = 100 // keep the circuit closed across the restart window
	trA := NewTCPTransportOpts(rtA, cfg, nil, nil)
	defer trA.Close()
	trB := NewTCPTransport(rtB)
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := &collector{}
	b := &collector{}
	rtA.AddNodeWithID(0, a)
	rtB.AddNodeWithID(1, b)
	trA.Register(1, addrB)

	rtA.Call(0, func() { a.ctx.Send(1, note{S: "before"}) })
	waitFor(t, 2*time.Second, func() bool { return b.count() == 1 })

	// Kill the peer's transport, then bring a new one up on the same
	// address: the supervisor must notice the dead connection and redial.
	trB.Close()
	trB2 := NewTCPTransport(rtB)
	defer trB2.Close()
	if _, err := trB2.Listen(addrB); err != nil {
		t.Fatalf("rebind %s: %v", addrB, err)
	}

	// The first sends after the restart may be consumed by the dead
	// connection's kernel buffer; keep sending until one lands.
	waitFor(t, 5*time.Second, func() bool {
		rtA.Call(0, func() { a.ctx.Send(1, note{S: "after"}) })
		return b.count() >= 2
	})
	if st := trA.Stats(); st.Reconnects < 1 {
		t.Fatalf("stats after restart = %+v, want >= 1 reconnect", st)
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	rtA := NewRuntime(42)
	rtB := NewRuntime(43)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	trB := NewTCPTransport(rtB)
	defer trB.Close()
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var healthy atomic.Bool
	cfg := fastTransport()
	cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		if !healthy.Load() {
			return nil, errors.New("synthetic dial failure")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	trA := NewTCPTransportOpts(rtA, cfg, nil, nil)
	defer trA.Close()
	a := &collector{}
	b := &collector{}
	rtA.AddNodeWithID(0, a)
	rtB.AddNodeWithID(1, b)
	trA.Register(1, addrB)

	// First send parks in the supervisor, which fails CircuitThreshold
	// dials and opens the circuit.
	rtA.Call(0, func() { a.ctx.Send(1, note{S: "held"}) })
	waitFor(t, 5*time.Second, func() bool { return trA.Stats().CircuitOpens == 1 })

	// While open, new sends fail fast with reason circuit_open.
	waitFor(t, 5*time.Second, func() bool {
		rtA.Call(0, func() { a.ctx.Send(1, note{S: "shed"}) })
		return trA.Stats().Drops["circuit_open"] >= 1
	})
	if b.count() != 0 {
		t.Fatal("messages arrived while the peer was unreachable")
	}

	// Heal the link: the next probe reconnects, the held message is the
	// probe payload, and traffic flows again.
	healthy.Store(true)
	waitFor(t, 5*time.Second, func() bool { return b.count() >= 1 })
	waitFor(t, 5*time.Second, func() bool {
		rtA.Call(0, func() { a.ctx.Send(1, note{S: "resumed"}) })
		return b.count() >= 2
	})
	if st := trA.Stats(); st.Connects < 1 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestTransportEncodeErrorDropsMessage(t *testing.T) {
	rt := NewRuntime(44)
	defer rt.Shutdown()
	cfg := fastTransport()
	cfg.MaxFrame = 64 // anything real exceeds this
	tr := NewTCPTransportOpts(rt, cfg, nil, nil)
	defer tr.Close()
	a := &collector{}
	rt.AddNodeWithID(0, a)
	tr.Register(1, "127.0.0.1:1") // never dialed: encode fails first

	rt.Call(0, func() { a.ctx.Send(1, note{S: strings.Repeat("x", 4096)}) })
	waitFor(t, 2*time.Second, func() bool { return tr.Stats().Drops["encode_error"] == 1 })
}

func TestTransportNoRouteDrop(t *testing.T) {
	rt := NewRuntime(45)
	defer rt.Shutdown()
	tr := NewTCPTransport(rt)
	defer tr.Close()
	a := &collector{}
	rt.AddNodeWithID(0, a)

	rt.Call(0, func() { a.ctx.Send(99, note{S: "nowhere"}) })
	waitFor(t, 2*time.Second, func() bool { return tr.Stats().Drops["no_route"] == 1 })
	if rt.Dropped() != 1 {
		t.Fatalf("runtime dropped = %d, want 1", rt.Dropped())
	}
}

func TestInboundDecodeErrorKeepsConnection(t *testing.T) {
	rt := NewRuntime(46)
	defer rt.Shutdown()
	tr := NewTCPTransport(rt)
	defer tr.Close()
	addr, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := &collector{}
	rt.AddNodeWithID(1, b)

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A well-framed frame whose payload is garbage must cost exactly one
	// message — the next frame on the same connection still delivers.
	if _, err := c.Write([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	frame, err := encodeFrame(wireMsg{From: 0, To: 1, Payload: note{S: "alive"}}, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return b.count() == 1 })
	if st := tr.Stats(); st.DecodeErrors != 1 || st.FramesRx != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInboundOversizedFrameClosesConnection(t *testing.T) {
	rt := NewRuntime(47)
	defer rt.Shutdown()
	cfg := fastTransport()
	cfg.MaxFrame = 1024
	tr := NewTCPTransportOpts(rt, cfg, nil, nil)
	defer tr.Close()
	addr, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return tr.Stats().FrameErrors == 1 })
	// The reader must have hung up rather than trying to resync.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after framing violation")
	}
}

func TestTransportClosedRejectsSends(t *testing.T) {
	rt := NewRuntime(48)
	defer rt.Shutdown()
	tr := NewTCPTransport(rt)
	a := &collector{}
	rt.AddNodeWithID(0, a)
	tr.Register(1, "127.0.0.1:1")
	tr.Close()
	before := rt.Dropped()
	rt.Call(0, func() { a.ctx.Send(1, note{S: "too late"}) })
	waitFor(t, 2*time.Second, func() bool { return rt.Dropped() == before+1 })
}

func TestTransportCloseRacesAccept(t *testing.T) {
	// Regression for the acceptLoop/Close race: connections arriving
	// while Close runs must never wg.Add after wg.Wait started. Run a
	// burst of dial-while-close rounds; -race verifies the rest.
	for i := 0; i < 20; i++ {
		rt := NewRuntime(uint64(49 + i))
		tr := NewTCPTransport(rt)
		addr, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 10; j++ {
				c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
				if err != nil {
					return
				}
				c.Close()
			}
		}()
		tr.Close()
		<-done
		rt.Shutdown()
	}
}
