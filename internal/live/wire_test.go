package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"testing"
)

func init() {
	// note is the test payload used across live transport tests; wireMsg
	// carries it through an interface, so gob needs the concrete type.
	gob.Register(note{})
}

func TestWireFrameRoundTrip(t *testing.T) {
	in := wireMsg{From: 3, To: 7, Payload: note{S: "payload"}}
	frame, err := encodeFrame(in, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(bytes.NewReader(frame), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.From != 3 || out.To != 7 || out.Payload.(note).S != "payload" {
		t.Fatalf("round trip mangled message: %#v", out)
	}
}

func TestWireFrameEncodeRejectsOversized(t *testing.T) {
	_, err := encodeFrame(wireMsg{Payload: note{S: string(make([]byte, 4096))}}, 64)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("err = %v, want errFrameTooLarge", err)
	}
}

func TestWireFrameReadRejectsOversizedDeclaration(t *testing.T) {
	// A header declaring a giant payload must be refused before any
	// allocation, regardless of how few bytes follow.
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	_, err := readFrame(bytes.NewReader(hdr[:]), DefaultMaxFrame)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("err = %v, want errFrameTooLarge", err)
	}
}

func TestWireFrameTruncated(t *testing.T) {
	frame, err := encodeFrame(wireMsg{From: 1, To: 2, Payload: note{S: "x"}}, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut += 3 {
		_, err := readFrame(bytes.NewReader(frame[:cut]), DefaultMaxFrame)
		if err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) read without error", cut, len(frame))
		}
		if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncated frame (%d bytes): err = %v, want EOF-ish", cut, err)
		}
	}
}

// FuzzWireFrame feeds arbitrary byte streams through the inbound framing
// path (readFrame + decodeFrame in a loop, as readLoop does). No input
// may panic, allocate unboundedly, or wedge the reader: every stream must
// terminate in an error or EOF within a bounded number of frames.
func FuzzWireFrame(f *testing.F) {
	valid, err := encodeFrame(wireMsg{From: 1, To: 2, Payload: note{S: "seed"}}, DefaultMaxFrame)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated payload
	f.Add(valid[:2])            // truncated header
	oversized := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(oversized, 1<<31)
	f.Add(oversized)
	f.Add([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef})   // garbage payload
	f.Add(append(append([]byte{}, valid...), valid...)) // two frames back-to-back

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		const maxFrame = 1 << 16
		// Every iteration consumes at least the 4-byte header, so the
		// loop is bounded by len(data); cap it anyway as a wedge guard.
		for i := 0; i <= len(data)/frameHeaderLen+1; i++ {
			payload, err := readFrame(r, maxFrame)
			if err != nil {
				return // stream over or unrecoverable: readLoop closes
			}
			decodeFrame(payload) // errors here keep the connection
		}
		t.Fatalf("reader failed to make progress on %d bytes", len(data))
	})
}
