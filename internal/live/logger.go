package live

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Logger writes structured key=value (logfmt) lines, one per call, with
// the writes serialized so every node goroutine can share one instance.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger creates a logger writing logfmt lines to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w}
}

// Log writes one line from alternating key, value pairs; a trailing
// unpaired value gets the key "msg". Values that would be ambiguous bare
// (spaces, quotes, '=') are quoted. A nil logger discards everything.
func (l *Logger) Log(pairs ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i+1 >= len(pairs) {
			b.WriteString("msg=")
			b.WriteString(quoteValue(pairs[i]))
			break
		}
		fmt.Fprintf(&b, "%v", pairs[i])
		b.WriteByte('=')
		b.WriteString(quoteValue(pairs[i+1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// quoteValue renders one logfmt value, quoting when needed.
func quoteValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// Logf implements env.Context on liveNode: node diagnostics become logfmt
// lines prefixed with uptime and node ID, e.g.
//
//	t=1.204s node=n3 msg="took over as RM of domain 0 (5 peers, 2 sessions)"
func (n *liveNode) Logf(format string, args ...any) {
	if lg := n.rt.Logger; lg != nil {
		lg.Log(
			"t", time.Since(n.rt.start).Truncate(time.Millisecond),
			"node", fmt.Sprintf("n%d", n.id),
			"msg", fmt.Sprintf(format, args...),
		)
	}
}
