package live

import (
	"sync"
	"testing"
	"time"

	"repro/internal/env"
)

// gatedActor blocks in Init until released, so its mailbox fills while
// the loop is stuck — the only way to overflow a mailbox deterministically.
type gatedActor struct {
	gate chan struct{}
}

func (g *gatedActor) Init(env.Context) { <-g.gate }
func (g *gatedActor) Stop()            {}
func (g *gatedActor) Receive(from env.NodeID, m env.Message) {
}

func TestMailboxOverflowCounted(t *testing.T) {
	rt := NewRuntime(70)
	defer rt.Shutdown()
	g := &gatedActor{gate: make(chan struct{})}
	id := rt.AddNode(g)

	// With the loop parked in Init, exactly MailboxDepth envelopes fit;
	// everything beyond that must be counted, not silently lost.
	const extra = 50
	for i := 0; i < MailboxDepth+extra; i++ {
		rt.Inject(99, id, note{S: "flood"})
	}
	if got := rt.Dropped(); got != extra {
		t.Fatalf("dropped = %d, want %d", got, extra)
	}
	close(g.gate)
}

func TestInjectUnknownNodeCounted(t *testing.T) {
	rt := NewRuntime(71)
	defer rt.Shutdown()
	rt.Inject(0, 42, note{S: "nobody home"})
	if got := rt.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1 (injection for un-hosted ID)", got)
	}
}

func TestKillRacesCall(t *testing.T) {
	// Call racing Kill must always return — false if the node died first,
	// true if the closure ran — and never hang on a discarded mailbox.
	for i := 0; i < 200; i++ {
		rt := NewRuntime(uint64(72 + i))
		a := &collector{}
		id := rt.AddNode(a)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			rt.Call(id, func() {}) // either outcome is fine; it must return
		}()
		go func() {
			defer wg.Done()
			rt.Kill(id)
			// Kill has completed, so a fresh Call must report false.
			if rt.Call(id, func() {}) {
				t.Errorf("iteration %d: Call after Kill returned true", i)
			}
		}()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Call racing Kill hung", i)
		}
		rt.Shutdown()
	}
}

func TestStopRacesCall(t *testing.T) {
	for i := 0; i < 100; i++ {
		rt := NewRuntime(uint64(300 + i))
		a := &collector{}
		id := rt.AddNode(a)
		done := make(chan struct{})
		go func() {
			defer close(done)
			rt.Call(id, func() {})
		}()
		rt.Stop(id)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Call racing Stop hung", i)
		}
		rt.Shutdown()
	}
}
