package live

import (
	"strings"
	"sync"
	"testing"
)

type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestLoggerLogfmt(t *testing.T) {
	var buf syncBuf
	lg := NewLogger(&buf)
	lg.Log("t", "1.2s", "node", "n3", "msg", "took over as RM")
	lg.Log("k", 42, "empty", "", "quoted", `a"b`)
	lg.Log("trailing value becomes msg")
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{
		`t=1.2s node=n3 msg="took over as RM"`,
		`k=42 empty="" quoted="a\"b"`,
		`msg="trailing value becomes msg"`,
	}
	if len(got) != len(want) {
		t.Fatalf("lines = %d: %q", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var lg *Logger
	lg.Log("msg", "discarded") // must not panic
}

func TestNodeLogfStructured(t *testing.T) {
	var buf syncBuf
	rt := NewRuntime(1)
	rt.Logger = NewLogger(&buf)
	defer rt.Shutdown()
	n := &liveNode{rt: rt, id: 7}
	n.Logf("peer n%d removed (%s)", 3, "crash")
	line := strings.TrimRight(buf.String(), "\n")
	if !strings.Contains(line, "node=n7") || !strings.Contains(line, `msg="peer n3 removed (crash)"`) {
		t.Fatalf("line = %q", line)
	}
	if !strings.HasPrefix(line, "t=") {
		t.Fatalf("missing uptime prefix: %q", line)
	}
}
