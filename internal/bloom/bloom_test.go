package bloom

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 4)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%d", i)
		f.AddString(keys[i])
	}
	for _, k := range keys {
		if !f.ContainsString(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	if f.N() != 100 {
		t.Fatalf("N = %d", f.N())
	}
}

func TestAbsentKeysMostlyAbsent(t *testing.T) {
	f := NewWithEstimate(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("present-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.ContainsString(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 { // target 1%, allow 3x slack
		t.Fatalf("false positive rate %.4f exceeds 0.03", rate)
	}
}

func TestNewWithEstimateGeometry(t *testing.T) {
	f := NewWithEstimate(1000, 0.01)
	// Optimal m ≈ 9585 bits, k ≈ 7.
	if f.M() < 9000 || f.M() > 10240 {
		t.Fatalf("m = %d, want ≈9585", f.M())
	}
	if f.K() < 6 || f.K() > 8 {
		t.Fatalf("k = %d, want ≈7", f.K())
	}
}

func TestNewWithEstimateZeroElements(t *testing.T) {
	f := NewWithEstimate(0, 0.01)
	if f.M() == 0 {
		t.Fatal("zero-sized filter")
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range []struct {
		m uint64
		k uint32
	}{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.m, c.k)
				}
			}()
			New(c.m, c.k)
		}()
	}
}

func TestBadFPRatePanics(t *testing.T) {
	for _, fp := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithEstimate(_, %v) did not panic", fp)
				}
			}()
			NewWithEstimate(10, fp)
		}()
	}
}

func TestUnion(t *testing.T) {
	a := New(512, 3)
	b := New(512, 3)
	a.AddString("x")
	b.AddString("y")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.ContainsString("x") || !a.ContainsString("y") {
		t.Fatal("union lost elements")
	}
	if a.N() != 2 {
		t.Fatalf("union N = %d", a.N())
	}
}

func TestUnionIncompatible(t *testing.T) {
	a := New(512, 3)
	b := New(1024, 3)
	if err := a.Union(b); err == nil {
		t.Fatal("union of different m succeeded")
	}
	c := New(512, 4)
	if err := a.Union(c); err == nil {
		t.Fatal("union of different k succeeded")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(256, 2)
	a.AddString("x")
	b := a.Clone()
	b.AddString("y")
	// With 1 element in 256 bits the chance "y" aliases is negligible, and
	// the hash is deterministic, so this is a stable check.
	if a.ContainsString("y") {
		t.Fatal("clone aliases original")
	}
	if !b.ContainsString("x") || !b.ContainsString("y") {
		t.Fatal("clone incomplete")
	}
}

func TestReset(t *testing.T) {
	f := New(256, 2)
	f.AddString("x")
	f.Reset()
	if f.ContainsString("x") {
		t.Fatal("element survived Reset")
	}
	if f.FillRatio() != 0 || f.N() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestFillRatioMonotone(t *testing.T) {
	f := New(1024, 4)
	prev := 0.0
	for i := 0; i < 200; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
		r := f.FillRatio()
		if r < prev {
			t.Fatalf("fill ratio decreased: %v -> %v", prev, r)
		}
		prev = r
	}
	if prev <= 0 || prev > 1 {
		t.Fatalf("fill ratio %v out of (0,1]", prev)
	}
}

func TestEstimatedFalsePositiveRate(t *testing.T) {
	f := New(1024, 4)
	if f.EstimatedFalsePositiveRate() != 0 {
		t.Fatal("empty filter should estimate 0 fp rate")
	}
	for i := 0; i < 100; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
	}
	est := f.EstimatedFalsePositiveRate()
	if est <= 0 || est >= 1 {
		t.Fatalf("estimate %v out of (0,1)", est)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f := New(512, 3)
	for i := 0; i < 50; i++ {
		f.AddString(fmt.Sprintf("svc-%d", i))
	}
	data := f.Bytes()
	g, err := FromBytes(data, f.M(), f.K())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !g.ContainsString(fmt.Sprintf("svc-%d", i)) {
			t.Fatalf("round trip lost svc-%d", i)
		}
	}
}

func TestFromBytesBadLength(t *testing.T) {
	if _, err := FromBytes([]byte{1, 2, 3}, 512, 3); err == nil {
		t.Fatal("bad payload accepted")
	}
}

// Property: anything added is always contained (no false negatives), for
// arbitrary byte strings and random geometries.
func TestPropertyNoFalseNegatives(t *testing.T) {
	r := rng.New(99)
	check := func(keys [][]byte) bool {
		f := New(uint64(64+r.Intn(4096)), uint32(1+r.Intn(8)))
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Union(a,b) contains everything a and b contain.
func TestPropertyUnionSuperset(t *testing.T) {
	check := func(ka, kb [][]byte) bool {
		a := New(2048, 3)
		b := New(2048, 3)
		for _, k := range ka {
			a.Add(k)
		}
		for _, k := range kb {
			b.Add(k)
		}
		u := a.Clone()
		if err := u.Union(b); err != nil {
			return false
		}
		for _, k := range ka {
			if !u.Contains(k) {
				return false
			}
		}
		for _, k := range kb {
			if !u.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuredFPRateTracksEstimate(t *testing.T) {
	f := NewWithEstimate(500, 0.05)
	for i := 0; i < 500; i++ {
		f.AddString(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.ContainsString(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	measured := float64(fp) / probes
	est := f.EstimatedFalsePositiveRate()
	if measured > 3*est+0.01 {
		t.Fatalf("measured fp %.4f far above estimate %.4f", measured, est)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimate(100000, 0.01)
	key := []byte("some-service-name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(key)
	}
}

func BenchmarkContains(b *testing.B) {
	f := NewWithEstimate(100000, 0.01)
	for i := 0; i < 10000; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
	}
	key := []byte("k5000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Contains(key)
	}
}
