package bloom

import (
	"fmt"
	"math"
	"testing"
)

// TestFalsePositiveRateAtGossipGeometry pins the false-positive behavior
// at the geometry domain summaries actually ship with (Config.BloomM =
// 4096, BloomK = 4, domains capped at a few dozen peers): the measured
// rate over a large probe set must stay within a small multiple of the
// theoretical bound (1 - e^(-kn/m))^k, and the filter's own estimate
// must agree with theory. A regression here silently turns inter-domain
// redirects into guesswork.
func TestFalsePositiveRateAtGossipGeometry(t *testing.T) {
	const (
		m      = 4096
		k      = 4
		n      = 64 // a full domain's object catalog, ~2 objects/peer
		probes = 200_000
	)
	f := New(m, k)
	for i := 0; i < n; i++ {
		f.AddString(fmt.Sprintf("obj-%d", i))
	}

	theory := math.Pow(1-math.Exp(-float64(k*n)/float64(m)), k)
	if theory > 2e-5 {
		t.Fatalf("theoretical FP rate %.3g unexpectedly high; geometry changed?", theory)
	}

	false_positives := 0
	for i := 0; i < probes; i++ {
		if f.ContainsString(fmt.Sprintf("absent-%d", i)) {
			false_positives++
		}
	}
	measured := float64(false_positives) / float64(probes)
	// 10x theory plus a one-count floor absorbs sampling noise at these
	// tiny rates while still catching an off-by-an-order regression.
	bound := 10*theory + 1.0/float64(probes)
	if measured > bound {
		t.Fatalf("measured FP rate %.3g (%d/%d) exceeds bound %.3g (theory %.3g)",
			measured, false_positives, probes, bound, theory)
	}

	if est := f.EstimatedFalsePositiveRate(); est > 10*theory || est < theory/10 {
		t.Fatalf("filter estimate %.3g disagrees with theory %.3g", est, theory)
	}
}

// TestNoFalseNegativesAtGossipGeometry: every inserted key must answer
// "possibly present" — a false negative would hide an object a domain
// really has.
func TestNoFalseNegativesAtGossipGeometry(t *testing.T) {
	f := New(4096, 4)
	for i := 0; i < 64; i++ {
		f.AddString(fmt.Sprintf("obj-%d", i))
	}
	for i := 0; i < 64; i++ {
		if !f.ContainsString(fmt.Sprintf("obj-%d", i)) {
			t.Fatalf("false negative for obj-%d", i)
		}
	}
}
