// Package bloom implements the Bloom filters the paper's Resource Managers
// use to summarize the objects and services available in remote domains
// (§3.1). A filter answers "possibly present" or "definitely absent";
// false positives cost only a wasted inter-domain redirect, never a
// correctness failure.
//
// Hashing uses the Kirsch–Mitzenmacher double-hashing construction over two
// independent FNV-1a 64-bit digests, so membership tests cost two hash
// passes regardless of k.
package bloom

import (
	"errors"
	"math"
	"math/bits"
)

// Filter is a classic Bloom filter with m bits and k hash functions.
// The zero value is unusable; construct with New or NewWithEstimate.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint32 // number of hash functions
	n    uint64 // elements added (for estimates)
}

// New returns a filter with m bits (rounded up to a multiple of 64) and k
// hash functions. It panics if m == 0 or k == 0.
func New(m uint64, k uint32) *Filter {
	if m == 0 || k == 0 {
		panic("bloom: New requires m > 0 and k > 0")
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewWithEstimate sizes a filter for n expected elements at target false
// positive rate fp, using the standard optimal formulas
// m = -n·ln(fp)/ln(2)² and k = (m/n)·ln(2).
func NewWithEstimate(n uint64, fp float64) *Filter {
	if n == 0 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		panic("bloom: false positive rate must be in (0,1)")
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// M returns the number of bits.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() uint32 { return f.k }

// N returns the number of Add calls (an upper bound on distinct elements).
func (f *Filter) N() uint64 { return f.n }

// fnv1a computes FNV-1a over data with the given offset basis, giving two
// independent digests from two bases.
func fnv1a(data []byte, basis uint64) uint64 {
	h := basis
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

const (
	basis1 = 14695981039346656037 // standard FNV offset basis
	basis2 = 0x9747b28c9747b28c   // arbitrary second basis
)

// indexes yields the k bit positions for data via double hashing:
// g_i = h1 + i·h2 mod m.
func (f *Filter) indexes(data []byte, visit func(uint64)) {
	h1 := fnv1a(data, basis1)
	h2 := fnv1a(data, basis2) | 1 // odd so it cycles all residues for power-of-two m
	for i := uint32(0); i < f.k; i++ {
		visit((h1 + uint64(i)*h2) % f.m)
	}
}

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	f.indexes(data, func(idx uint64) {
		f.bits[idx/64] |= 1 << (idx % 64)
	})
	f.n++
}

// AddString inserts a string key.
func (f *Filter) AddString(s string) { f.Add([]byte(s)) }

// Contains reports whether data is possibly in the set. False positives
// are possible; false negatives are not.
func (f *Filter) Contains(data []byte) bool {
	ok := true
	f.indexes(data, func(idx uint64) {
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			ok = false
		}
	})
	return ok
}

// ContainsString tests a string key.
func (f *Filter) ContainsString(s string) bool { return f.Contains([]byte(s)) }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFalsePositiveRate returns the expected false-positive
// probability given the current fill: (fill)^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Union ORs other into f. Both filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return errors.New("bloom: union of incompatible filters")
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	f.n += other.n
	return nil
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	cp := &Filter{bits: make([]uint64, len(f.bits)), m: f.m, k: f.k, n: f.n}
	copy(cp.bits, f.bits)
	return cp
}

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Bytes serializes the filter bits little-endian, preceded by no header;
// callers that need geometry must carry m and k separately (the gossip
// protocol fixes them per deployment).
func (f *Filter) Bytes() []byte {
	out := make([]byte, 8*len(f.bits))
	for i, w := range f.bits {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (8 * j))
		}
	}
	return out
}

// FromBytes reconstructs a filter with the given geometry from Bytes
// output. It returns an error if the payload length does not match m.
func FromBytes(data []byte, m uint64, k uint32) (*Filter, error) {
	f := New(m, k)
	if len(data) != 8*len(f.bits) {
		return nil, errors.New("bloom: payload length does not match geometry")
	}
	for i := range f.bits {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(data[i*8+j]) << (8 * j)
		}
		f.bits[i] = w
	}
	return f, nil
}
