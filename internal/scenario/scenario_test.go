package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/live"
	"repro/internal/trace"
)

const basicScenario = `
name: test-basic
seed: 7
duration: 20s
fleet:
  size: 8
  over: 3s
  templates:
    - name: strong
      weight: 1
      speed: 12
      bandwidth: 8000
      uptime: 7200
    - name: weak
      weight: 1
workload:
  rate: 1.0
events:
  - at: 8s
    do: crash rm
assert:
  submitted_min: 5
  admitted_min: 1
  failovers_min: 1
  failover_time_max: 10s
`

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseSpecDefaultsAndSections(t *testing.T) {
	s := mustParse(t, basicScenario)
	if s.Name != "test-basic" || s.Seed != 7 {
		t.Errorf("name/seed = %q/%d", s.Name, s.Seed)
	}
	if s.Fleet.Size != 8 || s.Fleet.Startup != "linear" {
		t.Errorf("fleet = %+v", s.Fleet)
	}
	if s.Workload.Start != s.Fleet.Over {
		t.Errorf("workload.start default = %v, want fleet.over %v", s.Workload.Start, s.Fleet.Over)
	}
	if len(s.Events) != 1 || len(s.Asserts) != 4 {
		t.Errorf("events/asserts = %d/%d", len(s.Events), len(s.Asserts))
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"no name", "duration: 5s\nfleet:\n  size: 2", "missing required key"},
		{"bad startup", "name: x\nfleet:\n  size: 2\n  startup: sideways", "startup"},
		{"bad verb", "name: x\nfleet:\n  size: 2\nevents:\n  - at: 1s\n    do: explode 3", "unknown verb"},
		{"bad target", "name: x\nfleet:\n  size: 2\nevents:\n  - at: 1s\n    do: crash 9", "bad node target"},
		{"bad assert", "name: x\nfleet:\n  size: 2\nassert:\n  vibes_min: 1", "unknown assertion"},
		{"bad decision", "name: x\nfleet:\n  size: 2\nassert:\n  decisions_frolic_min: 1", "unknown decision action"},
		{"event late", "name: x\nduration: 5s\nfleet:\n  size: 2\n  over: 1s\nevents:\n  - at: 9s\n    do: heal", "outside"},
		{"stress kind", "name: x\nfleet:\n  size: 2\nstress:\n  - kind: gremlins", "unknown stress kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestExpandDeterministic(t *testing.T) {
	s := mustParse(t, basicScenario)
	p1, err := Expand(s, s.Seed)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	s2 := mustParse(t, basicScenario)
	p2, err := Expand(s2, s2.Seed)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if !reflect.DeepEqual(p1.Nodes, p2.Nodes) {
		t.Error("equal-seed expansions differ in nodes")
	}
	if !reflect.DeepEqual(p1.Actions, p2.Actions) {
		t.Error("equal-seed expansions differ in actions")
	}
	p3, err := Expand(s, s.Seed+1)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if reflect.DeepEqual(p1.Actions, p3.Actions) {
		t.Error("different seeds produced identical action plans")
	}
	// Node index order must equal start-time order.
	for i := 1; i < len(p1.Nodes); i++ {
		if p1.Nodes[i].StartAt < p1.Nodes[i-1].StartAt {
			t.Errorf("node %d starts at %v before node %d at %v",
				i, p1.Nodes[i].StartAt, i-1, p1.Nodes[i-1].StartAt)
		}
		if b := p1.Nodes[i].Bootstrap; b < 0 || b >= i {
			t.Errorf("node %d bootstraps through %d (not an earlier node)", i, b)
		}
	}
}

func TestExpandStressBlocks(t *testing.T) {
	src := `
name: stress
seed: 3
duration: 30s
fleet:
  size: 10
  over: 2s
workload:
  rate: 0
stress:
  - kind: churn
    from: 5s
    to: 25s
    rate: 0.1
    protect: [0]
  - kind: domain-kill
    at: 10s
    count: 2
    protect: [0]
  - kind: partition-storm
    from: 12s
    to: 20s
    period: 4s
    groups: 2
`
	s := mustParse(t, src)
	p, err := Expand(s, s.Seed)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var churnEvents, kills, partitions, heals int
	for _, a := range p.Actions {
		switch a.Kind {
		case ActCrash, ActLeave:
			if a.A == 0 {
				t.Error("protected node 0 chosen as a chaos victim")
			}
			if a.At == 10*1e6 {
				kills++
			} else {
				churnEvents++
			}
		case ActPartition:
			partitions++
			if len(a.Groups) != 2 {
				t.Errorf("partition groups = %d", len(a.Groups))
			}
		case ActHealPairs:
			heals++
		}
	}
	if churnEvents == 0 {
		t.Error("churn block produced no events")
	}
	if kills != 2 {
		t.Errorf("domain-kill produced %d crashes, want 2", kills)
	}
	if partitions != 2 || heals != partitions {
		t.Errorf("storm epochs = %d, heals = %d (want 2 each)", partitions, heals)
	}
}

func TestRunSimBasicScenarioPasses(t *testing.T) {
	s := mustParse(t, basicScenario)
	p, err := Expand(s, s.Seed)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	rep := RunSim(p)
	if !rep.Pass {
		var b bytes.Buffer
		rep.Render(&b)
		t.Fatalf("basic scenario failed:\n%s", b.String())
	}
	if rep.Runtime != "sim" || rep.Scenario != "test-basic" {
		t.Errorf("report header = %+v", rep)
	}
}

// TestRunSimByteIdentical is the determinism gate: equal seed and equal
// file give a byte-identical session trace and a byte-identical
// assertion report.
func TestRunSimByteIdentical(t *testing.T) {
	run := func() ([]byte, []byte) {
		s := mustParse(t, basicScenario)
		p, err := Expand(s, s.Seed)
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		tr := trace.New()
		rep := RunSimTraced(p, tr)
		var trb, repb bytes.Buffer
		if err := tr.WriteJSONL(&trb); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		if err := rep.WriteJSON(&repb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return trb.Bytes(), repb.Bytes()
	}
	tr1, rep1 := run()
	tr2, rep2 := run()
	if !bytes.Equal(tr1, tr2) {
		t.Error("equal-seed scenario runs produced different traces")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Errorf("equal-seed scenario runs produced different reports:\n%s\nvs\n%s", rep1, rep2)
	}
}

// TestRunSimByteIdenticalDHT extends the determinism gate to the DHT
// discovery backend: iterative lookups, RPC timeouts and republish
// timers must all draw from the engine's deterministic streams, so
// equal-seed runs stay byte-identical down to the trace.
func TestRunSimByteIdenticalDHT(t *testing.T) {
	run := func() ([]byte, []byte) {
		src := strings.Replace(basicScenario, "seed: 7", "seed: 7\ndiscovery: dht", 1)
		s := mustParse(t, src)
		// The crash-rm + failover assertions stay: RM takeover must
		// behave identically when discovery rides the structured overlay.
		p, err := Expand(s, s.Seed)
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		tr := trace.New()
		rep := RunSimTraced(p, tr)
		var trb, repb bytes.Buffer
		if err := tr.WriteJSONL(&trb); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		if err := rep.WriteJSON(&repb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return trb.Bytes(), repb.Bytes()
	}
	tr1, rep1 := run()
	tr2, rep2 := run()
	if !bytes.Equal(tr1, tr2) {
		t.Error("equal-seed DHT scenario runs produced different traces")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Errorf("equal-seed DHT scenario runs produced different reports:\n%s\nvs\n%s", rep1, rep2)
	}
}

// TestRunLiveSameFile drives the live goroutine runtime from the very
// same scenario text the sim test uses (pace-compressed), proving one
// file runs unmodified on both runtimes.
func TestRunLiveSameFile(t *testing.T) {
	if testing.Short() {
		t.Skip("live scenario takes ~2s wall")
	}
	src := strings.Replace(basicScenario, "name: test-basic", "name: test-basic-live", 1)
	s := mustParse(t, src)
	// Pace 10 compresses the 20s script into ~2s; heartbeat-scale
	// assertions (failover) do not hold at that compression, so only the
	// workload-side clauses are kept.
	s.Asserts = []AssertSpec{{Key: "submitted_min", Value: "5"}}
	p, err := Expand(s, s.Seed)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	rep, err := RunLive(p, LiveOptions{
		Pace:  10,
		Hooks: testHooks(),
	})
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if rep.Runtime != "live" {
		t.Errorf("runtime = %q", rep.Runtime)
	}
	if !rep.Pass {
		var b bytes.Buffer
		rep.Render(&b)
		t.Fatalf("live scenario failed:\n%s", b.String())
	}
}

// testHooks supplies real clocks; test files are exempt from the
// package's determinism lint.
func testHooks() LiveHooks {
	start := time.Now()
	return LiveHooks{
		NowMicros:   func() int64 { return time.Since(start).Microseconds() },
		SleepMicros: func(us int64) { time.Sleep(time.Duration(us) * time.Microsecond) },
		Nanotime:    live.Nanotime,
	}
}
