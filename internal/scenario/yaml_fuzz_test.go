package scenario

import "testing"

// FuzzParseYAML asserts the hand-rolled decoder never panics or hangs
// on arbitrary input — it either returns a tree or a positioned error.
// CI runs the seed corpus via plain `go test`; use `make fuzz-scenario`
// to explore further.
func FuzzParseYAML(f *testing.F) {
	seeds := []string{
		"",
		"a: 1",
		"a:\n  b: 2\n  c: [1, 2, [3]]",
		"fleet:\n  - name: x\n    weight: 2\n  - name: y",
		"run:\n  - at: 2s\n    do: sever 0 1\n",
		"msg: \"q\\n\\\"x\\\"\"",
		"- 1\n- 2\n-\n- - 3",
		"a: [",
		"a: \"",
		"\t",
		"---",
		"a: &x",
		"k:\n k:\n  k:\n   k:",
		"assert:\n  groups: [[0,1],[2]]",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		node, err := parseYAML(data)
		if err == nil && node == nil {
			t.Fatal("nil node with nil error")
		}
	})
}
