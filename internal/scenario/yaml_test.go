package scenario

import (
	"strings"
	"testing"
)

func TestParseYAMLBasicDocument(t *testing.T) {
	src := `
# a scenario-shaped document
name: chaos-basic
seed: 42
duration: 30s
fleet:
  - name: strong
    weight: 3
    profile: strong
  - name: weak
    weight: 1
run:
  - at: 2s
    do: sever 0 1
  - at: 5s
    do: heal
assert:
  deadline_miss_rate_max: 0.25
  groups: [[0, 1], [2, 3]]
`
	root, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	if root.kind != yMap {
		t.Fatalf("root kind = %v, want map", root.kind)
	}
	if got := root.get("name").scalar; got != "chaos-basic" {
		t.Errorf("name = %q", got)
	}
	fleet := root.get("fleet")
	if fleet == nil || fleet.kind != ySeq || len(fleet.items) != 2 {
		t.Fatalf("fleet = %+v", fleet)
	}
	if got := fleet.items[0].get("weight").scalar; got != "3" {
		t.Errorf("fleet[0].weight = %q", got)
	}
	if got := fleet.items[1].get("name").scalar; got != "weak" {
		t.Errorf("fleet[1].name = %q", got)
	}
	run := root.get("run")
	if run == nil || len(run.items) != 2 {
		t.Fatalf("run = %+v", run)
	}
	if got := run.items[1].get("do").scalar; got != "heal" {
		t.Errorf("run[1].do = %q", got)
	}
	groups := root.get("assert").get("groups")
	if groups == nil || groups.kind != ySeq || len(groups.items) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	if got := groups.items[1].items[0].scalar; got != "2" {
		t.Errorf("groups[1][0] = %q", got)
	}
}

func TestParseYAMLQuotedScalars(t *testing.T) {
	root, err := parseYAML([]byte(`msg: "hello # not a comment\n\"x\""`))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	want := "hello # not a comment\n\"x\""
	if got := root.get("msg").scalar; got != want {
		t.Errorf("msg = %q, want %q", got, want)
	}
}

func TestParseYAMLColonInScalar(t *testing.T) {
	root, err := parseYAML([]byte("addr: 127.0.0.1:7461"))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	if got := root.get("addr").scalar; got != "127.0.0.1:7461" {
		t.Errorf("addr = %q", got)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"tab", "a:\n\tb: 1", "tabs are not allowed"},
		{"dup key", "a: 1\na: 2", "duplicate key"},
		{"bad indent", "a: 1\n   b: 2", "unexpected indent"},
		{"seq in map", "a: 1\n- b", "sequence item where a mapping"},
		{"unterminated quote", `a: "oops`, "unterminated quoted string"},
		{"unterminated flow", "a: [1, 2", "unterminated flow sequence"},
		{"flow trailing", "a: [1] junk", "trailing content"},
		{"anchor", "a: &x 1", "unsupported YAML feature"},
		{"flow map", "a: {b: 1}", "unsupported YAML feature"},
		{"multi doc", "---\na: 1", "multi-document"},
		{"empty", "   \n# only a comment\n", "empty document"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("parseYAML(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseYAMLErrorsCarryLineNumbers(t *testing.T) {
	_, err := parseYAML([]byte("a: 1\nb: 2\nb: 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error = %v, want line 3 position", err)
	}
}

func TestParseYAMLDepthLimit(t *testing.T) {
	// Deep block nesting must be rejected, not overflow the stack.
	var b strings.Builder
	for i := 0; i < maxBlockDepth+8; i++ {
		b.WriteString(strings.Repeat(" ", i) + "k:\n")
	}
	if _, err := parseYAML([]byte(b.String())); err == nil {
		t.Fatal("deep nesting accepted, want depth error")
	}
	if _, err := parseYAML([]byte("a: " + strings.Repeat("[", maxFlowDepth+8))); err == nil {
		t.Fatal("deep flow nesting accepted, want depth error")
	}
}
