package scenario

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the machine-readable verdict of one scenario run. Field
// order is fixed by the struct, and sim reports carry no wall-clock
// readings, so equal-seed sim runs marshal to identical bytes.
type Report struct {
	Scenario       string        `json:"scenario"`
	Runtime        string        `json:"runtime"` // "sim" or "live"
	Seed           uint64        `json:"seed"`
	DurationMicros int64         `json:"duration_micros"`
	Pass           bool          `json:"pass"`
	Checks         []CheckResult `json:"checks"`
	Summary        Summary       `json:"summary"`
}

// CheckResult is one evaluated assertion clause.
type CheckResult struct {
	Assert string `json:"assert"` // "failovers_min 1"
	Got    string `json:"got"`
	Pass   bool   `json:"pass"`
}

// Summary condenses the outcome counters the assertions read, so a
// failing report is diagnosable without re-running.
type Summary struct {
	Submitted         int     `json:"submitted"`
	Admitted          int     `json:"admitted"`
	Rejected          int     `json:"rejected"`
	Redirected        int     `json:"redirected"`
	Aborted           int     `json:"aborted"`
	Completed         int     `json:"completed"`
	Repairs           int     `json:"repairs"`
	Migrations        int     `json:"migrations"`
	Preemptions       int     `json:"preemptions"`
	Failovers         int     `json:"failovers"`
	FailoverMaxMicros int64   `json:"failover_max_micros"`
	RepairMaxMicros   int64   `json:"repair_max_micros"`
	DomainsCreated    int     `json:"domains_created"`
	PeersDeclaredDead int     `json:"peers_declared_dead"`
	MissRate          float64 `json:"miss_rate"`
	Decisions         int     `json:"decisions"`
	FaultDrops        uint64  `json:"fault_drops"`
	FaultDups         uint64  `json:"fault_dups"`
	NetDrops          uint64  `json:"net_drops"`
}

// Evaluate runs every assertion of the spec against an outcome.
func Evaluate(s *Spec, runtime string, seed uint64, o *Outcome) *Report {
	rep := &Report{
		Scenario:       s.Name,
		Runtime:        runtime,
		Seed:           seed,
		DurationMicros: int64(s.Duration),
		Pass:           true,
		Checks:         []CheckResult{},
		Summary: Summary{
			Submitted:         o.Events.Submitted,
			Admitted:          o.Events.Admitted,
			Rejected:          o.Events.Rejected,
			Redirected:        o.Events.Redirected,
			Aborted:           o.Events.Aborted,
			Completed:         len(o.Events.Reports),
			Repairs:           o.Events.Repairs,
			Migrations:        o.Events.Migrations,
			Preemptions:       o.Events.Preemptions,
			Failovers:         o.Events.Failovers,
			FailoverMaxMicros: maxMicros(o.Events.FailoverMicros),
			RepairMaxMicros:   maxMicros(o.Events.RepairMicros),
			DomainsCreated:    o.Events.DomainsCreated,
			PeersDeclaredDead: o.Events.PeersDeclaredDead,
			MissRate:          o.MissRate,
			Decisions:         len(o.Decisions),
			FaultDrops:        o.FaultDrops,
			FaultDups:         o.FaultDups,
			NetDrops:          o.NetDrops,
		},
	}
	for _, a := range s.Asserts {
		c, err := compileAssert(a)
		if err != nil {
			// Parse validated every clause; reaching here means the spec
			// was mutated after Parse. Surface it as a failing check.
			rep.Checks = append(rep.Checks, CheckResult{
				Assert: a.Key + " " + a.Value, Got: err.Error(), Pass: false})
			rep.Pass = false
			continue
		}
		got, pass := c.eval(o)
		rep.Checks = append(rep.Checks, CheckResult{
			Assert: a.Key + " " + a.Value, Got: got, Pass: pass})
		if !pass {
			rep.Pass = false
		}
	}
	return rep
}

// WriteJSON writes the report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes a human-oriented pass/fail table (the CLI's -v view).
func (r *Report) Render(w io.Writer) {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(w, "%s scenario=%s runtime=%s seed=%d\n", status, r.Scenario, r.Runtime, r.Seed)
	for _, c := range r.Checks {
		mark := "ok  "
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "  %s %-40s got %s\n", mark, c.Assert, c.Got)
	}
	fmt.Fprintf(w, "  summary: submitted=%d admitted=%d rejected=%d completed=%d aborted=%d\n",
		r.Summary.Submitted, r.Summary.Admitted, r.Summary.Rejected, r.Summary.Completed, r.Summary.Aborted)
	fmt.Fprintf(w, "           repairs=%d failovers=%d (max %dus) migrations=%d preemptions=%d\n",
		r.Summary.Repairs, r.Summary.Failovers, r.Summary.FailoverMaxMicros, r.Summary.Migrations, r.Summary.Preemptions)
	fmt.Fprintf(w, "           miss_rate=%.4f fault_drops=%d net_drops=%d peers_dead=%d domains=%d\n",
		r.Summary.MissRate, r.Summary.FaultDrops, r.Summary.NetDrops, r.Summary.PeersDeclaredDead, r.Summary.DomainsCreated)
}

// ReadReport parses a report written by WriteJSON (p2ptop -scenario).
func ReadReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("scenario report: %w", err)
	}
	return &r, nil
}
