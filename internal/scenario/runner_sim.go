package scenario

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunSim executes an expanded plan on the deterministic simulator:
// actions are scheduled on the virtual clock, faults map onto netsim's
// per-pair rules, and lifecycle onto Crash/Stop. Equal (file, seed)
// runs are byte-identical — the cluster seed, every plan draw and every
// netsim stream derive from the scenario seed alone.
func RunSim(p *Plan) *Report { return RunSimTraced(p, nil) }

// RunSimTraced is RunSim with a span tracer attached; the determinism
// gate compares the traces of two equal-seed runs byte for byte.
func RunSimTraced(p *Plan, tr *trace.Tracer) *Report {
	s := p.Spec
	cfg := core.DefaultConfig()
	if s.Discovery != "" {
		cfg.Discovery = s.Discovery
	}
	netCfg := netsim.Config{
		Latency:    netsim.UniformLatency(s.Net.Latency),
		JitterFrac: s.Net.Jitter,
		LossRate:   s.Net.Loss,
	}
	c := cluster.New(cfg, netCfg, stream(p.Seed, "cluster").Uint64())
	if tr != nil {
		c.Events.AttachTracer(tr)
		tr.SetSeed(p.Seed)
	}
	sk := stats.NewSet(0, 0, 0)
	c.Events.AttachSketches(sk)
	dec := core.NewDecisionLog(0)
	c.Events.AttachDecisions(dec)

	// ids maps plan node index -> netsim NodeID, appended as ActStart
	// actions fire in index order (equal-time starts keep schedule order).
	ids := make([]env.NodeID, 0, len(p.Nodes))
	h := &simHost{c: c, p: p, ids: &ids}
	for i := range p.Actions {
		a := &p.Actions[i]
		c.Eng.At(a.At, func() { h.apply(a) })
	}
	c.RunUntil(s.Duration)

	st := c.Net.Stats()
	o := &Outcome{
		Events:     c.Events.Snapshot(),
		MissRate:   c.Events.MissRate(),
		NowMicros:  int64(c.Eng.Now()),
		Quantile:   sk.Quantile,
		Decisions:  dec.Snapshot(),
		FaultDrops: st.FaultDrops,
		FaultDups:  st.FaultDups,
		NetDrops:   st.Dropped,
	}
	return Evaluate(s, "sim", p.Seed, o)
}

// simHost applies plan actions to a cluster.
type simHost struct {
	c   *cluster.Cluster
	p   *Plan
	ids *[]env.NodeID
}

// id resolves a plan target to a live netsim NodeID; ok is false when
// the target is unresolvable (not yet started, dead, or no RM exists).
func (h *simHost) id(target int) (env.NodeID, bool) {
	switch {
	case target == TargetAny:
		return env.NoNode, true // netsim wildcard
	case target == TargetRM:
		rms := h.c.RMs()
		if len(rms) == 0 {
			return 0, false
		}
		return rms[0], true
	case target >= 0 && target < len(*h.ids):
		id := (*h.ids)[target]
		return id, h.c.Net.Alive(id)
	}
	return 0, false
}

func (h *simHost) apply(a *Action) {
	switch a.Kind {
	case ActStart:
		n := h.p.Nodes[a.A]
		if n.Bootstrap < 0 {
			*h.ids = append(*h.ids, h.c.AddFounder(n.Info))
			return
		}
		boot := (*h.ids)[n.Bootstrap]
		*h.ids = append(*h.ids, h.c.AddPeer(n.Info, boot))
	case ActSubmit:
		if id, ok := h.id(a.A); ok {
			spec := a.Spec
			spec.Origin = id
			h.c.Peer(id).SubmitTask(spec)
		}
	case ActCrash:
		if id, ok := h.id(a.A); ok {
			h.c.Net.Crash(id)
		}
	case ActLeave:
		if id, ok := h.id(a.A); ok {
			h.c.Net.Stop(id)
		}
	case ActSever:
		ia, oka := h.id(a.A)
		ib, okb := h.id(a.B)
		if oka && okb {
			h.c.Net.Sever(ia, ib)
		}
	case ActHeal:
		ia, oka := h.id(a.A)
		ib, okb := h.id(a.B)
		if oka && okb {
			h.c.Net.Heal(ia, ib)
		}
	case ActHealAll:
		h.c.Net.ClearFaults()
	case ActFault:
		ia, oka := h.id(a.A)
		ib, okb := h.id(a.B)
		if oka && okb {
			h.c.Net.SetFault(ia, ib, netsim.FaultRule{
				Drop:  a.Fault.Drop,
				Dup:   a.Fault.Dup,
				Delay: sim.Time(a.Fault.DelayMicros),
			})
		}
	case ActLoad:
		if id, ok := h.id(a.A); ok {
			pr := h.c.Peer(id)
			pr.SetBackgroundLoad(pr.Info().SpeedWU * a.Frac)
		}
	case ActCatalog:
		if id, ok := h.id(a.A); ok {
			pr := h.c.Peer(id)
			if a.Op == "add" {
				pr.AddObject(h.p.CatalogObject(a.Name))
			} else {
				pr.RemoveObject(a.Name)
			}
		}
	case ActPartition:
		for _, pair := range CrossPairs(a.Groups) {
			ia, oka := h.id(pair[0])
			ib, okb := h.id(pair[1])
			if oka && okb {
				h.c.Net.Sever(ia, ib)
			}
		}
	case ActHealPairs:
		for _, pair := range a.Pairs {
			// Heal regardless of aliveness: rules outlive their nodes.
			if pair[0] < len(*h.ids) && pair[1] < len(*h.ids) {
				h.c.Net.Heal((*h.ids)[pair[0]], (*h.ids)[pair[1]])
			}
		}
	}
}
