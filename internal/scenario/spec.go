package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Spec is one decoded scenario file. Parse validates everything it can
// statically; Expand turns a Spec into a concrete deterministic Plan.
type Spec struct {
	Name     string
	Seed     uint64 // default seed; CLIs may override
	Duration sim.Time
	// Discovery selects the inter-domain discovery backend ("gossip" or
	// "dht"); empty uses the core default (gossip). CLIs may override.
	Discovery string
	Net       NetSpec
	Fleet     FleetSpec
	Workload  WorkloadSpec
	Events    []EventSpec
	Stress    []StressSpec
	Asserts   []AssertSpec
}

// NetSpec models the simulated network (ignored by the live runtime,
// which runs over real links).
type NetSpec struct {
	Latency sim.Time
	Jitter  float64
	Loss    float64
}

// FleetSpec describes the peer population and its startup pattern.
type FleetSpec struct {
	Size      int
	Qualified float64 // fraction forced to meet RM thresholds
	Services  int     // transcoders per peer
	Objects   int     // catalog objects
	Replicas  int     // copies of each object
	Startup   string  // "linear" | "flash" | "diurnal"
	Over      sim.Time
	Templates []TemplateSpec
}

// TemplateSpec is one weighted peer template. Zero-valued capability
// fields fall back to the heavy-tailed draws of cluster.PeerSpecs.
type TemplateSpec struct {
	Name          string
	Weight        int
	SpeedWU       float64
	BandwidthKbps float64
	UptimeSec     float64
}

// WorkloadSpec parameterizes the request stream. Rate is the initial
// Poisson arrival rate; `rate` events on the timeline change it.
type WorkloadSpec struct {
	Rate         float64
	Objects      int
	ZipfS        float64
	Deadline     sim.Time
	DurationMean sim.Time
	Importance   int
	Relaxed      float64
	Start        sim.Time // first arrival no earlier than this (default fleet.over)
}

// EventSpec is one timed command on the scenario timeline.
type EventSpec struct {
	At   sim.Time
	Do   string // raw command, parsed by Expand
	Line int
}

// StressSpec is one seeded chaos block.
type StressSpec struct {
	Kind      string // "churn" | "domain-kill" | "partition-storm"
	From, To  sim.Time
	At        sim.Time // domain-kill
	Rate      float64  // churn events/sec
	CrashFrac float64  // churn crash (vs graceful leave) fraction
	Count     int      // domain-kill victims
	Period    sim.Time // partition-storm epoch length
	Groups    int      // partition-storm group count
	Protect   []int    // node indexes never chosen as victims
	Line      int
}

// AssertSpec is one first-class assertion clause, preserved in file
// order. The key encodes the check (see assert.go for the catalog).
type AssertSpec struct {
	Key   string
	Value string
	Line  int
}

// Target sentinels used in expanded plans. Node indexes are >= 0.
const (
	// TargetAny is the '*' wildcard in fault rules.
	TargetAny = -2
	// TargetRM names the current resource manager, resolved at fire time.
	TargetRM = -3
)

// Parse decodes and validates a scenario file.
func Parse(src []byte) (*Spec, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	if root.kind != yMap {
		return nil, yerrf(root.line, "scenario file must be a mapping at top level")
	}
	s := &Spec{
		Seed:     1,
		Duration: 30 * sim.Second,
		Net:      NetSpec{Latency: 10 * sim.Millisecond},
		Fleet: FleetSpec{
			Qualified: 0.6,
			Services:  2,
			Objects:   12,
			Replicas:  2,
			Startup:   "linear",
			Over:      5 * sim.Second,
		},
		Workload: WorkloadSpec{
			Rate:         1.0,
			ZipfS:        0.8,
			Deadline:     2 * sim.Second,
			DurationMean: 20 * sim.Second,
			Importance:   5,
			Relaxed:      0.3,
			Start:        -1, // default: fleet.Over
		},
	}
	for i, key := range root.keys {
		val := root.vals[i]
		switch key {
		case "name":
			s.Name, err = wantScalar(val, key)
		case "seed":
			s.Seed, err = wantUint(val, key)
		case "duration":
			s.Duration, err = wantDur(val, key)
		case "discovery":
			s.Discovery, err = wantScalar(val, key)
			if err == nil && s.Discovery != "gossip" && s.Discovery != "dht" {
				return nil, yerrf(val.line, "discovery must be \"gossip\" or \"dht\", got %q", s.Discovery)
			}
		case "net":
			err = parseNet(val, &s.Net)
		case "fleet":
			err = parseFleet(val, &s.Fleet)
		case "workload":
			err = parseWorkload(val, &s.Workload)
		case "events":
			s.Events, err = parseEvents(val)
		case "stress":
			s.Stress, err = parseStress(val)
		case "assert":
			s.Asserts, err = parseAsserts(val)
		default:
			return nil, yerrf(val.line, "unknown top-level key %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return s, validate(s)
}

func validate(s *Spec) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing required key \"name\"")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: duration must be positive", s.Name)
	}
	if s.Fleet.Size < 1 {
		return fmt.Errorf("scenario %s: fleet.size must be >= 1", s.Name)
	}
	switch s.Fleet.Startup {
	case "linear", "flash", "diurnal":
	default:
		return fmt.Errorf("scenario %s: fleet.startup %q (want linear, flash or diurnal)", s.Name, s.Fleet.Startup)
	}
	if s.Fleet.Over < 0 || s.Fleet.Over >= s.Duration {
		return fmt.Errorf("scenario %s: fleet.over must be in [0, duration)", s.Name)
	}
	if s.Workload.Start < 0 {
		s.Workload.Start = s.Fleet.Over
	}
	total := 0
	for _, t := range s.Fleet.Templates {
		if t.Weight < 0 {
			return fmt.Errorf("scenario %s: template %q has negative weight", s.Name, t.Name)
		}
		total += t.Weight
	}
	if len(s.Fleet.Templates) > 0 && total == 0 {
		return fmt.Errorf("scenario %s: fleet templates have zero total weight", s.Name)
	}
	for _, ev := range s.Events {
		if ev.At < 0 || ev.At > s.Duration {
			return yerrf(ev.Line, "event at %v outside [0, duration]", ev.At)
		}
		if _, err := parseCommand(ev, s.Fleet.Size); err != nil {
			return err
		}
	}
	for _, st := range s.Stress {
		if err := validateStress(s, st); err != nil {
			return err
		}
	}
	for _, a := range s.Asserts {
		if _, err := compileAssert(a); err != nil {
			return err
		}
	}
	return nil
}

func validateStress(s *Spec, st StressSpec) error {
	switch st.Kind {
	case "churn":
		if st.Rate <= 0 {
			return yerrf(st.Line, "churn block needs rate > 0")
		}
		if st.To <= st.From {
			return yerrf(st.Line, "churn block needs from < to")
		}
	case "domain-kill":
		if st.Count < 1 {
			return yerrf(st.Line, "domain-kill block needs count >= 1")
		}
		if st.At <= 0 || st.At > s.Duration {
			return yerrf(st.Line, "domain-kill at %v outside (0, duration]", st.At)
		}
	case "partition-storm":
		if st.Period <= 0 {
			return yerrf(st.Line, "partition-storm block needs period > 0")
		}
		if st.Groups < 2 {
			return yerrf(st.Line, "partition-storm block needs groups >= 2")
		}
		if st.To <= st.From {
			return yerrf(st.Line, "partition-storm block needs from < to")
		}
	default:
		return yerrf(st.Line, "unknown stress kind %q (want churn, domain-kill or partition-storm)", st.Kind)
	}
	for _, p := range st.Protect {
		if p < 0 || p >= s.Fleet.Size {
			return yerrf(st.Line, "protect index %d outside fleet", p)
		}
	}
	return nil
}

// --- section decoders ---

func parseNet(n *yNode, out *NetSpec) error {
	if n.kind != yMap {
		return yerrf(n.line, "net must be a mapping")
	}
	var err error
	for i, key := range n.keys {
		val := n.vals[i]
		switch key {
		case "latency":
			out.Latency, err = wantDur(val, key)
		case "jitter":
			out.Jitter, err = wantFloat(val, key)
		case "loss":
			out.Loss, err = wantFloat(val, key)
		default:
			return yerrf(val.line, "unknown net key %q", key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func parseFleet(n *yNode, out *FleetSpec) error {
	if n.kind != yMap {
		return yerrf(n.line, "fleet must be a mapping")
	}
	var err error
	for i, key := range n.keys {
		val := n.vals[i]
		switch key {
		case "size":
			out.Size, err = wantInt(val, key)
		case "qualified":
			out.Qualified, err = wantFloat(val, key)
		case "services":
			out.Services, err = wantInt(val, key)
		case "objects":
			out.Objects, err = wantInt(val, key)
		case "replicas":
			out.Replicas, err = wantInt(val, key)
		case "startup":
			out.Startup, err = wantScalar(val, key)
		case "over":
			out.Over, err = wantDur(val, key)
		case "templates":
			out.Templates, err = parseTemplates(val)
		default:
			return yerrf(val.line, "unknown fleet key %q", key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func parseTemplates(n *yNode) ([]TemplateSpec, error) {
	if n.kind != ySeq {
		return nil, yerrf(n.line, "fleet.templates must be a sequence")
	}
	var out []TemplateSpec
	for _, item := range n.items {
		if item.kind != yMap {
			return nil, yerrf(item.line, "template must be a mapping")
		}
		t := TemplateSpec{Weight: 1}
		var err error
		for i, key := range item.keys {
			val := item.vals[i]
			switch key {
			case "name":
				t.Name, err = wantScalar(val, key)
			case "weight":
				t.Weight, err = wantInt(val, key)
			case "speed":
				t.SpeedWU, err = wantFloat(val, key)
			case "bandwidth":
				t.BandwidthKbps, err = wantFloat(val, key)
			case "uptime":
				t.UptimeSec, err = wantFloat(val, key)
			default:
				return nil, yerrf(val.line, "unknown template key %q", key)
			}
			if err != nil {
				return nil, err
			}
		}
		if t.Name == "" {
			return nil, yerrf(item.line, "template missing name")
		}
		out = append(out, t)
	}
	return out, nil
}

func parseWorkload(n *yNode, out *WorkloadSpec) error {
	if n.kind != yMap {
		return yerrf(n.line, "workload must be a mapping")
	}
	var err error
	for i, key := range n.keys {
		val := n.vals[i]
		switch key {
		case "rate":
			out.Rate, err = wantFloat(val, key)
		case "objects":
			out.Objects, err = wantInt(val, key)
		case "zipf":
			out.ZipfS, err = wantFloat(val, key)
		case "deadline":
			out.Deadline, err = wantDur(val, key)
		case "duration_mean":
			out.DurationMean, err = wantDur(val, key)
		case "importance":
			out.Importance, err = wantInt(val, key)
		case "relaxed":
			out.Relaxed, err = wantFloat(val, key)
		case "start":
			out.Start, err = wantDur(val, key)
		default:
			return yerrf(val.line, "unknown workload key %q", key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func parseEvents(n *yNode) ([]EventSpec, error) {
	if n.kind != ySeq {
		return nil, yerrf(n.line, "events must be a sequence")
	}
	var out []EventSpec
	for _, item := range n.items {
		if item.kind != yMap {
			return nil, yerrf(item.line, "event must be a mapping with at/do")
		}
		ev := EventSpec{Line: item.line}
		var err error
		for i, key := range item.keys {
			val := item.vals[i]
			switch key {
			case "at":
				ev.At, err = wantDur(val, key)
			case "do":
				ev.Do, err = wantScalar(val, key)
			default:
				return nil, yerrf(val.line, "unknown event key %q", key)
			}
			if err != nil {
				return nil, err
			}
		}
		if ev.Do == "" {
			return nil, yerrf(item.line, "event missing \"do\"")
		}
		out = append(out, ev)
	}
	return out, nil
}

func parseStress(n *yNode) ([]StressSpec, error) {
	if n.kind != ySeq {
		return nil, yerrf(n.line, "stress must be a sequence")
	}
	var out []StressSpec
	for _, item := range n.items {
		if item.kind != yMap {
			return nil, yerrf(item.line, "stress block must be a mapping")
		}
		st := StressSpec{CrashFrac: 0.7, Line: item.line}
		var err error
		for i, key := range item.keys {
			val := item.vals[i]
			switch key {
			case "kind":
				st.Kind, err = wantScalar(val, key)
			case "from":
				st.From, err = wantDur(val, key)
			case "to":
				st.To, err = wantDur(val, key)
			case "at":
				st.At, err = wantDur(val, key)
			case "rate":
				st.Rate, err = wantFloat(val, key)
			case "crash_frac":
				st.CrashFrac, err = wantFloat(val, key)
			case "count":
				st.Count, err = wantInt(val, key)
			case "period":
				st.Period, err = wantDur(val, key)
			case "groups":
				st.Groups, err = wantInt(val, key)
			case "protect":
				st.Protect, err = wantIntList(val, key)
			default:
				return nil, yerrf(val.line, "unknown stress key %q", key)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, st)
	}
	return out, nil
}

func parseAsserts(n *yNode) ([]AssertSpec, error) {
	if n.kind != yMap {
		return nil, yerrf(n.line, "assert must be a mapping")
	}
	var out []AssertSpec
	for i, key := range n.keys {
		val := n.vals[i]
		if val.kind != yScalar {
			return nil, yerrf(val.line, "assert %s must have a scalar bound", key)
		}
		out = append(out, AssertSpec{Key: key, Value: val.scalar, Line: val.line})
	}
	return out, nil
}

// --- scalar coercions ---

func wantScalar(n *yNode, key string) (string, error) {
	if n.kind != yScalar {
		return "", yerrf(n.line, "%s must be a scalar, got a %s", key, kindName(n.kind))
	}
	return n.scalar, nil
}

func wantInt(n *yNode, key string) (int, error) {
	s, err := wantScalar(n, key)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, yerrf(n.line, "%s: %q is not an integer", key, s)
	}
	return v, nil
}

func wantUint(n *yNode, key string) (uint64, error) {
	s, err := wantScalar(n, key)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, yerrf(n.line, "%s: %q is not an unsigned integer", key, s)
	}
	return v, nil
}

func wantFloat(n *yNode, key string) (float64, error) {
	s, err := wantScalar(n, key)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, yerrf(n.line, "%s: %q is not a number", key, s)
	}
	return v, nil
}

func wantDur(n *yNode, key string) (sim.Time, error) {
	s, err := wantScalar(n, key)
	if err != nil {
		return 0, err
	}
	d, err := parseDur(s)
	if err != nil {
		return 0, yerrf(n.line, "%s: %v", key, err)
	}
	return d, nil
}

func wantIntList(n *yNode, key string) ([]int, error) {
	if n.kind != ySeq {
		return nil, yerrf(n.line, "%s must be a sequence of integers", key)
	}
	out := make([]int, 0, len(n.items))
	for _, item := range n.items {
		v, err := wantInt(item, key)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseDur parses "250ms"/"2s"/"1.5m"/"300us" into virtual time.
func parseDur(s string) (sim.Time, error) {
	unit := sim.Time(0)
	num := s
	switch {
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = sim.Second, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		unit, num = sim.Minute, s[:len(s)-1]
	default:
		return 0, fmt.Errorf("duration %q needs a unit (us, ms, s, m)", s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return sim.Time(v * float64(unit)), nil
}

// fmtDur renders a virtual duration compactly for reports.
func fmtDur(d sim.Time) string {
	switch {
	case d == 0:
		return "0s"
	case d%sim.Second == 0:
		return fmt.Sprintf("%ds", d/sim.Second)
	case d%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", d/sim.Millisecond)
	default:
		return fmt.Sprintf("%dus", d)
	}
}
