// Package scenario is the declarative scenario engine: it parses a
// YAML-subset scenario file into fleet templates, startup patterns, a
// timed event track, seeded stress blocks and first-class assertions,
// expands it into a deterministic action plan (all randomness from
// internal/rng streams derived from the run seed), and executes the
// plan on either runtime — the deterministic simulator or the live
// goroutine runtime — producing a machine-readable pass/fail report.
//
// The decoder below is a deliberately small, hand-rolled YAML subset
// (the module vendors everything and builds offline, so no external
// YAML dependency): block mappings, block sequences, flow sequences
// ([a, b] and [[0,1],[2,3]]), double-quoted scalars and # comments.
// Anchors, multi-document streams, block scalars and tabs are not
// supported and are reported as errors with line numbers.
package scenario

import (
	"fmt"
	"strings"
)

// yKind discriminates parsed nodes.
type yKind int

const (
	yScalar yKind = iota
	yMap
	ySeq
)

// yNode is one parsed YAML node.
type yNode struct {
	kind   yKind
	line   int
	scalar string   // yScalar
	keys   []string // yMap, in file order
	vals   []*yNode // yMap, parallel to keys
	items  []*yNode // ySeq
}

// get returns the value for key in a mapping, nil when absent.
func (n *yNode) get(key string) *yNode {
	if n == nil || n.kind != yMap {
		return nil
	}
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// kindName renders a node kind for error messages.
func kindName(k yKind) string {
	switch k {
	case yScalar:
		return "scalar"
	case yMap:
		return "mapping"
	default:
		return "sequence"
	}
}

// yamlError is a positioned parse/decode error.
type yamlError struct {
	line int
	msg  string
}

func (e *yamlError) Error() string {
	if e.line > 0 {
		return fmt.Sprintf("line %d: %s", e.line, e.msg)
	}
	return e.msg
}

func yerrf(line int, format string, args ...any) error {
	return &yamlError{line: line, msg: fmt.Sprintf(format, args...)}
}

// srcLine is one significant input line.
type srcLine struct {
	num    int    // 1-based line number
	indent int    // leading spaces
	text   string // content after indentation, comments stripped
}

// maxFlowDepth bounds nesting of flow sequences; maxBlockDepth bounds
// block-structure nesting, so hostile inputs cannot overflow the stack.
const (
	maxFlowDepth  = 32
	maxBlockDepth = 64
)

// parseYAML parses one document into its root node (a mapping for every
// well-formed scenario file, but any node kind is accepted at the root).
func parseYAML(src []byte) (*yNode, error) {
	lines, err := splitLines(string(src))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, yerrf(0, "empty document")
	}
	p := &yParser{lines: lines}
	root, err := p.parseBlock(lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, yerrf(l.num, "unexpected content %q (indented less than the document root?)", l.text)
	}
	return root, nil
}

// splitLines strips comments and blanks and measures indentation.
func splitLines(src string) ([]srcLine, error) {
	var out []srcLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.ContainsRune(raw, '\t') {
			return nil, yerrf(num, "tabs are not allowed; indent with spaces")
		}
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "---") {
			return nil, yerrf(num, "multi-document streams are not supported")
		}
		out = append(out, srcLine{
			num:    num,
			indent: len(text) - len(trimmed),
			text:   strings.TrimRight(trimmed, " "),
		})
	}
	return out, nil
}

// stripComment removes a trailing # comment, respecting double quotes.
// A '#' starts a comment at the start of the line or after a space.
func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inQuote {
				inQuote = true
			} else if i == 0 || s[i-1] != '\\' {
				inQuote = false
			}
		case '#':
			if !inQuote && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// yParser consumes srcLines front to back.
type yParser struct {
	lines []srcLine
	pos   int
}

func (p *yParser) peek() (srcLine, bool) {
	if p.pos >= len(p.lines) {
		return srcLine{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses the block node starting at the current line, which
// must be indented exactly `indent`. Lines indented less end the block.
func (p *yParser) parseBlock(indent, depth int) (*yNode, error) {
	if depth > maxBlockDepth {
		l, _ := p.peek()
		return nil, yerrf(l.num, "nesting deeper than %d levels", maxBlockDepth)
	}
	first, ok := p.peek()
	if !ok || first.indent < indent {
		return nil, yerrf(first.num, "expected an indented block")
	}
	if first.indent > indent {
		return nil, yerrf(first.num, "unexpected indent %d (expected %d)", first.indent, indent)
	}
	if first.text == "-" || strings.HasPrefix(first.text, "- ") {
		return p.parseSeq(indent, depth)
	}
	return p.parseMap(indent, depth)
}

// parseSeq parses "- item" lines at the given indent.
func (p *yParser) parseSeq(indent, depth int) (*yNode, error) {
	node := &yNode{kind: ySeq, line: p.lines[p.pos].num}
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return node, nil
		}
		if l.indent > indent {
			return nil, yerrf(l.num, "unexpected indent %d inside sequence (expected %d)", l.indent, indent)
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, yerrf(l.num, "expected '- item' at indent %d, got %q", indent, l.text)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		p.pos++
		if rest == "" {
			// The item is the following more-indented block.
			nl, ok := p.peek()
			if !ok || nl.indent <= indent {
				node.items = append(node.items, &yNode{kind: yScalar, line: l.num})
				continue
			}
			item, err := p.parseBlock(nl.indent, depth+1)
			if err != nil {
				return nil, err
			}
			node.items = append(node.items, item)
			continue
		}
		if key, val, isEntry := splitEntry(rest); isEntry {
			// "- key: value" opens an inline mapping whose further keys
			// sit on following lines indented past the dash.
			item, err := p.parseInlineMap(l, indent, key, val, depth+1)
			if err != nil {
				return nil, err
			}
			node.items = append(node.items, item)
			continue
		}
		sc, err := parseScalarValue(rest, l.num)
		if err != nil {
			return nil, err
		}
		node.items = append(node.items, sc)
	}
}

// parseInlineMap handles a mapping whose first entry shares the line
// with a sequence dash: the remaining entries are the following lines
// indented strictly past the dash column.
func (p *yParser) parseInlineMap(l srcLine, dashIndent int, key, val string, depth int) (*yNode, error) {
	node := &yNode{kind: yMap, line: l.num}
	if err := p.addEntry(node, l, key, val, dashIndent+2, depth); err != nil {
		return nil, err
	}
	// Continuation lines: the first deeper line fixes the indent.
	cont, ok := p.peek()
	if !ok || cont.indent <= dashIndent {
		return node, nil
	}
	contIndent := cont.indent
	for {
		cl, ok := p.peek()
		if !ok || cl.indent < contIndent {
			return node, nil
		}
		if cl.indent > contIndent {
			return nil, yerrf(cl.num, "unexpected indent %d inside mapping (expected %d)", cl.indent, contIndent)
		}
		if cl.text == "-" || strings.HasPrefix(cl.text, "- ") {
			return nil, yerrf(cl.num, "sequence item where a mapping entry was expected")
		}
		k, v, isEntry := splitEntry(cl.text)
		if !isEntry {
			return nil, yerrf(cl.num, "expected 'key: value', got %q", cl.text)
		}
		p.pos++
		if err := p.addEntry(node, cl, k, v, contIndent+1, depth); err != nil {
			return nil, err
		}
	}
}

// parseMap parses "key: value" / "key:" lines at the given indent.
func (p *yParser) parseMap(indent, depth int) (*yNode, error) {
	node := &yNode{kind: yMap, line: p.lines[p.pos].num}
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return node, nil
		}
		if l.indent > indent {
			return nil, yerrf(l.num, "unexpected indent %d inside mapping (expected %d)", l.indent, indent)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, yerrf(l.num, "sequence item where a mapping entry was expected")
		}
		key, val, isEntry := splitEntry(l.text)
		if !isEntry {
			return nil, yerrf(l.num, "expected 'key: value', got %q", l.text)
		}
		p.pos++
		if err := p.addEntry(node, l, key, val, indent+1, depth); err != nil {
			return nil, err
		}
	}
}

// addEntry decodes one mapping entry: an inline scalar value, or (with
// an empty value) the following block indented at least minChildIndent.
func (p *yParser) addEntry(node *yNode, l srcLine, key, val string, minChildIndent, depth int) error {
	for _, k := range node.keys {
		if k == key {
			return yerrf(l.num, "duplicate key %q", key)
		}
	}
	var child *yNode
	var err error
	if val != "" {
		child, err = parseScalarValue(val, l.num)
	} else {
		nl, ok := p.peek()
		if ok && nl.indent >= minChildIndent {
			child, err = p.parseBlock(nl.indent, depth+1)
		} else {
			child = &yNode{kind: yScalar, line: l.num} // empty value
		}
	}
	if err != nil {
		return err
	}
	node.keys = append(node.keys, key)
	node.vals = append(node.vals, child)
	return nil
}

// splitEntry splits "key: value" (or "key:"), reporting whether the
// line is a mapping entry at all. Keys are bare identifiers.
func splitEntry(s string) (key, val string, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", false
	}
	key = s[:i]
	for _, r := range key {
		if !(r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return "", "", false
		}
	}
	rest := s[i+1:]
	if rest != "" && !strings.HasPrefix(rest, " ") {
		return "", "", false // "a:b" is a scalar, not an entry
	}
	return key, strings.TrimSpace(rest), true
}

// parseScalarValue parses an inline value: a flow sequence, a quoted
// string, or a bare scalar.
func parseScalarValue(s string, line int) (*yNode, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") {
		n, rest, err := parseFlow(s, line, 0)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, yerrf(line, "trailing content %q after flow sequence", rest)
		}
		return n, nil
	}
	if strings.HasPrefix(s, "{") || strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") {
		return nil, yerrf(line, "unsupported YAML feature in %q (flow mappings, anchors and block scalars are outside the subset)", s)
	}
	v, err := unquoteScalar(s, line)
	if err != nil {
		return nil, err
	}
	return &yNode{kind: yScalar, line: line, scalar: v}, nil
}

// parseFlow parses "[a, b, [c, d]]" returning the node and the unparsed
// remainder of s.
func parseFlow(s string, line, depth int) (*yNode, string, error) {
	if depth > maxFlowDepth {
		return nil, "", yerrf(line, "flow sequence nested deeper than %d levels", maxFlowDepth)
	}
	if !strings.HasPrefix(s, "[") {
		return nil, "", yerrf(line, "expected '[' in flow sequence")
	}
	node := &yNode{kind: ySeq, line: line}
	s = strings.TrimSpace(s[1:])
	for {
		if s == "" {
			return nil, "", yerrf(line, "unterminated flow sequence")
		}
		if strings.HasPrefix(s, "]") {
			return node, s[1:], nil
		}
		var item *yNode
		var err error
		if strings.HasPrefix(s, "[") {
			item, s, err = parseFlow(s, line, depth+1)
			if err != nil {
				return nil, "", err
			}
		} else {
			// Scalar up to the next comma or closing bracket.
			end := strings.IndexAny(s, ",]")
			if end < 0 {
				return nil, "", yerrf(line, "unterminated flow sequence")
			}
			raw := strings.TrimSpace(s[:end])
			if raw == "" {
				return nil, "", yerrf(line, "empty element in flow sequence")
			}
			v, uerr := unquoteScalar(raw, line)
			if uerr != nil {
				return nil, "", uerr
			}
			item = &yNode{kind: yScalar, line: line, scalar: v}
			s = s[end:]
		}
		node.items = append(node.items, item)
		s = strings.TrimSpace(s)
		if strings.HasPrefix(s, ",") {
			s = strings.TrimSpace(s[1:])
		} else if !strings.HasPrefix(s, "]") {
			return nil, "", yerrf(line, "expected ',' or ']' in flow sequence, got %q", s)
		}
	}
}

// unquoteScalar resolves double-quoted strings; bare scalars pass
// through verbatim.
func unquoteScalar(s string, line int) (string, error) {
	if !strings.HasPrefix(s, "\"") {
		return s, nil
	}
	var b strings.Builder
	escaped := false
	for i := 1; i < len(s); i++ {
		c := s[i]
		if escaped {
			switch c {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(c)
			default:
				return "", yerrf(line, "unsupported escape \\%c", c)
			}
			escaped = false
			continue
		}
		switch c {
		case '\\':
			escaped = true
		case '"':
			if i != len(s)-1 {
				return "", yerrf(line, "trailing content after closing quote in %q", s)
			}
			return b.String(), nil
		default:
			b.WriteByte(c)
		}
	}
	return "", yerrf(line, "unterminated quoted string %q", s)
}
