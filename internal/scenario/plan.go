package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
)

// This file turns a validated Spec into a concrete Plan: every node,
// start time, task arrival, chaos victim and fault change is resolved
// here, before either runtime starts, so the sim and the live runtime
// execute the same action sequence. All randomness flows from labeled
// rng streams derived from the run seed — two expansions with equal
// (file, seed) are identical, which is what makes equal-seed sim runs
// byte-reproducible.
//
// Victims of random chaos draws (churn, correlated kills, partition
// groups) are resolved against a static aliveness model maintained
// during expansion, not against runtime state. The model tracks planned
// starts/crashes/leaves; it cannot see runtime-resolved targets (the
// `rm` sentinel), so a later draw may pick an already-dead node — the
// runner treats impairing a dead node as a no-op, which keeps the plan
// deterministic without coupling expansion to either runtime.

// ActionKind enumerates plan actions.
type ActionKind int

const (
	ActStart ActionKind = iota
	ActSubmit
	ActCrash
	ActLeave
	ActSever
	ActHeal
	ActHealAll
	ActFault
	ActLoad
	ActPartition
	ActHealPairs
	ActCatalog
)

// String names an action kind for traces and errors.
func (k ActionKind) String() string {
	switch k {
	case ActStart:
		return "start"
	case ActSubmit:
		return "submit"
	case ActCrash:
		return "crash"
	case ActLeave:
		return "leave"
	case ActSever:
		return "sever"
	case ActHeal:
		return "heal"
	case ActHealAll:
		return "heal-all"
	case ActFault:
		return "fault"
	case ActLoad:
		return "load"
	case ActPartition:
		return "partition"
	case ActHealPairs:
		return "heal-pairs"
	case ActCatalog:
		return "catalog"
	default:
		return "unknown"
	}
}

// Fault is the runtime-neutral impairment rule carried by ActFault.
// Zero values clear the rule for the pair.
type Fault struct {
	Drop        float64
	Dup         float64
	DelayMicros int64
}

// Action is one concrete timed step of an expanded plan. A and B are
// node indexes (or TargetAny/TargetRM sentinels).
type Action struct {
	At     sim.Time
	Kind   ActionKind
	A, B   int
	Fault  Fault
	Spec   proto.TaskSpec
	Frac   float64  // ActLoad background-load fraction
	Groups [][]int  // ActPartition
	Pairs  [][2]int // ActHealPairs
	Op     string   // ActCatalog: "add" or "rm"
	Name   string   // ActCatalog object name
}

// NodeSpec is one planned peer: nodes are indexed 0..n-1 in start
// order, and index 0 founds domain 0.
type NodeSpec struct {
	StartAt   sim.Time
	Bootstrap int // index of the join contact; -1 for the founder
	Template  string
	Info      proto.PeerInfo
}

// Plan is a fully expanded scenario, ready for either runtime.
type Plan struct {
	Spec    *Spec
	Seed    uint64
	Catalog cluster.Catalog
	Nodes   []NodeSpec
	Actions []Action // sorted by At; equal times keep expansion order
}

// CatalogObject materializes the object a `catalog X add O` command
// installs. Format, hash and size derive from the name alone, so both
// runtimes (and every part of a multi-process fleet) build an identical
// object without coordinating.
func (p *Plan) CatalogObject(name string) media.Object {
	h := fnv.New64a()
	h.Write([]byte(name))
	hv := h.Sum64()
	f := p.Catalog.Sources[hv%uint64(len(p.Catalog.Sources))]
	return media.Object{
		Name:   name,
		Format: f,
		Hash:   rng.Derive(hv, uint64(len(name))),
		Bytes:  int64(20 * float64(f.BitrateKbps) * 1000 / 8),
	}
}

// stream derives the labeled rng substream of a run seed. Distinct
// labels give independent streams, so e.g. adding workload draws cannot
// shift chaos victim draws.
func stream(seed uint64, label string) *rng.Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return rng.New(rng.Derive(seed, h.Sum64()))
}

// Expand resolves a Spec into a Plan under the given seed (callers
// normally pass spec.Seed; CLIs may override).
func Expand(s *Spec, seed uint64) (*Plan, error) {
	p := &Plan{Spec: s, Seed: seed, Catalog: cluster.StandardCatalog()}
	p.Nodes = expandFleet(s, seed, p.Catalog)

	// Proto-actions: everything with a time, some with victims still
	// unresolved. prio orders equal-time items (starts first, so joins
	// precede the submissions and faults of the same instant).
	type protoAct struct {
		at   sim.Time
		prio int
		seq  int
		// one of:
		start  int  // node index, -1 when not a start
		cmd    *cmd // parsed event command
		churn  *churnDraw
		kill   *StressSpec
		storm  *stormEpoch
		submit *proto.TaskSpec
	}
	var pas []protoAct
	add := func(pa protoAct) {
		pa.seq = len(pas)
		pas = append(pas, pa)
	}
	for i, n := range p.Nodes {
		add(protoAct{at: n.StartAt, prio: 0, start: i})
	}

	// Timed event commands; `rate` commands feed the arrival track only.
	var rateChanges []rateChange
	for _, ev := range s.Events {
		c, err := parseCommand(ev, s.Fleet.Size)
		if err != nil {
			return nil, err
		}
		switch c.kind {
		case cmdRate:
			rateChanges = append(rateChanges, rateChange{at: ev.At, rate: c.rate})
			continue
		case cmdSpike:
			continue // expanded into arrivals below
		}
		add(protoAct{at: ev.At, prio: 1, start: -1, cmd: c})
	}

	// Workload arrivals against the piecewise-constant rate track.
	taskR := stream(seed, "tasks")
	var zipf *rng.Zipf
	objects := s.Workload.Objects
	if objects <= 0 {
		objects = s.Fleet.Objects
	}
	if objects > 0 {
		zipf = rng.NewZipf(taskR.Split(), objects, s.Workload.ZipfS)
	}
	seqID := 0
	drawSpec := func() proto.TaskSpec {
		seqID++
		return proto.TaskSpec{
			ID:             fmt.Sprintf("sc-%d", seqID),
			ObjectName:     fmt.Sprintf("obj-%d", zipf.Next()),
			Constraint:     p.Catalog.RequestConstraint(taskR, taskR.Bool(s.Workload.Relaxed)),
			DeadlineMicros: int64(s.Workload.Deadline),
			Importance:     1 + taskR.Intn(maxInt(1, s.Workload.Importance)),
			DurationSec:    taskR.Exp(float64(s.Workload.DurationMean) / 1e6),
			ChunkSec:       1,
		}
	}
	for _, at := range arrivalTimes(s, seed, rateChanges) {
		spec := drawSpec()
		add(protoAct{at: at, prio: 1, start: -1, submit: &spec})
	}

	// Spike commands become extra pre-drawn arrivals.
	spikeR := stream(seed, "spikes")
	for _, ev := range s.Events {
		c, _ := parseCommand(ev, s.Fleet.Size)
		if c == nil || c.kind != cmdSpike {
			continue
		}
		for i := 0; i < c.spikeN; i++ {
			at := ev.At + sim.Time(spikeR.Float64()*float64(c.spikeOver))
			spec := drawSpec()
			add(protoAct{at: at, prio: 1, start: -1, submit: &spec})
		}
	}

	// Stress blocks: pre-draw event times; victims resolve in the walk.
	chaosR := stream(seed, "chaos")
	for bi := range s.Stress {
		st := &s.Stress[bi]
		switch st.Kind {
		case "churn":
			for t := st.From; ; {
				t += sim.Time(chaosR.Exp(1/st.Rate) * 1e6)
				if t >= st.To || t >= s.Duration {
					break
				}
				add(protoAct{at: t, prio: 1, start: -1,
					churn: &churnDraw{crash: chaosR.Bool(st.CrashFrac), block: st}})
			}
		case "domain-kill":
			add(protoAct{at: st.At, prio: 1, start: -1, kill: st})
		case "partition-storm":
			for t := st.From; t < st.To && t < s.Duration; t += st.Period {
				end := t + st.Period
				if end > st.To {
					end = st.To
				}
				add(protoAct{at: t, prio: 1, start: -1,
					storm: &stormEpoch{block: st, end: end}})
			}
		}
	}

	sort.SliceStable(pas, func(i, j int) bool {
		if pas[i].at != pas[j].at {
			return pas[i].at < pas[j].at
		}
		return pas[i].prio < pas[j].prio
	})

	// Resolution walk: maintain the static aliveness model, draw victims
	// and origins from their own streams in walk order.
	victimR := stream(seed, "victims")
	originR := stream(seed, "origins")
	alive := make([]bool, s.Fleet.Size)
	liveSet := func(protect []int) []int {
		var out []int
		for i, a := range alive {
			if a && !containsInt(protect, i) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, pa := range pas {
		switch {
		case pa.start >= 0:
			alive[pa.start] = true
			p.Actions = append(p.Actions, Action{At: pa.at, Kind: ActStart, A: pa.start})
		case pa.submit != nil:
			cands := liveSet(nil)
			if len(cands) == 0 {
				continue
			}
			origin := cands[originR.Intn(len(cands))]
			p.Actions = append(p.Actions, Action{At: pa.at, Kind: ActSubmit, A: origin, Spec: *pa.submit})
		case pa.churn != nil:
			cands := liveSet(pa.churn.block.Protect)
			if len(cands) == 0 {
				continue
			}
			v := cands[victimR.Intn(len(cands))]
			alive[v] = false
			kind := ActLeave
			if pa.churn.crash {
				kind = ActCrash
			}
			p.Actions = append(p.Actions, Action{At: pa.at, Kind: kind, A: v})
		case pa.kill != nil:
			cands := liveSet(pa.kill.Protect)
			count := pa.kill.Count
			if count > len(cands) {
				count = len(cands)
			}
			perm := victimR.Perm(len(cands))
			for _, j := range perm[:count] {
				v := cands[j]
				alive[v] = false
				p.Actions = append(p.Actions, Action{At: pa.at, Kind: ActCrash, A: v})
			}
		case pa.storm != nil:
			cands := liveSet(pa.storm.block.Protect)
			if len(cands) < 2 {
				continue
			}
			groups := make([][]int, pa.storm.block.Groups)
			for _, v := range cands {
				g := victimR.Intn(len(groups))
				groups[g] = append(groups[g], v)
			}
			p.Actions = append(p.Actions, Action{At: pa.at, Kind: ActPartition, Groups: groups})
			p.Actions = append(p.Actions, Action{At: pa.storm.end, Kind: ActHealPairs, Pairs: CrossPairs(groups)})
		case pa.cmd != nil:
			acts := pa.cmd.expand(pa.at)
			for _, a := range acts {
				// Keep the model honest for concrete lifecycle targets.
				if (a.Kind == ActCrash || a.Kind == ActLeave) && a.A >= 0 {
					alive[a.A] = false
				}
			}
			p.Actions = append(p.Actions, acts...)
		}
	}
	sort.SliceStable(p.Actions, func(i, j int) bool { return p.Actions[i].At < p.Actions[j].At })
	return p, nil
}

type churnDraw struct {
	crash bool
	block *StressSpec
}

type stormEpoch struct {
	block *StressSpec
	end   sim.Time
}

type rateChange struct {
	at   sim.Time
	rate float64
}

// CrossPairs lists every directed-agnostic pair spanning two different
// groups — the links a partition severs.
func CrossPairs(groups [][]int) [][2]int {
	var out [][2]int
	for gi := 0; gi < len(groups); gi++ {
		for gj := gi + 1; gj < len(groups); gj++ {
			for _, a := range groups[gi] {
				for _, b := range groups[gj] {
					out = append(out, [2]int{a, b})
				}
			}
		}
	}
	return out
}

// expandFleet instantiates the weighted templates into start-ordered
// peer specs with services and objects placed from the catalog stream.
func expandFleet(s *Spec, seed uint64, cat cluster.Catalog) []NodeSpec {
	fleetR := stream(seed, "fleet")
	q := core.DefaultConfig().Qualify
	templates := s.Fleet.Templates
	if len(templates) == 0 {
		templates = []TemplateSpec{{Name: "default", Weight: 1}}
	}
	total := 0
	for _, t := range templates {
		total += t.Weight
	}
	nodes := make([]NodeSpec, s.Fleet.Size)
	infos := make([]proto.PeerInfo, s.Fleet.Size)
	for i := range nodes {
		pick := fleetR.Intn(total)
		var tpl TemplateSpec
		for _, t := range templates {
			if pick < t.Weight {
				tpl = t
				break
			}
			pick -= t.Weight
		}
		info := proto.PeerInfo{
			SpeedWU:       tpl.SpeedWU,
			BandwidthKbps: tpl.BandwidthKbps,
			UptimeSec:     tpl.UptimeSec,
		}
		// Unset capabilities follow the heavy-tailed population model of
		// cluster.PeerSpecs; the draws happen unconditionally so a
		// template override never shifts the stream for later nodes.
		speed, bw, up := fleetR.Pareto(2, 20, 1.2), fleetR.Pareto(500, 20000, 1.0), fleetR.Exp(3*3600)
		if info.SpeedWU == 0 {
			info.SpeedWU = speed
		}
		if info.BandwidthKbps == 0 {
			info.BandwidthKbps = bw
		}
		if info.UptimeSec == 0 {
			info.UptimeSec = up
		}
		if fleetR.Float64() < s.Fleet.Qualified {
			if info.SpeedWU < q.MinSpeedWU {
				info.SpeedWU = q.MinSpeedWU * fleetR.Uniform(1, 2)
			}
			if info.BandwidthKbps < q.MinBandwidthKbps {
				info.BandwidthKbps = q.MinBandwidthKbps * fleetR.Uniform(1, 3)
			}
			if info.UptimeSec < q.MinUptimeSec {
				info.UptimeSec = q.MinUptimeSec * fleetR.Uniform(1, 4)
			}
		}
		nodes[i] = NodeSpec{Template: tpl.Name}
		infos[i] = info
	}
	cat.Populate(stream(seed, "catalog"), infos, s.Fleet.Services, s.Fleet.Objects, s.Fleet.Replicas, 20)
	for i := range nodes {
		nodes[i].Info = infos[i]
	}

	// Start times by pattern; node 0 founds at t=0 in every pattern.
	startR := stream(seed, "startup")
	n := s.Fleet.Size
	times := make([]sim.Time, n)
	switch s.Fleet.Startup {
	case "linear":
		for i := 1; i < n; i++ {
			times[i] = s.Fleet.Over * sim.Time(i) / sim.Time(maxInt(1, n-1))
		}
	case "flash":
		// A quiet period, then the whole crowd lands within 200ms.
		for i := 1; i < n; i++ {
			times[i] = s.Fleet.Over + sim.Time(startR.Float64()*float64(200*sim.Millisecond))
		}
	case "diurnal":
		// Arrival density ∝ 1 - cos(2πt/over): a sinusoidal day with its
		// peak mid-window, sampled by rejection.
		for i := 1; i < n; i++ {
			for {
				x := startR.Float64()
				if startR.Float64()*2 < 1-math.Cos(2*math.Pi*x) {
					times[i] = sim.Time(x * float64(s.Fleet.Over))
					break
				}
			}
		}
	}
	// Node index order must equal start order (both runtimes assign IDs
	// by start order), so sort the non-founder tail by time.
	order := make([]int, n-1)
	for i := range order {
		order[i] = i + 1
	}
	sort.SliceStable(order, func(a, b int) bool { return times[order[a]] < times[order[b]] })
	out := make([]NodeSpec, n)
	out[0] = nodes[0]
	out[0].StartAt = 0
	out[0].Bootstrap = -1
	for rank, old := range order {
		i := rank + 1
		out[i] = nodes[old]
		out[i].StartAt = times[old]
		out[i].Bootstrap = fleetR.Intn(i) // any earlier-started node
	}
	return out
}

// arrivalTimes precomputes Poisson task arrivals over
// [workload.start, duration) by thinning against the maximum of the
// piecewise-constant rate track built from `rate` events.
func arrivalTimes(s *Spec, seed uint64, changes []rateChange) []sim.Time {
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].at < changes[j].at })
	rateAt := func(t sim.Time) float64 {
		r := s.Workload.Rate
		for _, c := range changes {
			if c.at <= t {
				r = c.rate
			}
		}
		return r
	}
	lambdaMax := s.Workload.Rate
	for _, c := range changes {
		if c.rate > lambdaMax {
			lambdaMax = c.rate
		}
	}
	if lambdaMax <= 0 {
		return nil
	}
	r := stream(seed, "arrivals")
	var out []sim.Time
	for t := s.Workload.Start; ; {
		t += sim.Time(r.Exp(1/lambdaMax) * 1e6)
		if t >= s.Duration {
			return out
		}
		if r.Float64() < rateAt(t)/lambdaMax {
			out = append(out, t)
		}
	}
}

// --- event command parsing ---

type cmdKind int

const (
	cmdAction cmdKind = iota // expands to concrete plan actions
	cmdRate                  // feeds the arrival track
	cmdSpike                 // expands to extra arrivals
)

// cmd is one parsed `do:` command.
type cmd struct {
	kind      cmdKind
	act       ActionKind // cmdAction
	a, b      int
	fault     Fault
	frac      float64
	groups    [][]int
	rate      float64  // cmdRate
	spikeN    int      // cmdSpike
	spikeOver sim.Time // cmdSpike
	op, name  string   // ActCatalog
}

// expand maps a parsed command to plan actions at time at.
func (c *cmd) expand(at sim.Time) []Action {
	switch c.act {
	case ActPartition:
		return []Action{{At: at, Kind: ActPartition, Groups: c.groups}}
	case ActFault:
		return []Action{{At: at, Kind: ActFault, A: c.a, B: c.b, Fault: c.fault}}
	case ActLoad:
		return []Action{{At: at, Kind: ActLoad, A: c.a, Frac: c.frac}}
	case ActCatalog:
		return []Action{{At: at, Kind: ActCatalog, A: c.a, Op: c.op, Name: c.name}}
	default:
		return []Action{{At: at, Kind: c.act, A: c.a, B: c.b}}
	}
}

// parseCommand parses one `do:` command string. The vocabulary:
//
//	sever A B        cut both directions between A and B
//	heal [A B]       remove every fault rule, or just the pair's
//	crash X          silent failure of X
//	leave X          graceful departure of X
//	rate R           set the workload arrival rate to R/sec
//	drop A B P       drop A→B messages with probability P
//	dup A B P        duplicate A→B messages with probability P
//	delay A B D      delay A→B messages by D
//	partition G|G    sever across explicit groups, e.g. 0,1|2,3
//	load X F         set X's background load to F of its speed
//	spike N over W   N extra task arrivals within W of the event time
//	catalog X add O  add object O to X's catalog (deterministic content)
//	catalog X rm O   remove object O from X's catalog
//
// Targets are node indexes, `rm` (the current resource manager,
// resolved at fire time) or `*` (any, in fault rules).
func parseCommand(ev EventSpec, fleetSize int) (*cmd, error) {
	f := strings.Fields(ev.Do)
	if len(f) == 0 {
		return nil, yerrf(ev.Line, "empty command")
	}
	bad := func(format string, args ...any) error {
		return yerrf(ev.Line, "command %q: %s", ev.Do, fmt.Sprintf(format, args...))
	}
	target := func(s string, allowAny bool) (int, error) {
		switch s {
		case "rm":
			return TargetRM, nil
		case "*":
			if !allowAny {
				return 0, bad("'*' is only valid in fault rules")
			}
			return TargetAny, nil
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 || v >= fleetSize {
			return 0, bad("bad node target %q (want an index < %d, rm or *)", s, fleetSize)
		}
		return v, nil
	}
	argc := func(n int) error {
		if len(f) != n {
			return bad("want %d argument(s), got %d", n-1, len(f)-1)
		}
		return nil
	}
	c := &cmd{}
	var err error
	switch f[0] {
	case "sever":
		if err = argc(3); err != nil {
			return nil, err
		}
		c.act = ActSever
		if c.a, err = target(f[1], true); err != nil {
			return nil, err
		}
		c.b, err = target(f[2], true)
	case "heal":
		switch len(f) {
		case 1:
			c.act = ActHealAll
		case 3:
			c.act = ActHeal
			if c.a, err = target(f[1], true); err != nil {
				return nil, err
			}
			c.b, err = target(f[2], true)
		default:
			return nil, bad("want 'heal' or 'heal A B'")
		}
	case "crash", "leave":
		if err = argc(2); err != nil {
			return nil, err
		}
		c.act = ActCrash
		if f[0] == "leave" {
			c.act = ActLeave
		}
		c.a, err = target(f[1], false)
	case "rate":
		if err = argc(2); err != nil {
			return nil, err
		}
		c.kind = cmdRate
		c.rate, err = strconv.ParseFloat(f[1], 64)
		if err != nil || c.rate < 0 {
			return nil, bad("bad rate %q", f[1])
		}
	case "drop", "dup", "delay":
		if err = argc(4); err != nil {
			return nil, err
		}
		c.act = ActFault
		if c.a, err = target(f[1], true); err != nil {
			return nil, err
		}
		if c.b, err = target(f[2], true); err != nil {
			return nil, err
		}
		switch f[0] {
		case "drop", "dup":
			p, perr := strconv.ParseFloat(f[3], 64)
			if perr != nil || p < 0 || p > 1 {
				return nil, bad("bad probability %q", f[3])
			}
			if f[0] == "drop" {
				c.fault.Drop = p
			} else {
				c.fault.Dup = p
			}
		case "delay":
			d, derr := parseDur(f[3])
			if derr != nil {
				return nil, bad("%v", derr)
			}
			c.fault.DelayMicros = int64(d)
		}
	case "partition":
		if err = argc(2); err != nil {
			return nil, err
		}
		for _, g := range strings.Split(f[1], "|") {
			var group []int
			for _, m := range strings.Split(g, ",") {
				v, terr := target(m, false)
				if terr != nil {
					return nil, terr
				}
				group = append(group, v)
			}
			c.groups = append(c.groups, group)
		}
		if len(c.groups) < 2 {
			return nil, bad("partition needs at least two |-separated groups")
		}
		c.act = ActPartition
	case "load":
		if err = argc(3); err != nil {
			return nil, err
		}
		c.act = ActLoad
		if c.a, err = target(f[1], false); err != nil {
			return nil, err
		}
		c.frac, err = strconv.ParseFloat(f[2], 64)
		if err != nil || c.frac < 0 {
			return nil, bad("bad load fraction %q", f[2])
		}
	case "catalog":
		if err = argc(4); err != nil {
			return nil, err
		}
		c.act = ActCatalog
		if c.a, err = target(f[1], false); err != nil {
			return nil, err
		}
		if f[2] != "add" && f[2] != "rm" {
			return nil, bad("want 'catalog X add O' or 'catalog X rm O'")
		}
		c.op, c.name = f[2], f[3]
	case "spike":
		if err = argc(4); err != nil {
			return nil, err
		}
		if f[2] != "over" {
			return nil, bad("want 'spike N over W'")
		}
		c.kind = cmdSpike
		c.spikeN, err = strconv.Atoi(f[1])
		if err != nil || c.spikeN < 1 {
			return nil, bad("bad spike count %q", f[1])
		}
		c.spikeOver, err = parseDur(f[3])
		if err != nil {
			return nil, bad("%v", err)
		}
	default:
		return nil, bad("unknown verb %q", f[0])
	}
	if err != nil {
		return nil, err
	}
	return c, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
