package scenario

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// LiveHooks injects wall-clock access into the live runner. This
// package is on the determinism-critical lint list — scenario
// interpretation itself never reads the process clock; the hooks are
// supplied by the CLI (live.Nanotime and a real sleep). Conversions
// like time.Duration below are fine: they do not observe the
// environment.
type LiveHooks struct {
	// NowMicros returns monotonic microseconds since an arbitrary epoch.
	NowMicros func() int64
	// SleepMicros blocks for the given duration.
	SleepMicros func(int64)
	// Nanotime, when non-nil, is handed to core.Config.Nanotime so
	// allocator costing uses real CPU time (live.Nanotime).
	Nanotime func() int64
}

// LiveOptions configures RunLive.
type LiveOptions struct {
	// Part/Parts split the fleet across processes: this process hosts
	// node indexes with index%Parts == Part. Parts <= 1 hosts everything
	// in-process.
	Part, Parts int
	// PartAddrs lists each part's TCP listen address, index-aligned with
	// parts. Required when Parts > 1; this part listens on its own entry
	// and routes every foreign node index to its owner's entry.
	PartAddrs []string
	// Pace divides scripted times: 2.0 runs the timeline twice as fast.
	// Zero means 1.
	Pace float64
	// Transport tunes the TCP transport (Parts > 1 only).
	Transport live.TransportConfig
	Hooks     LiveHooks
}

// RunLive executes an expanded plan on the live goroutine runtime: the
// same file that drives the simulator maps onto live.FaultInjector
// rules and supervisor lifecycle (Kill/Stop). The returned report
// reflects this process's share of the fleet.
func RunLive(p *Plan, opts LiveOptions) (*Report, error) {
	if opts.Hooks.NowMicros == nil || opts.Hooks.SleepMicros == nil {
		return nil, fmt.Errorf("scenario: RunLive needs clock hooks")
	}
	parts := opts.Parts
	if parts <= 1 {
		parts, opts.Part = 1, 0
	}
	if parts > 1 && len(opts.PartAddrs) != parts {
		return nil, fmt.Errorf("scenario: %d parts need %d addresses, got %d", parts, parts, len(opts.PartAddrs))
	}
	pace := opts.Pace
	if pace <= 0 {
		pace = 1
	}

	cfg := core.DefaultConfig()
	if p.Spec.Discovery != "" {
		cfg.Discovery = p.Spec.Discovery
	}
	if opts.Hooks.Nanotime != nil {
		cfg.Nanotime = opts.Hooks.Nanotime
	}
	rt := live.NewRuntime(p.Seed)
	events := &core.Events{}
	sk := stats.NewSet(0, 0, 0)
	events.AttachSketches(sk)
	dec := core.NewDecisionLog(0)
	events.AttachDecisions(dec)
	fi := rt.EnsureFaultInjector()

	var tr *live.TCPTransport
	if parts > 1 {
		tr = live.NewTCPTransportOpts(rt, opts.Transport, metrics.NewRegistry(), nil)
		if _, err := tr.Listen(opts.PartAddrs[opts.Part]); err != nil {
			return nil, fmt.Errorf("scenario: part %d listen: %w", opts.Part, err)
		}
		for i := range p.Nodes {
			if i%parts != opts.Part {
				tr.Register(env.NodeID(i), opts.PartAddrs[i%parts])
			}
		}
		defer tr.Close()
	}
	defer rt.Shutdown()

	h := &liveHost{
		rt: rt, fi: fi, cfg: cfg, events: events, plan: p,
		part: opts.Part, parts: parts,
		peers: make([]*core.Peer, len(p.Nodes)),
	}
	start := opts.Hooks.NowMicros()
	for i := range p.Actions {
		a := &p.Actions[i]
		due := start + int64(float64(a.At)/pace)
		if wait := due - opts.Hooks.NowMicros(); wait > 0 {
			opts.Hooks.SleepMicros(wait)
		}
		h.apply(a)
	}
	endAt := start + int64(float64(p.Spec.Duration)/pace)
	if wait := endAt - opts.Hooks.NowMicros(); wait > 0 {
		opts.Hooks.SleepMicros(wait)
	}

	fs := fi.Stats()
	o := &Outcome{
		Events:     events.Snapshot(),
		MissRate:   events.MissRate(),
		NowMicros:  rt.NowMicros(),
		Quantile:   sk.Quantile,
		Decisions:  dec.Snapshot(),
		FaultDrops: fs.Dropped,
		FaultDups:  fs.Duplicated,
	}
	return Evaluate(p.Spec, "live", p.Seed, o), nil
}

// liveHost applies plan actions to a live runtime. Node indexes are the
// global IDs (AddNodeWithID), so multi-part fleets agree on addressing.
type liveHost struct {
	rt     *live.Runtime
	fi     *live.FaultInjector
	cfg    core.Config
	events *core.Events
	plan   *Plan
	part   int
	parts  int
	peers  []*core.Peer // locally hosted, by index; nil otherwise
	dead   []int        // indexes this host killed or stopped
}

func (h *liveHost) owns(i int) bool { return i%h.parts == h.part }

// id resolves a plan target. For TargetRM only locally hosted peers are
// consulted (multi-part scenarios should avoid rm targets); lowest
// RM-holding index wins so concurrent runs agree when one RM exists.
func (h *liveHost) id(target int) (env.NodeID, bool) {
	switch {
	case target == TargetAny:
		return live.AnyNode, true
	case target == TargetRM:
		for i, p := range h.peers {
			if p == nil || containsInt(h.dead, i) {
				continue
			}
			is := false
			pp := p
			h.rt.Call(env.NodeID(i), func() { is = pp.IsRM() })
			if is {
				return env.NodeID(i), true
			}
		}
		return 0, false
	case target >= 0 && target < len(h.peers):
		return env.NodeID(target), !containsInt(h.dead, target)
	}
	return 0, false
}

func (h *liveHost) apply(a *Action) {
	switch a.Kind {
	case ActStart:
		if !h.owns(a.A) {
			return
		}
		n := &h.plan.Nodes[a.A]
		boot := env.NoNode
		if n.Bootstrap >= 0 {
			boot = env.NodeID(n.Bootstrap)
		}
		p := core.New(h.cfg, n.Info, boot, h.events)
		h.rt.AddNodeWithID(env.NodeID(a.A), p)
		h.peers[a.A] = p
	case ActSubmit:
		if !h.owns(a.A) {
			return
		}
		if p := h.peers[a.A]; p != nil && !containsInt(h.dead, a.A) {
			spec := a.Spec
			spec.Origin = env.NodeID(a.A)
			h.rt.Call(env.NodeID(a.A), func() { p.SubmitTask(spec) })
		}
	case ActCrash, ActLeave:
		id, ok := h.id(a.A)
		if !ok || !h.owns(int(id)) || h.peers[int(id)] == nil {
			return
		}
		if a.Kind == ActCrash {
			h.rt.Kill(id)
		} else {
			h.rt.Stop(id)
		}
		h.dead = append(h.dead, int(id))
	case ActSever:
		// Installed on every part: each sender suppresses its own side.
		ia, oka := h.id(a.A)
		ib, okb := h.id(a.B)
		if oka && okb {
			h.fi.Sever(ia, ib)
		}
	case ActHeal:
		ia, oka := h.id(a.A)
		ib, okb := h.id(a.B)
		if oka && okb {
			h.fi.Heal(ia, ib)
		}
	case ActHealAll:
		h.fi.Clear()
	case ActFault:
		ia, oka := h.id(a.A)
		ib, okb := h.id(a.B)
		if oka && okb {
			h.fi.Set(ia, ib, live.FaultRule{
				Drop:  a.Fault.Drop,
				Dup:   a.Fault.Dup,
				Delay: time.Duration(a.Fault.DelayMicros) * time.Microsecond,
			})
		}
	case ActLoad:
		id, ok := h.id(a.A)
		if !ok || !h.owns(int(id)) {
			return
		}
		if p := h.peers[int(id)]; p != nil {
			h.rt.Call(id, func() { p.SetBackgroundLoad(p.Info().SpeedWU * a.Frac) })
		}
	case ActCatalog:
		id, ok := h.id(a.A)
		if !ok || !h.owns(int(id)) {
			return
		}
		if p := h.peers[int(id)]; p != nil {
			h.rt.Call(id, func() {
				if a.Op == "add" {
					p.AddObject(h.plan.CatalogObject(a.Name))
				} else {
					p.RemoveObject(a.Name)
				}
			})
		}
	case ActPartition:
		for _, pair := range CrossPairs(a.Groups) {
			h.fi.Sever(env.NodeID(pair[0]), env.NodeID(pair[1]))
		}
	case ActHealPairs:
		for _, pair := range a.Pairs {
			h.fi.Heal(env.NodeID(pair[0]), env.NodeID(pair[1]))
		}
	}
}
