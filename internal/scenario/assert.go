package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Assertions are first-class scenario clauses evaluated against the
// run's core.Events counters, the windowed quantile sketches and the RM
// decision log. The catalog, keyed by the assert mapping's keys:
//
//	<counter>_min / <counter>_max    integer bounds on an outcome counter;
//	    counters: submitted, admitted, rejected, redirected, aborted,
//	    repairs, migrations, preemptions, failovers, domains, peers_dead
//	deadline_miss_rate_max           aggregate chunk-deadline miss rate
//	failover_time_max                max RM takeover latency (duration)
//	repair_time_max                  max session repair latency (duration)
//	failover_p99_max                 sketch p99 bounds (durations)
//	alloc_p99_max
//	rtt_p99_max
//	fault_drops_min / fault_drops_max  messages dropped by injected faults
//	net_drops_max                    messages lost by the network model
//	decisions_<action>_min           decision-log count by action, e.g.
//	    decisions_admit_min, decisions_failover_min
type check struct {
	spec AssertSpec
	eval func(o *Outcome) (got string, pass bool)
}

// Outcome is the runtime-neutral result surface assertions read. Either
// runner fills it after its run completes.
type Outcome struct {
	Events    core.EventsData
	MissRate  float64
	NowMicros int64 // sketch read timestamp (virtual in sim)
	// Quantile reads a windowed sketch (stats.Sketch* name); nil when the
	// runtime exposes no sketches.
	Quantile   func(name string, nowMicros int64, q float64) float64
	Decisions  []core.Decision
	FaultDrops uint64 // drops attributed to injected fault rules
	FaultDups  uint64
	NetDrops   uint64 // drops from the network model itself (sim only)
}

// counterFields maps assertable counter names onto EventsData.
var counterFields = []struct {
	name string
	get  func(e *core.EventsData) int
}{
	{"submitted", func(e *core.EventsData) int { return e.Submitted }},
	{"admitted", func(e *core.EventsData) int { return e.Admitted }},
	{"rejected", func(e *core.EventsData) int { return e.Rejected }},
	{"redirected", func(e *core.EventsData) int { return e.Redirected }},
	{"aborted", func(e *core.EventsData) int { return e.Aborted }},
	{"repairs", func(e *core.EventsData) int { return e.Repairs }},
	{"migrations", func(e *core.EventsData) int { return e.Migrations }},
	{"preemptions", func(e *core.EventsData) int { return e.Preemptions }},
	{"failovers", func(e *core.EventsData) int { return e.Failovers }},
	{"domains", func(e *core.EventsData) int { return e.DomainsCreated }},
	{"peers_dead", func(e *core.EventsData) int { return e.PeersDeclaredDead }},
}

// compileAssert resolves one clause to its evaluator; unknown keys and
// malformed bounds fail at Parse time so a bad scenario file never runs.
func compileAssert(a AssertSpec) (*check, error) {
	c := &check{spec: a}
	intBound := func(get func(o *Outcome) int, min bool) error {
		want, err := strconv.Atoi(a.Value)
		if err != nil {
			return yerrf(a.Line, "assert %s: %q is not an integer", a.Key, a.Value)
		}
		c.eval = func(o *Outcome) (string, bool) {
			got := get(o)
			if min {
				return strconv.Itoa(got), got >= want
			}
			return strconv.Itoa(got), got <= want
		}
		return nil
	}
	durBound := func(get func(o *Outcome) int64) error {
		want, err := parseDur(a.Value)
		if err != nil {
			return yerrf(a.Line, "assert %s: %v", a.Key, err)
		}
		c.eval = func(o *Outcome) (string, bool) {
			got := get(o)
			return fmtDur(sim.Time(got)), got <= int64(want)
		}
		return nil
	}
	sketchBound := func(name string) error {
		want, err := parseDur(a.Value)
		if err != nil {
			return yerrf(a.Line, "assert %s: %v", a.Key, err)
		}
		c.eval = func(o *Outcome) (string, bool) {
			if o.Quantile == nil {
				return "no-sketches", false
			}
			gotSec := o.Quantile(name, o.NowMicros, 0.99)
			got := int64(gotSec * 1e6)
			return fmtDur(sim.Time(got)), got <= int64(want)
		}
		return nil
	}

	for _, cf := range counterFields {
		get := cf.get
		if a.Key == cf.name+"_min" {
			return c, intBound(func(o *Outcome) int { return get(&o.Events) }, true)
		}
		if a.Key == cf.name+"_max" {
			return c, intBound(func(o *Outcome) int { return get(&o.Events) }, false)
		}
	}
	switch a.Key {
	case "deadline_miss_rate_max":
		want, err := strconv.ParseFloat(a.Value, 64)
		if err != nil {
			return nil, yerrf(a.Line, "assert %s: %q is not a number", a.Key, a.Value)
		}
		c.eval = func(o *Outcome) (string, bool) {
			return fmt.Sprintf("%.4f", o.MissRate), o.MissRate <= want
		}
		return c, nil
	case "failover_time_max":
		return c, durBound(func(o *Outcome) int64 { return maxMicros(o.Events.FailoverMicros) })
	case "repair_time_max":
		return c, durBound(func(o *Outcome) int64 { return maxMicros(o.Events.RepairMicros) })
	case "failover_p99_max":
		return c, sketchBound(stats.SketchFailover)
	case "alloc_p99_max":
		return c, sketchBound(stats.SketchAllocLatency)
	case "rtt_p99_max":
		return c, sketchBound(stats.SketchDeliveryRTT)
	case "fault_drops_min":
		return c, intBound(func(o *Outcome) int { return int(o.FaultDrops) }, true)
	case "fault_drops_max":
		return c, intBound(func(o *Outcome) int { return int(o.FaultDrops) }, false)
	case "net_drops_max":
		return c, intBound(func(o *Outcome) int { return int(o.NetDrops) }, false)
	}
	if action, ok := strings.CutPrefix(a.Key, "decisions_"); ok {
		action, isMin := strings.CutSuffix(action, "_min")
		if !isMin {
			return nil, yerrf(a.Line, "assert %s: decision bounds are _min only", a.Key)
		}
		if !validDecisionAction(action) {
			return nil, yerrf(a.Line, "assert %s: unknown decision action %q", a.Key, action)
		}
		return c, intBound(func(o *Outcome) int {
			n := 0
			for _, d := range o.Decisions {
				if d.Action == action {
					n++
				}
			}
			return n
		}, true)
	}
	return nil, yerrf(a.Line, "unknown assertion %q", a.Key)
}

func validDecisionAction(a string) bool {
	switch a {
	case core.DecisionAdmit, core.DecisionReject, core.DecisionRedirect,
		core.DecisionPreempt, core.DecisionRepair, core.DecisionMigrate,
		core.DecisionFailover:
		return true
	}
	return false
}

func maxMicros(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
