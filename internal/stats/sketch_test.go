package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// exactQuantile returns the ceil-rank quantile of sorted vs, matching
// the sketch's rank convention.
func exactQuantile(vs []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(vs))))
	if rank < 1 {
		rank = 1
	}
	return vs[rank-1]
}

// TestQuantileRelativeError is the property test pinning the sketch's
// accuracy contract: for heavy-tailed latency-like streams, every
// queried quantile is within the configured relative error of the exact
// sorted quantile.
func TestQuantileRelativeError(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		s := NewSketch(DefaultAlpha)
		n := 100 + r.Intn(5000)
		vs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			// Log-uniform over ~6 decades: 10µs .. 10s, in seconds.
			v := math.Pow(10, -5+6*r.Float64())
			vs = append(vs, v)
			s.Observe(v)
		}
		sort.Float64s(vs)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			got, want := s.Quantile(q), exactQuantile(vs, q)
			if rel := math.Abs(got-want) / want; rel > 2*DefaultAlpha {
				t.Fatalf("trial %d n=%d q=%g: got %g want %g (rel err %g)",
					trial, n, q, got, want, rel)
			}
		}
	}
}

// TestMergeAssociativity checks that bucket-wise merge is exact: any
// grouping of the same shards yields byte-identical exports.
func TestMergeAssociativity(t *testing.T) {
	r := rng.New(11)
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = NewSketch(DefaultAlpha)
		for j := 0; j < 500; j++ {
			shards[i].Observe(r.Float64() * 10)
		}
	}
	// ((a+b)+c)+d
	left := NewSketch(DefaultAlpha)
	for _, s := range shards {
		if err := left.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	// (a+b) + (c+d)
	ab, cd := NewSketch(DefaultAlpha), NewSketch(DefaultAlpha)
	ab.Merge(shards[0])
	ab.Merge(shards[1])
	cd.Merge(shards[2])
	cd.Merge(shards[3])
	right := NewSketch(DefaultAlpha)
	right.Merge(cd)
	right.Merge(ab)

	lj, _ := json.Marshal(left.Export())
	rj, _ := json.Marshal(right.Export())
	if !bytes.Equal(lj, rj) {
		t.Fatalf("merge not associative:\n%s\n%s", lj, rj)
	}
	// And the merged sketch equals observing the union directly.
	if left.Count() != 2000 {
		t.Fatalf("count = %d", left.Count())
	}
}

func TestMergeAlphaMismatch(t *testing.T) {
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Observe(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched alpha must not merge")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("nil merge must be a no-op")
	}
}

func TestImportExportRoundTrip(t *testing.T) {
	r := rng.New(3)
	s := NewSketch(DefaultAlpha)
	for i := 0; i < 1000; i++ {
		s.Observe(r.Float64())
	}
	s.Observe(0) // zeros bucket
	j := s.Export()
	back, err := Import(j)
	if err != nil {
		t.Fatal(err)
	}
	bj := back.Export()
	aj, _ := json.Marshal(j)
	bj2, _ := json.Marshal(bj)
	if !bytes.Equal(aj, bj2) {
		t.Fatalf("round trip changed sketch:\n%s\n%s", aj, bj2)
	}
	if _, err := Import(SketchJSON{Keys: []int{1}, Vals: nil}); err == nil {
		t.Fatal("mismatched keys/vals must fail")
	}
}

func TestWindowSlides(t *testing.T) {
	// 10-unit window in 5 slices of 2 micros each.
	w := NewWindowed(DefaultAlpha, 10, 5)
	w.Observe(0, 100)
	if got := w.Quantile(1, 0.5); math.Abs(got-100)/100 > DefaultAlpha {
		t.Fatalf("p50 = %g", got)
	}
	// Advance past the full window: the old sample must expire.
	w.Observe(25, 1)
	if got := w.Quantile(25, 1); math.Abs(got-1) > DefaultAlpha {
		t.Fatalf("after slide, max = %g (old sample leaked)", got)
	}
	if c := w.Merged(25).Count(); c != 1 {
		t.Fatalf("window count = %d", c)
	}
}

func TestSetExportDeterministic(t *testing.T) {
	feed := func() *Set {
		s := NewSet(0, 0, 0)
		r := rng.New(9)
		for i := 0; i < 300; i++ {
			s.Observe(SketchAllocLatency, int64(i), r.Float64())
			s.Observe(SketchDeliveryRTT, int64(i), r.Float64()*2)
		}
		return s
	}
	var a, b bytes.Buffer
	if err := feed().WriteJSON(&a, 300); err != nil {
		t.Fatal(err)
	}
	if err := feed().WriteJSON(&b, 300); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) || a.Len() == 0 {
		t.Fatal("equal feeds must export byte-identical JSON")
	}
}

func TestNilSetSafe(t *testing.T) {
	var s *Set
	s.Observe("x", 1, 2)
	if s.Quantile("x", 1, 0.5) != 0 || s.Export(1) != nil {
		t.Fatal("nil set reported state")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMergeExports(t *testing.T) {
	mk := func(seed uint64) []SketchJSON {
		set := NewSet(0, 0, 0)
		r := rng.New(seed)
		for i := 0; i < 200; i++ {
			set.Observe(SketchAllocLatency, int64(i), r.Float64())
		}
		return set.Export(200)
	}
	merged, skipped := MergeExports([][]SketchJSON{mk(1), mk(2)})
	if skipped != 0 || len(merged) != 1 || merged[0].Count != 400 {
		t.Fatalf("merged=%+v skipped=%d", merged, skipped)
	}
	// Order of node exports must not change the merged bytes.
	m2, _ := MergeExports([][]SketchJSON{mk(2), mk(1)})
	a, _ := json.Marshal(merged)
	b, _ := json.Marshal(m2)
	if !bytes.Equal(a, b) {
		t.Fatal("merge order changed fleet sketch")
	}
	// A corrupt export is skipped, not fatal.
	_, skipped = MergeExports([][]SketchJSON{{{Name: "x", Keys: []int{1}}}})
	if skipped != 1 {
		t.Fatalf("skipped = %d", skipped)
	}
}
