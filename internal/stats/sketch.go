// Package stats provides the streaming percentile engine of the fleet
// observability plane: a mergeable quantile sketch with bounded relative
// error (DDSketch-style logarithmic buckets), a sliding-window wrapper,
// and a named registry (Set) the runtimes feed with allocation latency,
// delivery RTT, failover time and queue occupancy.
//
// Design constraints, in order:
//
//   - Mergeable: bucket-wise merge is exact (associative and
//     commutative), so per-node sketches scraped by the fleet collector
//     combine into fleet-wide percentiles with no extra error.
//   - Deterministic: serialization orders buckets by index, and every
//     query is a pure function of the bucket multiset, so equal-seed
//     runs produce byte-identical sketch exports.
//   - Bounded: memory is O(log(max/min)/α) regardless of stream length.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultAlpha is the default relative accuracy: a quantile estimate q̂
// satisfies |q̂ - q| <= α·q. 1% keeps ~700 buckets over the full range
// of a float64, in practice a few dozen for latencies.
const DefaultAlpha = 0.01

// Sketch is a quantile sketch over non-negative values with relative
// accuracy Alpha. The zero value is not usable; call NewSketch. A
// Sketch is not safe for concurrent use — Windowed and Set add locking.
type Sketch struct {
	alpha    float64
	gamma    float64 // (1+α)/(1-α)
	logGamma float64
	buckets  map[int]uint64 // bucket index -> count
	zeros    uint64         // values in [0, minIndexable)
	count    uint64
	sum      float64
	max      float64
}

// NewSketch creates an empty sketch with the given relative accuracy
// (DefaultAlpha if alpha <= 0).
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:    alpha,
		gamma:    gamma,
		logGamma: math.Log(gamma),
		buckets:  make(map[int]uint64),
	}
}

// minIndexable bounds the log-bucket index range; smaller magnitudes
// collapse into the zeros bucket. 1e-9 is well below a microsecond when
// values are seconds.
const minIndexable = 1e-9

// index returns the bucket index of v (v >= minIndexable).
func (s *Sketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logGamma))
}

// value returns the representative value of bucket i (the geometric
// midpoint of its bounds), the inverse of index up to relative error α.
func (s *Sketch) value(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Observe records one sample. Negative values clamp to zero.
func (s *Sketch) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
	if v < minIndexable {
		s.zeros++
		return
	}
	s.buckets[s.index(v)]++
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the sum of observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Quantile returns the q-th quantile (q in [0, 1]) with relative error
// at most Alpha, or 0 for an empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank == 0 {
		rank = 1
	}
	if rank <= s.zeros {
		return 0
	}
	idxs := make([]int, 0, len(s.buckets))
	for i := range s.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	acc := s.zeros
	for _, i := range idxs {
		acc += s.buckets[i]
		if acc >= rank {
			return s.value(i)
		}
	}
	return s.max
}

// Merge folds other into s bucket-wise. Both sketches must share the
// same alpha; merging is exact, so (a+b)+c == a+(b+c) for any grouping.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if other.alpha != s.alpha {
		return fmt.Errorf("stats: merging sketches with alpha %g and %g", s.alpha, other.alpha)
	}
	s.count += other.count
	s.sum += other.sum
	s.zeros += other.zeros
	if other.max > s.max {
		s.max = other.max
	}
	for i, c := range other.buckets {
		s.buckets[i] += c
	}
	return nil
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := NewSketch(s.alpha)
	c.Merge(s) //nolint:errcheck // same alpha by construction
	return c
}

// Reset empties the sketch in place, keeping its accuracy.
func (s *Sketch) Reset() {
	s.buckets = make(map[int]uint64)
	s.zeros, s.count, s.sum, s.max = 0, 0, 0, 0
}

// SketchJSON is the deterministic wire form of a Sketch: bucket indices
// sorted ascending, counts aligned. It is what /sketches serves and the
// fleet collector merges.
type SketchJSON struct {
	Name  string   `json:"name,omitempty"`
	Alpha float64  `json:"alpha"`
	Count uint64   `json:"count"`
	Zeros uint64   `json:"zeros,omitempty"`
	Sum   float64  `json:"sum"`
	Max   float64  `json:"max"`
	Keys  []int    `json:"keys"`
	Vals  []uint64 `json:"vals"`
}

// Export returns the deterministic wire form.
func (s *Sketch) Export() SketchJSON {
	keys := make([]int, 0, len(s.buckets))
	for i := range s.buckets {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	vals := make([]uint64, len(keys))
	for n, i := range keys {
		vals[n] = s.buckets[i]
	}
	return SketchJSON{Alpha: s.alpha, Count: s.count, Zeros: s.zeros,
		Sum: s.sum, Max: s.max, Keys: keys, Vals: vals}
}

// Import reconstructs a Sketch from its wire form.
func Import(j SketchJSON) (*Sketch, error) {
	if len(j.Keys) != len(j.Vals) {
		return nil, fmt.Errorf("stats: %d keys vs %d vals", len(j.Keys), len(j.Vals))
	}
	s := NewSketch(j.Alpha)
	s.count, s.zeros, s.sum, s.max = j.Count, j.Zeros, j.Sum, j.Max
	for n, i := range j.Keys {
		if j.Vals[n] > 0 {
			s.buckets[i] = j.Vals[n]
		}
	}
	return s, nil
}
