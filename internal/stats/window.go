package stats

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// DefaultWindowMicros is the default sliding-window span: five minutes,
// split into DefaultSlices rotating sub-sketches.
const (
	DefaultWindowMicros = int64(5 * 60 * 1_000_000)
	DefaultSlices       = 5
)

// Windowed is a sliding-window quantile sketch: a ring of sub-sketches,
// each covering window/slices of time, rotated by the caller's clock
// (virtual micros under simulation, wall micros live). Queries and
// exports merge the ring, so estimates cover at most `window` and at
// least `window·(slices-1)/slices` of recent history. Safe for
// concurrent use.
type Windowed struct {
	mu     sync.Mutex
	alpha  float64
	slice  int64 // micros per sub-sketch
	ring   []*Sketch
	epoch  int64 // slice index of ring[head]
	head   int
	primed bool
}

// NewWindowed creates a sliding-window sketch. windowMicros <= 0 uses
// DefaultWindowMicros; slices <= 0 uses DefaultSlices; alpha <= 0 uses
// DefaultAlpha.
func NewWindowed(alpha float64, windowMicros int64, slices int) *Windowed {
	if windowMicros <= 0 {
		windowMicros = DefaultWindowMicros
	}
	if slices <= 0 {
		slices = DefaultSlices
	}
	ring := make([]*Sketch, slices)
	for i := range ring {
		ring[i] = NewSketch(alpha)
	}
	return &Windowed{alpha: ring[0].alpha, slice: windowMicros / int64(slices), ring: ring}
}

// rotateLocked advances the ring so ring[head] covers nowMicros.
// Caller holds w.mu.
func (w *Windowed) rotateLocked(nowMicros int64) {
	e := nowMicros / w.slice
	if !w.primed {
		w.epoch, w.primed = e, true
		return
	}
	for ; w.epoch < e; w.epoch++ {
		w.head = (w.head + 1) % len(w.ring)
		w.ring[w.head].Reset()
	}
}

// Observe records one sample stamped with the caller's clock.
func (w *Windowed) Observe(nowMicros int64, v float64) {
	w.mu.Lock()
	w.rotateLocked(nowMicros)
	w.ring[w.head].Observe(v)
	w.mu.Unlock()
}

// Merged returns the merge of the live ring as an independent Sketch.
func (w *Windowed) Merged(nowMicros int64) *Sketch {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotateLocked(nowMicros)
	out := NewSketch(w.alpha)
	for _, s := range w.ring {
		out.Merge(s) //nolint:errcheck // same alpha by construction
	}
	return out
}

// Quantile queries the merged window.
func (w *Windowed) Quantile(nowMicros int64, q float64) float64 {
	return w.Merged(nowMicros).Quantile(q)
}

// Set is a named registry of windowed sketches — the per-process half
// of the fleet percentile plane. The zero value is not usable; call
// NewSet. A nil *Set ignores all operations, mirroring the nil-Tracer
// convention, so call sites stay allocation-free when stats are off.
type Set struct {
	mu       sync.Mutex
	alpha    float64
	window   int64
	slices   int
	sketches map[string]*Windowed // guarded by mu (pointers; Windowed locks itself)
}

// Sketch names fed by the middleware. Values are seconds except
// occupancy (a 0..1 fraction of queue capacity) and batch frames (a
// per-flush message count).
const (
	SketchAllocLatency = "alloc_latency_seconds"
	SketchDeliveryRTT  = "delivery_rtt_seconds"
	SketchFailover     = "failover_seconds"
	SketchQueueOcc     = "supervisor_queue_occupancy"
	SketchBatchFrames  = "live_batch_frames"
	SketchDHTLookup    = "dht_lookup_seconds"
)

// NewSet creates an empty set; zero arguments select the defaults.
func NewSet(alpha float64, windowMicros int64, slices int) *Set {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	return &Set{alpha: alpha, window: windowMicros, slices: slices,
		sketches: make(map[string]*Windowed)}
}

// get returns the named windowed sketch, creating it on first use.
func (s *Set) get(name string) *Windowed {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.sketches[name]
	if !ok {
		w = NewWindowed(s.alpha, s.window, s.slices)
		s.sketches[name] = w
	}
	return w
}

// Observe records one sample into the named sketch.
func (s *Set) Observe(name string, nowMicros int64, v float64) {
	if s == nil {
		return
	}
	s.get(name).Observe(nowMicros, v)
}

// Quantile queries the named sketch's merged window (0 if absent).
func (s *Set) Quantile(name string, nowMicros int64, q float64) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	w := s.sketches[name]
	s.mu.Unlock()
	if w == nil {
		return 0
	}
	return w.Quantile(nowMicros, q)
}

// Export returns every named sketch's merged window in name order —
// the deterministic payload of the /sketches endpoint.
func (s *Set) Export(nowMicros int64) []SketchJSON {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.sketches))
	for n := range s.sketches {
		names = append(names, n)
	}
	ws := make(map[string]*Windowed, len(names))
	for _, n := range names {
		ws[n] = s.sketches[n]
	}
	s.mu.Unlock()
	sort.Strings(names)
	out := make([]SketchJSON, 0, len(names))
	for _, n := range names {
		j := ws[n].Merged(nowMicros).Export()
		j.Name = n
		out = append(out, j)
	}
	return out
}

// WriteJSON writes the Export as one indented JSON document.
func (s *Set) WriteJSON(w io.Writer, nowMicros int64) error {
	if s == nil {
		_, err := w.Write([]byte("{\"sketches\":[]}\n"))
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Sketches []SketchJSON `json:"sketches"`
	}{s.Export(nowMicros)})
}

// MergeExports folds per-node sketch exports into fleet-wide sketches
// keyed by name, returning them in name order. Merge error (mismatched
// alpha) drops the offending export rather than poisoning the fleet
// view; the caller sees the drop in the returned skipped count.
func MergeExports(exports [][]SketchJSON) (merged []SketchJSON, skipped int) {
	byName := make(map[string]*Sketch)
	for _, node := range exports {
		for _, j := range node {
			s, err := Import(j)
			if err != nil {
				skipped++
				continue
			}
			if cur, ok := byName[j.Name]; ok {
				if err := cur.Merge(s); err != nil {
					skipped++
				}
			} else {
				byName[j.Name] = s
			}
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		j := byName[n].Export()
		j.Name = n
		merged = append(merged, j)
	}
	return merged, skipped
}
