package fairness

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIndexUniform(t *testing.T) {
	if got := Index([]float64{5, 5, 5, 5}); !almost(got, 1) {
		t.Fatalf("uniform index = %v, want 1", got)
	}
}

func TestIndexSinglePeerCarriesAll(t *testing.T) {
	// One of n peers loaded: index = 1/n ("fair to only 1/n of users").
	if got := Index([]float64{10, 0, 0, 0}); !almost(got, 0.25) {
		t.Fatalf("index = %v, want 0.25", got)
	}
}

func TestIndexPaperInterpretation(t *testing.T) {
	// §4.2: "A value of 0.1 indicates the system to be fair to only 10% of
	// the users": 1 of 10 peers loaded gives exactly 0.1.
	loads := make([]float64, 10)
	loads[0] = 7
	if got := Index(loads); !almost(got, 0.1) {
		t.Fatalf("index = %v, want 0.1", got)
	}
}

func TestIndexEdgeCases(t *testing.T) {
	if got := Index(nil); got != 1 {
		t.Fatalf("empty index = %v", got)
	}
	if got := Index([]float64{0, 0, 0}); got != 1 {
		t.Fatalf("all-zero index = %v", got)
	}
	if got := Index([]float64{3}); !almost(got, 1) {
		t.Fatalf("singleton index = %v", got)
	}
}

func TestIndexKnownValue(t *testing.T) {
	// (1+2+3)²/(3·(1+4+9)) = 36/42.
	if got := Index([]float64{1, 2, 3}); !almost(got, 36.0/42.0) {
		t.Fatalf("index = %v, want %v", got, 36.0/42.0)
	}
}

// Property (§4.2): the index lies in (0, 1] and is scale-independent.
func TestPropertyRangeAndScale(t *testing.T) {
	r := rng.New(7)
	check := func(n uint8, scaleRaw uint16) bool {
		size := int(n%32) + 1
		loads := make([]float64, size)
		for i := range loads {
			loads[i] = r.Uniform(0, 100)
		}
		idx := Index(loads)
		if idx <= 0 || idx > 1+1e-12 {
			return false
		}
		scale := 0.001 + float64(scaleRaw)/100
		scaled := make([]float64, size)
		for i, l := range loads {
			scaled[i] = l * scale
		}
		return almost(idx, Index(scaled))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the index is at least 1/n (Jain's lower bound for nonzero
// distributions).
func TestPropertyLowerBound(t *testing.T) {
	r := rng.New(11)
	check := func(n uint8) bool {
		size := int(n%32) + 1
		loads := make([]float64, size)
		for i := range loads {
			loads[i] = r.Uniform(0, 10)
		}
		return Index(loads) >= 1/float64(size)-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: moving load from a loaded peer to an idle one (equalizing)
// never decreases the index.
func TestPropertyEqualizingTransferImproves(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 200; trial++ {
		size := 2 + r.Intn(20)
		loads := make([]float64, size)
		for i := range loads {
			loads[i] = r.Uniform(0, 100)
		}
		// Find max and min.
		hi, lo := 0, 0
		for i, l := range loads {
			if l > loads[hi] {
				hi = i
			}
			if l < loads[lo] {
				lo = i
			}
		}
		if almost(loads[hi], loads[lo]) {
			continue
		}
		before := Index(loads)
		transfer := (loads[hi] - loads[lo]) * r.Uniform(0, 0.5)
		loads[hi] -= transfer
		loads[lo] += transfer
		after := Index(loads)
		if after < before-1e-9 {
			t.Fatalf("equalizing transfer lowered index: %v -> %v", before, after)
		}
	}
}

func TestBestLoadUniformOthers(t *testing.T) {
	loads := []float64{3, 3, 3, 99}
	if got := BestLoad(loads, 3); !almost(got, 3) {
		t.Fatalf("BestLoad = %v, want 3", got)
	}
}

func TestBestLoadIsArgmax(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 100; trial++ {
		size := 2 + r.Intn(10)
		loads := make([]float64, size)
		for i := range loads {
			loads[i] = r.Uniform(0.1, 50)
		}
		i := r.Intn(size)
		best := BestLoad(loads, i)
		eval := func(x float64) float64 {
			cp := append([]float64(nil), loads...)
			cp[i] = x
			return Index(cp)
		}
		fBest := eval(best)
		// Probe around best: nothing should beat it.
		for _, x := range []float64{best * 0.5, best * 0.9, best * 1.1, best * 2, best + 1, math.Max(0, best-1)} {
			if eval(x) > fBest+1e-9 {
				t.Fatalf("trial %d: eval(%v)=%v beats eval(best=%v)=%v, loads=%v i=%d",
					trial, x, eval(x), best, fBest, loads, i)
			}
		}
	}
}

func TestBestLoadAllOthersIdle(t *testing.T) {
	if got := BestLoad([]float64{0, 0, 5}, 2); got != 0 {
		t.Fatalf("BestLoad with idle others = %v, want 0", got)
	}
}

func TestBestLoadSingleton(t *testing.T) {
	if got := BestLoad([]float64{7}, 0); got != 7 {
		t.Fatalf("BestLoad singleton = %v", got)
	}
}

// §4.2: "there is no fair load distribution where some peers are
// overloaded or underloaded compared to the rest" — divergence from
// l_best lowers the index monotonically on each side.
func TestDivergenceFromBestMonotone(t *testing.T) {
	loads := []float64{4, 4, 4, 4}
	eval := func(x float64) float64 {
		cp := append([]float64(nil), loads...)
		cp[0] = x
		return Index(cp)
	}
	best := BestLoad(loads, 0)
	prev := eval(best)
	for x := best; x <= best+20; x += 0.5 {
		cur := eval(x)
		if cur > prev+1e-12 {
			t.Fatalf("index rose while diverging above l_best at x=%v", x)
		}
		prev = cur
	}
	prev = eval(best)
	for x := best; x >= 0; x -= 0.5 {
		cur := eval(x)
		if cur > prev+1e-12 {
			t.Fatalf("index rose while diverging below l_best at x=%v", x)
		}
		prev = cur
	}
}

func TestIncrementalMatchesDirect(t *testing.T) {
	r := rng.New(19)
	for trial := 0; trial < 200; trial++ {
		size := 1 + r.Intn(16)
		loads := make([]float64, size)
		for i := range loads {
			loads[i] = r.Uniform(0, 20)
		}
		inc := NewIncremental(loads)
		if !almost(inc.Index(), Index(loads)) {
			t.Fatalf("base index mismatch")
		}
		// Random candidate path with possible duplicate peers.
		pathLen := 1 + r.Intn(5)
		peers := make([]int, pathLen)
		deltas := make([]float64, pathLen)
		for i := range peers {
			peers[i] = r.Intn(size)
			deltas[i] = r.Uniform(0, 5)
		}
		got := inc.WithDeltas(peers, deltas)
		want := func() float64 {
			cp := append([]float64(nil), loads...)
			for i, p := range peers {
				cp[p] += deltas[i]
			}
			return Index(cp)
		}()
		if !almost(got, want) {
			t.Fatalf("WithDeltas = %v, want %v (peers=%v deltas=%v loads=%v)",
				got, want, peers, deltas, loads)
		}
		// WithDeltas must not mutate.
		if !almost(inc.Index(), Index(loads)) {
			t.Fatal("WithDeltas mutated captured state")
		}
	}
}

func TestIncrementalApply(t *testing.T) {
	loads := []float64{1, 2, 3}
	inc := NewIncremental(loads)
	inc.Apply(0, 4)
	if !almost(inc.Index(), Index([]float64{5, 2, 3})) {
		t.Fatalf("Apply index = %v", inc.Index())
	}
	if !almost(inc.Base(0), 5) {
		t.Fatalf("Base(0) = %v", inc.Base(0))
	}
	if inc.N() != 3 {
		t.Fatalf("N = %d", inc.N())
	}
	// Original slice must be untouched.
	if loads[0] != 1 {
		t.Fatal("NewIncremental aliased input")
	}
}

func TestIncrementalPanics(t *testing.T) {
	inc := NewIncremental([]float64{1, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		inc.WithDeltas([]int{0}, []float64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range peer did not panic")
			}
		}()
		inc.WithDeltas([]int{5}, []float64{1})
	}()
}

func TestIncrementalEmptyDistribution(t *testing.T) {
	inc := NewIncremental(nil)
	if inc.Index() != 1 {
		t.Fatalf("empty incremental index = %v", inc.Index())
	}
	if got := inc.WithDeltas(nil, nil); got != 1 {
		t.Fatalf("empty WithDeltas = %v", got)
	}
}

func TestIncrementalLongPath(t *testing.T) {
	// Paths longer than the inline scratch array (8) must still work.
	loads := make([]float64, 20)
	for i := range loads {
		loads[i] = float64(i)
	}
	inc := NewIncremental(loads)
	peers := make([]int, 12)
	deltas := make([]float64, 12)
	for i := range peers {
		peers[i] = i
		deltas[i] = 1
	}
	got := inc.WithDeltas(peers, deltas)
	cp := append([]float64(nil), loads...)
	for i := range peers {
		cp[i]++
	}
	if !almost(got, Index(cp)) {
		t.Fatalf("long path WithDeltas = %v, want %v", got, Index(cp))
	}
}

func BenchmarkIndex(b *testing.B) {
	loads := make([]float64, 256)
	r := rng.New(1)
	for i := range loads {
		loads[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Index(loads)
	}
}

func BenchmarkIncrementalWithDeltas(b *testing.B) {
	loads := make([]float64, 256)
	r := rng.New(1)
	for i := range loads {
		loads[i] = r.Float64()
	}
	inc := NewIncremental(loads)
	peers := []int{3, 17, 42}
	deltas := []float64{0.1, 0.2, 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inc.WithDeltas(peers, deltas)
	}
}
