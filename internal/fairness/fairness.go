// Package fairness implements Jain's Fairness Index (Jain, Chiu, Hawe
// 1984), the metric the paper's Resource Managers use to compare candidate
// load distributions (§4.2, Eq. 1):
//
//	F(l) = (Σ l_p)² / (|P| · Σ l_p²)
//
// The index is 1 for a perfectly uniform distribution, 1/|P| when a single
// peer carries all load, and is independent of the scale of the loads.
// The package also provides an incremental form so the allocation
// algorithm can evaluate "fairness if this path were assigned" for many
// candidate paths without rescanning every peer load.
package fairness

// Index returns Jain's Fairness Index of loads. By convention an empty
// distribution has index 1 (nothing to be unfair about), and an all-zero
// distribution also has index 1 (perfectly uniform).
func Index(loads []float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, l := range loads {
		sum += l
		sumSq += l * l
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(loads)) * sumSq)
}

// Incremental evaluates the fairness index under hypothetical load deltas
// without mutating the underlying distribution. Construct it once per
// allocation decision, then call WithDeltas for each candidate path.
type Incremental struct {
	n     int
	sum   float64
	sumSq float64
	base  []float64
}

// NewIncremental captures the current load distribution.
func NewIncremental(loads []float64) *Incremental {
	inc := &Incremental{n: len(loads), base: append([]float64(nil), loads...)}
	for _, l := range loads {
		inc.sum += l
		inc.sumSq += l * l
	}
	return inc
}

// Reset re-captures loads, reusing the receiver's storage. A zero
// Incremental is valid to Reset. The sums are accumulated in the same
// order as NewIncremental, so a Reset accumulator is bit-identical to a
// fresh one — allocators pool and reuse it across admission decisions
// without perturbing results.
func (inc *Incremental) Reset(loads []float64) {
	inc.n = len(loads)
	inc.base = append(inc.base[:0], loads...)
	inc.sum, inc.sumSq = 0, 0
	for _, l := range loads {
		inc.sum += l
		inc.sumSq += l * l
	}
}

// N returns the number of peers in the captured distribution.
func (inc *Incremental) N() int { return inc.n }

// Base returns the captured load of peer i.
func (inc *Incremental) Base(i int) float64 { return inc.base[i] }

// Index returns the fairness of the captured distribution unchanged.
func (inc *Incremental) Index() float64 {
	if inc.n == 0 || inc.sumSq == 0 {
		return 1
	}
	return inc.sum * inc.sum / (float64(inc.n) * inc.sumSq)
}

// WithDeltas returns the fairness index of the captured distribution with
// delta[i] added to each listed peer. peers and deltas are parallel
// slices; a peer may appear more than once (its deltas accumulate). The
// captured distribution is not modified.
//
// Each duplicate occurrence must subtract the previously accumulated
// value's square and add the new one, so the computation walks the listed
// peers with a small scratch map; candidate paths are short (a handful of
// services), so this stays O(len(peers)).
func (inc *Incremental) WithDeltas(peers []int, deltas []float64) float64 {
	if len(peers) != len(deltas) {
		panic("fairness: peers/deltas length mismatch")
	}
	if inc.n == 0 {
		return 1
	}
	sum, sumSq := inc.sum, inc.sumSq
	// Accumulate per-peer deltas; paths are short so a tiny assoc list
	// beats a map allocation.
	type acc struct {
		peer  int
		delta float64
	}
	var accs [8]acc
	list := accs[:0]
	for i, p := range peers {
		if p < 0 || p >= inc.n {
			panic("fairness: peer index out of range")
		}
		found := false
		for j := range list {
			if list[j].peer == p {
				list[j].delta += deltas[i]
				found = true
				break
			}
		}
		if !found {
			list = append(list, acc{p, deltas[i]})
		}
	}
	for _, a := range list {
		old := inc.base[a.peer]
		nw := old + a.delta
		sum += a.delta
		sumSq += nw*nw - old*old
	}
	if sumSq <= 0 {
		return 1
	}
	return sum * sum / (float64(inc.n) * sumSq)
}

// Apply permanently adds delta to peer i's captured load.
func (inc *Incremental) Apply(i int, delta float64) {
	old := inc.base[i]
	nw := old + delta
	inc.base[i] = nw
	inc.sum += delta
	inc.sumSq += nw*nw - old*old
}

// BestLoad returns l_best for peer i: the load value for peer i that
// maximizes the index with all other loads fixed (§4.2 discusses that the
// index peaks as a peer's load approaches a specific value and falls as it
// diverges). Setting dF/dx = 0 for F(x) = (S'+x)²/(n·(Q'+x²)), with S' and
// Q' the sum and sum-of-squares of the other loads, gives x = Q'/S'. When
// all other loads are equal this reduces to their common value. If the
// other peers are all idle (S' = 0) any x > 0 makes the distribution
// maximally unfair, so l_best is 0.
func BestLoad(loads []float64, i int) float64 {
	if len(loads) <= 1 {
		return loads[0]
	}
	var sum, sumSq float64
	for j, l := range loads {
		if j != i {
			sum += l
			sumSq += l * l
		}
	}
	if sum == 0 {
		return 0
	}
	return sumSq / sum
}
