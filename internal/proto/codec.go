package proto

// Wire codec v2: a compact, hand-rolled binary encoding for the core
// message set. The live transport's v1 format pays gob per frame — a
// self-contained stream whose type descriptors are resent with every
// message — which dominates the TCP hot path. v2 spends one tag byte
// per message kind, varints for integers (the same idiom as
// internal/replay's P2PRLOG2 framing), fixed 8-byte IEEE bits for
// floats, and inlines TraceContext as two varint u64s (a zero context
// costs two bytes). Encoding appends into a caller-owned buffer and
// decoding reads out of a caller-owned slice, so the steady-state hot
// path allocates nothing beyond the decoded message itself.
//
// Layout per message: [u8 kind][fields in struct order]. Strings and
// byte blobs are length-prefixed (uvarint); slices and maps are
// count-prefixed. Map entries are emitted in sorted key order so equal
// messages encode to equal bytes (gob does not guarantee this — it is
// why replay compares sends structurally). Empty slices and maps decode
// to nil, matching gob's treatment of zero-value fields.
//
// The set of kind tags is append-only: tags are wire format, never
// renumber them. Types outside the core set (tests, future extensions)
// are carried by the live transport's gob-fallback frame instead.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// Message kind tags. Wire format — append, never renumber.
const (
	kindJoin             = 0x01
	kindJoinRedirect     = 0x02
	kindJoinAccept       = 0x03
	kindBecomeRM         = 0x04
	kindLeave            = 0x05
	kindHeartbeatReq     = 0x06
	kindHeartbeatAck     = 0x07
	kindProfileUpdate    = 0x08
	kindBackupSync       = 0x09
	kindTakeoverAnnounce = 0x0a
	kindTaskSubmit       = 0x0b
	kindTaskReject       = 0x0c
	kindGraphCompose     = 0x0d
	kindComposeAck       = 0x0e
	kindSessionStart     = 0x0f
	kindChunk            = 0x10
	kindSessionAbort     = 0x11
	kindSessionEnd       = 0x12
	kindGossipDigest     = 0x13
	kindGossipSummaries  = 0x14
	kindFindNode         = 0x15
	kindFindValue        = 0x16
	kindStore            = 0x17
	kindNodes            = 0x18
	kindProviders        = 0x19
)

// AppendMessage appends the v2 encoding of m to b and reports whether
// m's concrete type is in the core set. ok=false leaves b unchanged;
// the caller falls back to gob (the transport's gob-fallback frame, the
// recorder's shared gob stream).
func AppendMessage(b []byte, m env.Message) ([]byte, bool) {
	switch v := m.(type) {
	case Join:
		b = append(b, kindJoin)
		b = appendPeerInfo(b, v.Info)
		b = appendNum(b, v.Hops)
	case JoinRedirect:
		b = append(b, kindJoinRedirect)
		b = appendNum(b, int(v.Target))
		b = appendStr(b, v.Reason)
	case JoinAccept:
		b = append(b, kindJoinAccept)
		b = appendNum(b, int(v.Domain))
		b = appendNum(b, int(v.RM))
		b = appendNum(b, int(v.Backup))
		b = appendNodeIDs(b, v.Peers)
	case BecomeRM:
		b = append(b, kindBecomeRM)
		b = appendNum(b, int(v.NewDomain))
		b = appendRMRefs(b, v.KnownRMs)
	case Leave:
		b = append(b, kindLeave)
	case HeartbeatReq:
		b = append(b, kindHeartbeatReq)
		b = binary.AppendUvarint(b, v.Seq)
		b = appendNum(b, int(v.Backup))
	case HeartbeatAck:
		b = append(b, kindHeartbeatAck)
		b = binary.AppendUvarint(b, v.Seq)
	case ProfileUpdate:
		b = append(b, kindProfileUpdate)
		b = appendReport(b, v.Report)
	case BackupSync:
		b = append(b, kindBackupSync)
		b = appendDomainState(b, v.State)
	case TakeoverAnnounce:
		b = append(b, kindTakeoverAnnounce)
		b = appendNum(b, int(v.Domain))
		b = appendNum(b, int(v.NewRM))
		b = appendNum(b, int(v.Backup))
	case TaskSubmit:
		b = append(b, kindTaskSubmit)
		b = appendTaskSpec(b, v.Spec)
		b = appendNum(b, v.Hops)
		b = appendTC(b, v.TC)
	case TaskReject:
		b = append(b, kindTaskReject)
		b = appendStr(b, v.TaskID)
		b = appendStr(b, v.Reason)
		b = appendTC(b, v.TC)
	case GraphCompose:
		b = append(b, kindGraphCompose)
		b = appendSessionDesc(b, v.Session)
		b = appendNum(b, v.Role)
	case ComposeAck:
		b = append(b, kindComposeAck)
		b = appendStr(b, v.TaskID)
		b = appendNum(b, v.Role)
		b = appendNum(b, v.Generation)
		b = appendFlag(b, v.OK)
		b = appendStr(b, v.Reason)
	case SessionStart:
		b = append(b, kindSessionStart)
		b = appendStr(b, v.TaskID)
		b = appendNum(b, v.Generation)
		b = appendTC(b, v.TC)
	case Chunk:
		b = append(b, kindChunk)
		b = appendStr(b, v.TaskID)
		b = appendNum(b, v.Generation)
		b = appendNum(b, v.Index)
		b = appendNum(b, v.NextStage)
		b = appendF64(b, v.SizeKBv)
		b = binary.AppendVarint(b, int64(v.Deadline))
		b = binary.AppendVarint(b, int64(v.Emitted))
	case SessionAbort:
		b = append(b, kindSessionAbort)
		b = appendStr(b, v.TaskID)
		b = appendNum(b, v.Generation)
		b = appendStr(b, v.Reason)
		b = appendFlag(b, v.Final)
		b = appendTC(b, v.TC)
	case SessionEnd:
		b = append(b, kindSessionEnd)
		b = appendSessionReport(b, v.Report)
		b = appendTC(b, v.TC)
	case GossipDigest:
		b = append(b, kindGossipDigest)
		b = appendRMRef(b, v.From)
		b = appendVersions(b, v.Versions)
	case GossipSummaries:
		b = append(b, kindGossipSummaries)
		b = appendRMRef(b, v.From)
		b = binary.AppendUvarint(b, uint64(len(v.Summaries)))
		for _, s := range v.Summaries {
			b = appendDomainSummary(b, s)
		}
		b = binary.AppendUvarint(b, uint64(len(v.Want)))
		for _, d := range v.Want {
			b = appendNum(b, int(d))
		}
	case FindNode:
		b = append(b, kindFindNode)
		b = binary.AppendUvarint(b, v.RPC)
		b = append(b, v.Target[:]...)
		b = appendTC(b, v.TC)
	case FindValue:
		b = append(b, kindFindValue)
		b = binary.AppendUvarint(b, v.RPC)
		b = append(b, v.Key[:]...)
		b = appendTC(b, v.TC)
	case Store:
		b = append(b, kindStore)
		b = append(b, v.Key[:]...)
		b = appendProvider(b, v.Provider)
	case Nodes:
		b = append(b, kindNodes)
		b = binary.AppendUvarint(b, v.RPC)
		b = appendNodeIDs(b, v.IDs)
	case Providers:
		b = append(b, kindProviders)
		b = binary.AppendUvarint(b, v.RPC)
		b = binary.AppendUvarint(b, uint64(len(v.Values)))
		for _, p := range v.Values {
			b = appendProvider(b, p)
		}
		b = appendNodeIDs(b, v.IDs)
	default:
		return b, false
	}
	return b, true
}

// DecodeMessage decodes exactly one message produced by AppendMessage.
// Trailing bytes, truncation, unknown kinds and hostile length
// declarations all return an error; the function never panics on
// arbitrary input.
func DecodeMessage(b []byte) (env.Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("proto: codec: empty message")
	}
	d := &wireDecoder{b: b[1:]}
	var m env.Message
	switch b[0] {
	case kindJoin:
		m = Join{Info: d.peerInfo(), Hops: d.num("hops")}
	case kindJoinRedirect:
		m = JoinRedirect{Target: env.NodeID(d.num("target")), Reason: d.str("reason")}
	case kindJoinAccept:
		m = JoinAccept{
			Domain: DomainID(d.num("domain")),
			RM:     env.NodeID(d.num("rm")),
			Backup: env.NodeID(d.num("backup")),
			Peers:  d.nodeIDs(),
		}
	case kindBecomeRM:
		m = BecomeRM{NewDomain: DomainID(d.num("domain")), KnownRMs: d.rmRefs()}
	case kindLeave:
		m = Leave{}
	case kindHeartbeatReq:
		m = HeartbeatReq{Seq: d.uvarint("seq"), Backup: env.NodeID(d.num("backup"))}
	case kindHeartbeatAck:
		m = HeartbeatAck{Seq: d.uvarint("seq")}
	case kindProfileUpdate:
		m = ProfileUpdate{Report: d.report()}
	case kindBackupSync:
		m = BackupSync{State: d.domainState()}
	case kindTakeoverAnnounce:
		m = TakeoverAnnounce{
			Domain: DomainID(d.num("domain")),
			NewRM:  env.NodeID(d.num("rm")),
			Backup: env.NodeID(d.num("backup")),
		}
	case kindTaskSubmit:
		m = TaskSubmit{Spec: d.taskSpec(), Hops: d.num("hops"), TC: d.tc()}
	case kindTaskReject:
		m = TaskReject{TaskID: d.str("task"), Reason: d.str("reason"), TC: d.tc()}
	case kindGraphCompose:
		m = GraphCompose{Session: d.sessionDesc(), Role: d.num("role")}
	case kindComposeAck:
		m = ComposeAck{
			TaskID:     d.str("task"),
			Role:       d.num("role"),
			Generation: d.num("generation"),
			OK:         d.flag("ok"),
			Reason:     d.str("reason"),
		}
	case kindSessionStart:
		m = SessionStart{TaskID: d.str("task"), Generation: d.num("generation"), TC: d.tc()}
	case kindChunk:
		m = Chunk{
			TaskID:     d.str("task"),
			Generation: d.num("generation"),
			Index:      d.num("index"),
			NextStage:  d.num("next stage"),
			SizeKBv:    d.f64("size"),
			Deadline:   sim.Time(d.varint("deadline")),
			Emitted:    sim.Time(d.varint("emitted")),
		}
	case kindSessionAbort:
		m = SessionAbort{
			TaskID:     d.str("task"),
			Generation: d.num("generation"),
			Reason:     d.str("reason"),
			Final:      d.flag("final"),
			TC:         d.tc(),
		}
	case kindSessionEnd:
		m = SessionEnd{Report: d.sessionReport(), TC: d.tc()}
	case kindGossipDigest:
		m = GossipDigest{From: d.rmRef(), Versions: d.versions()}
	case kindGossipSummaries:
		g := GossipSummaries{From: d.rmRef()}
		if n := d.count("summaries"); n > 0 {
			g.Summaries = make([]DomainSummary, n)
			for i := range g.Summaries {
				g.Summaries[i] = d.domainSummary()
			}
		}
		if n := d.count("want"); n > 0 {
			g.Want = make([]DomainID, n)
			for i := range g.Want {
				g.Want[i] = DomainID(d.num("want domain"))
			}
		}
		m = g
	case kindFindNode:
		m = FindNode{RPC: d.uvarint("rpc"), Target: d.dhtKey(), TC: d.tc()}
	case kindFindValue:
		m = FindValue{RPC: d.uvarint("rpc"), Key: d.dhtKey(), TC: d.tc()}
	case kindStore:
		m = Store{Key: d.dhtKey(), Provider: d.provider()}
	case kindNodes:
		m = Nodes{RPC: d.uvarint("rpc"), IDs: d.nodeIDs()}
	case kindProviders:
		p := Providers{RPC: d.uvarint("rpc")}
		if n := d.count("providers"); n > 0 {
			p.Values = make([]DHTProvider, n)
			for i := range p.Values {
				p.Values[i] = d.provider()
			}
		}
		p.IDs = d.nodeIDs()
		m = p
	default:
		return nil, fmt.Errorf("proto: codec: unknown message kind %#x", b[0])
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("proto: codec: %d trailing bytes after message kind %#x", len(d.b), b[0])
	}
	return m, nil
}

// --- encode helpers (append style, zero-alloc when b has capacity) ---

func appendNum(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendFlag(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBlob(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendNodeIDs(b []byte, ids []env.NodeID) []byte {
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = appendNum(b, int(id))
	}
	return b
}

func appendTC(b []byte, tc TraceContext) []byte {
	b = binary.AppendUvarint(b, tc.Trace)
	return binary.AppendUvarint(b, tc.Parent)
}

func appendFormat(b []byte, f media.Format) []byte {
	b = appendStr(b, string(f.Codec))
	b = appendNum(b, f.Width)
	b = appendNum(b, f.Height)
	return appendNum(b, f.BitrateKbps)
}

func appendConstraint(b []byte, c media.Constraint) []byte {
	b = binary.AppendUvarint(b, uint64(len(c.Codecs)))
	for _, cc := range c.Codecs {
		b = appendStr(b, string(cc))
	}
	b = appendNum(b, c.MaxWidth)
	b = appendNum(b, c.MaxHeight)
	b = appendNum(b, c.MinBitrateKbps)
	return appendNum(b, c.MaxBitrateKbps)
}

func appendPeerInfo(b []byte, p PeerInfo) []byte {
	b = appendNum(b, int(p.ID))
	b = appendF64(b, p.SpeedWU)
	b = appendF64(b, p.BandwidthKbps)
	b = appendF64(b, p.UptimeSec)
	b = binary.AppendUvarint(b, uint64(len(p.Objects)))
	for _, o := range p.Objects {
		b = appendStr(b, o.Name)
		b = appendFormat(b, o.Format)
		b = binary.AppendUvarint(b, o.Hash)
		b = binary.AppendVarint(b, o.Bytes)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Services)))
	for _, s := range p.Services {
		b = appendFormat(b, s.From)
		b = appendFormat(b, s.To)
	}
	return b
}

func appendRMRef(b []byte, r RMRef) []byte {
	b = appendNum(b, int(r.Domain))
	return appendNum(b, int(r.RM))
}

func appendRMRefs(b []byte, rs []RMRef) []byte {
	b = binary.AppendUvarint(b, uint64(len(rs)))
	for _, r := range rs {
		b = appendRMRef(b, r)
	}
	return b
}

func appendTaskSpec(b []byte, s TaskSpec) []byte {
	b = appendStr(b, s.ID)
	b = appendNum(b, int(s.Origin))
	b = appendStr(b, s.ObjectName)
	b = appendConstraint(b, s.Constraint)
	b = binary.AppendVarint(b, s.DeadlineMicros)
	b = appendNum(b, s.Importance)
	b = appendF64(b, s.DurationSec)
	return appendF64(b, s.ChunkSec)
}

func appendSessionDesc(b []byte, s SessionDesc) []byte {
	b = appendStr(b, s.TaskID)
	b = appendNum(b, int(s.RM))
	b = appendNum(b, int(s.Origin))
	b = appendNum(b, int(s.SourcePeer))
	b = binary.AppendUvarint(b, uint64(len(s.Stages)))
	for _, st := range s.Stages {
		b = appendNum(b, int(st.Peer))
		b = appendStr(b, st.Service)
		b = appendF64(b, st.Work)
		b = appendNum(b, st.InBitrateKbps)
		b = appendNum(b, st.OutBitrateKbps)
	}
	b = appendStr(b, s.ObjectName)
	b = appendNum(b, s.SourceBitrateKbps)
	b = appendF64(b, s.ChunkSec)
	b = appendNum(b, s.NumChunks)
	b = binary.AppendVarint(b, int64(s.StartupDeadline))
	b = binary.AppendVarint(b, int64(s.PlaybackBase))
	b = appendNum(b, s.StartChunk)
	b = appendNum(b, s.Importance)
	b = appendNum(b, s.Generation)
	return appendTC(b, s.TC)
}

func appendSessionReport(b []byte, r SessionReport) []byte {
	b = appendStr(b, r.TaskID)
	b = appendNum(b, r.Chunks)
	b = appendNum(b, r.Received)
	b = appendNum(b, r.Missed)
	b = binary.AppendVarint(b, r.StartupMicros)
	b = appendF64(b, r.MeanLatencyMicros)
	b = appendNum(b, r.Repaired)
	b = binary.AppendVarint(b, r.FinishedMicros)
	return appendNum(b, r.Hops)
}

func appendDomainState(b []byte, s DomainState) []byte {
	b = appendNum(b, int(s.Domain))
	b = binary.AppendUvarint(b, uint64(len(s.Peers)))
	for _, p := range s.Peers {
		b = appendPeerInfo(b, p.Info)
		b = appendF64(b, p.Load)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Sessions)))
	for _, sd := range s.Sessions {
		b = appendSessionDesc(b, sd)
	}
	b = appendRMRefs(b, s.KnownRMs)
	return binary.AppendUvarint(b, s.Version)
}

func appendDomainSummary(b []byte, s DomainSummary) []byte {
	b = appendNum(b, int(s.Domain))
	b = appendNum(b, int(s.RM))
	b = binary.AppendUvarint(b, s.Version)
	b = appendNum(b, s.NumPeers)
	b = appendF64(b, s.AvgUtil)
	b = appendBlob(b, s.ObjectBloom)
	b = appendBlob(b, s.ServiceBloom)
	b = binary.AppendUvarint(b, s.BloomM)
	return binary.AppendUvarint(b, uint64(s.BloomK))
}

func appendProvider(b []byte, p DHTProvider) []byte {
	b = appendNum(b, int(p.Domain))
	b = appendNum(b, int(p.RM))
	b = appendNum(b, p.NumPeers)
	return appendF64(b, p.AvgUtil)
}

// appendReport encodes a profiler snapshot. Both maps are emitted in
// sorted key order so equal reports encode to equal bytes.
func appendReport(b []byte, r profiler.Report) []byte {
	b = appendNum(b, r.Peer)
	b = binary.AppendVarint(b, int64(r.At))
	b = appendF64(b, r.Load)
	b = appendF64(b, r.Utilization)
	b = appendF64(b, r.BandwidthKbps)
	b = binary.AppendUvarint(b, uint64(len(r.ServiceTimes)))
	if len(r.ServiceTimes) > 0 {
		keys := make([]string, 0, len(r.ServiceTimes))
		for k := range r.ServiceTimes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendStr(b, k)
			b = appendF64(b, r.ServiceTimes[k])
		}
	}
	b = binary.AppendUvarint(b, uint64(len(r.CommTimes)))
	if len(r.CommTimes) > 0 {
		keys := make([]int, 0, len(r.CommTimes))
		for k := range r.CommTimes {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			b = appendNum(b, k)
			b = appendF64(b, r.CommTimes[k])
		}
	}
	return b
}

func appendVersions(b []byte, vs map[DomainID]uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	if len(vs) > 0 {
		keys := make([]int, 0, len(vs))
		for k := range vs {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		for _, k := range keys {
			b = appendNum(b, k)
			b = binary.AppendUvarint(b, vs[DomainID(k)])
		}
	}
	return b
}

// --- decode side ---

// wireDecoder consumes an encoded message front to back, latching the
// first error: after a failure every accessor returns the zero value,
// so struct literals can decode field-by-field without per-field error
// plumbing.
type wireDecoder struct {
	b   []byte
	err error
}

func (d *wireDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("proto: codec: truncated or invalid %s", what)
	}
	d.b = nil
}

func (d *wireDecoder) uvarint(what string) uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *wireDecoder) varint(what string) int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *wireDecoder) num(what string) int { return int(d.varint(what)) }

func (d *wireDecoder) f64(what string) float64 {
	if len(d.b) < 8 {
		d.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *wireDecoder) flag(what string) bool {
	if len(d.b) < 1 || d.b[0] > 1 {
		d.fail(what)
		return false
	}
	v := d.b[0] == 1
	d.b = d.b[1:]
	return v
}

// count reads a length or element count and rejects any declaration
// larger than the bytes that remain — every element costs at least one
// byte, so a hostile count can never force an oversized allocation.
func (d *wireDecoder) count(what string) int {
	n := d.uvarint(what)
	if d.err == nil && n > uint64(len(d.b)) {
		d.fail(what + " count")
		return 0
	}
	return int(n)
}

func (d *wireDecoder) str(what string) string {
	n := d.count(what)
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *wireDecoder) blob(what string) []byte {
	n := d.count(what)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b)
	d.b = d.b[n:]
	return out
}

func (d *wireDecoder) nodeIDs() []env.NodeID {
	n := d.count("node ids")
	if n == 0 {
		return nil
	}
	out := make([]env.NodeID, n)
	for i := range out {
		out[i] = env.NodeID(d.num("node id"))
	}
	return out
}

func (d *wireDecoder) tc() TraceContext {
	return TraceContext{Trace: d.uvarint("trace"), Parent: d.uvarint("parent")}
}

func (d *wireDecoder) format() media.Format {
	return media.Format{
		Codec:       media.Codec(d.str("codec")),
		Width:       d.num("width"),
		Height:      d.num("height"),
		BitrateKbps: d.num("bitrate"),
	}
}

func (d *wireDecoder) constraint() media.Constraint {
	var c media.Constraint
	if n := d.count("codecs"); n > 0 {
		c.Codecs = make([]media.Codec, n)
		for i := range c.Codecs {
			c.Codecs[i] = media.Codec(d.str("codec"))
		}
	}
	c.MaxWidth = d.num("max width")
	c.MaxHeight = d.num("max height")
	c.MinBitrateKbps = d.num("min bitrate")
	c.MaxBitrateKbps = d.num("max bitrate")
	return c
}

func (d *wireDecoder) peerInfo() PeerInfo {
	p := PeerInfo{
		ID:            env.NodeID(d.num("peer id")),
		SpeedWU:       d.f64("speed"),
		BandwidthKbps: d.f64("bandwidth"),
		UptimeSec:     d.f64("uptime"),
	}
	if n := d.count("objects"); n > 0 {
		p.Objects = make([]media.Object, n)
		for i := range p.Objects {
			p.Objects[i] = media.Object{
				Name:   d.str("object name"),
				Format: d.format(),
				Hash:   d.uvarint("object hash"),
				Bytes:  d.varint("object bytes"),
			}
		}
	}
	if n := d.count("services"); n > 0 {
		p.Services = make([]media.Transcoder, n)
		for i := range p.Services {
			p.Services[i] = media.Transcoder{From: d.format(), To: d.format()}
		}
	}
	return p
}

func (d *wireDecoder) rmRef() RMRef {
	return RMRef{Domain: DomainID(d.num("domain")), RM: env.NodeID(d.num("rm"))}
}

func (d *wireDecoder) rmRefs() []RMRef {
	n := d.count("rm refs")
	if n == 0 {
		return nil
	}
	out := make([]RMRef, n)
	for i := range out {
		out[i] = d.rmRef()
	}
	return out
}

func (d *wireDecoder) taskSpec() TaskSpec {
	return TaskSpec{
		ID:             d.str("task id"),
		Origin:         env.NodeID(d.num("origin")),
		ObjectName:     d.str("object name"),
		Constraint:     d.constraint(),
		DeadlineMicros: d.varint("deadline"),
		Importance:     d.num("importance"),
		DurationSec:    d.f64("duration"),
		ChunkSec:       d.f64("chunk sec"),
	}
}

func (d *wireDecoder) sessionDesc() SessionDesc {
	s := SessionDesc{
		TaskID:     d.str("task id"),
		RM:         env.NodeID(d.num("rm")),
		Origin:     env.NodeID(d.num("origin")),
		SourcePeer: env.NodeID(d.num("source")),
	}
	if n := d.count("stages"); n > 0 {
		s.Stages = make([]StageDesc, n)
		for i := range s.Stages {
			s.Stages[i] = StageDesc{
				Peer:           env.NodeID(d.num("stage peer")),
				Service:        d.str("stage service"),
				Work:           d.f64("stage work"),
				InBitrateKbps:  d.num("stage in bitrate"),
				OutBitrateKbps: d.num("stage out bitrate"),
			}
		}
	}
	s.ObjectName = d.str("object name")
	s.SourceBitrateKbps = d.num("source bitrate")
	s.ChunkSec = d.f64("chunk sec")
	s.NumChunks = d.num("num chunks")
	s.StartupDeadline = sim.Time(d.varint("startup deadline"))
	s.PlaybackBase = sim.Time(d.varint("playback base"))
	s.StartChunk = d.num("start chunk")
	s.Importance = d.num("importance")
	s.Generation = d.num("generation")
	s.TC = d.tc()
	return s
}

func (d *wireDecoder) sessionReport() SessionReport {
	return SessionReport{
		TaskID:            d.str("task id"),
		Chunks:            d.num("chunks"),
		Received:          d.num("received"),
		Missed:            d.num("missed"),
		StartupMicros:     d.varint("startup"),
		MeanLatencyMicros: d.f64("mean latency"),
		Repaired:          d.num("repaired"),
		FinishedMicros:    d.varint("finished"),
		Hops:              d.num("hops"),
	}
}

func (d *wireDecoder) domainState() DomainState {
	s := DomainState{Domain: DomainID(d.num("domain"))}
	if n := d.count("peer snapshots"); n > 0 {
		s.Peers = make([]PeerSnapshot, n)
		for i := range s.Peers {
			s.Peers[i] = PeerSnapshot{Info: d.peerInfo(), Load: d.f64("load")}
		}
	}
	if n := d.count("sessions"); n > 0 {
		s.Sessions = make([]SessionDesc, n)
		for i := range s.Sessions {
			s.Sessions[i] = d.sessionDesc()
		}
	}
	s.KnownRMs = d.rmRefs()
	s.Version = d.uvarint("version")
	return s
}

func (d *wireDecoder) domainSummary() DomainSummary {
	return DomainSummary{
		Domain:       DomainID(d.num("domain")),
		RM:           env.NodeID(d.num("rm")),
		Version:      d.uvarint("version"),
		NumPeers:     d.num("num peers"),
		AvgUtil:      d.f64("avg util"),
		ObjectBloom:  d.blob("object bloom"),
		ServiceBloom: d.blob("service bloom"),
		BloomM:       d.uvarint("bloom m"),
		BloomK:       uint32(d.uvarint("bloom k")),
	}
}

func (d *wireDecoder) report() profiler.Report {
	r := profiler.Report{
		Peer:          d.num("peer"),
		At:            sim.Time(d.varint("at")),
		Load:          d.f64("load"),
		Utilization:   d.f64("utilization"),
		BandwidthKbps: d.f64("bandwidth"),
	}
	if n := d.count("service times"); n > 0 {
		r.ServiceTimes = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k := d.str("service key")
			r.ServiceTimes[k] = d.f64("service time")
		}
	}
	if n := d.count("comm times"); n > 0 {
		r.CommTimes = make(map[int]float64, n)
		for i := 0; i < n; i++ {
			k := d.num("comm peer")
			r.CommTimes[k] = d.f64("comm time")
		}
	}
	return r
}

// dhtKey reads the fixed 20-byte key.
func (d *wireDecoder) dhtKey() DHTKey {
	var k DHTKey
	if len(d.b) < len(k) {
		d.fail("dht key")
		return k
	}
	copy(k[:], d.b)
	d.b = d.b[len(k):]
	return k
}

func (d *wireDecoder) provider() DHTProvider {
	return DHTProvider{
		Domain:   DomainID(d.num("provider domain")),
		RM:       env.NodeID(d.num("provider rm")),
		NumPeers: d.num("provider peers"),
		AvgUtil:  d.f64("provider util"),
	}
}

func (d *wireDecoder) versions() map[DomainID]uint64 {
	n := d.count("versions")
	if n == 0 {
		return nil
	}
	out := make(map[DomainID]uint64, n)
	for i := 0; i < n; i++ {
		k := DomainID(d.num("version domain"))
		out[k] = d.uvarint("version")
	}
	return out
}
