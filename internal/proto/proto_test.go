package proto

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/media"
)

func TestQualifies(t *testing.T) {
	q := QualifyThresholds{MinSpeedWU: 4, MinBandwidthKbps: 1000, MinUptimeSec: 1800}
	cases := []struct {
		info PeerInfo
		want bool
	}{
		{PeerInfo{SpeedWU: 4, BandwidthKbps: 1000, UptimeSec: 1800}, true},
		{PeerInfo{SpeedWU: 10, BandwidthKbps: 9999, UptimeSec: 9999}, true},
		{PeerInfo{SpeedWU: 3.9, BandwidthKbps: 1000, UptimeSec: 1800}, false},
		{PeerInfo{SpeedWU: 4, BandwidthKbps: 999, UptimeSec: 1800}, false},
		{PeerInfo{SpeedWU: 4, BandwidthKbps: 1000, UptimeSec: 1799}, false},
	}
	for i, c := range cases {
		if got := c.info.Qualifies(q); got != c.want {
			t.Errorf("case %d: Qualifies = %v, want %v", i, got, c.want)
		}
	}
}

func TestScoreMonotone(t *testing.T) {
	a := PeerInfo{SpeedWU: 4, BandwidthKbps: 1000, UptimeSec: 1800}
	b := a
	b.SpeedWU = 8
	if b.Score() <= a.Score() {
		t.Fatal("more speed should raise the score")
	}
	c := a
	c.BandwidthKbps = 4000
	if c.Score() <= a.Score() {
		t.Fatal("more bandwidth should raise the score")
	}
	d := a
	d.UptimeSec = 7200
	if d.Score() <= a.Score() {
		t.Fatal("more uptime should raise the score")
	}
}

func TestSessionDescHelpers(t *testing.T) {
	d := SessionDesc{
		TaskID:     "t1",
		SourcePeer: 2,
		Origin:     7,
		Stages: []StageDesc{
			{Peer: 3}, {Peer: 4},
		},
	}
	peers := d.PipelinePeers()
	want := []env.NodeID{2, 3, 4, 7}
	if len(peers) != len(want) {
		t.Fatalf("peers = %v", peers)
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peers = %v, want %v", peers, want)
		}
	}
	for _, id := range want {
		if !d.UsesPeer(id) {
			t.Fatalf("UsesPeer(%d) = false", id)
		}
	}
	if d.UsesPeer(99) {
		t.Fatal("UsesPeer(99) = true")
	}
	if s := d.String(); !strings.Contains(s, "t1") || !strings.Contains(s, "stages=2") {
		t.Fatalf("String = %q", s)
	}
}

func TestChunkSized(t *testing.T) {
	c := Chunk{SizeKBv: 12.5}
	var sized env.Sized = c
	if sized.SizeKB() != 12.5 {
		t.Fatalf("SizeKB = %v", sized.SizeKB())
	}
}

// TestGobRoundTrip pushes one of every message through gob — what the
// live TCP transport does — and checks a payload survives.
func TestGobRoundTrip(t *testing.T) {
	RegisterMessages()
	f := media.Format{Codec: media.MPEG2, Width: 800, Height: 600, BitrateKbps: 512}
	msgs := []any{
		Join{Info: PeerInfo{SpeedWU: 5, Objects: []media.Object{{Name: "m", Format: f}}}, Hops: 1},
		JoinRedirect{Target: 3, Reason: "full"},
		JoinAccept{Domain: 2, RM: 1, Backup: 4, Peers: []env.NodeID{5, 6}},
		BecomeRM{NewDomain: 9, KnownRMs: []RMRef{{Domain: 0, RM: 1}}},
		Leave{},
		HeartbeatReq{Seq: 7, Backup: 2},
		HeartbeatAck{Seq: 7},
		BackupSync{State: DomainState{Domain: 1, Version: 3}},
		TakeoverAnnounce{Domain: 1, NewRM: 2, Backup: 3},
		TaskSubmit{Spec: TaskSpec{ID: "t", ObjectName: "m", DeadlineMicros: 5}},
		TaskReject{TaskID: "t", Reason: "nope"},
		GraphCompose{Session: SessionDesc{TaskID: "t", NumChunks: 3}, Role: RoleSource},
		ComposeAck{TaskID: "t", Role: 1, Generation: 2},
		SessionStart{TaskID: "t", Generation: 2},
		Chunk{TaskID: "t", Index: 1, SizeKBv: 3.5, NextStage: 2},
		SessionAbort{TaskID: "t", Generation: 1, Reason: "x"},
		SessionEnd{Report: SessionReport{TaskID: "t", Chunks: 3, Missed: 1}},
		GossipDigest{From: RMRef{Domain: 1, RM: 2}, Versions: map[DomainID]uint64{1: 2}},
		GossipSummaries{Summaries: []DomainSummary{{Domain: 1, Version: 2, ObjectBloom: []byte{1, 2}}}},
	}
	for i, m := range msgs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
			t.Fatalf("msg %d (%T): encode: %v", i, m, err)
		}
		var out any
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("msg %d (%T): decode: %v", i, m, err)
		}
		if got, want := typeOf(out), typeOf(m); got != want {
			t.Fatalf("msg %d: type %s != %s", i, got, want)
		}
	}
	// Spot-check payload integrity.
	var buf bytes.Buffer
	var in any = Chunk{TaskID: "x", Index: 5, SizeKBv: 9.25, Deadline: 123456}
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	c := out.(Chunk)
	if c.TaskID != "x" || c.Index != 5 || c.SizeKBv != 9.25 || c.Deadline != 123456 {
		t.Fatalf("chunk round trip = %+v", c)
	}
}

func typeOf(v any) string { return fmt.Sprintf("%T", v) }
