package proto

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/env"
)

// FuzzDHTMessages hammers the five DHT codec messages with hostile
// inputs. Two properties under fuzz: DecodeMessage never panics on
// arbitrary bytes claiming a DHT kind, and anything that decodes
// successfully survives an encode/decode round trip value-identically
// (byte identity is not required on the inbound side: varints admit
// non-minimal encodings). CI runs the seed corpus via plain go test;
// make fuzz-wire runs the generative search.
func FuzzDHTMessages(f *testing.F) {
	seeds := []env.Message{
		FindNode{RPC: 1, Target: sampleKey(0x01), TC: TraceContext{Trace: 3, Parent: 4}},
		FindValue{RPC: 2, Key: sampleKey(0x7f)},
		Store{Key: sampleKey(0xee), Provider: DHTProvider{Domain: 5, RM: 6, NumPeers: 7, AvgUtil: 0.5}},
		Nodes{RPC: 3, IDs: []env.NodeID{1, 2, 3, env.NoNode}},
		Providers{RPC: 4, Values: []DHTProvider{{Domain: 1, RM: 2}}, IDs: []env.NodeID{9}},
	}
	for _, m := range seeds {
		enc, ok := AppendMessage(nil, m)
		if !ok {
			f.Fatalf("%T not encodable", m)
		}
		f.Add(enc)
		// Truncations and bit flips of valid encodings steer the search
		// toward the interesting length/count boundaries.
		f.Add(enc[:len(enc)/2])
		flipped := append([]byte(nil), enc...)
		flipped[len(flipped)-1] ^= 0xff
		f.Add(flipped)
	}
	kinds := map[byte]bool{
		kindFindNode: true, kindFindValue: true, kindStore: true,
		kindNodes: true, kindProviders: true,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || !kinds[data[0]] {
			return
		}
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		re, ok := AppendMessage(nil, m)
		if !ok {
			t.Fatalf("decoded %T but cannot re-encode", m)
		}
		m2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("%T: re-decode failed: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%T: round trip mangled message", m)
		}
		// Re-encoding the re-decoded value must be byte-stable (the
		// canonical form is a fixed point).
		re2, _ := AppendMessage(nil, m2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("%T: canonical encoding not a fixed point:\n a: %x\n b: %x", m, re, re2)
		}
	})
}
