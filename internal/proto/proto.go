// Package proto defines the wire messages exchanged by peers and Resource
// Managers (§4). The same message structs travel over the simulated
// network (by reference) and over the live TCP transport (gob-encoded;
// see RegisterMessages).
package proto

import (
	"encoding/gob"
	"fmt"

	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// DomainID identifies a domain. The bootstrap domain is 0; domains created
// by promoting a qualified newcomer use the new RM's NodeID, which keeps
// IDs globally unique without coordination.
type DomainID int

// NoDomain marks a peer that has not joined yet.
const NoDomain DomainID = -1

// PeerInfo is a peer's self-description presented at join time (§3.1
// items 2-6: identity, capacity, objects, services).
type PeerInfo struct {
	ID            env.NodeID
	SpeedWU       float64 // processing power, work units/s
	BandwidthKbps float64 // access link capacity
	UptimeSec     float64 // historical uptime (qualification input, §4.1)
	Objects       []media.Object
	Services      []media.Transcoder
}

// QualifyThresholds are the §4.1 requirements for becoming a Resource
// Manager: "i) Sufficient bandwidth, ii) Sufficient processing power,
// iii) Sufficient uptime".
type QualifyThresholds struct {
	MinSpeedWU       float64
	MinBandwidthKbps float64
	MinUptimeSec     float64
}

// Qualifies reports whether the peer meets all three requirements.
func (p PeerInfo) Qualifies(q QualifyThresholds) bool {
	return p.SpeedWU >= q.MinSpeedWU &&
		p.BandwidthKbps >= q.MinBandwidthKbps &&
		p.UptimeSec >= q.MinUptimeSec
}

// Score ranks qualified peers for the Resource-Manager eligibility list
// (§4.1: "according to how affluent a peer is in those resources, it is
// assigned a score"). Weights normalize the three resources to comparable
// magnitudes.
func (p PeerInfo) Score() float64 {
	return p.SpeedWU + p.BandwidthKbps/1000 + p.UptimeSec/3600
}

// --- Membership (§4.1) ---

// Join asks the receiver to admit the sender to its domain. Sent to any
// known node; non-RM receivers redirect to their RM (the Gnutella-0.6
// ultrapeer negotiation analogue). Hops counts redirects followed so far;
// a full RM admits past its cap rather than bounce a joiner forever.
type Join struct {
	Info PeerInfo
	Hops int
}

// JoinRedirect points the joiner at another node to try.
type JoinRedirect struct {
	Target env.NodeID
	Reason string
}

// JoinAccept admits the joiner into the RM's domain.
type JoinAccept struct {
	Domain DomainID
	RM     env.NodeID
	Backup env.NodeID
	// Peers lists current domain members so the joiner has fallback
	// contacts if both RM and backup vanish.
	Peers []env.NodeID
}

// BecomeRM tells a qualified joiner that the domain is full and it should
// found a new domain as its Resource Manager.
type BecomeRM struct {
	NewDomain DomainID
	KnownRMs  []RMRef
}

// Leave is the graceful-departure notice a peer sends its RM.
type Leave struct{}

// HeartbeatReq is the RM's periodic liveness probe. It carries the
// current backup so every member always knows who takes over (§4.1).
type HeartbeatReq struct {
	Seq    uint64
	Backup env.NodeID
}

// HeartbeatAck answers a probe.
type HeartbeatAck struct{ Seq uint64 }

// ProfileUpdate carries a profiler snapshot to the RM (§4.4 intra-domain
// propagation).
type ProfileUpdate struct{ Report profiler.Report }

// --- Backup and failover (§4.1) ---

// RMRef names a domain's Resource Manager.
type RMRef struct {
	Domain DomainID
	RM     env.NodeID
}

// BackupSync replicates the RM state to the backup RM ("keeping an
// up-to-date copy of all the information the Resource Manager stores").
type BackupSync struct{ State DomainState }

// DomainState is the replicated RM state.
type DomainState struct {
	Domain   DomainID
	Peers    []PeerSnapshot
	Sessions []SessionDesc
	KnownRMs []RMRef
	Version  uint64
}

// PeerSnapshot is one peer's record inside DomainState.
type PeerSnapshot struct {
	Info PeerInfo
	Load float64
}

// TakeoverAnnounce is broadcast by the backup when it assumes the RM role
// after a failure, naming the next backup.
type TakeoverAnnounce struct {
	Domain DomainID
	NewRM  env.NodeID
	Backup env.NodeID
}

// --- Trace-context propagation ---

// TraceContext carries a task's causal trace identity across the wire so
// spans recorded by different processes stitch into one async track when
// traces are merged (internal/trace derives the same ids from equal
// seeds; the propagated context makes stitching robust even when seeds
// diverge). Trace is the task's session span id; Parent references the
// phase of the sender that caused this message (trace.PhaseRef). The
// zero value means "untraced" and costs nothing on the wire: gob omits
// zero-value fields.
type TraceContext struct {
	Trace  uint64 // session span id (0 = untraced)
	Parent uint64 // causally preceding phase ref (0 = root)
}

// --- Task submission and sessions (§4.3) ---

// TaskSpec is a user query: "a peer might ask for a media object by name,
// also specifying a set of acceptable bitrates, resolutions and codecs".
type TaskSpec struct {
	ID         string
	Origin     env.NodeID // requesting peer; receives the stream
	ObjectName string
	Constraint media.Constraint
	// DeadlineMicros is the startup deadline: the stream's first chunk
	// must reach the origin within this interval (Deadline_t, §3.3).
	DeadlineMicros int64
	Importance     int
	// DurationSec bounds the session length (0 = play the whole object).
	DurationSec float64
	// ChunkSec is the media seconds carried per pipeline chunk.
	ChunkSec float64
}

// TaskSubmit submits or forwards a task query to a Resource Manager.
type TaskSubmit struct {
	Spec TaskSpec
	Hops int // inter-domain redirects so far
	TC   TraceContext
}

// TaskReject reports that no allocation satisfying the QoS exists (§4.3).
type TaskReject struct {
	TaskID string
	Reason string
	TC     TraceContext
}

// StageDesc is one transcoding stage of a composed session.
type StageDesc struct {
	Peer           env.NodeID
	Service        string
	Work           float64 // work units per media-second
	InBitrateKbps  int     // bitrate of the stream arriving at this stage
	OutBitrateKbps int
}

// SessionDesc fully describes a composed streaming session: the concrete
// service graph G_s plus streaming parameters.
type SessionDesc struct {
	TaskID     string
	RM         env.NodeID // allocating Resource Manager
	Origin     env.NodeID // sink
	SourcePeer env.NodeID // object holder
	Stages     []StageDesc
	ObjectName string
	// SourceBitrateKbps is the object's native bitrate (first hop size).
	SourceBitrateKbps int
	ChunkSec          float64
	NumChunks         int
	// StartupDeadline is the relative startup budget; the sink's playback
	// clock starts this long after the session starts.
	StartupDeadline sim.Time
	// PlaybackBase is the absolute deadline of chunk 0; chunk i is due at
	// PlaybackBase + i·ChunkSec. It is fixed at admission so repairs do
	// not move the playback clock.
	PlaybackBase sim.Time
	// StartChunk is where emission (re)starts: 0 initially, the estimated
	// playback position after a repair.
	StartChunk int
	Importance int
	// Generation increments on each repair/migration of the same task so
	// stale chunks from a torn-down pipeline can be discarded.
	Generation int
	// TC is the task's trace context, fixed at allocation. It rides with
	// the session wherever it goes — graph composition, backup
	// replication, failover re-registration — so every process touching
	// the session records spans under the same id.
	TC TraceContext
}

// PipelinePeers returns source, stage peers, sink in order.
func (s SessionDesc) PipelinePeers() []env.NodeID {
	out := []env.NodeID{s.SourcePeer}
	for _, st := range s.Stages {
		out = append(out, st.Peer)
	}
	return append(out, s.Origin)
}

// UsesPeer reports whether the session's pipeline includes the peer.
func (s SessionDesc) UsesPeer(id env.NodeID) bool {
	for _, p := range s.PipelinePeers() {
		if p == id {
			return true
		}
	}
	return false
}

// GraphCompose distributes the session to one participant (§4.3: "graph
// composition messages are sent to the nodes that will participate in the
// streaming graph").
type GraphCompose struct {
	Session SessionDesc
	// Role is the participant's position: RoleSource, RoleSink, or the
	// stage index (0-based) for transcoding stages.
	Role int
}

// Participant roles in GraphCompose.
const (
	RoleSource = -1
	RoleSink   = -2
)

// ComposeAck answers a GraphCompose. OK=false means the participant
// refused the role (e.g. its Connection Manager is at capacity, §2) and
// the RM must abandon or re-plan the session.
type ComposeAck struct {
	TaskID     string
	Role       int
	Generation int
	OK         bool
	Reason     string
}

// SessionStart tells the source to begin streaming.
type SessionStart struct {
	TaskID     string
	Generation int
	TC         TraceContext
}

// Chunk is one media chunk traversing the pipeline. NextStage addresses
// the stage that must process it next (len(Stages) means the sink).
type Chunk struct {
	TaskID     string
	Generation int
	Index      int
	NextStage  int
	SizeKBv    float64
	// Deadline is the absolute playback deadline at the sink.
	Deadline sim.Time
	// Emitted is when the source sent it (for end-to-end latency).
	Emitted sim.Time
}

// SizeKB implements env.Sized: chunk transfers consume bandwidth.
func (c Chunk) SizeKB() float64 { return c.SizeKBv }

// SessionAbort tears a session instance down at one participant (repair,
// migration, failure, preemption). Final=true means the task itself is
// over: the sink finalizes and reports whatever arrived. Final=false
// (superseded generation, or a session cancelled before streaming)
// discards silently.
type SessionAbort struct {
	TaskID     string
	Generation int
	Reason     string
	Final      bool
	TC         TraceContext
}

// SessionReport is the sink's account of a finished session.
type SessionReport struct {
	TaskID            string
	Chunks            int
	Received          int
	Missed            int // late or never-arrived chunks
	StartupMicros     int64
	MeanLatencyMicros float64
	Repaired          int // pipeline generations observed beyond the first
	// FinishedMicros is the sink-side finalization time (its local clock),
	// letting experiments bucket sessions into phases.
	FinishedMicros int64
	// Hops is the number of transcoding stages in the final pipeline.
	Hops int
}

// SessionEnd carries the report from the sink to the allocating RM.
type SessionEnd struct {
	Report SessionReport
	TC     TraceContext
}

// --- Inter-domain gossip (§3.1, §4.4) ---

// DomainSummary is the lazily propagated per-domain summary: Bloom
// filters of available objects and services plus coarse load.
type DomainSummary struct {
	Domain       DomainID
	RM           env.NodeID
	Version      uint64
	NumPeers     int
	AvgUtil      float64
	ObjectBloom  []byte
	ServiceBloom []byte
	BloomM       uint64
	BloomK       uint32
}

// GossipDigest opens an anti-entropy round: the versions the sender holds.
type GossipDigest struct {
	From     RMRef
	Versions map[DomainID]uint64
}

// GossipSummaries answers with summaries the digest shows as stale and
// asks for those the sender lacks.
type GossipSummaries struct {
	From      RMRef
	Summaries []DomainSummary
	// Want lists domains the responder wants newer versions of; the
	// receiver replies once more with just those (push-pull completion).
	Want []DomainID
}

// --- Structured discovery (DHT) ---

// DHTKey is a 160-bit key in the XOR metric space. Node IDs are derived
// locally and deterministically from env.NodeID (internal/dht.NodeKey),
// so contacts travel as bare NodeIDs; only lookup targets and provider
// keys appear on the wire.
type DHTKey [20]byte

// DHTProvider is one provider record: a domain that can serve a key (an
// object or service catalog entry), carrying the redirect target plus
// the load signals the RM uses to rank candidates — the structured
// counterpart of a DomainSummary row.
type DHTProvider struct {
	Domain   DomainID
	RM       env.NodeID
	NumPeers int
	AvgUtil  float64
}

// FindNode asks a DHT node for its closest known contacts to Target.
// RPC matches the response to the outstanding request; TC propagates the
// causal trace of the task (if any) that triggered the lookup.
type FindNode struct {
	RPC    uint64
	Target DHTKey
	TC     TraceContext
}

// FindValue asks for provider records under Key, falling back to the
// closest contacts when the receiver has none (classic Kademlia
// either/or, collapsed into the Providers response).
type FindValue struct {
	RPC uint64
	Key DHTKey
	TC  TraceContext
}

// Store asks the receiver to hold a provider record under Key until the
// receiver-side TTL expires; publishers refresh by republishing.
type Store struct {
	Key      DHTKey
	Provider DHTProvider
}

// Nodes answers a FindNode with the receiver's closest contacts.
type Nodes struct {
	RPC uint64
	IDs []env.NodeID
}

// Providers answers a FindValue: any provider records held under the
// key plus the closest contacts, so the iterative lookup can both
// collect values and keep converging.
type Providers struct {
	RPC    uint64
	Values []DHTProvider
	IDs    []env.NodeID
}

// RegisterMessages registers every message type with encoding/gob for the
// live TCP transport. Call once per process.
func RegisterMessages() {
	gob.Register(Join{})
	gob.Register(JoinRedirect{})
	gob.Register(JoinAccept{})
	gob.Register(BecomeRM{})
	gob.Register(Leave{})
	gob.Register(HeartbeatReq{})
	gob.Register(HeartbeatAck{})
	gob.Register(ProfileUpdate{})
	gob.Register(BackupSync{})
	gob.Register(TakeoverAnnounce{})
	gob.Register(TaskSubmit{})
	gob.Register(TaskReject{})
	gob.Register(GraphCompose{})
	gob.Register(ComposeAck{})
	gob.Register(SessionStart{})
	gob.Register(Chunk{})
	gob.Register(SessionAbort{})
	gob.Register(SessionEnd{})
	gob.Register(GossipDigest{})
	gob.Register(GossipSummaries{})
	gob.Register(FindNode{})
	gob.Register(FindValue{})
	gob.Register(Store{})
	gob.Register(Nodes{})
	gob.Register(Providers{})
}

// String implements fmt.Stringer for log readability.
func (s SessionDesc) String() string {
	return fmt.Sprintf("session(%s src=n%d stages=%d sink=n%d chunks=%d gen=%d)",
		s.TaskID, s.SourcePeer, len(s.Stages), s.Origin, s.NumChunks, s.Generation)
}
