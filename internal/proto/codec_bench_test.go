package proto

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/env"
)

// BenchmarkWireCodec measures the v2 codec against the gob-per-frame
// baseline it replaces, on the two payload shapes that dominate live
// traffic: heartbeats (the steady-state control plane) and chunks (the
// streaming data plane). The v2 encode path must stay zero-alloc and
// the decode path must allocate only the message itself.
func BenchmarkWireCodec(b *testing.B) {
	hb := HeartbeatReq{Seq: 123456, Backup: 3}
	ck := Chunk{TaskID: "task-17", Generation: 1, Index: 40, NextStage: 2,
		SizeKBv: 96.5, Deadline: 5_000_000, Emitted: 4_900_000}

	encode := func(b *testing.B, m env.Message) {
		b.ReportAllocs()
		buf := make([]byte, 0, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			buf, _ = AppendMessage(buf, m)
		}
		b.SetBytes(int64(len(buf)))
	}
	decode := func(b *testing.B, m env.Message) {
		b.ReportAllocs()
		enc, _ := AppendMessage(nil, m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeMessage(enc); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(enc)))
	}
	gobEncode := func(b *testing.B, m env.Message) {
		RegisterMessages()
		b.ReportAllocs()
		var buf bytes.Buffer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			// One self-contained stream per message, as the v1 wire
			// format pays it.
			if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	}

	b.Run("encode/heartbeat", func(b *testing.B) { encode(b, hb) })
	b.Run("decode/heartbeat", func(b *testing.B) { decode(b, hb) })
	b.Run("encode/chunk", func(b *testing.B) { encode(b, ck) })
	b.Run("decode/chunk", func(b *testing.B) { decode(b, ck) })
	b.Run("gob-baseline/heartbeat", func(b *testing.B) { gobEncode(b, hb) })
	b.Run("gob-baseline/chunk", func(b *testing.B) { gobEncode(b, ck) })
}
