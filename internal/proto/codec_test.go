package proto

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/profiler"
)

func sampleFormat(codec media.Codec, w int) media.Format {
	return media.Format{Codec: codec, Width: w, Height: w * 3 / 4, BitrateKbps: 512}
}

func samplePeerInfo() PeerInfo {
	return PeerInfo{
		ID:            7,
		SpeedWU:       50.5,
		BandwidthKbps: 10000,
		UptimeSec:     7200.25,
		Objects: []media.Object{
			{Name: "movie-42", Format: sampleFormat(media.MPEG2, 800), Hash: 0xdeadbeefcafe, Bytes: 1 << 30},
		},
		Services: []media.Transcoder{
			{From: sampleFormat(media.MPEG2, 800), To: sampleFormat(media.MPEG4, 640)},
		},
	}
}

func sampleSession() SessionDesc {
	return SessionDesc{
		TaskID:     "task-17",
		RM:         0,
		Origin:     9,
		SourcePeer: 4,
		Stages: []StageDesc{
			{Peer: 5, Service: "MPEG-2 800x600@512Kbps->MPEG-4 640x480@64Kbps", Work: 1.75, InBitrateKbps: 512, OutBitrateKbps: 64},
			{Peer: 6, Service: "s2", Work: 0.5, InBitrateKbps: 64, OutBitrateKbps: 32},
		},
		ObjectName:        "movie-42",
		SourceBitrateKbps: 512,
		ChunkSec:          1.5,
		NumChunks:         40,
		StartupDeadline:   2_000_000,
		PlaybackBase:      123_456_789,
		StartChunk:        3,
		Importance:        2,
		Generation:        1,
		TC:                TraceContext{Trace: 0x1122334455667788, Parent: 42},
	}
}

// codecSamples covers every kind tag with rich field values, including
// negative node IDs, empty and populated slices, multi-key maps and
// non-zero trace contexts.
func codecSamples() []env.Message {
	return []env.Message{
		Join{Info: samplePeerInfo(), Hops: 3},
		Join{Info: PeerInfo{ID: env.NoNode}, Hops: 0},
		JoinRedirect{Target: 12, Reason: "try the RM"},
		JoinAccept{Domain: 2, RM: 5, Backup: env.NoNode, Peers: []env.NodeID{1, 2, 3}},
		JoinAccept{Domain: 0, RM: 0, Backup: 0},
		BecomeRM{NewDomain: 9, KnownRMs: []RMRef{{Domain: 0, RM: 0}, {Domain: 9, RM: 9}}},
		Leave{},
		HeartbeatReq{Seq: 1 << 40, Backup: 3},
		HeartbeatAck{Seq: 77},
		ProfileUpdate{Report: profiler.Report{
			Peer: 4, At: 1_000_000, Load: 12.5, Utilization: 0.25, BandwidthKbps: 900,
			ServiceTimes: map[string]float64{"a": 1.5, "b": 2.5, "c": 3.5},
			CommTimes:    map[int]float64{1: 10, 9: 90, 5: 50},
		}},
		ProfileUpdate{Report: profiler.Report{Peer: 1}},
		BackupSync{State: DomainState{
			Domain:   1,
			Peers:    []PeerSnapshot{{Info: samplePeerInfo(), Load: 3.25}},
			Sessions: []SessionDesc{sampleSession()},
			KnownRMs: []RMRef{{Domain: 1, RM: 2}},
			Version:  19,
		}},
		TakeoverAnnounce{Domain: 1, NewRM: 2, Backup: 3},
		TaskSubmit{
			Spec: TaskSpec{
				ID: "t-1", Origin: 9, ObjectName: "movie-42",
				Constraint: media.Constraint{
					Codecs:         []media.Codec{media.MPEG4, media.H263},
					MaxWidth:       640,
					MaxHeight:      480,
					MinBitrateKbps: 32,
					MaxBitrateKbps: 64,
				},
				DeadlineMicros: 2_000_000, Importance: 1, DurationSec: 10, ChunkSec: 1,
			},
			Hops: 2,
			TC:   TraceContext{Trace: 5, Parent: 6},
		},
		TaskReject{TaskID: "t-1", Reason: "no allocation satisfies QoS", TC: TraceContext{}},
		GraphCompose{Session: sampleSession(), Role: RoleSource},
		GraphCompose{Session: SessionDesc{TaskID: "bare"}, Role: RoleSink},
		ComposeAck{TaskID: "t-1", Role: RoleSink, Generation: 2, OK: false, Reason: "at capacity"},
		ComposeAck{TaskID: "t-1", Role: 0, Generation: 0, OK: true},
		SessionStart{TaskID: "t-1", Generation: 1, TC: TraceContext{Trace: 1}},
		Chunk{TaskID: "t-1", Generation: 1, Index: 17, NextStage: 2, SizeKBv: 96.5, Deadline: 5_000_000, Emitted: 4_900_000},
		SessionAbort{TaskID: "t-1", Generation: 2, Reason: "repair", Final: true, TC: TraceContext{Parent: 9}},
		SessionEnd{Report: SessionReport{
			TaskID: "t-1", Chunks: 40, Received: 38, Missed: 2,
			StartupMicros: 120_000, MeanLatencyMicros: 420.5, Repaired: 1,
			FinishedMicros: 60_000_000, Hops: 2,
		}, TC: TraceContext{Trace: 8, Parent: 3}},
		GossipDigest{From: RMRef{Domain: 2, RM: 5}, Versions: map[DomainID]uint64{0: 4, 2: 19, 7: 1}},
		GossipDigest{From: RMRef{Domain: 0, RM: 0}},
		GossipSummaries{
			From: RMRef{Domain: 2, RM: 5},
			Summaries: []DomainSummary{{
				Domain: 0, RM: 0, Version: 4, NumPeers: 12, AvgUtil: 0.4,
				ObjectBloom: []byte{0xff, 0x01, 0x80}, ServiceBloom: []byte{0x10},
				BloomM: 1024, BloomK: 3,
			}},
			Want: []DomainID{3, 7},
		},
		FindNode{RPC: 1 << 50, Target: sampleKey(0x11), TC: TraceContext{Trace: 7, Parent: 2}},
		FindNode{},
		FindValue{RPC: 99, Key: sampleKey(0xfe), TC: TraceContext{Trace: 1}},
		Store{Key: sampleKey(0x42), Provider: DHTProvider{Domain: 3, RM: 14, NumPeers: 8, AvgUtil: 0.625}},
		Nodes{RPC: 5, IDs: []env.NodeID{9, 0, 3}},
		Nodes{RPC: 6},
		Providers{
			RPC: 7,
			Values: []DHTProvider{
				{Domain: 1, RM: 4, NumPeers: 2, AvgUtil: 0.25},
				{Domain: 9, RM: 9, NumPeers: 16, AvgUtil: 1},
			},
			IDs: []env.NodeID{2, 4},
		},
		Providers{RPC: 8},
	}
}

// sampleKey fills a DHTKey with a recognizable byte pattern.
func sampleKey(fill byte) DHTKey {
	var k DHTKey
	for i := range k {
		k[i] = fill ^ byte(i)
	}
	return k
}

func TestCodecRoundTrip(t *testing.T) {
	for _, m := range codecSamples() {
		enc, ok := AppendMessage(nil, m)
		if !ok {
			t.Fatalf("%T not in the core set", m)
		}
		dec, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(dec, m) {
			t.Fatalf("%T round trip mangled message:\n in: %#v\nout: %#v", m, m, dec)
		}
	}
}

func TestCodecAppendPreservesPrefix(t *testing.T) {
	prefix := []byte{0xaa, 0xbb}
	enc, ok := AppendMessage(append([]byte(nil), prefix...), HeartbeatAck{Seq: 9})
	if !ok {
		t.Fatal("heartbeat not encodable")
	}
	if !bytes.Equal(enc[:2], prefix) {
		t.Fatalf("prefix clobbered: %x", enc[:4])
	}
	if _, err := DecodeMessage(enc[2:]); err != nil {
		t.Fatal(err)
	}
}

type notAProtoMessage struct{ X int }

func TestCodecRejectsUnknownType(t *testing.T) {
	buf := []byte{1, 2, 3}
	out, ok := AppendMessage(buf, notAProtoMessage{X: 4})
	if ok {
		t.Fatal("unknown type reported as encodable")
	}
	if !bytes.Equal(out, buf) {
		t.Fatalf("buffer changed on rejected encode: %x", out)
	}
}

// TestCodecTruncation decodes every strict prefix of every sample: all
// must error (never panic, never succeed on partial input).
func TestCodecTruncation(t *testing.T) {
	for _, m := range codecSamples() {
		enc, _ := AppendMessage(nil, m)
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeMessage(enc[:cut]); err == nil {
				t.Fatalf("%T: decoding %d of %d bytes succeeded", m, cut, len(enc))
			}
		}
	}
}

func TestCodecTrailingBytesRejected(t *testing.T) {
	enc, _ := AppendMessage(nil, HeartbeatReq{Seq: 1, Backup: 2})
	if _, err := DecodeMessage(append(enc, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestCodecHostileCounts hands the decoder length declarations far
// beyond the actual input; it must fail cleanly without allocating what
// the attacker declared.
func TestCodecHostileCounts(t *testing.T) {
	cases := map[string][]byte{
		// JoinAccept with domain/rm/backup = 0 and a 2^60 peer count.
		"slice count": {kindJoinAccept, 0, 0, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10},
		// JoinRedirect with target 0 and a giant reason length.
		"string length": {kindJoinRedirect, 0, 0xff, 0xff, 0xff, 0xff, 0x0f},
		// GossipDigest From(0,0) and a giant map count.
		"map count": {kindGossipDigest, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f},
		// ComposeAck with a flag byte outside {0,1}.
		"bad flag":     {kindComposeAck, 0, 0, 0, 2, 0},
		"empty":        {},
		"unknown kind": {0x7f},
		// FindNode with RPC 0 and only 3 of the 20 key bytes.
		"short dht key": {kindFindNode, 0, 0xaa, 0xbb, 0xcc},
		// Providers with RPC 0 and a 2^60 provider count.
		"provider count": {kindProviders, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10},
	}
	for name, b := range cases {
		if _, err := DecodeMessage(b); err == nil {
			t.Fatalf("%s: hostile input decoded without error", name)
		}
	}
}

// TestCodecDeterministicMaps re-encodes map-bearing messages many times:
// sorted-key emission must make every encoding byte-identical (gob does
// not guarantee this; replay and the recorder rely on it).
func TestCodecDeterministicMaps(t *testing.T) {
	msgs := []env.Message{
		ProfileUpdate{Report: profiler.Report{
			ServiceTimes: map[string]float64{"x": 1, "y": 2, "z": 3, "w": 4},
			CommTimes:    map[int]float64{4: 4, 1: 1, 3: 3, 2: 2},
		}},
		GossipDigest{Versions: map[DomainID]uint64{5: 5, 1: 1, 9: 9, 3: 3}},
	}
	for _, m := range msgs {
		first, _ := AppendMessage(nil, m)
		for i := 0; i < 20; i++ {
			again, _ := AppendMessage(nil, m)
			if !bytes.Equal(first, again) {
				t.Fatalf("%T: encoding %d differs from the first", m, i)
			}
		}
	}
}

// TestCodecZeroAllocEncode pins the hot-path property: encoding into a
// buffer with capacity performs no allocations.
func TestCodecZeroAllocEncode(t *testing.T) {
	buf := make([]byte, 0, 256)
	msgs := []env.Message{
		HeartbeatReq{Seq: 9, Backup: 1},
		HeartbeatAck{Seq: 9},
		Chunk{TaskID: "t", Generation: 1, Index: 3, SizeKBv: 96, Deadline: 1, Emitted: 1},
	}
	for _, m := range msgs {
		m := m
		allocs := testing.AllocsPerRun(100, func() {
			buf = buf[:0]
			buf, _ = AppendMessage(buf, m)
		})
		if allocs != 0 {
			t.Fatalf("%T: %v allocs per encode, want 0", m, allocs)
		}
	}
}
