package benchcmp

import (
	"path/filepath"
	"strings"
	"testing"
)

const fixture = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkAllocationFigure3-8 	 7463497	       332.9 ns/op	      32 B/op	       1 allocs/op
BenchmarkAllocationFigure3-8 	 7445697	       337.3 ns/op	      32 B/op	       1 allocs/op
BenchmarkAllocationFigure3-8 	 7449885	       336.5 ns/op	      32 B/op	       1 allocs/op
BenchmarkE1Figure1Paths-8    	   10000	    114514 ns/op
some unrelated line
PASS
ok  	repro	8.490s
`

func TestParseAndAggregate(t *testing.T) {
	samples, snap, err := Parse(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GoOS != "linux" || snap.GoArch != "amd64" || !strings.Contains(snap.CPU, "Xeon") {
		t.Fatalf("header = %+v", snap)
	}
	if len(samples["BenchmarkAllocationFigure3"]) != 3 {
		t.Fatalf("samples = %v", samples)
	}
	if len(samples["BenchmarkE1Figure1Paths"]) != 1 {
		t.Fatalf("ns-only line not parsed: %v", samples)
	}
	agg := Aggregate(samples)
	fig3 := agg["BenchmarkAllocationFigure3"]
	if fig3.NsPerOp != 332.9 || fig3.BytesPerOp != 32 || fig3.AllocsPerOp != 1 || fig3.Runs != 3 {
		t.Fatalf("aggregate = %+v, want min of each over 3 runs", fig3)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	prev := map[string]Metrics{
		"BenchmarkA":    {NsPerOp: 100, AllocsPerOp: 1},
		"BenchmarkB":    {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkGone": {NsPerOp: 50},
	}
	cur := map[string]Metrics{
		"BenchmarkA":   {NsPerOp: 119, AllocsPerOp: 1}, // +19%: within 20%
		"BenchmarkB":   {NsPerOp: 121, AllocsPerOp: 2}, // +21% ns and +2 allocs
		"BenchmarkNew": {NsPerOp: 9999},                // no baseline: ignored
	}
	regs := Compare(prev, cur, 0.20, 0.10)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want ns/op and allocs/op on B", regs)
	}
	for _, r := range regs {
		if r.Name != "BenchmarkB" {
			t.Fatalf("unexpected regression %v", r)
		}
		if s := r.String(); !strings.Contains(s, "BenchmarkB") {
			t.Fatalf("String() = %q", s)
		}
	}
	if regs := Compare(prev, map[string]Metrics{"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 0}}, 0.2, 0); len(regs) != 0 {
		t.Fatalf("0->0 allocs flagged: %v", regs)
	}
}

func TestSnapshotRoundTripAndLatest(t *testing.T) {
	dir := t.TempDir()
	older := &Snapshot{Date: "2026-08-01", Benchmarks: map[string]Metrics{"BenchmarkA": {NsPerOp: 100}}}
	newer := &Snapshot{Date: "2026-08-06", GoOS: "linux", Benchmarks: map[string]Metrics{"BenchmarkA": {NsPerOp: 90, Runs: 5}}}
	if err := older.WriteFile(SnapshotPath(dir, older.Date)); err != nil {
		t.Fatal(err)
	}
	if err := newer.WriteFile(SnapshotPath(dir, newer.Date)); err != nil {
		t.Fatal(err)
	}
	path, got, ok, err := Latest(dir)
	if err != nil || !ok {
		t.Fatalf("Latest: %v ok=%v", err, ok)
	}
	if filepath.Base(path) != "BENCH_2026-08-06.json" {
		t.Fatalf("Latest picked %s", path)
	}
	if got.Date != "2026-08-06" || got.Benchmarks["BenchmarkA"].NsPerOp != 90 || got.Benchmarks["BenchmarkA"].Runs != 5 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, _, ok, err := Latest(t.TempDir()); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
}
