// Package benchcmp implements the benchmark regression harness behind
// `p2pbench -regress` and `make bench`: it parses standard `go test
// -bench` output, aggregates repeated runs, persists snapshots as
// BENCH_<date>.json files, and compares a fresh run against the previous
// snapshot with a tolerance — failing loudly on regression. Snapshots
// committed to the repo seed the ROADMAP's measured performance
// trajectory.
//
// The package never reads the wall clock: callers stamp snapshots with an
// injected date string, keeping the harness usable from deterministic
// contexts and trivially testable.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics are one benchmark's aggregated numbers.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Runs        int     `json:"runs"` // samples aggregated into this entry
}

// Snapshot is one recorded benchmark run, serialized as BENCH_<date>.json.
type Snapshot struct {
	Date       string             `json:"date"` // YYYY-MM-DD, supplied by the caller
	GoOS       string             `json:"goos,omitempty"`
	GoArch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  123  45.6 ns/op  7 B/op  8 allocs/op`.
// The -8 GOMAXPROCS suffix is stripped from the recorded name so snapshots
// compare across machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// Parse reads `go test -bench` output: per-benchmark samples (one per
// -count repetition) plus the goos/goarch/cpu header lines.
func Parse(r io.Reader) (samples map[string][]Metrics, snap Snapshot, err error) {
	samples = make(map[string][]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			snap.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		var sample Metrics
		got := false
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "ns/op":
				sample.NsPerOp, got = v, true
			case "B/op":
				sample.BytesPerOp = v
			case "allocs/op":
				sample.AllocsPerOp = v
			}
		}
		if got {
			sample.Runs = 1
			samples[name] = append(samples[name], sample)
		}
	}
	return samples, snap, sc.Err()
}

// Aggregate reduces repeated samples to one Metrics per benchmark, taking
// the minimum of each measure: the fastest repetition is the closest
// estimate of the code's cost, with scheduler and GC noise only ever
// adding time (the same convention benchstat's p-value-free reading uses).
func Aggregate(samples map[string][]Metrics) map[string]Metrics {
	out := make(map[string]Metrics, len(samples))
	for name, ss := range samples {
		if len(ss) == 0 {
			continue
		}
		agg := ss[0]
		agg.Runs = len(ss)
		for _, s := range ss[1:] {
			if s.NsPerOp < agg.NsPerOp {
				agg.NsPerOp = s.NsPerOp
			}
			if s.BytesPerOp < agg.BytesPerOp {
				agg.BytesPerOp = s.BytesPerOp
			}
			if s.AllocsPerOp < agg.AllocsPerOp {
				agg.AllocsPerOp = s.AllocsPerOp
			}
		}
		out[name] = agg
	}
	return out
}

// Regression is one tolerance violation found by Compare.
type Regression struct {
	Name   string  // benchmark name
	Metric string  // "ns/op" or "allocs/op"
	Old    float64 // previous snapshot value
	New    float64 // current value
	Limit  float64 // the tolerated maximum
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (limit %.4g)", r.Name, r.Metric, r.Old, r.New, r.Limit)
}

// Compare checks cur against prev over the benchmarks present in both.
// nsTol and allocTol are fractional tolerances (0.20 = +20% allowed).
// allocs/op gets a +0.5 absolute grace so a 0→0 or 1→1 comparison cannot
// trip on formatting, while 1→2 still fails at any sane tolerance.
func Compare(prev, cur map[string]Metrics, nsTol, allocTol float64) []Regression {
	var regs []Regression
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p, ok := prev[name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		c := cur[name]
		if limit := p.NsPerOp * (1 + nsTol); p.NsPerOp > 0 && c.NsPerOp > limit {
			regs = append(regs, Regression{name, "ns/op", p.NsPerOp, c.NsPerOp, limit})
		}
		if limit := p.AllocsPerOp*(1+allocTol) + 0.5; c.AllocsPerOp > limit {
			regs = append(regs, Regression{name, "allocs/op", p.AllocsPerOp, c.AllocsPerOp, limit})
		}
	}
	return regs
}

// WriteFile serializes the snapshot as indented JSON at path, creating
// parent directories as needed.
func (s *Snapshot) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadFile reads a snapshot written by WriteFile.
func LoadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// SnapshotPath returns dir/BENCH_<date>.json.
func SnapshotPath(dir, date string) string {
	return filepath.Join(dir, "BENCH_"+date+".json")
}

// Latest returns the lexically greatest BENCH_*.json in dir — with
// ISO-8601 dates that is the most recent snapshot. It returns ok=false
// when the directory holds none (the first run seeds the trajectory).
func Latest(dir string) (path string, snap *Snapshot, ok bool, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		return "", nil, false, err
	}
	sort.Strings(matches)
	path = matches[len(matches)-1]
	snap, err = LoadFile(path)
	if err != nil {
		return "", nil, false, err
	}
	return path, snap, true, nil
}
