// Package workload generates the synthetic request and churn processes
// driving the experiments: Poisson task arrivals with Zipf object
// popularity, heterogeneous peer populations (via cluster.PeerSpecs), and
// scripted churn/spike scenarios.
package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/env"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TaskMix parameterizes the request stream.
type TaskMix struct {
	// RatePerSec is the Poisson arrival rate of task queries.
	RatePerSec float64
	// Objects is the catalog size; requests draw object ranks from a
	// Zipf distribution with exponent ZipfS.
	Objects int
	ZipfS   float64
	// DurationMeanSec is the mean (exponential) session length.
	DurationMeanSec float64
	// DeadlineMicros is the startup budget attached to every request.
	DeadlineMicros int64
	// ChunkSec is the chunk granularity.
	ChunkSec float64
	// ImportanceLevels draws Importance uniformly from [1, n].
	ImportanceLevels int
	// RelaxedFrac of requests accept any codec (wider goal sets).
	RelaxedFrac float64
}

// DefaultMix returns the standard experiment request mix.
func DefaultMix() TaskMix {
	return TaskMix{
		RatePerSec:       1.0,
		Objects:          20,
		ZipfS:            0.8,
		DurationMeanSec:  20,
		DeadlineMicros:   2_000_000,
		ChunkSec:         1,
		ImportanceLevels: 5,
		RelaxedFrac:      0.3,
	}
}

// Driver schedules a request stream onto a cluster.
type Driver struct {
	C   *cluster.Cluster
	Cat cluster.Catalog
	Mix TaskMix
	R   *rng.Rand

	zipf *rng.Zipf
	seq  int
}

// NewDriver builds a driver with its own random stream.
func NewDriver(c *cluster.Cluster, cat cluster.Catalog, mix TaskMix, r *rng.Rand) *Driver {
	return &Driver{C: c, Cat: cat, Mix: mix, R: r, zipf: rng.NewZipf(r.Split(), mix.Objects, mix.ZipfS)}
}

// Spec draws one task specification (without origin).
func (d *Driver) Spec() proto.TaskSpec {
	d.seq++
	obj := d.zipf.Next()
	return proto.TaskSpec{
		ID:             fmt.Sprintf("wl-%d", d.seq),
		ObjectName:     fmt.Sprintf("obj-%d", obj),
		Constraint:     d.Cat.RequestConstraint(d.R, d.R.Bool(d.Mix.RelaxedFrac)),
		DeadlineMicros: d.Mix.DeadlineMicros,
		Importance:     1 + d.R.Intn(maxInt(1, d.Mix.ImportanceLevels)),
		DurationSec:    d.R.Exp(d.Mix.DurationMeanSec),
		ChunkSec:       d.Mix.ChunkSec,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run schedules Poisson arrivals over [start, end): each request is
// submitted from a uniformly random live peer.
func (d *Driver) Run(start, end sim.Time) {
	ids := d.C.IDs()
	t := start
	for {
		t += sim.Time(d.R.Exp(1/d.Mix.RatePerSec) * 1e6)
		if t >= end {
			return
		}
		origin := ids[d.R.Intn(len(ids))]
		spec := d.Spec()
		spec.Origin = origin
		d.C.Submit(t, origin, spec)
	}
}

// RunBurst schedules a dense burst of extra requests in [start, start+width),
// modeling the §4.5 load-spike scenario.
func (d *Driver) RunBurst(start, width sim.Time, count int) {
	ids := d.C.IDs()
	for i := 0; i < count; i++ {
		at := start + sim.Time(d.R.Float64()*float64(width))
		origin := ids[d.R.Intn(len(ids))]
		spec := d.Spec()
		spec.Origin = origin
		d.C.Submit(at, origin, spec)
	}
}

// Churn schedules crash and (re)join events: over [start, end), each
// event at rate eventsPerSec either crashes a random live non-founder
// node (probability crashFrac) or gracefully stops one.
//
// Nodes are not resurrected — netsim node IDs are single-use — so churn
// experiments provision enough peers up front.
func Churn(c *cluster.Cluster, r *rng.Rand, start, end sim.Time, eventsPerSec, crashFrac float64, protect map[env.NodeID]bool) {
	t := start
	for {
		t += sim.Time(r.Exp(1/eventsPerSec) * 1e6)
		if t >= end {
			return
		}
		crash := r.Bool(crashFrac)
		at := t
		c.Eng.At(at, func() {
			// Pick a live, unprotected victim at fire time.
			var victims []env.NodeID
			for _, id := range c.IDs() {
				if c.Net.Alive(id) && !protect[id] {
					victims = append(victims, id)
				}
			}
			if len(victims) == 0 {
				return
			}
			v := victims[r.Intn(len(victims))]
			if crash {
				c.Net.Crash(v)
			} else {
				c.Net.Stop(v)
			}
		})
	}
}

// Joins schedules newcomer arrivals over [start, end) at joinsPerSec,
// bootstrapping each through a random existing node.
func Joins(c *cluster.Cluster, cat cluster.Catalog, r *rng.Rand, start, end sim.Time, joinsPerSec float64, q proto.QualifyThresholds, qualifiedFrac float64, svcPerPeer int) {
	t := start
	for {
		t += sim.Time(r.Exp(1/joinsPerSec) * 1e6)
		if t >= end {
			return
		}
		info := cluster.PeerSpecs(r, 1, q, qualifiedFrac)[0]
		perm := r.Perm(len(cat.Ladder))
		k := svcPerPeer
		if k > len(perm) {
			k = len(perm)
		}
		for _, j := range perm[:k] {
			info.Services = append(info.Services, cat.Ladder[j])
		}
		at := t
		c.Eng.At(at, func() {
			ids := c.IDs()
			var boot env.NodeID = env.NoNode
			// Bootstrap via any live node.
			for _, cand := range r.Perm(len(ids)) {
				if c.Net.Alive(ids[cand]) {
					boot = ids[cand]
					break
				}
			}
			if boot == env.NoNode {
				return
			}
			c.AddPeer(info, boot)
		})
	}
}

// BackgroundNoise drives square-wave extraneous load (§4.5) across the
// population: every period, each live peer independently becomes busy
// (consuming a random 40-80% of its capacity) with probability pBusy, or
// returns to idle. The Resource Manager only sees this load through
// profiler updates, so it is the staleness stimulus for E10.
func BackgroundNoise(c *cluster.Cluster, r *rng.Rand, start, end, period sim.Time, pBusy float64) {
	for t := start; t < end; t += period {
		at := t
		c.Eng.At(at, func() {
			for _, id := range c.IDs() {
				if !c.Net.Alive(id) {
					continue
				}
				p := c.Peer(id)
				if r.Bool(pBusy) {
					p.SetBackgroundLoad(p.Info().SpeedWU * r.Uniform(0.4, 0.8))
				} else {
					p.SetBackgroundLoad(0)
				}
			}
		})
	}
}

// LoadSpike sets high extraneous load on the given peers for the window
// [from, to): the E9 overload stimulus.
func LoadSpike(c *cluster.Cluster, peers []env.NodeID, from, to sim.Time, frac float64) {
	c.Eng.At(from, func() {
		for _, id := range peers {
			if c.Net.Alive(id) {
				p := c.Peer(id)
				p.SetBackgroundLoad(p.Info().SpeedWU * frac)
			}
		}
	})
	c.Eng.At(to, func() {
		for _, id := range peers {
			if c.Net.Alive(id) {
				c.Peer(id).SetBackgroundLoad(0)
			}
		}
	})
}
