package workload

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
)

func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 16
	r := rng.New(3)
	infos := cluster.PeerSpecs(r, n, cfg.Qualify, 0.6)
	cat := cluster.StandardCatalog()
	cat.Populate(r, infos, 4, 20, 3, 30)
	c := cluster.Build(cfg, netsim.Config{Latency: netsim.UniformLatency(10 * sim.Millisecond)}, 4, infos, 100*sim.Millisecond)
	c.RunUntil(c.Eng.Now() + 10*sim.Second)
	if c.JoinedCount() != n {
		t.Fatalf("joined %d/%d", c.JoinedCount(), n)
	}
	return c
}

func TestDriverSubmitsAtRate(t *testing.T) {
	c := testCluster(t, 12)
	d := NewDriver(c, cluster.StandardCatalog(), DefaultMix(), rng.New(9))
	start := c.Eng.Now()
	d.Run(start, start+60*sim.Second)
	c.RunUntil(start + 120*sim.Second)
	ev := c.Events.Snapshot()
	// ~60 arrivals expected at 1/s over 60s.
	if ev.Submitted < 35 || ev.Submitted > 90 {
		t.Fatalf("submitted = %d, want ≈60", ev.Submitted)
	}
	// The vast majority should be servable in a 12-peer domain set.
	if ev.Admitted == 0 {
		t.Fatalf("nothing admitted (rejected=%d)", ev.Rejected)
	}
	if ev.Admitted+ev.Rejected < ev.Submitted*9/10 {
		t.Fatalf("outcomes %d+%d lag submissions %d", ev.Admitted, ev.Rejected, ev.Submitted)
	}
}

func TestSpecShape(t *testing.T) {
	c := testCluster(t, 4)
	d := NewDriver(c, cluster.StandardCatalog(), DefaultMix(), rng.New(1))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		s := d.Spec()
		if s.ID == "" || seen[s.ID] {
			t.Fatalf("bad or duplicate spec ID %q", s.ID)
		}
		seen[s.ID] = true
		if !strings.HasPrefix(s.ObjectName, "obj-") {
			t.Fatalf("object name %q", s.ObjectName)
		}
		if s.DurationSec <= 0 || s.ChunkSec != 1 || s.DeadlineMicros != 2_000_000 {
			t.Fatalf("bad spec %+v", s)
		}
		if s.Importance < 1 || s.Importance > 5 {
			t.Fatalf("importance %d", s.Importance)
		}
	}
}

func TestZipfPopularitySkew(t *testing.T) {
	c := testCluster(t, 4)
	mix := DefaultMix()
	mix.Objects = 20
	mix.ZipfS = 1.0
	d := NewDriver(c, cluster.StandardCatalog(), mix, rng.New(2))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[d.Spec().ObjectName]++
	}
	if counts["obj-0"] < 3*counts["obj-19"] {
		t.Fatalf("no popularity skew: head=%d tail=%d", counts["obj-0"], counts["obj-19"])
	}
}

func TestChurnKillsNodes(t *testing.T) {
	c := testCluster(t, 16)
	protect := map[env.NodeID]bool{0: true}
	Churn(c, rng.New(7), c.Eng.Now(), c.Eng.Now()+30*sim.Second, 0.3, 0.5, protect)
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	if alive := c.Net.NumAlive(); alive >= 16 || alive == 0 {
		t.Fatalf("alive = %d, churn had no effect", alive)
	}
	if !c.Net.Alive(0) {
		t.Fatal("protected node died")
	}
}

func TestJoinsAddNodes(t *testing.T) {
	c := testCluster(t, 8)
	cfg := core.DefaultConfig()
	Joins(c, cluster.StandardCatalog(), rng.New(11), c.Eng.Now(), c.Eng.Now()+20*sim.Second, 0.5, cfg.Qualify, 0.5, 3)
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	if got := len(c.IDs()); got <= 8 {
		t.Fatalf("no joins happened: %d nodes", got)
	}
	// New nodes should eventually join domains.
	joined := c.JoinedCount()
	if joined <= 8 {
		t.Fatalf("joined = %d, newcomers never joined", joined)
	}
}

func TestBurst(t *testing.T) {
	c := testCluster(t, 12)
	d := NewDriver(c, cluster.StandardCatalog(), DefaultMix(), rng.New(13))
	d.RunBurst(c.Eng.Now(), 5*sim.Second, 30)
	c.RunUntil(c.Eng.Now() + 30*sim.Second)
	if ev := c.Events.Snapshot(); ev.Submitted != 30 {
		t.Fatalf("submitted = %d, want 30", ev.Submitted)
	}
}
