package media

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatString(t *testing.T) {
	f := Format{MPEG2, 800, 600, 512}
	if got := f.String(); got != "MPEG-2 800x600@512Kbps" {
		t.Fatalf("String = %q", got)
	}
}

func TestFormatKeyStable(t *testing.T) {
	a := Format{MPEG4, 640, 480, 64}
	b := Format{MPEG4, 640, 480, 64}
	if a.Key() != b.Key() {
		t.Fatal("equal formats produced different keys")
	}
	c := Format{MPEG4, 640, 480, 128}
	if a.Key() == c.Key() {
		t.Fatal("different formats collided")
	}
}

func TestFormatValid(t *testing.T) {
	if !(Format{MPEG2, 1, 1, 1}).Valid() {
		t.Fatal("valid format rejected")
	}
	for _, f := range []Format{
		{"", 1, 1, 1}, {MPEG2, 0, 1, 1}, {MPEG2, 1, 0, 1}, {MPEG2, 1, 1, 0},
	} {
		if f.Valid() {
			t.Fatalf("invalid format %v accepted", f)
		}
	}
}

func TestPixels(t *testing.T) {
	if got := (Format{MPEG2, 800, 600, 512}).Pixels(); got != 480000 {
		t.Fatalf("Pixels = %d", got)
	}
}

func TestSatisfies(t *testing.T) {
	f := Format{MPEG4, 640, 480, 64}
	cases := []struct {
		c    Constraint
		want bool
	}{
		{Constraint{}, true},
		{Constraint{Codecs: []Codec{MPEG4}}, true},
		{Constraint{Codecs: []Codec{MPEG2}}, false},
		{Constraint{Codecs: []Codec{MPEG2, MPEG4}}, true},
		{Constraint{MaxWidth: 640, MaxHeight: 480}, true},
		{Constraint{MaxWidth: 320}, false},
		{Constraint{MaxHeight: 240}, false},
		{Constraint{MinBitrateKbps: 64}, true},
		{Constraint{MinBitrateKbps: 128}, false},
		{Constraint{MaxBitrateKbps: 64}, true},
		{Constraint{MaxBitrateKbps: 32}, false},
	}
	for i, c := range cases {
		if got := f.Satisfies(c.c); got != c.want {
			t.Errorf("case %d: Satisfies(%v) = %v, want %v", i, c.c, got, c.want)
		}
	}
}

func TestConstraintString(t *testing.T) {
	if got := (Constraint{}).String(); got != "any" {
		t.Fatalf("empty constraint = %q", got)
	}
	c := Constraint{Codecs: []Codec{MPEG4}, MaxWidth: 640, MaxHeight: 480, MaxBitrateKbps: 64}
	s := c.String()
	for _, want := range []string{"MPEG-4", "640x480", "64Kbps"} {
		if !strings.Contains(s, want) {
			t.Errorf("constraint string %q missing %q", s, want)
		}
	}
}

func TestCodecComplexity(t *testing.T) {
	if MPEG4.Complexity() <= MPEG2.Complexity() {
		t.Fatal("MPEG-4 should cost more than MPEG-2")
	}
	if RAW.Complexity() >= H263.Complexity() {
		t.Fatal("RAW should be cheapest to encode")
	}
	if Codec("unknown").Complexity() != 1.0 {
		t.Fatal("unknown codec should default to 1.0")
	}
}

func TestTranscoderWorkUnits(t *testing.T) {
	// Downscaling to fewer output pixels must cost less encode work.
	big := Transcoder{
		From: Format{MPEG2, 800, 600, 512},
		To:   Format{MPEG2, 800, 600, 256},
	}
	small := Transcoder{
		From: Format{MPEG2, 800, 600, 512},
		To:   Format{MPEG2, 320, 240, 64},
	}
	if big.WorkUnits() <= small.WorkUnits() {
		t.Fatalf("big=%v small=%v", big.WorkUnits(), small.WorkUnits())
	}
	if small.WorkUnits() <= 0 {
		t.Fatal("work units must be positive")
	}
	// Reference sanity: 640x480 MPEG-2 -> MPEG-2 same size costs ~1.3
	// (1.0 encode + 0.3 decode).
	ref := Transcoder{
		From: Format{MPEG2, 640, 480, 512},
		To:   Format{MPEG2, 640, 480, 256},
	}
	if w := ref.WorkUnits(); w < 1.2 || w > 1.4 {
		t.Fatalf("reference transcode work = %v, want ≈1.3", w)
	}
}

func TestTranscoderKeyAndString(t *testing.T) {
	tr := Transcoder{
		From: Format{MPEG2, 800, 600, 512},
		To:   Format{MPEG4, 640, 480, 64},
	}
	if !strings.Contains(tr.Key(), "->") {
		t.Fatalf("Key = %q", tr.Key())
	}
	if !strings.Contains(tr.String(), "MPEG-4") {
		t.Fatalf("String = %q", tr.String())
	}
	// Keys must distinguish direction.
	rev := Transcoder{From: tr.To, To: tr.From}
	if tr.Key() == rev.Key() {
		t.Fatal("reversed transcoder has same key")
	}
}

func TestObjectDuration(t *testing.T) {
	o := Object{
		Name:   "movie-1",
		Format: Format{MPEG2, 640, 480, 1000},
		Bytes:  1000 * 1000 / 8 * 60, // 60s at 1000Kbps
	}
	if got := o.DurationSeconds(); got < 59.9 || got > 60.1 {
		t.Fatalf("DurationSeconds = %v, want 60", got)
	}
	if o.Key() != "movie-1" {
		t.Fatalf("Key = %q", o.Key())
	}
	zero := Object{Name: "x"}
	if zero.DurationSeconds() != 0 {
		t.Fatal("zero-bitrate duration should be 0")
	}
}

func TestPropertyQuickSatisfiesConsistent(t *testing.T) {
	// A format always satisfies the constraint derived from itself, and
	// never satisfies one demanding a strictly smaller resolution.
	check := func(wRaw, hRaw, brRaw uint16, codecPick uint8) bool {
		codecs := []Codec{MPEG2, MPEG4, H263, RAW}
		f := Format{
			Codec:       codecs[int(codecPick)%len(codecs)],
			Width:       1 + int(wRaw%4096),
			Height:      1 + int(hRaw%4096),
			BitrateKbps: 1 + int(brRaw%8192),
		}
		self := Constraint{
			Codecs:         []Codec{f.Codec},
			MaxWidth:       f.Width,
			MaxHeight:      f.Height,
			MinBitrateKbps: f.BitrateKbps,
			MaxBitrateKbps: f.BitrateKbps,
		}
		if !f.Satisfies(self) {
			return false
		}
		if f.Width > 1 {
			tooSmall := Constraint{MaxWidth: f.Width - 1}
			if f.Satisfies(tooSmall) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuickWorkUnitsPositiveMonotone(t *testing.T) {
	// Transcode work is always positive and grows with output pixels.
	check := func(wRaw, hRaw uint16) bool {
		w := 16 + int(wRaw%2048)
		h := 16 + int(hRaw%2048)
		from := Format{Codec: MPEG2, Width: 800, Height: 600, BitrateKbps: 512}
		small := Transcoder{From: from, To: Format{Codec: MPEG4, Width: w, Height: h, BitrateKbps: 64}}
		big := Transcoder{From: from, To: Format{Codec: MPEG4, Width: w * 2, Height: h, BitrateKbps: 64}}
		return small.WorkUnits() > 0 && big.WorkUnits() > small.WorkUnits()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
