// Package media models the paper's motivating application domain: media
// objects and transcoding services (§1, §4.3). A media stream has a
// format — codec, spatial resolution and bitrate — and transcoder services
// convert between formats at a CPU cost.
//
// Substitution note (see DESIGN.md): the paper transcoded real streams; we
// use a synthetic cost model in which the work of a transcode is
// proportional to the output pixel rate scaled by a per-codec complexity
// factor. The resource-management layer consumes only per-service cost and
// bandwidth numbers, so any monotone cost model exercises identical code
// paths.
package media

import (
	"fmt"
	"strings"
)

// Codec identifies a video codec family.
type Codec string

// Codecs used by the paper's example and the workload generator.
const (
	MPEG2 Codec = "MPEG-2"
	MPEG4 Codec = "MPEG-4"
	H263  Codec = "H.263"
	RAW   Codec = "RAW"
)

// complexity is the relative CPU cost of encoding one pixel in each codec.
var complexity = map[Codec]float64{
	MPEG2: 1.0,
	MPEG4: 1.6, // more sophisticated motion estimation
	H263:  0.8,
	RAW:   0.2,
}

// Complexity returns the relative per-pixel encode cost of c (1.0 for an
// unknown codec).
func (c Codec) Complexity() float64 {
	if f, ok := complexity[c]; ok {
		return f
	}
	return 1.0
}

// Format is one concrete media presentation: a vertex of the paper's
// resource graph is "an application state", which for transcoding is a
// format (Fig. 1).
type Format struct {
	Codec       Codec
	Width       int
	Height      int
	BitrateKbps int
}

// String renders e.g. "MPEG-2 800x600@512Kbps".
func (f Format) String() string {
	return fmt.Sprintf("%s %dx%d@%dKbps", f.Codec, f.Width, f.Height, f.BitrateKbps)
}

// Key returns a stable identifier usable as a map key or Bloom entry.
func (f Format) Key() string {
	return fmt.Sprintf("%s/%dx%d/%d", f.Codec, f.Width, f.Height, f.BitrateKbps)
}

// Pixels returns the spatial size of a frame.
func (f Format) Pixels() int { return f.Width * f.Height }

// Valid reports whether all fields are positive/populated.
func (f Format) Valid() bool {
	return f.Codec != "" && f.Width > 0 && f.Height > 0 && f.BitrateKbps > 0
}

// Satisfies reports whether f meets a requested constraint set: the codec
// must match (if constrained), and resolution and bitrate must not exceed
// the maxima while meeting the minima.
func (f Format) Satisfies(c Constraint) bool {
	if len(c.Codecs) > 0 {
		ok := false
		for _, cd := range c.Codecs {
			if cd == f.Codec {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if c.MaxWidth > 0 && f.Width > c.MaxWidth {
		return false
	}
	if c.MaxHeight > 0 && f.Height > c.MaxHeight {
		return false
	}
	if c.MinBitrateKbps > 0 && f.BitrateKbps < c.MinBitrateKbps {
		return false
	}
	if c.MaxBitrateKbps > 0 && f.BitrateKbps > c.MaxBitrateKbps {
		return false
	}
	return true
}

// Constraint is the acceptable-format set a user attaches to a request
// (§4.3: "a set of acceptable bitrates, resolutions and codecs").
type Constraint struct {
	Codecs         []Codec // empty = any
	MaxWidth       int     // 0 = unbounded
	MaxHeight      int
	MinBitrateKbps int
	MaxBitrateKbps int
}

// String renders the constraint compactly.
func (c Constraint) String() string {
	var parts []string
	if len(c.Codecs) > 0 {
		names := make([]string, len(c.Codecs))
		for i, cd := range c.Codecs {
			names[i] = string(cd)
		}
		parts = append(parts, strings.Join(names, "|"))
	}
	if c.MaxWidth > 0 || c.MaxHeight > 0 {
		parts = append(parts, fmt.Sprintf("<=%dx%d", c.MaxWidth, c.MaxHeight))
	}
	if c.MinBitrateKbps > 0 || c.MaxBitrateKbps > 0 {
		parts = append(parts, fmt.Sprintf("%d-%dKbps", c.MinBitrateKbps, c.MaxBitrateKbps))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, " ")
}

// Transcoder describes one transcoding service: an edge of the resource
// graph (§3.4). A transcoder converts exactly one input format to one
// output format; peers advertise sets of transcoders.
type Transcoder struct {
	From Format
	To   Format
}

// Key returns a stable service identifier, e.g. for Bloom summaries.
func (t Transcoder) Key() string { return t.From.Key() + "->" + t.To.Key() }

// String renders e.g. "T(MPEG-2 800x600@512Kbps -> MPEG-4 640x480@64Kbps)".
func (t Transcoder) String() string { return fmt.Sprintf("T(%s -> %s)", t.From, t.To) }

// WorkUnits returns the abstract CPU work required to transcode one second
// of media through t. Decoding costs a fraction of the input pixel rate;
// encoding dominates and scales with the output pixel rate and codec
// complexity. One work unit ≈ one second of CPU on a speed-1.0 peer for a
// reference 640x480 MPEG-2 encode, so utilization numbers stay intuitive.
func (t Transcoder) WorkUnits() float64 {
	const refPixels = 640 * 480
	decode := 0.3 * float64(t.From.Pixels()) / refPixels * t.From.Codec.Complexity()
	encode := float64(t.To.Pixels()) / refPixels * t.To.Codec.Complexity()
	return decode + encode
}

// Object is a media object stored at a peer (§3.1 item 5): content plus
// meta-data.
type Object struct {
	Name   string // content identifier (e.g. "movie-42")
	Format Format
	Hash   uint64 // synthetic content hash
	Bytes  int64  // storage size
}

// Key returns the inventory key: objects are looked up by name, the format
// is negotiated by transcoding.
func (o Object) Key() string { return o.Name }

// DurationSeconds estimates playing time from size and bitrate.
func (o Object) DurationSeconds() float64 {
	if o.Format.BitrateKbps <= 0 {
		return 0
	}
	return float64(o.Bytes) * 8 / 1000 / float64(o.Format.BitrateKbps)
}
