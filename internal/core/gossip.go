package core

import (
	"sort"

	"repro/internal/bloom"
	"repro/internal/env"
	"repro/internal/fairness"
	"repro/internal/proto"
)

// Inter-domain propagation (§3.1, §4.4): each RM keeps Bloom-filter
// summaries of the objects and services available in other domains,
// "updated lazily using a gossiping protocol". The protocol is a classic
// push-pull anti-entropy: digest -> missing summaries -> wanted
// summaries.
//
// Concurrency audit: the gossip state (rmState.summaries et al.) is
// actor-confined like the rest of rmState — handlers here run only on
// the owning peer's serialized loop, so no mutex or "guarded by mu"
// annotation is warranted.

// buildOwnSummary constructs this domain's current summary.
func (p *Peer) buildOwnSummary() proto.DomainSummary {
	st := p.rm
	objects := bloom.New(p.cfg.BloomM, p.cfg.BloomK)
	services := bloom.New(p.cfg.BloomM, p.cfg.BloomK)
	var utilSum float64
	for _, id := range sortedPeerIDs(st.peers) {
		rec := st.peers[id]
		for _, o := range rec.info.Objects {
			objects.AddString(o.Name)
		}
		for _, s := range rec.info.Services {
			services.AddString(s.Key())
		}
		utilSum += rec.util()
	}
	avg := 0.0
	if len(st.peers) > 0 {
		avg = utilSum / float64(len(st.peers))
	}
	return proto.DomainSummary{
		Domain:       st.domain,
		RM:           p.ctx.Self(),
		Version:      st.version,
		NumPeers:     len(st.peers),
		AvgUtil:      avg,
		ObjectBloom:  objects.Bytes(),
		ServiceBloom: services.Bytes(),
		BloomM:       p.cfg.BloomM,
		BloomK:       p.cfg.BloomK,
	}
}

// bloomFrom reconstructs a summary's object filter.
func bloomFrom(sum proto.DomainSummary) (*bloom.Filter, error) {
	return bloom.FromBytes(sum.ObjectBloom, sum.BloomM, sum.BloomK)
}

// serviceBloomFrom reconstructs a summary's service filter.
func serviceBloomFrom(sum proto.DomainSummary) (*bloom.Filter, error) {
	return bloom.FromBytes(sum.ServiceBloom, sum.BloomM, sum.BloomK)
}

// gossipVersions collects the versions this RM holds, including its own.
func (p *Peer) gossipVersions() map[proto.DomainID]uint64 {
	st := p.rm
	v := make(map[proto.DomainID]uint64, len(st.summaries)+1)
	v[st.domain] = st.version
	for d, sum := range st.summaries {
		v[d] = sum.Version
	}
	return v
}

// rmGossipTick opens one anti-entropy round with a random known RM.
func (p *Peer) rmGossipTick() {
	st := p.rm
	if st == nil {
		return
	}
	p.pruneStaleSummaries()
	if len(st.knownRMs) == 0 {
		return
	}
	// Refresh our own load picture every round so AvgUtil propagates.
	st.bumpVersion()
	domains := sortedMapKeys(st.knownRMs)
	target := st.knownRMs[domains[p.ctx.Rand().Intn(len(domains))]]
	p.ctx.Send(target, proto.GossipDigest{
		From:     proto.RMRef{Domain: st.domain, RM: p.ctx.Self()},
		Versions: p.gossipVersions(),
	})
}

// rmHandleGossipDigest answers with summaries the digest lacks and asks
// for ones where the sender is ahead.
func (p *Peer) rmHandleGossipDigest(from env.NodeID, msg proto.GossipDigest) {
	st := p.rm
	if st == nil {
		return
	}
	st.noteRM(msg.From)
	reply := proto.GossipSummaries{From: proto.RMRef{Domain: st.domain, RM: p.ctx.Self()}}
	mine := p.gossipVersions()
	// Summaries I have that the sender lacks or holds stale.
	for _, d := range sortedMapKeys(mine) {
		v := mine[d]
		theirs, ok := msg.Versions[d]
		if ok && theirs >= v {
			continue
		}
		if d == st.domain {
			reply.Summaries = append(reply.Summaries, p.buildOwnSummary())
		} else if sum, ok := st.summaries[d]; ok {
			reply.Summaries = append(reply.Summaries, sum)
		}
	}
	// Domains where the sender is ahead of me.
	for _, d := range sortedMapKeys(msg.Versions) {
		v := msg.Versions[d]
		if d == st.domain {
			continue
		}
		if cur, ok := mine[d]; !ok || cur < v {
			reply.Want = append(reply.Want, d)
		}
	}
	sort.Slice(reply.Summaries, func(i, j int) bool { return reply.Summaries[i].Domain < reply.Summaries[j].Domain })
	sort.Slice(reply.Want, func(i, j int) bool { return reply.Want[i] < reply.Want[j] })
	p.ctx.Send(from, reply)
}

// rmHandleGossipSummaries installs received summaries and completes the
// push-pull exchange.
func (p *Peer) rmHandleGossipSummaries(from env.NodeID, msg proto.GossipSummaries) {
	st := p.rm
	if st == nil {
		return
	}
	st.noteRM(msg.From)
	for _, sum := range msg.Summaries {
		if sum.Domain == st.domain {
			continue
		}
		// A version at or below the tombstone is a stale copy bouncing back
		// from a peer that has not pruned yet; reinstalling it would let
		// dead domains ping-pong between RMs forever. A genuinely live (or
		// revived) domain bumps its version every gossip round and climbs
		// past the tombstone quickly.
		if pruned, ok := st.summaryPruned[sum.Domain]; ok {
			if sum.Version <= pruned {
				continue
			}
			delete(st.summaryPruned, sum.Domain)
		}
		cur, ok := st.summaries[sum.Domain]
		if !ok || sum.Version > cur.Version {
			st.summaries[sum.Domain] = sum
			// Freshness = version advancement. An equal-version copy is NOT
			// evidence of life: live RMs bump their version every gossip
			// tick, so a frozen version is exactly the death signal.
			st.summarySeen[sum.Domain] = p.ctx.Now()
			st.noteRM(proto.RMRef{Domain: sum.Domain, RM: sum.RM})
		}
	}
	if len(msg.Want) == 0 {
		return
	}
	reply := proto.GossipSummaries{From: proto.RMRef{Domain: st.domain, RM: p.ctx.Self()}}
	for _, d := range msg.Want {
		if d == st.domain {
			reply.Summaries = append(reply.Summaries, p.buildOwnSummary())
		} else if sum, ok := st.summaries[d]; ok {
			reply.Summaries = append(reply.Summaries, sum)
		}
	}
	if len(reply.Summaries) > 0 {
		sort.Slice(reply.Summaries, func(i, j int) bool { return reply.Summaries[i].Domain < reply.Summaries[j].Domain })
		p.ctx.Send(from, reply)
	}
}

// pruneStaleSummaries drops gossiped summaries not refreshed within
// Config.SummaryMaxAge (zero disables aging). Only the cached summary
// ages out; the knownRMs entry survives, so the domain is re-learned on
// the next exchange if it still exists. Deterministic: domains are
// visited in sorted order and timestamps come from the injected clock.
func (p *Peer) pruneStaleSummaries() {
	st := p.rm
	maxAge := p.cfg.SummaryMaxAge
	if st == nil || maxAge <= 0 || len(st.summaries) == 0 {
		return
	}
	now := p.ctx.Now()
	for _, d := range sortedMapKeys(st.summaries) {
		seen, ok := st.summarySeen[d]
		if !ok {
			// Pre-aging entry (e.g. installed before a takeover enabled the
			// feature): stamp it now and give it one full window.
			st.summarySeen[d] = now
			continue
		}
		if now-seen > maxAge {
			st.summaryPruned[d] = st.summaries[d].Version
			delete(st.summaries, d)
			delete(st.summarySeen, d)
		}
	}
}

// SummaryStaleness reports, per known remote domain, how far behind this
// RM's copy is (in versions) given the authoritative RMs — an E8 metric
// computed by the harness, which can see all nodes.
func (p *Peer) SummaryVersions() map[proto.DomainID]uint64 {
	if p.rm == nil {
		return nil
	}
	out := make(map[proto.DomainID]uint64, len(p.rm.summaries))
	for d, s := range p.rm.summaries {
		out[d] = s.Version
	}
	return out
}

// OwnVersion returns this RM's summary version.
func (p *Peer) OwnVersion() uint64 {
	if p.rm == nil {
		return 0
	}
	return p.rm.version
}

// fairnessIndex is a tiny alias keeping rm.go free of the import.
func fairnessIndex(loads []float64) float64 { return fairness.Index(loads) }
