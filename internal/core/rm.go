package core

import (
	"fmt"
	"sort"

	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/media"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rmState is the Resource-Manager role state (§3.1): full knowledge of
// the domain's peers, objects, services, resource graph and running
// sessions, plus gossiped summaries of other domains.
//
// Concurrency audit: rmState carries no mutex on purpose. It is owned by
// the peer's actor loop — every read and write happens inside a Receive
// or timer callback serialized by the hosting runtime (sim engine or
// live mailbox) — so the lockfield discipline does not apply here; the
// mutex-guarded shared state lives in Events, trace.Tracer, and
// metrics.Registry.
type rmState struct {
	domain proto.DomainID

	peers   map[env.NodeID]*peerRecord
	order   []env.NodeID // fairness/graph index -> NodeID, rebuilt with the graph
	indexOf map[env.NodeID]int

	gr        *graph.ResourceGraph
	formats   map[string]media.Format // vertex key -> format
	grDirty   bool
	grBuiltAt sim.Time

	sessions map[string]*rmSession

	backup env.NodeID

	knownRMs      map[proto.DomainID]env.NodeID
	summaries     map[proto.DomainID]proto.DomainSummary
	summarySeen   map[proto.DomainID]sim.Time // when each summary last advanced a version
	summaryPruned map[proto.DomainID]uint64   // tombstones: versions aged out, not to be reinstalled
	version       uint64

	hbSeq       uint64
	outstanding map[env.NodeID]int     // consecutive unanswered heartbeats
	hbSent      map[uint64]sim.Time    // probe send times for RTT measurement
	rttMicros   map[env.NodeID]float64 // smoothed per-peer round-trip times

	timers []env.Cancel
}

// peerRecord is the RM's view of one domain member (§3.1 items 2-6).
type peerRecord struct {
	info       proto.PeerInfo
	load       float64
	bw         float64
	lastReport sim.Time
}

// util returns the record's relative load.
func (r *peerRecord) util() float64 { return r.load / r.info.SpeedWU }

// loadDelta remembers load the RM applied to its view for a session, to
// be released on completion or abort.
type loadDelta struct {
	peer env.NodeID
	work float64
}

// Session lifecycle at the RM.
const (
	sessComposing = iota
	sessRunning
)

type rmSession struct {
	desc    proto.SessionDesc
	spec    proto.TaskSpec
	goalKey string
	state   int

	pendingAcks  map[int]bool // roles awaiting ComposeAck
	composeTimer env.Cancel
	applied      []loadDelta
	repairStart  sim.Time // nonzero while a repair recompose is in flight
	// fairness is the allocator's objective value at admission, kept for
	// the decision audit's utility delta.
	fairness float64
}

// sortedKnownRMs returns the known remote RMs in domain order, so map
// iteration order never leaks into message ordering.
func (s *rmState) sortedKnownRMs() []proto.RMRef {
	out := make([]proto.RMRef, 0, len(s.knownRMs))
	for _, d := range sortedMapKeys(s.knownRMs) {
		out = append(out, proto.RMRef{Domain: d, RM: s.knownRMs[d]})
	}
	return out
}

func (s *rmState) stopTimers() {
	for _, c := range s.timers {
		c()
	}
	s.timers = nil
}

// becomeFounder makes this peer the Resource Manager of domain 0 (the
// first node of the overlay).
func (p *Peer) becomeFounder() {
	p.startRM(0, nil, nil, nil)
	p.joined = true
	p.startMemberTimers()
	p.events.domainCreated(0)
}

// foundDomain starts a new domain after a BecomeRM promotion (§4.1).
func (p *Peer) foundDomain(id proto.DomainID, known []proto.RMRef) {
	p.startRM(id, known, nil, nil)
	p.joined = true
	p.startMemberTimers()
	p.events.domainCreated(id)
}

// takeover promotes this backup to Resource Manager using the replicated
// state (§4.1).
func (p *Peer) takeover() {
	st := p.backupState
	p.backupState = nil
	detectionLag := p.ctx.Now() - p.lastRMContact
	p.events.failover(st.Domain, int64(p.ctx.Now()), int64(detectionLag))
	if tr := p.events.Tracer(); tr != nil {
		tr.Instant(int64(p.ctx.Now()), "", "failover", int(p.ctx.Self()), int(st.Domain),
			trace.A("detection_micros", int64(detectionLag)))
	}
	p.events.decide(Decision{TSMicros: int64(p.ctx.Now()), Node: int(p.ctx.Self()),
		Domain: int(st.Domain), Action: DecisionFailover, Reason: "rm silent past heartbeat timeout"})
	var known []proto.RMRef
	for _, ref := range st.KnownRMs {
		known = append(known, ref)
	}
	p.startRM(st.Domain, known, st.Peers, st.Sessions)
	p.ctx.Logf("took over as RM of domain %d (%d peers, %d sessions)",
		st.Domain, len(st.Peers), len(st.Sessions))
	// Tell everyone — domain members fix their RM pointer, remote RMs fix
	// their gossip target.
	ann := proto.TakeoverAnnounce{Domain: st.Domain, NewRM: p.ctx.Self(), Backup: p.rm.backup}
	for _, id := range sortedPeerIDs(p.rm.peers) {
		if id != p.ctx.Self() {
			p.ctx.Send(id, ann)
		}
	}
	for _, ref := range p.rm.sortedKnownRMs() {
		p.ctx.Send(ref.RM, ann)
	}
}

// startRM initializes RM state. snapshot/sessions are non-nil only on
// takeover.
func (p *Peer) startRM(id proto.DomainID, known []proto.RMRef, snapshot []proto.PeerSnapshot, sessions []proto.SessionDesc) {
	p.domain = id
	p.rmID = p.ctx.Self()
	st := &rmState{
		domain:        id,
		peers:         make(map[env.NodeID]*peerRecord),
		indexOf:       make(map[env.NodeID]int),
		formats:       make(map[string]media.Format),
		sessions:      make(map[string]*rmSession),
		backup:        env.NoNode,
		knownRMs:      make(map[proto.DomainID]env.NodeID),
		summaries:     make(map[proto.DomainID]proto.DomainSummary),
		summarySeen:   make(map[proto.DomainID]sim.Time),
		summaryPruned: make(map[proto.DomainID]uint64),
		outstanding:   make(map[env.NodeID]int),
		hbSent:        make(map[uint64]sim.Time),
		rttMicros:     make(map[env.NodeID]float64),
		grDirty:       true,
	}
	p.rm = st
	// The RM is itself a processing peer of its domain (§2).
	self := p.info
	self.ID = p.ctx.Self()
	st.peers[p.ctx.Self()] = &peerRecord{info: self, lastReport: p.ctx.Now()}
	for _, ref := range known {
		if ref.RM != p.ctx.Self() {
			st.knownRMs[ref.Domain] = ref.RM
		}
	}
	for _, ps := range snapshot {
		if ps.Info.ID == p.ctx.Self() {
			continue
		}
		st.peers[ps.Info.ID] = &peerRecord{info: ps.Info, load: ps.Load, lastReport: p.ctx.Now()}
	}
	for _, d := range sessions {
		st.sessions[d.TaskID] = &rmSession{desc: d, state: sessRunning,
			applied: appliedFromDesc(d), spec: proto.TaskSpec{ID: d.TaskID, Origin: d.Origin, ObjectName: d.ObjectName, ChunkSec: d.ChunkSec, Importance: d.Importance}}
		// Inherited sessions carry their trace context in the replicated
		// descriptor; bind it so post-takeover spans stay stitched.
		p.adoptTC(d.TaskID, d.TC)
	}
	st.electBackup(p)
	st.bumpVersion()

	cfg := p.cfg
	st.timers = append(st.timers,
		env.Every(p.ctx, cfg.HeartbeatPeriod, cfg.HeartbeatPeriod, p.rmHeartbeatTick),
		env.Every(p.ctx, cfg.BackupSyncPeriod, cfg.BackupSyncPeriod, p.rmBackupSyncTick),
		env.Every(p.ctx, cfg.ProfilePeriod, cfg.ProfilePeriod, p.rmOwnProfileTick),
	)
	p.disc.StartRM()
	if cfg.AdaptPeriod > 0 {
		st.timers = append(st.timers, env.Every(p.ctx, cfg.AdaptPeriod, cfg.AdaptPeriod, p.rmAdaptTick))
	}
}

// appliedFromDesc reconstructs the load deltas of an inherited session.
func appliedFromDesc(d proto.SessionDesc) []loadDelta {
	var out []loadDelta
	for _, s := range d.Stages {
		out = append(out, loadDelta{peer: s.Peer, work: s.Work})
	}
	return out
}

func (s *rmState) bumpVersion() { s.version++ }

// electBackup picks the highest-scoring qualified member as backup RM
// (§4.1: "the first peer in the list serves as backup Resource Manager").
func (s *rmState) electBackup(p *Peer) {
	best := env.NoNode
	bestScore := -1.0
	for _, id := range sortedPeerIDs(s.peers) {
		if id == p.ctx.Self() {
			continue
		}
		rec := s.peers[id]
		if !rec.info.Qualifies(p.cfg.Qualify) {
			continue
		}
		// Strictly-greater keeps the lowest ID among equal scores, making
		// the election deterministic.
		if sc := rec.info.Score(); sc > bestScore {
			best, bestScore = id, sc
		}
	}
	s.backup = best
}

// noteRM records a newly learned Resource Manager.
func (s *rmState) noteRM(ref proto.RMRef) {
	if ref.Domain == s.domain {
		return
	}
	s.knownRMs[ref.Domain] = ref.RM
	if sum, ok := s.summaries[ref.Domain]; ok && sum.RM != ref.RM {
		sum.RM = ref.RM
		s.summaries[ref.Domain] = sum
	}
}

// --- membership handling (§4.1) ---

// rmHandleJoin runs the ultrapeer-style join negotiation.
func (p *Peer) rmHandleJoin(from env.NodeID, msg proto.Join) {
	if p.rm == nil {
		// Not an RM: redirect to ours ("connects ... to a random peer who
		// redirects it to the Resource Manager") — unless our RM has gone
		// silent, in which case pointing the joiner at a dead node only
		// feeds a retry storm.
		if p.joined && p.rmID != env.NoNode && !p.awaitingAnnounce {
			p.ctx.Send(from, proto.JoinRedirect{Target: p.rmID, Reason: "not-an-rm"})
		}
		return
	}
	st := p.rm
	if rec, ok := st.peers[from]; ok {
		// Re-join: a retry after a lost accept, or a member pushing a
		// catalog change. Refresh info; only a real catalog change dirties
		// the graph and re-advertises (plain retries differ just in uptime).
		changed := !catalogEqual(rec.info, msg.Info)
		rec.info = msg.Info
		if changed {
			st.grDirty = true
			st.bumpVersion()
			p.disc.CatalogChanged()
		}
		p.sendAccept(from)
		return
	}
	if len(st.peers) < p.cfg.MaxDomainPeers {
		st.peers[from] = &peerRecord{info: msg.Info, lastReport: p.ctx.Now()}
		st.grDirty = true
		st.electBackup(p)
		st.bumpVersion()
		p.disc.CatalogChanged()
		p.sendAccept(from)
		return
	}
	// Domain full. A qualified newcomer founds a new domain.
	if msg.Info.Qualifies(p.cfg.Qualify) {
		newDomain := proto.DomainID(from)
		refs := []proto.RMRef{{Domain: st.domain, RM: p.ctx.Self()}}
		refs = append(refs, st.sortedKnownRMs()...)
		st.noteRM(proto.RMRef{Domain: newDomain, RM: from})
		p.ctx.Send(from, proto.BecomeRM{NewDomain: newDomain, KnownRMs: refs})
		return
	}
	// Unqualified: redirect to the least-utilized other domain with
	// capacity — unless the joiner has already been bounced around, in
	// which case admit past the cap rather than strand it.
	if msg.Hops < p.cfg.MaxRedirects {
		if target := p.disc.RedirectRM(p.cfg.MaxDomainPeers); target != env.NoNode {
			p.ctx.Send(from, proto.JoinRedirect{Target: target, Reason: "domain-full"})
			return
		}
	}
	// Nowhere to send them: stretch the cap rather than strand the peer.
	st.peers[from] = &peerRecord{info: msg.Info, lastReport: p.ctx.Now()}
	st.grDirty = true
	st.bumpVersion()
	p.disc.CatalogChanged()
	p.sendAccept(from)
}

// sendAccept sends JoinAccept with the member list as fallback contacts.
func (p *Peer) sendAccept(to env.NodeID) {
	st := p.rm
	members := make([]env.NodeID, 0, len(st.peers))
	for _, id := range sortedPeerIDs(st.peers) {
		if id != to {
			members = append(members, id)
		}
	}
	p.ctx.Send(to, proto.JoinAccept{
		Domain: st.domain,
		RM:     p.ctx.Self(),
		Backup: st.backup,
		Peers:  members,
	})
}

// rmHandleLeave processes a graceful departure.
func (p *Peer) rmHandleLeave(from env.NodeID) {
	if p.rm == nil {
		return
	}
	p.rmRemovePeer(from, "leave")
}

// rmRemovePeer drops a peer from the domain and repairs affected state
// (§4.1: update objects/services, resource graph, and substitute the peer
// in interrupted service graphs).
func (p *Peer) rmRemovePeer(id env.NodeID, reason string) {
	st := p.rm
	if _, ok := st.peers[id]; !ok {
		return
	}
	delete(st.peers, id)
	delete(st.outstanding, id)
	st.grDirty = true
	st.bumpVersion()
	p.disc.CatalogChanged()
	if st.backup == id {
		st.electBackup(p)
	}
	p.events.peerDead(p.domain)
	if tr := p.events.Tracer(); tr != nil {
		tr.Instant(int64(p.ctx.Now()), "", "peer-dead", int(id), int(p.domain),
			trace.A("reason", reason))
	}
	p.ctx.Logf("peer n%d removed (%s)", id, reason)
	// Repair every session whose pipeline used the peer (§4.1).
	for _, sess := range sortedSessions(st.sessions) {
		if sess.desc.UsesPeer(id) {
			p.repairSession(sess, id)
		}
	}
}

// sortedSessions returns sessions in deterministic task-ID order.
func sortedSessions(m map[string]*rmSession) []*rmSession {
	keys := sortedMapKeys(m)
	out := make([]*rmSession, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// rmHeartbeatTick probes every member and declares silent ones dead.
func (p *Peer) rmHeartbeatTick() {
	st := p.rm
	if st == nil {
		return
	}
	st.hbSeq++
	st.hbSent[st.hbSeq] = p.ctx.Now()
	delete(st.hbSent, st.hbSeq-8) // keep a short probe history
	var dead []env.NodeID
	for _, id := range sortedPeerIDs(st.peers) {
		if id == p.ctx.Self() {
			continue
		}
		st.outstanding[id]++
		if st.outstanding[id] > p.cfg.HeartbeatMisses {
			dead = append(dead, id)
			continue
		}
		p.ctx.Send(id, proto.HeartbeatReq{Seq: st.hbSeq, Backup: st.backup})
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, id := range dead {
		p.rmRemovePeer(id, "heartbeat-timeout")
	}
}

// rmHandleHeartbeatAck clears the outstanding counter and folds the
// probe round-trip into the per-peer communication-time estimate (§3.2:
// the system monitors communication times as applications execute; the
// RM uses them as the per-hop latency of resource-graph edges).
func (p *Peer) rmHandleHeartbeatAck(from env.NodeID, msg proto.HeartbeatAck) {
	st := p.rm
	if st == nil {
		return
	}
	st.outstanding[from] = 0
	if sent, ok := st.hbSent[msg.Seq]; ok {
		rtt := float64(p.ctx.Now() - sent)
		const alpha = 0.3
		if cur, ok := st.rttMicros[from]; ok {
			st.rttMicros[from] = alpha*rtt + (1-alpha)*cur
		} else {
			st.rttMicros[from] = rtt
		}
	}
}

// edgeLatencyMicros returns the RM's best per-hop latency estimate for a
// peer: half the measured heartbeat RTT when available, otherwise the
// configured prior.
func (st *rmState) edgeLatencyMicros(id env.NodeID, prior int64) int64 {
	if rtt, ok := st.rttMicros[id]; ok && rtt > 0 {
		return int64(rtt / 2)
	}
	return prior
}

// rmHandleProfile folds a member's report into the domain view (§4.4).
func (p *Peer) rmHandleProfile(from env.NodeID, msg proto.ProfileUpdate) {
	st := p.rm
	if st == nil {
		return
	}
	rec, ok := st.peers[from]
	if !ok {
		return
	}
	rec.load = msg.Report.Load
	rec.bw = msg.Report.BandwidthKbps
	rec.lastReport = msg.Report.At
	st.outstanding[from] = 0 // a report is as good as a heartbeat ack
	p.events.peerLoad(st.domain, int(from), rec.load, rec.util())
}

// rmOwnProfileTick refreshes the RM's own record directly.
func (p *Peer) rmOwnProfileTick() {
	st := p.rm
	if st == nil {
		return
	}
	if rec, ok := st.peers[p.ctx.Self()]; ok {
		rec.load = p.prof.Load()
		rec.bw = p.prof.Bandwidth()
		rec.lastReport = p.ctx.Now()
		p.events.peerLoad(st.domain, int(p.ctx.Self()), rec.load, rec.util())
	}
}

// rmBackupSyncTick replicates state to the backup RM.
func (p *Peer) rmBackupSyncTick() {
	st := p.rm
	if st == nil || st.backup == env.NoNode {
		return
	}
	p.ctx.Send(st.backup, proto.BackupSync{State: p.rmSnapshot()})
}

// rmSnapshot captures the replicated DomainState.
func (p *Peer) rmSnapshot() proto.DomainState {
	st := p.rm
	ds := proto.DomainState{Domain: st.domain, Version: st.version}
	for _, id := range sortedPeerIDs(st.peers) {
		rec := st.peers[id]
		ds.Peers = append(ds.Peers, proto.PeerSnapshot{Info: rec.info, Load: rec.load})
	}
	for _, sess := range sortedSessions(st.sessions) {
		if sess.state == sessRunning {
			ds.Sessions = append(ds.Sessions, sess.desc)
		}
	}
	ds.KnownRMs = append(ds.KnownRMs, proto.RMRef{Domain: st.domain, RM: p.ctx.Self()})
	for _, d := range sortedMapKeys(st.knownRMs) {
		ds.KnownRMs = append(ds.KnownRMs, proto.RMRef{Domain: d, RM: st.knownRMs[d]})
	}
	sort.Slice(ds.KnownRMs, func(i, j int) bool { return ds.KnownRMs[i].Domain < ds.KnownRMs[j].Domain })
	return ds
}

func sortedPeerIDs(m map[env.NodeID]*peerRecord) []env.NodeID {
	return sortedMapKeys(m)
}

// --- resource graph maintenance (§3.4) ---

// graphRefreshPeriod bounds how stale the resource graph's measured edge
// latencies may get before an allocation rebuilds it.
const graphRefreshPeriod = 5 * sim.Second

// freshGraph rebuilds G_r when membership changed or the measured
// latencies are stale.
func (p *Peer) freshGraph() {
	if p.rm.grDirty || p.ctx.Now()-p.rm.grBuiltAt > graphRefreshPeriod {
		p.rebuildGraph()
	}
}

// rebuildGraph reconstructs G_r from the current membership: one edge per
// (peer, transcoder), vertices for every format seen.
func (p *Peer) rebuildGraph() {
	st := p.rm
	st.grBuiltAt = p.ctx.Now()
	st.order = sortedPeerIDs(st.peers)
	st.indexOf = make(map[env.NodeID]int, len(st.order))
	for i, id := range st.order {
		st.indexOf[id] = i
	}
	st.gr = graph.NewResourceGraph()
	st.formats = make(map[string]media.Format)
	addFormat := func(f media.Format) graph.VertexID {
		v := st.gr.AddVertex(f.Key(), f.String())
		st.formats[f.Key()] = f
		return v
	}
	for i, id := range st.order {
		rec := st.peers[id]
		for _, obj := range rec.info.Objects {
			addFormat(obj.Format)
		}
		for _, tr := range rec.info.Services {
			from := addFormat(tr.From)
			to := addFormat(tr.To)
			st.gr.AddEdge(graph.Edge{
				From:          from,
				To:            to,
				Peer:          i,
				Service:       tr.Key(),
				Work:          tr.WorkUnits(),
				LatencyMicros: st.edgeLatencyMicros(id, p.cfg.LatencyEstimateMicros),
			})
		}
	}
	st.grDirty = false
}

// peerView snapshots the domain loads in graph index order.
func (st *rmState) peerView() *graph.PeerView {
	pv := &graph.PeerView{
		Load:  make([]float64, len(st.order)),
		Speed: make([]float64, len(st.order)),
	}
	for i, id := range st.order {
		rec := st.peers[id]
		pv.Load[i] = rec.load
		pv.Speed[i] = rec.info.SpeedWU
	}
	return pv
}

// --- task admission and allocation (§4.3, §4.5) ---

// rmHandleSubmit admits, redirects or rejects a task query.
func (p *Peer) rmHandleSubmit(from env.NodeID, msg proto.TaskSubmit) {
	st := p.rm
	if st == nil {
		// Misdirected: point the sender at our RM.
		if p.joined && p.rmID != env.NoNode && p.rmID != p.ctx.Self() {
			p.ctx.Send(p.rmID, msg)
		}
		return
	}
	spec := msg.Spec
	p.adoptTC(spec.ID, msg.TC)
	if spec.ChunkSec <= 0 {
		spec.ChunkSec = p.cfg.DefaultChunkSec
	}
	sess, sr, why := p.rmAllocate(spec)
	if sess != nil {
		st.sessions[spec.ID] = sess
		p.events.admitted(p.domain)
		p.events.decide(Decision{TSMicros: int64(p.ctx.Now()), Task: spec.ID,
			Node: int(p.ctx.Self()), Domain: int(p.domain), Action: DecisionAdmit,
			UtilityDelta: sr.alloc.Fairness, Candidates: sr.considered})
		p.composeSession(sess)
		return
	}
	// No allocation with current resources. With preemption enabled, try
	// sacrificing a running lower-importance session (Importance_t,
	// §3.3): probe feasibility with the victim's load removed before
	// actually aborting anything.
	if p.cfg.PreemptLowImportance {
		if sess := p.tryPreemptFor(spec); sess != nil {
			st.sessions[spec.ID] = sess
			p.events.admitted(p.domain)
			p.events.decide(Decision{TSMicros: int64(p.ctx.Now()), Task: spec.ID,
				Node: int(p.ctx.Self()), Domain: int(p.domain), Action: DecisionAdmit,
				Reason: "after preemption", UtilityDelta: sess.fairness})
			p.composeSession(sess)
			return
		}
	}
	// Otherwise redirect toward a domain advertising the object (§4.5),
	// bounded by MaxRedirects. The discovery backend resolves the target —
	// synchronously from gossiped summaries, or via an iterative DHT
	// lookup whose continuation re-validates the RM role (the peer may
	// have been demoted or taken over while the walk was in flight).
	reject := func() {
		p.ctx.Logf("task %s rejected: %s", spec.ID, why)
		p.events.decide(Decision{TSMicros: int64(p.ctx.Now()), Task: spec.ID,
			Node: int(p.ctx.Self()), Domain: int(p.domain), Action: DecisionReject,
			Reason: why, Candidates: sr.considered})
		p.rejectUpstream(spec.ID, spec.Origin, why)
	}
	if msg.Hops < p.cfg.MaxRedirects {
		hops := msg.Hops
		p.disc.LookupObject(spec.ID, spec.ObjectName, p.traceCtx(spec.ID, "lookup"), func(target env.NodeID) {
			if p.rm != st {
				return
			}
			if target == env.NoNode {
				reject()
				return
			}
			p.events.redirected(p.domain)
			if tr := p.events.Tracer(); tr != nil {
				tr.Instant(int64(p.ctx.Now()), spec.ID, "redirect", int(p.ctx.Self()), int(p.domain),
					trace.A("target_rm", int(target)), trace.A("hops", hops+1))
			}
			p.events.decide(Decision{TSMicros: int64(p.ctx.Now()), Task: spec.ID,
				Node: int(p.ctx.Self()), Domain: int(p.domain), Action: DecisionRedirect,
				Reason: why, Candidates: sr.considered})
			p.ctx.Send(target, proto.TaskSubmit{Spec: spec, Hops: hops + 1,
				TC: p.traceCtx(spec.ID, "redirect")})
		})
		return
	}
	reject()
}

// searchResult is the outcome of the Figure-3 search over goal states.
type searchResult struct {
	alloc   graph.Allocation
	goal    graph.VertexID
	obj     media.Object
	srcPeer env.NodeID
	// considered lists the goal formats evaluated but not chosen — the
	// considered-but-rejected candidate set of the decision audit.
	considered []string
}

// rmSearch runs the Figure-3 search without side effects: locate the
// object (least-loaded holder as source), enumerate goal states
// satisfying the constraint, allocate with the configured strategy
// against the given load view, and keep the fairest feasible result.
func (p *Peer) rmSearch(spec proto.TaskSpec, pv *graph.PeerView) (searchResult, string) {
	st := p.rm
	var res searchResult
	res.srcPeer = env.NoNode
	srcUtil := 0.0
	for _, id := range st.order {
		rec := st.peers[id]
		for _, o := range rec.info.Objects {
			if o.Name == spec.ObjectName {
				if res.srcPeer == env.NoNode || rec.util() < srcUtil {
					res.obj, res.srcPeer, srcUtil = o, id, rec.util()
				}
			}
		}
	}
	if res.srcPeer == env.NoNode {
		return res, "object not in domain"
	}
	vInit, ok := st.gr.Lookup(res.obj.Format.Key())
	if !ok {
		return res, "object format not in resource graph"
	}
	// Goal candidates: every known format state satisfying the constraint.
	var goals []graph.VertexID
	for _, key := range sortedMapKeys(st.formats) {
		if st.formats[key].Satisfies(spec.Constraint) {
			if v, ok := st.gr.Lookup(key); ok {
				goals = append(goals, v)
			}
		}
	}
	if len(goals) == 0 {
		return res, "no format satisfies the constraint"
	}
	sort.Slice(goals, func(i, j int) bool { return goals[i] < goals[j] })

	req := graph.Request{
		Init:           vInit,
		DeadlineMicros: spec.DeadlineMicros,
		ChunkSeconds:   spec.ChunkSec,
	}
	started := p.nanotime()
	res.goal = graph.VertexID(-1)
	found := false
	for _, g := range goals {
		req.Goal = g
		alloc, err := p.cfg.Allocator.Allocate(st.gr, req, pv)
		if err != nil {
			continue
		}
		if !found || alloc.Fairness > res.alloc.Fairness ||
			(alloc.Fairness == res.alloc.Fairness && len(alloc.Path) < len(res.alloc.Path)) {
			res.alloc, res.goal, found = alloc, g, true
		}
	}
	allocNanos := p.nanotime() - started
	for _, g := range goals {
		if !found || g != res.goal {
			res.considered = append(res.considered, st.gr.Vertex(g).Key)
		}
	}
	p.events.allocCost(p.domain, int64(p.ctx.Now()), allocNanos)
	if tr := p.events.Tracer(); tr != nil {
		// ts is the virtual/wall clock of the run; dur is the real
		// computation cost (virtual time does not advance while the
		// allocator runs under simulation).
		tr.Complete(int64(p.ctx.Now()), allocNanos/1e3, spec.ID, "allocate",
			int(p.ctx.Self()), int(p.domain), trace.A("goals", len(goals)))
	}
	if !found {
		return res, "no allocation satisfies the QoS requirements"
	}
	return res, ""
}

// rmAllocate runs the search against the current view and materializes a
// session from the result. The searchResult is returned alongside so
// callers can audit what was considered even when allocation fails.
func (p *Peer) rmAllocate(spec proto.TaskSpec) (*rmSession, searchResult, string) {
	st := p.rm
	p.freshGraph()
	sr, why := p.rmSearch(spec, st.peerView())
	if why != "" {
		return nil, sr, why
	}
	best, bestGoal, obj, srcPeer := sr.alloc, sr.goal, sr.obj, sr.srcPeer

	// Build the session descriptor (the service graph G_s).
	dur := spec.DurationSec
	if dur <= 0 {
		dur = obj.DurationSeconds()
	}
	if dur <= 0 {
		dur = 10
	}
	numChunks := int(dur/spec.ChunkSec + 0.5)
	if numChunks < 1 {
		numChunks = 1
	}
	desc := proto.SessionDesc{
		TaskID:            spec.ID,
		RM:                p.ctx.Self(),
		Origin:            spec.Origin,
		SourcePeer:        srcPeer,
		ObjectName:        spec.ObjectName,
		SourceBitrateKbps: obj.Format.BitrateKbps,
		ChunkSec:          spec.ChunkSec,
		NumChunks:         numChunks,
		StartupDeadline:   sim.Time(spec.DeadlineMicros),
		PlaybackBase:      p.ctx.Now() + sim.Time(spec.DeadlineMicros),
		Importance:        spec.Importance,
		TC:                p.traceCtx(spec.ID, "allocate"),
	}
	var applied []loadDelta
	for _, eid := range best.Path {
		e := st.gr.Edge(eid)
		fromF := st.formats[st.gr.Vertex(e.From).Key]
		toF := st.formats[st.gr.Vertex(e.To).Key]
		peerID := st.order[e.Peer]
		desc.Stages = append(desc.Stages, proto.StageDesc{
			Peer:           peerID,
			Service:        e.Service,
			Work:           e.Work,
			InBitrateKbps:  fromF.BitrateKbps,
			OutBitrateKbps: toF.BitrateKbps,
		})
		applied = append(applied, loadDelta{peer: peerID, work: e.Work})
	}
	sess := &rmSession{
		desc:     desc,
		spec:     spec,
		goalKey:  st.gr.Vertex(bestGoal).Key,
		state:    sessComposing,
		applied:  applied,
		fairness: best.Fairness,
	}
	p.applyLoads(applied, +1)
	return sess, sr, ""
}

// tryPreemptFor looks for a running session with lower importance whose
// removal would make spec feasible; if one exists it is aborted and the
// allocation re-run. Returns the new session or nil.
func (p *Peer) tryPreemptFor(spec proto.TaskSpec) *rmSession {
	st := p.rm
	p.freshGraph()
	// Victims: running sessions strictly less important, cheapest
	// importance first, deterministic order.
	var victims []*rmSession
	for _, sess := range sortedSessions(st.sessions) {
		if sess.state == sessRunning && sess.desc.Importance < spec.Importance {
			victims = append(victims, sess)
		}
	}
	sort.SliceStable(victims, func(i, j int) bool {
		return victims[i].desc.Importance < victims[j].desc.Importance
	})
	var probed []string
	for _, victim := range victims {
		// Hypothetical view without the victim's load.
		p.applyLoads(victim.applied, -1)
		_, why := p.rmSearch(spec, st.peerView())
		p.applyLoads(victim.applied, +1)
		if why != "" {
			probed = append(probed, victim.desc.TaskID)
			continue
		}
		p.abortSession(victim, "preempted", true)
		p.events.preemption(p.domain)
		if tr := p.events.Tracer(); tr != nil {
			tr.Instant(int64(p.ctx.Now()), victim.desc.TaskID, "preempt", int(p.ctx.Self()), int(p.domain),
				trace.A("for_task", spec.ID))
		}
		p.events.decide(Decision{TSMicros: int64(p.ctx.Now()), Task: victim.desc.TaskID,
			Node: int(p.ctx.Self()), Domain: int(p.domain), Action: DecisionPreempt,
			Reason: "for " + spec.ID, Candidates: probed})
		p.ctx.Logf("preempted %s (importance %d) for %s (importance %d)",
			victim.desc.TaskID, victim.desc.Importance, spec.ID, spec.Importance)
		sess, _, _ := p.rmAllocate(spec)
		return sess
	}
	return nil
}

// applyLoads adjusts the RM's load view by the session's deltas.
func (p *Peer) applyLoads(deltas []loadDelta, sign float64) {
	for _, d := range deltas {
		if rec, ok := p.rm.peers[d.peer]; ok {
			rec.load += sign * d.work
			if rec.load < 0 {
				rec.load = 0
			}
		}
	}
}

// composeSession sends the graph-composition messages (§4.3) and arms the
// ack timeout.
func (p *Peer) composeSession(sess *rmSession) {
	d := sess.desc
	sess.state = sessComposing
	if tr := p.events.Tracer(); tr != nil {
		tr.BeginPhase(int64(p.ctx.Now()), d.TaskID, "compose", int(p.ctx.Self()), int(p.domain),
			trace.A("stages", len(d.Stages)), trace.A("generation", d.Generation))
	}
	sess.pendingAcks = map[int]bool{proto.RoleSource: true, proto.RoleSink: true}
	p.sendOrLoop(d.SourcePeer, proto.GraphCompose{Session: d, Role: proto.RoleSource})
	p.sendOrLoop(d.Origin, proto.GraphCompose{Session: d, Role: proto.RoleSink})
	for i := range d.Stages {
		sess.pendingAcks[i] = true
		p.sendOrLoop(d.Stages[i].Peer, proto.GraphCompose{Session: d, Role: i})
	}
	taskID, gen := d.TaskID, d.Generation
	sess.composeTimer = p.ctx.After(p.cfg.ComposeTimeout, func() {
		p.composeTimedOut(taskID, gen)
	})
}

// sendOrLoop delivers a message, short-circuiting sends to self (the RM
// can be a session participant).
func (p *Peer) sendOrLoop(to env.NodeID, m env.Message) {
	if to == p.ctx.Self() {
		p.Receive(p.ctx.Self(), m)
		return
	}
	p.ctx.Send(to, m)
}

// composeTimedOut aborts a session whose participants never all acked.
func (p *Peer) composeTimedOut(taskID string, gen int) {
	st := p.rm
	if st == nil {
		return
	}
	sess, ok := st.sessions[taskID]
	if !ok || sess.state != sessComposing || sess.desc.Generation != gen {
		return
	}
	origin := sess.spec.Origin
	p.abortSession(sess, "compose-timeout", false)
	p.rejectUpstream(taskID, origin, "session composition timed out")
}

// abortSession tears a session down everywhere. final=true makes the
// sink finalize and report the partial stream (mid-stream failures and
// preemptions); final=false discards silently (sessions that never
// started streaming).
func (p *Peer) abortSession(sess *rmSession, reason string, final bool) {
	st := p.rm
	d := sess.desc
	if sess.composeTimer != nil {
		sess.composeTimer()
	}
	p.applyLoads(sess.applied, -1)
	delete(st.sessions, d.TaskID)
	if !final {
		// No sink report will ever exist for this task; account for it so
		// submissions never silently vanish.
		p.events.aborted(p.domain)
	}
	if tr := p.events.Tracer(); tr != nil {
		tr.Instant(int64(p.ctx.Now()), d.TaskID, "abort", int(p.ctx.Self()), int(p.domain),
			trace.A("reason", reason), trace.A("final", final))
		if !final {
			tr.EndSession(int64(p.ctx.Now()), d.TaskID, int(p.ctx.Self()), int(p.domain), "aborted",
				trace.A("reason", reason))
		}
	}
	abort := proto.SessionAbort{TaskID: d.TaskID, Generation: d.Generation, Reason: reason,
		Final: final, TC: p.traceCtx(d.TaskID, "abort")}
	sent := map[env.NodeID]bool{}
	for _, peer := range d.PipelinePeers() {
		if !sent[peer] {
			sent[peer] = true
			p.sendOrLoop(peer, abort)
		}
	}
}

// rejectUpstream informs the submitter that its task died before
// completion machinery could report.
func (p *Peer) rejectUpstream(taskID string, origin env.NodeID, reason string) {
	if origin == p.ctx.Self() {
		if _, mine := p.submits[taskID]; mine {
			p.resolveSubmit(taskID)
			p.events.rejected(p.domain)
			if tr := p.events.Tracer(); tr != nil {
				tr.EndSession(int64(p.ctx.Now()), taskID, int(p.ctx.Self()), int(p.domain), "rejected",
					trace.A("reason", reason))
			}
		}
		return
	}
	if origin != env.NoNode {
		p.ctx.Send(origin, proto.TaskReject{TaskID: taskID, Reason: reason,
			TC: p.traceCtx(taskID, "reject")})
	}
}

// rmHandleComposeAck advances a composing session; when all roles acked,
// streaming starts.
func (p *Peer) rmHandleComposeAck(from env.NodeID, msg proto.ComposeAck) {
	st := p.rm
	if st == nil {
		return
	}
	sess, ok := st.sessions[msg.TaskID]
	if !ok || sess.desc.Generation != msg.Generation || sess.state != sessComposing {
		return
	}
	if !msg.OK {
		// A participant refused its role (e.g. connection limit, §2):
		// the composition cannot complete — tear it down and reject.
		p.ctx.Logf("compose refused for %s by n%d: %s", msg.TaskID, from, msg.Reason)
		origin := sess.spec.Origin
		p.abortSession(sess, "compose-refused", false)
		p.rejectUpstream(msg.TaskID, origin, "participant refused: "+msg.Reason)
		return
	}
	delete(sess.pendingAcks, msg.Role)
	if len(sess.pendingAcks) > 0 {
		return
	}
	if sess.composeTimer != nil {
		sess.composeTimer()
		sess.composeTimer = nil
	}
	sess.state = sessRunning
	tr := p.events.Tracer()
	if tr != nil {
		tr.EndPhase(int64(p.ctx.Now()), msg.TaskID, "compose", int(p.ctx.Self()), int(p.domain))
	}
	if sess.repairStart > 0 {
		p.events.repair(p.domain, int64(p.ctx.Now()-sess.repairStart))
		if tr != nil {
			tr.EndPhase(int64(p.ctx.Now()), msg.TaskID, "repair", int(p.ctx.Self()), int(p.domain))
		}
		sess.repairStart = 0
	}
	if tr != nil {
		tr.BeginPhase(int64(p.ctx.Now()), msg.TaskID, "stream", int(p.ctx.Self()), int(p.domain),
			trace.A("generation", sess.desc.Generation))
	}
	p.sendOrLoop(sess.desc.SourcePeer, proto.SessionStart{TaskID: msg.TaskID,
		Generation: sess.desc.Generation, TC: p.traceCtx(msg.TaskID, "compose")})
}

// rmHandleSessionEnd releases the session's resources.
func (p *Peer) rmHandleSessionEnd(from env.NodeID, msg proto.SessionEnd) {
	st := p.rm
	if st == nil {
		return
	}
	p.adoptTC(msg.Report.TaskID, msg.TC)
	sess, ok := st.sessions[msg.Report.TaskID]
	if !ok {
		return
	}
	if sess.composeTimer != nil {
		sess.composeTimer()
	}
	p.applyLoads(sess.applied, -1)
	delete(st.sessions, msg.Report.TaskID)
}

// --- failure repair and adaptation (§4.5) ---

// repairSession substitutes a failed peer in a running session's service
// graph, or aborts when no substitution exists.
func (p *Peer) repairSession(sess *rmSession, dead env.NodeID) {
	st := p.rm
	d := sess.desc
	if d.Origin == dead {
		// The consumer is gone; tear everything down.
		p.abortSession(sess, "sink-failed", false)
		return
	}
	p.applyLoads(sess.applied, -1)

	p.freshGraph()
	// New source if the holder died.
	srcPeer := d.SourcePeer
	var obj media.Object
	foundObj := false
	for _, id := range st.order {
		for _, o := range st.peers[id].info.Objects {
			if o.Name == d.ObjectName {
				if !foundObj || id == srcPeer {
					obj = o
					foundObj = true
					if srcPeer == dead {
						srcPeer = id
					}
				}
			}
		}
	}
	if srcPeer == dead || !foundObj {
		p.abortSession(sess, "source-lost", true)
		return
	}
	vInit, okInit := st.gr.Lookup(obj.Format.Key())
	vGoal, okGoal := st.gr.Lookup(sess.goalKey)
	if !okInit || !okGoal {
		p.abortSession(sess, "graph-state-lost", true)
		return
	}
	pv := st.peerView()
	req := graph.Request{
		Init:           vInit,
		Goal:           vGoal,
		DeadlineMicros: sess.spec.DeadlineMicros,
		ChunkSeconds:   d.ChunkSec,
	}
	alloc, err := p.cfg.Allocator.Allocate(st.gr, req, pv)
	if err != nil {
		p.abortSession(sess, "no-repair-allocation", true)
		return
	}
	p.events.decide(Decision{TSMicros: int64(p.ctx.Now()), Task: d.TaskID,
		Node: int(p.ctx.Self()), Domain: int(p.domain), Action: DecisionRepair,
		Reason:       fmt.Sprintf("peer n%d failed", dead),
		UtilityDelta: alloc.Fairness - sess.fairness})
	sess.fairness = alloc.Fairness
	p.recompose(sess, srcPeer, alloc, obj, true)
}

// recompose replaces a session's pipeline with a new allocation, bumping
// the generation, resuming from the estimated playback position, and
// aborting superseded participants.
func (p *Peer) recompose(sess *rmSession, srcPeer env.NodeID, alloc graph.Allocation, obj media.Object, isRepair bool) {
	st := p.rm
	old := sess.desc
	d := old
	d.Generation++
	d.RM = p.ctx.Self() // a takeover RM adopts the sessions it repairs
	d.SourcePeer = srcPeer
	d.Stages = nil
	var applied []loadDelta
	for _, eid := range alloc.Path {
		e := st.gr.Edge(eid)
		fromF := st.formats[st.gr.Vertex(e.From).Key]
		toF := st.formats[st.gr.Vertex(e.To).Key]
		peerID := st.order[e.Peer]
		d.Stages = append(d.Stages, proto.StageDesc{
			Peer:           peerID,
			Service:        e.Service,
			Work:           e.Work,
			InBitrateKbps:  fromF.BitrateKbps,
			OutBitrateKbps: toF.BitrateKbps,
		})
		applied = append(applied, loadDelta{peer: peerID, work: e.Work})
	}
	// Resume near the playback position: chunks before it were delivered
	// or are lost in flight (counted as misses by the sink).
	elapsed := p.ctx.Now() - (d.PlaybackBase - d.StartupDeadline)
	start := int(float64(elapsed) / (d.ChunkSec * 1e6))
	if start < 0 {
		start = 0
	}
	if start >= d.NumChunks {
		start = d.NumChunks - 1
	}
	d.StartChunk = start

	sess.desc = d
	sess.applied = applied
	p.applyLoads(applied, +1)
	if isRepair {
		sess.repairStart = p.ctx.Now()
		if tr := p.events.Tracer(); tr != nil {
			tr.BeginPhase(int64(p.ctx.Now()), d.TaskID, "repair", int(p.ctx.Self()), int(p.domain),
				trace.A("generation", d.Generation))
		}
	} else {
		p.events.migration(p.domain)
		if tr := p.events.Tracer(); tr != nil {
			tr.Instant(int64(p.ctx.Now()), d.TaskID, "migrate", int(p.ctx.Self()), int(p.domain),
				trace.A("generation", d.Generation))
		}
	}

	// Abort pipeline members of the old generation that are not reused.
	inNew := map[env.NodeID]bool{}
	for _, id := range d.PipelinePeers() {
		inNew[id] = true
	}
	abort := proto.SessionAbort{TaskID: d.TaskID, Generation: old.Generation, Reason: "superseded"}
	for _, id := range old.PipelinePeers() {
		if !inNew[id] && st.peers[id] != nil {
			p.sendOrLoop(id, abort)
		}
	}
	p.composeSession(sess)
}

// rmAdaptTick detects overload and reassigns work (§4.5: "some of the
// currently running application tasks might be reassigned. The allocation
// algorithm ... is run again").
func (p *Peer) rmAdaptTick() {
	st := p.rm
	if st == nil || len(st.sessions) == 0 {
		return
	}
	// Find the most overloaded peer and check that spare capacity exists
	// elsewhere.
	var worst env.NodeID = env.NoNode
	worstUtil := 0.0
	spare := false
	for _, id := range sortedPeerIDs(st.peers) {
		rec := st.peers[id]
		u := rec.util()
		if u > worstUtil {
			worst, worstUtil = id, u
		}
		if u < p.cfg.OverloadUtil-p.cfg.ReassignMargin {
			spare = true
		}
	}
	if worst == env.NoNode || worstUtil <= p.cfg.OverloadUtil || !spare {
		return
	}
	// Migrate the heaviest running session that uses the overloaded peer
	// as a stage.
	var pick *rmSession
	pickWork := 0.0
	for _, sess := range sortedSessions(st.sessions) {
		if sess.state != sessRunning {
			continue
		}
		for _, stg := range sess.desc.Stages {
			if stg.Peer == worst && stg.Work > pickWork {
				pick, pickWork = sess, stg.Work
			}
		}
	}
	if pick == nil {
		return
	}
	p.freshGraph()
	// Re-run the allocation with the overloaded peer masked out.
	p.applyLoads(pick.applied, -1)
	pv := st.peerView()
	if idx, ok := st.indexOf[worst]; ok {
		pv.Load[idx] = pv.Speed[idx] // no spare capacity: allocator avoids it
	}
	vInit, okInit := st.gr.Lookup(objFormatKey(st, pick))
	vGoal, okGoal := st.gr.Lookup(pick.goalKey)
	if !okInit || !okGoal {
		p.applyLoads(pick.applied, +1)
		return
	}
	req := graph.Request{
		Init:           vInit,
		Goal:           vGoal,
		DeadlineMicros: pick.spec.DeadlineMicros,
		ChunkSeconds:   pick.desc.ChunkSec,
	}
	alloc, err := p.cfg.Allocator.Allocate(st.gr, req, pv)
	if err != nil {
		p.applyLoads(pick.applied, +1)
		return
	}
	// Only migrate if the new pipeline actually avoids the hot peer.
	for _, eid := range alloc.Path {
		if st.order[st.gr.Edge(eid).Peer] == worst {
			p.applyLoads(pick.applied, +1)
			return
		}
	}
	obj, ok := findObject(st, pick.desc.ObjectName, pick.desc.SourcePeer)
	if !ok {
		p.applyLoads(pick.applied, +1)
		return
	}
	p.events.decide(Decision{TSMicros: int64(p.ctx.Now()), Task: pick.desc.TaskID,
		Node: int(p.ctx.Self()), Domain: int(p.domain), Action: DecisionMigrate,
		Reason:       fmt.Sprintf("peer n%d overloaded (util %.2f)", worst, worstUtil),
		UtilityDelta: alloc.Fairness - pick.fairness})
	pick.fairness = alloc.Fairness
	p.recompose(pick, pick.desc.SourcePeer, alloc, obj, false)
}

// objFormatKey returns the vertex key of a session's source format.
func objFormatKey(st *rmState, sess *rmSession) string {
	if obj, ok := findObject(st, sess.desc.ObjectName, sess.desc.SourcePeer); ok {
		return obj.Format.Key()
	}
	return ""
}

// findObject locates an object on a preferred peer, falling back to any
// holder.
func findObject(st *rmState, name string, prefer env.NodeID) (media.Object, bool) {
	if rec, ok := st.peers[prefer]; ok {
		for _, o := range rec.info.Objects {
			if o.Name == name {
				return o, true
			}
		}
	}
	for _, id := range sortedPeerIDs(st.peers) {
		for _, o := range st.peers[id].info.Objects {
			if o.Name == name {
				return o, true
			}
		}
	}
	return media.Object{}, false
}

// DomainSize reports the RM's current member count (tests/experiments).
func (p *Peer) DomainSize() int {
	if p.rm == nil {
		return 0
	}
	return len(p.rm.peers)
}

// DomainFairness returns the fairness index of the RM's current load view.
func (p *Peer) DomainFairness() float64 {
	if p.rm == nil {
		return 0
	}
	if p.rm.grDirty {
		p.rebuildGraph()
	}
	pv := p.rm.peerView()
	var loads []float64
	for i := range pv.Load {
		loads = append(loads, pv.Load[i]/pv.Speed[i])
	}
	return fairnessIndex(loads)
}

// RunningSessions reports the RM's live session count.
func (p *Peer) RunningSessions() int {
	if p.rm == nil {
		return 0
	}
	return len(p.rm.sessions)
}

// SessionIDs lists the task IDs in the RM's session table (sorted).
func (p *Peer) SessionIDs() []string {
	if p.rm == nil {
		return nil
	}
	return sortedMapKeys(p.rm.sessions)
}

// KnownDomains reports how many other domains this RM has heard of.
func (p *Peer) KnownDomains() int {
	if p.rm == nil {
		return 0
	}
	return len(p.rm.knownRMs)
}

// Backup returns the RM's current backup choice.
func (p *Peer) Backup() env.NodeID {
	if p.rm == nil {
		return env.NoNode
	}
	return p.rm.backup
}

// String renders the peer for diagnostics.
func (p *Peer) String() string {
	role := "peer"
	if p.IsRM() {
		role = fmt.Sprintf("RM(domain=%d,n=%d)", p.domain, p.DomainSize())
	}
	return fmt.Sprintf("node[%s joined=%v]", role, p.joined)
}
