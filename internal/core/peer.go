// Package node implements the protocol logic of one overlay peer — the
// paper's core system (§2–§4). Every peer runs the same Actor; a peer
// additionally carries Resource-Manager state while it holds that role
// (the RM "is selected among regular peers", §2).
//
// The actor is runtime-agnostic (see internal/env): experiments run it on
// the deterministic netsim substrate, the live middleware runs it on
// goroutines over channels or TCP.
package core

import (
	"fmt"

	"repro/internal/env"
	"repro/internal/profiler"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Peer is one overlay node: Connection Manager, Profiler and Local
// Scheduler (§2), plus Resource-Manager state when elected.
type Peer struct {
	cfg    Config
	info   proto.PeerInfo
	events *Events

	ctx env.Context

	// Membership.
	bootstrap env.NodeID // first contact; NoNode founds domain 0
	domain    proto.DomainID
	rmID      env.NodeID
	backupID  env.NodeID
	contacts  []env.NodeID // fallback contacts (domain members)
	joined    bool
	joinedAt  sim.Time

	// Failure detection of the RM (peer side).
	lastRMContact    sim.Time
	awaitingAnnounce bool
	rmSilentSince    sim.Time
	joinHops         int
	rejoinTries      int
	memberTimers     bool

	// Backup role: latest replicated RM state.
	backupState *proto.DomainState

	// Local execution (Local Scheduler + Profiler, §2).
	proc *sched.Processor
	prof *profiler.Profiler
	conn *ConnManager

	// Data-plane state.
	asSource     map[string]*sourceSession
	asStage      map[string]*stageSession
	asSink       map[string]*sinkSession
	submits      map[string]sim.Time   // tasks this peer submitted -> submit time
	submitTimers map[string]env.Cancel // outcome watchdogs for own submissions

	// Resource-Manager state (nil unless this peer is an RM).
	rm *rmState

	// Inter-domain discovery backend (gossip or DHT), set at Init.
	disc Discovery

	// Completion continuations for chunk tasks on the local scheduler.
	stageDone map[sched.TaskID]func(missed bool)

	// Extraneous background workload (§4.5).
	bgRate   float64
	bgTicker env.Cancel

	// Timers.
	cancels     []env.Cancel
	nextTaskSeq int64
}

// New creates a peer actor. info describes the peer's capacity, objects
// and services; bootstrap is the node contacted to join (env.NoNode makes
// this peer found domain 0 as its first Resource Manager); events may be
// nil.
func New(cfg Config, info proto.PeerInfo, bootstrap env.NodeID, events *Events) *Peer {
	return &Peer{
		cfg:          cfg,
		info:         info,
		events:       events,
		bootstrap:    bootstrap,
		domain:       proto.NoDomain,
		rmID:         env.NoNode,
		backupID:     env.NoNode,
		asSource:     make(map[string]*sourceSession),
		asStage:      make(map[string]*stageSession),
		asSink:       make(map[string]*sinkSession),
		submits:      make(map[string]sim.Time),
		submitTimers: make(map[string]env.Cancel),
	}
}

// Info returns the peer's self-description.
func (p *Peer) Info() proto.PeerInfo { return p.info }

// Domain returns the peer's current domain (NoDomain before joining).
func (p *Peer) Domain() proto.DomainID { return p.domain }

// IsRM reports whether the peer currently holds the Resource-Manager role.
func (p *Peer) IsRM() bool { return p.rm != nil }

// RMID returns the peer's current Resource Manager.
func (p *Peer) RMID() env.NodeID { return p.rmID }

// Joined reports whether the peer is a member of a domain.
func (p *Peer) Joined() bool { return p.joined }

// nanotime returns a monotonic nanosecond reading for costing local
// computations. With no Config.Nanotime hook it derives from the
// injected clock (microseconds), which under simulation does not
// advance mid-handler — the cost reads as zero and stays deterministic.
func (p *Peer) nanotime() int64 {
	if p.cfg.Nanotime != nil {
		return p.cfg.Nanotime()
	}
	return int64(p.ctx.Now()) * 1000
}

// Processor exposes the local scheduler (tests and experiments).
func (p *Peer) Processor() *sched.Processor { return p.proc }

// Profiler exposes the local profiler.
func (p *Peer) Profiler() *profiler.Profiler { return p.prof }

// Connections exposes the connection manager.
func (p *Peer) Connections() *ConnManager { return p.conn }

// Init implements env.Actor.
func (p *Peer) Init(ctx env.Context) {
	p.ctx = ctx
	p.info.ID = ctx.Self()
	p.proc = sched.NewProcessor(ctx, p.info.SpeedWU, p.cfg.SchedPolicy)
	p.prof = profiler.New(int(ctx.Self()), p.info.SpeedWU, p.cfg.EWMAAlpha)
	p.conn = NewConnManager()
	p.joinedAt = ctx.Now()
	p.disc = newDiscovery(p)
	p.disc.Init()

	if p.bootstrap == env.NoNode {
		p.becomeFounder()
		return
	}
	p.sendJoin(p.bootstrap)
	// Retry join until accepted; a qualified peer that keeps striking out
	// (e.g. its whole domain's leadership died, or its bootstrap is gone)
	// eventually founds a replacement domain. (A network partition can
	// make both sides promote — the paper does not address partitions,
	// and neither do we beyond this self-healing.)
	p.cancels = append(p.cancels, env.Every(ctx, 2*sim.Second, 2*sim.Second, func() {
		if p.joined {
			return
		}
		p.rejoinTries++
		info := p.info
		info.UptimeSec += (p.ctx.Now() - p.joinedAt).Seconds()
		if p.rejoinTries >= 4 && info.Qualifies(p.cfg.Qualify) {
			p.ctx.Logf("self-promoting to RM after %d failed joins", p.rejoinTries)
			p.foundDomain(proto.DomainID(p.ctx.Self()), nil)
			return
		}
		p.sendJoin(p.pickContact())
	}))
}

// Stop implements env.Actor: graceful departure (§4.1 "peers may
// disconnect ... intentionally").
func (p *Peer) Stop() {
	if p.joined && !p.IsRM() && p.rmID != env.NoNode {
		p.ctx.Send(p.rmID, proto.Leave{})
	}
	for _, c := range p.cancels {
		c()
	}
	if p.bgTicker != nil {
		p.bgTicker()
	}
	if p.rm != nil {
		p.rm.stopTimers()
	}
	if p.disc != nil {
		p.disc.Stop()
	}
}

// sendJoin opens (or retries) the join handshake.
func (p *Peer) sendJoin(target env.NodeID) {
	if target == env.NoNode {
		return
	}
	info := p.info
	info.UptimeSec += (p.ctx.Now() - p.joinedAt).Seconds()
	p.ctx.Send(target, proto.Join{Info: info, Hops: p.joinHops})
}

// pickContact returns someone to (re)try joining through.
func (p *Peer) pickContact() env.NodeID {
	if len(p.contacts) > 0 {
		return p.contacts[p.ctx.Rand().Intn(len(p.contacts))]
	}
	return p.bootstrap
}

// startMemberTimers arms the tickers every domain member runs. It is
// idempotent: a member that self-promotes to RM already runs them.
func (p *Peer) startMemberTimers() {
	if p.memberTimers {
		return
	}
	p.memberTimers = true
	// Intra-domain load propagation (§4.4).
	p.cancels = append(p.cancels, env.Every(p.ctx, p.cfg.ProfilePeriod, p.cfg.ProfilePeriod, p.sendProfile))
	// RM liveness watch.
	period := p.cfg.HeartbeatPeriod
	p.cancels = append(p.cancels, env.Every(p.ctx, period, period, p.checkRMAlive))
}

// sendProfile propagates the profiler snapshot to the RM.
func (p *Peer) sendProfile() {
	if !p.joined || p.IsRM() || p.rmID == env.NoNode {
		return
	}
	p.ctx.Send(p.rmID, proto.ProfileUpdate{Report: p.prof.Snapshot(p.ctx.Now())})
}

// checkRMAlive detects a silent Resource Manager (§4.1: "the backup
// Resource Manager senses the withdrawn connection").
func (p *Peer) checkRMAlive() {
	if !p.joined || p.IsRM() {
		return
	}
	silent := p.ctx.Now() - p.lastRMContact
	timeout := p.cfg.HeartbeatPeriod * sim.Time(p.cfg.HeartbeatMisses)
	if silent <= timeout {
		p.awaitingAnnounce = false
		return
	}
	if p.ctx.Self() == p.backupID && p.backupState != nil {
		// I am the backup: take over using the replicated state.
		p.takeover()
		return
	}
	if !p.awaitingAnnounce {
		p.awaitingAnnounce = true
		p.rmSilentSince = p.ctx.Now()
		return
	}
	// Waited a full extra timeout for a TakeoverAnnounce; rejoin.
	if p.ctx.Now()-p.rmSilentSince > 2*timeout {
		p.joined = false
		p.awaitingAnnounce = false
		p.rmID = env.NoNode
		// The retry ticker keeps re-sending Joins and escalates to
		// self-promotion if nothing answers (see Init).
		p.sendJoin(p.pickContact())
	}
}

// Receive implements env.Actor: single dispatch point for all protocol
// messages.
func (p *Peer) Receive(from env.NodeID, m env.Message) {
	// Any traffic from the current RM counts as liveness.
	if from == p.rmID {
		p.lastRMContact = p.ctx.Now()
	}
	// Discovery traffic first: gossip exchanges or DHT RPCs, depending on
	// the configured backend.
	if p.disc.HandleMessage(from, m) {
		return
	}
	switch msg := m.(type) {
	// --- membership, peer side ---
	case proto.JoinRedirect:
		if !p.joined {
			p.joinHops++
			p.sendJoin(msg.Target)
		}
	case proto.JoinAccept:
		p.handleJoinAccept(from, msg)
	case proto.BecomeRM:
		if !p.joined {
			p.foundDomain(msg.NewDomain, msg.KnownRMs)
		}
	case proto.HeartbeatReq:
		if from == p.rmID {
			p.ctx.Send(from, proto.HeartbeatAck{Seq: msg.Seq})
		} else if p.joined {
			// A probe from an RM we no longer follow (we rejoined another
			// domain after its silence, or it is a stale leader): tell it
			// we left so its member table converges instead of keeping a
			// phantom entry alive through our acks.
			p.ctx.Send(from, proto.Leave{})
		}
	case proto.BackupSync:
		st := msg.State
		p.backupState = &st
	case proto.TakeoverAnnounce:
		p.handleTakeoverAnnounce(from, msg)
	case proto.TaskReject:
		p.adoptTC(msg.TaskID, msg.TC)
		if _, mine := p.submits[msg.TaskID]; mine {
			p.resolveSubmit(msg.TaskID)
			p.events.rejected(p.domain)
			if tr := p.events.Tracer(); tr != nil {
				tr.EndSession(int64(p.ctx.Now()), msg.TaskID, int(p.ctx.Self()), int(p.domain), "rejected",
					trace.A("reason", msg.Reason))
			}
		}

	// --- data plane ---
	case proto.GraphCompose:
		p.handleCompose(from, msg)
	case proto.SessionStart:
		p.handleSessionStart(msg)
	case proto.Chunk:
		p.handleChunk(from, msg)
	case proto.SessionAbort:
		p.handleSessionAbort(msg)

	// --- Resource-Manager side ---
	case proto.Join:
		p.rmHandleJoin(from, msg)
	case proto.Leave:
		p.rmHandleLeave(from)
	case proto.HeartbeatAck:
		p.rmHandleHeartbeatAck(from, msg)
	case proto.ProfileUpdate:
		p.rmHandleProfile(from, msg)
	case proto.TaskSubmit:
		p.rmHandleSubmit(from, msg)
	case proto.ComposeAck:
		p.rmHandleComposeAck(from, msg)
	case proto.SessionEnd:
		p.rmHandleSessionEnd(from, msg)
	}
}

// handleJoinAccept completes the join handshake.
func (p *Peer) handleJoinAccept(from env.NodeID, msg proto.JoinAccept) {
	if p.joined {
		return
	}
	p.joined = true
	p.joinHops = 0
	p.rejoinTries = 0
	p.domain = msg.Domain
	p.rmID = msg.RM
	p.backupID = msg.Backup
	p.contacts = msg.Peers
	p.lastRMContact = p.ctx.Now()
	p.conn.Open(msg.RM)
	p.disc.NoteContacts(append([]env.NodeID{msg.RM, msg.Backup}, msg.Peers...)...)
	p.startMemberTimers()
	p.ctx.Logf("joined domain %d under RM n%d", msg.Domain, msg.RM)
}

// handleTakeoverAnnounce follows a backup's promotion.
func (p *Peer) handleTakeoverAnnounce(from env.NodeID, msg proto.TakeoverAnnounce) {
	if msg.Domain != p.domain && p.domain != proto.NoDomain {
		// Another domain's failover: only relevant to RM gossip state.
		if p.rm != nil {
			p.rm.noteRM(proto.RMRef{Domain: msg.Domain, RM: msg.NewRM})
		}
		return
	}
	p.conn.Close(p.rmID)
	p.rmID = msg.NewRM
	p.backupID = msg.Backup
	p.lastRMContact = p.ctx.Now()
	p.awaitingAnnounce = false
	p.conn.Open(msg.NewRM)
}

// resolveSubmit clears a pending submission's bookkeeping.
func (p *Peer) resolveSubmit(taskID string) {
	delete(p.submits, taskID)
	if cancel, ok := p.submitTimers[taskID]; ok {
		cancel()
		delete(p.submitTimers, taskID)
	}
}

// submitAccepted reports whether our own submission has been composed to
// us as a sink (its outcome will arrive as a session report).
func (p *Peer) submitAccepted(taskID string) bool {
	_, ok := p.asSink[taskID]
	return ok
}

// SetBackgroundLoad models extraneous local workload (§4.5: "overload
// conditions could also be caused by extraneous workload or network
// traffic"): rate work-units/s consumed by non-middleware activity. The
// load occupies the local scheduler (competing with transcode chunks) and
// appears in profiler reports — so the Resource Manager only learns about
// it through the periodic updates, which is exactly the staleness the E10
// experiment measures.
func (p *Peer) SetBackgroundLoad(rate float64) {
	if rate < 0 {
		rate = 0
	}
	p.prof.AddLoad(rate - p.bgRate)
	p.bgRate = rate
	if p.bgTicker != nil {
		p.bgTicker()
		p.bgTicker = nil
	}
	if rate <= 0 {
		return
	}
	const slice = 200 * sim.Millisecond
	p.bgTicker = env.Every(p.ctx, slice, slice, func() {
		p.nextTaskSeq++
		p.proc.Add(&sched.Task{
			ID:       sched.TaskID(p.nextTaskSeq),
			Deadline: p.ctx.Now() + 2*slice,
			Work:     p.bgRate * slice.Seconds(),
		})
	})
}

// BackgroundLoad returns the current extraneous load rate.
func (p *Peer) BackgroundLoad() float64 { return p.bgRate }

// SubmitTask issues a user query from this peer (§4.3: "a user at a peer
// submits a query to the resource manager of its domain"). It returns the
// assigned task ID.
func (p *Peer) SubmitTask(spec proto.TaskSpec) string {
	p.nextTaskSeq++
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("t%d.%d", p.ctx.Self(), p.nextTaskSeq)
	}
	spec.Origin = p.ctx.Self()
	if spec.ChunkSec <= 0 {
		spec.ChunkSec = p.cfg.DefaultChunkSec
	}
	p.submits[spec.ID] = p.ctx.Now()
	p.events.submitted(p.domain)
	if tr := p.events.Tracer(); tr != nil {
		tr.BeginSession(int64(p.ctx.Now()), spec.ID, int(p.ctx.Self()), int(p.domain),
			trace.A("object", spec.ObjectName), trace.A("importance", spec.Importance),
			trace.A("deadline_micros", spec.DeadlineMicros))
	}
	// Outcome watchdog: if neither an admission (our sink role composes)
	// nor a rejection arrives — e.g. the RM crashed while holding the
	// query, or a redirect landed on a stale address — the submission
	// times out locally as rejected, so no query ever silently vanishes.
	taskID := spec.ID
	wait := sim.Time(spec.DeadlineMicros)*2 + 10*sim.Second
	p.submitTimers[taskID] = p.ctx.After(wait, func() {
		if _, pending := p.submits[taskID]; pending && !p.submitAccepted(taskID) {
			p.resolveSubmit(taskID)
			p.events.rejected(p.domain)
			if tr := p.events.Tracer(); tr != nil {
				tr.EndSession(int64(p.ctx.Now()), taskID, int(p.ctx.Self()), int(p.domain), "timeout")
			}
		}
	})
	target := p.rmID
	if p.IsRM() {
		target = p.ctx.Self()
	}
	if target == env.NoNode {
		p.events.rejected(p.domain)
		if tr := p.events.Tracer(); tr != nil {
			tr.EndSession(int64(p.ctx.Now()), spec.ID, int(p.ctx.Self()), int(p.domain), "rejected",
				trace.A("reason", "no resource manager"))
		}
		return spec.ID
	}
	submit := proto.TaskSubmit{Spec: spec, TC: p.traceCtx(spec.ID, "submit")}
	if target == p.ctx.Self() {
		// RM submitting to itself: handle directly.
		p.rmHandleSubmit(p.ctx.Self(), submit)
	} else {
		p.ctx.Send(target, submit)
	}
	return spec.ID
}
