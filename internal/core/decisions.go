package core

import (
	"encoding/json"
	"io"
	"sync"
)

// This file is the RM decision audit: every admit/reject/redirect/
// preempt/repair/migrate/failover choice the resource manager makes is
// recorded as a structured Decision — action, reason, utility delta,
// and the candidates considered but rejected — so the adaptation loop
// of the paper is explainable after the fact. Decisions flow to three
// sinks through Events.decide: this ring (served by /decisions), the
// tracer (as "decision" instants inside the task's span), and the
// metrics registry (per-action counters).

// Decision actions recorded by the resource manager.
const (
	DecisionAdmit    = "admit"
	DecisionReject   = "reject"
	DecisionRedirect = "redirect"
	DecisionPreempt  = "preempt"
	DecisionRepair   = "repair"
	DecisionMigrate  = "migrate"
	DecisionFailover = "failover"
)

// Decision is one audited RM choice.
type Decision struct {
	TSMicros int64  `json:"ts"`
	Task     string `json:"task,omitempty"`
	Node     int    `json:"node"`
	Domain   int    `json:"domain"`
	Action   string `json:"action"`
	Reason   string `json:"reason,omitempty"`
	// UtilityDelta is the change of the allocator's objective caused by
	// the decision (Jain's fairness index of the projected load
	// distribution for admissions; 0 when not applicable).
	UtilityDelta float64 `json:"utility_delta,omitempty"`
	// Candidates lists alternatives considered but not chosen — goal
	// formats an allocation search evaluated, redirect targets, or
	// preemption victims probed.
	Candidates []string `json:"candidates,omitempty"`
}

// DefaultDecisionCap bounds the in-memory decision ring; beyond it the
// oldest decisions are overwritten (the total count keeps climbing).
const DefaultDecisionCap = 4096

// DecisionLog is a bounded ring of Decisions shared by every peer of a
// run, like Events. The zero value is not usable; call NewDecisionLog.
// A nil *DecisionLog ignores all operations. Safe for concurrent use.
type DecisionLog struct {
	mu    sync.Mutex
	buf   []Decision // guarded by mu; ring once full
	next  int        // guarded by mu; write cursor
	total uint64     // guarded by mu; decisions ever recorded
	cap   int
}

// NewDecisionLog creates a ring holding the last n decisions
// (DefaultDecisionCap if n <= 0).
func NewDecisionLog(n int) *DecisionLog {
	if n <= 0 {
		n = DefaultDecisionCap
	}
	return &DecisionLog{buf: make([]Decision, 0, n), cap: n}
}

// Add records one decision.
func (l *DecisionLog) Add(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, d)
		l.next = len(l.buf) % l.cap
		return
	}
	l.buf[l.next] = d
	l.next = (l.next + 1) % l.cap
}

// Total reports decisions ever recorded, including overwritten ones.
func (l *DecisionLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained decisions oldest-first.
func (l *DecisionLog) Snapshot() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < l.cap {
		return append([]Decision(nil), l.buf...)
	}
	out := make([]Decision, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

// WriteJSON writes the snapshot as one indented JSON document — the
// payload of the /decisions endpoint.
func (l *DecisionLog) WriteJSON(w io.Writer) error {
	if l == nil {
		_, err := w.Write([]byte("{\"total\":0,\"decisions\":[]}\n"))
		return err
	}
	snap := l.Snapshot()
	if snap == nil {
		snap = []Decision{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Total     uint64     `json:"total"`
		Decisions []Decision `json:"decisions"`
	}{l.Total(), snap})
}
