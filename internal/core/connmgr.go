package core

import "repro/internal/env"

// ConnManager is the peer's Connection Manager (§2): it tracks the
// overlay connections the peer holds — to its Resource Manager and to the
// adjacent peers of every pipeline it participates in. Connections are
// reference-counted because two sessions may share an adjacency.
//
// Concurrency audit: no mutex by design — a ConnManager belongs to one
// peer and is touched only from that peer's serialized actor loop.
type ConnManager struct {
	refs   map[env.NodeID]int
	opened uint64
	closed uint64
	peak   int
}

// NewConnManager returns an empty manager.
func NewConnManager() *ConnManager {
	return &ConnManager{refs: make(map[env.NodeID]int)}
}

// Open establishes (or references) a connection to the peer.
func (c *ConnManager) Open(to env.NodeID) {
	if to == env.NoNode {
		return
	}
	c.refs[to]++
	if c.refs[to] == 1 {
		c.opened++
		if len(c.refs) > c.peak {
			c.peak = len(c.refs)
		}
	}
}

// Close dereferences (and possibly tears down) a connection.
func (c *ConnManager) Close(to env.NodeID) {
	if n, ok := c.refs[to]; ok {
		if n <= 1 {
			delete(c.refs, to)
			c.closed++
		} else {
			c.refs[to] = n - 1
		}
	}
}

// Active returns the number of distinct open connections.
func (c *ConnManager) Active() int { return len(c.refs) }

// Has reports whether a connection to the peer is already open.
func (c *ConnManager) Has(to env.NodeID) bool {
	_, ok := c.refs[to]
	return ok
}

// Peak returns the high-water mark of simultaneous connections.
func (c *ConnManager) Peak() int { return c.peak }

// Churn returns total connections opened and closed.
func (c *ConnManager) Churn() (opened, closed uint64) { return c.opened, c.closed }
