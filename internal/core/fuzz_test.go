package core_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestRandomScenarioInvariants drives many randomized end-to-end runs —
// random populations, request mixes, churn, background load, config
// variations — and asserts global invariants that must hold regardless of
// schedule:
//
//  1. accounting: every submission resolves (admitted or rejected), and
//     every admitted session either reports or was rejected pre-start;
//  2. no leaks after drain: no active sink/stage sessions, no residual
//     profiler load beyond declared background, empty scheduler queues;
//  3. consistency: reports never claim more received than chunks, RMs'
//     domain sizes cover exactly the live joined population.
func TestRandomScenarioInvariants(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomScenario(t, seed)
		})
	}
}

func runRandomScenario(t *testing.T, seed uint64) {
	r := rng.New(seed*2654435761 + 17)
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 4 + r.Intn(20)
	cfg.PreemptLowImportance = r.Bool(0.3)
	if r.Bool(0.3) {
		cfg.AdaptPeriod = 0
	}
	if r.Bool(0.2) {
		cfg.MaxConnections = 4 + r.Intn(8)
	}
	n := 8 + r.Intn(20)
	infos := cluster.PeerSpecs(r, n, cfg.Qualify, 0.3+r.Float64()*0.5)
	cat := cluster.StandardCatalog()
	cat.Populate(r, infos, 1+r.Intn(5), 4+r.Intn(12), 1+r.Intn(3), 10+r.Float64()*20)

	netCfg := netsim.Config{
		Latency:    netsim.UniformLatency(sim.Time(1+r.Intn(40)) * sim.Millisecond),
		JitterFrac: r.Float64() * 0.4,
	}
	if r.Bool(0.25) {
		netCfg.LossRate = r.Float64() * 0.01
	}
	c := cluster.Build(cfg, netCfg, seed, infos, 50*sim.Millisecond)
	c.RunUntil(c.Eng.Now() + 15*sim.Second)

	mix := workload.DefaultMix()
	mix.Objects = 4 + r.Intn(12)
	mix.RatePerSec = 0.3 + r.Float64()*2
	mix.DurationMeanSec = 5 + r.Float64()*20
	d := workload.NewDriver(c, cat, mix, r.Split())
	start := c.Eng.Now()
	horizon := sim.Time(30+r.Intn(60)) * sim.Second
	d.Run(start, start+horizon)
	if r.Bool(0.5) {
		workload.Churn(c, r.Split(), start, start+horizon, r.Float64()*0.1, 0.7, nil)
	}
	if r.Bool(0.5) {
		workload.BackgroundNoise(c, r.Split(), start, start+horizon, 10*sim.Second, 0.3)
	}
	// Quiesce: background load off, long drain.
	c.Eng.At(start+horizon, func() {
		for _, id := range c.IDs() {
			if c.Net.Alive(id) {
				c.Peer(id).SetBackgroundLoad(0)
			}
		}
	})
	c.RunUntil(start + horizon + 4*sim.Minute)

	ev := c.Events.Snapshot()

	// (1) accounting.
	if ev.Admitted+ev.Rejected < ev.Submitted {
		t.Fatalf("unresolved submissions: submitted=%d admitted=%d rejected=%d",
			ev.Submitted, ev.Admitted, ev.Rejected)
	}
	dead := len(c.IDs()) - c.Net.NumAlive()
	// A crashed sink whose session was additionally orphaned by an RM
	// failover can neither report nor be abort-accounted; bound such
	// losses by the crash count.
	if len(ev.Reports)+ev.Rejected+ev.Aborted+4*dead < ev.Admitted {
		t.Fatalf("sessions vanished: reports=%d rejected=%d aborted=%d dead=%d admitted=%d",
			len(ev.Reports), ev.Rejected, ev.Aborted, dead, ev.Admitted)
	}

	// (3) report consistency.
	for _, rep := range ev.Reports {
		if rep.Received > rep.Chunks || rep.Received < 0 {
			t.Fatalf("report out of range: %+v", rep)
		}
		if rep.Missed > rep.Chunks {
			t.Fatalf("missed > chunks: %+v", rep)
		}
	}

	// (2) no leaks after drain on every surviving node.
	for _, id := range c.IDs() {
		if !c.Net.Alive(id) {
			continue
		}
		p := c.Peer(id)
		if got := len(p.ActiveSinkSessions()); got != 0 {
			t.Errorf("peer %d leaked %d sink sessions", id, got)
		}
		if load := p.Profiler().Load(); load > 1e-9 {
			t.Errorf("peer %d leaked load %v", id, load)
		}
		if q := p.Processor().QueueLength(); q != 0 {
			t.Errorf("peer %d leaked %d scheduler tasks", id, q)
		}
	}

	// (3) membership coverage: every live joined peer is counted in
	// exactly one RM's domain.
	totalMembers := 0
	for _, id := range c.RMs() {
		totalMembers += c.Peer(id).DomainSize()
	}
	joined := 0
	for _, id := range c.IDs() {
		if c.Net.Alive(id) && c.Peer(id).Joined() {
			joined++
		}
	}
	// RM domain tables can briefly include peers that died moments ago
	// (before heartbeat timeout), so allow counted >= joined but bounded.
	if totalMembers < joined {
		t.Errorf("membership undercount: RM tables=%d joined=%d", totalMembers, joined)
	}
	if totalMembers > joined+dead {
		t.Errorf("membership overcount: RM tables=%d joined=%d dead=%d", totalMembers, joined, dead)
	}
}
