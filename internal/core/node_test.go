package core_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sim"
)

// fixedInfo returns a well-provisioned (RM-qualified) peer description.
func fixedInfo() proto.PeerInfo {
	return proto.PeerInfo{
		SpeedWU:       10,
		BandwidthKbps: 5000,
		UptimeSec:     7200,
	}
}

// netCfg is the standard test network: 10ms links.
func netCfg() netsim.Config {
	return netsim.Config{Latency: netsim.UniformLatency(10 * sim.Millisecond)}
}

// smallDomain builds one domain of n well-provisioned peers, each
// offering the paper's transcoders, with obj-0 stored on the founder.
func smallDomain(t *testing.T, n int, cfg core.Config) *cluster.Cluster {
	t.Helper()
	cat := cluster.StandardCatalog()
	infos := make([]proto.PeerInfo, n)
	for i := range infos {
		infos[i] = fixedInfo()
		infos[i].Services = append([]media.Transcoder(nil), cat.Ladder...)
	}
	obj := media.Object{
		Name:   "obj-0",
		Format: cat.Sources[0],
		Bytes:  int64(30 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8), // 30s
	}
	infos[0].Objects = []media.Object{obj}
	c := cluster.New(cfg, netCfg(), 42)
	c.AddFounder(infos[0])
	for i := 1; i < n; i++ {
		c.AddPeer(infos[i], 0)
	}
	c.RunUntil(5 * sim.Second)
	return c
}

// stdSpec is a feasible request for obj-0 to MPEG-4 640x480.
func stdSpec(origin env.NodeID) proto.TaskSpec {
	return proto.TaskSpec{
		Origin:     origin,
		ObjectName: "obj-0",
		Constraint: media.Constraint{
			Codecs:         []media.Codec{media.MPEG4},
			MaxWidth:       640,
			MaxHeight:      480,
			MaxBitrateKbps: 64,
		},
		DeadlineMicros: 2_000_000,
		DurationSec:    10,
		ChunkSec:       1,
	}
}

func TestOverlayFormsSingleDomain(t *testing.T) {
	c := smallDomain(t, 8, core.DefaultConfig())
	if got := c.JoinedCount(); got != 8 {
		t.Fatalf("joined = %d, want 8", got)
	}
	rms := c.RMs()
	if len(rms) != 1 {
		t.Fatalf("RMs = %v, want exactly the founder", rms)
	}
	if rms[0] != 0 {
		t.Fatalf("RM = %v, want node 0", rms[0])
	}
	if size := c.Peer(0).DomainSize(); size != 8 {
		t.Fatalf("domain size = %d", size)
	}
	// A backup must have been elected among qualified members.
	if c.Peer(0).Backup() == env.NoNode {
		t.Fatal("no backup RM elected")
	}
}

func TestDomainSplitsWhenFull(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 4
	c := smallDomain(t, 10, cfg)
	c.RunUntil(20 * sim.Second)
	if got := c.JoinedCount(); got != 10 {
		t.Fatalf("joined = %d, want 10", got)
	}
	rms := c.RMs()
	if len(rms) < 2 {
		t.Fatalf("expected multiple domains, got RMs %v", rms)
	}
	// No domain exceeds the cap (except the stretch case, unused here).
	for _, id := range rms {
		if size := c.Peer(id).DomainSize(); size > 4 {
			t.Fatalf("domain of n%d has %d peers, cap 4", id, size)
		}
	}
	// Domain IDs must be distinct.
	seen := map[proto.DomainID]bool{}
	for _, id := range rms {
		d := c.Peer(id).Domain()
		if seen[d] {
			t.Fatalf("duplicate domain ID %d", d)
		}
		seen[d] = true
	}
}

func TestTaskExecutesEndToEnd(t *testing.T) {
	c := smallDomain(t, 6, core.DefaultConfig())
	c.Submit(c.Eng.Now(), 3, stdSpec(3))
	c.RunUntil(60 * sim.Second)
	ev := c.Events.Snapshot()
	if ev.Submitted != 1 || ev.Admitted != 1 {
		t.Fatalf("submitted=%d admitted=%d", ev.Submitted, ev.Admitted)
	}
	if len(ev.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(ev.Reports))
	}
	r := ev.Reports[0]
	if r.Chunks != 10 {
		t.Fatalf("chunks = %d, want 10", r.Chunks)
	}
	if r.Received != 10 {
		t.Fatalf("received = %d/10", r.Received)
	}
	if r.Missed != 0 {
		t.Fatalf("missed = %d on an idle domain", r.Missed)
	}
	if r.StartupMicros <= 0 || r.StartupMicros > 2_000_000 {
		t.Fatalf("startup = %dµs, budget 2s", r.StartupMicros)
	}
	if r.Repaired != 0 {
		t.Fatalf("repaired = %d", r.Repaired)
	}
}

func TestDirectStreamingWhenFormatAlreadyAcceptable(t *testing.T) {
	c := smallDomain(t, 4, core.DefaultConfig())
	spec := stdSpec(2)
	spec.Constraint = media.Constraint{} // anything goes: no transcoding needed
	c.Submit(c.Eng.Now(), 2, spec)
	c.RunUntil(40 * sim.Second)
	ev := c.Events.Snapshot()
	if len(ev.Reports) != 1 || ev.Reports[0].Missed != 0 {
		t.Fatalf("direct streaming failed: %+v", ev.Reports)
	}
}

func TestInfeasibleConstraintRejected(t *testing.T) {
	c := smallDomain(t, 4, core.DefaultConfig())
	spec := stdSpec(1)
	spec.Constraint = media.Constraint{Codecs: []media.Codec{"AV1"}} // unknown codec
	c.Submit(c.Eng.Now(), 1, spec)
	c.RunUntil(10 * sim.Second)
	ev := c.Events.Snapshot()
	if ev.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", ev.Rejected)
	}
	if ev.Admitted != 0 {
		t.Fatalf("admitted = %d", ev.Admitted)
	}
}

func TestUnknownObjectRejected(t *testing.T) {
	c := smallDomain(t, 4, core.DefaultConfig())
	spec := stdSpec(1)
	spec.ObjectName = "no-such-object"
	c.Submit(c.Eng.Now(), 1, spec)
	c.RunUntil(10 * sim.Second)
	if ev := c.Events.Snapshot(); ev.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", ev.Rejected)
	}
}

func TestConcurrentSessions(t *testing.T) {
	c := smallDomain(t, 8, core.DefaultConfig())
	for i := 0; i < 6; i++ {
		origin := env.NodeID(i % 8)
		c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second, origin, stdSpec(origin))
	}
	c.RunUntil(90 * sim.Second)
	ev := c.Events.Snapshot()
	if ev.Admitted != 6 {
		t.Fatalf("admitted = %d/6 (rejected=%d)", ev.Admitted, ev.Rejected)
	}
	if len(ev.Reports) != 6 {
		t.Fatalf("reports = %d/6", len(ev.Reports))
	}
	total, missed := 0, 0
	for _, r := range ev.Reports {
		total += r.Chunks
		missed += r.Missed
	}
	if missed > total/10 {
		t.Fatalf("missed %d/%d chunks on a lightly loaded domain", missed, total)
	}
}

func TestPeerCrashRepairsSession(t *testing.T) {
	cfg := core.DefaultConfig()
	c := smallDomain(t, 8, cfg)
	c.Submit(c.Eng.Now(), 3, stdSpec(3))
	// Find the stage peer once running, crash it mid-stream.
	c.RunUntil(c.Eng.Now() + 3*sim.Second)
	// Locate a stage peer of the session: any peer with nonzero load that
	// is not the source (node 0 holds the object but source has no load).
	var victim env.NodeID = env.NoNode
	for _, id := range c.IDs() {
		p := c.Peer(id)
		if !p.IsRM() && p.Profiler().Load() > 0 && id != 3 {
			victim = id
			break
		}
	}
	if victim == env.NoNode {
		t.Fatal("no loaded stage peer found")
	}
	c.Crash(c.Eng.Now(), victim)
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	ev := c.Events.Snapshot()
	if ev.PeersDeclaredDead == 0 {
		t.Fatal("RM never declared the crashed peer dead")
	}
	if ev.Repairs == 0 {
		t.Fatal("no repair performed")
	}
	if len(ev.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(ev.Reports))
	}
	r := ev.Reports[0]
	if r.Repaired == 0 {
		t.Fatalf("sink saw no repair generations: %+v", r)
	}
	// The stream finished; some chunks may have been lost in flight.
	if r.Received == 0 || r.Received+r.Missed < r.Chunks {
		t.Fatalf("inconsistent report %+v", r)
	}
}

func TestRMFailover(t *testing.T) {
	cfg := core.DefaultConfig()
	c := smallDomain(t, 8, cfg)
	backup := c.Peer(0).Backup()
	if backup == env.NoNode {
		t.Fatal("no backup elected")
	}
	// Let at least one backup sync land.
	c.RunUntil(c.Eng.Now() + 3*sim.Second)
	c.Crash(c.Eng.Now(), 0)
	c.RunUntil(c.Eng.Now() + 20*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", ev.Failovers)
	}
	rms := c.RMs()
	if len(rms) != 1 || rms[0] != backup {
		t.Fatalf("RMs after failover = %v, want [%v]", rms, backup)
	}
	// All surviving peers follow the new RM.
	for _, id := range c.IDs() {
		if !c.Net.Alive(id) {
			continue
		}
		if got := c.Peer(id).RMID(); got != backup {
			t.Fatalf("peer %v follows %v, want %v", id, got, backup)
		}
	}
	// The new RM's domain covers the survivors.
	if size := c.Peer(backup).DomainSize(); size != 7 {
		t.Fatalf("post-failover domain size = %d, want 7", size)
	}
	// And the domain still works: submit a task.
	origin := env.NodeID(0)
	for _, id := range c.IDs() {
		if c.Net.Alive(id) && id != backup {
			origin = id
			break
		}
	}
	spec := stdSpec(origin)
	spec.ObjectName = "obj-0"
	c.Submit(c.Eng.Now(), origin, spec)
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	ev = c.Events.Snapshot()
	// obj-0 lived on node 0 (the dead RM) — so this should be rejected,
	// not hang. (No other domain to redirect to.)
	if ev.Rejected != 1 {
		t.Fatalf("post-failover submit: rejected=%d admitted=%d", ev.Rejected, ev.Admitted)
	}
}

func TestGracefulLeaveUpdatesDomain(t *testing.T) {
	c := smallDomain(t, 6, core.DefaultConfig())
	c.Leave(c.Eng.Now(), 4)
	c.RunUntil(c.Eng.Now() + 5*sim.Second)
	if size := c.Peer(0).DomainSize(); size != 5 {
		t.Fatalf("domain size after leave = %d, want 5", size)
	}
	// Leave is immediate (no heartbeat wait): no dead declaration needed
	// beyond the leave itself.
	ev := c.Events.Snapshot()
	if ev.PeersDeclaredDead != 1 {
		t.Fatalf("declared dead = %d (leave should count once)", ev.PeersDeclaredDead)
	}
}

func TestGossipSpreadsSummaries(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 3
	c := smallDomain(t, 9, cfg)
	c.RunUntil(60 * sim.Second)
	rms := c.RMs()
	if len(rms) < 2 {
		t.Fatalf("need multiple domains, got %v", rms)
	}
	for _, id := range rms {
		if got := c.Peer(id).KnownDomains(); got != len(rms)-1 {
			t.Fatalf("RM n%d knows %d domains, want %d", id, got, len(rms)-1)
		}
		if vs := c.Peer(id).SummaryVersions(); len(vs) != len(rms)-1 {
			t.Fatalf("RM n%d has %d summaries, want %d", id, len(vs), len(rms)-1)
		}
	}
}

func TestInterDomainRedirect(t *testing.T) {
	// Two domains; the object lives only in domain B. A task submitted in
	// domain A must be redirected via gossip summaries and still complete.
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 4
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, netCfg(), 7)
	infos := make([]proto.PeerInfo, 9)
	for i := range infos {
		infos[i] = fixedInfo()
		infos[i].Services = append([]media.Transcoder(nil), cat.Ladder...)
	}
	// The object goes on peer 6, which (joining later) lands outside the
	// founder's full domain.
	infos[6].Objects = []media.Object{{
		Name:   "obj-远",
		Format: cat.Sources[0],
		Bytes:  int64(20 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8),
	}}
	c.AddFounder(infos[0])
	for i := 1; i < 9; i++ {
		c.AddPeer(infos[i], 0)
		c.RunUntil(c.Eng.Now() + sim.Second)
	}
	c.RunUntil(30 * sim.Second) // let gossip converge
	if len(c.RMs()) < 2 {
		t.Fatalf("RMs = %v, want 2+ domains", c.RMs())
	}
	// Confirm peer 6 is NOT in domain of RM 0 (it joined after the cap).
	spec := stdSpec(1)
	spec.ObjectName = "obj-远"
	spec.DeadlineMicros = 5_000_000
	c.Submit(c.Eng.Now(), 1, spec)
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Redirected == 0 {
		t.Fatalf("no redirect happened (admitted=%d rejected=%d)", ev.Admitted, ev.Rejected)
	}
	if ev.Admitted != 1 || len(ev.Reports) != 1 {
		t.Fatalf("cross-domain task: admitted=%d reports=%d rejected=%d",
			ev.Admitted, len(ev.Reports), ev.Rejected)
	}
	if ev.Reports[0].Received == 0 {
		t.Fatalf("cross-domain stream delivered nothing: %+v", ev.Reports[0])
	}
}

func TestOverloadReassignsSession(t *testing.T) {
	// Force every allocation onto one hot peer by making it the only
	// transcoder holder initially; then adding capacity elsewhere and
	// letting adaptation migrate.
	cfg := core.DefaultConfig()
	cfg.AdaptPeriod = sim.Second
	cfg.OverloadUtil = 0.5
	cfg.ReassignMargin = 0.1
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, netCfg(), 11)
	infos := make([]proto.PeerInfo, 4)
	for i := range infos {
		infos[i] = fixedInfo()
	}
	// Peer 1: the only transcoder for src->tgt1 initially... but services
	// are static. Instead: both peers 1 and 2 offer it, but peer 2 has a
	// preloaded slow CPU so the first allocations go to 1; we then drive
	// peer 1 over the overload threshold with many sessions.
	tr := media.Transcoder{From: cat.Sources[0], To: cat.Targets[0]}
	infos[1].Services = []media.Transcoder{tr}
	infos[2].Services = []media.Transcoder{tr}
	infos[1].SpeedWU = 10
	infos[2].SpeedWU = 10
	infos[0].Objects = []media.Object{{
		Name:   "obj-0",
		Format: cat.Sources[0],
		Bytes:  int64(60 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8),
	}}
	c.AddFounder(infos[0])
	for i := 1; i < 4; i++ {
		c.AddPeer(infos[i], 0)
	}
	c.RunUntil(3 * sim.Second)
	spec := proto.TaskSpec{
		ObjectName: "obj-0",
		Constraint: media.Constraint{
			Codecs:         []media.Codec{media.MPEG4},
			MaxBitrateKbps: 64,
			MaxWidth:       640,
			MaxHeight:      480,
		},
		DeadlineMicros: 3_000_000,
		DurationSec:    40,
		ChunkSec:       1,
	}
	// Several long sessions: fairness packs them onto both transcoder
	// peers; when one exceeds 50% utilization adaptation should migrate.
	for i := 0; i < 3; i++ {
		s := spec
		s.Origin = 3
		c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second/2, 3, s)
	}
	c.RunUntil(c.Eng.Now() + 90*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Admitted == 0 {
		t.Fatalf("nothing admitted (rejected=%d)", ev.Rejected)
	}
	if ev.Migrations == 0 {
		t.Skip("no migration triggered in this configuration (load stayed balanced)")
	}
}

func TestDeterministicRuns(t *testing.T) {
	runOnce := func() core.EventsData {
		c := smallDomain(t, 8, core.DefaultConfig())
		for i := 0; i < 4; i++ {
			origin := env.NodeID(i + 1)
			c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second, origin, stdSpec(origin))
		}
		c.RunUntil(60 * sim.Second)
		return c.Events.Snapshot()
	}
	a, b := runOnce(), runOnce()
	if a.Admitted != b.Admitted || a.Rejected != b.Rejected || len(a.Reports) != len(b.Reports) {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Reports {
		if a.Reports[i] != b.Reports[i] {
			t.Fatalf("report %d differs: %+v vs %+v", i, a.Reports[i], b.Reports[i])
		}
	}
}

func TestHeterogeneousClusterBuild(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MaxDomainPeers = 8
	r := rng.New(5)
	infos := cluster.PeerSpecs(r, 24, cfg.Qualify, 0.5)
	cat := cluster.StandardCatalog()
	cat.Populate(r, infos, 3, 10, 2, 20)
	c := cluster.Build(cfg, netCfg(), 9, infos, 200*sim.Millisecond)
	c.RunUntil(c.Eng.Now() + 30*sim.Second)
	if got := c.JoinedCount(); got != 24 {
		t.Fatalf("joined = %d/24", got)
	}
	if len(c.RMs()) < 3 {
		t.Fatalf("RMs = %v, want >=3 domains for 24 peers at cap 8", c.RMs())
	}
}

func TestRMAndBackupBothDieSelfPromotion(t *testing.T) {
	c := smallDomain(t, 8, core.DefaultConfig())
	backup := c.Peer(0).Backup()
	c.RunUntil(c.Eng.Now() + 3*sim.Second) // at least one backup sync
	// Kill the RM and its backup in the same instant: nobody holds the
	// replicated state, so survivors must self-heal.
	now := c.Eng.Now()
	c.Crash(now, 0)
	c.Crash(now, backup)
	c.RunUntil(now + 60*sim.Second)
	rms := c.RMs()
	if len(rms) == 0 {
		t.Fatal("no RM emerged after losing RM and backup")
	}
	// Every survivor must be joined again under some RM.
	joined := 0
	for _, id := range c.IDs() {
		if c.Net.Alive(id) && c.Peer(id).Joined() {
			joined++
		}
	}
	if joined != 6 {
		t.Fatalf("joined = %d/6 survivors (RMs=%v)", joined, rms)
	}
	// The healed overlay must still serve tasks for objects that survived.
	// obj-0 lived on node 0 (dead), so craft an expectation-free check:
	// submission gets rejected, not lost.
	origin := rms[0]
	for _, id := range c.IDs() {
		if c.Net.Alive(id) && id != rms[0] {
			origin = id
			break
		}
	}
	c.Submit(c.Eng.Now(), origin, stdSpec(origin))
	c.RunUntil(c.Eng.Now() + 20*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Rejected+ev.Admitted == 0 {
		t.Fatalf("post-heal submission vanished: %+v", ev)
	}
}

func TestSessionsSurviveRMFailover(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.BackupSyncPeriod = 500 * sim.Millisecond
	c := smallDomain(t, 8, cfg)
	// Long-running session; the object must not live on the RM so the
	// stream does not depend on the node we kill.
	spec := stdSpec(3)
	spec.DurationSec = 30
	// Move the object: re-use obj-0 on node 0 is unavoidable in
	// smallDomain, so instead verify the session *continues streaming*
	// even though its source (node 0) is also the RM we kill — i.e. the
	// session is lost, but the system recovers and reports.
	c.Submit(c.Eng.Now(), 3, spec)
	c.RunUntil(c.Eng.Now() + 5*sim.Second)
	c.Crash(c.Eng.Now(), 0) // RM and source die together
	c.RunUntil(c.Eng.Now() + 90*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Failovers != 1 {
		t.Fatalf("failovers = %d", ev.Failovers)
	}
	// The sink must still finalize (watchdog) and report the partial
	// session rather than leaking it.
	if len(ev.Reports) != 1 {
		t.Fatalf("reports = %d, want 1 (watchdog finalize)", len(ev.Reports))
	}
	r := ev.Reports[0]
	if r.Received == 0 || r.Received == r.Chunks {
		t.Fatalf("expected a partial stream, got %+v", r)
	}
}

func TestPreemptionUnit(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.PreemptLowImportance = true
	cfg.AdaptPeriod = 0
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, netCfg(), 77)
	obj := media.Object{Name: "obj-0", Format: cat.Sources[0],
		Bytes: int64(60 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8)}
	mk := func() proto.PeerInfo {
		return proto.PeerInfo{SpeedWU: 3, BandwidthKbps: 5000, UptimeSec: 7200,
			Services: []media.Transcoder{{From: cat.Sources[0], To: cat.Targets[0]}}}
	}
	first := mk()
	first.Objects = []media.Object{obj}
	c.AddFounder(first)
	c.AddPeer(mk(), 0)
	c.RunUntil(3 * sim.Second)
	spec := func(id string, imp int) proto.TaskSpec {
		return proto.TaskSpec{ID: id, Origin: 1, ObjectName: "obj-0",
			Constraint: media.Constraint{Codecs: []media.Codec{media.MPEG4},
				MaxWidth: 640, MaxHeight: 480, MaxBitrateKbps: 64},
			DeadlineMicros: 3_000_000, Importance: imp, DurationSec: 60, ChunkSec: 1}
	}
	// Capacity fits exactly one transcode per peer (work ≈ 2.3, speed 3).
	c.Submit(c.Eng.Now(), 1, spec("lo-1", 1))
	c.Submit(c.Eng.Now()+sim.Second, 1, spec("lo-2", 1))
	c.RunUntil(c.Eng.Now() + 5*sim.Second)
	// Saturated: a high-importance task must preempt one of them.
	c.Submit(c.Eng.Now(), 1, spec("hi-1", 9))
	c.RunUntil(c.Eng.Now() + 120*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", ev.Preemptions)
	}
	foundHi := false
	for _, r := range ev.Reports {
		if r.TaskID == "hi-1" && r.Received > 0 {
			foundHi = true
		}
	}
	if !foundHi {
		t.Fatalf("high-importance task never streamed: %+v", ev.Reports)
	}
	// An *equal*-importance task must NOT preempt.
	before := ev.Preemptions
	c.Submit(c.Eng.Now(), 1, spec("hi-2", 9))
	c.RunUntil(c.Eng.Now() + 20*sim.Second)
	if got := c.Events.Snapshot().Preemptions; got != before {
		t.Fatalf("equal importance preempted: %d -> %d", before, got)
	}
}

func TestBackgroundLoadVisibleToRM(t *testing.T) {
	c := smallDomain(t, 4, core.DefaultConfig())
	c.Eng.At(c.Eng.Now(), func() { c.Peer(2).SetBackgroundLoad(5) })
	c.RunUntil(c.Eng.Now() + 5*sim.Second) // a few profile periods
	if got := c.Peer(2).BackgroundLoad(); got != 5 {
		t.Fatalf("BackgroundLoad = %v", got)
	}
	if got := c.Peer(2).Profiler().Load(); got < 5 {
		t.Fatalf("profiler load = %v, want >= 5", got)
	}
	// Clearing restores.
	c.Eng.At(c.Eng.Now(), func() { c.Peer(2).SetBackgroundLoad(0) })
	c.RunUntil(c.Eng.Now() + 2*sim.Second)
	if got := c.Peer(2).Profiler().Load(); got != 0 {
		t.Fatalf("profiler load after clear = %v", got)
	}
}

func TestMeasuredRTTFeedsAllocation(t *testing.T) {
	// With 40ms links, heartbeat RTT ≈ 80ms, so allocation latency
	// estimates should reflect ~40ms hops rather than the 20ms prior.
	cfg := core.DefaultConfig()
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, netsim.Config{Latency: netsim.UniformLatency(40 * sim.Millisecond)}, 3)
	obj := media.Object{Name: "obj-0", Format: cat.Sources[0],
		Bytes: int64(10 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8)}
	mk := func() proto.PeerInfo {
		return proto.PeerInfo{SpeedWU: 10, BandwidthKbps: 5000, UptimeSec: 7200,
			Services: append([]media.Transcoder(nil), cat.Ladder...)}
	}
	first := mk()
	first.Objects = []media.Object{obj}
	c.AddFounder(first)
	for i := 0; i < 3; i++ {
		c.AddPeer(mk(), 0)
	}
	c.RunUntil(10 * sim.Second) // many heartbeat rounds -> RTTs measured
	// A deadline feasible under the 20ms prior but not under measured
	// 40ms hops would expose the difference; here simply assert the task
	// still completes and startup reflects real latency.
	c.Submit(c.Eng.Now(), 2, stdSpec(2))
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	ev := c.Events.Snapshot()
	if len(ev.Reports) != 1 {
		t.Fatalf("reports = %d (rejected=%d)", len(ev.Reports), ev.Rejected)
	}
}

func TestConnManagerTracksPipelines(t *testing.T) {
	c := smallDomain(t, 6, core.DefaultConfig())
	c.Submit(c.Eng.Now(), 3, stdSpec(3))
	c.RunUntil(c.Eng.Now() + 3*sim.Second)
	// While streaming, some peer holds a pipeline connection beyond the
	// RM link.
	active := 0
	for _, id := range c.IDs() {
		if c.Peer(id).Connections().Active() > 0 {
			active++
		}
	}
	if active == 0 {
		t.Fatal("no connections tracked during streaming")
	}
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	// After drain, non-RM peers should be back to just the RM link.
	for _, id := range c.IDs() {
		p := c.Peer(id)
		if p.IsRM() {
			continue
		}
		if got := p.Connections().Active(); got > 1 {
			t.Fatalf("peer %d leaked connections: %d active", id, got)
		}
	}
}

func TestNoLeaksAfterDrain(t *testing.T) {
	c := smallDomain(t, 8, core.DefaultConfig())
	for i := 0; i < 5; i++ {
		origin := env.NodeID(i%7 + 1)
		c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second, origin, stdSpec(origin))
	}
	c.RunUntil(c.Eng.Now() + 120*sim.Second)
	ev := c.Events.Snapshot()
	if len(ev.Reports) != 5 {
		t.Fatalf("reports = %d/5", len(ev.Reports))
	}
	for _, id := range c.IDs() {
		p := c.Peer(id)
		if got := len(p.ActiveSinkSessions()); got != 0 {
			t.Fatalf("peer %d leaked %d sink sessions", id, got)
		}
		if load := p.Profiler().Load(); load != 0 {
			t.Fatalf("peer %d leaked load %v", id, load)
		}
		if q := p.Processor().QueueLength(); q != 0 {
			t.Fatalf("peer %d leaked %d queued tasks", id, q)
		}
	}
	if rm := c.Peer(0); rm.RunningSessions() != 0 {
		t.Fatalf("RM leaked %d sessions", rm.RunningSessions())
	}
}

func TestConnectionLimitRefusesCompose(t *testing.T) {
	// Cap connections so tightly that a pipeline stage role cannot open
	// its forwarding connection: composition must be refused and the
	// task rejected, not left hanging.
	cfg := core.DefaultConfig()
	cfg.MaxConnections = 1 // the RM link uses the single slot
	c := smallDomain(t, 6, cfg)
	c.Submit(c.Eng.Now(), 3, stdSpec(3))
	c.RunUntil(c.Eng.Now() + 30*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1 (admitted=%d reports=%d)",
			ev.Rejected, ev.Admitted, len(ev.Reports))
	}
	if len(ev.Reports) != 0 {
		t.Fatalf("refused session produced a report: %+v", ev.Reports)
	}
	// RM must not leak the session.
	for _, id := range c.RMs() {
		if got := c.Peer(id).RunningSessions(); got != 0 {
			t.Fatalf("RM leaked %d sessions", got)
		}
	}
	// And with a generous limit the same task succeeds.
	cfg.MaxConnections = 8
	c2 := smallDomain(t, 6, cfg)
	c2.Submit(c2.Eng.Now(), 3, stdSpec(3))
	c2.RunUntil(c2.Eng.Now() + 60*sim.Second)
	if ev2 := c2.Events.Snapshot(); len(ev2.Reports) != 1 {
		t.Fatalf("generous limit: reports = %d (rejected=%d)", len(ev2.Reports), ev2.Rejected)
	}
}

func TestLossyNetworkDegradesGracefully(t *testing.T) {
	// 2% independent message loss: joins retry, lost chunks count as
	// misses, lost acks time sessions out — but nothing hangs or leaks.
	cat := cluster.StandardCatalog()
	cfg := core.DefaultConfig()
	infos := make([]proto.PeerInfo, 8)
	for i := range infos {
		infos[i] = fixedInfo()
		infos[i].Services = append([]media.Transcoder(nil), cat.Ladder...)
	}
	infos[0].Objects = []media.Object{{
		Name:   "obj-0",
		Format: cat.Sources[0],
		Bytes:  int64(15 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8),
	}}
	c := cluster.New(cfg, netsim.Config{
		Latency:  netsim.UniformLatency(10 * sim.Millisecond),
		LossRate: 0.02,
	}, 21)
	c.AddFounder(infos[0])
	for i := 1; i < 8; i++ {
		c.AddPeer(infos[i], 0)
	}
	c.RunUntil(15 * sim.Second)
	if got := c.JoinedCount(); got != 8 {
		t.Fatalf("joined = %d/8 under loss", got)
	}
	for i := 0; i < 6; i++ {
		origin := env.NodeID(i + 1)
		spec := stdSpec(origin)
		spec.DurationSec = 15
		c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second, origin, spec)
	}
	c.RunUntil(c.Eng.Now() + 180*sim.Second)
	ev := c.Events.Snapshot()
	// Every submission must resolve one way or another — no lost tasks.
	if ev.Admitted+ev.Rejected < ev.Submitted {
		t.Fatalf("unresolved submissions: %+v", ev)
	}
	// Every admitted session either reports (watchdog guarantees
	// finalization even when the last chunk is lost) or was cancelled
	// during composition when a lost compose/ack timed it out — in which
	// case the submitter got a rejection.
	if len(ev.Reports)+ev.Rejected < ev.Admitted {
		t.Fatalf("unaccounted sessions: reports=%d rejected=%d admitted=%d",
			len(ev.Reports), ev.Rejected, ev.Admitted)
	}
	// Most chunks should still arrive.
	var chunks, recv int
	for _, r := range ev.Reports {
		chunks += r.Chunks
		recv += r.Received
	}
	if chunks == 0 || float64(recv)/float64(chunks) < 0.8 {
		t.Fatalf("delivered %d/%d chunks under 2%% loss", recv, chunks)
	}
}

func TestStaleGenerationChunksDropped(t *testing.T) {
	// A session repaired to generation 1 must ignore chunks stamped with
	// generation 0 that were still in flight.
	cfg := core.DefaultConfig()
	c := smallDomain(t, 8, cfg)
	spec := stdSpec(3)
	spec.DurationSec = 20
	c.Submit(c.Eng.Now(), 3, spec)
	c.RunUntil(c.Eng.Now() + 4*sim.Second)
	// Find and crash a stage peer to force a repair (generation bump).
	var victim env.NodeID = env.NoNode
	for _, id := range c.IDs() {
		p := c.Peer(id)
		if !p.IsRM() && p.Profiler().Load() > 0 && id != 3 && id != 0 {
			victim = id
			break
		}
	}
	if victim == env.NoNode {
		t.Skip("no distinct stage peer in this allocation")
	}
	c.Crash(c.Eng.Now(), victim)
	c.RunUntil(c.Eng.Now() + 90*sim.Second)
	ev := c.Events.Snapshot()
	if len(ev.Reports) != 1 {
		t.Fatalf("reports = %d", len(ev.Reports))
	}
	r := ev.Reports[0]
	// Dedup at the sink means received never exceeds chunk count even
	// though early chunks were re-streamed by the repaired generation.
	if r.Received > r.Chunks {
		t.Fatalf("duplicate chunks double counted: %+v", r)
	}
	if r.Repaired == 0 {
		t.Fatalf("no repair recorded: %+v", r)
	}
}

func TestDuplicateComposeIsIdempotent(t *testing.T) {
	// Re-sending the same GraphCompose (same generation) must just re-ack
	// without duplicating load on the stage peer.
	c := smallDomain(t, 6, core.DefaultConfig())
	spec := stdSpec(3)
	spec.DurationSec = 15
	c.Submit(c.Eng.Now(), 3, spec)
	c.RunUntil(c.Eng.Now() + 3*sim.Second)
	// Snapshot per-peer loads, then wait: loads must never exceed one
	// session's stage work per peer (no double-counting from the compose
	// retry path, which we emulate by verifying idempotence indirectly:
	// the load equals exactly the allocated stage work).
	for _, id := range c.IDs() {
		p := c.Peer(id)
		if load := p.Profiler().Load(); load > 3.0 {
			t.Fatalf("peer %d load %v exceeds any single stage's work", id, load)
		}
	}
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	if ev := c.Events.Snapshot(); len(ev.Reports) != 1 || ev.Reports[0].Missed != 0 {
		t.Fatalf("session failed: %+v", c.Events.Snapshot().Reports)
	}
}
