package core

import (
	"sort"

	"repro/internal/env"
	"repro/internal/proto"
)

// gossipDiscovery is the paper's lazy anti-entropy backend (§4.4) behind
// the Discovery interface: a thin adapter over the gossip machinery in
// gossip.go, which stays byte-identical to the pre-interface behavior.
// Decision logic that consumes the gossiped summaries (object-domain
// picks, join redirects) lives here.
type gossipDiscovery struct {
	p *Peer
}

func newGossipDiscovery(p *Peer) *gossipDiscovery { return &gossipDiscovery{p: p} }

func (g *gossipDiscovery) Init() {}
func (g *gossipDiscovery) Stop() {}

// NoteContacts is a no-op: gossip learns RMs from exchanged summaries.
func (g *gossipDiscovery) NoteContacts(ids ...env.NodeID) {}

// CatalogChanged is a no-op: callers bump the summary version and the
// next gossip round rebuilds the advertisement lazily.
func (g *gossipDiscovery) CatalogChanged() {}

// StartRM arms the anti-entropy round ticker on the RM timer list, so a
// takeover cancels it with the rest of the role's timers.
func (g *gossipDiscovery) StartRM() {
	p := g.p
	if p.cfg.GossipPeriod > 0 {
		p.rm.timers = append(p.rm.timers, env.Every(p.ctx, p.cfg.GossipPeriod, p.cfg.GossipPeriod, p.rmGossipTick))
	}
}

func (g *gossipDiscovery) HandleMessage(from env.NodeID, m env.Message) bool {
	switch msg := m.(type) {
	case proto.GossipDigest:
		g.p.rmHandleGossipDigest(from, msg)
	case proto.GossipSummaries:
		g.p.rmHandleGossipSummaries(from, msg)
	default:
		return false
	}
	return true
}

// LookupObject resolves synchronously from the cached summaries.
func (g *gossipDiscovery) LookupObject(task, object string, tc proto.TraceContext, done func(env.NodeID)) {
	done(g.pickObjectDomain(object))
}

// staleSummary reports whether domain d's cached summary has aged past
// the prune horizon without being refreshed. Prune runs only on gossip
// ticks, so between ticks (or after a stale copy bounced back in) the
// cache can hold entries older than SummaryMaxAge; consulting them for
// redirects sends tasks and joiners at domains that are likely gone.
// Every skip is counted (p2p_rm_redirects_stale_skipped_total).
func (g *gossipDiscovery) staleSummary(st *rmState, d proto.DomainID) bool {
	maxAge := g.p.cfg.SummaryMaxAge
	if maxAge <= 0 {
		return false
	}
	seen, ok := st.summarySeen[d]
	if !ok {
		// Pre-aging entry: pruneStaleSummaries stamps it with a full window.
		return false
	}
	if g.p.ctx.Now()-seen <= maxAge {
		return false
	}
	g.p.events.staleRedirectSkipped(st.domain)
	return true
}

// pickObjectDomain finds a gossiped domain whose object Bloom filter
// possibly contains the object, preferring low utilization and skipping
// summaries older than the prune horizon.
func (g *gossipDiscovery) pickObjectDomain(object string) env.NodeID {
	st := g.p.rm
	if st == nil {
		return env.NoNode
	}
	type cand struct {
		rm   env.NodeID
		util float64
	}
	var cands []cand
	for _, d := range sortedMapKeys(st.summaries) {
		sum := st.summaries[d]
		if d == st.domain || len(sum.ObjectBloom) == 0 {
			continue
		}
		if g.staleSummary(st, d) {
			continue
		}
		f, err := bloomFrom(sum)
		if err != nil || !f.ContainsString(object) {
			continue
		}
		cands = append(cands, cand{sum.RM, sum.AvgUtil})
	}
	if len(cands) == 0 {
		return env.NoNode
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].util != cands[j].util {
			return cands[i].util < cands[j].util
		}
		return cands[i].rm < cands[j].rm
	})
	return cands[0].rm
}

// RedirectRM chooses another domain's RM for a join redirect, preferring
// low utilization and skipping domains whose last summary shows them at
// capacity or has aged past the prune horizon.
func (g *gossipDiscovery) RedirectRM(maxPeers int) env.NodeID {
	st := g.p.rm
	if st == nil {
		return env.NoNode
	}
	type cand struct {
		rm   env.NodeID
		util float64
	}
	var cands []cand
	for _, d := range sortedMapKeys(st.knownRMs) {
		util := 0.5
		if sum, ok := st.summaries[d]; ok {
			if g.staleSummary(st, d) {
				continue
			}
			util = sum.AvgUtil
			if sum.NumPeers >= maxPeers {
				continue
			}
		}
		cands = append(cands, cand{st.knownRMs[d], util})
	}
	if len(cands) == 0 {
		return env.NoNode
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].util != cands[j].util {
			return cands[i].util < cands[j].util
		}
		return cands[i].rm < cands[j].rm
	})
	return cands[0].rm
}

func (g *gossipDiscovery) Diag() DiscoveryDiag {
	d := DiscoveryDiag{Backend: DiscoveryGossip, Domain: g.p.domain, IsRM: g.p.IsRM()}
	if st := g.p.rm; st != nil {
		d.KnownDomains = len(st.knownRMs)
		d.Summaries = len(st.summaries)
	}
	return d
}
