package core

import (
	"sync"

	"repro/internal/proto"
)

// Events collects run-wide observations from all nodes. One Events
// instance is shared by every peer of a run; experiments read it after the
// simulation finishes. It is mutex-guarded so the live runtime (where
// nodes are goroutines) can share it too.
type Events struct {
	mu sync.Mutex
	EventsData
}

// EventsData is the plain-data portion of Events; Snapshot returns a copy
// of it.
type EventsData struct {
	Submitted  int // task queries issued by users
	Admitted   int // sessions composed
	Rejected   int // TaskReject outcomes
	Redirected int // inter-domain forwards

	Reports []proto.SessionReport // completed-session accounts

	Repairs        int     // failure-triggered re-allocations
	RepairMicros   []int64 // detection→recompose latency
	Migrations     int     // overload-triggered reassignments
	Preemptions    int     // importance-based session preemptions
	Aborted        int     // sessions torn down before/without a sink report
	Failovers      int     // backup→RM takeovers
	FailoverMicros []int64 // RM silence detection→takeover

	DomainsCreated    int
	PeersDeclaredDead int

	AllocNanos []int64 // wall-clock cost of each allocation computation
}

// Lock-protected mutators used by node internals.

func (e *Events) submitted() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Submitted++
	e.mu.Unlock()
}

func (e *Events) admitted() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Admitted++
	e.mu.Unlock()
}

func (e *Events) rejected() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Rejected++
	e.mu.Unlock()
}

func (e *Events) redirected() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Redirected++
	e.mu.Unlock()
}

func (e *Events) report(r proto.SessionReport) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Reports = append(e.Reports, r)
	e.mu.Unlock()
}

func (e *Events) repair(micros int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Repairs++
	e.RepairMicros = append(e.RepairMicros, micros)
	e.mu.Unlock()
}

func (e *Events) aborted() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Aborted++
	e.mu.Unlock()
}

func (e *Events) preemption() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Preemptions++
	e.mu.Unlock()
}

func (e *Events) migration() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Migrations++
	e.mu.Unlock()
}

func (e *Events) failover(micros int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Failovers++
	e.FailoverMicros = append(e.FailoverMicros, micros)
	e.mu.Unlock()
}

func (e *Events) domainCreated() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.DomainsCreated++
	e.mu.Unlock()
}

func (e *Events) peerDead() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.PeersDeclaredDead++
	e.mu.Unlock()
}

func (e *Events) allocCost(nanos int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.AllocNanos = append(e.AllocNanos, nanos)
	e.mu.Unlock()
}

// Snapshot returns a copy safe to read while nodes are still running.
func (e *Events) Snapshot() EventsData {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := e.EventsData
	cp.Reports = append([]proto.SessionReport(nil), e.Reports...)
	cp.RepairMicros = append([]int64(nil), e.RepairMicros...)
	cp.FailoverMicros = append([]int64(nil), e.FailoverMicros...)
	cp.AllocNanos = append([]int64(nil), e.AllocNanos...)
	return cp
}

// MissRate aggregates chunk misses across all session reports.
func (e *Events) MissRate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var chunks, missed int
	for _, r := range e.Reports {
		chunks += r.Chunks
		missed += r.Missed
	}
	if chunks == 0 {
		return 0
	}
	return float64(missed) / float64(chunks)
}

// SessionsOnTime counts sessions whose startup met the given budget and
// that missed no chunks.
func (e *Events) SessionsOnTime(startupBudgetMicros int64) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.Reports {
		if r.Missed == 0 && r.StartupMicros <= startupBudgetMicros {
			n++
		}
	}
	return n
}
