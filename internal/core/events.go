package core

import (
	"strconv"
	"sync"

	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Events collects run-wide observations from all nodes. One Events
// instance is shared by every peer of a run; experiments read it after the
// simulation finishes. It is mutex-guarded so the live runtime (where
// nodes are goroutines) can share it too.
//
// Beyond the coarse counters of EventsData, an Events can carry two
// optional sinks attached before the run starts: a *trace.Tracer (span
// tracing of each task query, see internal/trace) and a
// *metrics.Registry (labeled counters/gauges/histograms for the /metrics
// endpoint). The mutators below are thin emitters into all three; with no
// sinks attached they cost what they always did.
type Events struct {
	mu         sync.Mutex
	EventsData // guarded by mu

	// tr, reg, sk and dec are set once by the Attach* methods before any
	// node runs (the goroutine/simulation start provides the
	// happens-before edge), so the emitters read them without locking.
	tr  *trace.Tracer
	reg *metrics.Registry
	sk  *stats.Set
	dec *DecisionLog
}

// EventsData is the plain-data portion of Events; Snapshot returns a copy
// of it.
type EventsData struct {
	Submitted  int // task queries issued by users
	Admitted   int // sessions composed
	Rejected   int // TaskReject outcomes
	Redirected int // inter-domain forwards

	Reports []proto.SessionReport // completed-session accounts

	Repairs        int     // failure-triggered re-allocations
	RepairMicros   []int64 // detection→recompose latency
	Migrations     int     // overload-triggered reassignments
	Preemptions    int     // importance-based session preemptions
	Aborted        int     // sessions torn down before/without a sink report
	Failovers      int     // backup→RM takeovers
	FailoverMicros []int64 // RM silence detection→takeover

	DomainsCreated    int
	PeersDeclaredDead int

	StaleRedirectSkips int // redirect candidates skipped for stale summaries
	DHTLookups         int // iterative DHT provider lookups finished
	DHTLookupHits      int // ... that found at least one record

	AllocNanos []int64 // wall-clock cost of each allocation computation
}

// Metric families emitted into an attached Registry. All session counters
// carry a "domain" label; the load/util gauges additionally carry "peer".
const (
	MetricSubmitted   = "p2p_sessions_submitted_total"
	MetricAdmitted    = "p2p_sessions_admitted_total"
	MetricRejected    = "p2p_sessions_rejected_total"
	MetricRedirected  = "p2p_sessions_redirected_total"
	MetricCompleted   = "p2p_sessions_completed_total"
	MetricAborted     = "p2p_sessions_aborted_total"
	MetricRepairs     = "p2p_session_repairs_total"
	MetricMigrations  = "p2p_session_migrations_total"
	MetricPreemptions = "p2p_session_preemptions_total"
	MetricFailovers   = "p2p_rm_failovers_total"
	MetricDomains     = "p2p_domains_created_total"
	MetricPeersDead   = "p2p_peers_declared_dead_total"
	MetricChunks      = "p2p_chunks_total"
	MetricChunksMiss  = "p2p_chunks_missed_total"
	MetricAllocSec    = "p2p_alloc_seconds"
	MetricRepairSec   = "p2p_repair_seconds"
	MetricFailoverSec = "p2p_failover_seconds"
	MetricPeerLoad    = "p2p_peer_load"
	MetricPeerUtil    = "p2p_peer_util"
	MetricDecisions   = "p2p_rm_decisions_total"
	MetricStaleSkips  = "p2p_rm_redirects_stale_skipped_total"
	MetricDHTLookups  = "p2p_dht_lookups_total"
	MetricDHTLookupS  = "p2p_dht_lookup_seconds"
)

// AttachTracer installs a span-tracing sink. Must be called before any
// node of the run starts executing.
func (e *Events) AttachTracer(tr *trace.Tracer) {
	if e == nil {
		return
	}
	e.tr = tr
}

// Tracer returns the attached tracer, nil when tracing is off. Call sites
// guard with this so the disabled path is one pointer compare.
func (e *Events) Tracer() *trace.Tracer {
	if e == nil {
		return nil
	}
	return e.tr
}

// AttachMetrics installs a labeled-metrics sink and pre-registers the
// session-outcome families for domain 0 so a scrape of a freshly started
// node already exposes them at zero. Must be called before any node of
// the run starts executing.
func (e *Events) AttachMetrics(reg *metrics.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.reg = reg
	d0 := metrics.Labels{"domain": "0"}
	reg.Counter(MetricSubmitted, "Task queries issued by users.", d0)
	reg.Counter(MetricAdmitted, "Sessions composed after a successful allocation.", d0)
	reg.Counter(MetricRejected, "Task queries rejected or timed out.", d0)
	reg.Counter(MetricRedirected, "Task queries forwarded to another domain.", d0)
	reg.Counter(MetricCompleted, "Sessions finalized by their sink.", d0)
}

// Registry returns the attached registry, nil when metrics are off.
func (e *Events) Registry() *metrics.Registry {
	if e == nil {
		return nil
	}
	return e.reg
}

// AttachSketches installs the streaming-percentile sink: allocation
// latency, per-session delivery RTT and failover time feed its windowed
// quantile sketches (internal/stats). Must be called before any node of
// the run starts executing.
func (e *Events) AttachSketches(sk *stats.Set) {
	if e == nil {
		return
	}
	e.sk = sk
}

// Sketches returns the attached sketch set, nil when off.
func (e *Events) Sketches() *stats.Set {
	if e == nil {
		return nil
	}
	return e.sk
}

// AttachDecisions installs the RM decision-audit sink. Must be called
// before any node of the run starts executing.
func (e *Events) AttachDecisions(dec *DecisionLog) {
	if e == nil {
		return
	}
	e.dec = dec
}

// Decisions returns the attached decision log, nil when off.
func (e *Events) Decisions() *DecisionLog {
	if e == nil {
		return nil
	}
	return e.dec
}

func domainLabels(d proto.DomainID) metrics.Labels {
	return metrics.Labels{"domain": strconv.Itoa(int(d))}
}

func (e *Events) count(name, help string, d proto.DomainID) {
	if e.reg != nil {
		// Funnel helper: every caller passes Metric* constants.
		//lint:allow metriclabel name/help are constant at all call sites
		e.reg.Counter(name, help, domainLabels(d)).Inc()
	}
}

// Lock-protected mutators used by node internals. Each takes the domain
// observing the event so attached metrics can label per domain.

func (e *Events) submitted(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Submitted++
	e.mu.Unlock()
	e.count(MetricSubmitted, "Task queries issued by users.", d)
}

func (e *Events) admitted(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Admitted++
	e.mu.Unlock()
	e.count(MetricAdmitted, "Sessions composed after a successful allocation.", d)
}

func (e *Events) rejected(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Rejected++
	e.mu.Unlock()
	e.count(MetricRejected, "Task queries rejected or timed out.", d)
}

func (e *Events) redirected(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Redirected++
	e.mu.Unlock()
	e.count(MetricRedirected, "Task queries forwarded to another domain.", d)
}

func (e *Events) report(d proto.DomainID, nowMicros int64, r proto.SessionReport) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Reports = append(e.Reports, r)
	e.mu.Unlock()
	if e.reg != nil {
		labels := domainLabels(d)
		e.reg.Counter(MetricCompleted, "Sessions finalized by their sink.", labels).Inc()
		e.reg.Counter(MetricChunks, "Chunks expected across finalized sessions.", labels).Add(r.Chunks)
		e.reg.Counter(MetricChunksMiss, "Chunks late or lost across finalized sessions.", labels).Add(r.Missed)
	}
	if e.sk != nil && r.Received > 0 {
		e.sk.Observe(stats.SketchDeliveryRTT, nowMicros, r.MeanLatencyMicros/1e6)
	}
}

func (e *Events) repair(d proto.DomainID, micros int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Repairs++
	e.RepairMicros = append(e.RepairMicros, micros)
	e.mu.Unlock()
	if e.reg != nil {
		e.reg.Counter(MetricRepairs, "Failure-triggered session re-allocations.", domainLabels(d)).Inc()
		e.reg.Histogram(MetricRepairSec, "Failure detection to recompose latency in seconds.",
			nil, domainLabels(d)).Observe(float64(micros) / 1e6)
	}
}

func (e *Events) aborted(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Aborted++
	e.mu.Unlock()
	e.count(MetricAborted, "Sessions torn down before any sink report.", d)
}

func (e *Events) preemption(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Preemptions++
	e.mu.Unlock()
	e.count(MetricPreemptions, "Sessions preempted for higher-importance tasks.", d)
}

func (e *Events) migration(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Migrations++
	e.mu.Unlock()
	e.count(MetricMigrations, "Overload-triggered session reassignments.", d)
}

func (e *Events) failover(d proto.DomainID, nowMicros, micros int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.Failovers++
	e.FailoverMicros = append(e.FailoverMicros, micros)
	e.mu.Unlock()
	if e.reg != nil {
		e.reg.Counter(MetricFailovers, "Backup-to-RM takeovers.", domainLabels(d)).Inc()
		e.reg.Histogram(MetricFailoverSec, "RM silence detection to takeover latency in seconds.",
			nil, domainLabels(d)).Observe(float64(micros) / 1e6)
	}
	if e.sk != nil {
		e.sk.Observe(stats.SketchFailover, nowMicros, float64(micros)/1e6)
	}
}

// staleRedirectSkipped counts a redirect candidate passed over because
// its cached summary aged past the prune horizon.
func (e *Events) staleRedirectSkipped(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.StaleRedirectSkips++
	e.mu.Unlock()
	e.count(MetricStaleSkips, "Redirect candidates skipped because their summary aged past the prune horizon.", d)
}

// dhtLookup records one finished iterative DHT provider lookup.
func (e *Events) dhtLookup(d proto.DomainID, nowMicros int64, hit bool, sec float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.DHTLookups++
	if hit {
		e.DHTLookupHits++
	}
	e.mu.Unlock()
	if e.reg != nil {
		result := "miss"
		if hit {
			result = "hit"
		}
		labels := metrics.Labels{"domain": strconv.Itoa(int(d)), "result": result}
		e.reg.Counter(MetricDHTLookups, "Iterative DHT provider lookups by outcome.", labels).Inc()
		e.reg.Histogram(MetricDHTLookupS, "Iterative DHT lookup latency in seconds.",
			nil, domainLabels(d)).Observe(sec)
	}
	if e.sk != nil {
		e.sk.Observe(stats.SketchDHTLookup, nowMicros, sec)
	}
}

func (e *Events) domainCreated(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.DomainsCreated++
	e.mu.Unlock()
	e.count(MetricDomains, "Domains founded over the run.", d)
}

func (e *Events) peerDead(d proto.DomainID) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.PeersDeclaredDead++
	e.mu.Unlock()
	e.count(MetricPeersDead, "Peers removed from a domain (crash or leave).", d)
}

func (e *Events) allocCost(d proto.DomainID, nowMicros, nanos int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.AllocNanos = append(e.AllocNanos, nanos)
	e.mu.Unlock()
	if e.reg != nil {
		e.reg.Histogram(MetricAllocSec, "Wall-clock cost of one allocation computation in seconds.",
			nil, domainLabels(d)).Observe(float64(nanos) / 1e9)
	}
	if e.sk != nil {
		e.sk.Observe(stats.SketchAllocLatency, nowMicros, float64(nanos)/1e9)
	}
}

// decide funnels one RM decision to the audit ring, the tracer (as a
// "decision" instant inside the task's span) and the metrics registry.
func (e *Events) decide(d Decision) {
	if e == nil {
		return
	}
	if e.dec != nil {
		e.dec.Add(d)
	}
	if e.reg != nil {
		labels := metrics.Labels{"domain": strconv.Itoa(d.Domain), "result": d.Action}
		e.reg.Counter(MetricDecisions, "RM decisions by action.", labels).Inc()
	}
	if e.tr != nil {
		attrs := []trace.Attr{trace.A("action", d.Action)}
		if d.Reason != "" {
			attrs = append(attrs, trace.A("reason", d.Reason))
		}
		if d.UtilityDelta != 0 {
			attrs = append(attrs, trace.A("utility_delta", d.UtilityDelta))
		}
		if len(d.Candidates) > 0 {
			attrs = append(attrs, trace.A("candidates", d.Candidates))
		}
		e.tr.Instant(d.TSMicros, d.Task, trace.EventDecision, d.Node, d.Domain, attrs...)
	}
}

// peerLoad exports one peer's profiled load and relative utilization as
// labeled gauges; it is metrics-only (nothing accumulates in EventsData).
func (e *Events) peerLoad(d proto.DomainID, peer int, load, util float64) {
	if e == nil || e.reg == nil {
		return
	}
	labels := metrics.Labels{"domain": strconv.Itoa(int(d)), "peer": strconv.Itoa(peer)}
	e.reg.Gauge(MetricPeerLoad, "Profiled load of one peer in work units/s.", labels).Set(load)
	e.reg.Gauge(MetricPeerUtil, "Profiled load of one peer relative to its speed.", labels).Set(util)
}

// Snapshot returns a copy safe to read while nodes are still running.
func (e *Events) Snapshot() EventsData {
	if e == nil {
		return EventsData{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := e.EventsData
	cp.Reports = append([]proto.SessionReport(nil), e.Reports...)
	cp.RepairMicros = append([]int64(nil), e.RepairMicros...)
	cp.FailoverMicros = append([]int64(nil), e.FailoverMicros...)
	cp.AllocNanos = append([]int64(nil), e.AllocNanos...)
	return cp
}

// MissRate aggregates chunk misses across all session reports.
func (e *Events) MissRate() float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var chunks, missed int
	for _, r := range e.Reports {
		chunks += r.Chunks
		missed += r.Missed
	}
	if chunks == 0 {
		return 0
	}
	return float64(missed) / float64(chunks)
}

// SessionsOnTime counts sessions whose startup met the given budget and
// that missed no chunks.
func (e *Events) SessionsOnTime(startupBudgetMicros int64) int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.Reports {
		if r.Missed == 0 && r.StartupMicros <= startupBudgetMicros {
			n++
		}
	}
	return n
}
