package core_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/proto"
	"repro/internal/sim"
)

// twoDomains builds the TestInterDomainRedirect fleet: nine peers under
// a 4-peer domain cap, so the late joiners form a second domain. The
// named object is stored only on peer 6, which lands outside the
// founder's (full) domain. filler objects (unrequested "pad-i-j" names)
// are spread across every peer to load the summary Bloom filters.
func twoDomains(t *testing.T, cfg core.Config, object string, filler int) *cluster.Cluster {
	t.Helper()
	cfg.MaxDomainPeers = 4
	cat := cluster.StandardCatalog()
	c := cluster.New(cfg, netCfg(), 7)
	infos := make([]proto.PeerInfo, 9)
	for i := range infos {
		infos[i] = fixedInfo()
		infos[i].Services = append([]media.Transcoder(nil), cat.Ladder...)
		for j := 0; j < filler; j++ {
			infos[i].Objects = append(infos[i].Objects, media.Object{
				Name:   fmt.Sprintf("pad-%d-%d", i, j),
				Format: cat.Sources[0],
				Bytes:  1 << 20,
			})
		}
	}
	if object != "" {
		infos[6].Objects = append(infos[6].Objects, media.Object{
			Name:   object,
			Format: cat.Sources[0],
			Bytes:  int64(20 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8),
		})
	}
	c.AddFounder(infos[0])
	for i := 1; i < 9; i++ {
		c.AddPeer(infos[i], 0)
		c.RunUntil(c.Eng.Now() + sim.Second)
	}
	c.RunUntil(45 * sim.Second) // let gossip / DHT republish converge
	if len(c.RMs()) < 2 {
		t.Fatalf("RMs = %v, want 2+ domains", c.RMs())
	}
	return c
}

// TestInterDomainRedirectDHT is the structured-overlay twin of
// TestInterDomainRedirect: with Discovery = dht the object lookup rides
// an iterative Kademlia query against the RM-published provider records
// instead of gossiped Bloom summaries, and the task must still be
// redirected and complete.
func TestInterDomainRedirectDHT(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Discovery = core.DiscoveryDHT
	c := twoDomains(t, cfg, "obj-远", 0)
	spec := stdSpec(1)
	spec.ObjectName = "obj-远"
	spec.DeadlineMicros = 5_000_000
	c.Submit(c.Eng.Now(), 1, spec)
	c.RunUntil(c.Eng.Now() + 60*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Redirected == 0 {
		t.Fatalf("no redirect happened (admitted=%d rejected=%d)", ev.Admitted, ev.Rejected)
	}
	if ev.Admitted != 1 || len(ev.Reports) != 1 {
		t.Fatalf("cross-domain task: admitted=%d reports=%d rejected=%d",
			ev.Admitted, len(ev.Reports), ev.Rejected)
	}
	if ev.DHTLookups == 0 || ev.DHTLookupHits == 0 {
		t.Fatalf("DHT lookup counters flat: lookups=%d hits=%d", ev.DHTLookups, ev.DHTLookupHits)
	}
	// Gossip must be fully displaced: no summary state on any RM.
	for _, id := range c.RMs() {
		d := c.Peer(id).DiscoveryDiag()
		if d.Backend != core.DiscoveryDHT || d.Summaries != 0 {
			t.Fatalf("RM n%d diag = %+v, want dht backend with no summaries", id, d)
		}
		if d.TableSize == 0 || d.StoreRecords == 0 {
			t.Fatalf("RM n%d has empty DHT state: %+v", id, d)
		}
	}
}

// TestStaleSummaryNotChosenForRedirect is the regression test for the
// stale-summary redirect bug: prune runs only on gossip ticks, so the
// cache can hold entries older than SummaryMaxAge at decision time, and
// rmHandleSubmit used to redirect tasks at those tombstoned domains.
// With an aggressive age every cached summary is stale when consulted —
// the task must be rejected locally, never redirected, and every skip
// counted.
func TestStaleSummaryNotChosenForRedirect(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SummaryMaxAge = sim.Millisecond // < network latency: stale on arrival
	c := twoDomains(t, cfg, "obj-远", 0)
	for i := 0; i < 5; i++ {
		spec := stdSpec(1)
		spec.ID = "stale-" + string(rune('a'+i))
		spec.ObjectName = "obj-远"
		spec.DeadlineMicros = 5_000_000
		c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second, 1, spec)
	}
	c.RunUntil(c.Eng.Now() + 30*sim.Second)
	ev := c.Events.Snapshot()
	if ev.Redirected != 0 {
		t.Fatalf("redirected %d task(s) on stale summaries", ev.Redirected)
	}
	if ev.Rejected == 0 {
		t.Fatalf("task neither redirected nor rejected: %+v", ev)
	}
	if ev.StaleRedirectSkips == 0 {
		t.Fatalf("stale-summary skips not counted (rejected=%d)", ev.Rejected)
	}
}

// TestBloomFalsePositiveBothBackends submits a task for an object that
// exists nowhere. A tiny Bloom filter makes gossip summaries
// false-positive on it, so the gossip backend bounces the task between
// domains — it must still terminate in a clean rejection within
// MaxRedirects. The DHT backend resolves exactly: no provider record,
// no redirect at all.
func TestBloomFalsePositiveBothBackends(t *testing.T) {
	run := func(t *testing.T, discovery string) core.EventsData {
		cfg := core.DefaultConfig()
		cfg.Discovery = discovery
		cfg.BloomM = 64 // 64 bits over ~100 padded names: FPs near-certain
		cfg.BloomK = 1
		c := twoDomains(t, cfg, "obj-远", 20)
		// Several phantom names: with an 8-bit filter at least one is
		// all but certain to collide with a set bit in some summary.
		for i := 0; i < 6; i++ {
			spec := stdSpec(1)
			spec.ID = "phantom-" + string(rune('a'+i))
			spec.ObjectName = "obj-nope-" + string(rune('a'+i))
			c.Submit(c.Eng.Now()+sim.Time(i)*sim.Second, 1, spec)
		}
		c.RunUntil(c.Eng.Now() + 30*sim.Second)
		ev := c.Events.Snapshot()
		if ev.Admitted != 0 {
			t.Fatalf("phantom object admitted: %+v", ev)
		}
		if ev.Rejected == 0 {
			t.Fatalf("phantom object never rejected: redirected=%d", ev.Redirected)
		}
		return ev
	}
	t.Run("gossip", func(t *testing.T) {
		ev := run(t, core.DiscoveryGossip)
		if ev.Redirected == 0 {
			t.Fatalf("tiny Bloom produced no false-positive redirect")
		}
	})
	t.Run("dht", func(t *testing.T) {
		ev := run(t, core.DiscoveryDHT)
		if ev.Redirected != 0 {
			t.Fatalf("DHT redirected %d task(s) for a nonexistent object", ev.Redirected)
		}
	})
}

// TestCatalogAddVisibleAcrossDomains mutates a peer's catalog mid-run
// and checks the new object becomes discoverable from the other domain
// under both backends: the RM refreshes its inventory, republishes
// (summary version bump / DHT provider record), and a previously
// unsatisfiable request is redirected and admitted.
func TestCatalogAddVisibleAcrossDomains(t *testing.T) {
	for _, backend := range []string{core.DiscoveryGossip, core.DiscoveryDHT} {
		t.Run(backend, func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Discovery = backend
			c := twoDomains(t, cfg, "", 0)
			spec := stdSpec(1)
			spec.ID = "pre-add"
			spec.ObjectName = "obj-new"
			spec.DeadlineMicros = 5_000_000
			c.Submit(c.Eng.Now(), 1, spec)
			c.RunUntil(c.Eng.Now() + 10*sim.Second)
			if ev := c.Events.Snapshot(); ev.Rejected != 1 || ev.Admitted != 0 {
				t.Fatalf("pre-add submit: %+v, want one rejection", ev)
			}
			cat := cluster.StandardCatalog()
			c.Eng.At(c.Eng.Now(), func() {
				c.Peer(6).AddObject(media.Object{
					Name:   "obj-new",
					Format: cat.Sources[0],
					Bytes:  int64(20 * float64(cat.Sources[0].BitrateKbps) * 1000 / 8),
				})
			})
			// Profile + republish/gossip round-trips.
			c.RunUntil(c.Eng.Now() + 30*sim.Second)
			spec.ID = "post-add"
			c.Submit(c.Eng.Now(), 1, spec)
			c.RunUntil(c.Eng.Now() + 30*sim.Second)
			ev := c.Events.Snapshot()
			if ev.Redirected == 0 || ev.Admitted != 1 {
				t.Fatalf("post-add submit not served remotely: %+v", ev)
			}
		})
	}
}
