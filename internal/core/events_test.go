package core

import (
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/trace"
)

// TestEventsConcurrentMutation hammers every mutator from parallel
// goroutines while readers snapshot, mirroring the live runtime where
// each node is a goroutine sharing one Events. Run with -race.
func TestEventsConcurrentMutation(t *testing.T) {
	e := &Events{}
	reg := metrics.NewRegistry()
	e.AttachMetrics(reg)
	e.AttachTracer(trace.New())

	const writers, iters = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := proto.DomainID(g % 2)
			for i := 0; i < iters; i++ {
				e.submitted(d)
				e.admitted(d)
				e.rejected(d)
				e.redirected(d)
				e.report(d, 0, proto.SessionReport{Chunks: 10, Missed: 1, StartupMicros: 1000})
				e.repair(d, 50)
				e.aborted(d)
				e.preemption(d)
				e.migration(d)
				e.failover(d, 0, 70)
				e.domainCreated(d)
				e.peerDead(d)
				e.allocCost(d, 0, 900)
				e.peerLoad(d, g, float64(i), 0.5)
			}
		}(g)
	}
	// Concurrent readers must never race with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			e.Snapshot()
			e.MissRate()
			e.SessionsOnTime(5000)
			reg.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	total := writers * iters
	s := e.Snapshot()
	if s.Submitted != total || s.Admitted != total || s.Rejected != total ||
		s.Redirected != total || s.Aborted != total || s.Preemptions != total ||
		s.Migrations != total || s.DomainsCreated != total || s.PeersDeclaredDead != total {
		t.Fatalf("lost counter updates: %+v", s)
	}
	if len(s.Reports) != total || s.Repairs != total || len(s.RepairMicros) != total ||
		s.Failovers != total || len(s.FailoverMicros) != total || len(s.AllocNanos) != total {
		t.Fatalf("lost slice appends: reports=%d repairs=%d failovers=%d allocs=%d",
			len(s.Reports), len(s.RepairMicros), len(s.FailoverMicros), len(s.AllocNanos))
	}
	if got, want := e.MissRate(), 0.1; got != want {
		t.Fatalf("MissRate = %g, want %g", got, want)
	}
	if got := e.SessionsOnTime(5000); got != 0 {
		t.Fatalf("SessionsOnTime = %d (all reports miss chunks)", got)
	}

	// The labeled counters saw every increment too, split across the two
	// domain labels.
	var sub float64
	for _, fam := range reg.Snapshot() {
		if fam.Name == MetricSubmitted {
			for _, m := range fam.Metrics {
				sub += m.Value
			}
		}
	}
	if int(sub) != total {
		t.Fatalf("registry submitted = %g, want %d", sub, total)
	}
}

// TestEventsNilReceiver checks that a peer without an Events sink (nil)
// can still run every mutator.
func TestEventsNilReceiver(t *testing.T) {
	var e *Events
	e.submitted(0)
	e.admitted(0)
	e.rejected(0)
	e.redirected(0)
	e.report(0, 0, proto.SessionReport{})
	e.repair(0, 1)
	e.aborted(0)
	e.preemption(0)
	e.migration(0)
	e.failover(0, 0, 1)
	e.domainCreated(0)
	e.peerDead(0)
	e.allocCost(0, 0, 1)
	e.peerLoad(0, 0, 0, 0)
	if e.Tracer() != nil || e.Registry() != nil {
		t.Fatal("nil Events returned a sink")
	}
}

// TestAttachMetricsPreRegisters checks a fresh registry already exposes
// the domain-0 session counters at zero (so a scrape before any traffic
// is meaningful).
func TestAttachMetricsPreRegisters(t *testing.T) {
	e := &Events{}
	reg := metrics.NewRegistry()
	e.AttachMetrics(reg)
	want := map[string]bool{
		MetricSubmitted: false, MetricAdmitted: false, MetricRejected: false,
		MetricRedirected: false, MetricCompleted: false,
	}
	for _, fam := range reg.Snapshot() {
		if _, ok := want[fam.Name]; ok {
			want[fam.Name] = true
			if len(fam.Metrics) != 1 || fam.Metrics[0].Value != 0 {
				t.Fatalf("%s not pre-registered at zero: %+v", fam.Name, fam.Metrics)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("%s not pre-registered", name)
		}
	}
}
