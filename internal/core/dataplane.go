package core

import (
	"repro/internal/env"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The data plane streams media chunks along a composed pipeline:
// source -> stage_0 -> ... -> stage_{n-1} -> sink. Each stage runs its
// transcode work through the peer's Local Scheduler, so concurrent
// sessions on one peer contend under the configured policy (LLS).

// sourceSession is the source-role state of one session.
type sourceSession struct {
	desc     proto.SessionDesc
	emitting bool
	next     int // next chunk index to emit
	cancel   env.Cancel
}

// stageSession is the stage-role state of one session.
type stageSession struct {
	desc     proto.SessionDesc
	role     int                  // stage index
	tasks    map[int]sched.TaskID // chunk index -> local scheduler task
	watchdog env.Cancel
}

// sinkSession is the sink-role state of one session.
type sinkSession struct {
	desc        proto.SessionDesc
	received    []bool
	late        int
	firstAt     sim.Time
	sumLatency  float64
	nLatency    int
	generations map[int]bool
	finalized   bool
	watchdog    env.Cancel
}

// sessionSpan returns a generous absolute cleanup horizon for a session:
// playback end plus one startup budget of grace.
func sessionSpan(d proto.SessionDesc) sim.Time {
	playEnd := playbackBase(d) + sim.Time(float64(d.NumChunks)*d.ChunkSec*1e6)
	return playEnd + d.StartupDeadline + 2*sim.Second
}

// playbackBase returns the absolute time playback of chunk 0 is due.
func playbackBase(d proto.SessionDesc) sim.Time { return d.PlaybackBase }

// chunkDeadline returns the absolute playback deadline of chunk i.
func chunkDeadline(d proto.SessionDesc, i int) sim.Time {
	return playbackBase(d) + sim.Time(float64(i)*d.ChunkSec*1e6)
}

// handleCompose installs one role of a session pipeline on this peer. A
// newer generation supersedes and releases any older instance. A peer
// whose Connection Manager is at capacity refuses new roles (§2).
func (p *Peer) handleCompose(from env.NodeID, msg proto.GraphCompose) {
	d := msg.Session
	p.adoptTC(d.TaskID, d.TC)
	if p.cfg.MaxConnections > 0 && p.conn.Active() >= p.cfg.MaxConnections && p.needsNewConn(d, msg.Role) {
		p.sendOrLoop(from, proto.ComposeAck{
			TaskID: d.TaskID, Role: msg.Role, Generation: d.Generation,
			OK: false, Reason: "connection limit reached",
		})
		return
	}
	switch msg.Role {
	case proto.RoleSource:
		if old, ok := p.asSource[d.TaskID]; ok {
			if old.desc.Generation >= d.Generation {
				p.ctx.Send(from, proto.ComposeAck{TaskID: d.TaskID, Role: msg.Role, Generation: d.Generation, OK: true})
				return
			}
			p.stopSource(old)
		}
		p.asSource[d.TaskID] = &sourceSession{desc: d, next: d.StartChunk}
		p.conn.Open(p.nextHop(d, -1))
	case proto.RoleSink:
		// Our own submission was admitted: the outcome watchdog can stand
		// down — a report is now guaranteed (finalize or abort paths).
		if cancel, ok := p.submitTimers[d.TaskID]; ok {
			cancel()
			delete(p.submitTimers, d.TaskID)
		}
		s, ok := p.asSink[d.TaskID]
		if !ok {
			s = &sinkSession{
				desc:        d,
				received:    make([]bool, d.NumChunks),
				generations: map[int]bool{d.Generation: true},
			}
			p.asSink[d.TaskID] = s
			// Watchdog finalizes even if chunks were lost to failures.
			horizon := sessionSpan(d) - p.ctx.Now()
			if horizon < sim.Second {
				horizon = sim.Second
			}
			s.watchdog = p.ctx.After(horizon, func() { p.finalizeSink(d.TaskID) })
		} else {
			s.generations[d.Generation] = true
			s.desc = d
		}
	default: // transcoding stage
		if old, ok := p.asStage[d.TaskID]; ok {
			if old.desc.Generation >= d.Generation {
				p.ctx.Send(from, proto.ComposeAck{TaskID: d.TaskID, Role: msg.Role, Generation: d.Generation, OK: true})
				return
			}
			p.releaseStage(old)
		}
		st := &stageSession{desc: d, role: msg.Role, tasks: make(map[int]sched.TaskID)}
		p.asStage[d.TaskID] = st
		p.prof.AddLoad(d.Stages[msg.Role].Work)
		p.prof.AddBandwidth(float64(d.Stages[msg.Role].OutBitrateKbps))
		p.conn.Open(p.nextHop(d, msg.Role))
		horizon := sessionSpan(d) - p.ctx.Now()
		if horizon < sim.Second {
			horizon = sim.Second
		}
		st.watchdog = p.ctx.After(horizon, func() {
			if cur, ok := p.asStage[d.TaskID]; ok && cur == st {
				p.releaseStage(st)
				delete(p.asStage, d.TaskID)
			}
		})
	}
	p.ctx.Send(from, proto.ComposeAck{TaskID: d.TaskID, Role: msg.Role, Generation: d.Generation, OK: true})
}

// needsNewConn reports whether taking the given role would open a
// connection this peer does not already hold.
func (p *Peer) needsNewConn(d proto.SessionDesc, role int) bool {
	switch role {
	case proto.RoleSink:
		return false // the sink only receives
	case proto.RoleSource:
		return !p.conn.Has(p.nextHop(d, -1))
	default:
		return !p.conn.Has(p.nextHop(d, role))
	}
}

// nextHop returns the node a given role forwards chunks to. role -1 is
// the source.
func (p *Peer) nextHop(d proto.SessionDesc, role int) env.NodeID {
	if role+1 < len(d.Stages) {
		return d.Stages[role+1].Peer
	}
	return d.Origin
}

// handleSessionStart begins (or resumes, after repair) chunk emission at
// the source.
func (p *Peer) handleSessionStart(msg proto.SessionStart) {
	p.adoptTC(msg.TaskID, msg.TC)
	s, ok := p.asSource[msg.TaskID]
	if !ok || s.desc.Generation != msg.Generation || s.emitting {
		return
	}
	s.emitting = true
	p.prof.AddBandwidth(float64(s.desc.SourceBitrateKbps))
	p.emitChunk(s)
}

// emitChunk sends the next chunk and schedules the following one at the
// stream's real-time cadence.
func (p *Peer) emitChunk(s *sourceSession) {
	cur, ok := p.asSource[s.desc.TaskID]
	if !ok || cur != s {
		return
	}
	d := s.desc
	if s.next >= d.NumChunks {
		p.stopSource(s)
		delete(p.asSource, d.TaskID)
		return
	}
	i := s.next
	s.next++
	first := 0
	if len(d.Stages) == 0 {
		first = sinkStage // direct streaming, no transcoding needed
	}
	chunk := proto.Chunk{
		TaskID:     d.TaskID,
		Generation: d.Generation,
		Index:      i,
		NextStage:  first,
		SizeKBv:    float64(d.SourceBitrateKbps) * d.ChunkSec / 8,
		Deadline:   chunkDeadline(d, i),
		Emitted:    p.ctx.Now(),
	}
	p.ctx.Send(p.nextHop(d, -1), chunk)
	s.cancel = p.ctx.After(sim.Time(d.ChunkSec*1e6), func() { p.emitChunk(s) })
}

// stopSource halts emission and releases source-side resources.
func (p *Peer) stopSource(s *sourceSession) {
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
	if s.emitting {
		p.prof.AddBandwidth(-float64(s.desc.SourceBitrateKbps))
		s.emitting = false
	}
	p.conn.Close(p.nextHop(s.desc, -1))
}

// releaseStage drops a stage instance's load and connections and aborts
// its queued chunk work.
func (p *Peer) releaseStage(st *stageSession) {
	if st.watchdog != nil {
		st.watchdog()
	}
	p.prof.AddLoad(-st.desc.Stages[st.role].Work)
	p.prof.AddBandwidth(-float64(st.desc.Stages[st.role].OutBitrateKbps))
	p.conn.Close(p.nextHop(st.desc, st.role))
	// Removal order reaches the scheduler (each Remove can reschedule and
	// re-arm timers), so it must not follow map order.
	for _, idx := range sortedMapKeys(st.tasks) {
		p.proc.Remove(st.tasks[idx])
	}
	st.tasks = nil
}

// handleChunk routes a chunk through this peer's role in its pipeline.
func (p *Peer) handleChunk(from env.NodeID, c proto.Chunk) {
	if c.NextStage == sinkStage {
		p.sinkChunk(c)
		return
	}
	st, ok := p.asStage[c.TaskID]
	if !ok || st.desc.Generation != c.Generation || c.NextStage != st.role {
		return // stale generation or misrouted: drop
	}
	d := st.desc
	stage := d.Stages[st.role]
	work := stage.Work * d.ChunkSec
	p.nextTaskSeq++
	tid := sched.TaskID(p.nextTaskSeq)
	task := &sched.Task{
		ID:         tid,
		Deadline:   c.Deadline,
		Work:       work,
		Importance: d.Importance,
	}
	st.tasks[c.Index] = tid
	start := p.ctx.Now()
	p.onStageComplete(st, c, tid, start)
	p.proc.Add(task)
}

// sinkStage is the NextStage value addressing the sink. Chunks carry the
// stage count in NextStage once the last stage forwards them; the source
// of a stage-less session uses it directly.
const sinkStage = 1 << 20

// onStageComplete registers the completion continuation for a chunk task.
// The processor has a single OnComplete hook, so the peer keeps one
// dispatch table keyed by task ID.
func (p *Peer) onStageComplete(st *stageSession, c proto.Chunk, tid sched.TaskID, start sim.Time) {
	if p.stageDone == nil {
		p.stageDone = make(map[sched.TaskID]func(missed bool))
		p.proc.OnComplete = func(done sched.Completion) {
			if fn, ok := p.stageDone[done.Task.ID]; ok {
				delete(p.stageDone, done.Task.ID)
				fn(done.Missed)
			}
		}
	}
	p.stageDone[tid] = func(missed bool) {
		cur, ok := p.asStage[c.TaskID]
		if !ok || cur != st {
			return
		}
		d := st.desc
		stage := d.Stages[st.role]
		delete(st.tasks, c.Index)
		p.prof.ObserveServiceTime(stage.Service, float64(p.ctx.Now()-start))
		out := c
		out.NextStage = st.role + 1
		if out.NextStage >= len(d.Stages) {
			out.NextStage = sinkStage
		}
		out.SizeKBv = float64(stage.OutBitrateKbps) * d.ChunkSec / 8
		p.ctx.Send(p.nextHop(d, st.role), out)
		if c.Index == d.NumChunks-1 {
			p.releaseStage(st)
			delete(p.asStage, c.TaskID)
		}
	}
}

// sinkChunk accounts a chunk's arrival at the stream consumer.
func (p *Peer) sinkChunk(c proto.Chunk) {
	s, ok := p.asSink[c.TaskID]
	if !ok || s.finalized {
		return
	}
	if c.Index < 0 || c.Index >= len(s.received) || s.received[c.Index] {
		return // duplicate after repair: first arrival already counted
	}
	s.received[c.Index] = true
	now := p.ctx.Now()
	if s.firstAt == 0 {
		s.firstAt = now
	}
	if now > c.Deadline {
		s.late++
		if tr := p.events.Tracer(); tr != nil {
			tr.Instant(int64(now), c.TaskID, "chunk-late", int(p.ctx.Self()), int(p.domain),
				trace.A("chunk", c.Index), trace.A("late_micros", int64(now-c.Deadline)))
		}
	}
	s.sumLatency += float64(now - c.Emitted)
	s.nLatency++
	if c.Generation > s.desc.Generation {
		s.generations[c.Generation] = true
	}
	// All chunks in: finalize immediately.
	for _, r := range s.received {
		if !r {
			return
		}
	}
	p.finalizeSink(c.TaskID)
}

// finalizeSink closes the books on a session and reports to the RM.
func (p *Peer) finalizeSink(taskID string) {
	s, ok := p.asSink[taskID]
	if !ok || s.finalized {
		return
	}
	s.finalized = true
	if s.watchdog != nil {
		s.watchdog()
	}
	delete(p.asSink, taskID)
	recv := 0
	for _, r := range s.received {
		if r {
			recv++
		}
	}
	lost := len(s.received) - recv
	var startup int64
	if at, mine := p.submits[taskID]; mine {
		if s.firstAt > 0 {
			startup = int64(s.firstAt - at)
		}
		p.resolveSubmit(taskID)
	}
	var meanLat float64
	if s.nLatency > 0 {
		meanLat = s.sumLatency / float64(s.nLatency)
	}
	rep := proto.SessionReport{
		TaskID:            taskID,
		Chunks:            len(s.received),
		Received:          recv,
		Missed:            s.late + lost,
		StartupMicros:     startup,
		MeanLatencyMicros: meanLat,
		Repaired:          len(s.generations) - 1,
		FinishedMicros:    int64(p.ctx.Now()),
		Hops:              len(s.desc.Stages),
	}
	p.events.report(p.domain, int64(p.ctx.Now()), rep)
	if tr := p.events.Tracer(); tr != nil {
		tr.EndSession(int64(p.ctx.Now()), taskID, int(p.ctx.Self()), int(p.domain), "completed",
			trace.A("chunks", rep.Chunks), trace.A("missed", rep.Missed),
			trace.A("startup_micros", rep.StartupMicros), trace.A("repaired", rep.Repaired))
	}
	end := proto.SessionEnd{Report: rep, TC: p.traceCtx(taskID, "stream")}
	if s.desc.RM == p.ctx.Self() {
		p.rmHandleSessionEnd(p.ctx.Self(), end)
	} else {
		p.ctx.Send(s.desc.RM, end)
	}
}

// ActiveSinkSessions lists the task IDs this peer is currently receiving
// as a sink (unfinalized sessions), for harness-side accounting.
func (p *Peer) ActiveSinkSessions() []string {
	out := make([]string, 0, len(p.asSink))
	for _, id := range sortedMapKeys(p.asSink) {
		if !p.asSink[id].finalized {
			out = append(out, id)
		}
	}
	return out
}

// handleSessionAbort tears down this peer's role in a session instance.
func (p *Peer) handleSessionAbort(msg proto.SessionAbort) {
	p.adoptTC(msg.TaskID, msg.TC)
	if s, ok := p.asSource[msg.TaskID]; ok && s.desc.Generation <= msg.Generation {
		p.stopSource(s)
		delete(p.asSource, msg.TaskID)
	}
	if st, ok := p.asStage[msg.TaskID]; ok && st.desc.Generation <= msg.Generation {
		p.releaseStage(st)
		delete(p.asStage, msg.TaskID)
	}
	if s, ok := p.asSink[msg.TaskID]; ok && s.desc.Generation <= msg.Generation {
		if msg.Final {
			// The task itself ended mid-stream: report what arrived.
			p.finalizeSink(msg.TaskID)
		} else {
			// Never streamed (cancelled during composition): discard.
			s.finalized = true
			if s.watchdog != nil {
				s.watchdog()
			}
			delete(p.asSink, msg.TaskID)
		}
	}
}
