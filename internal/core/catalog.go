package core

import (
	"repro/internal/env"
	"repro/internal/media"
	"repro/internal/proto"
)

// Catalog mutation API: a peer's object/service inventory can change
// while it is a domain member (content fetched or deleted, a transcoder
// installed or retired). Mutations update the self-description and
// propagate it — an RM folds its own record in place and refreshes its
// advertisements; a member re-sends Join, whose refresh path on the RM
// does the same. The scenario DSL's `catalog` verb drives these.

// AddObject installs (or replaces, by name) an object in the catalog.
func (p *Peer) AddObject(o media.Object) {
	for i := range p.info.Objects {
		if p.info.Objects[i].Name == o.Name {
			p.info.Objects[i] = o
			p.catalogChanged()
			return
		}
	}
	p.info.Objects = append(p.info.Objects, o)
	p.catalogChanged()
}

// RemoveObject drops an object by name; unknown names are a no-op.
func (p *Peer) RemoveObject(name string) {
	kept := p.info.Objects[:0]
	for _, o := range p.info.Objects {
		if o.Name != name {
			kept = append(kept, o)
		}
	}
	if len(kept) == len(p.info.Objects) {
		return
	}
	p.info.Objects = kept
	p.catalogChanged()
}

// AddService installs a transcoder (deduplicated by service key).
func (p *Peer) AddService(t media.Transcoder) {
	for _, cur := range p.info.Services {
		if cur.Key() == t.Key() {
			return
		}
	}
	p.info.Services = append(p.info.Services, t)
	p.catalogChanged()
}

// RemoveService drops a transcoder by service key; unknown keys no-op.
func (p *Peer) RemoveService(key string) {
	kept := p.info.Services[:0]
	for _, s := range p.info.Services {
		if s.Key() != key {
			kept = append(kept, s)
		}
	}
	if len(kept) == len(p.info.Services) {
		return
	}
	p.info.Services = kept
	p.catalogChanged()
}

// catalogChanged pushes the updated self-description toward the domain
// view and the discovery backend.
func (p *Peer) catalogChanged() {
	if st := p.rm; st != nil {
		if rec, ok := st.peers[p.ctx.Self()]; ok {
			info := p.info
			info.ID = p.ctx.Self()
			rec.info = info
		}
		st.grDirty = true
		st.bumpVersion()
		p.disc.CatalogChanged()
		return
	}
	if p.joined && p.rmID != env.NoNode {
		// The RM's re-join path refreshes our record and re-accepts.
		p.sendJoin(p.rmID)
	}
}

// catalogEqual compares only the catalog portion of two peer infos: a
// plain join retry differs in UptimeSec, which must not bump summary
// versions or trigger re-advertisement.
func catalogEqual(a, b proto.PeerInfo) bool {
	if len(a.Objects) != len(b.Objects) || len(a.Services) != len(b.Services) {
		return false
	}
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			return false
		}
	}
	for i := range a.Services {
		if a.Services[i] != b.Services[i] {
			return false
		}
	}
	return true
}
