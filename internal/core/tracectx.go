package core

import (
	"repro/internal/proto"
	"repro/internal/trace"
)

// Trace-context plumbing: outgoing control messages are stamped with the
// task's span id plus a ref to the phase that caused them (traceCtx);
// receivers bind the propagated id before recording anything (adoptTC).
// With equal seeds every process derives the same ids anyway (see
// trace.DeriveSpanID), so propagation costs nothing on the wire when
// tracing is off and keeps merged traces stitched even when seeds
// diverge.

// traceCtx returns the context to stamp on an outgoing message about
// task, caused by the named phase of this peer's span.
func (p *Peer) traceCtx(task, phase string) proto.TraceContext {
	tr := p.events.Tracer()
	if tr == nil {
		return proto.TraceContext{}
	}
	span := tr.SpanFor(task)
	return proto.TraceContext{Trace: span, Parent: trace.PhaseRef(span, phase)}
}

// adoptTC binds a propagated trace context to task on this process's
// tracer. Safe to call with the zero context (untraced).
func (p *Peer) adoptTC(task string, tc proto.TraceContext) {
	if tr := p.events.Tracer(); tr != nil {
		tr.Adopt(int64(p.ctx.Now()), task, tc.Trace, tc.Parent, int(p.ctx.Self()), int(p.domain))
	}
}
