package core

import (
	"sort"

	"repro/internal/dht"
	"repro/internal/env"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// dhtDiscovery is the structured-overlay backend: every peer runs a
// Kademlia-style node for routing, and RMs publish one provider record
// per catalog entry (objects under "obj"/name keys, services under
// "svc"/key) plus a record under the well-known domain-directory key
// that every RM shares. Object lookups are exact and bounded by the
// iterative walk; the directory is cached each republish round so join
// redirects stay synchronous like gossip's.
type dhtDiscovery struct {
	p    *Peer
	node *dht.Node

	pub     map[proto.DHTKey]bool // keys currently advertised
	dir     []proto.DHTProvider   // cached RM directory, refreshed each republish round
	cancels []env.Cancel
	rmOn    bool
}

// The well-known key every Resource Manager publishes its domain record
// under — the DHT's replacement for gossip's knownRMs bootstrap.
const dirKind, dirName = "dir", "rms"

func newDHTDiscovery(p *Peer) *dhtDiscovery {
	return &dhtDiscovery{p: p, pub: make(map[proto.DHTKey]bool)}
}

func (d *dhtDiscovery) Init() {
	p := d.p
	d.node = dht.NewNode(p.ctx, p.cfg.DHT)
	d.node.OnLookupDone = func(hit bool, elapsed sim.Time) {
		p.events.dhtLookup(p.domain, int64(p.ctx.Now()), hit, elapsed.Seconds())
	}
	d.node.Start()
	if p.bootstrap != env.NoNode {
		d.node.Seed(p.bootstrap)
	}
}

func (d *dhtDiscovery) Stop() {
	for _, c := range d.cancels {
		c()
	}
	d.cancels = nil
	d.node.Stop()
}

// NoteContacts seeds the routing table from membership contacts.
func (d *dhtDiscovery) NoteContacts(ids ...env.NodeID) {
	d.node.Seed(ids...)
}

func (d *dhtDiscovery) HandleMessage(from env.NodeID, m env.Message) bool {
	return d.node.HandleMessage(from, m)
}

// StartRM arms the catalog republish loop. Re-promotion (takeover after
// a failover round-trip) just refreshes in place.
func (d *dhtDiscovery) StartRM() {
	if d.rmOn {
		d.refreshCatalog()
		return
	}
	d.rmOn = true
	period := d.p.cfg.DHT.RepublishPeriod
	if period <= 0 {
		period = dht.DefaultRepublishPeriod
	}
	d.cancels = append(d.cancels, env.Every(d.p.ctx, period, period, d.refreshCatalog))
	d.refreshCatalog()
}

func (d *dhtDiscovery) CatalogChanged() {
	if d.rmOn && d.p.rm != nil {
		d.refreshCatalog()
	}
}

// refreshCatalog recomputes the advertisement set from the live domain
// view, (re)publishes every record with current load figures, withdraws
// entries that left the catalog, and refreshes the directory cache.
func (d *dhtDiscovery) refreshCatalog() {
	p := d.p
	st := p.rm
	if st == nil {
		return
	}
	rec := proto.DHTProvider{Domain: st.domain, RM: p.ctx.Self(), NumPeers: len(st.peers)}
	var utilSum float64
	for _, id := range sortedPeerIDs(st.peers) {
		utilSum += st.peers[id].util()
	}
	if len(st.peers) > 0 {
		rec.AvgUtil = utilSum / float64(len(st.peers))
	}

	want := make(map[proto.DHTKey]bool, len(d.pub)+1)
	publish := func(key proto.DHTKey) {
		if !want[key] {
			want[key] = true
			d.node.Publish(key, rec)
		}
	}
	publish(dht.Key(dirKind, dirName))
	for _, id := range sortedPeerIDs(st.peers) {
		info := st.peers[id].info
		for _, o := range info.Objects {
			publish(dht.Key("obj", o.Name))
		}
		for _, s := range info.Services {
			publish(dht.Key("svc", s.Key()))
		}
	}
	var stale []proto.DHTKey
	for k := range d.pub { //lint:maporder commutative — withdrawn keys are sorted below before use
		if !want[k] {
			stale = append(stale, k)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return dht.Less(stale[i], stale[j]) })
	for _, k := range stale {
		d.node.Unpublish(k)
	}
	d.pub = want

	// Directory refresh: cache the other RMs' records for synchronous
	// redirect decisions, and fold them into knownRMs so failover state
	// replication keeps working without gossip.
	d.node.LookupProviders(dht.Key(dirKind, dirName), proto.TraceContext{}, func(vs []proto.DHTProvider) {
		if p.rm == nil {
			d.dir = nil
			return
		}
		d.dir = vs
		for _, v := range vs {
			p.rm.noteRM(proto.RMRef{Domain: v.Domain, RM: v.RM})
		}
	})
}

// LookupObject runs an iterative lookup under the object's key and picks
// the advertising domain with the lowest utilization.
func (d *dhtDiscovery) LookupObject(task, object string, tc proto.TraceContext, done func(env.NodeID)) {
	p := d.p
	d.node.LookupProviders(dht.Key("obj", object), tc, func(vs []proto.DHTProvider) {
		target := env.NoNode
		bestUtil := 0.0
		for _, v := range vs {
			if p.rm != nil && v.Domain == p.rm.domain {
				continue
			}
			if target == env.NoNode || v.AvgUtil < bestUtil ||
				(v.AvgUtil == bestUtil && v.RM < target) {
				target, bestUtil = v.RM, v.AvgUtil
			}
		}
		if tr := p.events.Tracer(); tr != nil {
			tr.Instant(int64(p.ctx.Now()), task, "dht-lookup", int(p.ctx.Self()), int(p.domain),
				trace.A("object", object), trace.A("providers", len(vs)))
		}
		done(target)
	})
}

// RedirectRM answers from the cached directory, mirroring the gossip
// backend's preference order: lowest utilization first, lowest node ID
// breaking ties, domains at capacity skipped.
func (d *dhtDiscovery) RedirectRM(maxPeers int) env.NodeID {
	st := d.p.rm
	type cand struct {
		rm   env.NodeID
		util float64
	}
	var cands []cand
	for _, v := range d.dir {
		if st != nil && v.Domain == st.domain {
			continue
		}
		if v.NumPeers >= maxPeers {
			continue
		}
		cands = append(cands, cand{v.RM, v.AvgUtil})
	}
	if len(cands) == 0 {
		return env.NoNode
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].util != cands[j].util {
			return cands[i].util < cands[j].util
		}
		return cands[i].rm < cands[j].rm
	})
	return cands[0].rm
}

func (d *dhtDiscovery) Diag() DiscoveryDiag {
	dg := DiscoveryDiag{Backend: DiscoveryDHT, Domain: d.p.domain, IsRM: d.p.IsRM()}
	if st := d.p.rm; st != nil {
		dg.KnownDomains = len(st.knownRMs)
	}
	if d.node == nil {
		return dg
	}
	dg.TableSize = d.node.Table().Len()
	dg.Buckets = d.node.Table().BucketSizes()
	dg.StoreKeys = d.node.StoreDiag().Len()
	dg.StoreRecords = d.node.StoreDiag().Records()
	dg.Published = d.node.Published()
	dg.DirCache = len(d.dir)
	dg.DHT = d.node.Stats()
	return dg
}
