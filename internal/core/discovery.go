package core

import (
	"repro/internal/dht"
	"repro/internal/env"
	"repro/internal/proto"
)

// Discovery backend names (Config.Discovery).
const (
	DiscoveryGossip = "gossip"
	DiscoveryDHT    = "dht"
)

// Discovery abstracts how peers find objects, services and domains beyond
// their own domain boundary. Two implementations exist: the paper's lazy
// Bloom-summary gossip (§4.4, the default) and a Kademlia-style
// structured overlay (internal/dht) that trades gossip's zero-lookup-cost
// stale summaries for exact, bounded-latency lookups.
//
// Like everything else on the peer, a Discovery is actor-confined: every
// method runs on the owning peer's serialized loop.
type Discovery interface {
	// Init runs once on the owning actor's loop, right after the peer's
	// context exists and before any join traffic.
	Init()
	// StartRM arms the backend's RM-side periodic work (gossip rounds or
	// catalog republish). Called every time the peer (re)initializes its
	// Resource-Manager state — founding, promotion, takeover.
	StartRM()
	// HandleMessage consumes backend protocol traffic; false means the
	// message belongs to another subsystem.
	HandleMessage(from env.NodeID, m env.Message) bool
	// NoteContacts feeds overlay contacts learned through membership
	// (bootstrap target, join-accept member lists).
	NoteContacts(ids ...env.NodeID)
	// CatalogChanged signals that the domain's object/service catalog or
	// membership changed and remote advertisements should refresh.
	CatalogChanged()
	// LookupObject resolves the RM of another domain advertising the
	// object, preferring low utilization; env.NoNode means unknown. done
	// fires exactly once — synchronously from cached summaries (gossip)
	// or after an iterative lookup (DHT). task and tc tie the lookup into
	// the submitting task's trace.
	LookupObject(task, object string, tc proto.TraceContext, done func(env.NodeID))
	// RedirectRM picks another domain's RM for a join redirect, skipping
	// domains known to be at capacity. Synchronous on both backends (the
	// DHT answers from its periodically refreshed directory cache).
	RedirectRM(maxPeers int) env.NodeID
	// Diag snapshots backend state for the diagnostics endpoints.
	Diag() DiscoveryDiag
	// Stop cancels backend timers on graceful shutdown.
	Stop()
}

// DiscoveryDiag is the backend-state snapshot served by the /dht and
// status endpoints. Gossip fills the summary fields, the DHT the
// routing-table and store fields.
type DiscoveryDiag struct {
	Backend      string
	Domain       proto.DomainID
	IsRM         bool
	KnownDomains int

	// Gossip.
	Summaries int

	// DHT.
	TableSize    int
	Buckets      [][2]int // non-empty k-buckets as (index, size) pairs
	StoreKeys    int
	StoreRecords int
	Published    int
	DirCache     int
	DHT          dht.Stats
}

// newDiscovery builds the configured backend for a peer.
func newDiscovery(p *Peer) Discovery {
	if p.cfg.Discovery == DiscoveryDHT {
		return newDHTDiscovery(p)
	}
	return newGossipDiscovery(p)
}

// DiscoveryDiag exposes the backend snapshot (tests, /dht endpoint).
func (p *Peer) DiscoveryDiag() DiscoveryDiag {
	if p.disc == nil {
		return DiscoveryDiag{}
	}
	return p.disc.Diag()
}
