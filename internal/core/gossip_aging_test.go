package core_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/sim"
)

// agingCluster builds three 3-peer domains and returns the RM ids once
// every RM holds summaries of both other domains.
func agingCluster(t *testing.T, cfg core.Config) ([]env.NodeID, *cluster.Cluster) {
	t.Helper()
	cfg.MaxDomainPeers = 3
	c := smallDomain(t, 9, cfg)
	c.RunUntil(60 * sim.Second)
	rms := c.RMs()
	if len(rms) < 3 {
		t.Fatalf("need 3 domains, got RMs %v", rms)
	}
	for _, id := range rms {
		if vs := c.Peer(id).SummaryVersions(); len(vs) != len(rms)-1 {
			t.Fatalf("RM n%d has %d summaries before aging, want %d", id, len(vs), len(rms)-1)
		}
	}
	return rms, c
}

// TestStaleSummariesAgeOut kills an entire domain and checks the
// surviving Resource Managers drop its summary after SummaryMaxAge —
// while summaries of live domains, which keep refreshing through
// gossip, survive far past the window.
func TestStaleSummariesAgeOut(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SummaryMaxAge = 20 * sim.Second
	rms, c := agingCluster(t, cfg)

	// Kill every member of the last-listed RM's domain.
	deadDomain := c.Peer(rms[len(rms)-1]).Domain()
	for _, id := range c.IDs() {
		if c.Net.Alive(id) && c.Peer(id).Domain() == deadDomain {
			c.Crash(c.Eng.Now(), id)
		}
	}

	// Run well past the aging window plus gossip slack.
	c.RunUntil(c.Eng.Now() + 3*cfg.SummaryMaxAge)

	for _, id := range rms[:len(rms)-1] {
		vs := c.Peer(id).SummaryVersions()
		if _, still := vs[deadDomain]; still {
			t.Fatalf("RM n%d still holds dead domain %d's summary after aging: %v", id, deadDomain, vs)
		}
		// Live domains kept each other's summaries fresh.
		if len(vs) != len(rms)-2 {
			t.Fatalf("RM n%d has %d summaries, want %d (live domains only): %v",
				id, len(vs), len(rms)-2, vs)
		}
	}
}

// TestSummariesPersistWithoutAging is the control: with SummaryMaxAge
// zero (the default), a dead domain's summary is never dropped — the
// pre-existing behavior the committed experiment tables were calibrated
// against.
func TestSummariesPersistWithoutAging(t *testing.T) {
	cfg := core.DefaultConfig()
	if cfg.SummaryMaxAge != 0 {
		t.Fatalf("DefaultConfig.SummaryMaxAge = %v, want 0 (aging opt-in)", cfg.SummaryMaxAge)
	}
	rms, c := agingCluster(t, cfg)

	deadDomain := c.Peer(rms[len(rms)-1]).Domain()
	for _, id := range c.IDs() {
		if c.Net.Alive(id) && c.Peer(id).Domain() == deadDomain {
			c.Crash(c.Eng.Now(), id)
		}
	}
	c.RunUntil(c.Eng.Now() + 60*sim.Second)

	for _, id := range rms[:len(rms)-1] {
		vs := c.Peer(id).SummaryVersions()
		if _, still := vs[deadDomain]; !still {
			t.Fatalf("RM n%d dropped domain %d's summary with aging disabled: %v", id, deadDomain, vs)
		}
	}
}
