package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash"
	"hash/fnv"
	"math"

	"repro/internal/env"
	"repro/internal/proto"
)

// Flight-recorder hooks: the live runtime's recorder (internal/replay)
// checkpoints each actor's StateDigest as it records, and the replayer
// rebuilds actors from their ReplayInit blob and compares digests at the
// same points. Both sides must hash exactly the same state in exactly
// the same order, so everything here iterates maps via sorted keys.

// replayInit is the gob payload of Peer.ReplayInit: the constructor
// arguments New needs, minus Config and Events (supplied by the replay
// harness, which knows the run's configuration).
type replayInit struct {
	Info      proto.PeerInfo
	Bootstrap env.NodeID
}

// ReplayInit serializes the peer's construction parameters for the
// flight recorder. It is callable before Init (the recorder logs it at
// node start, ahead of the first handler).
func (p *Peer) ReplayInit() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(replayInit{Info: p.info, Bootstrap: p.bootstrap}); err != nil {
		// PeerInfo is a plain exported struct; encoding cannot fail short
		// of a programming error, which the replay side surfaces as a
		// factory divergence on the empty blob.
		return nil
	}
	return buf.Bytes()
}

// NewFromReplayInit rebuilds a peer actor from a recorded ReplayInit
// blob. cfg and events come from the harness: configuration is an input
// of the run, not something the recorder captures.
func NewFromReplayInit(cfg Config, data []byte, events *Events) (*Peer, error) {
	var ri replayInit
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ri); err != nil {
		return nil, fmt.Errorf("core: decoding replay init: %w", err)
	}
	return New(cfg, ri.Info, ri.Bootstrap, events), nil
}

// digestWriter accumulates an FNV-1a hash over typed fields.
type digestWriter struct {
	h   hash.Hash64
	buf [8]byte
}

func newDigestWriter() *digestWriter { return &digestWriter{h: fnv.New64a()} }

func (d *digestWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], v)
	d.h.Write(d.buf[:])
}

func (d *digestWriter) i64(v int64)   { d.u64(uint64(v)) }
func (d *digestWriter) f64(v float64) { d.u64(math.Float64bits(v)) }

func (d *digestWriter) str(s string) {
	d.u64(uint64(len(s)))
	d.h.Write([]byte(s))
}

func (d *digestWriter) boolean(b bool) {
	if b {
		d.u64(1)
	} else {
		d.u64(0)
	}
}

func (d *digestWriter) sum() uint64 { return d.h.Sum64() }

// StateDigest hashes the peer's protocol-visible state deterministically.
// It covers membership, submission bookkeeping, data-plane roles and the
// full Resource-Manager view; it deliberately excludes profiler EWMA
// internals and scheduler queue details, whose own determinism is
// exercised transitively through the messages they cause. Called only
// from the actor's own event loop (or after it has exited).
func (p *Peer) StateDigest() uint64 {
	d := newDigestWriter()

	// Membership.
	d.boolean(p.joined)
	d.i64(int64(p.domain))
	d.i64(int64(p.rmID))
	d.i64(int64(p.backupID))
	d.u64(uint64(len(p.contacts)))
	for _, c := range p.contacts {
		d.i64(int64(c))
	}
	d.i64(int64(p.joinHops))
	d.i64(int64(p.rejoinTries))
	d.boolean(p.awaitingAnnounce)
	d.f64(p.bgRate)

	// Replicated backup state.
	d.boolean(p.backupState != nil)
	if p.backupState != nil {
		d.i64(int64(p.backupState.Domain))
		d.u64(p.backupState.Version)
		d.u64(uint64(len(p.backupState.Peers)))
		d.u64(uint64(len(p.backupState.Sessions)))
	}

	// Own submissions.
	d.u64(uint64(len(p.submits)))
	for _, id := range sortedStringKeys(p.submits) {
		d.str(id)
		d.i64(int64(p.submits[id]))
	}

	// Data-plane roles.
	d.u64(uint64(len(p.asSource)))
	for _, id := range sortedStringKeys(p.asSource) {
		s := p.asSource[id]
		d.str(id)
		d.boolean(s.emitting)
		d.i64(int64(s.next))
		d.i64(int64(s.desc.Generation))
	}
	d.u64(uint64(len(p.asStage)))
	for _, id := range sortedStringKeys(p.asStage) {
		s := p.asStage[id]
		d.str(id)
		d.i64(int64(s.role))
		d.u64(uint64(len(s.tasks)))
		d.i64(int64(s.desc.Generation))
	}
	d.u64(uint64(len(p.asSink)))
	for _, id := range sortedStringKeys(p.asSink) {
		s := p.asSink[id]
		d.str(id)
		got := 0
		for _, r := range s.received {
			if r {
				got++
			}
		}
		d.i64(int64(got))
		d.i64(int64(s.late))
		d.i64(int64(s.firstAt))
		d.boolean(s.finalized)
	}

	// Resource-Manager view.
	d.boolean(p.rm != nil)
	if st := p.rm; st != nil {
		d.i64(int64(st.domain))
		d.u64(st.version)
		d.i64(int64(st.backup))
		d.u64(st.hbSeq)

		d.u64(uint64(len(st.peers)))
		for _, id := range sortedPeerIDs(st.peers) {
			rec := st.peers[id]
			d.i64(int64(id))
			d.f64(rec.load)
			d.f64(rec.bw)
			d.i64(int64(rec.lastReport))
			d.f64(rec.info.SpeedWU)
		}

		d.u64(uint64(len(st.knownRMs)))
		for _, ref := range st.sortedKnownRMs() {
			d.i64(int64(ref.Domain))
			d.i64(int64(ref.RM))
		}

		d.u64(uint64(len(st.summaries)))
		for _, dom := range sortedDomainIDs(st.summaries) {
			sum := st.summaries[dom]
			d.i64(int64(dom))
			d.u64(sum.Version)
			d.i64(int64(sum.RM))
			d.i64(int64(sum.NumPeers))
			d.f64(sum.AvgUtil)
		}

		d.u64(uint64(len(st.sessions)))
		for _, sess := range sortedSessions(st.sessions) {
			d.str(sess.desc.TaskID)
			d.i64(int64(sess.state))
			d.i64(int64(sess.desc.Generation))
			d.i64(int64(sess.desc.SourcePeer))
			d.u64(uint64(len(sess.desc.Stages)))
			for _, stg := range sess.desc.Stages {
				d.i64(int64(stg.Peer))
				d.f64(stg.Work)
			}
		}
	}

	return d.sum()
}

// sortedStringKeys returns m's keys sorted; the generic constraint keeps
// one helper serving the three session maps and the submit table.
func sortedStringKeys[V any](m map[string]V) []string {
	return sortedMapKeys(m)
}

// sortedDomainIDs returns the summary table's domains in order.
func sortedDomainIDs(m map[proto.DomainID]proto.DomainSummary) []proto.DomainID {
	return sortedMapKeys(m)
}
