package core

import (
	"cmp"
	"sort"
)

// sortedMapKeys returns m's keys in ascending order. This is the one
// justified raw map range in the package: every iteration whose order
// could escape (into messages, logs, or scheduler calls) goes through
// it, so the determinism argument lives in exactly one place.
func sortedMapKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //lint:maporder commutative — keys are sorted below before anything observes them
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
