package core

import (
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config tunes a peer's protocol behavior. DefaultConfig returns the
// values used by the experiments unless a sweep overrides them.
type Config struct {
	// MaxDomainPeers caps domain membership (§4.1: "the only parameter
	// determining the domain size is the maximum number of processing
	// peers a Resource Manager can manage").
	MaxDomainPeers int

	// Qualify holds the RM eligibility thresholds (§4.1).
	Qualify proto.QualifyThresholds

	// HeartbeatPeriod is the RM's liveness-probe interval; a peer (or the
	// RM itself) is declared dead after HeartbeatMisses silent periods.
	HeartbeatPeriod sim.Time
	HeartbeatMisses int

	// ProfilePeriod is the intra-domain load-update interval (§4.4; swept
	// by E10).
	ProfilePeriod sim.Time

	// BackupSyncPeriod is the RM→backup state replication interval
	// (swept by A2).
	BackupSyncPeriod sim.Time

	// GossipPeriod is the inter-domain anti-entropy interval (§4.4;
	// swept by E8). Zero disables gossip.
	GossipPeriod sim.Time

	// Discovery selects the inter-domain discovery backend:
	// DiscoveryGossip (the default, Bloom-summary anti-entropy) or
	// DiscoveryDHT (the Kademlia-style overlay in internal/dht).
	Discovery string

	// DHT tunes the structured overlay when Discovery is DiscoveryDHT;
	// zero values select the dht package defaults.
	DHT dht.Config

	// SummaryMaxAge ages out gossiped domain summaries that have not
	// been refreshed within this window ("updated lazily" cuts both
	// ways: a domain that dissolved or partitioned away keeps answering
	// redirect and object lookups forever without an expiry). Zero
	// disables aging, preserving the committed experiment tables.
	SummaryMaxAge sim.Time

	// AdaptPeriod is the overload-check interval (§4.5). Zero disables
	// adaptive reassignment (the E9 ablation).
	AdaptPeriod sim.Time

	// OverloadUtil is the utilization above which a peer counts as
	// overloaded; ReassignMargin is how much spare another peer must
	// have for a migration to be attempted.
	OverloadUtil   float64
	ReassignMargin float64

	// Allocator chooses task execution sequences (§4.3). Experiments
	// swap in baselines here.
	Allocator graph.Allocator

	// SchedPolicy orders local task execution (§2; LLS in the paper).
	SchedPolicy sched.Policy

	// LatencyEstimateMicros is the RM's per-hop communication estimate
	// used in allocation feasibility checks before it has measured
	// communication times.
	LatencyEstimateMicros int64

	// Bloom geometry for domain summaries (§3.1).
	BloomM uint64
	BloomK uint32

	// MaxRedirects bounds inter-domain task forwarding (§4.5).
	MaxRedirects int

	// MaxConnections caps the peer's simultaneous overlay connections
	// (§2: "the number of connections is typically limited by the
	// resources at the peer"). A peer at capacity refuses new pipeline
	// roles. Zero means unlimited.
	MaxConnections int

	// PreemptLowImportance lets the RM abort a running lower-importance
	// session to admit a task that otherwise has no feasible allocation,
	// realizing the paper's Importance_t metric (§3.3) in the spirit of
	// the value-based schedulers it cites (§5). Off by default; the A3
	// ablation measures its effect.
	PreemptLowImportance bool

	// ComposeTimeout bounds how long the RM waits for ComposeAcks before
	// aborting a session setup.
	ComposeTimeout sim.Time

	// DefaultChunkSec is used when a TaskSpec leaves ChunkSec zero.
	DefaultChunkSec float64

	// EWMAAlpha smooths profiler measurements.
	EWMAAlpha float64

	// Nanotime, when set, supplies a monotonic nanosecond reading used
	// to cost allocator computations (Events.AllocNanos, E4/E11). Nil
	// means "derive from the injected env.Clock": under simulation the
	// virtual clock does not advance while the allocator runs, so the
	// cost reads as zero and runs stay bit-reproducible. The live
	// runtime injects the real monotonic clock here — wall time is an
	// input of the deployment, not of the simulation.
	Nanotime func() int64
}

// DefaultConfig returns the baseline configuration.
func DefaultConfig() Config {
	return Config{
		MaxDomainPeers: 32,
		Qualify: proto.QualifyThresholds{
			MinSpeedWU:       4,
			MinBandwidthKbps: 1000,
			MinUptimeSec:     1800,
		},
		HeartbeatPeriod:       500 * sim.Millisecond,
		HeartbeatMisses:       3,
		ProfilePeriod:         1 * sim.Second,
		BackupSyncPeriod:      2 * sim.Second,
		GossipPeriod:          3 * sim.Second,
		AdaptPeriod:           2 * sim.Second,
		OverloadUtil:          0.90,
		ReassignMargin:        0.25,
		Allocator:             graph.FairnessBFS{},
		SchedPolicy:           sched.LLS{},
		LatencyEstimateMicros: 20_000,
		BloomM:                4096,
		BloomK:                4,
		MaxRedirects:          3,
		ComposeTimeout:        2 * sim.Second,
		DefaultChunkSec:       1.0,
		EWMAAlpha:             0.3,
	}
}
