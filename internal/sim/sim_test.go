package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500µs"},
		{1500, "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if got := FromSeconds(0.0000015); got != 2 { // rounds to nearest µs
		t.Fatalf("FromSeconds rounding = %v, want 2", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final clock = %v", e.Now())
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := New()
	var fired Time
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("nested After fired at %v, want 150", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(10, func() { fired = true })
	if !h.Cancel() {
		t.Fatal("Cancel on pending event returned false")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := New()
	h := e.At(10, func() {})
	e.Run()
	if h.Cancel() {
		t.Fatal("Cancel after firing returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second run", fired)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("clock = %v, want 500", e.Now())
	}
}

func TestRunUntilSkipsDeadHead(t *testing.T) {
	e := New()
	h := e.At(10, func() {})
	fired := false
	e.At(20, func() { fired = true })
	h.Cancel()
	e.RunUntil(25)
	if !fired {
		t.Fatal("event behind cancelled head did not fire")
	}
}

func TestHalt(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	e.Run() // resumes
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var times []Time
	var tk *Ticker
	tk = e.Every(10, 5, func() {
		times = append(times, e.Now())
		if len(times) == 4 {
			tk.Stop()
		}
	})
	e.RunUntil(1000)
	want := []Time{10, 15, 20, 25}
	if len(times) != 4 {
		t.Fatalf("ticks = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", times, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Stop", e.Pending())
	}
}

func TestTickerStopBeforeFirstTick(t *testing.T) {
	e := New()
	fired := false
	tk := e.Every(10, 5, func() { fired = true })
	tk.Stop()
	e.RunUntil(100)
	if fired {
		t.Fatal("stopped ticker fired")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and the engine fires exactly the scheduled count.
func TestPropertyOrdering(t *testing.T) {
	check := func(delays []uint16) bool {
		e := New()
		var fired []Time
		for _, d := range delays {
			e.After(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}
