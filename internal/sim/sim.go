// Package sim is a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in microseconds and a binary heap of
// pending events. Events scheduled for the same instant fire in the order
// they were scheduled (ties broken by a monotone sequence number), which
// makes runs bit-reproducible given the same seed and schedule.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in microseconds since the start of the run.
type Time int64

// Common durations expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%dµs", int64(t))
	}
}

// FromSeconds converts floating-point seconds to Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// event is one pending callback.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int  // heap index, maintained by eventQueue
	dead  bool // cancelled
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine runs events in virtual-time order. It is not safe for concurrent
// use; all simulated components run on the engine's single logical thread.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Handle identifies a scheduled event and allows cancellation.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.dead || h.ev.index < 0 {
		return false
	}
	h.ev.dead = true
	return true
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev}
}

// After schedules fn to run delay from now.
func (e *Engine) After(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Every schedules fn to run now+delay and then every period until the
// returned Ticker is stopped.
func (e *Engine) Every(delay, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.handle = e.After(delay, t.tick)
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	handle  Handle
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.handle = t.engine.After(t.period, t.tick)
	}
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Halt stops the current Run/RunUntil after the in-flight event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the next pending event, advancing the clock. It reports
// whether an event ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event is
// after deadline; the clock then advances to deadline (never backwards).
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		// Skip dead events at the head so their timestamps don't gate us.
		for len(e.queue) > 0 && e.queue[0].dead {
			heap.Pop(&e.queue)
		}
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}
