// Package profiler implements the per-peer Profiler of §2/§3.2: it
// "measures the current processor and network load of the peer and
// monitors the computation and communication times of the applications as
// they execute", producing the periodic reports that flow to the domain
// Resource Manager (§4.4 intra-domain propagation).
//
// Measurements are smoothed with exponentially weighted moving averages so
// a single noisy sample does not swing the Resource Manager's allocation
// decisions.
package profiler

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha weighs recent samples more.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA with the given alpha. It panics unless
// 0 < alpha <= 1.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("profiler: EWMA alpha out of (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds in a sample. The first sample initializes the average.
func (e *EWMA) Observe(v float64) {
	if !e.seen {
		e.value = v
		e.seen = true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Seen reports whether any sample has arrived.
func (e *EWMA) Seen() bool { return e.seen }

// Report is one profiler snapshot propagated to the Resource Manager
// (§3.2): current load, bandwidth use, and per-service timing profiles.
type Report struct {
	Peer          int
	At            sim.Time
	Load          float64 // work units/s currently in service (l_i)
	Utilization   float64 // Load / Speed
	BandwidthKbps float64 // currently used network bandwidth (bw_i)
	// ServiceTimes maps service key -> smoothed per-chunk computation
	// time in microseconds, measured as applications execute.
	ServiceTimes map[string]float64
	// CommTimes maps remote peer -> smoothed one-way communication time
	// in microseconds.
	CommTimes map[int]float64
}

// Profiler accumulates local measurements for one peer.
type Profiler struct {
	peer  int
	speed float64

	load      float64
	bandwidth float64

	serviceTimes map[string]*EWMA
	commTimes    map[int]*EWMA

	alpha float64
}

// New returns a profiler for the given peer with processing power speed.
// alpha is the EWMA smoothing factor for timing measurements.
func New(peer int, speed float64, alpha float64) *Profiler {
	if speed <= 0 {
		panic("profiler: non-positive speed")
	}
	return &Profiler{
		peer:         peer,
		speed:        speed,
		serviceTimes: make(map[string]*EWMA),
		commTimes:    make(map[int]*EWMA),
		alpha:        alpha,
	}
}

// SetLoad records the instantaneous processor load (work units/s in
// service). Negative values clamp to zero.
func (p *Profiler) SetLoad(load float64) {
	if load < 0 {
		load = 0
	}
	p.load = load
}

// AddLoad adjusts the load by delta (service start/stop).
func (p *Profiler) AddLoad(delta float64) { p.SetLoad(p.load + delta) }

// Load returns the current load.
func (p *Profiler) Load() float64 { return p.load }

// Utilization returns load/speed.
func (p *Profiler) Utilization() float64 { return p.load / p.speed }

// SetBandwidth records the instantaneous network use in Kbps.
func (p *Profiler) SetBandwidth(kbps float64) {
	if kbps < 0 {
		kbps = 0
	}
	p.bandwidth = kbps
}

// AddBandwidth adjusts bandwidth use by delta Kbps.
func (p *Profiler) AddBandwidth(delta float64) { p.SetBandwidth(p.bandwidth + delta) }

// Bandwidth returns the current bandwidth use in Kbps.
func (p *Profiler) Bandwidth() float64 { return p.bandwidth }

// ObserveServiceTime records a measured per-chunk computation time for a
// service (µs).
func (p *Profiler) ObserveServiceTime(service string, micros float64) {
	e, ok := p.serviceTimes[service]
	if !ok {
		e = NewEWMA(p.alpha)
		p.serviceTimes[service] = e
	}
	e.Observe(micros)
}

// ObserveCommTime records a measured one-way communication time to a
// remote peer (µs).
func (p *Profiler) ObserveCommTime(remote int, micros float64) {
	e, ok := p.commTimes[remote]
	if !ok {
		e = NewEWMA(p.alpha)
		p.commTimes[remote] = e
	}
	e.Observe(micros)
}

// ServiceTime returns the smoothed computation time for service, if any
// sample exists.
func (p *Profiler) ServiceTime(service string) (float64, bool) {
	if e, ok := p.serviceTimes[service]; ok && e.Seen() {
		return e.Value(), true
	}
	return 0, false
}

// Snapshot produces the report propagated to the Resource Manager.
func (p *Profiler) Snapshot(at sim.Time) Report {
	r := Report{
		Peer:          p.peer,
		At:            at,
		Load:          p.load,
		Utilization:   p.load / p.speed,
		BandwidthKbps: p.bandwidth,
		ServiceTimes:  make(map[string]float64, len(p.serviceTimes)),
		CommTimes:     make(map[int]float64, len(p.commTimes)),
	}
	for k, e := range p.serviceTimes {
		r.ServiceTimes[k] = e.Value()
	}
	for k, e := range p.commTimes {
		r.CommTimes[k] = e.Value()
	}
	return r
}

// String renders the profiler state for diagnostics.
func (p *Profiler) String() string {
	keys := make([]string, 0, len(p.serviceTimes))
	for k := range p.serviceTimes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("profiler(peer=%d load=%.2f bw=%.0fKbps services=%d)",
		p.peer, p.load, p.bandwidth, len(keys))
}
