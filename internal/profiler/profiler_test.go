package profiler

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFirstSample(t *testing.T) {
	e := NewEWMA(0.3)
	if e.Seen() {
		t.Fatal("fresh EWMA claims samples")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first sample Value = %v", e.Value())
	}
	if !e.Seen() {
		t.Fatal("Seen false after sample")
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(10)
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("Value = %v, want 15", e.Value())
	}
	e.Observe(15)
	if e.Value() != 15 {
		t.Fatalf("Value = %v, want 15", e.Value())
	}
}

func TestEWMAAlphaOneTracksLast(t *testing.T) {
	e := NewEWMA(1)
	e.Observe(3)
	e.Observe(7)
	if e.Value() != 7 {
		t.Fatalf("alpha=1 Value = %v", e.Value())
	}
}

func TestEWMAPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v accepted", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

// Property: EWMA value always lies within [min, max] of observed samples.
func TestPropertyEWMABounded(t *testing.T) {
	check := func(raw []float64) bool {
		e := NewEWMA(0.25)
		lo, hi := math.Inf(1), math.Inf(-1)
		any := false
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			any = true
			e.Observe(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if !any {
			return true
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerLoad(t *testing.T) {
	p := New(3, 4, 0.3)
	p.SetLoad(2)
	if p.Load() != 2 || p.Utilization() != 0.5 {
		t.Fatalf("load/util = %v/%v", p.Load(), p.Utilization())
	}
	p.AddLoad(1)
	if p.Load() != 3 {
		t.Fatalf("AddLoad -> %v", p.Load())
	}
	p.AddLoad(-10) // clamps at 0
	if p.Load() != 0 {
		t.Fatalf("clamped load = %v", p.Load())
	}
}

func TestProfilerBandwidth(t *testing.T) {
	p := New(0, 1, 0.3)
	p.SetBandwidth(512)
	p.AddBandwidth(-600)
	if p.Bandwidth() != 0 {
		t.Fatalf("bandwidth = %v", p.Bandwidth())
	}
	p.AddBandwidth(128)
	if p.Bandwidth() != 128 {
		t.Fatalf("bandwidth = %v", p.Bandwidth())
	}
}

func TestServiceTimes(t *testing.T) {
	p := New(0, 1, 0.5)
	if _, ok := p.ServiceTime("svc"); ok {
		t.Fatal("unknown service reported a time")
	}
	p.ObserveServiceTime("svc", 100)
	p.ObserveServiceTime("svc", 200)
	v, ok := p.ServiceTime("svc")
	if !ok || v != 150 {
		t.Fatalf("ServiceTime = %v,%v", v, ok)
	}
}

func TestSnapshot(t *testing.T) {
	p := New(7, 2, 0.5)
	p.SetLoad(1)
	p.SetBandwidth(256)
	p.ObserveServiceTime("a", 10)
	p.ObserveCommTime(4, 500)
	r := p.Snapshot(1234)
	if r.Peer != 7 || r.At != 1234 {
		t.Fatalf("snapshot meta = %+v", r)
	}
	if r.Load != 1 || r.Utilization != 0.5 || r.BandwidthKbps != 256 {
		t.Fatalf("snapshot values = %+v", r)
	}
	if r.ServiceTimes["a"] != 10 || r.CommTimes[4] != 500 {
		t.Fatalf("snapshot maps = %+v", r)
	}
	// Snapshot maps must be copies.
	r.ServiceTimes["a"] = 999
	if v, _ := p.ServiceTime("a"); v != 10 {
		t.Fatal("snapshot aliased internal state")
	}
}

func TestNewPanicsOnBadSpeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero speed accepted")
		}
	}()
	New(0, 0, 0.5)
}

func TestString(t *testing.T) {
	p := New(1, 1, 0.5)
	if s := p.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
}
