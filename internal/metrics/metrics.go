// Package metrics provides lightweight measurement primitives for the
// simulator and the live runtime: counters, gauges, histograms, summaries
// with exact quantiles, and fixed-resolution time series — plus a labeled
// Registry (registry.go) with Prometheus text-format and JSON encoders.
//
// There is no package-global registry; components own their instruments
// (or register them into an explicitly shared Registry), which keeps
// simulated runs deterministic and avoids hidden cross-run state.
//
// Concurrency: Counter, Gauge and Histogram are safe for concurrent use
// (sync/atomic) so live-runtime goroutines may share them. Summary,
// Series and Table are NOT goroutine-safe; they are owned by a single
// simulation/experiment thread, and callers that share them across
// goroutines must serialize access externally.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing count, safe for concurrent use.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta. Negative deltas panic: counters only go up.
func (c *Counter) Add(delta int) {
	if delta < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.n.Add(uint64(delta))
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that may go up and down, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one — the common case for open-connection style gauges.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Summary accumulates float64 observations and reports exact order
// statistics. Observations are kept; memory is proportional to the number
// of samples, which is fine at simulation scale and keeps quantiles exact.
//
// Summary is not safe for concurrent use: even read-only accessors sort
// lazily and so mutate internal state. Share one only behind external
// synchronization; within the simulator the single event loop suffices.
type Summary struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sorted = false
}

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.samples) }

// Sum returns the sum of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two samples.
func (s *Summary) StdDev() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Summary) sort() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank with
// linear interpolation, or 0 with no samples.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	s.sort()
	pos := q * float64(len(s.samples)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.samples) {
		return s.samples[lo]
	}
	return s.samples[lo]*(1-frac) + s.samples[lo+1]*frac
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

// String renders count/mean/p50/p95/p99/max, the digest used in
// experiment tables.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.Count(), s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99), s.Max())
}

// Series is a time series sampled at the caller's cadence: pairs of
// (t, value) appended in nondecreasing t order.
//
// Series is not safe for concurrent use; like Summary it belongs to one
// goroutine (the simulation loop) and concurrent readers must coordinate
// with the writer externally.
type Series struct {
	ts []float64
	vs []float64
}

// Append records value at time t. Out-of-order appends panic.
func (s *Series) Append(t, value float64) {
	if n := len(s.ts); n > 0 && t < s.ts[n-1] {
		panic(fmt.Sprintf("metrics: Series.Append out of order: %v after %v", t, s.ts[n-1]))
	}
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, value)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.ts) }

// At returns the i-th point.
func (s *Series) At(i int) (t, value float64) { return s.ts[i], s.vs[i] }

// Values returns a copy of the values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vs))
	copy(out, s.vs)
	return out
}

// MeanAfter returns the mean of values with t >= from, or 0 if none;
// useful for discarding warm-up transients.
func (s *Series) MeanAfter(from float64) float64 {
	var sum float64
	var n int
	for i, t := range s.ts {
		if t >= from {
			sum += s.vs[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table formats experiment results as an aligned plain-text table. Rows
// are printed in the given order; every row must have len(header) cells.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells, Sprint-formatting each value.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
