package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Observe(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Sum() != 15 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	wantSD := math.Sqrt(2) // population sd of 1..5
	if math.Abs(s.StdDev()-wantSD) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), wantSD)
	}
}

func TestSummaryQuantileInterpolation(t *testing.T) {
	var s Summary
	s.Observe(0)
	s.Observe(10)
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestSummaryObserveAfterQuantile(t *testing.T) {
	var s Summary
	s.Observe(5)
	_ = s.Quantile(0.5)
	s.Observe(1) // must re-sort lazily
	if got := s.Min(); got != 1 {
		t.Fatalf("Min after late observe = %v", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	check := func(raw []float64, qa, qb uint8) bool {
		var s Summary
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Observe(v)
		}
		if s.Count() == 0 {
			return true
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		va, vb := s.Quantile(a), s.Quantile(b)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: median of a sorted copy matches Quantile(0.5) by the same
// interpolation rule.
func TestPropertyMedianMatchesSort(t *testing.T) {
	check := func(raw []float64) bool {
		clean := raw[:0:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Summary
		for _, v := range clean {
			s.Observe(v)
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		pos := 0.5 * float64(len(sorted)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		want := sorted[lo]
		if lo+1 < len(sorted) {
			want = sorted[lo]*(1-frac) + sorted[lo+1]*frac
		}
		return s.Quantile(0.5) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(0, 1)
	s.Append(1, 2)
	s.Append(2, 6)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if tm, v := s.At(2); tm != 2 || v != 6 {
		t.Fatalf("At(2) = %v,%v", tm, v)
	}
	if got := s.MeanAfter(1); got != 4 {
		t.Fatalf("MeanAfter(1) = %v, want 4", got)
	}
	if got := s.MeanAfter(10); got != 0 {
		t.Fatalf("MeanAfter(10) = %v, want 0", got)
	}
	vs := s.Values()
	vs[0] = 99
	if _, v := s.At(0); v != 1 {
		t.Fatal("Values did not copy")
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	var s Series
	s.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	s.Append(4, 1)
}

func TestTableString(t *testing.T) {
	tab := Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", 1.0)
	tab.AddRow("b", 12.3456789)
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12.35") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	// All data lines at least as wide as header alignment requires.
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}}
	tab.AddRow(1, 2)
	md := tab.Markdown()
	want := "| a | b |\n|---|---|\n| 1 | 2 |\n"
	if md != want {
		t.Fatalf("markdown = %q, want %q", md, want)
	}
}

func TestTrimFloat(t *testing.T) {
	if got := trimFloat(3.0); got != "3" {
		t.Fatalf("trimFloat(3.0) = %q", got)
	}
	if got := trimFloat(0.12345); got != "0.1234" && got != "0.1235" {
		t.Fatalf("trimFloat(0.12345) = %q", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Observe(1)
	out := s.String()
	if !strings.Contains(out, "n=1") || !strings.Contains(out, "mean=1.000") {
		t.Fatalf("String = %q", out)
	}
}

func BenchmarkSummaryObserve(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i % 1000))
	}
}
