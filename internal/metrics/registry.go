package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file adds the labeled-metrics layer used by the live runtime's
// /metrics endpoint and by instrumented simulations: components register
// counters, gauges and histograms into a shared Registry under stable
// names with per-domain/per-peer labels, and exporters snapshot it into
// Prometheus text format or JSON. All instruments returned by a Registry
// are safe for concurrent use.

// Labels annotates one metric instance. Keys and values must be stable
// for the lifetime of the instrument; the map is copied at registration.
type Labels map[string]string

// MetricType discriminates a family's instrument kind.
type MetricType string

// Family types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefLatencyBuckets are the default histogram bounds for latencies in
// seconds, from 100µs to 10s.
var DefLatencyBuckets = []float64{1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 2.5, 5, 10}

// Histogram counts observations into cumulative buckets, safe for
// concurrent use. Create one through Registry.Histogram so the bucket
// bounds are fixed and shared.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	total   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each bound
// (the final element is the +Inf bucket, equal to Count).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// metric is one labeled instance inside a family.
type metric struct {
	labels Labels
	key    string // canonical label encoding, sort/export order
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all instances of one metric name.
type family struct {
	name    string
	help    string
	typ     MetricType
	buckets []float64 // histograms only
	mu      sync.Mutex
	metrics map[string]*metric // guarded by mu
}

// Registry is a labeled metrics namespace. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, and a nil
// *Registry ignores registrations gracefully via the package-level
// helpers in core (a nil Registry itself must not be dereferenced).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// canonical encodes labels deterministically for map keys and export
// order.
func canonical(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// familyFor returns the named family, creating it with the given type on
// first use. Re-registering a name under a different type panics: that is
// a programming error the first scrape would otherwise hide.
func (r *Registry) familyFor(name, help string, typ MetricType, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, typ: typ, buckets: buckets,
				metrics: make(map[string]*metric)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// instance returns the labeled metric in f, creating it on first use.
func (f *family) instance(labels Labels) *metric {
	key := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[key]
	if !ok {
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		m = &metric{labels: cp, key: key}
		switch f.typ {
		case TypeCounter:
			m.c = &Counter{}
		case TypeGauge:
			m.g = &Gauge{}
		case TypeHistogram:
			m.h = newHistogram(f.buckets)
		}
		f.metrics[key] = m
	}
	return m
}

// Counter returns the labeled counter under name, registering the family
// (with help text) and the instance on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.familyFor(name, help, TypeCounter, nil).instance(labels).c
}

// Gauge returns the labeled gauge under name.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.familyFor(name, help, TypeGauge, nil).instance(labels).g
}

// Histogram returns the labeled histogram under name. The bucket bounds
// of the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	return r.familyFor(name, help, TypeHistogram, buckets).instance(labels).h
}

// MetricSnapshot is one labeled instance in a Snapshot.
type MetricSnapshot struct {
	Labels Labels `json:"labels,omitempty"`
	// Counter/gauge value; for histograms the sum of observations.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   uint64    `json:"count,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"` // cumulative, aligned with Bounds + Inf
}

// FamilySnapshot is one metric family in a Snapshot.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    MetricType       `json:"type"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot returns a consistent point-in-time copy of every family,
// sorted by family name and label set. (Consistency is per-instrument:
// counters touched during the snapshot may or may not include the last
// increment, as with any scrape.)
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		ms := make([]*metric, 0, len(f.metrics))
		for _, m := range f.metrics {
			ms = append(ms, m)
		}
		f.mu.Unlock()
		sort.Slice(ms, func(i, j int) bool { return ms[i].key < ms[j].key })
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for _, m := range ms {
			s := MetricSnapshot{Labels: m.labels}
			switch f.typ {
			case TypeCounter:
				s.Value = float64(m.c.Value())
			case TypeGauge:
				s.Value = m.g.Value()
			case TypeHistogram:
				s.Value = m.h.Sum()
				s.Count = m.h.Count()
				s.Bounds, s.Buckets = m.h.Buckets()
			}
			fs.Metrics = append(fs.Metrics, s)
		}
		out = append(out, fs)
	}
	return out
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatLabels renders {k="v",...} with an optional extra le pair.
func formatLabels(labels Labels, extraKey, extraVal string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, k+`="`+escapeLabel(labels[k])+`"`)
	}
	if extraKey != "" {
		parts = append(parts, extraKey+`="`+extraVal+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fs := range r.Snapshot() {
		if fs.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fs.Name, fs.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fs.Name, fs.Type); err != nil {
			return err
		}
		for _, m := range fs.Metrics {
			switch fs.Type {
			case TypeHistogram:
				for i, b := range m.Bounds {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						fs.Name, formatLabels(m.Labels, "le", formatFloat(b)), m.Buckets[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					fs.Name, formatLabels(m.Labels, "le", "+Inf"), m.Buckets[len(m.Buckets)-1]); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fs.Name,
					formatLabels(m.Labels, "", ""), formatFloat(m.Value)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", fs.Name,
					formatLabels(m.Labels, "", ""), m.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", fs.Name,
					formatLabels(m.Labels, "", ""), formatFloat(m.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON encodes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Families []FamilySnapshot `json:"families"`
	}{r.Snapshot()})
}
