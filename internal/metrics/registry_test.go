package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"domain": "0"})
	b := r.Counter("x_total", "help", Labels{"domain": "0"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("x_total", "help", Labels{"domain": "1"})
	if a == c {
		t.Fatal("different labels must return different counters")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Fatalf("values: %d %d", b.Value(), c.Value())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	r.Gauge("x", "", nil)
}

func TestHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-106.2) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 2 || len(cum) != 3 {
		t.Fatalf("buckets: %v %v", bounds, cum)
	}
	// Cumulative: le=1 → 2, le=10 → 3, +Inf → 4.
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Fatalf("cumulative = %v", cum)
	}
}

// buildSample fills a registry deterministically for the encoder tests.
func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("p2p_sessions_submitted_total", "Task queries issued by users.", Labels{"domain": "0"}).Add(12)
	r.Counter("p2p_sessions_submitted_total", "Task queries issued by users.", Labels{"domain": "1"}).Add(3)
	r.Counter("p2p_sessions_admitted_total", "Sessions composed.", Labels{"domain": "0"}).Add(10)
	r.Gauge("p2p_peer_load", "Profiled load.", Labels{"domain": "0", "peer": "2"}).Set(3.5)
	r.Gauge("p2p_peer_load", "Profiled load.", Labels{"domain": "0", "peer": "11"}).Set(0.25)
	h := r.Histogram("p2p_alloc_seconds", "Allocation cost.", []float64{0.001, 0.01, 0.1}, Labels{"domain": "0"})
	for _, v := range []float64{0.0004, 0.002, 0.05, 0.5} {
		h.Observe(v)
	}
	// A label value needing escaping.
	r.Counter("p2p_escapes_total", "Escape check.", Labels{"what": "a \"b\"\nc\\d"}).Inc()
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sample.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.String(), want)
	}
	// Encoding is deterministic: a second pass is byte-identical.
	var again bytes.Buffer
	buildSample().WritePrometheus(&again)
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("encoding not deterministic")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Families) != 5 {
		t.Fatalf("families = %d", len(doc.Families))
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range doc.Families {
		byName[f.Name] = f
	}
	sub := byName["p2p_sessions_submitted_total"]
	if sub.Type != TypeCounter || len(sub.Metrics) != 2 || sub.Metrics[0].Value != 12 {
		t.Fatalf("submitted family: %+v", sub)
	}
	alloc := byName["p2p_alloc_seconds"]
	if alloc.Type != TypeHistogram || alloc.Metrics[0].Count != 4 {
		t.Fatalf("alloc family: %+v", alloc)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", "", Labels{"domain": "0"}).Inc()
				r.Gauge("g", "", Labels{"peer": "1"}).Add(1)
				r.Histogram("h_seconds", "", nil, nil).Observe(0.001)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if v := r.Counter("c_total", "", Labels{"domain": "0"}).Value(); v != 4000 {
		t.Fatalf("counter = %d", v)
	}
	if v := r.Gauge("g", "", Labels{"peer": "1"}).Value(); v != 4000 {
		t.Fatalf("gauge = %g", v)
	}
	if n := r.Histogram("h_seconds", "", nil, nil).Count(); n != 4000 {
		t.Fatalf("histogram = %d", n)
	}
}
