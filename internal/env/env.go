// Package env defines the execution environment abstraction that lets the
// peer/Resource-Manager protocol logic (internal/node) run unchanged on
// two substrates:
//
//   - internal/netsim: a deterministic discrete-event network simulation
//     under virtual time, used by every experiment;
//   - internal/live: a real-time runtime where each node is a goroutine
//     with a serialized mailbox and messages travel over in-process
//     channels or TCP.
//
// A node is an Actor: single-threaded event handlers invoked with a
// Context. All node state may be touched only from those handlers; the
// runtimes guarantee serialization.
package env

import (
	"repro/internal/rng"
	"repro/internal/sim"
)

// NodeID identifies a node (peer) in the overlay. IDs are assigned by the
// runtime and are stable for the node's lifetime.
type NodeID int

// NoNode is the absent-node sentinel.
const NoNode NodeID = -1

// Message is any value sent between nodes. Messages must be treated as
// immutable after sending: the simulated runtime delivers them by
// reference. Messages crossing the TCP transport must be gob-encodable
// and registered with proto.RegisterMessages.
type Message any

// Sized lets a message declare its payload size for bandwidth modeling;
// messages without it are assumed to be small control traffic.
type Sized interface {
	// SizeKB returns the payload size in kilobytes.
	SizeKB() float64
}

// Cancel stops a pending timer. It reports whether the timer was still
// pending. Calling it multiple times is safe.
type Cancel func() bool

// Clock provides time and timers to protocol logic and to the scheduler.
// Under simulation, Now is virtual time; under the live runtime it is
// elapsed wall time since the runtime started.
type Clock interface {
	// Now returns the current time.
	Now() sim.Time
	// After schedules fn once, d from now, on the owning node's event
	// loop. Callbacks must not be invoked after the node has stopped.
	After(d sim.Time, fn func()) Cancel
}

// Context is the full environment handed to an Actor. It is valid only on
// the actor's own event loop.
type Context interface {
	Clock
	// Self returns this node's ID.
	Self() NodeID
	// Send delivers m to the given node, best-effort and asynchronous.
	// Sends to dead or unknown nodes vanish silently, like UDP.
	Send(to NodeID, m Message)
	// Rand returns this node's deterministic random stream.
	Rand() *rng.Rand
	// Logf records a diagnostic line tagged with the node and time.
	Logf(format string, args ...any)
}

// Actor is the protocol logic of one node.
type Actor interface {
	// Init runs once when the node starts, with its context.
	Init(ctx Context)
	// Receive handles one message. from is the sending node.
	Receive(from NodeID, m Message)
	// Stop runs when the node shuts down gracefully (not on crash).
	Stop()
}

// Every schedules fn to run repeatedly: first after delay, then every
// period, until the returned Cancel is called. It is built on Clock.After
// so it works on any runtime.
func Every(c Clock, delay, period sim.Time, fn func()) Cancel {
	if period <= 0 {
		panic("env: Every with non-positive period")
	}
	stopped := false
	var pending Cancel
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = c.After(period, tick)
		}
	}
	pending = c.After(delay, tick)
	return func() bool {
		if stopped {
			return false
		}
		stopped = true
		if pending != nil {
			pending()
		}
		return true
	}
}

// SimClock adapts a bare *sim.Engine to Clock for components that run
// outside any node (e.g. workload generators driving a simulation).
type SimClock struct{ Eng *sim.Engine }

// Now implements Clock.
func (c SimClock) Now() sim.Time { return c.Eng.Now() }

// After implements Clock.
func (c SimClock) After(d sim.Time, fn func()) Cancel {
	h := c.Eng.After(d, fn)
	return h.Cancel
}
