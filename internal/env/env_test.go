package env

import (
	"testing"

	"repro/internal/sim"
)

func TestSimClock(t *testing.T) {
	eng := sim.New()
	clk := SimClock{Eng: eng}
	if clk.Now() != 0 {
		t.Fatalf("Now = %v", clk.Now())
	}
	fired := false
	cancel := clk.After(10, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if cancel() {
		t.Fatal("cancel after fire returned true")
	}
}

func TestSimClockCancel(t *testing.T) {
	eng := sim.New()
	clk := SimClock{Eng: eng}
	fired := false
	cancel := clk.After(10, func() { fired = true })
	if !cancel() {
		t.Fatal("cancel returned false on pending timer")
	}
	eng.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestEveryTicksAtPeriod(t *testing.T) {
	eng := sim.New()
	clk := SimClock{Eng: eng}
	var ticks []sim.Time
	stop := Every(clk, 5, 10, func() { ticks = append(ticks, eng.Now()) })
	eng.RunUntil(36)
	stop()
	eng.RunUntil(100)
	want := []sim.Time{5, 15, 25, 35}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestEveryStopFromCallback(t *testing.T) {
	eng := sim.New()
	clk := SimClock{Eng: eng}
	count := 0
	var stop Cancel
	stop = Every(clk, 1, 1, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	eng.RunUntil(100)
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestEveryStopIdempotent(t *testing.T) {
	eng := sim.New()
	clk := SimClock{Eng: eng}
	stop := Every(clk, 1, 1, func() {})
	if !stop() {
		t.Fatal("first stop returned false")
	}
	if stop() {
		t.Fatal("second stop returned true")
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(period=0) did not panic")
		}
	}()
	Every(SimClock{Eng: sim.New()}, 1, 0, func() {})
}
