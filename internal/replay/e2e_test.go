package replay_test

// End-to-end flight-recorder tests: record a real chaos run — two live
// runtimes over TCP, supervised connections, an active fault injector
// severing the RM mid-run — then replay both logs under the
// deterministic scheduler and demand a byte-equivalent re-execution.
// These are the acceptance tests for the subsystem; the white-box unit
// tests live in run_test.go / log_test.go.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
	"repro/internal/replay"
	"repro/internal/sim"
)

// chaosConfig mirrors internal/live's chaos test tuning: fast heartbeats
// so a severed RM is detected within milliseconds, gossip and adaptation
// off to keep the run short.
func chaosConfig() p2prm.Config {
	cfg := p2prm.DefaultConfig()
	cfg.HeartbeatPeriod = 30 * sim.Millisecond
	cfg.HeartbeatMisses = 3
	cfg.ProfilePeriod = 50 * sim.Millisecond
	cfg.BackupSyncPeriod = 60 * sim.Millisecond
	cfg.GossipPeriod = 0
	cfg.AdaptPeriod = 0
	return cfg
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

// fastTransport mirrors the live package's test transport tuning.
func fastTransport() p2prm.TransportConfig {
	return p2prm.TransportConfig{
		DialTimeout:      500 * time.Millisecond,
		WriteTimeout:     500 * time.Millisecond,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       20 * time.Millisecond,
		CircuitThreshold: 3,
		CircuitCooldown:  20 * time.Millisecond,
	}
}

// replayedClean replays dir and fails the test on any divergence or
// trace mismatch, returning the result for further assertions.
func replayedClean(t *testing.T, cfg p2prm.Config, dir, label string) *p2prm.ReplayResult {
	t.Helper()
	res, diff, err := p2prm.ReplayRecording(cfg, dir)
	if err != nil {
		t.Fatalf("%s: replay: %v", label, err)
	}
	if res.Diverged != nil {
		t.Fatalf("%s: replay diverged: %s", label, res.Diverged)
	}
	if diff != nil {
		t.Fatalf("%s: trace mismatch: %s", label, diff)
	}
	if res.Truncated {
		t.Fatalf("%s: log truncated after a clean Close", label)
	}
	return res
}

// TestReplayChaosRoundTrip is the round-trip property: a recorded live
// run across two TCP-joined runtimes — including an active fault
// injector severing the RM and a task submission — replays with zero
// divergence and an identical trace stream on both sides.
func TestReplayChaosRoundTrip(t *testing.T) {
	cfg := chaosConfig()
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")

	mk := func() p2prm.PeerInfo {
		return p2prm.PeerInfo{SpeedWU: 50, BandwidthKbps: 10000, UptimeSec: 7200}
	}
	lA, err := p2prm.NewLive(cfg, p2prm.LiveOptions{
		Seed: 60, Listen: "127.0.0.1:0", Transport: fastTransport(), RecordDir: dirA,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lA.Close()
	lB, err := p2prm.NewLive(cfg, p2prm.LiveOptions{
		Seed: 61, Listen: "127.0.0.1:0", Transport: fastTransport(), RecordDir: dirB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lB.Close()

	// The founder (and so the RM) lives on runtime A; both candidate
	// backups live on runtime B and bootstrap through TCP.
	lA.Register(1, lB.ListenAddr())
	lA.Register(2, lB.ListenAddr())
	lB.Register(0, lA.ListenAddr())
	lA.StartPeerWithID(0, mk(), p2prm.NoNode)
	lB.StartPeerWithID(1, mk(), 0)
	lB.StartPeerWithID(2, mk(), 0)

	waitFor(t, 10*time.Second, func() bool {
		return lA.Joined(0) && lB.Joined(1) && lB.Joined(2)
	})

	// Let the backup get at least one state sync, then cut every link
	// touching the RM — on both runtimes, so neither direction survives.
	time.Sleep(250 * time.Millisecond)
	lA.Sever(0, p2prm.NoNode)
	lB.Sever(0, p2prm.NoNode)
	waitFor(t, 10*time.Second, func() bool { return lB.IsRM(1) || lB.IsRM(2) })

	// A submission through the recorded CallNamed path. The peers host no
	// objects, so the new RM rejects it — deterministically.
	if id := lB.Submit(1, stdReplaySpec(1)); id == "" {
		t.Fatal("submit returned no task ID")
	}
	waitFor(t, 5*time.Second, func() bool { return lB.Events().Rejected > 0 })

	lA.Close()
	lB.Close()

	stA := lA.RecordStatus()
	if stA.Recording {
		t.Fatal("still recording after Close")
	}

	resA := replayedClean(t, cfg, dirA, "runtime A")
	resB := replayedClean(t, cfg, dirB, "runtime B")
	if resA.Nodes != 1 || resB.Nodes != 2 {
		t.Fatalf("replayed nodes = %d/%d, want 1/2", resA.Nodes, resB.Nodes)
	}
	if resB.Events < 20 {
		t.Fatalf("suspiciously small log for runtime B: %d events", resB.Events)
	}
	if resA.Faults == 0 {
		t.Fatal("no fault-injector decisions recorded on the severed runtime")
	}
}

// stdReplaySpec is a feasible-looking request for an object nobody has.
func stdReplaySpec(origin p2prm.NodeID) p2prm.TaskSpec {
	return p2prm.TaskSpec{
		Origin:     origin,
		ObjectName: "missing-object",
		Constraint: p2prm.Constraint{
			Codecs:         []p2prm.Codec{p2prm.MPEG4},
			MaxWidth:       640,
			MaxHeight:      480,
			MaxBitrateKbps: 64,
		},
		DeadlineMicros: 2_000_000,
		DurationSec:    10,
		ChunkSec:       1,
	}
}

// recordShortRun records a single-runtime three-peer run and returns its
// directory.
func recordShortRun(t *testing.T, cfg p2prm.Config) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "rec")
	l, err := p2prm.NewLive(cfg, p2prm.LiveOptions{Seed: 7, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mk := func() p2prm.PeerInfo {
		return p2prm.PeerInfo{SpeedWU: 50, BandwidthKbps: 10000, UptimeSec: 7200}
	}
	f := l.StartFounder(mk())
	p1 := l.StartPeer(mk(), f)
	waitFor(t, 10*time.Second, func() bool { return l.Joined(f) && l.Joined(p1) })
	// Let a few heartbeat/profile timers fire so the log carries timer
	// events (their deadlines are what a wrong-config replay trips on).
	time.Sleep(200 * time.Millisecond)
	l.Close()
	return dir
}

// TestReplayCorruptedLogReportsNotPanics flips a byte mid-log and checks
// the replay surfaces a typed corruption report — frame index and byte
// offset — instead of panicking or silently succeeding.
func TestReplayCorruptedLogReportsNotPanics(t *testing.T) {
	cfg := chaosConfig()
	dir := recordShortRun(t, cfg)

	path := filepath.Join(dir, replay.EventsFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 200 {
		t.Fatalf("log too small to corrupt meaningfully: %d bytes", len(raw))
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = p2prm.ReplayRecording(cfg, dir)
	var ce *replay.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupted log: got %v, want a CorruptError", err)
	}
	if ce.Index <= 0 || ce.Offset <= 0 {
		t.Fatalf("corruption report missing location: %+v", ce)
	}
}

// TestReplayWrongConfigDiverges replays a recording under a different
// protocol configuration: the first re-registered timer deadline no
// longer matches the log, and the divergence names the node, logical
// time and event index.
func TestReplayWrongConfigDiverges(t *testing.T) {
	cfg := chaosConfig()
	dir := recordShortRun(t, cfg)

	bad := cfg
	bad.HeartbeatPeriod = cfg.HeartbeatPeriod * 2
	res, _, err := p2prm.ReplayRecording(bad, dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Diverged == nil {
		t.Fatal("replay under a different config did not diverge")
	}
	if res.Diverged.Index < 0 || res.Diverged.Time < 0 {
		t.Fatalf("divergence lacks a location: %+v", res.Diverged)
	}
	t.Logf("divergence (expected): %s", res.Diverged)
}
