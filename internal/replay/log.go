// Package replay is the flight-recorder subsystem for the live runtime:
// it records every nondeterministic input a live node observes — message
// deliveries (with gob payload bytes), timer firings with their logical
// deadlines, node start/stop/kill, named calls, fault-injector decisions
// and per-node RNG seeds — to a length-prefixed, CRC-framed binary event
// log, and re-executes a recorded log on the deterministic sim scheduler
// (internal/sim), detecting the first point where the replayed run
// diverges from the recording.
//
// The package implements live.Recorder structurally; it depends only on
// env/rng/sim/trace/proto, so internal/live never imports it and no
// cycle exists. See DESIGN.md §7 for the format and divergence
// semantics.
package replay

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/env"
	"repro/internal/proto"
)

// Kind enumerates recorded event types.
type Kind uint8

const (
	// KStart: a node came up. Node, Time; Aux = rng seed; Data = opaque
	// actor-reconstruction blob (ReplayIniter), may be empty.
	KStart Kind = iota + 1
	// KDeliver: a message was dispatched to a node's actor. Node, Peer
	// (sender), Time; Name = concrete Go type. Aux selects the payload
	// encoding of Data: 0 = a segment of the log's shared gob message
	// stream, 1 = the payload was not gob-encodable (Data empty), 2 = a
	// standalone compact blob in the internal/proto wire codec (core
	// protocol messages; several times smaller than gob); see
	// Log.DecodeMessages.
	KDeliver
	// KTimer: a timer callback fired. Node, Time; Aux = per-node timer
	// ID; Aux2 = logical deadline micros.
	KTimer
	// KCall: a named external operation ran on the node's loop. Node,
	// Time; Name = operation name; Data = opaque argument blob.
	KCall
	// KSend: a node sent a message (observable output, compared during
	// replay, never re-injected). Node, Peer (destination), Time;
	// Name = concrete Go type.
	KSend
	// KStop: a node shut down gracefully. Node, Time; Aux = final state
	// digest, Aux2 = 1 when Aux is meaningful.
	KStop
	// KKill: a node was killed (no Stop hook). Fields as KStop.
	KKill
	// KFault: the fault injector impaired a message (informational).
	// Node = from, Peer = to, Time; Aux2 = delay micros; Aux bit 0 =
	// drop, bit 1 = dup.
	KFault
	// KDigest: a periodic state-digest checkpoint. Node, Time; Aux =
	// digest.
	KDigest
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KStart:
		return "start"
	case KDeliver:
		return "deliver"
	case KTimer:
		return "timer"
	case KCall:
		return "call"
	case KSend:
		return "send"
	case KStop:
		return "stop"
	case KKill:
		return "kill"
	case KFault:
		return "fault"
	case KDigest:
		return "digest"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded nondeterministic input (or observable output).
// Field meaning depends on Kind; see the Kind constants.
type Event struct {
	Kind Kind
	Node int64 // owning node ID
	Peer int64 // counterpart node ID (sender for deliver, dest for send)
	Time int64 // latched node clock, micros since runtime start
	Aux  uint64
	Aux2 int64
	Name string
	Data []byte

	// Msg is the decoded KDeliver payload, populated by DecodeMessages
	// after the frames are read; it is never serialized into the log.
	Msg env.Message
}

// Log framing: the file opens with an 8-byte magic, then one frame per
// event: u32 payload length, u32 CRC-32 (IEEE) of the payload, payload.
// KDeliver message payloads are segments of one gob stream spanning the
// whole log in frame order — type descriptors are transmitted once per
// message type, not once per event, which is what keeps the recorder's
// writer goroutine ahead of the message rate. The price is that message
// decoding is sequential from the start of the log (DecodeMessages); a
// truncated final frame (crash mid-write) is tolerated and surfaced via
// Log.Truncated, while a CRC mismatch is corruption and fails the read
// with the frame index.
const (
	logMagic = "P2PRLOG2"
	// maxEventFrame bounds one frame so a corrupted length field cannot
	// ask for gigabytes; comfortably above the transport's 8 MiB frame
	// cap plus event overhead.
	maxEventFrame = 16 << 20
)

// EventsFile is the event-log filename inside a recording directory.
const EventsFile = "events.bin"

// MetaFile is the recording-metadata filename inside a recording
// directory.
const MetaFile = "meta.json"

// TraceFile is the recorded trace snapshot filename inside a recording
// directory.
const TraceFile = "trace.jsonl"

// ReplayTraceFile is where the replayer writes the re-executed trace.
const ReplayTraceFile = "replay_trace.jsonl"

// marshalEvent encodes e into buf (reused across calls) and returns the
// payload bytes.
func marshalEvent(e *Event, buf []byte) []byte {
	n := 1 + 5*8 + 2 + len(e.Name) + 4 + len(e.Data)
	if cap(buf) < n {
		buf = make([]byte, 0, n+64)
	}
	b := buf[:0]
	b = append(b, byte(e.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Node))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Peer))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Time))
	b = binary.LittleEndian.AppendUint64(b, e.Aux)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Aux2))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Name)))
	b = append(b, e.Name...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Data)))
	b = append(b, e.Data...)
	return b
}

// unmarshalEvent decodes one payload produced by marshalEvent.
func unmarshalEvent(b []byte) (Event, error) {
	var e Event
	if len(b) < 1+5*8+2+4 {
		return e, fmt.Errorf("event payload too short: %d bytes", len(b))
	}
	e.Kind = Kind(b[0])
	b = b[1:]
	e.Node = int64(binary.LittleEndian.Uint64(b[0:]))
	e.Peer = int64(binary.LittleEndian.Uint64(b[8:]))
	e.Time = int64(binary.LittleEndian.Uint64(b[16:]))
	e.Aux = binary.LittleEndian.Uint64(b[24:])
	e.Aux2 = int64(binary.LittleEndian.Uint64(b[32:]))
	b = b[40:]
	nameLen := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < nameLen+4 {
		return e, fmt.Errorf("event name overruns payload (%d of %d bytes)", nameLen, len(b))
	}
	e.Name = string(b[:nameLen])
	b = b[nameLen:]
	dataLen := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != dataLen {
		return e, fmt.Errorf("event data length %d does not match remaining %d bytes", dataLen, len(b))
	}
	if dataLen > 0 {
		e.Data = append([]byte(nil), b...)
	}
	return e, nil
}

// CorruptError reports a frame whose CRC or structure is invalid. The
// reader never panics on bad input; it names the frame index and byte
// offset so the divergence point of a damaged log is still actionable.
type CorruptError struct {
	Index  int   // frame index (= event index) of the bad frame
	Offset int64 // byte offset of the frame header
	Err    error
}

func (c *CorruptError) Error() string {
	return fmt.Sprintf("replay: corrupt log frame %d at byte %d: %v", c.Index, c.Offset, c.Err)
}

func (c *CorruptError) Unwrap() error { return c.Err }

// Log is a fully parsed recording.
type Log struct {
	Events []Event
	// Truncated reports that the file ended mid-frame — an interrupted
	// recording whose complete prefix is still replayable.
	Truncated bool
}

// ReadLog parses an event log from r.
func ReadLog(r io.Reader) (*Log, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("replay: reading log magic: %w", err)
	}
	if string(magic) != logMagic {
		return nil, fmt.Errorf("replay: bad log magic %q", magic)
	}
	lg := &Log{}
	var header [8]byte
	offset := int64(len(logMagic))
	for i := 0; ; i++ {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			if err == io.EOF {
				return lg, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				lg.Truncated = true
				return lg, nil
			}
			return nil, err
		}
		length := binary.LittleEndian.Uint32(header[0:])
		sum := binary.LittleEndian.Uint32(header[4:])
		if length > maxEventFrame {
			return nil, &CorruptError{Index: i, Offset: offset,
				Err: fmt.Errorf("frame length %d exceeds limit %d", length, maxEventFrame)}
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || err == io.EOF {
				lg.Truncated = true
				return lg, nil
			}
			return nil, err
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, &CorruptError{Index: i, Offset: offset,
				Err: fmt.Errorf("CRC mismatch: frame says %#x, payload hashes to %#x", sum, got)}
		}
		ev, err := unmarshalEvent(payload)
		if err != nil {
			return nil, &CorruptError{Index: i, Offset: offset, Err: err}
		}
		lg.Events = append(lg.Events, ev)
		offset += 8 + int64(length)
	}
}

// segmentReader feeds the concatenated KDeliver payload segments to a
// gob decoder in frame order, reconstructing the writer's message stream.
type segmentReader struct {
	segs [][]byte
	pos  int
}

func (r *segmentReader) Read(p []byte) (int, error) {
	for len(r.segs) > 0 && r.pos == len(r.segs[0]) {
		r.segs = r.segs[1:]
		r.pos = 0
	}
	if len(r.segs) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.segs[0][r.pos:])
	r.pos += n
	return n, nil
}

// DecodeMessages decodes every KDeliver payload into Event.Msg.
// Compact payloads (Aux = 2) are standalone and decode independently
// via the internal/proto wire codec. Gob payloads (Aux = 0) form one
// gob stream across the log, so they must be decoded front to back —
// callers must have gob-registered the message types first
// (proto.RegisterMessages for the protocol set). Events whose payload
// was unencodable at record time (Aux = 1) are skipped; the replayer
// reports those as a divergence when they are reached.
func (lg *Log) DecodeMessages() error {
	sr := &segmentReader{}
	for i := range lg.Events {
		e := &lg.Events[i]
		if e.Kind == KDeliver && e.Aux == 0 {
			sr.segs = append(sr.segs, e.Data)
		}
	}
	dec := gob.NewDecoder(sr)
	for i := range lg.Events {
		e := &lg.Events[i]
		if e.Kind != KDeliver || e.Aux == 1 {
			continue
		}
		if e.Aux == 2 {
			m, err := proto.DecodeMessage(e.Data)
			if err != nil {
				return fmt.Errorf("replay: decoding compact message for event %d (%s): %w", i, e.Name, err)
			}
			e.Msg = m
			continue
		}
		var box msgBox
		if err := dec.Decode(&box); err != nil {
			return fmt.Errorf("replay: decoding message for event %d (%s): %w", i, e.Name, err)
		}
		e.Msg = box.M
	}
	return nil
}

// ReadLogFile parses the event log at path.
func ReadLogFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLog(f)
}

// ReadLogDir parses the event log inside a recording directory.
func ReadLogDir(dir string) (*Log, error) {
	return ReadLogFile(dir + "/" + EventsFile)
}

// writeFrame appends one CRC frame for payload to w.
func writeFrame(w io.Writer, payload []byte) error {
	var header [8]byte
	if len(payload) > maxEventFrame {
		return fmt.Errorf("replay: event frame %d bytes exceeds limit %d", len(payload), maxEventFrame)
	}
	if len(payload) > math.MaxUint32 {
		return fmt.Errorf("replay: event frame %d bytes overflows length field", len(payload))
	}
	binary.LittleEndian.PutUint32(header[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}
