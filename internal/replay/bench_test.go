package replay_test

// BenchmarkDeliver measures the flight recorder's cost on the message
// hot path in two regimes:
//
//   - local: same-runtime delivery (mailbox → dispatch) at saturation,
//     millions of messages per second. This isolates the hot-path
//     handoff cost — one struct copy into the writer queue — and shows
//     the recorder's load-shedding behaviour: the single writer
//     goroutine gob-encodes out of band and drops (counted, surfaced in
//     meta.json and live_replay_dropped_total) once its queue fills,
//     rather than ever stalling delivery.
//
//   - tcp: the deployed hot path — two runtimes joined over loopback
//     TCP, a windowed request/echo stream through the real wire codec.
//     This is the path every message takes between p2pnode daemons, the
//     rate regime recording is built for; the acceptance bound
//     (recording within 10% of not recording, zero events dropped) is
//     asserted here.
//
// Run with: go test ./internal/replay/ -run xxx -bench BenchmarkDeliver

import (
	"encoding/gob"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/env"
	"repro/internal/live"
	"repro/internal/proto"
	"repro/internal/replay"
)

type benchMsg struct{ N int }

func init() {
	gob.Register(benchMsg{})
	proto.RegisterMessages()
}

// sinkActor counts deliveries and signals done at a target count.
type sinkActor struct {
	received atomic.Int64
	target   int64
	done     chan struct{}
}

func (a *sinkActor) Init(ctx env.Context) {}
func (a *sinkActor) Stop()                {}
func (a *sinkActor) StateDigest() uint64  { return uint64(a.received.Load()) }
func (a *sinkActor) Receive(from env.NodeID, m env.Message) {
	if a.received.Add(1) == a.target {
		close(a.done)
	}
}

// injectWindow keeps the injector at most this far ahead of dispatch so
// the mailbox (depth live.MailboxDepth) never overflows into drops,
// which would make the two variants measure different work.
const injectWindow = live.MailboxDepth / 2

// newBenchRecorder attaches a fresh recorder to rt, before nodes exist.
func newBenchRecorder(b *testing.B, rt *live.Runtime) *replay.Recorder {
	b.Helper()
	rec, err := replay.NewRecorder(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	rt.SetRecorder(rec, 0)
	return rec
}

// closeBenchRecorder detaches and flushes rec, reporting its shed rate.
func closeBenchRecorder(b *testing.B, rt *live.Runtime, rec *replay.Recorder, label string) {
	b.Helper()
	events, _, dropped := rec.Counters()
	b.ReportMetric(float64(dropped)/float64(b.N), "recdrops/op")
	if events == 0 {
		b.Fatalf("%s: recorder saw no events", label)
	}
	rt.SetRecorder(nil, 0)
	if err := rec.Close(); err != nil {
		b.Fatal(err)
	}
}

func benchLocal(b *testing.B, recording bool) {
	rt := live.NewRuntime(1)
	defer rt.Shutdown()

	var rec *replay.Recorder
	if recording {
		rec = newBenchRecorder(b, rt)
	}
	sink := &sinkActor{target: int64(b.N), done: make(chan struct{})}
	dst := rt.AddNode(sink)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for int64(i)-sink.received.Load() >= injectWindow {
			runtime.Gosched()
		}
		rt.Inject(dst, dst, benchMsg{N: i})
	}
	<-sink.done
	b.StopTimer()

	if d := rt.Dropped(); d > 0 {
		b.Fatalf("mailbox dropped %d messages; injection window too wide", d)
	}
	if rec != nil {
		closeBenchRecorder(b, rt, rec, "local")
	}
}

// echoWindow bounds in-flight requests on the tcp benchmark; far below
// both the mailbox depth and the recorder queue, so nothing sheds.
const echoWindow = 64

// pumpActor drives the tcp benchmark from inside node 0's loop: it
// keeps echoWindow requests outstanding and counts echoes until target.
// The wire payloads are real protocol heartbeats so the benchmark
// exercises the deployed codec path (compact v2 encoding), not the
// gob fallback reserved for foreign types.
type pumpActor struct {
	ctx    env.Context
	target int
	sent   int
	acked  int
	done   chan struct{}
}

func (a *pumpActor) Init(ctx env.Context) { a.ctx = ctx }
func (a *pumpActor) Stop()                {}
func (a *pumpActor) Receive(from env.NodeID, m env.Message) {
	switch m.(type) {
	case benchMsg: // kick: open the window
		for a.sent < a.target && a.sent < echoWindow {
			a.ctx.Send(1, proto.HeartbeatReq{Seq: uint64(a.sent)})
			a.sent++
		}
	case proto.HeartbeatAck:
		a.acked++
		if a.sent < a.target {
			a.ctx.Send(1, proto.HeartbeatReq{Seq: uint64(a.sent)})
			a.sent++
		}
		if a.acked == a.target {
			close(a.done)
		}
	}
}

// echoActor answers every request with an ack.
type echoActor struct{ ctx env.Context }

func (a *echoActor) Init(ctx env.Context) { a.ctx = ctx }
func (a *echoActor) Stop()                {}
func (a *echoActor) Receive(from env.NodeID, m env.Message) {
	if p, ok := m.(proto.HeartbeatReq); ok {
		a.ctx.Send(0, proto.HeartbeatAck{Seq: p.Seq})
	}
}

func benchTCP(b *testing.B, recording bool) {
	rtA := live.NewRuntime(2)
	rtB := live.NewRuntime(3)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	var recA, recB *replay.Recorder
	if recording {
		recA = newBenchRecorder(b, rtA)
		recB = newBenchRecorder(b, rtB)
	}

	trA := live.NewTCPTransport(rtA)
	trB := live.NewTCPTransport(rtB)
	defer trA.Close()
	defer trB.Close()
	addrA, err := trA.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	addrB, err := trB.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	trA.Register(1, addrB)
	trB.Register(0, addrA)

	pump := &pumpActor{target: b.N, done: make(chan struct{})}
	rtA.AddNodeWithID(0, pump)
	rtB.AddNodeWithID(1, &echoActor{})

	b.ReportAllocs()
	b.ResetTimer()
	rtA.Inject(0, 0, benchMsg{N: -1}) // kick
	<-pump.done
	b.StopTimer()

	if d := rtA.Dropped() + rtB.Dropped(); d > 0 {
		b.Fatalf("mailboxes dropped %d messages", d)
	}
	if recording {
		for _, rec := range []*replay.Recorder{recA, recB} {
			if _, _, dropped := rec.Counters(); dropped > 0 {
				b.Fatalf("recorder shed %d events at deployed message rates", dropped)
			}
		}
		closeBenchRecorder(b, rtA, recA, "tcp A")
		closeBenchRecorder(b, rtB, recB, "tcp B")
	}
}

func BenchmarkDeliver(b *testing.B) {
	b.Run("local/recording=off", func(b *testing.B) { benchLocal(b, false) })
	b.Run("local/recording=on", func(b *testing.B) { benchLocal(b, true) })
	b.Run("tcp/recording=off", func(b *testing.B) { benchTCP(b, false) })
	b.Run("tcp/recording=on", func(b *testing.B) { benchTCP(b, true) })
}
