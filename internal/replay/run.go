package replay

import (
	"fmt"
	"sort"

	"repro/internal/env"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Options configures a replay run.
type Options struct {
	// Factory rebuilds the actor for a node from its recorded KStart
	// blob (the bytes the live actor's ReplayInit returned, nil when the
	// actor implemented none). Required.
	Factory func(node env.NodeID, init []byte) (env.Actor, error)
	// Call re-executes a recorded named call (see the live runtime's
	// CallNamed) against the rebuilt actor. Optional: with no handler,
	// any KCall event in the log is reported as a divergence.
	Call func(a env.Actor, name string, arg []byte) error
	// Logf receives actor diagnostics (ctx.Logf). Optional.
	Logf func(format string, args ...any)
}

// Divergence pinpoints the first event where the replayed run stopped
// matching the recording.
type Divergence struct {
	Node   env.NodeID `json:"node"`
	Time   sim.Time   `json:"time_micros"`
	Index  int        `json:"event_index"` // index into the log's event list
	Kind   string     `json:"kind"`
	Detail string     `json:"detail"`
}

func (d *Divergence) String() string {
	return fmt.Sprintf("divergence at node %d, t=%v, event %d (%s): %s",
		d.Node, d.Time, d.Index, d.Kind, d.Detail)
}

// Result summarizes a replay run.
type Result struct {
	Events  int // log events executed or compared
	Nodes   int // nodes reconstructed from KStart events
	Sends   int // outbound sends compared against the recording
	Digests int // state-digest checkpoints compared
	Faults  int // informational fault events in the log
	// Truncated mirrors Log.Truncated: the recording ended mid-frame and
	// only its complete prefix was replayed.
	Truncated bool
	// Diverged is nil when the replay matched the recording end to end.
	Diverged *Divergence
	// FinalDigests holds the last observed state digest per node, for
	// callers that want to assert on protocol state beyond "no
	// divergence".
	FinalDigests map[env.NodeID]uint64
}

// replayer re-executes a recorded log on a deterministic sim engine.
type replayer struct {
	eng   *sim.Engine
	opts  Options
	res   *Result
	nodes map[env.NodeID]*replayNode
	// decodeErr is the message-stream decode failure, if any; surfaced
	// as a divergence at the first delivery it left undecoded.
	decodeErr error
}

// sendRec is one recorded outbound send awaiting comparison.
type sendRec struct {
	to    env.NodeID
	typ   string
	index int // log event index, for divergence reports
}

// replayTimer is a timer the replayed actor registered via After.
type replayTimer struct {
	fn        func()
	deadline  sim.Time
	cancelled bool
	fired     bool
}

// replayNode is one reconstructed node; it implements env.Context for
// its actor exactly like a live or netsim node does.
type replayNode struct {
	rp       *replayer
	id       env.NodeID
	actor    env.Actor
	r        *rng.Rand
	timerSeq uint64
	timers   map[uint64]*replayTimer
	expected []sendRec // recorded sends, consumed in order
	sendIdx  int
	curIndex int // log index of the input event currently executing
	started  bool
	stopping bool // inside the Stop hook: sends are suppressed, like live
	stopped  bool
}

// Now implements env.Clock with the engine's virtual clock; every input
// event is scheduled at its recorded latched time, so handlers observe
// the same timestamps they saw live.
func (n *replayNode) Now() sim.Time { return n.rp.eng.Now() }

// After implements env.Clock. Timers are not scheduled on the engine:
// the recording says exactly which timers fired and when (KTimer events
// carry the per-node timer ID), so After only registers the callback
// under the next monotone ID — the same assignment order the live
// runtime used, which is what makes the IDs line up.
func (n *replayNode) After(d sim.Time, fn func()) env.Cancel {
	if d < 0 {
		d = 0
	}
	n.timerSeq++
	t := &replayTimer{fn: fn, deadline: n.rp.eng.Now() + d}
	n.timers[n.timerSeq] = t
	id := n.timerSeq
	return func() bool {
		if t.cancelled || t.fired {
			return false
		}
		t.cancelled = true
		delete(n.timers, id)
		return true
	}
}

// Self implements env.Context.
func (n *replayNode) Self() env.NodeID { return n.id }

// Rand implements env.Context, resuming the node's recorded stream.
func (n *replayNode) Rand() *rng.Rand { return n.r }

// Logf implements env.Context.
func (n *replayNode) Logf(format string, args ...any) {
	if n.rp.opts.Logf != nil {
		n.rp.opts.Logf("[replay n%d %v] "+format,
			append([]any{int(n.id), n.rp.eng.Now()}, args...)...)
	}
}

// Send implements env.Context by comparing the send against the
// recording instead of routing it: deliveries come from the log, so
// replayed sends are observable outputs only. Comparison is by
// (destination, concrete type): gob encodes maps in nondeterministic
// key order, so payload bytes are not a stable identity.
func (n *replayNode) Send(to env.NodeID, m env.Message) {
	rp := n.rp
	if n.stopping {
		// The live runtime flips the node's stopped flag before running
		// the Stop hook, so Stop-time sends never leave the node (or reach
		// the recorder). Mirror that: don't compare, don't count.
		return
	}
	if rp.res.Diverged != nil {
		return
	}
	rp.res.Sends++
	if n.sendIdx >= len(n.expected) {
		rp.diverge(n.id, n.curIndex, "extra-send",
			fmt.Sprintf("replay sent %s to node %d but the recording has no further sends from node %d",
				MessageType(m), to, n.id))
		return
	}
	exp := n.expected[n.sendIdx]
	n.sendIdx++
	if exp.to != to || exp.typ != MessageType(m) {
		rp.diverge(n.id, exp.index, "send-mismatch",
			fmt.Sprintf("replay sent %s to node %d where the recording has %s to node %d",
				MessageType(m), to, exp.typ, exp.to))
	}
}

// digester mirrors the live runtime's Digester without importing it.
type digester interface{ StateDigest() uint64 }

// diverge records the first divergence and halts the engine. Later
// mismatches are suppressed: everything after the first divergence is
// expected to cascade.
// sortedNodeIDs returns the replayer's node IDs in ascending order.
func (rp *replayer) sortedNodeIDs() []env.NodeID {
	ids := make([]env.NodeID, 0, len(rp.nodes))
	for id := range rp.nodes { //lint:maporder commutative — ids are sorted below before any use
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (rp *replayer) diverge(node env.NodeID, index int, kind, detail string) {
	if rp.res.Diverged != nil {
		return
	}
	rp.res.Diverged = &Divergence{
		Node: node, Time: rp.eng.Now(), Index: index, Kind: kind, Detail: detail,
	}
	rp.eng.Halt()
}

// node returns the replayNode for id, or reports a divergence when the
// log references a node that never started (or already stopped).
func (rp *replayer) node(id env.NodeID, index int, kind Kind) *replayNode {
	n := rp.nodes[id]
	if n == nil || !n.started {
		rp.diverge(id, index, "unknown-node",
			fmt.Sprintf("log has a %v event for node %d before any start event", kind, id))
		return nil
	}
	if n.stopped {
		rp.diverge(id, index, "stopped-node",
			fmt.Sprintf("log has a %v event for node %d after its stop/kill", kind, id))
		return nil
	}
	return n
}

// checkDigest compares a recorded digest checkpoint with the rebuilt
// actor's current state hash.
func (rp *replayer) checkDigest(n *replayNode, index int, want uint64, when string) {
	d, ok := n.actor.(digester)
	if !ok {
		rp.diverge(n.id, index, "digest-unavailable",
			fmt.Sprintf("recording has a %s digest but the rebuilt actor (%T) has no StateDigest", when, n.actor))
		return
	}
	got := d.StateDigest()
	rp.res.Digests++
	rp.res.FinalDigests[n.id] = got
	if got != want {
		rp.diverge(n.id, index, "digest-mismatch",
			fmt.Sprintf("%s state digest %#x, recording says %#x", when, got, want))
	}
}

// exec runs one log event. idx is the event's index in the log.
func (rp *replayer) exec(idx int, e *Event) {
	if rp.res.Diverged != nil {
		return
	}
	rp.res.Events++
	id := env.NodeID(e.Node)
	switch e.Kind {
	case KStart:
		if prev := rp.nodes[id]; prev != nil && prev.started && !prev.stopped {
			rp.diverge(id, idx, "duplicate-start",
				fmt.Sprintf("node %d started twice without an intervening stop", id))
			return
		}
		actor, err := rp.opts.Factory(id, e.Data)
		if err != nil {
			rp.diverge(id, idx, "factory",
				fmt.Sprintf("rebuilding actor for node %d: %v", id, err))
			return
		}
		n := rp.nodes[id]
		if n == nil {
			n = &replayNode{rp: rp, id: id}
			rp.nodes[id] = n
		}
		n.actor = actor
		n.r = rng.New(e.Aux)
		n.timers = make(map[uint64]*replayTimer)
		n.timerSeq = 0
		n.started = true
		n.stopped = false
		n.curIndex = idx
		rp.res.Nodes++
		actor.Init(n)

	case KDeliver:
		n := rp.node(id, idx, e.Kind)
		if n == nil {
			return
		}
		if e.Aux == 1 {
			rp.diverge(id, idx, "unencodable-payload",
				fmt.Sprintf("recorded delivery of %s was not gob-encodable; register the type with proto.RegisterMessages", e.Name))
			return
		}
		if e.Msg == nil {
			rp.diverge(id, idx, "decode",
				fmt.Sprintf("decoding recorded %s payload: %v", e.Name, rp.decodeErr))
			return
		}
		n.curIndex = idx
		n.actor.Receive(env.NodeID(e.Peer), e.Msg)

	case KTimer:
		n := rp.node(id, idx, e.Kind)
		if n == nil {
			return
		}
		t := n.timers[e.Aux]
		if t == nil {
			rp.diverge(id, idx, "timer-missing",
				fmt.Sprintf("recording fired timer %d (deadline %dµs) but replay never armed it or already cancelled it", e.Aux, e.Aux2))
			return
		}
		if int64(t.deadline) != e.Aux2 {
			rp.diverge(id, idx, "timer-deadline",
				fmt.Sprintf("timer %d armed for %v in replay but %dµs in the recording", e.Aux, t.deadline, e.Aux2))
			return
		}
		t.fired = true
		delete(n.timers, e.Aux)
		n.curIndex = idx
		t.fn()

	case KCall:
		n := rp.node(id, idx, e.Kind)
		if n == nil {
			return
		}
		if rp.opts.Call == nil {
			rp.diverge(id, idx, "call-unhandled",
				fmt.Sprintf("recording has call %q but Options.Call is nil", e.Name))
			return
		}
		n.curIndex = idx
		if err := rp.opts.Call(n.actor, e.Name, e.Data); err != nil {
			rp.diverge(id, idx, "call",
				fmt.Sprintf("re-executing call %q: %v", e.Name, err))
		}

	case KStop, KKill:
		n := rp.node(id, idx, e.Kind)
		if n == nil {
			return
		}
		n.curIndex = idx
		if e.Kind == KStop {
			n.stopping = true
			n.actor.Stop()
		}
		if rp.res.Diverged == nil && n.sendIdx < len(n.expected) {
			exp := n.expected[n.sendIdx]
			rp.diverge(id, exp.index, "missing-send",
				fmt.Sprintf("recording has %d more sends from node %d (next: %s to node %d) that replay never produced",
					len(n.expected)-n.sendIdx, id, exp.typ, exp.to))
			return
		}
		if e.Aux2 == 1 {
			rp.checkDigest(n, idx, e.Aux, e.Kind.String())
		}
		n.stopped = true

	case KDigest:
		n := rp.node(id, idx, e.Kind)
		if n == nil {
			return
		}
		rp.checkDigest(n, idx, e.Aux, "checkpoint")

	case KFault:
		rp.res.Faults++ // informational: deliveries were recorded post-impairment

	case KSend:
		// Consumed up front into per-node expected queues; nothing to
		// execute at fire time.

	default:
		rp.diverge(id, idx, "unknown-kind",
			fmt.Sprintf("log contains unknown event kind %d", uint8(e.Kind)))
	}
}

// Replay re-executes lg on a fresh deterministic engine and reports the
// first divergence, if any. It never panics on a malformed log: bad
// events surface as divergences, and corrupted frames were already
// rejected by ReadLog.
func Replay(lg *Log, opts Options) (*Result, error) {
	if opts.Factory == nil {
		return nil, fmt.Errorf("replay: Options.Factory is required")
	}
	// Message payloads share one gob stream across the log; decode them
	// up front, in file order. A failure (tampered bytes that passed the
	// CRC, missing type registration, version skew) poisons the stream
	// from that point on; the replay still runs to the first undecoded
	// delivery and reports it as the divergence point.
	rp := &replayer{
		eng:       sim.New(),
		opts:      opts,
		res:       &Result{Truncated: lg.Truncated, FinalDigests: make(map[env.NodeID]uint64)},
		nodes:     make(map[env.NodeID]*replayNode),
		decodeErr: lg.DecodeMessages(),
	}

	// Pre-pass: recorded sends become per-node expectation queues (file
	// order is per-node emission order) rather than engine events — the
	// replayed actor produces them mid-handler, before a same-timestamp
	// engine event could fire.
	for i := range lg.Events {
		e := &lg.Events[i]
		if e.Kind != KSend {
			continue
		}
		id := env.NodeID(e.Node)
		n := rp.nodes[id]
		if n == nil {
			n = &replayNode{rp: rp, id: id}
			rp.nodes[id] = n
		}
		n.expected = append(n.expected, sendRec{to: env.NodeID(e.Peer), typ: e.Name, index: i})
	}

	// Schedule every input event at its recorded time; ties fire in file
	// order (the engine breaks equal timestamps by scheduling sequence),
	// reproducing each node's recorded dispatch order exactly.
	for i := range lg.Events {
		e := &lg.Events[i]
		if e.Kind == KSend {
			rp.res.Events++ // compared via expectation queues
			continue
		}
		idx, ev := i, e
		at := sim.Time(ev.Time)
		if at < 0 {
			at = 0
		}
		rp.eng.At(at, func() { rp.exec(idx, ev) })
	}

	rp.eng.Run()

	// Nodes alive at end of recording: every recorded send must have
	// been reproduced. The scan stops at the first violation, so it must
	// visit nodes in ID order — otherwise which node gets reported (and
	// therefore the result) would follow map iteration order.
	if rp.res.Diverged == nil {
		for _, id := range rp.sortedNodeIDs() {
			n := rp.nodes[id]
			if !n.started || n.stopped || n.sendIdx >= len(n.expected) {
				continue
			}
			exp := n.expected[n.sendIdx]
			rp.diverge(n.id, exp.index, "missing-send",
				fmt.Sprintf("recording has %d more sends from node %d (next: %s to node %d) that replay never produced",
					len(n.expected)-n.sendIdx, n.id, exp.typ, exp.to))
			break
		}
	}

	// Final digests for nodes still running, for callers asserting on
	// end-state equality. StateDigest is a call into actor code; keep the
	// visit order deterministic.
	for _, id := range rp.sortedNodeIDs() {
		n := rp.nodes[id]
		if n.started && !n.stopped {
			if d, ok := n.actor.(digester); ok {
				rp.res.FinalDigests[n.id] = d.StateDigest()
			}
		}
	}
	return rp.res, nil
}

// ReplayDir reads the event log in a recording directory and replays it.
func ReplayDir(dir string, opts Options) (*Result, error) {
	lg, err := ReadLogDir(dir)
	if err != nil {
		return nil, err
	}
	return Replay(lg, opts)
}
