package replay

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/env"
	"repro/internal/proto"
)

// msgBox wraps a message payload so gob can encode the env.Message
// interface value behind a concrete struct field. Message types must be
// gob-registered (proto.RegisterMessages does this for the protocol set).
type msgBox struct {
	M env.Message
}

// MessageType names a message's concrete Go type; sends are compared by
// (destination, type name) during replay because gob encodes maps in
// nondeterministic key order, making payload bytes unstable run-to-run.
func MessageType(m env.Message) string { return fmt.Sprintf("%T", m) }

// recorderQueueDepth bounds the in-flight event buffer between the node
// loops and the single writer goroutine. When the writer cannot keep up
// the recorder drops events (counted, surfaced in Meta and metrics)
// rather than stall the message hot path.
const recorderQueueDepth = 8192

// Meta is the recording metadata written alongside the event log.
type Meta struct {
	Format  string `json:"format"`
	Events  uint64 `json:"events"`
	Bytes   uint64 `json:"bytes"`
	Dropped uint64 `json:"dropped"`
	// TraceSeed is the seed the recorded run's tracer derived span IDs
	// from (trace.DeriveSpanID); the replayer seeds its tracer with the
	// same value so the replayed trace is byte-comparable. Zero for
	// recordings made before trace seeding existed — which is also the
	// unseeded tracer's seed, so the comparison still holds.
	TraceSeed uint64 `json:"trace_seed,omitempty"`
}

// ReadMeta parses the recording metadata in dir. A missing meta.json
// (crash before Close, or a foreign recording) returns the zero Meta
// without error — every field degrades gracefully.
func ReadMeta(dir string) (Meta, error) {
	var m Meta
	b, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		if os.IsNotExist(err) {
			return m, nil
		}
		return m, err
	}
	return m, json.Unmarshal(b, &m)
}

// Recorder streams events to <dir>/events.bin. It implements the live
// runtime's Recorder interface structurally. Record* methods are safe
// for concurrent use and never block: the hot path only copies the
// event header and the message reference into a bounded channel; all
// encoding (gob payloads, type names, framing, CRC) happens on the
// single writer goroutine. Overflow increments Dropped instead of
// stalling callers.
//
// Handing messages over by reference is safe because messages are
// immutable once sent — the same invariant the runtimes already rely
// on: netsim and deliverLocal hand the identical value to the receiver
// while the sender may retain it, so no actor may mutate a message
// after sending or after receiving it.
type Recorder struct {
	dir string

	ch   chan pending
	done chan struct{}

	events    atomic.Uint64
	bytes     atomic.Uint64
	dropped   atomic.Uint64
	traceSeed atomic.Uint64
	forceGob  atomic.Bool

	mu     sync.Mutex
	closed bool
	werr   error // first writer error, surfaced from Close

	f  *os.File
	bw *bufio.Writer
}

// NewRecorder opens a recording directory (created if needed) and starts
// the writer goroutine. The caller must Close to flush the final frame.
func NewRecorder(dir string) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, EventsFile))
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(logMagic); err != nil {
		f.Close()
		return nil, err
	}
	r := &Recorder{
		dir:  dir,
		ch:   make(chan pending, recorderQueueDepth),
		done: make(chan struct{}),
		f:    f,
		bw:   bw,
	}
	go r.writeLoop()
	return r, nil
}

// Dir returns the recording directory.
func (r *Recorder) Dir() string { return r.dir }

// SetTraceSeed records the tracer seed of the run being recorded; it is
// written into meta.json at Close for the replayer to adopt.
func (r *Recorder) SetTraceSeed(seed uint64) { r.traceSeed.Store(seed) }

// ForceGobPayloads makes the writer skip the compact v2 payload
// encoding and log every delivery through the legacy shared gob stream.
// Replay accepts both, so this exists only to measure the size delta
// between the encodings on identical runs.
func (r *Recorder) ForceGobPayloads() { r.forceGob.Store(true) }

// Counters returns (events enqueued, payload bytes written, events
// dropped) so far. Safe to call concurrently with recording; the byte
// count trails the event count by whatever the writer has queued.
func (r *Recorder) Counters() (events, bytes, dropped uint64) {
	return r.events.Load(), r.bytes.Load(), r.dropped.Load()
}

// pending is one hot-path handoff to the writer goroutine: the event
// header plus the message reference (deliveries and sends) whose
// expensive encoding the writer performs out of band.
type pending struct {
	e    Event
	m    env.Message
	stop bool
}

// writerPoll is how long the writer sleeps when its queue runs dry.
// Sleep-polling instead of blocking on the channel keeps the hot path
// free of goroutine wakeups: an emit into an empty queue would
// otherwise unpark the writer on the delivering node's loop, costing
// about a microsecond per recorded event at low rates. The queue
// absorbs pollInterval × message-rate events while the writer sleeps,
// far under recorderQueueDepth at any rate the writer can sustain.
const writerPoll = 100 * time.Microsecond

// writeLoop is the single writer goroutine; it owns the gob message
// stream (one encoder for the life of the log, so type descriptors are
// paid once per type) and all framing. The channel is never closed —
// Close enqueues a stop sentinel instead, so concurrent emit calls can
// never hit a closed channel; a late emit either lands after the
// sentinel (ignored) or takes the drop path once the queue fills.
func (r *Recorder) writeLoop() {
	defer close(r.done)
	var (
		msgBuf    bytes.Buffer
		enc       = gob.NewEncoder(&msgBuf)
		encBroken bool
		frame     []byte
		v2buf     []byte
	)
	for {
		var p pending
		select {
		case p = <-r.ch:
		default:
			time.Sleep(writerPoll)
			continue
		}
		if p.stop {
			return
		}
		if r.werr != nil {
			continue // drain; error already latched
		}
		e := &p.e
		if p.m != nil {
			e.Name = MessageType(p.m)
			if e.Kind == KDeliver {
				// Core protocol payloads take the compact v2 codec: a
				// standalone, independently decodable Data blob (Aux=2),
				// several times smaller than its gob stream segment.
				// Payloads outside the core set fall back to the shared
				// gob stream (Aux=0); unencodable payloads (unregistered
				// types) degrade to a typed marker (Aux=1) so replay
				// reports the gap instead of silently skipping. A failed
				// Encode may have emitted partial stream bytes, so all
				// later payloads degrade too.
				if b, ok := proto.AppendMessage(v2buf[:0], p.m); ok && !r.forceGob.Load() {
					v2buf = b
					e.Aux = 2
					e.Data = b
				} else if encBroken {
					e.Aux = 1
				} else if err := enc.Encode(msgBox{M: p.m}); err != nil {
					e.Aux = 1
					encBroken = true
				} else {
					e.Data = msgBuf.Bytes()
				}
			}
		}
		frame = marshalEvent(e, frame)
		msgBuf.Reset()
		if err := writeFrame(r.bw, frame); err != nil {
			r.werr = err
		}
		r.bytes.Add(uint64(8 + len(frame)))
	}
}

// emit enqueues one event for the writer. This is the entire hot-path
// cost of recording: a struct copy into the channel buffer and one
// atomic increment.
func (r *Recorder) emit(e Event, m env.Message) {
	select {
	case r.ch <- pending{e: e, m: m}:
		r.events.Add(1)
	default:
		r.dropped.Add(1)
	}
}

// RecordStart implements live.Recorder.
func (r *Recorder) RecordStart(node env.NodeID, nowMicros int64, seed uint64, init []byte) {
	r.emit(Event{Kind: KStart, Node: int64(node), Time: nowMicros, Aux: seed, Data: init}, nil)
}

// RecordDeliver implements live.Recorder. The message is handed to the
// writer by reference (immutable once sent); the writer gob-encodes it
// into the log's shared message stream.
func (r *Recorder) RecordDeliver(node, from env.NodeID, nowMicros int64, m env.Message) {
	r.emit(Event{Kind: KDeliver, Node: int64(node), Peer: int64(from), Time: nowMicros}, m)
}

// RecordTimer implements live.Recorder.
func (r *Recorder) RecordTimer(node env.NodeID, nowMicros int64, timerID uint64, deadlineMicros int64) {
	r.emit(Event{Kind: KTimer, Node: int64(node), Time: nowMicros, Aux: timerID, Aux2: deadlineMicros}, nil)
}

// RecordCall implements live.Recorder.
func (r *Recorder) RecordCall(node env.NodeID, nowMicros int64, name string, arg []byte) {
	r.emit(Event{Kind: KCall, Node: int64(node), Time: nowMicros, Name: name, Data: arg}, nil)
}

// RecordSend implements live.Recorder. Only the (destination, type)
// pair is logged: payload bytes of map-bearing messages are not stable
// under gob, so replay compares sends structurally.
func (r *Recorder) RecordSend(node, to env.NodeID, nowMicros int64, m env.Message) {
	r.emit(Event{Kind: KSend, Node: int64(node), Peer: int64(to), Time: nowMicros}, m)
}

// RecordStop implements live.Recorder.
func (r *Recorder) RecordStop(node env.NodeID, nowMicros int64, digest uint64, hasDigest bool) {
	var has int64
	if hasDigest {
		has = 1
	}
	r.emit(Event{Kind: KStop, Node: int64(node), Time: nowMicros, Aux: digest, Aux2: has}, nil)
}

// RecordKill implements live.Recorder.
func (r *Recorder) RecordKill(node env.NodeID, nowMicros int64, digest uint64, hasDigest bool) {
	var has int64
	if hasDigest {
		has = 1
	}
	r.emit(Event{Kind: KKill, Node: int64(node), Time: nowMicros, Aux: digest, Aux2: has}, nil)
}

// RecordFault implements live.Recorder.
func (r *Recorder) RecordFault(from, to env.NodeID, nowMicros int64, drop, dup bool, delayMicros int64) {
	var aux uint64
	if drop {
		aux |= 1
	}
	if dup {
		aux |= 2
	}
	r.emit(Event{Kind: KFault, Node: int64(from), Peer: int64(to), Time: nowMicros, Aux: aux, Aux2: delayMicros}, nil)
}

// RecordDigest implements live.Recorder.
func (r *Recorder) RecordDigest(node env.NodeID, nowMicros int64, digest uint64) {
	r.emit(Event{Kind: KDigest, Node: int64(node), Time: nowMicros, Aux: digest}, nil)
}

// Close drains the queue, flushes and fsyncs the log, and writes
// meta.json. Detach the recorder from the runtime (SetRecorder(nil))
// before closing; Record* calls after Close are dropped, not a panic.
func (r *Recorder) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()

	r.ch <- pending{stop: true} // sentinel; writer drains everything queued before it
	<-r.done

	err := r.werr
	if ferr := r.bw.Flush(); err == nil {
		err = ferr
	}
	if serr := r.f.Sync(); err == nil {
		err = serr
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}

	meta := Meta{
		Format:    logMagic,
		Events:    r.events.Load(),
		Bytes:     r.bytes.Load(),
		Dropped:   r.dropped.Load(),
		TraceSeed: r.traceSeed.Load(),
	}
	mb, merr := json.MarshalIndent(meta, "", "  ")
	if merr == nil {
		merr = os.WriteFile(filepath.Join(r.dir, MetaFile), append(mb, '\n'), 0o644)
	}
	if err == nil {
		err = merr
	}
	return err
}
