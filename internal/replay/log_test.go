package replay

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/env"
)

// writeSampleLog records one event of every kind and closes the log.
func writeSampleLog(t *testing.T, dir string) *Recorder {
	t.Helper()
	rec, err := NewRecorder(dir)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	rec.RecordStart(1, 0, 42, []byte("init-blob"))
	rec.RecordDeliver(1, 2, 500, pingMsg{N: 7})
	rec.RecordSend(1, 2, 500, pongMsg{N: 8})
	rec.RecordTimer(1, 1000, 1, 1000)
	rec.RecordCall(1, 1200, "submit", []byte("arg"))
	rec.RecordFault(2, 1, 1300, true, false, 250)
	rec.RecordDigest(1, 1400, 0xdead)
	rec.RecordKill(2, 1500, 0, false)
	rec.RecordStop(1, 2000, 0xbeef, true)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return rec
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := writeSampleLog(t, dir)

	events, bytes_, dropped := rec.Counters()
	if events != 9 || dropped != 0 || bytes_ == 0 {
		t.Fatalf("counters = (%d, %d, %d), want (9, >0, 0)", events, bytes_, dropped)
	}

	lg, err := ReadLogDir(dir)
	if err != nil {
		t.Fatalf("ReadLogDir: %v", err)
	}
	if lg.Truncated {
		t.Fatal("clean log reported as truncated")
	}
	if len(lg.Events) != 9 {
		t.Fatalf("got %d events, want 9", len(lg.Events))
	}

	e := lg.Events[0]
	if e.Kind != KStart || e.Node != 1 || e.Aux != 42 || string(e.Data) != "init-blob" {
		t.Fatalf("start event mismatch: %+v", e)
	}
	e = lg.Events[1]
	if e.Kind != KDeliver || e.Peer != 2 || e.Time != 500 || e.Name != MessageType(pingMsg{}) {
		t.Fatalf("deliver event mismatch: %+v", e)
	}
	if err := lg.DecodeMessages(); err != nil {
		t.Fatalf("DecodeMessages: %v", err)
	}
	if p, ok := lg.Events[1].Msg.(pingMsg); !ok || p.N != 7 {
		t.Fatalf("decoded payload = %#v, want pingMsg{7}", lg.Events[1].Msg)
	}
	e = lg.Events[3]
	if e.Kind != KTimer || e.Aux != 1 || e.Aux2 != 1000 {
		t.Fatalf("timer event mismatch: %+v", e)
	}
	e = lg.Events[5]
	if e.Kind != KFault || e.Node != 2 || e.Peer != 1 || e.Aux != 1 || e.Aux2 != 250 {
		t.Fatalf("fault event mismatch: %+v", e)
	}
	e = lg.Events[8]
	if e.Kind != KStop || e.Aux != 0xbeef || e.Aux2 != 1 {
		t.Fatalf("stop event mismatch: %+v", e)
	}

	meta, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if !bytes.Contains(meta, []byte(`"events": 9`)) {
		t.Fatalf("meta.json missing event count: %s", meta)
	}
}

func TestLogCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	writeSampleLog(t, dir)

	path := filepath.Join(dir, EventsFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the third frame: walk two frames, then
	// corrupt past the next header.
	off := len(logMagic)
	for i := 0; i < 2; i++ {
		length := int(uint32(raw[off]) | uint32(raw[off+1])<<8 | uint32(raw[off+2])<<16 | uint32(raw[off+3])<<24)
		off += 8 + length
	}
	raw[off+8+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = ReadLogFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want CorruptError", err)
	}
	if ce.Index != 2 {
		t.Fatalf("corrupt frame index = %d, want 2", ce.Index)
	}
}

func TestLogTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	writeSampleLog(t, dir)

	path := filepath.Join(dir, EventsFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the final frame.
	lg, err := ReadLogFile(path)
	if err != nil || len(lg.Events) != 9 {
		t.Fatalf("precondition: %v, %d events", err, len(lg.Events))
	}
	truncated := raw[:len(raw)-5]
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	lg, err = ReadLogFile(path)
	if err != nil {
		t.Fatalf("truncated log must read cleanly, got %v", err)
	}
	if !lg.Truncated {
		t.Fatal("Truncated not set")
	}
	if len(lg.Events) != 8 {
		t.Fatalf("got %d events from truncated log, want the 8 complete ones", len(lg.Events))
	}
}

func TestLogBadMagic(t *testing.T) {
	_, err := ReadLog(bytes.NewReader([]byte("NOTALOG0xxxx")))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRecorderDropsWhenQueueFull(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	// White-box: a 1-slot queue with no writer running yet, so the second
	// and third emits must take the drop path instead of blocking.
	rec := &Recorder{
		dir:  dir,
		ch:   make(chan pending, 1),
		done: make(chan struct{}),
		f:    f,
		bw:   bufio.NewWriter(f),
	}
	if _, err := rec.bw.WriteString(logMagic); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec.RecordDigest(env.NodeID(1), int64(i), uint64(i))
	}
	events, _, dropped := rec.Counters()
	if events != 1 || dropped != 2 {
		t.Fatalf("events=%d dropped=%d, want 1 and 2", events, dropped)
	}
	go rec.writeLoop()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lg, err := ReadLogDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Events) != 1 {
		t.Fatalf("got %d events on disk, want 1", len(lg.Events))
	}
}

func TestCloseIdempotentAndLateEmit(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec.RecordDigest(1, 0, 1)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Emits after Close must not panic or block; they land in the queue
	// (or drop) with no writer, never on disk.
	for i := 0; i < recorderQueueDepth+10; i++ {
		rec.RecordDigest(1, int64(i), 2)
	}
	lg, err := ReadLogDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(lg.Events))
	}
}
